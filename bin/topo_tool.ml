(* Generate a synthetic router map and print its structural statistics —
   the checks that our maps exhibit the regularities the paper relies on. *)

open Cmdliner

let routers_arg =
  Arg.(value & opt int 4000 & info [ "n"; "routers" ] ~doc:"Number of routers.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let model_arg =
  let doc = "Topology model: magoni, ba, glp, er, waxman, transit-stub." in
  Arg.(value & opt string "magoni" & info [ "model" ] ~doc)

let output_arg =
  let doc = "Also write the generated map to this edge-list file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)

let input_arg =
  let doc = "Analyze an existing edge-list file instead of generating a map." in
  Arg.(value & opt (some string) None & info [ "i"; "input" ] ~doc)

let analyze graph =
  let open Topology in
  Format.printf "%a@." Graph.pp graph;
  Format.printf "connected: %b@." (Graph.is_connected graph);
  let rng = Prelude.Prng.create 42 in
  Format.printf "mean pairwise hop distance (sampled): %.2f@."
    (Bfs.mean_pairwise_distance graph ~samples:2000 ~rng);
  Format.printf "degree-1 routers: %.1f%%@." (100.0 *. Degree.fraction_with_degree graph 1);
  Format.printf "degree gini: %.3f@." (Degree.gini graph);
  (match Degree.power_law_alpha graph ~x_min:3 with
  | alpha -> Format.printf "power-law alpha (x_min=3): %.2f@."  alpha
  | exception Invalid_argument _ -> Format.printf "power-law alpha: n/a@.");
  let core = Centrality.k_core_numbers graph in
  let kmax = Array.fold_left max 0 core in
  Format.printf "max k-core: %d@." kmax;
  (* The paper's funneling premise: what share of end-to-end routes crosses
     the top-1% betweenness routers? *)
  let betweenness = Centrality.betweenness_sampled graph ~sources:200 ~rng in
  let top_set = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace top_set v ())
    (Centrality.top_by betweenness (max 1 (Graph.node_count graph / 100)));
  let oracle = Traceroute.Route_oracle.create graph in
  let crossing = ref 0 and sampled = ref 0 in
  let n = Graph.node_count graph in
  for _ = 1 to 500 do
    let src = Prelude.Prng.int rng n and dst = Prelude.Prng.int rng n in
    if src <> dst then begin
      match Traceroute.Route_oracle.route oracle ~src ~dst with
      | [] -> ()
      | route ->
          incr sampled;
          if List.exists (fun r -> Hashtbl.mem top_set r) route then incr crossing
    end
  done;
  if !sampled > 0 then
    Format.printf "routes crossing the top-1%% betweenness core: %.1f%%@."
      (100.0 *. float_of_int !crossing /. float_of_int !sampled);
  let h = Degree.histogram graph in
  Format.printf "degree CCDF (first 12 points):@.";
  List.iteri
    (fun i (d, p) -> if i < 12 then Format.printf "  P(deg >= %d) = %.4f@." d p)
    (Prelude.Histogram.ccdf h)

let generate routers seed = function
  | "magoni" ->
      let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params routers) ~seed in
      Format.printf "magoni map: core=%d tree=%d leaves=%d@." (Array.length map.core)
        (Array.length map.tree) (Array.length map.leaves);
      Some map.graph
  | "ba" -> Some (Topology.Gen_ba.generate ~nodes:routers ~edges_per_node:3 ~seed)
  | "glp" -> Some (Topology.Gen_glp.generate ~nodes:routers ~m:2 ~p:0.45 ~beta:0.64 ~seed)
  | "er" -> Some (Topology.Gen_er.generate_connected ~nodes:routers ~edges:(3 * routers) ~seed)
  | "waxman" ->
      let graph, _ =
        Topology.Gen_waxman.generate ~nodes:(min routers 2000) ~alpha:0.25 ~beta:0.2 ~seed
      in
      Some graph
  | "transit-stub" ->
      Some (Topology.Gen_transit_stub.generate Topology.Gen_transit_stub.default_params ~seed)
  | _ -> None

let run routers seed model output input =
  match input with
  | Some path -> (
      match Topology.Io.load_edge_list path with
      | graph ->
          Format.printf "loaded %s@." path;
          analyze graph;
          `Ok ()
      | exception (Failure msg | Invalid_argument msg) -> `Error (false, msg))
  | None -> (
      match generate routers seed model with
      | None -> `Error (false, Printf.sprintf "unknown model %S" model)
      | Some graph ->
          analyze graph;
          (match output with
          | Some path ->
              Topology.Io.save_edge_list graph path;
              Format.printf "written to %s@." path
          | None -> ());
          `Ok ())

let () =
  let info = Cmd.info "topo_tool" ~doc:"Generate, analyze and export router-level maps." in
  exit
    (Cmd.eval
       (Cmd.v info Term.(ret (const run $ routers_arg $ seed_arg $ model_arg $ output_arg $ input_arg))))
