(* Command-line driver: run any experiment from DESIGN.md's index with
   configurable size, either at the paper-scale default or in quick mode. *)

open Cmdliner

let quick_flag =
  let doc = "Run a reduced configuration (smaller map, fewer seeds)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let seed_opt =
  let doc = "Override the base random seed." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~doc)

let routers_opt =
  let doc = "Override the router-map size." in
  Arg.(value & opt (some int) None & info [ "routers" ] ~doc)

let peers_opt =
  let doc = "Override the peer population." in
  Arg.(value & opt (some int) None & info [ "peers" ] ~doc)

let k_opt =
  let doc = "Override the number of neighbors requested per peer." in
  Arg.(value & opt (some int) None & info [ "k" ] ~doc)

let audit_rate_opt =
  let doc =
    "Audit this fraction of neighbor replies online against BFS ground truth (0 disables, 1 \
     audits everything)."
  in
  Arg.(value & opt float 0.0 & info [ "audit-rate" ] ~doc ~docv:"RATE")

let slo_opt =
  let doc =
    "Declare a service-level objective (repeatable), e.g. $(b,join_p99_ms=500), \
     $(b,audit_recall_at_k>=0.9) or $(b,join_completed/join_started>=0.99)."
  in
  Arg.(value & opt_all string [] & info [ "slo" ] ~doc ~docv:"SPEC")

let flight_out_opt =
  let doc = "Dump the flight recorder (recent RPC/fault/cluster/SLO events) as JSONL to $(docv)." in
  Arg.(value & opt (some string) None & info [ "flight-out" ] ~doc ~docv:"FILE")

let prom_out_opt =
  let doc = "Write the metrics snapshot in Prometheus text exposition format to $(docv)." in
  Arg.(value & opt (some string) None & info [ "prom-out" ] ~doc ~docv:"FILE")

let parse_slos specs =
  List.fold_left
    (fun acc spec ->
      match (acc, Simkit.Slo.of_string spec) with
      | Error e, _ -> Error e
      | Ok parsed, Ok s -> Ok (s :: parsed)
      | Ok _, Error e -> Error e)
    (Ok []) specs
  |> Result.map List.rev

let override v f config = match v with Some x -> f config x | None -> config

let exit_ok = `Ok ()

let fig2_cmd =
  let run quick seed routers k =
    let config = if quick then Eval.Fig2.quick_config else Eval.Fig2.default_config in
    let config = match seed with Some s -> { config with seeds = [ s ] } | None -> config in
    let config = override routers (fun c v -> { c with Eval.Fig2.routers = v }) config in
    let config = override k (fun c v -> { c with Eval.Fig2.k = v }) config in
    Eval.Fig2.print (Eval.Fig2.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Reproduce the paper's measured figure: quality ratios vs population.")
    Term.(ret (const run $ quick_flag $ seed_opt $ routers_opt $ k_opt))

let landmarks_cmd =
  let run quick seed routers peers k =
    let config = if quick then Eval.Landmark_sweep.quick_config else Eval.Landmark_sweep.default_config in
    let config = match seed with Some s -> { config with seeds = [ s ] } | None -> config in
    let config = override routers (fun c v -> { c with Eval.Landmark_sweep.routers = v }) config in
    let config = override peers (fun c v -> { c with Eval.Landmark_sweep.peers = v }) config in
    let config = override k (fun c v -> { c with Eval.Landmark_sweep.k = v }) config in
    Eval.Landmark_sweep.print (Eval.Landmark_sweep.run config);
    print_newline ();
    Eval.Landmark_sweep.print_ablation (Eval.Landmark_sweep.run_round1_ablation config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "landmarks" ~doc:"E1: sweep landmark count and placement policy.")
    Term.(ret (const run $ quick_flag $ seed_opt $ routers_opt $ peers_opt $ k_opt))

let superpeers_cmd =
  let run quick seed routers peers k =
    let config = if quick then Eval.Super_peer_exp.quick_config else Eval.Super_peer_exp.default_config in
    let config = match seed with Some s -> { config with seeds = [ s ] } | None -> config in
    let config = override routers (fun c v -> { c with Eval.Super_peer_exp.routers = v }) config in
    let config = override peers (fun c v -> { c with Eval.Super_peer_exp.peers = v }) config in
    let config = override k (fun c v -> { c with Eval.Super_peer_exp.k = v }) config in
    Eval.Super_peer_exp.print (Eval.Super_peer_exp.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "superpeers" ~doc:"E2: super-peer delegation vs centralized server.")
    Term.(ret (const run $ quick_flag $ seed_opt $ routers_opt $ peers_opt $ k_opt))

let churn_cmd =
  let run quick seed =
    let config = if quick then Eval.Churn_exp.quick_config else Eval.Churn_exp.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    Eval.Churn_exp.print (Eval.Churn_exp.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "churn" ~doc:"E3: quality under churn, crashes and handover.")
    Term.(ret (const run $ quick_flag $ seed_opt))

let truncate_cmd =
  let run quick seed routers peers k =
    let config = if quick then Eval.Truncate_exp.quick_config else Eval.Truncate_exp.default_config in
    let config = match seed with Some s -> { config with seeds = [ s ] } | None -> config in
    let config = override routers (fun c v -> { c with Eval.Truncate_exp.routers = v }) config in
    let config = override peers (fun c v -> { c with Eval.Truncate_exp.peers = v }) config in
    let config = override k (fun c v -> { c with Eval.Truncate_exp.k = v }) config in
    Eval.Truncate_exp.print (Eval.Truncate_exp.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "truncate" ~doc:"E4: decreased traceroute - quality vs probe cost.")
    Term.(ret (const run $ quick_flag $ seed_opt $ routers_opt $ peers_opt $ k_opt))

let setup_delay_cmd =
  let run quick seed =
    let config = if quick then Eval.Setup_delay.quick_config else Eval.Setup_delay.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    Eval.Setup_delay.print (Eval.Setup_delay.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "setup-delay" ~doc:"E5: setup delay vs quality against Vivaldi and GNP.")
    Term.(ret (const run $ quick_flag $ seed_opt))

let complexity_cmd =
  let run quick seed =
    let config = if quick then Eval.Complexity.quick_config else Eval.Complexity.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    Eval.Complexity.print (Eval.Complexity.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "complexity" ~doc:"Path-tree insert/query cost vs population (the O(log n)/O(1) claim).")
    Term.(ret (const run $ quick_flag $ seed_opt))

let metric_cmd =
  let run quick seed =
    let config = if quick then Eval.Metric_ablation.quick_config else Eval.Metric_ablation.default_config in
    let config = match seed with Some s -> { config with seeds = [ s ] } | None -> config in
    Eval.Metric_ablation.print (Eval.Metric_ablation.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "metric" ~doc:"Ablation: hop-count dtree vs latency-weighted dtree.")
    Term.(ret (const run $ quick_flag $ seed_opt))

let streaming_cmd =
  let run quick seed routers peers k =
    let config = if quick then Eval.Streaming_exp.quick_config else Eval.Streaming_exp.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    let config = override routers (fun c v -> { c with Eval.Streaming_exp.routers = v }) config in
    let config = override peers (fun c v -> { c with Eval.Streaming_exp.peers = v }) config in
    let config = override k (fun c v -> { c with Eval.Streaming_exp.k = v }) config in
    Eval.Streaming_exp.print (Eval.Streaming_exp.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "streaming" ~doc:"Mesh live streaming under different neighbor selectors.")
    Term.(ret (const run $ quick_flag $ seed_opt $ routers_opt $ peers_opt $ k_opt))

let stretch_cmd =
  let run quick seed =
    let config = if quick then Eval.Stretch_analysis.quick_config else Eval.Stretch_analysis.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    Eval.Stretch_analysis.print (Eval.Stretch_analysis.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "stretch" ~doc:"Graph-oriented analysis of dtree vs true distance.")
    Term.(ret (const run $ quick_flag $ seed_opt))

let maintenance_cmd =
  let run quick seed =
    let config = if quick then Eval.Maintenance_exp.quick_config else Eval.Maintenance_exp.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    Eval.Maintenance_exp.print (Eval.Maintenance_exp.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "maintenance" ~doc:"Neighbor-set decay under churn, frozen vs refreshed.")
    Term.(ret (const run $ quick_flag $ seed_opt))

let topologies_cmd =
  let run quick seed =
    let config =
      if quick then Eval.Topology_sensitivity.quick_config else Eval.Topology_sensitivity.default_config
    in
    let config = match seed with Some s -> { config with seeds = [ s ] } | None -> config in
    Eval.Topology_sensitivity.print (Eval.Topology_sensitivity.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "topologies" ~doc:"Quality across map families (heavy tail vs homogeneous).")
    Term.(ret (const run $ quick_flag $ seed_opt))

let dht_cmd =
  let run quick seed routers peers k =
    let config = if quick then Eval.Dht_exp.quick_config else Eval.Dht_exp.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    let config = override routers (fun c v -> { c with Eval.Dht_exp.routers = v }) config in
    let config = override peers (fun c v -> { c with Eval.Dht_exp.peers = v }) config in
    let config = override k (fun c v -> { c with Eval.Dht_exp.k = v }) config in
    Eval.Dht_exp.print (Eval.Dht_exp.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "dht" ~doc:"Decentralize the management server over a Chord DHT.")
    Term.(ret (const run $ quick_flag $ seed_opt $ routers_opt $ peers_opt $ k_opt))

let inflation_cmd =
  let run quick seed =
    let config = if quick then Eval.Inflation_exp.quick_config else Eval.Inflation_exp.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    Eval.Inflation_exp.print (Eval.Inflation_exp.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "inflation" ~doc:"Robustness to policy routing (path inflation).")
    Term.(ret (const run $ quick_flag $ seed_opt))

let bulk_cmd =
  let run quick seed =
    let config = if quick then Eval.Bulk_exp.quick_config else Eval.Bulk_exp.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    Eval.Bulk_exp.print (Eval.Bulk_exp.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "bulk" ~doc:"Bulk file-swarm distribution under different selectors.")
    Term.(ret (const run $ quick_flag $ seed_opt))

let joining_cmd =
  let run quick seed =
    let config = if quick then Eval.Joining_exp.quick_config else Eval.Joining_exp.default_config in
    let config = match seed with Some s -> { config with seed = s } | None -> config in
    Eval.Joining_exp.print (Eval.Joining_exp.run config);
    exit_ok
  in
  Cmd.v
    (Cmd.info "joining" ~doc:"Newcomer time-to-playback mid-stream (the paper's thesis, end to end).")
    Term.(ret (const run $ quick_flag $ seed_opt))

let resilience_cmd =
  let scenario_arg =
    let doc =
      Printf.sprintf "Fault scenario to inject (%s)."
        (String.concat " | " Eval.Resilience_exp.scenario_names)
    in
    Arg.(value & opt string "crash-primary" & info [ "scenario" ] ~doc ~docv:"SCENARIO")
  in
  let replicas_arg =
    let doc = "Number of management-server replicas." in
    Arg.(value & opt int 3 & info [ "replicas" ] ~doc ~docv:"N")
  in
  let loss_arg =
    let doc = "Baseline packet-loss probability, in [0, 1)." in
    Arg.(value & opt float 0.0 & info [ "loss" ] ~doc ~docv:"P")
  in
  let require_complete_arg =
    let doc = "Exit with an error unless every join completes (CI smoke gate)." in
    Arg.(value & flag & info [ "require-complete" ] ~doc)
  in
  let json_out_arg =
    let doc = "Also write the result as a JSON object to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json-out" ] ~doc ~docv:"FILE")
  in
  let metrics_out_arg =
    let doc =
      "Write a JSON metrics snapshot (resilience / rpc / cluster / transport sections plus the \
       windowed timeseries) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")
  in
  let trace_out_arg =
    let doc =
      "Write the run's causal span trees (one root join span per peer, with RPC attempts, \
       server-side registration and replication fan-out as children) as Chrome trace-event \
       JSONL to $(docv).  Feed the file to $(b,nearby_sim trace) for a critical-path report."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")
  in
  let run quick seed routers peers k scenario replicas loss require_complete json_out slos
      audit_rate flight_out metrics_out prom_out trace_out =
    match parse_slos slos with
    | Error e -> `Error (false, e)
    | Ok slos -> (
        let config =
          if quick then Eval.Resilience_exp.quick_config else Eval.Resilience_exp.default_config
        in
        let config = match seed with Some s -> { config with seed = s } | None -> config in
        let config = override routers (fun c v -> { c with Eval.Resilience_exp.routers = v }) config in
        let config = override peers (fun c v -> { c with Eval.Resilience_exp.peers = v }) config in
        let config = override k (fun c v -> { c with Eval.Resilience_exp.k = v }) config in
        let config =
          { config with Eval.Resilience_exp.scenario; replicas; loss; slos; audit_rate }
        in
        let spans =
          match trace_out with Some _ -> Simkit.Span.buffer () | None -> Simkit.Span.noop
        in
        match Eval.Resilience_exp.run_instrumented ~spans config with
        | result, artifacts ->
            Eval.Resilience_exp.print result;
            List.iter
              (fun st -> print_endline ("SLO " ^ Simkit.Slo.status_line st))
              artifacts.Eval.Resilience_exp.slo_statuses;
            (match json_out with
            | Some file ->
                let out = open_out file in
                output_string out (Eval.Resilience_exp.result_json result);
                output_char out '\n';
                close_out out;
                Printf.printf "wrote %s\n%!" file
            | None -> ());
            let sections =
              [
                ("resilience", artifacts.Eval.Resilience_exp.exp_trace);
                ("rpc", artifacts.Eval.Resilience_exp.rpc_trace);
                ("cluster", artifacts.Eval.Resilience_exp.cluster_trace);
                ( "transport",
                  Simkit.Trace.of_counters artifacts.Eval.Resilience_exp.transport_counters );
              ]
              @
              match artifacts.Eval.Resilience_exp.audit_trace with
              | Some t -> [ ("audit", t) ]
              | None -> []
            in
            (match metrics_out with
            | Some file ->
                let meta =
                  Simkit.Export.capture_meta ~seed:config.Eval.Resilience_exp.seed
                    ~extra:
                      [
                        ("scenario", config.Eval.Resilience_exp.scenario);
                        ("replicas", string_of_int replicas);
                      ]
                    ()
                in
                Simkit.Export.write_file file
                  (Simkit.Export.metrics_json ~meta
                     ~timeseries:[ ("resilience", artifacts.Eval.Resilience_exp.timeseries) ]
                     sections);
                Printf.printf "wrote metrics snapshot to %s\n%!" file
            | None -> ());
            (match prom_out with
            | Some file ->
                Simkit.Export.write_file file (Simkit.Export.prometheus sections);
                Printf.printf "wrote Prometheus exposition to %s\n%!" file
            | None -> ());
            (match flight_out with
            | Some file ->
                Simkit.Flight_recorder.write artifacts.Eval.Resilience_exp.recorder file;
                Printf.printf "wrote %d flight-recorder events to %s\n%!"
                  (Simkit.Flight_recorder.count artifacts.Eval.Resilience_exp.recorder)
                  file
            | None -> ());
            (match trace_out with
            | Some file ->
                Simkit.Span.write_jsonl [ spans ] file;
                Printf.printf "wrote %d span events to %s\n%!" (Simkit.Span.event_count spans)
                  file
            | None -> ());
            if require_complete && result.completed < result.joins then
              `Error
                ( false,
                  Printf.sprintf "join completion %d/%d under scenario %s" result.completed
                    result.joins result.scenario )
            else exit_ok
        | exception Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Fault-injection run: joins through the retrying RPC layer against a replicated \
          server cluster while a scripted scenario crashes replicas, raises loss or \
          partitions the network.")
    Term.(
      ret
        (const run $ quick_flag $ seed_opt $ routers_opt $ peers_opt $ k_opt $ scenario_arg
       $ replicas_arg $ loss_arg $ require_complete_arg $ json_out_arg $ slo_opt
       $ audit_rate_opt $ flight_out_opt $ metrics_out_arg $ prom_out_opt $ trace_out_arg))

let load_cmd =
  let arrival_arg =
    let doc = "Arrival process: $(b,poisson), $(b,diurnal) or $(b,flash)." in
    Arg.(value & opt string "flash" & info [ "arrival" ] ~doc ~docv:"PROCESS")
  in
  let rate_arg =
    let doc = "Base arrival rate, peers per second." in
    Arg.(value & opt (some float) None & info [ "rate" ] ~doc ~docv:"R")
  in
  let spike_rate_arg =
    let doc = "Flash-crowd spike rate, peers per second (flash only)." in
    Arg.(value & opt (some float) None & info [ "spike-rate" ] ~doc ~docv:"R")
  in
  let spike_at_arg =
    let doc = "Flash-crowd spike onset, seconds into the run (flash only)." in
    Arg.(value & opt float 2.0 & info [ "spike-at" ] ~doc ~docv:"S")
  in
  let spike_len_arg =
    let doc = "Flash-crowd spike length, seconds (flash only)." in
    Arg.(value & opt float 4.0 & info [ "spike-len" ] ~doc ~docv:"S")
  in
  let amplitude_arg =
    let doc = "Diurnal modulation amplitude in [0, 1] (diurnal only)." in
    Arg.(value & opt float 0.5 & info [ "amplitude" ] ~doc ~docv:"A")
  in
  let period_arg =
    let doc = "Diurnal period, seconds (diurnal only)." in
    Arg.(value & opt float 60.0 & info [ "period" ] ~doc ~docv:"S")
  in
  let duration_arg =
    let doc = "Arrival window in milliseconds (the run continues until the queue drains)." in
    Arg.(value & opt (some float) None & info [ "duration" ] ~doc ~docv:"MS")
  in
  let service_rate_arg =
    let doc = "Server service rate, registrations per second." in
    Arg.(value & opt (some float) None & info [ "service-rate" ] ~doc ~docv:"R")
  in
  let queue_cap_arg =
    let doc = "Admission queue capacity." in
    Arg.(value & opt (some int) None & info [ "queue-cap" ] ~doc ~docv:"N")
  in
  let batch_arg =
    let doc = "Registrations drained per service tick." in
    Arg.(value & opt (some int) None & info [ "batch" ] ~doc ~docv:"N")
  in
  let policy_arg =
    let doc =
      Printf.sprintf "Shedding policy (%s)." (String.concat " | " Eval.Load_exp.policies)
    in
    Arg.(value & opt string "slo" & info [ "shed-policy" ] ~doc ~docv:"POLICY")
  in
  let deadline_arg =
    let doc = "Deadline policy bound in ms (default 0.8 x the SLO budget)." in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~doc ~docv:"MS")
  in
  let wait_budget_arg =
    let doc = "SLO shedder's queueing-delay p99 limit in ms (default 0.15 x the SLO budget)." in
    Arg.(value & opt (some float) None & info [ "wait-budget-ms" ] ~doc ~docv:"MS")
  in
  let slo_budget_arg =
    let doc = "Admitted-join p99 budget in ms the result is judged against." in
    Arg.(value & opt (some float) None & info [ "slo-budget-ms" ] ~doc ~docv:"MS")
  in
  let session_arg =
    let doc = "Mean session length in ms before a peer departs (0 disables churn)." in
    Arg.(value & opt float 0.0 & info [ "session-mean-ms" ] ~doc ~docv:"MS")
  in
  let mobility_arg =
    let doc =
      "Fraction of departures that are regional-mobility handovers (re-join near another \
       landmark) rather than graceful leaves."
    in
    Arg.(value & opt float 0.0 & info [ "mobility" ] ~doc ~docv:"F")
  in
  let json_out_arg =
    let doc = "Also write the result as a JSON object to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json-out" ] ~doc ~docv:"FILE")
  in
  let metrics_out_arg =
    let doc =
      "Write a JSON metrics snapshot (experiment / server sections, the admission queue's \
       labeled series and the windowed timeseries) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")
  in
  let require_complete_arg =
    let doc = "Exit with an error unless every admitted join completes (CI smoke gate)." in
    Arg.(value & flag & info [ "require-complete" ] ~doc)
  in
  let run quick seed routers k arrival rate spike_rate spike_at spike_len amplitude period
      duration service_rate queue_cap batch policy deadline_ms wait_budget_ms slo_budget_ms
      session_mean_ms mobility require_complete json_out flight_out metrics_out prom_out =
    let config = if quick then Eval.Load_exp.quick_config else Eval.Load_exp.default_config in
    let config = match seed with Some s -> { config with Eval.Load_exp.seed = s } | None -> config in
    let config = override routers (fun c v -> { c with Eval.Load_exp.routers = v }) config in
    let config = override k (fun c v -> { c with Eval.Load_exp.k = v }) config in
    let config = override duration (fun c v -> { c with Eval.Load_exp.duration_ms = v }) config in
    let config =
      override service_rate (fun (c : Eval.Load_exp.config) v -> { c with service_rate_per_s = v }) config
    in
    let config = override queue_cap (fun c v -> { c with Eval.Load_exp.queue_cap = v }) config in
    let config = override batch (fun c v -> { c with Eval.Load_exp.batch = v }) config in
    let config =
      override slo_budget_ms (fun (c : Eval.Load_exp.config) v -> { c with slo_budget_ms = v }) config
    in
    let service = config.Eval.Load_exp.service_rate_per_s in
    let arrival_process =
      (* Defaults put the flash peak (and the diurnal crest) at 2x the
         service rate so the headline comparison works out of the box. *)
      match arrival with
      | "poisson" ->
          Ok
            (Simkit.Workload.Poisson
               { rate_per_s = Option.value rate ~default:(0.8 *. service) })
      | "diurnal" ->
          Ok
            (Simkit.Workload.Diurnal
               {
                 base_per_s = Option.value rate ~default:(2.0 *. service /. (1.0 +. amplitude));
                 amplitude;
                 period_s = period;
               })
      | "flash" ->
          Ok
            (Simkit.Workload.Flash
               {
                 base_per_s = Option.value rate ~default:(0.25 *. service);
                 spike_per_s = Option.value spike_rate ~default:(2.0 *. service);
                 spike_at_s = spike_at;
                 spike_len_s = spike_len;
               })
      | other -> Error (Printf.sprintf "unknown arrival process %S (poisson|diurnal|flash)" other)
    in
    match arrival_process with
    | Error e -> `Error (false, e)
    | Ok arrival -> (
        let config =
          {
            config with
            Eval.Load_exp.arrival;
            policy;
            deadline_ms;
            wait_budget_ms;
            churn =
              (if session_mean_ms <= 0.0 then Simkit.Workload.no_churn
               else
                 {
                   Simkit.Workload.session =
                     Some (Simkit.Churn.Exponential { mean_ms = session_mean_ms });
                   mobility_fraction = mobility;
                 });
          }
        in
        match Eval.Load_exp.run_instrumented config with
        | result, artifacts ->
            Eval.Load_exp.print result;
            (match json_out with
            | Some file ->
                Simkit.Export.write_file file (Eval.Load_exp.result_json result ^ "\n");
                Printf.printf "wrote %s\n%!" file
            | None -> ());
            let sections =
              [
                ("load", artifacts.Eval.Load_exp.exp_trace);
                ("server", artifacts.Eval.Load_exp.server_trace);
              ]
            in
            (match metrics_out with
            | Some file ->
                let meta =
                  Simkit.Export.capture_meta ~seed:config.Eval.Load_exp.seed
                    ~extra:
                      [
                        ("arrival", Simkit.Workload.describe arrival);
                        ("policy", policy);
                      ]
                    ()
                in
                Simkit.Export.write_file file
                  (Simkit.Export.metrics_json ~meta
                     ~timeseries:[ ("load", artifacts.Eval.Load_exp.timeseries) ]
                     ~labeled:[ ("admission", artifacts.Eval.Load_exp.metrics) ]
                     sections);
                Printf.printf "wrote metrics snapshot to %s\n%!" file
            | None -> ());
            (match prom_out with
            | Some file ->
                Simkit.Export.write_file file
                  (Simkit.Export.prometheus sections
                  ^ Simkit.Export.prometheus_labeled
                      [ ("admission", artifacts.Eval.Load_exp.metrics) ]);
                Printf.printf "wrote Prometheus exposition to %s\n%!" file
            | None -> ());
            (match flight_out with
            | Some file ->
                Simkit.Flight_recorder.write artifacts.Eval.Load_exp.recorder file;
                Printf.printf "wrote %d flight-recorder events to %s\n%!"
                  (Simkit.Flight_recorder.count artifacts.Eval.Load_exp.recorder)
                  file
            | None -> ());
            if require_complete && result.Eval.Load_exp.completed < result.Eval.Load_exp.admitted
            then
              `Error
                ( false,
                  Printf.sprintf "admitted-join completion %d/%d under policy %s"
                    result.Eval.Load_exp.completed result.Eval.Load_exp.admitted policy )
            else exit_ok
        | exception Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Open-loop load run: a Poisson / diurnal / flash-crowd arrival process drives joins \
          through a bounded admission queue with a configurable shedding policy (drop-tail, \
          deadline expiry, or SLO-burn-driven).")
    Term.(
      ret
        (const run $ quick_flag $ seed_opt $ routers_opt $ k_opt $ arrival_arg $ rate_arg
       $ spike_rate_arg $ spike_at_arg $ spike_len_arg $ amplitude_arg $ period_arg
       $ duration_arg $ service_rate_arg $ queue_cap_arg $ batch_arg $ policy_arg
       $ deadline_arg $ wait_budget_arg $ slo_budget_arg $ session_arg $ mobility_arg
       $ require_complete_arg $ json_out_arg $ flight_out_opt $ metrics_out_arg $ prom_out_opt))

let registry_cmd =
  let backend_arg =
    let doc =
      "Registry backend(s) to exercise: $(b,tree), $(b,naive), $(b,dht), $(b,super), \
       $(b,sharded:N), or $(b,all)."
    in
    Arg.(value & opt string "all" & info [ "backend" ] ~doc ~docv:"BACKEND")
  in
  let trace_out_arg =
    let doc =
      "Write structured join/query spans as Chrome trace-event JSONL (one event per line) to \
       $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")
  in
  let metrics_out_arg =
    let doc =
      "Write a JSON metrics snapshot (counters plus mean/CI and p50/p90/p99 per stat stream, \
       including per-backend registry insert/query latency) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")
  in
  let run quick seed routers peers k backend_spec trace_out metrics_out audit_rate slos
      flight_out prom_out =
    match parse_slos slos with
    | Error e -> `Error (false, e)
    | Ok slos -> (
    let seed = Option.value ~default:1 seed in
    let routers = Option.value ~default:(if quick then 600 else 2000) routers in
    let peers = Option.value ~default:(if quick then 150 else 600) peers in
    let k = Option.value ~default:5 k in
    let specs =
      if String.lowercase_ascii (String.trim backend_spec) = "all" then Ok Eval.Backends.all
      else Result.map (fun s -> [ s ]) (Eval.Backends.of_string backend_spec)
    in
    match specs with
    | Error e -> `Error (false, e)
    | Ok specs ->
        let w = Eval.Workload.build ~routers ~landmark_count:4 ~peers ~seed () in
        let n = Array.length w.Eval.Workload.peer_routers in
        (* Registry runs have no simulated clock; the audit timeseries
           ticks on the query index instead, 100 queries per window. *)
        let want_timeseries = audit_rate > 0.0 || slos <> [] in
        (* The same scenario for every backend: join the whole population
           through the server, then ask everyone's k nearest. *)
        let run_backend ?(spans = Simkit.Span.noop) ?metrics spec =
          (* The middleware gets the sink too, so with --trace-out every
             store op is a span inside the join/query that caused it. *)
          let backend =
            Nearby.Instrumented_registry.wrap ?metrics
              ?spans:(if Simkit.Span.enabled spans then Some spans else None)
              (Eval.Backends.backend spec)
          in
          let server =
            Nearby.Server.create ~backend ~spans w.Eval.Workload.ctx.Nearby.Selector.oracle
              ~landmarks:w.Eval.Workload.landmarks
          in
          for peer = 0 to n - 1 do
            ignore
              (Nearby.Server.join server ~peer
                 ~attach_router:w.Eval.Workload.peer_routers.(peer))
          done;
          let ts =
            if want_timeseries then Some (Simkit.Timeseries.create ~window_ms:100.0 ()) else None
          in
          let queries = ref 0 in
          let auditor =
            if audit_rate > 0.0 then
              Some
                (Nearby.Audit.create ~rate:audit_rate ~seed ?timeseries:ts
                   ~clock:(fun () -> float_of_int !queries)
                   server)
            else None
          in
          let answers =
            Array.init n (fun peer ->
                incr queries;
                match auditor with
                | Some a -> Nearby.Audit.neighbors a ~peer ~k
                | None -> Nearby.Server.neighbors server ~peer ~k)
          in
          Nearby.Server.flush_spans server;
          (server, answers, ts, auditor)
        in
        let _, reference, _, _ = run_backend Eval.Backends.Tree in
        Printf.printf "registry backends on the same scenario (%d routers, %d peers, k=%d)\n"
          routers peers k;
        let runs =
          List.mapi
            (fun idx spec ->
              let spans =
                match trace_out with
                | Some _ -> Simkit.Span.buffer ~pid:(idx + 1) ()
                | None -> Simkit.Span.noop
              in
              let metrics =
                match (metrics_out, prom_out) with
                | None, None -> None
                | _ -> Some (Simkit.Trace.create ())
              in
              let server, answers, ts, auditor = run_backend ~spans ?metrics spec in
              (spec, server, answers, spans, metrics, ts, auditor))
            specs
        in
        let rows =
          List.map
            (fun (_, server, answers, _, _, _, auditor) ->
              let stats =
                Nearby.Server.registry_stats server
                |> List.filter (fun (key, _) -> key <> "members")
                |> List.map (fun (key, v) -> Printf.sprintf "%s=%d" key v)
                |> String.concat " "
              in
              let audit_cell =
                match auditor with
                | None -> "-"
                | Some a -> (
                    let t = Nearby.Audit.trace a in
                    match
                      ( Simkit.Trace.summary t "audit_recall_at_k",
                        Simkit.Trace.summary t "audit_stretch" )
                    with
                    | Some recall, Some stretch when recall.Simkit.Trace.count > 0 ->
                        Printf.sprintf "n=%d recall=%.3f stretch=%.3f"
                          recall.Simkit.Trace.count recall.Simkit.Trace.mean
                          stretch.Simkit.Trace.mean
                    | _ -> Printf.sprintf "n=%d" (Simkit.Trace.counter t "audit_samples"))
              in
              [
                Nearby.Server.backend_name server;
                string_of_bool (answers = reference);
                string_of_int (Simkit.Trace.counter (Nearby.Server.trace server) "registry_insert");
                string_of_int (Simkit.Trace.counter (Nearby.Server.trace server) "registry_query");
                audit_cell;
                stats;
              ])
            runs
        in
        Prelude.Table.print
          ~header:[ "backend"; "answers = tree"; "inserts"; "queries"; "audit"; "stats" ]
          rows;
        (* Structural introspection: how the stored state is actually laid
           out per backend (bucket occupancy, hottest routers, footprint). *)
        List.iter
          (fun (_, server, _, _, _, _, _) ->
            Printf.printf "introspect %s: %s\n" (Nearby.Server.backend_name server)
              (Nearby.Registry_intf.introspection_json (Nearby.Server.introspection server)))
          runs;
        (match trace_out with
        | None -> ()
        | Some file ->
            let sinks = List.map (fun (_, _, _, spans, _, _, _) -> spans) runs in
            Simkit.Span.write_jsonl sinks file;
            Printf.printf "wrote %d span events to %s\n"
              (List.fold_left (fun acc s -> acc + Simkit.Span.event_count s) 0 sinks)
              file);
        let sections =
          List.concat_map
            (fun (spec, server, _, _, metrics, _, auditor) ->
              let name = Eval.Backends.to_string spec in
              (("server:" ^ name, Nearby.Server.trace server)
              :: (match metrics with
                 | Some m -> [ ("registry:" ^ name, m) ]
                 | None -> []))
              @
              match auditor with
              | Some a -> [ ("audit:" ^ name, Nearby.Audit.trace a) ]
              | None -> [])
            runs
        in
        let timeseries =
          List.filter_map
            (fun (spec, _, _, _, _, ts, _) ->
              Option.map (fun t -> (Eval.Backends.to_string spec, t)) ts)
            runs
        in
        (match metrics_out with
        | None -> ()
        | Some file ->
            let meta =
              Simkit.Export.capture_meta ~seed
                ~backends:(List.map Eval.Backends.to_string specs)
                ~extra:
                  [
                    ("routers", string_of_int routers);
                    ("peers", string_of_int peers);
                    ("k", string_of_int k);
                  ]
                ()
            in
            Simkit.Export.write_file file
              (Simkit.Export.metrics_json ~meta ~timeseries sections);
            Printf.printf "wrote metrics snapshot to %s\n" file);
        (match prom_out with
        | None -> ()
        | Some file ->
            Simkit.Export.write_file file (Simkit.Export.prometheus sections);
            Printf.printf "wrote Prometheus exposition to %s\n" file);
        (* SLO breaches here are report-only: the exit code gates answer
           consistency, not performance (that is [bench regress]'s job). *)
        (if slos <> [] || flight_out <> None then begin
           let recorder = Simkit.Flight_recorder.create ~capacity:256 () in
           List.iter
             (fun (name, ts) ->
               List.iter
                 (fun st ->
                   Printf.printf "SLO [%s] %s\n" name (Simkit.Slo.status_line st);
                   if st.Simkit.Slo.breached then
                     Simkit.Flight_recorder.record recorder ~ts:(float_of_int n) ~kind:"slo"
                       ~args:[ ("backend", Simkit.Span.Str name) ]
                       ("breach: " ^ st.Simkit.Slo.spec.Simkit.Slo.name))
                 (Simkit.Slo.check ts slos))
             timeseries;
           match flight_out with
           | Some file ->
               Simkit.Flight_recorder.write recorder file;
               Printf.printf "wrote %d flight-recorder events to %s\n"
                 (Simkit.Flight_recorder.count recorder)
                 file
           | None -> ()
         end);
        let all_identical =
          List.for_all (fun row -> List.nth row 1 = "true") rows
        in
        if all_identical then exit_ok
        else `Error (false, "backends disagree on neighbor sets"))
  in
  Cmd.v
    (Cmd.info "registry"
       ~doc:
         "Run one scenario against the registry backends through the unified interface and \
          compare their answers.")
    Term.(
      ret
        (const run $ quick_flag $ seed_opt $ routers_opt $ peers_opt $ k_opt $ backend_arg
       $ trace_out_arg $ metrics_out_arg $ audit_rate_opt $ slo_opt $ flight_out_opt
       $ prom_out_opt))

let trace_cmd =
  let file_arg =
    let doc =
      "Span JSONL file to analyze (the output of $(b,--trace-out) on the resilience or \
       registry commands)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"FILE")
  in
  let run file =
    match Simkit.Trace_analysis.load file with
    | exception Sys_error e -> `Error (false, e)
    | spans, untraced ->
        if spans = [] && untraced = 0 then
          `Error (false, Printf.sprintf "%s: no span events found" file)
        else begin
          print_string
            (Simkit.Trace_analysis.report_to_string
               (Simkit.Trace_analysis.analyze ~untraced spans));
          exit_ok
        end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Critical-path analysis of a span JSONL file: reconstruct the causal tree of every \
          trace, attribute each trace's duration along its critical path, and report \
          per-span-kind shares overall and in the p99 tail.")
    Term.(ret (const run $ file_arg))

let verify_cmd =
  let run seed_opt =
    let seed = Option.value ~default:1 seed_opt in
    let failures = ref 0 in
    let check name f =
      match f () with
      | () -> Printf.printf "  [ok] %s\n%!" name
      | exception e ->
          incr failures;
          Printf.printf "  [FAIL] %s: %s\n%!" name (Printexc.to_string e)
    in
    Printf.printf "self-check (seed %d)\n%!" seed;
    let rng = Prelude.Prng.create seed in
    check "magoni map connected + heavy-tailed" (fun () ->
        let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 800) ~seed in
        assert (Topology.Graph.is_connected map.graph);
        assert (Topology.Degree.gini map.graph > 0.2));
    check "server survives 500 random operations" (fun () ->
        let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 500) ~seed in
        let oracle = Traceroute.Route_oracle.create map.graph in
        let landmarks = Nearby.Landmark.place map.graph Nearby.Landmark.Medium_degree ~count:4 ~rng in
        let server = Nearby.Server.create oracle ~landmarks in
        for i = 0 to 499 do
          let peer = Prelude.Prng.int rng 60 in
          (match Prelude.Prng.int rng 4 with
          | 0 ->
              if not (Nearby.Server.mem server peer) then
                ignore
                  (Nearby.Server.join server ~peer
                     ~attach_router:map.leaves.(Prelude.Prng.int rng (Array.length map.leaves)))
          | 1 -> if Nearby.Server.mem server peer then Nearby.Server.leave server ~peer
          | 2 ->
              if Nearby.Server.mem server peer then
                ignore
                  (Nearby.Server.handover server ~peer
                     ~attach_router:map.leaves.(Prelude.Prng.int rng (Array.length map.leaves)))
          | _ ->
              if Nearby.Server.mem server peer then
                ignore (Nearby.Server.neighbors server ~peer ~k:4));
          if i mod 50 = 0 then Nearby.Server.check_invariants server
        done;
        Nearby.Server.check_invariants server);
    check "server snapshot roundtrip" (fun () ->
        let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 400) ~seed in
        let oracle = Traceroute.Route_oracle.create map.graph in
        let landmarks = Nearby.Landmark.place map.graph Nearby.Landmark.Medium_degree ~count:3 ~rng in
        let server = Nearby.Server.create oracle ~landmarks in
        for peer = 0 to 30 do
          ignore (Nearby.Server.join server ~peer ~attach_router:map.leaves.(peer))
        done;
        match Nearby.Server.restore oracle (Nearby.Server.snapshot server) with
        | Ok restored ->
            assert (Nearby.Server.peer_count restored = Nearby.Server.peer_count server)
        | Error e -> failwith e);
    check "chord + kademlia invariants and lookup consistency" (fun () ->
        let members = Array.init 48 (fun i -> 100 + (i * 13)) in
        let chord = Dht.Chord.build ~virtual_nodes:4 members in
        Dht.Chord.check_invariants chord;
        let kad = Dht.Kademlia.build members in
        Dht.Kademlia.check_invariants kad;
        for key = 0 to 100 do
          assert (fst (Dht.Chord.lookup chord ~from:members.(key mod 48) ~key)
                  = Dht.Chord.owner_of chord ~key);
          assert (fst (Dht.Kademlia.lookup kad ~from:members.(key mod 48) ~key)
                  = Dht.Kademlia.owner_of kad ~key)
        done);
    check "wire format roundtrips random replies" (fun () ->
        for _ = 1 to 200 do
          let neighbors =
            List.init (Prelude.Prng.int rng 8) (fun _ ->
                (Prelude.Prng.int rng 5000, Prelude.Prng.int rng 40))
          in
          let m = Nearby.Wire.Neighbor_reply { peer = Prelude.Prng.int rng 5000; neighbors } in
          match Nearby.Wire.decode (Nearby.Wire.encode m) with
          | Ok m' -> assert (Nearby.Wire.equal m m')
          | Error e -> failwith e
        done);
    check "cyclon invariants over 20 rounds" (fun () ->
        let c = Nearby.Cyclon.create Nearby.Cyclon.default_params ~n:50 ~rng in
        for _ = 1 to 20 do
          Nearby.Cyclon.round c;
          Nearby.Cyclon.check_invariants c
        done);
    if !failures = 0 then begin
      Printf.printf "all checks passed\n";
      `Ok ()
    end
    else `Error (false, Printf.sprintf "%d check(s) failed" !failures)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Run cross-subsystem structural self-checks on a random workload.")
    Term.(ret (const run $ seed_opt))

let all_cmd =
  let run quick seed =
    let banner title =
      Printf.printf "\n================ %s ================\n%!" title
    in
    banner "fig2";
    let fig2 = if quick then Eval.Fig2.quick_config else Eval.Fig2.default_config in
    let fig2 = match seed with Some s -> { fig2 with seeds = [ s ] } | None -> fig2 in
    Eval.Fig2.print (Eval.Fig2.run fig2);
    banner "complexity";
    Eval.Complexity.print
      (Eval.Complexity.run (if quick then Eval.Complexity.quick_config else Eval.Complexity.default_config));
    banner "E1 landmarks";
    let lm = if quick then Eval.Landmark_sweep.quick_config else Eval.Landmark_sweep.default_config in
    Eval.Landmark_sweep.print (Eval.Landmark_sweep.run lm);
    Eval.Landmark_sweep.print_ablation (Eval.Landmark_sweep.run_round1_ablation lm);
    banner "E2 super-peers";
    Eval.Super_peer_exp.print
      (Eval.Super_peer_exp.run
         (if quick then Eval.Super_peer_exp.quick_config else Eval.Super_peer_exp.default_config));
    banner "E3 churn";
    Eval.Churn_exp.print
      (Eval.Churn_exp.run (if quick then Eval.Churn_exp.quick_config else Eval.Churn_exp.default_config));
    banner "E4 truncate";
    Eval.Truncate_exp.print
      (Eval.Truncate_exp.run
         (if quick then Eval.Truncate_exp.quick_config else Eval.Truncate_exp.default_config));
    banner "E5 setup delay";
    Eval.Setup_delay.print
      (Eval.Setup_delay.run
         (if quick then Eval.Setup_delay.quick_config else Eval.Setup_delay.default_config));
    banner "metric ablation";
    Eval.Metric_ablation.print
      (Eval.Metric_ablation.run
         (if quick then Eval.Metric_ablation.quick_config else Eval.Metric_ablation.default_config));
    banner "streaming";
    Eval.Streaming_exp.print
      (Eval.Streaming_exp.run
         (if quick then Eval.Streaming_exp.quick_config else Eval.Streaming_exp.default_config));
    banner "stretch analysis";
    Eval.Stretch_analysis.print
      (Eval.Stretch_analysis.run
         (if quick then Eval.Stretch_analysis.quick_config else Eval.Stretch_analysis.default_config));
    banner "maintenance";
    Eval.Maintenance_exp.print
      (Eval.Maintenance_exp.run
         (if quick then Eval.Maintenance_exp.quick_config else Eval.Maintenance_exp.default_config));
    banner "topologies";
    Eval.Topology_sensitivity.print
      (Eval.Topology_sensitivity.run
         (if quick then Eval.Topology_sensitivity.quick_config
          else Eval.Topology_sensitivity.default_config));
    banner "dht";
    Eval.Dht_exp.print
      (Eval.Dht_exp.run (if quick then Eval.Dht_exp.quick_config else Eval.Dht_exp.default_config));
    banner "inflation";
    Eval.Inflation_exp.print
      (Eval.Inflation_exp.run
         (if quick then Eval.Inflation_exp.quick_config else Eval.Inflation_exp.default_config));
    banner "bulk";
    Eval.Bulk_exp.print
      (Eval.Bulk_exp.run (if quick then Eval.Bulk_exp.quick_config else Eval.Bulk_exp.default_config));
    banner "joining";
    Eval.Joining_exp.print
      (Eval.Joining_exp.run
         (if quick then Eval.Joining_exp.quick_config else Eval.Joining_exp.default_config));
    exit_ok
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment in DESIGN.md's index.")
    Term.(ret (const run $ quick_flag $ seed_opt))

let top_cmd =
  let once_arg =
    let doc =
      "Run the fleet to completion and print one final frame (no escape sequences) — the \
       headless / CI capture mode."
    in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let frames_arg =
    let doc = "Number of refresh frames to render across the run (live mode)." in
    Arg.(value & opt int 12 & info [ "frames" ] ~doc ~docv:"N")
  in
  let refresh_arg =
    let doc = "Wall-clock delay between live frames, milliseconds." in
    Arg.(value & opt float 500.0 & info [ "refresh-ms" ] ~doc ~docv:"MS")
  in
  let replicas_arg =
    let doc = "Number of management-server replicas." in
    Arg.(value & opt int 3 & info [ "replicas" ] ~doc ~docv:"N")
  in
  let shards_arg =
    let doc = "Shards per replica's registry backend." in
    Arg.(value & opt int 4 & info [ "shards" ] ~doc ~docv:"N")
  in
  let metrics_out_arg =
    let doc =
      "Write the final JSON metrics snapshot (merged fleet section, labeled series, runtime \
       profile, windowed timeseries) to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")
  in
  let run quick seed routers peers k replicas shards once frames refresh_ms slos metrics_out
      prom_out =
    match parse_slos slos with
    | Error e -> `Error (false, e)
    | Ok slo_list -> (
        let config =
          if quick then Eval.Fleet_obs.quick_config else Eval.Fleet_obs.default_config
        in
        let config = override seed (fun c v -> { c with Eval.Fleet_obs.seed = v }) config in
        let config = override routers (fun c v -> { c with Eval.Fleet_obs.routers = v }) config in
        let config = override peers (fun c v -> { c with Eval.Fleet_obs.peers = v }) config in
        let config = override k (fun c v -> { c with Eval.Fleet_obs.k = v }) config in
        let config = { config with Eval.Fleet_obs.replicas; shards } in
        let config =
          if slo_list = [] then config else { config with Eval.Fleet_obs.slos = slo_list }
        in
        match Eval.Fleet_obs.start config with
        | exception Invalid_argument msg -> `Error (false, msg)
        | t ->
            let horizon = Eval.Fleet_obs.horizon t in
            if once then begin
              Eval.Fleet_obs.advance t ~until:horizon;
              print_string (Eval.Fleet_obs.render t)
            end
            else begin
              let frames = max 1 frames in
              for i = 1 to frames do
                Eval.Fleet_obs.advance t
                  ~until:(horizon *. float_of_int i /. float_of_int frames);
                (* Clear between frames, never inside one: a killed render
                   still leaves the terminal on a frame boundary. *)
                if i > 1 then print_string "\027[2J\027[H";
                print_string (Eval.Fleet_obs.render t);
                flush stdout;
                if i < frames then Unix.sleepf (Float.max 0.0 refresh_ms /. 1000.0)
              done
            end;
            (match metrics_out with
            | Some file ->
                let meta =
                  Simkit.Export.capture_meta ~seed:config.Eval.Fleet_obs.seed
                    ~extra:
                      [
                        ("replicas", string_of_int replicas); ("shards", string_of_int shards);
                      ]
                    ()
                in
                Simkit.Export.write_file file
                  (Simkit.Export.metrics_json ~meta
                     ~timeseries:[ ("fleet", Eval.Fleet_obs.timeseries t) ]
                     ~labeled:
                       [
                         ("fleet", Eval.Fleet_obs.metrics t);
                         ("replicas", Eval.Fleet_obs.scrape t);
                       ]
                     ~runtime:(Eval.Fleet_obs.runtime t)
                     [ ("fleet", Eval.Fleet_obs.fleet_trace t) ]);
                Printf.printf "wrote metrics snapshot to %s\n%!" file
            | None -> ());
            (match prom_out with
            | Some file ->
                Simkit.Export.write_file file
                  (Simkit.Export.prometheus_labeled
                     [
                       ("fleet", Eval.Fleet_obs.metrics t);
                       ("replicas", Eval.Fleet_obs.scrape t);
                     ]);
                Printf.printf "wrote Prometheus exposition to %s\n%!" file
            | None -> ());
            exit_ok)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live fleet dashboard: a replicated cluster over sharded registries fills with joins \
          while refreshing panels show ops/s, join p50/p99, SLO burn status, GC and \
          domain-pool utilization, and shard occupancy skew.  $(b,--once) renders a single \
          final frame for CI.")
    Term.(
      ret
        (const run $ quick_flag $ seed_opt $ routers_opt $ peers_opt $ k_opt $ replicas_arg
       $ shards_arg $ once_arg $ frames_arg $ refresh_arg $ slo_opt $ metrics_out_arg
       $ prom_out_opt))

let () =
  let info =
    Cmd.info "nearby_sim" ~version:"1.0.0"
      ~doc:"Experiments for the landmark/traceroute nearby-peer discovery system."
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            fig2_cmd;
            landmarks_cmd;
            superpeers_cmd;
            churn_cmd;
            truncate_cmd;
            setup_delay_cmd;
            complexity_cmd;
            metric_cmd;
            streaming_cmd;
            stretch_cmd;
            maintenance_cmd;
            topologies_cmd;
            dht_cmd;
            registry_cmd;
            inflation_cmd;
            bulk_cmd;
            joining_cmd;
            resilience_cmd;
            load_cmd;
            top_cmd;
            trace_cmd;
            verify_cmd;
            all_cmd;
          ]))
