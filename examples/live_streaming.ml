(* Live streaming join scenario (the paper's motivating application, Section 1).

   A mesh-based live streaming swarm is already running; newcomers arrive
   and must pick neighbors before playback can start.  We drive the joins
   through the event-driven protocol on a latency-weighted map, so every
   newcomer is charged its real protocol time, and then compare:

   - setup delay: time from join start until the neighbor reply arrives;
   - neighbor proximity: hop distance to the chosen neighbors (what chunk
     exchange latency and playback-delay alignment depend on)
   against random selection and against waiting for Vivaldi to converge. *)

let routers = 1200
let initial_swarm = 150
let newcomers = 50
let k = 4
let seed = 42

let () =
  let w =
    Eval.Workload.build ~routers ~landmark_count:6
      ~latency:(Topology.Latency.Core_weighted { core_ms = 2.0; edge_ms = 15.0; threshold = 8 })
      ~peers:(initial_swarm + newcomers) ~seed ()
  in
  let rng = w.rng in
  Format.printf "Swarm bootstrap: %d peers already in the mesh, %d newcomers to join.@."
    initial_swarm newcomers;

  (* Stand the server up and pre-register the existing swarm. *)
  let engine = Simkit.Engine.create () in
  let server = Nearby.Server.create ?latency:w.ctx.latency w.ctx.oracle ~landmarks:w.landmarks in
  let server_router = w.landmarks.(0) in
  let protocol = Nearby.Protocol.create ?latency:w.ctx.latency ~engine ~server_router server in
  for peer = 0 to initial_swarm - 1 do
    ignore (Nearby.Server.join server ~peer ~attach_router:w.peer_routers.(peer))
  done;

  (* Newcomers join through the timed protocol. *)
  let setup = Prelude.Stats.create () in
  let neighbor_hops = Prelude.Stats.create () in
  for peer = initial_swarm to initial_swarm + newcomers - 1 do
    let attach_router = w.peer_routers.(peer) in
    let started_at = Simkit.Engine.now engine in
    Nearby.Protocol.join protocol ~peer ~attach_router ~k ~on_complete:(fun _info reply ->
        Prelude.Stats.add setup (Simkit.Engine.now engine -. started_at);
        List.iter
          (fun (neighbor, _) ->
            let hops =
              Topology.Bfs.distance w.ctx.graph attach_router w.peer_routers.(neighbor)
            in
            if hops <> max_int then Prelude.Stats.add neighbor_hops (float_of_int hops))
          reply)
  done;
  Simkit.Engine.run engine;

  Format.printf "@.Proposed scheme (landmark traceroute + management server):@.";
  Format.printf "  mean setup delay: %.0f ms (min %.0f, max %.0f)@." (Prelude.Stats.mean setup)
    (Prelude.Stats.min_value setup) (Prelude.Stats.max_value setup);
  Format.printf "  mean hop distance to chosen neighbors: %.2f@." (Prelude.Stats.mean neighbor_hops);

  (* Random selection: instant but far away. *)
  let random_hops = Prelude.Stats.create () in
  for peer = initial_swarm to initial_swarm + newcomers - 1 do
    for _ = 1 to k do
      let other = Prelude.Prng.int rng initial_swarm in
      let hops = Topology.Bfs.distance w.ctx.graph w.peer_routers.(peer) w.peer_routers.(other) in
      if hops <> max_int then Prelude.Stats.add random_hops (float_of_int hops)
    done
  done;
  Format.printf "@.Random selection (zero setup):@.";
  Format.printf "  mean hop distance to chosen neighbors: %.2f@." (Prelude.Stats.mean random_hops);

  (* Vivaldi needs rounds of gossip before its estimates are usable. *)
  let rounds = 15 and round_period_ms = 250.0 in
  Format.printf "@.Vivaldi after %d gossip rounds (setup %.0f ms):@." rounds
    (Nearby.Protocol.vivaldi_setup_delay ~rounds ~round_period_ms);
  let sets =
    Nearby.Selector.select w.ctx
      (Vivaldi_rounds { rounds; params = Coord.Vivaldi.default_params })
      ~k ~rng
  in
  let vivaldi_hops = Prelude.Stats.create () in
  for peer = initial_swarm to initial_swarm + newcomers - 1 do
    Array.iter
      (fun neighbor ->
        let hops = Topology.Bfs.distance w.ctx.graph w.peer_routers.(peer) w.peer_routers.(neighbor) in
        if hops <> max_int then Prelude.Stats.add vivaldi_hops (float_of_int hops))
      sets.(peer)
  done;
  Format.printf "  mean hop distance to chosen neighbors: %.2f@." (Prelude.Stats.mean vivaldi_hops);

  Format.printf
    "@.Takeaway: one traceroute's worth of setup buys near-Vivaldi proximity@.\
     thousands of milliseconds sooner - the paper's \"quicker way\".@."
