(* Running the discovery service on interchangeable registry backends.

   The server talks to its per-landmark store through the first-class
   [Nearby.Registry_intf.S] seam, so the same deployment runs centralized
   (path tree), decentralized over a Chord ring, delegated to super-peer
   region stores, or hash-sharded — answers are identical, only the cost
   model changes.  This example joins one swarm under every backend,
   verifies the replies match, and prints what each backend reports
   through the uniform [stats] channel. *)

let () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 1000) ~seed:11 in
  let rng = Prelude.Prng.create 11 in
  let landmarks = Nearby.Landmark.place map.graph Nearby.Landmark.Spread ~count:4 ~rng in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let peers = 150 in
  let k = 5 in
  let attach = Array.init peers (fun i -> map.leaves.(i mod Array.length map.leaves)) in

  (* One server per backend, same join sequence. *)
  let deploy backend =
    let server = Nearby.Server.create ~backend oracle ~landmarks in
    for peer = 0 to peers - 1 do
      ignore (Nearby.Server.join server ~peer ~attach_router:attach.(peer))
    done;
    server
  in
  let servers = List.map (fun spec -> deploy (Eval.Backends.backend spec)) Eval.Backends.all in
  let central = List.hd servers in

  (* Same answers from every backend. *)
  List.iter
    (fun server ->
      let mismatches = ref 0 in
      for peer = 0 to peers - 1 do
        if Nearby.Server.neighbors server ~peer ~k <> Nearby.Server.neighbors central ~peer ~k
        then incr mismatches
      done;
      Format.printf "%-10s answers differing from the path tree: %d / %d peers@."
        (Nearby.Server.backend_name server)
        !mismatches peers)
    servers;

  (* Different cost models, one metrics channel. *)
  Format.printf "@.per-backend registry stats (merged across the %d landmarks):@."
    (Array.length landmarks);
  List.iter
    (fun server ->
      let stats =
        Nearby.Server.registry_stats server
        |> List.map (fun (key, v) -> Printf.sprintf "%s=%d" key v)
        |> String.concat " "
      in
      Format.printf "  %-10s %s@." (Nearby.Server.backend_name server) stats)
    servers;

  (* The DHT backend still exposes the decentralization story: lookup
     traffic on the overlay and storage spread over the ring. *)
  let dht = deploy (Dht.Registry.backend ~nodes:16 ~virtual_nodes:8 ()) in
  let stats = Nearby.Server.registry_stats dht in
  let get key = Option.value ~default:0 (List.assoc_opt key stats) in
  Format.printf "@.a 16-node ring: %d DHT lookups, %.2f overlay hops each@." (get "lookups")
    (float_of_int (get "overlay_hops") /. float_of_int (max 1 (get "lookups")))
