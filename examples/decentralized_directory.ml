(* Running the discovery service without the central server.

   The same landmark path trees, sharded over the participants: bucket
   ownership via a Chord ring (with virtual nodes), answers identical to
   the centralized deployment.  This example registers a swarm both ways
   and shows the answers match, then prints what decentralization costs
   (overlay hops) and buys (storage spread). *)

let () =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 1000) ~seed:11 in
  let rng = Prelude.Prng.create 11 in
  let landmarks = Nearby.Landmark.place map.graph Nearby.Landmark.Spread ~count:4 ~rng in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let peers = 150 in
  let attach = Array.init peers (fun i -> map.leaves.(i mod Array.length map.leaves)) in

  (* Centralized deployment. *)
  let server = Nearby.Server.create oracle ~landmarks in
  for peer = 0 to peers - 1 do
    ignore (Nearby.Server.join server ~peer ~attach_router:attach.(peer))
  done;

  (* Decentralized: 16 storage nodes, one directory shard per landmark. *)
  let storage_nodes = Array.init 16 (fun i -> 9000 + i) in
  let shards = Hashtbl.create 4 in
  Array.iter
    (fun lmk ->
      Hashtbl.add shards lmk (Dht.Directory.create ~virtual_nodes:8 ~landmark:lmk storage_nodes))
    landmarks;
  for peer = 0 to peers - 1 do
    let info = Option.get (Nearby.Server.info server peer) in
    Dht.Directory.insert (Hashtbl.find shards info.landmark) ~peer
      ~routers:(Traceroute.Path.known_routers info.recorded_path)
  done;

  (* Same answers, different cost model. *)
  let mismatches = ref 0 in
  for peer = 0 to peers - 1 do
    let info = Option.get (Nearby.Server.info server peer) in
    let central =
      Nearby.Server.neighbors server ~peer ~k:5 |> List.filter (fun (_, d) -> d <> max_int)
    in
    let dht = Dht.Directory.query_member (Hashtbl.find shards info.landmark) ~peer ~k:5 in
    if central <> dht then incr mismatches
  done;
  Format.printf "answers differing from the central server: %d / %d peers@." !mismatches peers;

  let lookups = ref 0 and hops = ref 0 in
  Hashtbl.iter
    (fun _ shard ->
      let stats = Dht.Directory.stats shard in
      lookups := !lookups + stats.lookups;
      hops := !hops + stats.overlay_hops)
    shards;
  Format.printf "total DHT lookups %d, %.2f overlay hops each@." !lookups
    (float_of_int !hops /. float_of_int (max 1 !lookups));

  (* Storage spread across the 16 nodes. *)
  let per_node = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ shard ->
      List.iter
        (fun (node, buckets) ->
          Hashtbl.replace per_node node (buckets + Option.value ~default:0 (Hashtbl.find_opt per_node node)))
        (Dht.Directory.stats shard).buckets_per_node)
    shards;
  Format.printf "router buckets per storage node:@.";
  Hashtbl.fold (fun node buckets acc -> (node, buckets) :: acc) per_node []
  |> List.sort compare
  |> List.iter (fun (node, buckets) -> Format.printf "  node %d: %d buckets@." node buckets)
