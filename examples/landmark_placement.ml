(* Landmark placement study (extension E1 at example scale).

   How many landmarks does the scheme need, and where should an operator
   put them?  Sweeps placement policies on one map and prints the quality
   each combination achieves, then the round-1 ablation (what the closest-
   landmark ping round actually buys). *)

let () =
  let config =
    {
      Eval.Landmark_sweep.routers = 1200;
      peers = 300;
      k = 5;
      counts = [ 1; 2; 4; 8; 16 ];
      policies = Nearby.Landmark.all_policies;
      seeds = [ 5 ];
    }
  in
  Format.printf "Sweeping %d routers / %d peers / k = %d...@.@." config.routers config.peers config.k;
  Eval.Landmark_sweep.print (Eval.Landmark_sweep.run config);
  print_newline ();
  Eval.Landmark_sweep.print_ablation (Eval.Landmark_sweep.run_round1_ablation config);
  print_newline ();
  print_endline "Reading the tables:";
  print_endline "- even 4-8 medium-degree landmarks get close to the best quality;";
  print_endline "- high-degree (core) placement wastes landmarks: routes collapse onto the";
  print_endline "  same few hub routers and meeting points lose resolution;";
  print_endline "- skipping round 1 (random landmark instead of closest) costs quality as";
  print_endline "  soon as there is more than one landmark, because peers stop being";
  print_endline "  grouped regionally."
