(* Bring your own Internet map.

   The reproduction runs on synthetic Magoni-style maps, but everything
   downstream only needs a Topology.Graph.t - so a real measured router
   map (nem, Rocketfuel, CAIDA exports...) can be dropped in as an edge
   list.  This example round-trips a map through the edge-list format,
   verifies the reload is identical, and runs the discovery pipeline on
   the loaded copy. *)

let () =
  (* 1. Pretend this is your measured map: save one to disk. *)
  let original = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 1000) ~seed:9 in
  let path = Filename.temp_file "router_map" ".edges" in
  Topology.Io.save_edge_list original.graph path;
  Format.printf "wrote %a@.  -> %s@." Topology.Graph.pp original.graph path;

  (* 2. Load it back; same graph.  (compact:false keeps the original ids;
     the default renumbers densely in first-appearance order, which is what
     you want for datasets with sparse id spaces.) *)
  let graph = Topology.Io.load_edge_list ~compact:false path in
  assert (Topology.Graph.edges graph = Topology.Graph.edges original.graph);
  Format.printf "reloaded identically: %d nodes, %d edges@." (Topology.Graph.node_count graph)
    (Topology.Graph.edge_count graph);

  (* 3. Run discovery on the loaded map: place landmarks, join peers, ask
     for neighbors. *)
  let rng = Prelude.Prng.create 9 in
  let landmarks = Nearby.Landmark.place graph Nearby.Landmark.Spread ~count:4 ~rng in
  let oracle = Traceroute.Route_oracle.create graph in
  let server = Nearby.Server.create oracle ~landmarks in
  let leaves = Array.of_list (Topology.Graph.nodes_with_degree graph 1) in
  Format.printf "landmarks on routers: %s; %d degree-1 attachment routers@."
    (String.concat ", " (Array.to_list (Array.map string_of_int landmarks)))
    (Array.length leaves);
  let peer_count = min 100 (Array.length leaves) in
  for peer = 0 to peer_count - 1 do
    ignore (Nearby.Server.join server ~peer ~attach_router:leaves.(peer))
  done;
  let reply = Nearby.Server.neighbors server ~peer:0 ~k:5 in
  Format.printf "peer 0's neighbors (peer, inferred distance): %s@."
    (String.concat "; " (List.map (fun (p, d) -> Printf.sprintf "(%d, %d)" p d) reply));

  (* 4. Export a small illustration with the landmarks highlighted. *)
  let drawing = Eval.Paper_drawing.build () in
  let dot = Topology.Io.to_dot ~highlight:[ drawing.lmk ] drawing.graph in
  let dot_path = Filename.temp_file "drawing" ".dot" in
  let oc = open_out dot_path in
  output_string oc dot;
  close_out oc;
  Format.printf "paper drawing exported as Graphviz: %s@." dot_path;
  Sys.remove path
