(* Quickstart: the paper's drawing, end to end.

   Builds the exact topology of the paper's first figure, registers the four
   peers' routes in a landmark path tree, and shows why the inferred
   distance dtree(p1,p2) (through the meeting point rc) differs from the
   true shortest path d(p1,p2), yet still ranks p2 as p1's closest peer.
   Then the same flow through the full management server API. *)

let () =
  let d = Eval.Paper_drawing.build () in
  let name = Eval.Paper_drawing.name_of d in
  Format.printf "Topology from the paper's drawing: %a@.@." Topology.Graph.pp d.graph;

  (* 1. The traceroute-like tool records each peer's route to the landmark. *)
  let oracle = Traceroute.Route_oracle.create d.graph in
  let route_of src = Traceroute.Route_oracle.route oracle ~src ~dst:d.lmk in
  let show_route src =
    Format.printf "  route %s -> lmk: %s@." (name src)
      (String.concat " - " (List.map name (route_of src)))
  in
  List.iter show_route [ d.p1; d.p2; d.p3; d.p4 ];

  (* 2. Register the routes in the landmark's path tree. *)
  let tree = Nearby.Path_tree.create ~landmark:d.lmk in
  let peers = Eval.Paper_drawing.peer_attach_routers d in
  Array.iteri
    (fun peer attach -> Nearby.Path_tree.insert tree ~peer ~routers:(Array.of_list (route_of attach)))
    peers;

  (* 3. Meeting point and inferred distance for the highlighted pair. *)
  (match Nearby.Path_tree.meeting_point tree 0 1 with
  | Some (router, d1, d2) ->
      Format.printf "@.meeting point of p1 and p2: %s (p1 at %d hops, p2 at %d hops)@." (name router)
        d1 d2;
      Format.printf "dtree(p1, p2) = %d hops@." (d1 + d2)
  | None -> assert false);
  let true_d = Topology.Bfs.distance d.graph d.p1 d.p2 in
  Format.printf "true shortest path d(p1, p2) = %d hops (via the stub cross link r1 - r3)@." true_d;

  (* 4. Same thing through the management-server front door. *)
  let server = Nearby.Server.create oracle ~landmarks:[| d.lmk |] in
  Array.iteri (fun peer attach_router -> ignore (Nearby.Server.join server ~peer ~attach_router)) peers;
  Format.printf "@.server reply for p1 (closest first):@.";
  List.iter
    (fun (peer, dtree) -> Format.printf "  p%d at inferred distance %d@." (peer + 1) dtree)
    (Nearby.Server.neighbors server ~peer:0 ~k:3);
  Format.printf
    "@.The inferred path overshoots (dtree = 6 > d = %d, it climbs to the meeting@.\
     point rc) - but the ranking is still right: p2 first, exactly the paper's point.@."
    true_d
