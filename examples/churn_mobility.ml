(* Churn and mobility scenario (extension E3 at example scale).

   Peers arrive as a Poisson process, stay for heavy-tailed sessions, and
   depart by graceful leave, silent crash (detected only after a timeout)
   or mobility handover (instant re-join from a different access router).
   The example also demonstrates the handover API directly on one peer. *)

let () =
  (* 1. One peer's handover, step by step. *)
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 800) ~seed:3 in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let rng = Prelude.Prng.create 3 in
  let landmarks = Nearby.Landmark.place map.graph Nearby.Landmark.Medium_degree ~count:4 ~rng in
  let server = Nearby.Server.create oracle ~landmarks in
  let home = map.leaves.(0) and away = map.leaves.(Array.length map.leaves - 1) in
  let info = Nearby.Server.join server ~peer:0 ~attach_router:home in
  Format.printf "peer 0 joins at router %d -> landmark %d, %d-hop path@." home info.landmark
    (Traceroute.Path.hop_count info.recorded_path);
  let info' = Nearby.Server.handover server ~peer:0 ~attach_router:away in
  Format.printf "peer 0 hands over to router %d -> landmark %d, %d-hop path@." away info'.landmark
    (Traceroute.Path.hop_count info'.recorded_path);
  Format.printf "  (the server re-registered the peer under its new closest landmark)@.@.";

  (* 2. Population-scale churn. *)
  let config = Eval.Churn_exp.quick_config in
  let detection_note =
    match config.detection with
    | Eval.Churn_exp.Fixed_delay d -> Printf.sprintf "crashes detected after a fixed %.0f s" (d /. 1000.0)
    | Eval.Churn_exp.Heartbeat fd ->
        Printf.sprintf "heartbeat detector: %.0f s beats, %.1f s timeout"
          (fd.heartbeat_period_ms /. 1000.0) (fd.timeout_ms /. 1000.0)
  in
  Format.printf "Running the churn simulation (%.0f s horizon, %s)...@.@."
    (config.spec.horizon_ms /. 1000.0) detection_note;
  Eval.Churn_exp.print (Eval.Churn_exp.run config);
  print_newline ();
  print_endline "Reading the table: quality stays near the static-population level while";
  print_endline "peers come and go; the stale fraction tracks crashed-but-undetected peers";
  print_endline "and is bounded by the detection timeout."
