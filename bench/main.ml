(* Benchmark harness.

   Two layers:
   - Bechamel micro-benchmarks of the paper's complexity-critical operations
     (path-tree insertion and query at growing populations - the O(log n) /
     O(1) claim - plus substrate hot paths);
   - regeneration of every evaluation artifact in DESIGN.md's experiment
     index (fig2 and the E1..E5 tables), printed as the rows the paper
     reports.

   `dune exec bench/main.exe` runs everything in quick mode;
   `dune exec bench/main.exe -- <experiment> [--full]` runs one experiment,
   optionally at the paper-scale configuration. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks *)

type tree_fixture = {
  tree : Nearby.Path_tree.t;
  routes : int array array;  (* leaf index -> route to the landmark *)
  population : int;
  mutable next_peer : int;
}

let make_fixture ~routers ~population ~seed =
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params routers) ~seed in
  let rng = Prelude.Prng.create seed in
  let landmark =
    (Nearby.Landmark.place map.graph Nearby.Landmark.Medium_degree ~count:1 ~rng).(0)
  in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let routes =
    Array.map
      (fun leaf -> Array.of_list (Traceroute.Route_oracle.route oracle ~src:leaf ~dst:landmark))
      map.leaves
  in
  let tree = Nearby.Path_tree.create ~landmark in
  for peer = 0 to population - 1 do
    Nearby.Path_tree.insert tree ~peer ~routers:routes.(peer mod Array.length routes)
  done;
  { tree; routes; population; next_peer = population }

let micro_tests () =
  let sizes = [ 1_000; 4_000; 16_000; 64_000 ] in
  let fixtures = List.map (fun n -> (n, make_fixture ~routers:2000 ~population:n ~seed:7)) sizes in
  let insert_tests =
    let make (n, fx) =
      Test.make ~name:(Printf.sprintf "path_tree/insert/n=%d" n)
        (Staged.stage (fun () ->
             (* Insert a fresh peer then remove it, so the population stays
                at n across runs. *)
             let peer = fx.next_peer in
             fx.next_peer <- fx.next_peer + 1;
             Nearby.Path_tree.insert fx.tree ~peer
               ~routers:fx.routes.(peer mod Array.length fx.routes);
             Nearby.Path_tree.remove fx.tree peer))
    in
    List.map make fixtures
  in
  let query_tests =
    let make (n, fx) =
      let counter = ref 0 in
      Test.make ~name:(Printf.sprintf "path_tree/query/n=%d" n)
        (Staged.stage (fun () ->
             let peer = !counter mod fx.population in
             incr counter;
             ignore (Nearby.Path_tree.query_member fx.tree ~peer ~k:5)))
    in
    List.map make fixtures
  in
  let substrate =
    let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params 2000) ~seed:11 in
    let oracle = Traceroute.Route_oracle.create map.graph in
    let leaf_count = Array.length map.leaves in
    let counter = ref 0 in
    [
      Test.make ~name:"topology/bfs/2000-routers"
        (Staged.stage (fun () ->
             let src = map.leaves.(!counter mod leaf_count) in
             incr counter;
             ignore (Topology.Bfs.distances map.graph src)));
      Test.make ~name:"traceroute/probe/cached-tree"
        (Staged.stage (fun () ->
             let src = map.leaves.(!counter mod leaf_count) in
             incr counter;
             ignore (Traceroute.Probe.run oracle ~src ~dst:map.core.(0))));
      (let rng = Prelude.Prng.create 3 in
       Test.make ~name:"prelude/prng/int"
         (Staged.stage (fun () -> ignore (Prelude.Prng.int rng 1_000_000))));
    ]
  in
  Test.make_grouped ~name:"micro" (insert_tests @ query_tests @ substrate)

let run_micro () =
  print_endline "== Bechamel micro-benchmarks (ns/op, OLS on monotonic clock) ==";
  let tests = micro_tests () in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let estimate =
          match Analyze.OLS.estimates ols_result with Some [ e ] -> e | _ -> nan
        in
        let r2 = match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan in
        (name, estimate, r2) :: acc)
      results []
    |> List.sort compare
  in
  Prelude.Table.print
    ~header:[ "benchmark"; "ns/op"; "r^2" ]
    (List.map
       (fun (name, est, r2) ->
         [ name; Prelude.Table.float_cell ~decimals:1 est; Prelude.Table.float_cell ~decimals:4 r2 ])
       rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Experiment regeneration *)

let banner title = Printf.printf "\n================ %s ================\n%!" title

let run_fig2 ~full =
  banner "fig2 (the paper's measured figure)";
  let config = if full then Eval.Fig2.default_config else Eval.Fig2.quick_config in
  Eval.Fig2.print (Eval.Fig2.run config)

let run_complexity ~full =
  banner "complexity table (O(log n) insert / O(1) query)";
  let config = if full then Eval.Complexity.default_config else Eval.Complexity.quick_config in
  Eval.Complexity.print (Eval.Complexity.run config)

let run_landmarks ~full =
  banner "E1 landmark count x placement";
  let config =
    if full then Eval.Landmark_sweep.default_config else Eval.Landmark_sweep.quick_config
  in
  Eval.Landmark_sweep.print (Eval.Landmark_sweep.run config);
  print_newline ();
  Eval.Landmark_sweep.print_ablation (Eval.Landmark_sweep.run_round1_ablation config)

let run_superpeers ~full =
  banner "E2 super-peers";
  let config =
    if full then Eval.Super_peer_exp.default_config else Eval.Super_peer_exp.quick_config
  in
  Eval.Super_peer_exp.print (Eval.Super_peer_exp.run config)

let run_churn ~full =
  banner "E3 churn / failures / handover";
  let config = if full then Eval.Churn_exp.default_config else Eval.Churn_exp.quick_config in
  Eval.Churn_exp.print (Eval.Churn_exp.run config)

let run_truncate ~full =
  banner "E4 decreased traceroute";
  let config = if full then Eval.Truncate_exp.default_config else Eval.Truncate_exp.quick_config in
  Eval.Truncate_exp.print (Eval.Truncate_exp.run config)

let run_setup_delay ~full =
  banner "E5 setup delay vs quality";
  let config = if full then Eval.Setup_delay.default_config else Eval.Setup_delay.quick_config in
  Eval.Setup_delay.print (Eval.Setup_delay.run config)

let run_metric ~full =
  banner "ablation: hop vs latency dtree";
  let config =
    if full then Eval.Metric_ablation.default_config else Eval.Metric_ablation.quick_config
  in
  Eval.Metric_ablation.print (Eval.Metric_ablation.run config)

let run_streaming ~full =
  banner "application: mesh live streaming";
  let config =
    if full then Eval.Streaming_exp.default_config else Eval.Streaming_exp.quick_config
  in
  Eval.Streaming_exp.print (Eval.Streaming_exp.run config)

let run_stretch ~full =
  banner "stretch analysis (graph-oriented dtree vs d)";
  let config =
    if full then Eval.Stretch_analysis.default_config else Eval.Stretch_analysis.quick_config
  in
  Eval.Stretch_analysis.print (Eval.Stretch_analysis.run config)

let run_maintenance ~full =
  banner "maintenance: frozen vs refreshed neighbor sets under churn";
  let config =
    if full then Eval.Maintenance_exp.default_config else Eval.Maintenance_exp.quick_config
  in
  Eval.Maintenance_exp.print (Eval.Maintenance_exp.run config)

let run_topology_sensitivity ~full =
  banner "topology sensitivity (heavy tail vs homogeneous maps)";
  let config =
    if full then Eval.Topology_sensitivity.default_config else Eval.Topology_sensitivity.quick_config
  in
  Eval.Topology_sensitivity.print (Eval.Topology_sensitivity.run config)

let run_dht ~full =
  banner "dht: decentralized directory (Chord)";
  let config = if full then Eval.Dht_exp.default_config else Eval.Dht_exp.quick_config in
  Eval.Dht_exp.print (Eval.Dht_exp.run config)

let run_inflation ~full =
  banner "inflation: robustness to policy routing";
  let config = if full then Eval.Inflation_exp.default_config else Eval.Inflation_exp.quick_config in
  Eval.Inflation_exp.print (Eval.Inflation_exp.run config)

let run_bulk ~full =
  banner "application: bulk file swarm";
  let config = if full then Eval.Bulk_exp.default_config else Eval.Bulk_exp.quick_config in
  Eval.Bulk_exp.print (Eval.Bulk_exp.run config)

let run_joining ~full =
  banner "joining: newcomer time-to-playback mid-stream";
  let config = if full then Eval.Joining_exp.default_config else Eval.Joining_exp.quick_config in
  Eval.Joining_exp.print (Eval.Joining_exp.run config)

(* ------------------------------------------------------------------ *)
(* Registry backend throughput *)

let time_ops f =
  let t0 = Sys.time () in
  let ops = f () in
  let dt = Sys.time () -. t0 in
  float_of_int ops /. Float.max dt 1e-9

(* Wall-clock throughput for the scaling sweep: [Sys.time] counts process
   CPU seconds, which over-charges anything that fans work out to Domain
   workers, so the sweep times on the wall instead. *)
let wall_ops f =
  let t0 = Unix.gettimeofday () in
  let ops = f () in
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int ops /. Float.max dt 1e-9

type sweep_row = {
  sw_n : int;
  sw_backend : string;
  sw_insert_ops : float;
  sw_query_ops : float;
  sw_members : int;
  sw_bytes : int;
  sw_identical : bool;
}

(* The million-member scaling sweep: tree vs sharded:4 at growing
   populations, built with the batch interface ([insert_many] in 8192-entry
   chunks) and queried with [query_member_many], cross-checking answer
   equivalence at every point.  One build per (n, backend) — a 1M build is
   seconds long, repetition buys nothing — while the query batch repeats
   until the clock has something to measure. *)
let run_sweep ~sweep_max =
  banner "registry scaling sweep (batch insert/query, tree vs sharded)";
  let sizes = List.filter (fun n -> n <= sweep_max) [ 10_000; 100_000; 1_000_000 ] in
  if sizes = [] then invalid_arg "bench registry: --sweep-max below the smallest sweep point";
  let k = 5 in
  let chunk = 8192 in
  let fx = make_fixture ~routers:2000 ~population:0 ~seed:7 in
  let landmark = Nearby.Path_tree.landmark fx.tree in
  let route_of peer = fx.routes.(peer mod Array.length fx.routes) in
  let specs = [ Eval.Backends.Tree; Eval.Backends.Sharded { shards = 4 } ] in
  let rows =
    List.concat_map
      (fun n ->
        let query_count = min n 2_000 in
        let stride = n / query_count in
        let queries = Array.init query_count (fun i -> i * stride) in
        let reference = ref None in
        List.map
          (fun spec ->
            let reg = Nearby.Registry_intf.create (Eval.Backends.backend spec) ~landmark in
            let insert_ops =
              wall_ops (fun () ->
                  let peer = ref 0 in
                  while !peer < n do
                    let m = min chunk (n - !peer) in
                    let base = !peer in
                    Nearby.Registry_intf.insert_many reg
                      (Array.init m (fun i -> (base + i, route_of (base + i))));
                    peer := base + m
                  done;
                  n)
            in
            let answers = Nearby.Registry_intf.query_member_many reg ~peers:queries ~k in
            let reps = ref 1 in
            let t0 = Unix.gettimeofday () in
            let elapsed () = Unix.gettimeofday () -. t0 in
            while !reps < 50 && (!reps < 3 || elapsed () < 0.5) do
              ignore (Nearby.Registry_intf.query_member_many reg ~peers:queries ~k);
              incr reps
            done;
            (* The first batch ran outside the window; count only the timed
               reps.  [reps] includes it, so subtract one. *)
            let query_ops =
              float_of_int ((!reps - 1) * query_count) /. Float.max (elapsed ()) 1e-9
            in
            let identical =
              match !reference with
              | None ->
                  reference := Some answers;
                  true
              | Some r -> answers = r
            in
            let intro = Nearby.Registry_intf.introspect reg in
            {
              sw_n = n;
              sw_backend = Eval.Backends.to_string spec;
              sw_insert_ops = insert_ops;
              sw_query_ops = query_ops;
              sw_members = intro.Nearby.Registry_intf.members;
              sw_bytes = intro.Nearby.Registry_intf.approx_bytes;
              sw_identical = identical;
            })
          specs)
      sizes
  in
  Prelude.Table.print
    ~header:
      [ "n"; "backend"; "insert ops/s"; "query ops/s"; "members"; "~MiB"; "B/member";
        "answers = tree" ]
    (List.map
       (fun r ->
         [
           string_of_int r.sw_n;
           r.sw_backend;
           Prelude.Table.float_cell ~decimals:0 r.sw_insert_ops;
           Prelude.Table.float_cell ~decimals:0 r.sw_query_ops;
           string_of_int r.sw_members;
           Prelude.Table.float_cell ~decimals:1 (float_of_int r.sw_bytes /. 1048576.0);
           string_of_int (r.sw_bytes / Int.max 1 r.sw_members);
           string_of_bool r.sw_identical;
         ])
       rows);
  rows

let sweep_row_json r =
  Printf.sprintf
    "    {\"n\": %d, \"backend\": %s, \"insert_ops_per_s\": %.0f, \"query_ops_per_s\": %.0f, \
     \"members\": %d, \"approx_bytes\": %d, \"answers_identical\": %b}"
    r.sw_n
    (Simkit.Json_str.quote r.sw_backend)
    r.sw_insert_ops r.sw_query_ops r.sw_members r.sw_bytes r.sw_identical

let run_registry ~full ~sweep_max =
  banner "registry backends: insert/query throughput (unified interface)";
  let population = if full then 20_000 else 10_000 in
  let query_count = if full then 2_000 else 1_000 in
  let k = 5 in
  let fx = make_fixture ~routers:2000 ~population:0 ~seed:7 in
  let landmark = Nearby.Path_tree.landmark fx.tree in
  let route_of peer = fx.routes.(peer mod Array.length fx.routes) in
  let repeats = 3 in
  let run_backend spec =
    let backend = Eval.Backends.backend spec in
    (* Best of [repeats] fresh builds: population-scale inserts are long
       enough to time with Sys.time, the max squeezes out scheduler noise. *)
    let reg = ref (Nearby.Registry_intf.create backend ~landmark) in
    let insert_ops = ref 0.0 in
    for _ = 1 to repeats do
      let fresh = Nearby.Registry_intf.create backend ~landmark in
      let ops =
        time_ops (fun () ->
            for peer = 0 to population - 1 do
              Nearby.Registry_intf.insert fresh ~peer ~routers:(route_of peer)
            done;
            population)
      in
      insert_ops := Float.max !insert_ops ops;
      reg := fresh
    done;
    let reg = !reg in
    let answers = Array.make query_count [] in
    let query_ops =
      time_ops (fun () ->
          for peer = 0 to query_count - 1 do
            answers.(peer) <- Nearby.Registry_intf.query_member reg ~peer ~k
          done;
          query_count)
    in
    (Eval.Backends.to_string spec, !insert_ops, query_ops, answers)
  in
  let results = List.map run_backend Eval.Backends.all in
  let reference =
    match results with
    | ("tree", _, _, answers) :: _ -> answers
    | _ -> failwith "registry bench: tree backend must run first"
  in
  let rows =
    List.map
      (fun (name, insert_ops, query_ops, answers) ->
        (name, insert_ops, query_ops, answers = reference))
      results
  in
  Prelude.Table.print
    ~header:[ "backend"; "insert ops/s"; "query ops/s"; "answers = tree" ]
    (List.map
       (fun (name, insert_ops, query_ops, identical) ->
         [
           name;
           Prelude.Table.float_cell ~decimals:0 insert_ops;
           Prelude.Table.float_cell ~decimals:0 query_ops;
           string_of_bool identical;
         ])
       rows);
  let sweep_rows = run_sweep ~sweep_max in
  let row_json (name, insert_ops, query_ops, identical) =
    Printf.sprintf
      "{\"backend\": %s, \"insert_ops_per_s\": %.0f, \"query_ops_per_s\": %.0f, \
       \"answers_identical\": %b}"
      (Simkit.Json_str.quote name) insert_ops query_ops identical
  in
  Simkit.Export.write_bench ~path:"BENCH_registry.json" ~seed:7
    ~backends:(List.map Eval.Backends.to_string Eval.Backends.all)
    [
      ("population", string_of_int population);
      ("queries", string_of_int query_count);
      ("k", string_of_int k);
      ("backends", "[" ^ String.concat ", " (List.map row_json rows) ^ "]");
      ( "sweep",
        "[" ^ String.concat ", " (List.map (fun r -> String.trim (sweep_row_json r)) sweep_rows) ^ "]" );
    ];
  Printf.printf "wrote BENCH_registry.json (%d-peer workload, sweep to %d)\n%!" population
    (List.fold_left (fun acc r -> Int.max acc r.sw_n) 0 sweep_rows)

(* ------------------------------------------------------------------ *)
(* Observability: per-backend latency quantiles through the instrumented
   registry — the same wrapper the sim's --metrics-out path uses, so the
   BENCH_obs.json trajectory and the sim's snapshots are comparable. *)

let run_obs ~full =
  banner "observability: per-backend insert/query latency quantiles";
  let population = if full then 20_000 else 10_000 in
  let query_count = if full then 2_000 else 1_000 in
  let k = 5 in
  let seed = 7 in
  let fx = make_fixture ~routers:2000 ~population:0 ~seed in
  let landmark = Nearby.Path_tree.landmark fx.tree in
  let route_of peer = fx.routes.(peer mod Array.length fx.routes) in
  let run_backend spec =
    let metrics = Simkit.Trace.create () in
    (* A live sink so every op is one root trace: the middleware tags each
       latency sample with its trace id, which is what populates the tail
       exemplars this bench gates on.  The span machinery sits outside the
       timed window, so the ns quantiles are unaffected. *)
    let spans = Simkit.Span.buffer () in
    let backend =
      Nearby.Instrumented_registry.wrap ~metrics ~spans (Eval.Backends.backend spec)
    in
    let reg = Nearby.Registry_intf.create backend ~landmark in
    for peer = 0 to population - 1 do
      Nearby.Registry_intf.insert reg ~peer ~routers:(route_of peer)
    done;
    for peer = 0 to query_count - 1 do
      ignore (Nearby.Registry_intf.query_member reg ~peer ~k)
    done;
    let summary name =
      match Simkit.Trace.summary metrics name with
      | Some s -> s
      | None -> failwith ("bench obs: missing stream " ^ name)
    in
    let exemplar_count name = List.length (Simkit.Trace.exemplars metrics name) in
    ( Eval.Backends.to_string spec,
      summary Nearby.Instrumented_registry.insert_ns,
      summary Nearby.Instrumented_registry.query_ns,
      exemplar_count Nearby.Instrumented_registry.insert_ns,
      exemplar_count Nearby.Instrumented_registry.query_ns,
      Nearby.Registry_intf.introspect reg )
  in
  let results = List.map run_backend Eval.Backends.all in
  let cell = Prelude.Table.float_cell ~decimals:0 in
  Prelude.Table.print
    ~header:
      [ "backend"; "insert p50 ns"; "insert p99 ns"; "query p50 ns"; "query p99 ns";
        "exemplars"; "members"; "routers"; "~KiB" ]
    (List.map
       (fun (name, (ins : Simkit.Trace.summary), (q : Simkit.Trace.summary), ins_ex, q_ex,
             (intro : Nearby.Registry_intf.introspection)) ->
         [ name; cell ins.p50; cell ins.p99; cell q.p50; cell q.p99;
           string_of_int (ins_ex + q_ex); string_of_int intro.members;
           string_of_int intro.routers; string_of_int (intro.approx_bytes / 1024) ])
       results);
  (* Sketch fidelity: the merged fleet quantiles below are only as good as
     the sketch, so gate its relative error against exact order statistics
     on a deterministic heavy-tailed sample set. *)
  let sketch_err =
    let n = 5_000 in
    let rng = Prelude.Prng.create (seed * 7919) in
    let samples =
      Array.init n (fun _ ->
          let u = Prelude.Prng.unit_float rng in
          0.5 +. (1_000.0 *. u *. u *. u))
    in
    let sk = Prelude.Sketch.create () in
    Array.iter (fun v -> Prelude.Sketch.add sk v) samples;
    List.map
      (fun q ->
        let exact = Prelude.Stats.percentile samples (100.0 *. q) in
        let est = Prelude.Sketch.quantile sk q in
        (q, Float.abs (est -. exact) /. exact))
      [ 0.5; 0.9; 0.99 ]
  in
  let sketch_max_err = List.fold_left (fun m (_, e) -> Float.max m e) 0.0 sketch_err in
  let sketch_within = sketch_max_err <= 2.0 *. Prelude.Sketch.default_alpha in
  (* Fleet-wide merged view: a replicated cluster over sharded registries,
     scraped per replica and folded into one trace.  Simulated clock, so
     every number is deterministic in the seed. *)
  let fleet_result, fleet =
    Eval.Fleet_obs.run
      { Eval.Fleet_obs.quick_config with seed; slos = Eval.Fleet_obs.default_slos }
  in
  let alpha = Prelude.Sketch.default_alpha in
  let cluster = Eval.Fleet_obs.cluster fleet in
  let fleet_within =
    (* Each replica-labeled p99 must match that replica's own sketch (a
       single-source merge copies the buckets), and the merged p99 must
       land inside the per-replica envelope, both within the documented
       relative-error bound. *)
    let per_replica_ok = ref true in
    let p99s =
      Array.to_list
        (Array.mapi
           (fun i labeled ->
             (match
                Simkit.Trace.sketch_quantile
                  (Nearby.Server.trace (Nearby.Cluster.server_of cluster i))
                  "join_ms" 0.99
              with
             | Some source when Float.abs (labeled -. source) > 2.0 *. alpha *. source ->
                 per_replica_ok := false
             | Some _ -> ()
             | None -> per_replica_ok := false);
             labeled)
           fleet_result.Eval.Fleet_obs.replica_join_p99_ms)
    in
    let lo = List.fold_left Float.min infinity p99s in
    let hi = List.fold_left Float.max neg_infinity p99s in
    !per_replica_ok
    && fleet_result.Eval.Fleet_obs.fleet_join_p99_ms >= lo *. (1.0 -. (2.0 *. alpha))
    && fleet_result.Eval.Fleet_obs.fleet_join_p99_ms <= hi *. (1.0 +. (2.0 *. alpha))
  in
  Printf.printf
    "fleet: %d/%d joins, merged p99 %.1f ms (replicas %s), shard skew %.2f, sketch max rel \
     err %.5f\n%!"
    fleet_result.Eval.Fleet_obs.completed fleet_result.Eval.Fleet_obs.joins
    fleet_result.Eval.Fleet_obs.fleet_join_p99_ms
    (String.concat " "
       (List.map (Printf.sprintf "%.1f")
          (Array.to_list fleet_result.Eval.Fleet_obs.replica_join_p99_ms)))
    fleet_result.Eval.Fleet_obs.shard_skew sketch_max_err;
  let quantiles_json (s : Simkit.Trace.summary) =
    let n = Simkit.Json_str.number in
    Printf.sprintf
      "{\"count\": %d, \"mean\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s, \"max\": %s}" s.count
      (n s.mean) (n s.p50) (n s.p90) (n s.p99) (Simkit.Json_str.number_opt s.max)
  in
  let row_json (name, ins, q, ins_ex, q_ex, intro) =
    Printf.sprintf
      "    {\"backend\": %s, \"insert_ns\": %s, \"query_ns\": %s, \"insert_exemplars\": %d, \
       \"query_exemplars\": %d, \"introspect\": %s}"
      (Simkit.Json_str.quote name) (quantiles_json ins) (quantiles_json q) ins_ex q_ex
      (Nearby.Registry_intf.introspection_json intro)
  in
  let sketch_json =
    Printf.sprintf
      "{\"alpha\": %s, \"samples\": 5000, %s, \"max_rel_err\": %s, \"within_bound\": %b}"
      (Simkit.Json_str.number Prelude.Sketch.default_alpha)
      (String.concat ", "
         (List.map
            (fun (q, e) ->
              Printf.sprintf "\"rel_err_p%d\": %s"
                (int_of_float (q *. 100.0))
                (Simkit.Json_str.number e))
            sketch_err))
      (Simkit.Json_str.number sketch_max_err)
      sketch_within
  in
  let fleet_json =
    let r = fleet_result in
    Printf.sprintf
      "{\"replicas\": %d, \"shards\": %d, \"joins\": %d, \"completed\": %d, \
       \"completion_rate\": %s, \"merged_p50_ms\": %s, \"merged_p99_ms\": %s, \
       \"replica_p99_ms\": [%s], \"within_bound\": %b, \"shard_skew\": %s, \"rpc_ok\": %d}"
      (Nearby.Cluster.replica_count cluster)
      Eval.Fleet_obs.quick_config.Eval.Fleet_obs.shards r.Eval.Fleet_obs.joins
      r.Eval.Fleet_obs.completed
      (Simkit.Json_str.number
         (float_of_int r.Eval.Fleet_obs.completed /. float_of_int r.Eval.Fleet_obs.joins))
      (Simkit.Json_str.number r.Eval.Fleet_obs.fleet_join_p50_ms)
      (Simkit.Json_str.number r.Eval.Fleet_obs.fleet_join_p99_ms)
      (String.concat ", "
         (List.map Simkit.Json_str.number (Array.to_list r.Eval.Fleet_obs.replica_join_p99_ms)))
      fleet_within
      (Simkit.Json_str.number r.Eval.Fleet_obs.shard_skew)
      r.Eval.Fleet_obs.rpc_ok
  in
  Simkit.Export.write_bench ~path:"BENCH_obs.json" ~seed
    ~backends:(List.map Eval.Backends.to_string Eval.Backends.all)
    ~params:
      [
        ("population", string_of_int population);
        ("queries", string_of_int query_count);
        ("k", string_of_int k);
      ]
    [
      ("backends", "[" ^ String.concat ", " (List.map (fun r -> String.trim (row_json r)) results) ^ "]");
      ("sketch", sketch_json);
      ("fleet", fleet_json);
    ];
  Printf.printf "wrote BENCH_obs.json (%d-peer workload, %d queries)\n%!" population query_count

(* ------------------------------------------------------------------ *)
(* Resilience: join completion, latency tail and recovery time as the
   replica count and fault scenario vary — the cluster's headline
   guarantees, written to BENCH_resilience.json for the CI smoke gate. *)

let run_resilience ~full =
  banner "resilience: completion / p99 join latency / recovery vs replicas";
  let base =
    if full then Eval.Resilience_exp.default_config else Eval.Resilience_exp.quick_config
  in
  let replica_counts = [ 1; 3; 5 ] in
  let scenarios = [ "none"; "crash-primary"; "loss-burst" ] in
  let results =
    List.concat_map
      (fun scenario ->
        List.filter_map
          (fun replicas ->
            (* A 1-replica cluster cannot survive its own crash; skip the
               combination rather than report a vacuous 0% completion. *)
            if scenario = "crash-primary" && replicas = 1 then None
            else
              Some
                (Eval.Resilience_exp.run { base with Eval.Resilience_exp.scenario; replicas }))
          replica_counts)
      scenarios
  in
  let cell = Prelude.Table.float_cell in
  Prelude.Table.print
    ~header:
      [ "scenario"; "replicas"; "completion"; "p99 join ms"; "recovery ms"; "consistent" ]
    (List.map
       (fun (r : Eval.Resilience_exp.result) ->
         [
           r.scenario;
           string_of_int r.replicas;
           cell ~decimals:4 r.completion_rate;
           cell ~decimals:1 r.join_p99_ms;
           (match r.recovery_ms with Some v -> cell ~decimals:1 v | None -> "-");
           string_of_bool r.consistent;
         ])
       results);
  Simkit.Export.write_bench ~path:"BENCH_resilience.json" ~seed:base.seed
    ~params:
      [
        ("peers", string_of_int base.peers);
        ("routers", string_of_int base.routers);
        ("scenarios", String.concat " " scenarios);
      ]
    [
      ( "runs",
        "[" ^ String.concat ", " (List.map Eval.Resilience_exp.result_json results) ^ "]" );
    ];
  Printf.printf "wrote BENCH_resilience.json (%d runs)\n%!" (List.length results)

(* ------------------------------------------------------------------ *)
(* Load: open-loop arrivals vs admission control.  The flash crowd at 2x
   the service rate under each shedding policy — the headline is that the
   SLO-driven shedder keeps the admitted-join p99 inside the budget while
   drop-tail serves every admitted request seconds late — plus a healthy
   under-saturation row, written to BENCH_load.json for the CI gate. *)

let run_load ~full =
  banner "load: flash crowd x shedding policy (admission control)";
  let base = if full then Eval.Load_exp.default_config else Eval.Load_exp.quick_config in
  let configs =
    List.map (fun policy -> { base with Eval.Load_exp.policy }) Eval.Load_exp.policies
    @ [
        (* Healthy control: 0.8x saturation through the same queue sheds
           nothing regardless of policy. *)
        {
          base with
          Eval.Load_exp.arrival =
            Simkit.Workload.Poisson { rate_per_s = 0.8 *. base.Eval.Load_exp.service_rate_per_s };
          policy = "slo";
        };
      ]
    @
    if full then
      [
        (* Scale: >100k open-loop arrivals through the batch paths. *)
        {
          base with
          Eval.Load_exp.arrival = Simkit.Workload.Poisson { rate_per_s = 4_000.0 };
          duration_ms = 30_000.0;
          service_rate_per_s = 5_000.0;
          batch = 128;
          queue_cap = 8_000;
          policy = "slo";
        };
      ]
    else []
  in
  let results =
    List.map
      (fun config ->
        let r = Eval.Load_exp.run config in
        Eval.Load_exp.print r;
        print_newline ();
        r)
      configs
  in
  Simkit.Export.write_bench ~path:"BENCH_load.json" ~seed:base.Eval.Load_exp.seed
    ~params:
      [
        ("routers", string_of_int base.Eval.Load_exp.routers);
        ("service_rate_per_s", string_of_float base.Eval.Load_exp.service_rate_per_s);
        ("queue_cap", string_of_int base.Eval.Load_exp.queue_cap);
        ("slo_budget_ms", string_of_float base.Eval.Load_exp.slo_budget_ms);
      ]
    [ ("runs", "[" ^ String.concat ", " (List.map Eval.Load_exp.result_json results) ^ "]") ];
  Printf.printf "wrote BENCH_load.json (%d runs)\n%!" (List.length results)

(* ------------------------------------------------------------------ *)
(* Wire: bytes on the wire by message kind — bytes/join, bytes/query,
   replication amplification, anti-entropy snapshot cost and the batching
   saving, written to BENCH_wire.json for the CI gate. *)

let run_wire ~full =
  banner "wire: bytes per join / per query, amplification, batching saving";
  let config = if full then Eval.Wire_exp.default_config else Eval.Wire_exp.quick_config in
  let r = Eval.Wire_exp.run config in
  Eval.Wire_exp.print r;
  Simkit.Export.write_bench ~path:"BENCH_wire.json" ~seed:config.Eval.Wire_exp.seed
    ~params:
      [
        ("peers", string_of_int config.Eval.Wire_exp.peers);
        ("routers", string_of_int config.Eval.Wire_exp.routers);
        ("replicas", string_of_int config.Eval.Wire_exp.replicas);
        ("batch", string_of_int config.Eval.Wire_exp.batch);
        ("loss", string_of_float config.Eval.Wire_exp.loss);
      ]
    [ ("wire", Eval.Wire_exp.result_json r) ];
  Printf.printf "wrote BENCH_wire.json (%d joins x %d replicas)\n%!" config.Eval.Wire_exp.peers
    config.Eval.Wire_exp.replicas

(* ------------------------------------------------------------------ *)
(* Health: state-health observability — a loss burst forces replica
   divergence; measure detection latency, anti-entropy reconvergence lag,
   digest-gated transfer savings and report staleness, written to
   BENCH_health.json for the CI gate. *)

let run_health ~full =
  banner "health: divergence detection, reconvergence lag, report staleness";
  let config = if full then Eval.Health_exp.default_config else Eval.Health_exp.quick_config in
  let r = Eval.Health_exp.run config in
  Eval.Health_exp.print r;
  Simkit.Export.write_bench ~path:"BENCH_health.json" ~seed:config.Eval.Health_exp.seed
    ~params:
      [
        ("peers", string_of_int config.Eval.Health_exp.peers);
        ("routers", string_of_int config.Eval.Health_exp.routers);
        ("replicas", string_of_int config.Eval.Health_exp.replicas);
        ("loss", string_of_float config.Eval.Health_exp.loss);
        ("sync_period_ms", string_of_float config.Eval.Health_exp.sync_period_ms);
        ("check_period_ms", string_of_float config.Eval.Health_exp.check_period_ms);
      ]
    [ ("health", Eval.Health_exp.result_json r) ];
  Printf.printf "wrote BENCH_health.json (%d joins x %d replicas)\n%!"
    config.Eval.Health_exp.peers config.Eval.Health_exp.replicas

(* ------------------------------------------------------------------ *)
(* Regression gate: BENCH_*.json (current working tree) vs the committed
   baselines under bench/baselines/.  All timing metrics are normalized to
   the tree backend within each run, so the comparison survives machine
   changes; `--update` refreshes the baselines instead of judging. *)

let regress_pairs =
  [
    ("BENCH_registry.json", Eval.Regression.registry_metrics);
    ("BENCH_obs.json", Eval.Regression.obs_metrics);
    ("BENCH_resilience.json", Eval.Regression.resilience_metrics);
    ("BENCH_load.json", Eval.Regression.load_metrics);
    ("BENCH_wire.json", Eval.Regression.wire_metrics);
    ("BENCH_health.json", Eval.Regression.health_metrics);
  ]

let copy_file src dst =
  let ic = open_in_bin src in
  let data =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  Simkit.Export.write_file dst data

let run_regress ~baseline_dir ~update ~pairs =
  banner "bench regression gate";
  if update then begin
    (if not (Sys.file_exists baseline_dir) then Sys.mkdir baseline_dir 0o755);
    List.iter
      (fun (file, _) ->
        if not (Sys.file_exists file) then begin
          Printf.eprintf "regress --update: %s not found; generate it first\n" file;
          exit 1
        end;
        copy_file file (Filename.concat baseline_dir file);
        Printf.printf "baseline updated: %s\n" (Filename.concat baseline_dir file))
      pairs
  end
  else begin
    let failed = ref 0 in
    List.iter
      (fun (file, extract) ->
        let baseline_path = Filename.concat baseline_dir file in
        let load path =
          match Simkit.Json.of_file path with
          | Ok doc -> doc
          | Error e ->
              Printf.eprintf "regress: cannot read %s: %s\n" path e;
              exit 1
        in
        if not (Sys.file_exists baseline_path) then begin
          Printf.eprintf "regress: no baseline %s (run with --update to create)\n" baseline_path;
          exit 1
        end;
        if not (Sys.file_exists file) then begin
          Printf.eprintf "regress: %s not found; generate it first\n" file;
          exit 1
        end;
        let comparisons =
          Eval.Regression.compare_metrics
            ~baseline:(extract (load baseline_path))
            ~current:(extract (load file))
        in
        Printf.printf "\n-- %s --\n" file;
        Eval.Regression.print comparisons;
        failed := !failed + List.length (Eval.Regression.failures comparisons))
      pairs;
    if !failed > 0 then begin
      Printf.eprintf "\nregress: %d metric(s) beyond tolerance\n" !failed;
      exit 1
    end
    else Printf.printf "\nregress: all metrics within tolerance\n"
  end

let run_all ~full ~sweep_max =
  run_micro ();
  run_fig2 ~full;
  run_complexity ~full;
  run_landmarks ~full;
  run_superpeers ~full;
  run_churn ~full;
  run_truncate ~full;
  run_setup_delay ~full;
  run_metric ~full;
  run_streaming ~full;
  run_stretch ~full;
  run_maintenance ~full;
  run_topology_sensitivity ~full;
  run_registry ~full ~sweep_max;
  run_obs ~full;
  run_dht ~full;
  run_inflation ~full;
  run_bulk ~full;
  run_joining ~full;
  run_resilience ~full;
  run_load ~full;
  run_wire ~full;
  run_health ~full

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let args = List.filter (fun a -> a <> "--full") args in
  (* --csv DIR: also capture every printed table as a CSV file. *)
  let rec extract_csv acc = function
    | "--csv" :: dir :: rest ->
        Prelude.Table.set_csv_sink (Some dir);
        List.rev_append acc rest
    | x :: rest -> extract_csv (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_csv [] args in
  (* regress options: --baseline DIR (default bench/baselines), --update. *)
  let update = List.mem "--update" args in
  let args = List.filter (fun a -> a <> "--update") args in
  let rec extract_baseline acc dir = function
    | "--baseline" :: d :: rest -> extract_baseline acc d rest
    | x :: rest -> extract_baseline (x :: acc) dir rest
    | [] -> (List.rev acc, dir)
  in
  let args, baseline_dir = extract_baseline [] (Filename.concat "bench" "baselines") args in
  (* --sweep-max N caps the registry scaling sweep (default: the full
     million) — the CI scale job trims it to 100k. *)
  let rec extract_sweep_max acc cap = function
    | "--sweep-max" :: n :: rest -> (
        match int_of_string_opt n with
        | Some cap when cap > 0 -> extract_sweep_max acc cap rest
        | Some _ | None ->
            Printf.eprintf "bad --sweep-max %S (want a positive int)\n" n;
            exit 1)
    | x :: rest -> extract_sweep_max (x :: acc) cap rest
    | [] -> (List.rev acc, cap)
  in
  let args, sweep_max = extract_sweep_max [] 1_000_000 args in
  match args with
  | [] -> run_all ~full ~sweep_max
  | [ "micro" ] -> run_micro ()
  | [ "fig2" ] -> run_fig2 ~full
  | [ "complexity" ] -> run_complexity ~full
  | [ "landmarks" ] -> run_landmarks ~full
  | [ "superpeers" ] -> run_superpeers ~full
  | [ "churn" ] -> run_churn ~full
  | [ "truncate" ] -> run_truncate ~full
  | [ "setup-delay" ] -> run_setup_delay ~full
  | [ "metric" ] -> run_metric ~full
  | [ "streaming" ] -> run_streaming ~full
  | [ "stretch" ] -> run_stretch ~full
  | [ "maintenance" ] -> run_maintenance ~full
  | [ "topologies" ] -> run_topology_sensitivity ~full
  | [ "registry" ] -> run_registry ~full ~sweep_max
  | [ "obs" ] -> run_obs ~full
  | [ "dht" ] -> run_dht ~full
  | [ "inflation" ] -> run_inflation ~full
  | [ "bulk" ] -> run_bulk ~full
  | [ "joining" ] -> run_joining ~full
  | [ "resilience" ] -> run_resilience ~full
  | [ "load" ] -> run_load ~full
  | [ "wire" ] -> run_wire ~full
  | [ "health" ] -> run_health ~full
  (* `regress [FILE...]` gates only the named BENCH files (default: all) —
     the CI scale job regenerates and judges just BENCH_registry.json. *)
  | "regress" :: onlys ->
      let pairs =
        match onlys with
        | [] -> regress_pairs
        | _ ->
            List.iter
              (fun f ->
                if not (List.mem_assoc f regress_pairs) then begin
                  Printf.eprintf "regress: unknown bench file %S (known: %s)\n" f
                    (String.concat " " (List.map fst regress_pairs));
                  exit 1
                end)
              onlys;
            List.filter (fun (file, _) -> List.mem file onlys) regress_pairs
      in
      run_regress ~baseline_dir ~update ~pairs
  | other ->
      Printf.eprintf
        "unknown bench %S; available: micro fig2 complexity landmarks superpeers churn truncate \
         setup-delay metric streaming stretch maintenance topologies registry obs dht inflation \
         bulk joining resilience load wire health regress [--full]\n"
        (String.concat " " other);
      exit 1
