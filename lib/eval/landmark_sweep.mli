(** Extension E1: landmark count and placement policies.

    The paper leaves "the number and their placement in the network" as
    future work.  This experiment sweeps both dimensions on the fig2
    workload and reports the quality ratio for each combination, plus the
    ablation of round 1 (closest landmark vs a random landmark). *)

type config = {
  routers : int;
  peers : int;
  k : int;
  counts : int list;
  policies : Nearby.Landmark.policy list;
  seeds : int list;
}

val default_config : config
(** 2000 routers, 800 peers, k = 5, counts {1,2,4,8,16,32}, all policies,
    2 seeds. *)

val quick_config : config

type row = {
  policy : Nearby.Landmark.policy;
  count : int;
  ratio : float;  (** D / Dclosest, mean over seeds. *)
  hit_ratio : float;
}

val run : config -> row list
val print : row list -> unit

type ablation_row = { count : int; ratio_closest : float; ratio_random_lmk : float }

val run_round1_ablation : config -> ablation_row list
(** Same workload, medium-degree landmarks, but the newcomer registers under
    a uniformly random landmark instead of its closest one. *)

val print_ablation : ablation_row list -> unit
