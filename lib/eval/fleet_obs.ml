(* The fleet observability workload behind `nearby_sim top`, `bench obs`'s
   fleet section and the dimensional-metrics acceptance tests: a healthy
   N-replica cluster (no fault script) whose replicas each run a sharded
   registry backend, every layer wired into one labeled metrics registry.

   One run produces every view the tentpole promises:

   - per-shard series from {!Nearby.Sharded_registry}
     ([registry_shard_*_ns{shard="i"}], occupancy gauges);
   - per-backend series from {!Nearby.Instrumented_registry}
     ([registry_*_ns{backend="sharded:4"}]);
   - per-outcome RPC series ([rpc_outcomes{outcome="ok"}], ...);
   - per-replica series from {!Nearby.Cluster.scrape}
     ([join_ms{replica="2"}], ...) plus the merged fleet trace from
     {!Nearby.Cluster.fleet_trace};
   - a {!Simkit.Runtime_profile} of the run itself (GC deltas per phase,
     domain-pool utilization, observe-path overhead).

   The engine can be advanced in slices ({!advance}), so the live
   dashboard renders a frame between slices and watches the fleet fill
   up in simulated time; {!run} drives straight to the horizon for
   benches and tests. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  replicas : int;
  shards : int;
  arrival_window_ms : float;
  sync_period_ms : float;
  window_ms : float;  (** Timeseries / SLO window width. *)
  admission_rate_per_s : float;
      (** Drain rate of the admission queue in front of the cluster —
          generous by default, so a healthy fleet never sheds and the
          dashboard's queue-depth panel hovers near zero. *)
  bandwidth_budget_bytes_per_s : float;
      (** Wire-bandwidth SLO: a completed window moving more than this
          many delivered bytes per second raises a ["wire"]-kind
          flight-recorder breach event (edge-triggered, cleared when the
          rate falls back under budget). *)
  slos : Simkit.Slo.spec list;
  seed : int;
}

let default_slos =
  [
    Simkit.Slo.of_string_exn "join_p99_ms=2000";
    Simkit.Slo.of_string_exn "join_completed/join_started>=0.99";
  ]

let default_config =
  {
    routers = 2000;
    peers = 300;
    landmark_count = 8;
    k = 5;
    replicas = 3;
    shards = 4;
    arrival_window_ms = 8_000.0;
    sync_period_ms = 2_000.0;
    window_ms = 500.0;
    admission_rate_per_s = 200.0;
    bandwidth_budget_bytes_per_s = 1_048_576.0;
    slos = default_slos;
    seed = 1;
  }

let quick_config = { default_config with routers = 800; peers = 120 }

type t = {
  config : config;
  engine : Simkit.Engine.t;
  transport : Simkit.Transport.t;
  cluster : Nearby.Cluster.t;
  rpc : Simkit.Rpc.t;
  metrics : Simkit.Metrics.t;
  timeseries : Simkit.Timeseries.t;
  admission : Nearby.Admission.t;
  runtime : Simkit.Runtime_profile.t;
  recorder : Simkit.Flight_recorder.t;
  wire_breaches : int ref;
  horizon : float;
  completed : int ref;
  failed : int ref;
}

(* Same pessimistic bound as Resilience_exp: every arrival has started and
   the slowest possible RPC (all attempts timing out, backoffs included)
   has resolved before the horizon. *)
let worst_rpc_ms (c : Simkit.Rpc.config) =
  let backoffs = ref 0.0 in
  for a = 1 to c.max_attempts - 1 do
    backoffs :=
      !backoffs
      +. (c.backoff_base_ms *. (c.backoff_multiplier ** float_of_int (a - 1)) *. (1.0 +. c.jitter_frac))
  done;
  (float_of_int c.max_attempts *. c.timeout_ms) +. !backoffs

let start (config : config) =
  if config.replicas < 1 then invalid_arg "Fleet_obs: replicas must be >= 1";
  if config.shards < 1 then invalid_arg "Fleet_obs: shards must be >= 1";
  if config.window_ms <= 0.0 then invalid_arg "Fleet_obs: window_ms must be positive";
  let metrics = Simkit.Metrics.create () in
  let runtime = Simkit.Runtime_profile.create () in
  Simkit.Runtime_profile.phase runtime "build" (fun () ->
      let w =
        Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
          ~peers:config.peers ~seed:config.seed ()
      in
      let engine = Simkit.Engine.create () in
      (* The horizon is known before any component exists (the rpc layer
         below runs the default config), so the windowed timeseries can be
         sized up front and handed to the transport — every delivered byte
         lands in the [wire_bytes] series from the first send on. *)
      let horizon =
        config.arrival_window_ms
        +. (1_000.0 *. float_of_int config.peers /. config.admission_rate_per_s)
        +. worst_rpc_ms Simkit.Rpc.default_config
        +. (3.0 *. config.sync_period_ms) +. 1_000.0
      in
      let timeseries =
        Simkit.Timeseries.create
          ~capacity:(max 64 (int_of_float (horizon /. config.window_ms) + 8))
          ~window_ms:config.window_ms ()
      in
      let transport =
        Simkit.Transport.create ~rng:(Prelude.Prng.split w.rng) ~metrics ~timeseries engine
          w.ctx.oracle
      in
      let replica_routers =
        Nearby.Landmark.place (Workload.graph w) Medium_degree ~count:config.replicas
          ~rng:(Prelude.Prng.split w.rng)
      in
      (* Every replica's backend writes into the shared registry: the
         sharded store adds {shard=...} series, the instrumented wrapper
         the {backend=...} mirror.  The low parallel threshold pushes the
         query scatter onto the shared domain pool even at quick-config
         populations, so the dashboard's pool-utilization panel shows a
         pool that actually ran. *)
      let backend () =
        Nearby.Instrumented_registry.wrap ~labeled:metrics
          (Nearby.Sharded_registry.make ~shards:config.shards ~parallel_threshold:8
             ~metrics ())
      in
      let recorder = Simkit.Flight_recorder.create () in
      let cluster =
        Nearby.Cluster.create ~recorder ~metrics ~transport ~client_router:w.map.core.(0)
          ~make_server:(fun () ->
            Nearby.Server.create ?latency:w.ctx.latency ~backend:(backend ()) w.ctx.oracle
              ~landmarks:w.landmarks)
          ~restore_server:(fun data ->
            Nearby.Server.restore ?latency:w.ctx.latency ~backend:(backend ()) w.ctx.oracle data)
          ~routers:replica_routers ()
      in
      let rpc =
        Simkit.Rpc.create ~rng:(Prelude.Prng.split w.rng) ~labeled:metrics transport
      in
      let protocol = Nearby.Protocol.create_resilient ?latency:w.ctx.latency ~rpc cluster in
      if config.replicas > 1 then
        Nearby.Cluster.start_sync cluster ~period_ms:config.sync_period_ms ~until:horizon;
      (* Bandwidth SLO watch: once per window, read the just-completed
         [wire_bytes] window and compare its delivered-bytes-per-second
         against the budget.  Breach and clear are edge events on the
         flight recorder, so a dump shows when the fleet got loud, not a
         breach line per loud window. *)
      let wire_breaches = ref 0 in
      let breached = ref false in
      let rec bandwidth_poll at =
        if at <= horizon then
          Simkit.Engine.schedule_at engine ~time:at (fun () ->
              let current = int_of_float (Simkit.Engine.now engine /. config.window_ms) in
              let completed_bps =
                Simkit.Timeseries.windows timeseries "wire_bytes"
                |> List.fold_left
                     (fun acc w ->
                       match w with
                       | Some (s : Simkit.Timeseries.summary) when s.index < current ->
                           Some (s.rate_per_s *. s.mean)
                       | _ -> acc)
                     None
              in
              (match completed_bps with
              | Some bps when bps > config.bandwidth_budget_bytes_per_s && not !breached ->
                  breached := true;
                  incr wire_breaches;
                  Simkit.Flight_recorder.record recorder ~ts:(Simkit.Engine.now engine)
                    ~kind:"wire"
                    ~args:
                      [
                        ("bytes_per_s", Simkit.Span.Float bps);
                        ("budget", Simkit.Span.Float config.bandwidth_budget_bytes_per_s);
                      ]
                    "bandwidth_breach"
              | Some bps when bps <= config.bandwidth_budget_bytes_per_s && !breached ->
                  breached := false;
                  Simkit.Flight_recorder.record recorder ~ts:(Simkit.Engine.now engine)
                    ~kind:"wire"
                    ~args:[ ("bytes_per_s", Simkit.Span.Float bps) ]
                    "bandwidth_clear"
              | _ -> ());
              bandwidth_poll (at +. config.window_ms))
      in
      bandwidth_poll config.window_ms;
      (* Health poll: one digest check per window, so the divergence gauge,
         the episode edges on the flight recorder and the dashboard's
         divergent-replicas sparkline all track the fleet at SLO-window
         resolution. *)
      (if config.replicas > 1 then
         let rec health_poll at =
           if at <= horizon then
             Simkit.Engine.schedule_at engine ~time:at (fun () ->
                 let divergent = Nearby.Cluster.digest_check cluster in
                 Simkit.Timeseries.observe timeseries "divergent_replicas"
                   ~now:(Simkit.Engine.now engine)
                   (float_of_int (List.length divergent));
                 health_poll (at +. config.window_ms))
         in
         health_poll config.window_ms);
      (* Joins pass through a bounded admission queue before reaching the
         protocol layer: the same front door the overload experiments
         stress, here provisioned generously (capacity for every peer, a
         drain rate well above the arrival rate) so nothing sheds and the
         queueing term stays a few ticks wide. *)
      let admission =
        Nearby.Admission.create ~engine ~metrics ~timeseries
          {
            Nearby.Admission.capacity = max config.peers 64;
            service_rate_per_s = config.admission_rate_per_s;
            batch = 4;
            policy = Nearby.Admission.Drop_tail;
          }
      in
      let completed = ref 0 and failed = ref 0 in
      for peer = 0 to config.peers - 1 do
        let at = Prelude.Prng.float w.rng config.arrival_window_ms in
        Simkit.Engine.schedule_at engine ~time:at (fun () ->
            let started = Simkit.Engine.now engine in
            Simkit.Timeseries.observe timeseries "join_started" ~now:started 1.0;
            Nearby.Admission.submit admission
              ~serve:(fun ~queued_ms:_ ->
                Nearby.Protocol.join protocol ~peer ~attach_router:w.peer_routers.(peer)
                  ~k:config.k
                  ~on_complete:(fun _info _reply ->
                    incr completed;
                    let now = Simkit.Engine.now engine in
                    Simkit.Timeseries.observe timeseries "join_ms" ~now (now -. started);
                    Simkit.Timeseries.observe timeseries "join_completed" ~now 1.0)
                  ~on_failure:(fun () ->
                    incr failed;
                    Simkit.Timeseries.observe timeseries "join_failed"
                      ~now:(Simkit.Engine.now engine) 1.0))
              ~shed:(fun ~reason:_ ->
                incr failed;
                Simkit.Timeseries.observe timeseries "join_failed"
                  ~now:(Simkit.Engine.now engine) 1.0))
      done;
      {
        config;
        engine;
        transport;
        cluster;
        rpc;
        metrics;
        timeseries;
        admission;
        runtime;
        recorder;
        wire_breaches;
        horizon;
        completed;
        failed;
      })

let horizon t = t.horizon
let now t = Simkit.Engine.now t.engine
let finished t = now t >= t.horizon
let metrics t = t.metrics
let timeseries t = t.timeseries
let runtime t = t.runtime
let cluster t = t.cluster
let transport t = t.transport
let admission t = t.admission
let recorder t = t.recorder
let wire_breaches t = !(t.wire_breaches)
let fleet_trace t = Nearby.Cluster.fleet_trace t.cluster

let advance t ~until =
  Simkit.Runtime_profile.phase t.runtime "run" (fun () ->
      Simkit.Engine.run t.engine ~until:(Float.min until t.horizon));
  Simkit.Runtime_profile.note_pool t.runtime (Prelude.Domain_pool.shared ())

(* A fresh per-replica scrape: replica-labeled series double-count if the
   same registry is scraped twice, so every caller that wants the
   {replica="i"} view asks for a new one. *)
let scrape t =
  let m = Simkit.Metrics.create () in
  Nearby.Cluster.scrape t.cluster ~into:m;
  m

(* Fleet staleness snapshot at the current engine time: fresh per-replica
   trackers every call (catch-up restores replace replica servers, so a
   retained tracker could point at a dead one), ages merged into one
   sketch. *)
let staleness_view t =
  let ages = Prelude.Sketch.create () in
  let oldest = ref 0.0 in
  for i = 0 to Nearby.Cluster.replica_count t.cluster - 1 do
    let tracker = Nearby.Staleness.create (Nearby.Cluster.server_of t.cluster i) in
    let report = Nearby.Staleness.observe tracker ~now:(now t) in
    if report.Nearby.Staleness.oldest_ms > !oldest then
      oldest := report.Nearby.Staleness.oldest_ms;
    Prelude.Sketch.merge_into ~into:ages (Nearby.Staleness.age_sketch tracker)
  done;
  (ages, !oldest)

type result = {
  joins : int;
  completed : int;
  failed : int;
  fleet_join_p50_ms : float;
  fleet_join_p99_ms : float;
  replica_join_p99_ms : float array;
  rpc_ok : int;
  rpc_timeouts : int;
  shard_members : float array;  (** Occupancy summed per shard across landmarks. *)
  shard_skew : float;  (** max / mean shard occupancy; [nan] when empty. *)
  pool_busy_share : float;  (** Busy fraction of the shared domain pool. *)
  overhead_ns : float;  (** Observe-path self-overhead of the profiler. *)
  wire_bytes : int;  (** Delivered bytes, all kinds. *)
  wire_dropped_bytes : int;
  replication_amplification : float;  (** See {!Nearby.Cluster.replication_amplification}. *)
  digest_checks : int;  (** Divergence comparisons run (polls + sync ends). *)
  divergent_replicas : int;  (** Replicas diverging at the horizon. *)
  report_age_p50_ms : float;  (** Fleet report-age median at the horizon. *)
  report_age_oldest_ms : float;  (** Stalest report still served. *)
}

(* Sum the {landmark, shard} occupancy gauges per shard.  Replicas
   overwrite each other's gauges (same labels); a quiesced healthy fleet
   is consistent, so the surviving values are any replica's true counts. *)
let shard_occupancy t =
  let totals = Array.make t.config.shards 0.0 in
  List.iter
    (fun (name, labels, _key) ->
      if name = "registry_shard_members" then
        match List.assoc_opt "shard" labels with
        | Some s -> (
            let s = int_of_string s in
            match Simkit.Metrics.gauge t.metrics "registry_shard_members" ~labels with
            | Some v when s >= 0 && s < t.config.shards -> totals.(s) <- totals.(s) +. v
            | _ -> ())
        | None -> ())
    (Simkit.Metrics.series t.metrics);
  totals

let skew_of totals =
  let n = Array.length totals in
  let sum = Array.fold_left ( +. ) 0.0 totals in
  if n = 0 || sum <= 0.0 then nan
  else Array.fold_left Float.max neg_infinity totals /. (sum /. float_of_int n)

let result t =
  if not (finished t) then advance t ~until:t.horizon;
  let fleet = fleet_trace t in
  let scraped = scrape t in
  let q quant =
    match Simkit.Trace.sketch_quantile fleet "join_ms" quant with Some v -> v | None -> nan
  in
  let replica_join_p99_ms =
    Array.init (Nearby.Cluster.replica_count t.cluster) (fun i ->
        match
          Simkit.Metrics.quantile scraped "join_ms"
            ~labels:[ ("replica", string_of_int i) ]
            0.99
        with
        | Some v -> v
        | None -> nan)
  in
  let rpc_trace = Simkit.Rpc.trace t.rpc in
  let shard_members = shard_occupancy t in
  let pool_busy_share =
    match Simkit.Runtime_profile.pool t.runtime with
    | Some (u : Prelude.Domain_pool.utilization) when u.wall_ns > 0.0 ->
        u.busy_ns /. u.wall_ns
    | _ -> 0.0
  in
  let ages, oldest_age = staleness_view t in
  {
    joins = t.config.peers;
    completed = !(t.completed);
    failed = !(t.failed);
    fleet_join_p50_ms = q 0.5;
    fleet_join_p99_ms = q 0.99;
    replica_join_p99_ms;
    rpc_ok = Simkit.Trace.counter rpc_trace "rpc_ok";
    rpc_timeouts = Simkit.Trace.counter rpc_trace "rpc_timeouts";
    shard_members;
    shard_skew = skew_of shard_members;
    pool_busy_share;
    overhead_ns = Simkit.Runtime_profile.overhead_ns t.runtime;
    wire_bytes = Simkit.Transport.bytes_sent t.transport;
    wire_dropped_bytes = Simkit.Transport.bytes_dropped t.transport;
    replication_amplification = Nearby.Cluster.replication_amplification t.cluster;
    digest_checks = Simkit.Trace.counter (Nearby.Cluster.trace t.cluster) "cluster_digest_checks";
    divergent_replicas = List.length (Nearby.Cluster.digest_check t.cluster);
    report_age_p50_ms =
      (if Prelude.Sketch.is_empty ages then nan else Prelude.Sketch.quantile ages 0.5);
    report_age_oldest_ms = oldest_age;
  }

let run config =
  let t = start config in
  advance t ~until:(horizon t);
  (result t, t)

(* ---------- Dashboard rendering ---------- *)

let spark_width = 56
let spark_height = 6

(* Windowed series -> plot points; absent windows are skipped rather than
   drawn as zero, matching the timeseries' own None semantics. *)
let points_of t name ~value =
  Simkit.Timeseries.windows t.timeseries name
  |> List.filter_map (fun w ->
         match w with
         | Some (s : Simkit.Timeseries.summary) ->
             let y = value s in
             if Float.is_nan y then None else Some (s.from_ms /. 1000.0, y)
         | None -> None)

let plot_panel title series =
  let series = List.filter (fun (s : Prelude.Ascii_plot.series) -> s.points <> []) series in
  match Prelude.Ascii_plot.render ~width:spark_width ~height:spark_height series with
  | "" -> Printf.sprintf "%s\n  (no samples yet)\n" title
  | plot -> Printf.sprintf "%s\n%s" title plot

let bar width v vmax =
  let n =
    if vmax <= 0.0 then 0
    else int_of_float (Float.round (float_of_int width *. v /. vmax))
  in
  String.concat "" (List.init (max 0 (min width n)) (fun _ -> "#"))

let render t =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fleet = fleet_trace t in
  let registrations = Simkit.Trace.counter fleet "cluster_register" in
  add "nearby fleet top — t=%.1fs / %.1fs  replicas=%d shards=%d  live=%d/%d\n"
    (now t /. 1000.0) (t.horizon /. 1000.0) t.config.replicas t.config.shards
    (Nearby.Cluster.live_count t.cluster)
    (Nearby.Cluster.replica_count t.cluster);
  add "joins: %d started, %d completed, %d failed (%d cluster registrations)\n\n"
    (!(t.completed) + !(t.failed))
    !(t.completed) !(t.failed) registrations;
  (* Throughput and latency, per SLO window. *)
  add "%s\n"
    (plot_panel "[ops/s — joins completed per window]"
       [ { Prelude.Ascii_plot.label = "join/s"; points = points_of t "join_completed" ~value:(fun s -> s.rate_per_s) } ]);
  add "%s\n"
    (plot_panel "[join latency — windowed quantiles, ms]"
       [
         { Prelude.Ascii_plot.label = "p50"; points = points_of t "join_ms" ~value:(fun s -> s.p50) };
         { Prelude.Ascii_plot.label = "p99"; points = points_of t "join_ms" ~value:(fun s -> s.p99) };
       ]);
  (* SLO burn status. *)
  add "[slo]\n";
  (match Simkit.Slo.check t.timeseries t.config.slos with
  | [] -> add "  (no objectives declared)\n"
  | statuses ->
      List.iter (fun st -> add "  %s\n" (Simkit.Slo.status_line st)) statuses);
  (* RPC outcome mix, from the labeled registry. *)
  let outcome o =
    Simkit.Metrics.counter t.metrics "rpc_outcomes" ~labels:[ ("outcome", o) ]
  in
  add "[rpc] ok=%d timeout=%d no_target=%d unserved=%d gave_up=%d\n"
    (outcome "ok") (outcome "timeout") (outcome "no_target") (outcome "unserved")
    (outcome "gave_up");
  (* Wire view: where the bytes go — totals, the per-kind mix, replication
     amplification, the heaviest endpoints and a bandwidth sparkline. *)
  let fmt_bytes b =
    if b >= 1_048_576 then Printf.sprintf "%.1fMB" (float_of_int b /. 1_048_576.0)
    else if b >= 1024 then Printf.sprintf "%.1fKB" (float_of_int b /. 1024.0)
    else Printf.sprintf "%dB" b
  in
  let amp = Nearby.Cluster.replication_amplification t.cluster in
  add "[wire] total=%s dropped=%s amplification=%s slo_breaches=%d\n"
    (fmt_bytes (Simkit.Transport.bytes_sent t.transport))
    (fmt_bytes (Simkit.Transport.bytes_dropped t.transport))
    (if Float.is_nan amp then "-" else Printf.sprintf "%.2fx" amp)
    !(t.wire_breaches);
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun (name, labels, _key) ->
      if name = "wire_bytes_total" then
        match List.assoc_opt "kind" labels with
        | Some kind ->
            let b = Simkit.Metrics.counter t.metrics "wire_bytes_total" ~labels in
            Hashtbl.replace kinds kind
              (b + Option.value ~default:0 (Hashtbl.find_opt kinds kind))
        | None -> ())
    (Simkit.Metrics.series t.metrics);
  let mix =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []
    |> List.sort (fun (ka, a) (kb, b) ->
           match compare b a with 0 -> compare ka kb | c -> c)
  in
  let kmax = List.fold_left (fun acc (_, v) -> max acc v) 0 mix in
  List.iter
    (fun (k, v) ->
      add "  %-18s %10s %s\n" k (fmt_bytes v)
        (bar 28 (float_of_int v) (float_of_int kmax)))
    mix;
  (match Simkit.Transport.top_talkers t.transport ~k:3 with
  | [] -> ()
  | talkers ->
      add "  top talkers:\n";
      List.iter
        (fun (tk : Simkit.Transport.talker) ->
          add "    router %-6d %10s out (%d msgs) / %10s in (%d msgs)\n" tk.node
            (fmt_bytes tk.sent_bytes) tk.sent_msgs (fmt_bytes tk.recv_bytes) tk.recv_msgs)
        talkers);
  add "%s\n"
    (plot_panel "  bandwidth (KB/s per window)"
       [
         {
           Prelude.Ascii_plot.label = "KB/s";
           points = points_of t "wire_bytes" ~value:(fun s -> s.rate_per_s *. s.mean /. 1024.0);
         };
       ]);
  (* State health: digest agreement across the replicas, divergence
     episodes and anti-entropy lag, and how stale the served reports
     are. *)
  let ctrace = Nearby.Cluster.trace t.cluster in
  let check_mix r =
    Simkit.Metrics.counter t.metrics "cluster_digest_checks_total" ~labels:[ ("result", r) ]
  in
  let divergent_now =
    match Simkit.Metrics.gauge t.metrics "cluster_divergent_replicas" ~labels:[] with
    | Some v -> int_of_float v
    | None -> 0
  in
  add "[health] digest checks=%d (consistent=%d divergent=%d) divergent_now=%d%s\n"
    (Simkit.Trace.counter ctrace "cluster_digest_checks")
    (check_mix "consistent") (check_mix "divergent") divergent_now
    (if divergent_now > 0 then "  [DIVERGED]" else "");
  add "  sync: rounds=%d restores=%d skipped=%d (digest gate)  anti-entropy lag: %s\n"
    (Simkit.Trace.counter ctrace "cluster_sync_rounds")
    (Simkit.Trace.counter ctrace "cluster_sync_restores")
    (Simkit.Trace.counter ctrace "cluster_sync_skipped")
    (match Simkit.Trace.summary ctrace "cluster_antientropy_lag_ms" with
    | Some s when s.count > 0 ->
        Printf.sprintf "p50=%.0fms max=%.0fms (%d episodes)" s.p50
          (Option.value s.max ~default:nan)
          s.count
    | _ -> "(no closed episodes)");
  (let ages, oldest_age = staleness_view t in
   if Prelude.Sketch.is_empty ages then add "  staleness: (no reports yet)\n"
   else
     add "  staleness: report age p50=%.0fms p90=%.0fms p99=%.0fms oldest=%.0fms refreshes=%d\n"
       (Prelude.Sketch.quantile ages 0.5)
       (Prelude.Sketch.quantile ages 0.9)
       (Prelude.Sketch.quantile ages 0.99)
       oldest_age
       (Simkit.Trace.counter fleet "report_refresh"));
  add "%s\n"
    (plot_panel "  divergent replicas (per window)"
       [
         {
           Prelude.Ascii_plot.label = "divergent";
           points = points_of t "divergent_replicas" ~value:(fun s -> s.p99);
         };
       ]);
  (* Admission front door: windowed queue depth plus the shed mix. *)
  add "%s"
    (plot_panel "[admission — queue depth per window]"
       [
         {
           Prelude.Ascii_plot.label = "depth";
           points = points_of t Nearby.Admission.depth_series_name ~value:(fun s -> s.mean);
         };
       ]);
  let totals = Nearby.Admission.totals t.admission in
  add
    "  submitted=%d admitted=%d in_queue=%d max_depth=%d shed: %s%s\n\n"
    totals.Nearby.Admission.submitted totals.Nearby.Admission.admitted
    (Nearby.Admission.depth t.admission)
    totals.Nearby.Admission.max_depth
    (match totals.Nearby.Admission.shed with
    | [] -> "none"
    | mix ->
        String.concat " " (List.map (fun (reason, n) -> Printf.sprintf "%s=%d" reason n) mix))
    (if Nearby.Admission.shedding t.admission then "  [SHEDDING]" else "");
  (* Runtime: GC deltas per phase plus pool utilization. *)
  add "[runtime]\n";
  List.iter
    (fun (p : Simkit.Runtime_profile.phase) ->
      add "  %-6s runs=%d wall=%.1fms minor=%.2fMw major=%.2fMw gc=%d/%d\n" p.name p.runs
        (p.wall_ns /. 1e6)
        (p.gc.minor_words /. 1e6)
        (p.gc.major_words /. 1e6)
        p.gc.minor_collections p.gc.major_collections)
    (Simkit.Runtime_profile.phases t.runtime);
  (match Simkit.Runtime_profile.pool t.runtime with
  | Some (u : Prelude.Domain_pool.utilization) ->
      add "  pool   domains=%d busy=%.1f%% jobs=%d tasks=%d\n" u.domains
        (if u.wall_ns > 0.0 then 100.0 *. u.busy_ns /. u.wall_ns else 0.0)
        u.jobs u.tasks
  | None -> add "  pool   (not engaged)\n");
  add "  observe-path overhead: %.2fms\n"
    (Simkit.Runtime_profile.overhead_ns t.runtime /. 1e6);
  (* Shard occupancy skew. *)
  let totals = shard_occupancy t in
  let vmax = Array.fold_left Float.max 0.0 totals in
  add "[shards] occupancy (summed over landmarks), skew=%s\n"
    (let s = skew_of totals in
     if Float.is_nan s then "-" else Printf.sprintf "%.2f" s);
  Array.iteri
    (fun s v -> add "  shard %d %6.0f %s\n" s v (bar 32 v vmax))
    totals;
  Buffer.contents buf
