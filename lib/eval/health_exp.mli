(** The state-health experiment behind [bench health] / BENCH_health.json.

    Forces real replica divergence — a mid-window loss burst drops write
    fan-outs while peers join through the resilient RPC path — and then
    measures whether the health instruments notice and how fast the system
    heals: digest-check detection latency, divergence/convergence episode
    edges in the flight recorder, anti-entropy reconvergence lag, the
    digest-gated snapshot transfers saved, and report-age staleness
    quantiles at the horizon.  Deterministic in the seed. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  replicas : int;
  loss : float;  (** Burst loss probability over 25%–60% of the window. *)
  arrival_window_ms : float;
  sync_period_ms : float;
  check_period_ms : float;
      (** Digest-check poll period — much finer than the sync period, so
          detection timestamps are close to the drift, not the repair. *)
  rpc : Simkit.Rpc.config;
  seed : int;
}

val default_config : config
(** The headline shape: 3 replicas, 8k joins, 0.4 loss burst, 250 ms
    digest polls against 2 s sync rounds. *)

val quick_config : config
(** CI shape: 800 routers, 1.2k joins. *)

type result = {
  joins : int;
  completed : int;
  failed : int;
  completion_rate : float;
  digest_checks : int;  (** Total digest comparisons (polls + sync ends). *)
  checks_consistent : int;  (** [cluster_digest_checks_total{result="consistent"}]. *)
  checks_divergent : int;  (** [cluster_digest_checks_total{result="divergent"}]. *)
  divergence_episodes : int;  (** Flight-recorder ["divergence"] edges. *)
  convergence_episodes : int;  (** Flight-recorder ["convergence"] edges. *)
  max_divergent_replicas : int;  (** Worst poll reading. *)
  detection_latency_ms : float;
      (** Loss-burst onset to the first divergence edge at or after it
          (earlier edges are transient in-flight replication the fine poll
          also sees); [nan] when the burst never caused a detectable
          divergence. *)
  lag_count : int;  (** Closed episodes in ["cluster_antientropy_lag_ms"]. *)
  lag_p50_ms : float;  (** Median first-detection → reconvergence time. *)
  lag_max_ms : float;
  sync_rounds : int;
  sync_restores : int;  (** Snapshot transfers actually performed. *)
  sync_skipped : int;  (** Transfers the digest gate saved. *)
  sync_bytes : int;  (** Snapshot payload bytes restored. *)
  snapshot_wire_bytes : int;  (** [wire_bytes_total{kind="snapshot"}]. *)
  report_age_p50_ms : float;
      (** Report-age quantiles at the horizon, merged across replicas
          (sketch-backed). *)
  report_age_p90_ms : float;
  report_age_p99_ms : float;
  report_age_oldest_ms : float;  (** Stalest report still served. *)
  refresh_total : int;  (** Fleet ["report_refresh"] count. *)
  refresh_rate_hz : float;  (** [refresh_total] over the run duration. *)
  final_divergent : int;  (** Divergent replicas after the last check. *)
  converged : bool;
      (** [final_divergent = 0] and every divergence episode closed. *)
}

val run : config -> result
(** @raise Invalid_argument on replicas < 2, loss outside (0, 1) or a
    non-positive check period. *)

val result_json : result -> string
(** The result as one JSON object (the ["health"] section of
    BENCH_health.json). *)

val print : result -> unit
