type detection =
  | Fixed_delay of float
  | Heartbeat of Simkit.Failure_detector.config

type config = {
  routers : int;
  landmark_count : int;
  k : int;
  spec : Simkit.Churn.spec;
  detection : detection;
  checkpoints : int;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    landmark_count = 8;
    k = 5;
    spec =
      {
        Simkit.Churn.arrival_rate_per_s = 2.0;
        session = Simkit.Churn.Pareto { alpha = 1.5; min_ms = 60_000.0 };
        failure_fraction = 0.2;
        mobility_fraction = 0.1;
        horizon_ms = 600_000.0;
      };
    detection =
      Heartbeat
        {
          Simkit.Failure_detector.heartbeat_period_ms = 5_000.0;
          timeout_ms = 27_500.0;
          heartbeat_bytes = 32;
        };
    checkpoints = 6;
    seed = 1;
  }

let quick_config =
  {
    default_config with
    routers = 800;
    spec =
      {
        Simkit.Churn.arrival_rate_per_s = 1.0;
        session = Simkit.Churn.Exponential { mean_ms = 120_000.0 };
        failure_fraction = 0.2;
        mobility_fraction = 0.1;
        horizon_ms = 300_000.0;
      };
    detection = Fixed_delay 30_000.0;
    checkpoints = 3;
  }

type checkpoint = {
  time_ms : float;
  live_peers : int;
  ratio : float;
  stale_fraction : float;
  handovers_so_far : int;
  crashes_so_far : int;
  heartbeat_messages : int;
}

type peer_state = { mutable router : Topology.Graph.node; mutable alive : bool }

let run config =
  let map =
    Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params config.routers) ~seed:config.seed
  in
  let graph = map.graph in
  let rng = Prelude.Prng.create (config.seed * 31 + 17) in
  let landmarks = Nearby.Landmark.place graph Nearby.Landmark.Medium_degree ~count:config.landmark_count ~rng in
  let oracle = Traceroute.Route_oracle.create graph in
  let server = Nearby.Server.create oracle ~landmarks in
  let leaves = map.leaves in
  let random_leaf () = leaves.(Prelude.Prng.int rng (Array.length leaves)) in
  let sessions = Simkit.Churn.generate config.spec ~rng:(Prelude.Prng.split rng) in
  let engine = Simkit.Engine.create () in
  (* Detector plumbing (heartbeat mode): its own transport so heartbeat
     traffic is countable separately; monitor co-located with landmark 0. *)
  let detector_transport = Simkit.Transport.create engine oracle in
  let alive_flags : (int, bool ref) Hashtbl.t = Hashtbl.create 1024 in
  let detector =
    match config.detection with
    | Fixed_delay _ -> None
    | Heartbeat fd_config ->
        Some
          (Simkit.Failure_detector.create fd_config ~transport:detector_transport
             ~monitor_router:landmarks.(0)
             ~on_failure:(fun peer ->
               if Nearby.Server.mem server peer then Nearby.Server.leave server ~peer))
  in
  let states : (int, peer_state) Hashtbl.t = Hashtbl.create 1024 in
  let join_rng = Prelude.Prng.split rng in
  let crashes = ref 0 and handovers = ref 0 in
  List.iteri
    (fun peer (s : Simkit.Churn.session) ->
      Simkit.Engine.schedule_at engine ~time:s.join_at (fun () ->
          let router = random_leaf () in
          Hashtbl.replace states peer { router; alive = true };
          ignore (Nearby.Server.join ~rng:join_rng server ~peer ~attach_router:router);
          match detector with
          | None -> ()
          | Some d ->
              let flag = ref true in
              Hashtbl.replace alive_flags peer flag;
              Simkit.Failure_detector.watch d ~peer ~router ~alive:(fun () -> !flag));
      let finish_at = Float.max s.leave_at s.join_at in
      Simkit.Engine.schedule_at engine ~time:finish_at (fun () ->
          match Hashtbl.find_opt states peer with
          | None -> ()
          | Some st -> (
              let stop_watch ~graceful =
                (match Hashtbl.find_opt alive_flags peer with
                | Some flag -> flag := false
                | None -> ());
                match detector with
                | Some d when graceful -> Simkit.Failure_detector.unwatch d ~peer
                | Some _ | None -> ()
              in
              match s.departure with
              | Simkit.Churn.Leave ->
                  st.alive <- false;
                  stop_watch ~graceful:true;
                  Nearby.Server.leave server ~peer
              | Simkit.Churn.Crash -> (
                  (* Dead immediately, deregistered only once detected. *)
                  st.alive <- false;
                  incr crashes;
                  stop_watch ~graceful:false;
                  match config.detection with
                  | Fixed_delay delay ->
                      Simkit.Engine.schedule engine ~delay (fun () ->
                          if Nearby.Server.mem server peer then Nearby.Server.leave server ~peer)
                  | Heartbeat _ -> (* the detector will fire *) ())
              | Simkit.Churn.Handover ->
                  incr handovers;
                  st.router <- random_leaf ();
                  ignore (Nearby.Server.handover ~rng:join_rng server ~peer ~attach_router:st.router);
                  (* The heartbeat stream moves with the peer. *)
                  (match detector with
                  | None -> ()
                  | Some d ->
                      Simkit.Failure_detector.unwatch d ~peer;
                      (match Hashtbl.find_opt alive_flags peer with
                      | Some flag -> flag := false
                      | None -> ());
                      let flag = ref true in
                      Hashtbl.replace alive_flags peer flag;
                      Simkit.Failure_detector.watch d ~peer ~router:st.router ~alive:(fun () -> !flag)))))
    sessions;
  let results = ref [] in
  let snapshot time_ms =
    let live =
      Hashtbl.fold (fun peer st acc -> if st.alive then (peer, st.router) :: acc else acc) states []
      |> List.sort compare
    in
    let live_count = List.length live in
    if live_count < 2 then
      results :=
        {
          time_ms;
          live_peers = live_count;
          ratio = nan;
          stale_fraction = 0.0;
          handovers_so_far = !handovers;
          crashes_so_far = !crashes;
          heartbeat_messages = Simkit.Transport.messages_sent detector_transport;
        }
        :: !results
    else begin
      (* Dense re-indexing of the live population for Measure.score. *)
      let ids = Array.of_list (List.map fst live) in
      let routers = Array.of_list (List.map snd live) in
      let index_of = Hashtbl.create live_count in
      Array.iteri (fun i id -> Hashtbl.add index_of id i) ids;
      let stale = ref 0 and returned = ref 0 in
      let sets =
        Array.map
          (fun id ->
            let reply = Nearby.Server.neighbors server ~peer:id ~k:config.k in
            let live_neighbors =
              List.filter_map
                (fun (p, _) ->
                  incr returned;
                  match Hashtbl.find_opt index_of p with
                  | Some i -> Some i
                  | None ->
                      incr stale;
                      None)
                reply
            in
            Array.of_list live_neighbors)
          ids
      in
      let ctx = Nearby.Selector.make_context graph ~peer_routers:routers in
      let outcome = Measure.score ctx ~k:config.k ~named_sets:[ ("live", sets) ] in
      let ratio = match outcome.scored with [ s ] -> s.ratio | _ -> assert false in
      results :=
        {
          time_ms;
          live_peers = live_count;
          ratio;
          stale_fraction =
            (if !returned = 0 then 0.0 else float_of_int !stale /. float_of_int !returned);
          handovers_so_far = !handovers;
          crashes_so_far = !crashes;
          heartbeat_messages = Simkit.Transport.messages_sent detector_transport;
        }
        :: !results
    end
  in
  let step = config.spec.horizon_ms /. float_of_int config.checkpoints in
  for c = 1 to config.checkpoints do
    let time = step *. float_of_int c in
    Simkit.Engine.schedule_at engine ~time (fun () -> snapshot time)
  done;
  (* Bounded run: heartbeat loops of still-alive peers reschedule forever,
     so an unbounded drain would never terminate in Heartbeat mode. *)
  Simkit.Engine.run ~until:config.spec.horizon_ms engine;
  List.rev !results

let print checkpoints =
  print_endline "E3: discovery quality under churn, crashes and handover";
  Prelude.Table.print
    ~header:[ "t (s)"; "live"; "D/Dclosest"; "stale frac"; "handovers"; "crashes"; "hb msgs" ]
    (List.map
       (fun c ->
         [
           Prelude.Table.float_cell ~decimals:0 (c.time_ms /. 1000.0);
           string_of_int c.live_peers;
           (if Float.is_nan c.ratio then "-" else Prelude.Table.float_cell c.ratio);
           Prelude.Table.float_cell c.stale_fraction;
           string_of_int c.handovers_so_far;
           string_of_int c.crashes_so_far;
           string_of_int c.heartbeat_messages;
         ])
       checkpoints)
