(* Registry backend selection shared by the CLI, the experiments and the
   benchmarks: one spec string -> one first-class backend module. *)

type spec =
  | Tree  (** The paper's path tree ({!Nearby.Path_tree}). *)
  | Naive  (** Exhaustive-scan strawman ({!Nearby.Naive_registry}). *)
  | Dht  (** Chord-distributed directory ({!Dht.Registry}). *)
  | Super  (** Super-peer region store ({!Nearby.Super_peer.Registry}). *)
  | Sharded of { shards : int }
      (** Hash-partitioned path trees ({!Nearby.Sharded_registry}). *)

let to_string = function
  | Tree -> "tree"
  | Naive -> "naive"
  | Dht -> "dht"
  | Super -> "super"
  | Sharded { shards } -> Printf.sprintf "sharded:%d" shards

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "tree" -> Ok Tree
  | "naive" -> Ok Naive
  | "dht" -> Ok Dht
  | "super" -> Ok Super
  | "sharded" -> Ok (Sharded { shards = 4 })
  | spec -> (
      match String.index_opt spec ':' with
      | Some i when String.sub spec 0 i = "sharded" -> (
          let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt arg with
          | Some shards when shards >= 1 -> Ok (Sharded { shards })
          | Some _ | None ->
              Error (Printf.sprintf "bad shard count %S (want sharded:N, N >= 1)" arg))
      | _ ->
          Error
            (Printf.sprintf "unknown backend %S (expected tree, naive, dht, super or sharded:N)" s))

(* The sweep axis: every backend, sharded at the benchmark's default width. *)
let all = [ Tree; Naive; Dht; Super; Sharded { shards = 4 } ]

let backend : spec -> (module Nearby.Registry_intf.S) = function
  | Tree -> (module Nearby.Path_tree)
  | Naive -> (module Nearby.Naive_registry)
  | Dht -> Dht.Registry.backend ()
  | Super -> (module Nearby.Super_peer.Registry)
  | Sharded { shards } -> Nearby.Sharded_registry.make ~shards ()
