(** Open-loop load experiment: arrivals vs. admission control (ROADMAP 2).

    A {!Simkit.Workload} arrival process drives joins against a single
    management server through a {!Nearby.Admission} queue.  Each arrival
    measures client-side (round 1, memoized per attachment router — the
    measurement is deterministic per router, so a flash crowd of 100k
    peers does not re-traceroute 100k times), then submits its
    registration to the admission queue; each drain tick registers the
    whole batch with one {!Nearby.Server.register_measured_batch} call
    (the PR 6 batch path) and answers each newcomer's k-nearest query.

    Join latency is measured arrival-to-reply on the engine clock:
    measurement duration + queueing delay + the drain tick.  Under
    overload the queueing term dominates, which is exactly what the
    shedding policies differ on — drop-tail serves every admitted request
    however stale (p99 grows to the full queue drain time), while the
    SLO-driven shedder rejects arrivals as soon as the queueing-delay burn
    rate breaches, holding admitted p99 near the wait budget.

    Churn composes on top: sessions end in graceful leaves or regional
    mobility handovers (the peer leaves, re-measures at a leaf router
    whose closest landmark differs, and re-joins through the same
    admission queue).  Everything runs on the simulated clock from the
    seeded PRNG — results are deterministic in [seed]. *)

type config = {
  routers : int;
  landmark_count : int;
  k : int;
  arrival : Simkit.Workload.process;
  duration_ms : float;  (** Arrivals (and departures) stop here; the run
                            continues until the queue drains. *)
  service_rate_per_s : float;
  batch : int;
  queue_cap : int;
  policy : string;  (** One of {!policies}. *)
  deadline_ms : float option;  (** Deadline policy bound; default
                                   [0.8 * slo_budget_ms]. *)
  wait_budget_ms : float option;
      (** SLO shedder's queueing-delay p99 limit; default
          [0.15 * slo_budget_ms] (the shedder must trigger well under the
          join budget — requests already queued at breach time are still
          served late). *)
  slo_budget_ms : float;  (** The admitted-join p99 budget results are
                              judged against. *)
  churn : Simkit.Workload.churn;
  window_ms : float;  (** Timeseries window for the SLO shedder and the
                          windowed series. *)
  seed : int;
}

val default_config : config
(** 2000 routers, flash crowd at 2x the 400/s service rate, 10 s of
    arrivals, queue capacity 1200, SLO shedding against a 1000 ms join
    budget, no churn. *)

val quick_config : config
(** [default_config] on an 800-router map. *)

val policies : string list
(** ["drop-tail"; "deadline"; "slo"]. *)

type result = {
  arrival : string;
  policy : string;
  peak_rate_per_s : float;
  service_rate_per_s : float;
  saturation : float;  (** [peak_rate / service_rate]. *)
  offered : int;  (** Workload arrivals. *)
  submitted : int;  (** Admission submissions (arrivals + handovers). *)
  admitted : int;
  completed : int;  (** Registrations applied and answered. *)
  completion_rate : float;  (** [completed / admitted]; 1.0 when nothing
                                was admitted.  Every admitted request must
                                complete — this is the no-lost-work
                                invariant. *)
  shed : (string * int) list;  (** Per reason, alphabetical. *)
  shed_fraction : float;  (** [shed / submitted]. *)
  goodput_per_s : float;  (** Completions per second of arrival window. *)
  join_p50_ms : float;
  join_p99_ms : float;
  wait_p50_ms : float;  (** Queueing delay of admitted requests. *)
  wait_p99_ms : float;
  max_queue_depth : int;
  slo_budget_ms : float;
  p99_within_budget : bool;  (** [join_p99_ms <= slo_budget_ms]. *)
  slo_sheds_opened : int;
  leaves : int;
  handovers : int;
  final_peers : int;
}

type artifacts = {
  exp_trace : Simkit.Trace.t;
  server_trace : Simkit.Trace.t;
  metrics : Simkit.Metrics.t;  (** The admission queue's labeled series. *)
  timeseries : Simkit.Timeseries.t;
  recorder : Simkit.Flight_recorder.t;
  totals : Nearby.Admission.totals;
}

val run_instrumented : config -> result * artifacts
val run : config -> result

val result_json : result -> string
val print : result -> unit
