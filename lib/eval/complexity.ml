type config = {
  routers : int;
  populations : int list;
  k : int;
  queries_per_size : int;
  seed : int;
}

let default_config =
  { routers = 4000; populations = [ 1000; 4000; 16000; 64000 ]; k = 5; queries_per_size = 2000; seed = 1 }

let quick_config =
  { routers = 1000; populations = [ 500; 2000; 8000 ]; k = 5; queries_per_size = 500; seed = 1 }

type row = {
  n : int;
  insert_us : float;
  query_us : float;
  naive_query_us : float;
  insert_per_log : float;
}

let run config =
  let map =
    Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params config.routers) ~seed:config.seed
  in
  let graph = map.graph in
  let rng = Prelude.Prng.create config.seed in
  let landmark =
    match
      Nearby.Landmark.place graph Nearby.Landmark.Medium_degree ~count:1 ~rng |> Array.to_list
    with
    | [ l ] -> l
    | _ -> assert false
  in
  let oracle = Traceroute.Route_oracle.create graph in
  let leaves = map.leaves in
  (* Pre-compute every distinct leaf's route once; peers reuse them. *)
  let routes =
    Array.map
      (fun leaf -> Array.of_list (Traceroute.Route_oracle.route oracle ~src:leaf ~dst:landmark))
      leaves
  in
  let time_us f =
    let t0 = Sys.time () in
    let iters = f () in
    let elapsed = Sys.time () -. t0 in
    elapsed *. 1e6 /. float_of_int (max 1 iters)
  in
  List.map
    (fun n ->
      let tree = Nearby.Path_tree.create ~landmark in
      let leaf_of = Array.init n (fun _ -> Prelude.Prng.int rng (Array.length leaves)) in
      for peer = 0 to n - 1 do
        Nearby.Path_tree.insert tree ~peer ~routers:routes.(leaf_of.(peer))
      done;
      (* Time batches of (insert fresh peer, remove it) cycles so the
         population stays at n and the timed section is far above the clock
         resolution regardless of n; an insert is ~half a cycle. *)
      let cycles = 4000 in
      let insert_us =
        let cost =
          time_us (fun () ->
              for c = 0 to cycles - 1 do
                let peer = n + c in
                Nearby.Path_tree.insert tree ~peer
                  ~routers:routes.(Prelude.Prng.int rng (Array.length routes));
                Nearby.Path_tree.remove tree peer
              done;
              cycles)
        in
        cost /. 2.0
      in
      let query_us =
        time_us (fun () ->
            for q = 0 to config.queries_per_size - 1 do
              let peer = q mod n in
              ignore (Nearby.Path_tree.query_member tree ~peer ~k:config.k)
            done;
            config.queries_per_size)
      in
      (* Ablation: the same queries against the exhaustive-scan registry.
         Fewer iterations — it is orders of magnitude slower at large n. *)
      let naive = Nearby.Naive_registry.create ~landmark in
      for peer = 0 to n - 1 do
        Nearby.Naive_registry.insert naive ~peer ~routers:routes.(leaf_of.(peer))
      done;
      let naive_iters = max 10 (config.queries_per_size / 20) in
      let naive_query_us =
        time_us (fun () ->
            for q = 0 to naive_iters - 1 do
              let peer = q mod n in
              ignore (Nearby.Naive_registry.query_member naive ~peer ~k:config.k)
            done;
            naive_iters)
      in
      {
        n;
        insert_us;
        query_us;
        naive_query_us;
        insert_per_log = insert_us /. (log (float_of_int n) /. log 2.0);
      })
    config.populations

let print rows =
  print_endline "complexity: path-tree insertion and query cost vs population";
  print_endline "  (paper claim: insert O(log n), query O(1) hash access)";
  Prelude.Table.print
    ~header:[ "n"; "insert us"; "query us"; "naive query us"; "insert us / log2 n" ]
    (List.map
       (fun r ->
         [
           string_of_int r.n;
           Prelude.Table.float_cell r.insert_us;
           Prelude.Table.float_cell r.query_us;
           Prelude.Table.float_cell r.naive_query_us;
           Prelude.Table.float_cell r.insert_per_log;
         ])
       rows)
