type config = {
  routers : int;
  landmark_count : int;
  k : int;
  arrival : Simkit.Workload.process;
  duration_ms : float;
  service_rate_per_s : float;
  batch : int;
  queue_cap : int;
  policy : string;
  deadline_ms : float option;
  wait_budget_ms : float option;
  slo_budget_ms : float;
  churn : Simkit.Workload.churn;
  window_ms : float;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    landmark_count = 8;
    k = 5;
    arrival =
      Simkit.Workload.Flash
        { base_per_s = 100.0; spike_per_s = 800.0; spike_at_s = 2.0; spike_len_s = 4.0 };
    duration_ms = 10_000.0;
    service_rate_per_s = 400.0;
    batch = 16;
    queue_cap = 1200;
    policy = "slo";
    deadline_ms = None;
    wait_budget_ms = None;
    slo_budget_ms = 1_000.0;
    churn = Simkit.Workload.no_churn;
    window_ms = 250.0;
    seed = 1;
  }

let quick_config = { default_config with routers = 800 }
let policies = [ "drop-tail"; "deadline"; "slo" ]

type result = {
  arrival : string;
  policy : string;
  peak_rate_per_s : float;
  service_rate_per_s : float;
  saturation : float;
  offered : int;
  submitted : int;
  admitted : int;
  completed : int;
  completion_rate : float;
  shed : (string * int) list;
  shed_fraction : float;
  goodput_per_s : float;
  join_p50_ms : float;
  join_p99_ms : float;
  wait_p50_ms : float;
  wait_p99_ms : float;
  max_queue_depth : int;
  slo_budget_ms : float;
  p99_within_budget : bool;
  slo_sheds_opened : int;
  leaves : int;
  handovers : int;
  final_peers : int;
}

type artifacts = {
  exp_trace : Simkit.Trace.t;
  server_trace : Simkit.Trace.t;
  metrics : Simkit.Metrics.t;
  timeseries : Simkit.Timeseries.t;
  recorder : Simkit.Flight_recorder.t;
  totals : Nearby.Admission.totals;
}

let policy_of (config : config) =
  let budget = config.slo_budget_ms in
  match config.policy with
  | "drop-tail" -> Nearby.Admission.Drop_tail
  | "deadline" ->
      Nearby.Admission.Deadline
        { max_wait_ms = Option.value config.deadline_ms ~default:(0.8 *. budget) }
  | "slo" ->
      Nearby.Admission.slo_shed ~lookback:2 ~burn_threshold:0.5
        ~poll_every_ms:(Float.max 20.0 (config.window_ms /. 2.0))
        ~wait_p99_limit_ms:(Option.value config.wait_budget_ms ~default:(0.15 *. budget))
        ()
  | other ->
      invalid_arg
        (Printf.sprintf "Load_exp: unknown policy %S (expected %s)" other
           (String.concat " | " policies))

let run_instrumented (config : config) =
  if config.duration_ms <= 0.0 then invalid_arg "Load_exp: duration must be positive";
  if config.slo_budget_ms <= 0.0 then invalid_arg "Load_exp: slo budget must be positive";
  if config.window_ms <= 0.0 then invalid_arg "Load_exp: window must be positive";
  Simkit.Workload.validate config.arrival;
  Simkit.Workload.validate_churn config.churn;
  let w =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count ~peers:1
      ~seed:config.seed ()
  in
  let leaves = w.map.leaves in
  let engine = Simkit.Engine.create () in
  let server =
    Nearby.Server.create ?latency:w.ctx.latency w.ctx.oracle ~landmarks:w.landmarks
  in
  let metrics = Simkit.Metrics.create () in
  let recorder = Simkit.Flight_recorder.create ~capacity:1024 () in
  (* Horizon: arrivals stop at [duration_ms]; whatever is queued then drains
     at the service rate (plus handover measurement tails and slack). *)
  let drain_ms = 1000.0 *. float_of_int config.queue_cap /. config.service_rate_per_s in
  let horizon = config.duration_ms +. drain_ms +. 5_000.0 in
  let ts =
    Simkit.Timeseries.create
      ~capacity:(max 64 (int_of_float (horizon /. config.window_ms) + 8))
      ~window_ms:config.window_ms ()
  in
  let exp_trace = Simkit.Trace.create () in
  let arrival_rng = Prelude.Prng.split w.rng in
  let router_rng = Prelude.Prng.split w.rng in
  let churn_rng = Prelude.Prng.split w.rng in
  (* Round 1 is deterministic per attachment router (no probe rng), so a
     crowd arriving at the same leaf shares one measurement. *)
  let memo : (Topology.Graph.node, Nearby.Server.measurement) Hashtbl.t =
    Hashtbl.create 1024
  in
  let measure_of router =
    match Hashtbl.find_opt memo router with
    | Some m -> m
    | None ->
        let m = Nearby.Server.measure server ~attach_router:router in
        Hashtbl.add memo router m;
        m
  in
  let pick_router () = leaves.(Prelude.Prng.int router_rng (Array.length leaves)) in
  (* A handover re-attaches in another landmark's region: redraw until the
     memoized measurement elects a different landmark (bounded tries — tiny
     maps may have a dominant region). *)
  let pick_other_region ~old_landmark =
    let rec go tries fallback =
      if tries = 0 then fallback
      else
        let r = pick_router () in
        if Nearby.Server.measurement_landmark (measure_of r) <> old_landmark then r
        else go (tries - 1) r
    in
    go 8 (pick_router ())
  in
  let pending = ref [] in
  let completed = ref 0 in
  let left = ref 0 in
  let handovers = ref 0 in
  let flush_impl = ref (fun () -> ()) in
  let admission =
    Nearby.Admission.create ~engine ~metrics ~timeseries:ts ~recorder
      ~on_drain:(fun ~served:_ -> !flush_impl ())
      {
        Nearby.Admission.capacity = config.queue_cap;
        service_rate_per_s = config.service_rate_per_s;
        batch = config.batch;
        policy = policy_of config;
      }
  in
  (* One request's life: measure at the arrival time, submit the
     registration after the measurement duration, and (when admitted) land
     in [pending] until the drain tick's batch flush registers it. *)
  let enqueue_request ~peer ~router ~kind =
    let started = Simkit.Engine.now engine in
    Simkit.Timeseries.observe ts "join_started" ~now:started 1.0;
    let meas = measure_of router in
    Simkit.Engine.schedule engine
      ~delay:(Nearby.Server.measurement_duration_ms meas)
      (fun () ->
        Nearby.Admission.submit admission
          ~serve:(fun ~queued_ms ->
            Simkit.Trace.observe exp_trace "admission_wait_ms" queued_ms;
            pending := (peer, router, meas, started, kind) :: !pending)
          ~shed:(fun ~reason:_ ->
            Simkit.Timeseries.observe ts "join_shed" ~now:(Simkit.Engine.now engine) 1.0))
  in
  let rec maybe_schedule_departure ~peer ~now =
    match Simkit.Workload.draw_departure config.churn ~rng:churn_rng with
    | None -> ()
    | Some (dwell, kind) ->
        let at = now +. dwell in
        if at <= config.duration_ms then
          Simkit.Engine.schedule_at engine ~time:at (fun () ->
              if Nearby.Server.mem server peer then
                match kind with
                | Simkit.Churn.Leave | Simkit.Churn.Crash ->
                    Nearby.Server.leave server ~peer;
                    incr left;
                    Simkit.Timeseries.observe ts "peer_left"
                      ~now:(Simkit.Engine.now engine) 1.0
                | Simkit.Churn.Handover ->
                    let old_landmark =
                      match Nearby.Server.info server peer with
                      | Some info -> info.Nearby.Server.landmark
                      | None -> w.landmarks.(0)
                    in
                    Nearby.Server.leave server ~peer;
                    incr handovers;
                    enqueue_request ~peer
                      ~router:(pick_other_region ~old_landmark)
                      ~kind:`Handover)
  and flush () =
    let entries = List.rev !pending in
    pending := [];
    if entries <> [] then begin
      let batch =
        Array.of_list (List.map (fun (peer, router, meas, _, _) -> (peer, router, meas)) entries)
      in
      ignore (Nearby.Server.register_measured_batch server batch);
      let now = Simkit.Engine.now engine in
      List.iter
        (fun (peer, _router, _meas, started, kind) ->
          incr completed;
          let dt = now -. started in
          Simkit.Trace.observe exp_trace "join_ms" dt;
          Simkit.Timeseries.observe ts "join_ms" ~now dt;
          Simkit.Timeseries.observe ts "join_completed" ~now 1.0;
          (match kind with
          | `Handover -> Simkit.Trace.observe exp_trace "handover_ms" dt
          | `Join -> ());
          ignore (Nearby.Server.neighbors server ~peer ~k:config.k);
          maybe_schedule_departure ~peer ~now)
        entries
    end
  in
  flush_impl := flush;
  let offered =
    Simkit.Workload.install ~engine ~rng:arrival_rng config.arrival
      ~until_ms:config.duration_ms
      ~on_arrival:(fun i -> enqueue_request ~peer:i ~router:(pick_router ()) ~kind:`Join)
  in
  Simkit.Engine.run engine ~until:horizon;
  let totals = Nearby.Admission.totals admission in
  let quantile name q =
    match Simkit.Trace.quantile exp_trace name q with Some v -> v | None -> nan
  in
  let peak = Simkit.Workload.peak_rate config.arrival in
  let join_p99 = quantile "join_ms" 0.99 in
  let result =
    {
      arrival = Simkit.Workload.describe config.arrival;
      policy = config.policy;
      peak_rate_per_s = peak;
      service_rate_per_s = config.service_rate_per_s;
      saturation = peak /. config.service_rate_per_s;
      offered;
      submitted = totals.Nearby.Admission.submitted;
      admitted = totals.Nearby.Admission.admitted;
      completed = !completed;
      completion_rate =
        (if totals.Nearby.Admission.admitted = 0 then 1.0
         else float_of_int !completed /. float_of_int totals.Nearby.Admission.admitted);
      shed = totals.Nearby.Admission.shed;
      shed_fraction =
        (if totals.Nearby.Admission.submitted = 0 then 0.0
         else
           float_of_int totals.Nearby.Admission.shed_total
           /. float_of_int totals.Nearby.Admission.submitted);
      goodput_per_s = float_of_int !completed /. (config.duration_ms /. 1000.0);
      join_p50_ms = quantile "join_ms" 0.5;
      join_p99_ms = join_p99;
      wait_p50_ms = quantile "admission_wait_ms" 0.5;
      wait_p99_ms = quantile "admission_wait_ms" 0.99;
      max_queue_depth = totals.Nearby.Admission.max_depth;
      slo_budget_ms = config.slo_budget_ms;
      p99_within_budget = (not (Float.is_nan join_p99)) && join_p99 <= config.slo_budget_ms;
      slo_sheds_opened = totals.Nearby.Admission.slo_sheds_opened;
      leaves = !left;
      handovers = !handovers;
      final_peers = Nearby.Server.peer_count server;
    }
  in
  ( result,
    {
      exp_trace;
      server_trace = Nearby.Server.trace server;
      metrics;
      timeseries = ts;
      recorder;
      totals;
    } )

let run config = fst (run_instrumented config)

let result_json (r : result) =
  let fl v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let shed =
    String.concat ", "
      (List.map
         (fun (reason, n) -> Printf.sprintf "%s: %d" (Simkit.Json_str.quote reason) n)
         r.shed)
  in
  Printf.sprintf
    {|{"arrival": %s, "policy": %s, "peak_rate_per_s": %.1f, "service_rate_per_s": %.1f, "saturation": %.3f, "offered": %d, "submitted": %d, "admitted": %d, "completed": %d, "completion_rate": %.4f, "shed": {%s}, "shed_fraction": %.4f, "goodput_per_s": %.2f, "join_p50_ms": %s, "join_p99_ms": %s, "wait_p50_ms": %s, "wait_p99_ms": %s, "max_queue_depth": %d, "slo_budget_ms": %.1f, "p99_within_budget": %b, "slo_sheds_opened": %d, "leaves": %d, "handovers": %d, "final_peers": %d}|}
    (Simkit.Json_str.quote r.arrival)
    (Simkit.Json_str.quote r.policy)
    r.peak_rate_per_s r.service_rate_per_s r.saturation r.offered r.submitted r.admitted
    r.completed r.completion_rate shed r.shed_fraction r.goodput_per_s (fl r.join_p50_ms)
    (fl r.join_p99_ms) (fl r.wait_p50_ms) (fl r.wait_p99_ms) r.max_queue_depth r.slo_budget_ms
    r.p99_within_budget r.slo_sheds_opened r.leaves r.handovers r.final_peers

let print (r : result) =
  Printf.printf "Load: arrival=%s policy=%s saturation=%.2fx\n" r.arrival r.policy r.saturation;
  Prelude.Table.print
    ~header:[ "metric"; "value" ]
    [
      [ "offered"; string_of_int r.offered ];
      [ "submitted"; string_of_int r.submitted ];
      [ "admitted"; string_of_int r.admitted ];
      [ "completed"; string_of_int r.completed ];
      [ "completion rate"; Prelude.Table.float_cell ~decimals:4 r.completion_rate ];
      [
        "shed";
        (match r.shed with
        | [] -> "-"
        | l -> String.concat " " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) l));
      ];
      [ "shed fraction"; Prelude.Table.float_cell ~decimals:4 r.shed_fraction ];
      [ "goodput (/s)"; Prelude.Table.float_cell ~decimals:1 r.goodput_per_s ];
      [ "join p50 (ms)"; Prelude.Table.float_cell ~decimals:1 r.join_p50_ms ];
      [ "join p99 (ms)"; Prelude.Table.float_cell ~decimals:1 r.join_p99_ms ];
      [ "wait p50 (ms)"; Prelude.Table.float_cell ~decimals:1 r.wait_p50_ms ];
      [ "wait p99 (ms)"; Prelude.Table.float_cell ~decimals:1 r.wait_p99_ms ];
      [ "max queue depth"; string_of_int r.max_queue_depth ];
      [ "slo budget (ms)"; Prelude.Table.float_cell ~decimals:1 r.slo_budget_ms ];
      [ "p99 within budget"; string_of_bool r.p99_within_budget ];
      [ "slo sheds opened"; string_of_int r.slo_sheds_opened ];
      [ "leaves"; string_of_int r.leaves ];
      [ "handovers"; string_of_int r.handovers ];
      [ "final peers"; string_of_int r.final_peers ];
    ]
