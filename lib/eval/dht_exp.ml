type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  dht_nodes : int;
  virtual_nodes : int;
  k : int;
  seed : int;
}

let default_config =
  { routers = 2000; peers = 600; landmark_count = 8; dht_nodes = 64; virtual_nodes = 8; k = 5; seed = 1 }

let quick_config =
  { routers = 600; peers = 150; landmark_count = 4; dht_nodes = 16; virtual_nodes = 8; k = 5; seed = 1 }

(* One row of the backend sweep: the same join/query workload replayed
   against each registry backend through the unified interface. *)
type backend_row = {
  backend : string;
  identical : bool;  (* Same answers as the centralized path tree. *)
  backend_stats : (string * int) list;  (* Merged per-landmark [stats]. *)
  queries : int;  (* "registry_query" trace counter, all landmarks. *)
}

type report = {
  answers_identical : bool;
  mean_lookups_per_join : float;
  mean_hops_per_lookup : float;
  mean_lookups_per_query : float;
  bucket_balance : float;
  bucket_balance_v1 : float;
  super_peer_balance : float;
  ring_size : int;
  mean_hops_kademlia : float;
      (* Same lookups routed over a Kademlia table of the same nodes. *)
  join_migration_fraction : float;
      (* Buckets moved when one node joins / total buckets: consistent
         hashing promises ~1/(N+1). *)
  backend_rows : backend_row list;
}

let run config =
  let w =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
      ~peers:config.peers ~seed:config.seed ()
  in
  let n = Array.length w.Workload.peer_routers in
  (* Centralized reference. *)
  let server = Nearby.Server.create w.ctx.oracle ~landmarks:w.landmarks in
  for peer = 0 to n - 1 do
    ignore (Nearby.Server.join server ~peer ~attach_router:w.peer_routers.(peer))
  done;
  (* Super-peers, for the balance comparison. *)
  let supers = Nearby.Super_peer.create w.ctx.oracle ~landmarks:w.landmarks ~super_routers:w.landmarks in
  for peer = 0 to n - 1 do
    ignore (Nearby.Super_peer.join supers ~peer ~attach_router:w.peer_routers.(peer))
  done;
  (* DHT: one directory shard per landmark over a shared node set (the
     first dht_nodes peers double as storage nodes, offset into their own
     id space). *)
  let storage_nodes = Array.init config.dht_nodes (fun i -> 1_000_000 + i) in
  let make_directories ~virtual_nodes =
    let dirs = Hashtbl.create config.landmark_count in
    Array.iter
      (fun lmk ->
        Hashtbl.add dirs lmk (Dht.Directory.create ~virtual_nodes ~landmark:lmk storage_nodes))
      w.landmarks;
    dirs
  in
  let directories = make_directories ~virtual_nodes:config.virtual_nodes in
  let join_lookups = ref 0 and join_hops = ref 0 in
  for peer = 0 to n - 1 do
    match Nearby.Server.info server peer with
    | None -> ()
    | Some info ->
        let routers = Traceroute.Path.known_routers info.recorded_path in
        let dir = Hashtbl.find directories info.landmark in
        let before = Dht.Directory.stats dir in
        Dht.Directory.insert dir ~peer ~routers;
        let after = Dht.Directory.stats dir in
        join_lookups := !join_lookups + (after.lookups - before.lookups);
        join_hops := !join_hops + (after.overlay_hops - before.overlay_hops)
  done;
  (* Queries: every peer asks its home directory; compare with central. *)
  Hashtbl.iter (fun _ dir -> Dht.Directory.reset_counters dir) directories;
  let identical = ref true in
  let query_lookups = ref 0 and query_hops = ref 0 in
  for peer = 0 to n - 1 do
    match Nearby.Server.info server peer with
    | None -> ()
    | Some info ->
        let dir = Hashtbl.find directories info.landmark in
        let before = Dht.Directory.stats dir in
        let dht_reply = Dht.Directory.query_member dir ~peer ~k:config.k in
        let after = Dht.Directory.stats dir in
        query_lookups := !query_lookups + (after.lookups - before.lookups);
        query_hops := !query_hops + (after.overlay_hops - before.overlay_hops);
        let central_reply =
          Nearby.Server.neighbors server ~peer ~k:config.k
          |> List.filter (fun (_, d) -> d <> max_int)
        in
        if dht_reply <> central_reply then identical := false
  done;
  let balance_of counts =
    let values = List.map float_of_int counts in
    let total = List.fold_left ( +. ) 0.0 values in
    if total = 0.0 then 1.0
    else begin
      let mean = total /. float_of_int (List.length values) in
      List.fold_left Float.max 0.0 values /. mean
    end
  in
  (* Aggregate bucket counts per storage node across the landmark shards. *)
  let bucket_counts_of dirs =
    let per_node = Hashtbl.create config.dht_nodes in
    Hashtbl.iter
      (fun _ dir ->
        List.iter
          (fun (node, buckets) ->
            Hashtbl.replace per_node node
              (buckets + Option.value ~default:0 (Hashtbl.find_opt per_node node)))
          (Dht.Directory.stats dir).buckets_per_node)
      dirs;
    Hashtbl.fold (fun _ b acc -> b :: acc) per_node []
  in
  let bucket_counts = bucket_counts_of directories in
  (* Baseline without virtual nodes, same registrations. *)
  let directories_v1 = make_directories ~virtual_nodes:1 in
  for peer = 0 to n - 1 do
    match Nearby.Server.info server peer with
    | None -> ()
    | Some info ->
        Dht.Directory.insert
          (Hashtbl.find directories_v1 info.landmark)
          ~peer
          ~routers:(Traceroute.Path.known_routers info.recorded_path)
  done;
  let bucket_counts_v1 = bucket_counts_of directories_v1 in
  let super_counts =
    List.map (fun (l : Nearby.Super_peer.region_load) -> l.members) (Nearby.Super_peer.loads supers)
  in
  (* Kademlia comparison: same storage nodes, same router keys, greedy XOR
     routing; hops averaged over one lookup per (peer path router). *)
  let kad = Dht.Kademlia.build storage_nodes in
  let kad_hops = ref 0 and kad_lookups = ref 0 in
  let ring_members = storage_nodes in
  let cursor = ref 0 in
  for peer = 0 to n - 1 do
    match Nearby.Server.info server peer with
    | None -> ()
    | Some info ->
        Array.iter
          (fun router ->
            let entry = ring_members.(!cursor mod Array.length ring_members) in
            incr cursor;
            let _, hops = Dht.Kademlia.lookup kad ~from:entry ~key:router in
            kad_hops := !kad_hops + hops;
            incr kad_lookups)
          (Traceroute.Path.known_routers info.recorded_path)
  done;
  (* Membership dynamics: cost of one storage-node join, as a fraction of
     all stored buckets (consistent hashing promises ~1/(N+1)). *)
  let join_migration_fraction =
    let sample_dir = Hashtbl.find directories w.landmarks.(0) in
    let total =
      List.fold_left (fun acc (_, b) -> acc + b) 0 (Dht.Directory.stats sample_dir).buckets_per_node
    in
    if total = 0 then 0.0
    else begin
      (* One trial join is high-variance at 1.5% expected capture; average
         a handful of trial node ids. *)
      let trials = 5 in
      let moved = ref 0 in
      for i = 0 to trials - 1 do
        let node = 2_000_000 + (i * 7919) in
        moved := !moved + Dht.Directory.add_node sample_dir ~node;
        ignore (Dht.Directory.remove_node sample_dir ~node)
      done;
      float_of_int !moved /. float_of_int (trials * total)
    end
  in
  (* Backend sweep: replay the recorded registrations against every backend
     through the unified interface and check each one answers exactly like
     the per-landmark path tree (the cross-tree top-up entries of the
     central reply are server behaviour, not backend behaviour, so the
     reference is the home-tree answer). *)
  let routers_of (info : Nearby.Server.peer_info) =
    let routers = Traceroute.Path.known_routers info.recorded_path in
    let nr = Array.length routers in
    if nr > 0 && routers.(nr - 1) = info.landmark then routers
    else Array.append routers [| info.landmark |]
  in
  let reference = Hashtbl.create n in
  let backend_rows =
    List.map
      (fun spec ->
        let trace = Simkit.Trace.create () in
        let backend = Backends.backend spec in
        let registries = Hashtbl.create config.landmark_count in
        Array.iter
          (fun lmk ->
            Hashtbl.add registries lmk (Nearby.Registry_intf.create ~trace backend ~landmark:lmk))
          w.landmarks;
        for peer = 0 to n - 1 do
          match Nearby.Server.info server peer with
          | None -> ()
          | Some info ->
              Nearby.Registry_intf.insert
                (Hashtbl.find registries info.landmark)
                ~peer ~routers:(routers_of info)
        done;
        let identical = ref true in
        for peer = 0 to n - 1 do
          match Nearby.Server.info server peer with
          | None -> ()
          | Some info ->
              let reply =
                Nearby.Registry_intf.query_member
                  (Hashtbl.find registries info.landmark)
                  ~peer ~k:config.k
              in
              (match spec with
              | Backends.Tree -> Hashtbl.replace reference peer reply
              | _ -> if reply <> Hashtbl.find reference peer then identical := false)
        done;
        {
          backend = Backends.to_string spec;
          identical = !identical;
          backend_stats =
            Nearby.Registry_intf.merge_stats
              (Hashtbl.fold (fun _ reg acc -> Nearby.Registry_intf.stats reg :: acc) registries []);
          queries = Simkit.Trace.counter trace "registry_query";
        })
      Backends.all
  in
  let total_lookups = !join_lookups + !query_lookups in
  let total_hops = !join_hops + !query_hops in
  {
    answers_identical = !identical;
    mean_lookups_per_join = float_of_int !join_lookups /. float_of_int (max 1 n);
    mean_hops_per_lookup =
      (if total_lookups = 0 then 0.0 else float_of_int total_hops /. float_of_int total_lookups);
    mean_lookups_per_query = float_of_int !query_lookups /. float_of_int (max 1 n);
    bucket_balance = balance_of bucket_counts;
    bucket_balance_v1 = balance_of bucket_counts_v1;
    super_peer_balance = balance_of super_counts;
    ring_size = config.dht_nodes;
    mean_hops_kademlia =
      (if !kad_lookups = 0 then 0.0 else float_of_int !kad_hops /. float_of_int !kad_lookups);
    join_migration_fraction;
    backend_rows;
  }

let print r =
  print_endline "dht: decentralizing the management server (Chord directory)";
  Prelude.Table.print
    ~header:[ "metric"; "value" ]
    [
      [ "answers identical to central server"; string_of_bool r.answers_identical ];
      [ "DHT lookups per join"; Prelude.Table.float_cell ~decimals:1 r.mean_lookups_per_join ];
      [ "DHT lookups per query"; Prelude.Table.float_cell ~decimals:1 r.mean_lookups_per_query ];
      [
        Printf.sprintf "overlay hops per lookup, Chord (ring of %d)" r.ring_size;
        Prelude.Table.float_cell ~decimals:2 r.mean_hops_per_lookup;
      ];
      [
        "overlay hops per lookup, Kademlia (same nodes)";
        Prelude.Table.float_cell ~decimals:2 r.mean_hops_kademlia;
      ];
      [ "bucket balance (max/mean), DHT + virtual nodes"; Prelude.Table.float_cell ~decimals:2 r.bucket_balance ];
      [ "bucket balance (max/mean), DHT plain"; Prelude.Table.float_cell ~decimals:2 r.bucket_balance_v1 ];
      [
        "member balance (max/mean), super-peers";
        Prelude.Table.float_cell ~decimals:2 r.super_peer_balance;
      ];
      [
        Printf.sprintf "buckets moved by one node join (~1/%d expected)" (r.ring_size + 1);
        Prelude.Table.float_cell r.join_migration_fraction;
      ];
    ];
  print_endline "";
  print_endline "registry backend sweep (same workload through the unified interface)";
  Prelude.Table.print
    ~header:[ "backend"; "answers = tree"; "queries"; "members"; "stats" ]
    (List.map
       (fun row ->
         let interesting =
           List.filter (fun (key, _) -> key <> "members") row.backend_stats
           |> List.map (fun (key, v) -> Printf.sprintf "%s=%d" key v)
           |> String.concat " "
         in
         [
           row.backend;
           string_of_bool row.identical;
           string_of_int row.queries;
           string_of_int (Option.value ~default:0 (List.assoc_opt "members" row.backend_stats));
           interesting;
         ])
       r.backend_rows)
