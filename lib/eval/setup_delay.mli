(** Extension E5: setup delay vs discovery quality.

    The paper's whole motivation: a live-streaming newcomer cannot wait for
    a coordinate system to converge.  On a latency-weighted map we charge
    each method its real protocol time (simulated milliseconds) and score
    the neighbor sets it can produce at that point:

    - proposed: parallel landmark pings + sequential traceroute + one RPC;
    - GNP: parallel landmark pings + local minimization (free);
    - Meridian: one ring-walk search (parallel probes per step, forwarding
      hops accumulate; ring upkeep is steady-state and not charged);
    - Vivaldi after r rounds, one gossip period per round. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  vivaldi_rounds : int list;
  round_period_ms : float;
  seed : int;
}

val default_config : config
val quick_config : config

type row = {
  method_name : string;
  setup_ms : float;  (** Mean protocol time per newcomer. *)
  ratio : float;
  hit_ratio : float;
}

val run : config -> row list
val print : row list -> unit
