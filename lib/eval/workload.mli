(** The paper's simulation workload (§3).

    "First we initialize an overlay by attaching n peers to routers with
    degree equals to one in the simulated network and few landmarks to
    routers with medium-size degree."  This module builds exactly that setup
    on a {!Topology.Gen_magoni} map and hands back everything an experiment
    needs. *)

type t = {
  map : Topology.Gen_magoni.t;
  peer_routers : Topology.Graph.node array;  (** Peer id -> degree-1 attachment router. *)
  landmarks : Topology.Graph.node array;
  ctx : Nearby.Selector.context;
  rng : Prelude.Prng.t;  (** Stream for the experiment's own randomness. *)
}

val build :
  ?routers:int ->
  ?landmark_count:int ->
  ?landmark_policy:Nearby.Landmark.policy ->
  ?latency:Topology.Latency.model ->
  peers:int ->
  seed:int ->
  unit ->
  t
(** Defaults: 4000 routers, 8 medium-degree landmarks, no latency table
    (hop-count time).  Peers are attached to uniformly drawn degree-1
    routers — distinct ones while the population fits (the paper's setup),
    with replacement beyond that.  Deterministic in [seed]. *)

val graph : t -> Topology.Graph.t
val peer_count : t -> int
