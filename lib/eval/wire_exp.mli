(** The bytes-on-wire experiment behind [bench wire] / BENCH_wire.json.

    Measures what the protocol actually costs on the wire: bytes per
    join, bytes per query, replication amplification, anti-entropy
    snapshot cost, and what batching saves — all read back from the
    transport's labeled wire accounting ([wire_bytes_total{kind,dir}],
    [wire_dropped_bytes_total{reason}]).

    Two phases over the same seeded workload: a {e singleton} phase where
    every peer joins through its own resilient RPC under a mid-window
    loss burst (so retry, dropped and snapshot byte buckets are all
    nonzero in one run), and a lossless {e batched} phase joining the
    same peers through [Protocol.join_many] in [batch]-sized chunks
    (isolating the [Path_report_batch] upload saving).  Deterministic in
    the seed. *)

type config = {
  routers : int;
  peers : int;  (** Joins per phase. *)
  landmark_count : int;
  k : int;
  replicas : int;
  batch : int;  (** Chunk size of the batched phase. *)
  loss : float;  (** Burst loss probability over 25%–60% of the window. *)
  arrival_window_ms : float;
  sync_period_ms : float;
  rpc : Simkit.Rpc.config;
  seed : int;
}

val default_config : config
(** The headline shape: 3 replicas, 10k joins, batch 256, 0.3 loss burst. *)

val quick_config : config
(** CI shape: 800 routers, 1.5k joins. *)

type kind_row = { kind : string; bytes : int; msgs : int }
(** One message kind summed over directions, from the singleton phase. *)

type result = {
  joins : int;
  completed : int;
  failed : int;
  completion_rate : float;
  bytes_sent : int;  (** Delivered bytes, singleton phase. *)
  bytes_dropped : int;
  messages : int;
  bytes_per_join : float;
      (** Request+reply-direction bytes (reports, queries, replies,
          retries — not replica fan-out) per completed join. *)
  bytes_per_query : float;  (** (query + reply kind bytes) per completed join. *)
  replication_amplification : float;
      (** {!Nearby.Cluster.replication_amplification} — exactly the
          replica count under verbatim write fan-out. *)
  snapshot_bytes : int;  (** Anti-entropy repair traffic ([kind="snapshot"]). *)
  retry_bytes : int;
  fd_probe_bytes : int;
  dropped_loss_bytes : int;
  dropped_unreachable_bytes : int;
  dropped_partition_bytes : int;
  kinds : kind_row list;  (** Largest first. *)
  top_talkers : Simkit.Transport.talker list;  (** Top 5 endpoints. *)
  singleton_report_bytes : int;
      (** Client-uploaded report bytes of the singleton phase (each
          report counted once, loss-independent). *)
  batch_joins : int;
  batch_completed : int;
  batch_report_bytes : int;
      (** Client-uploaded report bytes of the batched phase. *)
  batch_saving_ratio : float;
      (** [singleton_report_bytes / batch_report_bytes] — > 1 when the
          batch frame amortizes per-report overhead. *)
  batch_bytes_per_join : float;
  accounted : bool;
      (** Both phases reconcile: Σ [wire_bytes_total] =
          [Transport.bytes_sent] and Σ [wire_dropped_bytes_total] =
          [Transport.bytes_dropped]. *)
}

val run : config -> result
(** @raise Invalid_argument on replicas < 1, loss outside [0, 1) or
    batch < 1. *)

val result_json : result -> string
(** The result as one JSON object (the ["wire"] section of
    BENCH_wire.json). *)

val print : result -> unit
