(** Fleet-wide dimensional-metrics workload and the `top` dashboard.

    A healthy [replicas]-way cluster whose servers run a
    [sharded:N] registry backend, with every layer writing into one
    labeled {!Simkit.Metrics} registry:

    - per-shard timings and occupancy gauges
      ([registry_shard_*_ns{shard="i"}],
      [registry_shard_members{landmark=...,shard=...}]);
    - per-backend mirrors ([registry_*_ns{backend="sharded:4"}]);
    - per-outcome RPC counters ([rpc_outcomes{outcome=...}]);
    - per-replica scrape series ([join_ms{replica="i"}]) next to the
      merged fleet trace of {!Nearby.Cluster.fleet_trace};
    - a {!Simkit.Runtime_profile} (GC deltas per phase, domain-pool
      utilization, observe-path overhead).

    The engine advances in slices, so `nearby_sim top` renders a frame
    between slices and watches the fleet fill up in simulated time. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  replicas : int;
  shards : int;
  arrival_window_ms : float;
  sync_period_ms : float;
  window_ms : float;  (** Timeseries / SLO window width, ms. *)
  admission_rate_per_s : float;
      (** Drain rate of the {!Nearby.Admission} queue every join passes
          through — generous by default (well above the arrival rate,
          capacity for every peer), so a healthy fleet never sheds and the
          queueing term adds at most a few drain ticks to join latency. *)
  bandwidth_budget_bytes_per_s : float;
      (** Wire-bandwidth SLO: a completed window whose delivered-bytes
          rate exceeds this raises an edge-triggered ["wire"]-kind
          flight-recorder breach event (cleared on the first window back
          under budget). *)
  slos : Simkit.Slo.spec list;
  seed : int;
}

val default_slos : Simkit.Slo.spec list
(** Join p99 under 2 s and 99% completion — the dashboard's stock
    objectives. *)

val default_config : config
(** 2000 routers, 300 peers, 3 replicas over [sharded:4]. *)

val quick_config : config
(** CI-sized: 800 routers, 120 peers. *)

type t
(** A running (or finished) fleet session; doubles as the run's
    artifacts. *)

val start : config -> t
(** Build the workload, cluster, RPC layer and schedule every join;
    nothing has executed yet.  @raise Invalid_argument on a non-positive
    replica, shard or window configuration. *)

val advance : t -> until:float -> unit
(** Run the engine up to [min until horizon] (a profiled ["run"] phase),
    then refresh the domain-pool utilization snapshot. *)

val horizon : t -> float
(** Engine time by which every join has resolved (worst-case RPC
    schedule included). *)

val now : t -> float
val finished : t -> bool
val metrics : t -> Simkit.Metrics.t
(** The shared labeled registry (shard / backend / RPC series). *)

val timeseries : t -> Simkit.Timeseries.t
val runtime : t -> Simkit.Runtime_profile.t
val cluster : t -> Nearby.Cluster.t

val transport : t -> Simkit.Transport.t
(** The shared transport — wire counters, drop buckets and
    {!Simkit.Transport.top_talkers} for the dashboard's wire panel. *)

val recorder : t -> Simkit.Flight_recorder.t
(** Receives the ["wire"]-kind bandwidth breach / clear events. *)

val wire_breaches : t -> int
(** Bandwidth-SLO breach edges seen so far. *)

val admission : t -> Nearby.Admission.t
(** The bounded queue in front of the cluster (depth / totals for the
    dashboard's admission panel). *)

val fleet_trace : t -> Simkit.Trace.t
(** {!Nearby.Cluster.fleet_trace} — freshly merged on every call. *)

val scrape : t -> Simkit.Metrics.t
(** A fresh registry holding the per-replica ([{replica="i"}]) scrape —
    fresh each call because scraping the same registry twice
    double-counts. *)

type result = {
  joins : int;
  completed : int;
  failed : int;
  fleet_join_p50_ms : float;  (** Merged-trace sketch quantiles. *)
  fleet_join_p99_ms : float;
  replica_join_p99_ms : float array;  (** Labeled per-replica p99s. *)
  rpc_ok : int;
  rpc_timeouts : int;
  shard_members : float array;  (** Occupancy summed per shard across landmarks. *)
  shard_skew : float;  (** max / mean shard occupancy; [nan] when empty. *)
  pool_busy_share : float;  (** Busy fraction of the shared domain pool. *)
  overhead_ns : float;  (** Profiler observe-path self-overhead. *)
  wire_bytes : int;  (** Delivered bytes, all kinds. *)
  wire_dropped_bytes : int;
  replication_amplification : float;
      (** See {!Nearby.Cluster.replication_amplification}. *)
  digest_checks : int;
      (** Divergence comparisons run (per-window polls + sync-round
          ends). *)
  divergent_replicas : int;  (** Replicas diverging at the horizon (0 when healthy). *)
  report_age_p50_ms : float;
      (** Fleet report-age median at the horizon, merged across replicas;
          [nan] with no reports. *)
  report_age_oldest_ms : float;  (** Stalest report still served. *)
}

val result : t -> result
(** Drives the engine to the horizon first if needed. *)

val run : config -> result * t

val render : t -> string
(** One dashboard frame: header, ops/s and join-latency sparklines, SLO
    status lines, RPC outcome mix, the wire panel (per-kind byte mix,
    replication amplification, top talkers, bandwidth sparkline), the
    admission panel (queue-depth sparkline plus shed mix), runtime (GC per
    phase, pool utilization, overhead) and per-shard occupancy bars.
    Plain text, no escape sequences. *)
