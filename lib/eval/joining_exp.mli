(** The paper's thesis, end to end: how soon does a newcomer {e see video}?

    A swarm is already streaming.  Newcomers arrive mid-stream and must
    (1) discover neighbors, then (2) buffer enough contiguous chunks to
    start playback.  Discovery methods pay their real protocol time on the
    shared simulation clock:

    - proposed: landmark pings + traceroute + server RPC
      ({!Nearby.Protocol.estimate_join_delay}), then the server's regional
      answer;
    - random: zero discovery time, uniform random neighbors — the fastest
      possible discovery with the worst proximity;
    - ideal-coords: an {e idealized} coordinate system — perfect closest
      neighbors, but only after the convergence delay (rounds x period);
      real Vivaldi would be strictly worse.

    The figure of merit is time-to-playback from arrival: discovery delay
    + buffering delay, per newcomer. *)

type config = {
  routers : int;
  initial_peers : int;
  newcomers : int;
  k : int;
  vivaldi_rounds : int;
  round_period_ms : float;
  arrival_window_ms : float * float;  (** Newcomers arrive uniformly here. *)
  session : Streaming.Session.params;
  seed : int;
}

val default_config : config
val quick_config : config

type row = {
  method_name : string;
  mean_discovery_ms : float;
  mean_buffering_ms : float;  (** From mesh attachment to playback start. *)
  mean_time_to_play_ms : float;  (** Arrival to playback (the sum, over starters). *)
  started_fraction : float;  (** Newcomers playing by the end. *)
  mean_neighbor_hops : float;  (** Mesh proximity the method bought. *)
}

val run : config -> row list
val print : row list -> unit
