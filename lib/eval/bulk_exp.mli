(** Bulk distribution under different neighbor selectors (the second
    application workload, complementing the live {!Streaming_exp}).

    Same swarm, same file, same scheduling — only the mesh differs.  Bulk
    swarms have no deadlines, so completion time and network stress carry
    all the signal. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  session : Streaming.Bulk.params;
  seed : int;
}

val default_config : config
val quick_config : config

type row = {
  selector : string;
  completed_fraction : float;
  mean_completion_s : float;
  p95_completion_s : float;
  megabytes : float;
  link_megabytes : float;
}

val run : config -> row list
val print : row list -> unit
