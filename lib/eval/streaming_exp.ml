type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  session : Streaming.Session.params;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    peers = 300;
    landmark_count = 8;
    k = 5;
    session = Streaming.Session.default_params;
    seed = 1;
  }

let quick_config =
  {
    routers = 800;
    peers = 120;
    landmark_count = 6;
    k = 4;
    session = { Streaming.Session.default_params with duration_ms = 20_000.0 };
    seed = 1;
  }

type row = {
  selector : string;
  continuity : float;
  mean_startup_ms : float;
  started_fraction : float;
  mean_lag_chunks : float;
  mean_chunk_latency_ms : float;
  megabytes : float;
  link_megabytes : float;
}

let run config =
  let w =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
      ~latency:(Topology.Latency.Core_weighted { core_ms = 2.0; edge_ms = 15.0; threshold = 8 })
      ~peers:config.peers ~seed:config.seed ()
  in
  let rng = w.rng in
  (* The source sits next to the first landmark's router — a well-connected
     injection point, as a CDN-fed head-end would be. *)
  let source_router = w.landmarks.(0) in
  let proposed =
    Nearby.Selector.Proposed { landmarks = w.landmarks; truncate = Traceroute.Truncate.Full }
  in
  let strategies =
    [
      ("proposed", proposed);
      ("proposed+1rand", Nearby.Selector.Hybrid { primary = proposed; random_links = 1 });
      ("proposed+2rand", Nearby.Selector.Hybrid { primary = proposed; random_links = 2 });
      ("closest+2rand", Nearby.Selector.Hybrid { primary = Oracle_closest; random_links = 2 });
      ("random", Nearby.Selector.Random_peers);
    ]
  in
  List.map
    (fun (name, strategy) ->
      let sets = Nearby.Selector.select w.ctx strategy ~k:config.k ~rng:(Prelude.Prng.copy rng) in
      let report =
        Streaming.Session.run ~params:config.session ?latency:w.ctx.latency ~graph:w.ctx.graph
          ~source_router ~peer_routers:w.peer_routers ~neighbor_sets:sets ~seed:(config.seed + 99)
          ()
      in
      {
        selector = name;
        continuity = report.continuity;
        mean_startup_ms = report.mean_startup_ms;
        started_fraction = report.started_fraction;
        mean_lag_chunks = report.mean_lag_chunks;
        mean_chunk_latency_ms = report.mean_chunk_latency_ms;
        megabytes = float_of_int report.bytes /. 1e6;
        link_megabytes = float_of_int report.link_bytes /. 1e6;
      })
    strategies

let print rows =
  print_endline "streaming: mesh live streaming under different neighbor selectors";
  Prelude.Table.print
    ~header:
      [
        "selector";
        "continuity";
        "startup ms";
        "started";
        "lag (chunks)";
        "chunk latency ms";
        "MB sent";
        "MB x hop";
      ]
    (List.map
       (fun r ->
         [
           r.selector;
           Prelude.Table.float_cell r.continuity;
           Prelude.Table.float_cell ~decimals:0 r.mean_startup_ms;
           Prelude.Table.float_cell ~decimals:2 r.started_fraction;
           Prelude.Table.float_cell ~decimals:2 r.mean_lag_chunks;
           Prelude.Table.float_cell ~decimals:1 r.mean_chunk_latency_ms;
           Prelude.Table.float_cell ~decimals:1 r.megabytes;
           Prelude.Table.float_cell ~decimals:1 r.link_megabytes;
         ])
       rows)
