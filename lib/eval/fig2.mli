(** Reproduction of the paper's measured figure (DESIGN.md "fig2").

    x-axis: number of peers (600..1400); series: [Drandom / Dclosest] and
    [D / Dclosest] where [D] is the proposed scheme's hop-distance sum.
    The paper's reading: the proposed ratio is low (~1.1–1.2) and {e stable}
    as the population grows; the random ratio is high (~2.2+) and noisy. *)

type config = {
  routers : int;
  landmark_count : int;
  k : int;  (** Neighbors requested per peer. *)
  peer_counts : int list;
  seeds : int list;  (** Independent repetitions, averaged. *)
}

val default_config : config
(** 4000 routers, 8 landmarks, k = 5, n in {600, 800, ..., 1400}, 3 seeds. *)

val quick_config : config
(** Smaller map and a single seed, for smoke runs. *)

type row = {
  n : int;
  ratio_proposed : float;  (** D / Dclosest, mean over seeds. *)
  ratio_random : float;  (** Drandom / Dclosest, mean over seeds. *)
  ratio_proposed_ci : float;  (** 95% CI half-width over seeds. *)
  ratio_random_ci : float;
  hit_proposed : float;
}

val run : config -> row list
val print : row list -> unit
(** Table plus an ASCII rendering of the two series, matching the paper's
    axes. *)
