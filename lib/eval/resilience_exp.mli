(** Fault-injection experiment over the resilient join path.

    Peers arrive uniformly over a window and join through {!Simkit.Rpc}
    against an N-replica {!Nearby.Cluster} while a scripted {!Simkit.Fault}
    scenario crashes replicas, raises packet loss or partitions the
    primary's subtree.  The headline numbers are the ones the resilience
    layer is supposed to guarantee: join completion rate (must be 1.0 with
    a surviving replica), join-latency tail, and how long a recovered
    replica takes to be back in sync. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  replicas : int;
  loss : float;  (** Baseline loss probability, [0, 1). *)
  scenario : string;  (** One of {!scenario_names}. *)
  arrival_window_ms : float;  (** Joins arrive uniformly in [0, window]. *)
  sync_period_ms : float;  (** Anti-entropy period. *)
  rpc : Simkit.Rpc.config;
  detector : Simkit.Failure_detector.config;
  slos : Simkit.Slo.spec list;
      (** Objectives polled once per [slo_window_ms]; breach / clear edges
          land in the flight recorder. *)
  slo_window_ms : float;  (** Timeseries window width (and SLO poll period). *)
  audit_rate : float;
      (** Fraction of completed joins audited online against BFS ground
          truth ({!Nearby.Audit}); 0 disables the auditor. *)
  seed : int;
}

val default_config : config
(** 2000 routers, 300 peers, 3 replicas, crash-primary, no baseline loss. *)

val quick_config : config

val scenario_names : string list
(** ["none"; "crash-primary"; "loss-burst"; "partition"].  Faults fire at
    fixed fractions of the arrival window: crash at 25% / recover at 75%;
    loss and partition windows span 25%–60%. *)

type result = {
  scenario : string;
  replicas : int;
  loss : float;
  joins : int;
  completed : int;
  failed : int;  (** Joins whose RPC gave up — never silent stalls. *)
  completion_rate : float;
  join_p50_ms : float;
  join_p99_ms : float;
  rpc_attempts : int;
  rpc_retries : int;
  rpc_timeouts : int;
  rpc_gave_up : int;
  suspicions : int;
  sync_rounds : int;
  recovery_ms : float option;
      (** Mean crash-to-back-in-sync time; [None] when nothing recovered. *)
  consistent : bool;  (** All live replicas hold the same peer set. *)
  live_peer_counts : int list;
  dropped_loss : int;
  dropped_unreachable : int;
  dropped_partition : int;
  slo_breaches : string list;
      (** Names of objectives that breached at any point during the run
          (possibly since cleared), in breach order. *)
}

type artifacts = {
  exp_trace : Simkit.Trace.t;  (** Stream ["join_ms"]. *)
  rpc_trace : Simkit.Trace.t;
  cluster_trace : Simkit.Trace.t;
  transport_counters : (string * int) list;
  audit_trace : Simkit.Trace.t option;  (** Present when [audit_rate > 0]. *)
  timeseries : Simkit.Timeseries.t;
      (** Series ["join_started"], ["join_completed"], ["join_failed"],
          ["join_ms"], plus the auditor's quality streams when enabled. *)
  recorder : Simkit.Flight_recorder.t;
      (** RPC outcomes, cluster membership changes, injected faults and SLO
          transitions, ready for a [--flight-out] JSONL dump. *)
  slo_statuses : Simkit.Slo.status list;  (** Final end-of-run verdicts. *)
}

val run : config -> result
(** Deterministic in [config.seed].
    @raise Invalid_argument on an unknown scenario, [replicas < 1] or loss
    outside [0, 1). *)

val run_instrumented : ?spans:Simkit.Span.sink -> config -> result * artifacts
(** {!run}, also returning the live observability artifacts.

    [spans] (default: the noop sink) receives the causal span trees of the
    whole run: one root ["join"] span per peer with its measurement, RPC
    attempts, server-side registration subtree and replication fan-out
    hanging off it, plus the cluster's ["sync_round"] roots.  The same
    sink is shared by the RPC layer, the cluster and every replica server,
    so all parent links resolve within one file.  When tracing is on, the
    [exp_trace] ["join_ms"] samples are tagged with their join's trace id
    (tail exemplars) and SLO breach events carry an [exemplar_trace_id]
    pointing at the worst-bucket join seen so far. *)

val result_json : result -> string
(** One JSON object (no trailing newline). *)

val print : result -> unit
