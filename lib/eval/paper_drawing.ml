type t = {
  graph : Topology.Graph.t;
  lmk : Topology.Graph.node;
  ra : Topology.Graph.node;
  rb : Topology.Graph.node;
  rc : Topology.Graph.node;
  p1 : Topology.Graph.node;
  p2 : Topology.Graph.node;
  p3 : Topology.Graph.node;
  p4 : Topology.Graph.node;
}

(* Node ids, fixed so tests can pin paths deterministically. *)
let lmk = 0
let ra = 1
let rb = 2
let rc = 3
let r1 = 4
let r2 = 5
let r3 = 6
let r4 = 7
let r5 = 8
let r6 = 9
let r7 = 10
let r8 = 11
let p1 = 12
let p2 = 13
let p3 = 14
let p4 = 15

let edges =
  [
    (* Landmark hangs off core router ra. *)
    (lmk, ra);
    (* The meshed core. *)
    (ra, rb);
    (ra, rc);
    (rb, rc);
    (* p1's access chain to the core: p1 - r1 - r2 - rc. *)
    (p1, r1);
    (r1, r2);
    (r2, rc);
    (* p2's access chain: p2 - r3 - r4 - rc. *)
    (p2, r3);
    (r3, r4);
    (r4, rc);
    (* The stub cross link that makes d(p1,p2) < dtree(p1,p2). *)
    (r1, r3);
    (* p3 and p4 in other regions. *)
    (p3, r5);
    (r5, rb);
    (p4, r6);
    (r6, r7);
    (r7, ra);
    (* A spare stub router. *)
    (r8, rb);
  ]

let build () =
  { graph = Topology.Graph.of_edges ~node_count:16 edges; lmk; ra; rb; rc; p1; p2; p3; p4 }

let peer_attach_routers t = [| t.p1; t.p2; t.p3; t.p4 |]

let names =
  [| "lmk"; "ra"; "rb"; "rc"; "r1"; "r2"; "r3"; "r4"; "r5"; "r6"; "r7"; "r8"; "p1"; "p2"; "p3"; "p4" |]

let name_of _ v = if v >= 0 && v < Array.length names then names.(v) else string_of_int v
