type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  strategies : Traceroute.Truncate.strategy list;
  seeds : int list;
}

let standard_strategies =
  Traceroute.Truncate.[ Full; Every_k 2; Every_k 4; Last_k 4; Last_k 2; First_k 4; Min_degree 4 ]

let default_config =
  {
    routers = 2000;
    peers = 800;
    landmark_count = 8;
    k = 5;
    strategies = standard_strategies;
    seeds = [ 1; 2 ];
  }

let quick_config =
  {
    routers = 800;
    peers = 200;
    landmark_count = 8;
    k = 5;
    strategies = Traceroute.Truncate.[ Full; Every_k 2; Last_k 4; First_k 4 ];
    seeds = [ 1 ];
  }

type row = {
  strategy : Traceroute.Truncate.strategy;
  ratio : float;
  hit_ratio : float;
  mean_probes_per_join : float;
}

let run config =
  List.map
    (fun strategy ->
      let ratio = Prelude.Stats.create () in
      let hit = Prelude.Stats.create () in
      let probes = Prelude.Stats.create () in
      List.iter
        (fun seed ->
          let w =
            Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
              ~peers:config.peers ~seed ()
          in
          let server = Nearby.Server.create ~truncate:strategy w.ctx.oracle ~landmarks:w.landmarks in
          let n = Array.length w.peer_routers in
          let join_rng = Prelude.Prng.split w.rng in
          for peer = 0 to n - 1 do
            let info = Nearby.Server.join ~rng:join_rng server ~peer ~attach_router:w.peer_routers.(peer) in
            Prelude.Stats.add probes (float_of_int info.probes_spent)
          done;
          let sets =
            Array.init n (fun peer ->
                Nearby.Server.neighbors server ~peer ~k:config.k |> List.map fst |> Array.of_list)
          in
          let outcome = Measure.score w.ctx ~k:config.k ~named_sets:[ ("t", sets) ] in
          match outcome.scored with
          | [ s ] ->
              Prelude.Stats.add ratio s.ratio;
              Prelude.Stats.add hit s.hit_ratio
          | _ -> assert false)
        config.seeds;
      {
        strategy;
        ratio = Prelude.Stats.mean ratio;
        hit_ratio = Prelude.Stats.mean hit;
        mean_probes_per_join = Prelude.Stats.mean probes;
      })
    config.strategies

let print rows =
  print_endline "E4: decreased traceroute - quality vs probe cost";
  Prelude.Table.print
    ~header:[ "strategy"; "D/Dclosest"; "hit-ratio"; "probes/join" ]
    (List.map
       (fun r ->
         [
           Traceroute.Truncate.describe r.strategy;
           Prelude.Table.float_cell r.ratio;
           Prelude.Table.float_cell r.hit_ratio;
           Prelude.Table.float_cell ~decimals:1 r.mean_probes_per_join;
         ])
       rows)
