(** Extension E3: churn, faulty peers and handover.

    Sessions arrive Poisson and last a (heavy-tailed or exponential) random
    time; a departure is a graceful leave, a silent crash (deregistered only
    after a detection delay, polluting replies in the meantime), or a
    mobility handover (immediate re-join at a new attachment router).  At
    periodic checkpoints the experiment freezes the live population and
    scores the server's answers for every live peer. *)

type detection =
  | Fixed_delay of float
      (** Crashes deregistered after a fixed delay (a detector abstracted
          away). *)
  | Heartbeat of Simkit.Failure_detector.config
      (** The real mechanism: watched peers heartbeat a monitor over the
          simulated network; suspicion triggers deregistration.  Detection
          delay becomes emergent (timeout + network), and heartbeats cost
          messages. *)

type config = {
  routers : int;
  landmark_count : int;
  k : int;
  spec : Simkit.Churn.spec;
  detection : detection;
  checkpoints : int;  (** Evenly spaced over the horizon. *)
  seed : int;
}

val default_config : config
val quick_config : config

type checkpoint = {
  time_ms : float;
  live_peers : int;
  ratio : float;  (** D/Dclosest over the live population; [nan] when under 2 live peers. *)
  stale_fraction : float;
      (** Fraction of returned neighbors that were dead (crashed,
          undetected) at query time. *)
  handovers_so_far : int;
  crashes_so_far : int;
  heartbeat_messages : int;  (** 0 in [Fixed_delay] mode. *)
}

val run : config -> checkpoint list
val print : checkpoint list -> unit
