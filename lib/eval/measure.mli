(** Shared, BFS-amortized scoring of neighbor sets.

    Every experiment compares several selectors on the same peer population;
    scoring all of them in one pass costs a single BFS per peer instead of
    one per (peer, selector). *)

type scored = {
  name : string;
  total_d : int;  (** Sum over peers of the hop-distance sum to the set. *)
  ratio : float;  (** [total_d / total_d_closest]. *)
  hit_ratio : float;  (** Mean per-peer overlap with the optimal set. *)
}

type outcome = {
  total_d_closest : int;
  optimal_sets : int array array;
  scored : scored list;  (** Input order. *)
}

val score :
  Nearby.Selector.context -> k:int -> named_sets:(string * int array array) list -> outcome
(** [score ctx ~k ~named_sets] computes the brute-force optimal sets
    ([Dclosest]) and scores every named selector against them.
    Unreachable chosen neighbors cost [max_int / 4] hops each.
    @raise Invalid_argument when a set array's length differs from the peer
    population. *)
