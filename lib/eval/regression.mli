(** Bench regression gate: BENCH_*.json vs committed baselines.

    Extracts machine-robust metrics from the three bench artifacts —
    timing normalized to the tree backend measured in the same run,
    deterministic simulated-time resilience numbers near-exact, booleans
    exact — and compares a current document against a baseline.  A metric
    present in the baseline but missing from the current document fails.
    Driven by [bench/main.exe -- regress]; wired as a CI job. *)

type direction =
  | Higher_better  (** Fails when current < baseline × (1 − tolerance). *)
  | Lower_better  (** Fails when current > baseline × (1 + tolerance). *)
  | Exact

type metric = { name : string; value : float; direction : direction; tolerance : float }

type comparison = {
  name : string;
  baseline : float;
  current : float option;  (** [None]: the metric disappeared — a failure. *)
  ok : bool;
}

val registry_metrics : Simkit.Json.t -> metric list
(** From BENCH_registry.json: per-backend insert/query throughput relative
    to tree (tolerance 0.6) and the answers-identical invariant (exact).
    @raise Failure on a malformed document. *)

val obs_metrics : Simkit.Json.t -> metric list
(** From BENCH_obs.json: per-backend insert/query p99 relative to tree
    (tolerance 1.5 — tails are noisy).  @raise Failure when malformed. *)

val resilience_metrics : Simkit.Json.t -> metric list
(** From BENCH_resilience.json: per scenario × replica-count completion
    rate (0.02), join p99 in simulated ms (0.15) and the consistency bit
    (exact).  @raise Failure when malformed. *)

val load_metrics : Simkit.Json.t -> metric list
(** From BENCH_load.json: per arrival × policy completion rate (0.02),
    admitted-join p99 in simulated ms (0.15), goodput (0.1), shed
    fraction (0.2), and the headline bits exact — [p99_within_budget]
    (the SLO shedder holds the budget at 2x saturation, drop-tail does
    not) and sheds-iff-saturated.  @raise Failure when malformed. *)

val wire_metrics : Simkit.Json.t -> metric list
(** From BENCH_wire.json: bytes/join and bytes/query (0.1 — deterministic
    simulated byte counts), snapshot repair bytes per join (0.5), the
    batching saving ratio (0.05), and the structural bits exact —
    accounting reconciles ([accounted]), replication amplification equals
    the committed value, batching saves upload bytes.
    @raise Failure when malformed. *)

val health_metrics : Simkit.Json.t -> metric list
(** From BENCH_health.json: completion rate (0.02), divergence detection
    latency and anti-entropy lag p50 (0.5 — poll-period quantized), report
    age p50 (0.25), and the structural bits exact — the loss burst causes
    at least one detected divergence episode, every episode closes, the
    run reconverges, and the digest gate saves at least one snapshot
    transfer.  @raise Failure when malformed. *)

val compare_metrics : baseline:metric list -> current:metric list -> comparison list
(** One comparison per baseline metric; thresholds come from the baseline
    side. *)

val failures : comparison list -> comparison list
val print : comparison list -> unit
