(** Graph-oriented analysis of the inference quality (paper §3's closing
    wish: "a formal proof based on a graph-oriented analysis").

    For random peer pairs we compare the inferred distance
    [dtree(p1, p2)] (meeting point on the shared closest-landmark sink
    tree) against the true hop distance [d(p1, p2)], as a function of the
    landmark count:

    - the fraction of pairs whose closest landmarks coincide (only those
      have a same-tree estimate at all),
    - the fraction of estimable pairs with an exact estimate ([dtree = d]),
    - mean and tail stretch [dtree / d].

    The paper's premise predicts stretch concentrates near 1 because routes
    meet in the heavy-tailed core. *)

type config = {
  routers : int;
  landmark_counts : int list;
  pairs : int;  (** Random peer pairs sampled per landmark count. *)
  seed : int;
}

val default_config : config
val quick_config : config

type row = {
  landmarks : int;
  same_landmark_fraction : float;
  exact_fraction : float;  (** Among estimable pairs. *)
  mean_stretch : float;
  p95_stretch : float;
}

val run : config -> row list
val print : row list -> unit
