(** Robustness to policy routing (path inflation).

    The paper's reasoning assumes forwarding follows shortest paths; real
    BGP routing inflates paths.  We rebuild the route oracle with
    deterministic per-(link, destination) weight noise ([1 + inflation *
    u]), so recorded traceroutes deviate from hop-shortest while staying
    destination-consistent, and measure what that does to discovery
    quality — the ground truth ([Dclosest]) stays hop-shortest, as peers
    actually experience it. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  inflations : float list;
  seed : int;
}

val default_config : config
val quick_config : config

type row = {
  inflation : float;
  route_stretch : float;  (** Mean recorded-route length / hop-shortest distance. *)
  route_divergence : float;
      (** Fraction of sampled peers whose recorded route differs from the
          hop-shortest one (on access-tree maps deviations are mostly
          equal-length core detours, so this moves long before stretch
          does). *)
  ratio_proposed : float;
  ratio_random : float;
  hit_proposed : float;
}

val run : config -> row list
val print : row list -> unit
