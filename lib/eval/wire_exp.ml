(* The bytes-on-wire experiment: how much traffic the protocol actually
   moves, broken down by message kind, and what replication and batching
   do to it.

   Two phases over the same workload (same seed, same router map, same
   peer arrival order):

   - singleton: every peer joins through its own resilient RPC, with a
     loss burst over part of the arrival window so the retry, dropped and
     anti-entropy snapshot byte buckets are all nonzero in one run;
   - batched: the same peers join through [Protocol.join_many] in chunks,
     lossless, isolating what [Wire.Path_report_batch] saves on client
     upload bytes.

   Everything is read back from the transport's labeled wire accounting
   ([wire_bytes_total{kind,dir}] etc.), and the run re-checks the two
   conservation invariants the accounting promises: per-kind bytes sum to
   [Transport.bytes_sent], per-reason dropped bytes sum to
   [Transport.bytes_dropped].  Deterministic in the seed. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  replicas : int;
  batch : int;
  loss : float;
  arrival_window_ms : float;
  sync_period_ms : float;
  rpc : Simkit.Rpc.config;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    peers = 10_000;
    landmark_count = 8;
    k = 5;
    replicas = 3;
    batch = 256;
    loss = 0.3;
    arrival_window_ms = 20_000.0;
    sync_period_ms = 2_000.0;
    rpc = Simkit.Rpc.default_config;
    seed = 1;
  }

let quick_config =
  { default_config with routers = 800; peers = 1_500; arrival_window_ms = 8_000.0 }

type kind_row = { kind : string; bytes : int; msgs : int }

type result = {
  joins : int;
  completed : int;
  failed : int;
  completion_rate : float;
  bytes_sent : int;
  bytes_dropped : int;
  messages : int;
  bytes_per_join : float;
  bytes_per_query : float;
  replication_amplification : float;
  snapshot_bytes : int;
  retry_bytes : int;
  fd_probe_bytes : int;
  dropped_loss_bytes : int;
  dropped_unreachable_bytes : int;
  dropped_partition_bytes : int;
  kinds : kind_row list;
  top_talkers : Simkit.Transport.talker list;
  singleton_report_bytes : int;
  batch_joins : int;
  batch_completed : int;
  batch_report_bytes : int;
  batch_saving_ratio : float;
  batch_bytes_per_join : float;
  accounted : bool;
}

(* --- Reading the labeled registry back ---------------------------------- *)

let label labels key = match List.assoc_opt key labels with Some v -> v | None -> ""

let sum_counters metrics name ~where =
  List.fold_left
    (fun acc (n, labels, _) ->
      if n = name && where labels then acc + Simkit.Metrics.counter metrics name ~labels
      else acc)
    0
    (Simkit.Metrics.series metrics)

let kind_bytes metrics kind =
  sum_counters metrics "wire_bytes_total" ~where:(fun l -> label l "kind" = kind)

let dir_bytes metrics dirs =
  sum_counters metrics "wire_bytes_total" ~where:(fun l -> List.mem (label l "dir") dirs)

(* Per-kind (bytes, msgs) summed over directions, largest first. *)
let kind_rows metrics =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (n, labels, _) ->
      if n = "wire_bytes_total" then begin
        let kind = label labels "kind" in
        let bytes = Simkit.Metrics.counter metrics "wire_bytes_total" ~labels in
        let msgs = Simkit.Metrics.counter metrics "wire_msgs_total" ~labels in
        let b0, m0 = Option.value (Hashtbl.find_opt tbl kind) ~default:(0, 0) in
        Hashtbl.replace tbl kind (b0 + bytes, m0 + msgs)
      end)
    (Simkit.Metrics.series metrics);
  Hashtbl.fold (fun kind (bytes, msgs) acc -> { kind; bytes; msgs } :: acc) tbl []
  |> List.sort (fun a b -> compare (b.bytes, a.kind) (a.bytes, b.kind))

(* The conservation invariants: every delivered byte carries exactly one
   kind label, every dropped byte exactly one reason label. *)
let reconciled metrics transport =
  sum_counters metrics "wire_bytes_total" ~where:(fun _ -> true)
  = Simkit.Transport.bytes_sent transport
  && sum_counters metrics "wire_dropped_bytes_total" ~where:(fun _ -> true)
     = Simkit.Transport.bytes_dropped transport

(* --- One phase ---------------------------------------------------------- *)

type phase = {
  p_completed : int;
  p_failed : int;
  p_metrics : Simkit.Metrics.t;
  p_transport : Simkit.Transport.t;
  p_cluster : Nearby.Cluster.t;
}

let worst_rpc_ms (c : Simkit.Rpc.config) =
  let backoffs = ref 0.0 in
  for a = 1 to c.max_attempts - 1 do
    backoffs :=
      !backoffs
      +. (c.backoff_base_ms *. (c.backoff_multiplier ** float_of_int (a - 1)) *. (1.0 +. c.jitter_frac))
  done;
  (float_of_int c.max_attempts *. c.timeout_ms) +. !backoffs

let run_phase (config : config) ~batched =
  let w =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
      ~peers:config.peers ~seed:config.seed ()
  in
  let engine = Simkit.Engine.create () in
  let metrics = Simkit.Metrics.create () in
  let transport =
    Simkit.Transport.create ~rng:(Prelude.Prng.split w.rng) ~metrics engine w.ctx.oracle
  in
  let replica_routers =
    Nearby.Landmark.place (Workload.graph w) Medium_degree ~count:config.replicas
      ~rng:(Prelude.Prng.split w.rng)
  in
  let client_router = w.map.core.(0) in
  let cluster =
    Nearby.Cluster.create ~metrics ~transport ~client_router
      ~make_server:(fun () ->
        Nearby.Server.create ?latency:w.ctx.latency w.ctx.oracle ~landmarks:w.landmarks)
      ~restore_server:(fun data ->
        Nearby.Server.restore ?latency:w.ctx.latency w.ctx.oracle data)
      ~routers:replica_routers ()
  in
  let rpc = Simkit.Rpc.create ~config:config.rpc ~rng:(Prelude.Prng.split w.rng) transport in
  let protocol = Nearby.Protocol.create_resilient ?latency:w.ctx.latency ~rpc cluster in
  (* Loss burst in the singleton phase only: lost fan-outs and replies
     force retries and anti-entropy snapshot repair, so the retry,
     dropped and snapshot buckets are all exercised by one scenario.  The
     batched phase stays lossless — it isolates the batching saving. *)
  if (not batched) && config.loss > 0.0 then begin
    let aw = config.arrival_window_ms in
    Simkit.Engine.schedule_at engine ~time:(0.25 *. aw) (fun () ->
        Simkit.Transport.set_loss_prob transport config.loss);
    Simkit.Engine.schedule_at engine ~time:(0.6 *. aw) (fun () ->
        Simkit.Transport.set_loss_prob transport 0.0)
  end;
  let horizon =
    config.arrival_window_ms +. worst_rpc_ms config.rpc +. (3.0 *. config.sync_period_ms)
    +. 1_000.0
  in
  Nearby.Cluster.start_sync cluster ~period_ms:config.sync_period_ms ~until:horizon;
  let completed = ref 0 and failed = ref 0 in
  if batched then begin
    let chunk = max 1 config.batch in
    let n_chunks = (config.peers + chunk - 1) / chunk in
    let spacing = config.arrival_window_ms /. float_of_int (max 1 n_chunks) in
    let rec schedule_chunks at i =
      if i < config.peers then begin
        let len = min chunk (config.peers - i) in
        let entries = Array.init len (fun j -> (i + j, w.peer_routers.(i + j))) in
        Simkit.Engine.schedule_at engine ~time:at (fun () ->
            Nearby.Protocol.join_many protocol ~entries ~k:config.k
              ~on_complete:(fun _peer _info _reply -> incr completed)
              ~on_failure:(fun () -> failed := !failed + len));
        schedule_chunks (at +. spacing) (i + len)
      end
    in
    schedule_chunks 0.0 0
  end
  else
    for peer = 0 to config.peers - 1 do
      let at = Prelude.Prng.float w.rng config.arrival_window_ms in
      Simkit.Engine.schedule_at engine ~time:at (fun () ->
          Nearby.Protocol.join protocol ~peer ~attach_router:w.peer_routers.(peer)
            ~k:config.k
            ~on_complete:(fun _info _reply -> incr completed)
            ~on_failure:(fun () -> incr failed))
    done;
  Simkit.Engine.run engine ~until:horizon;
  Nearby.Cluster.sync_round cluster;
  Nearby.Cluster.check_invariants cluster;
  {
    p_completed = !completed;
    p_failed = !failed;
    p_metrics = metrics;
    p_transport = transport;
    p_cluster = cluster;
  }

let run (config : config) =
  if config.replicas < 1 then invalid_arg "Wire_exp: replicas must be >= 1";
  if config.loss < 0.0 || config.loss >= 1.0 then invalid_arg "Wire_exp: loss outside [0, 1)";
  if config.batch < 1 then invalid_arg "Wire_exp: batch must be >= 1";
  let s = run_phase config ~batched:false in
  let b = run_phase config ~batched:true in
  let m = s.p_metrics and tr = s.p_transport in
  let per v n = if n = 0 then Float.nan else float_of_int v /. float_of_int n in
  let singleton_report_bytes =
    Simkit.Trace.counter (Nearby.Cluster.trace s.p_cluster) "cluster_client_report_bytes"
  in
  let batch_report_bytes =
    Simkit.Trace.counter (Nearby.Cluster.trace b.p_cluster) "cluster_client_report_bytes"
  in
  {
    joins = config.peers;
    completed = s.p_completed;
    failed = s.p_failed;
    completion_rate = per s.p_completed config.peers;
    bytes_sent = Simkit.Transport.bytes_sent tr;
    bytes_dropped = Simkit.Transport.bytes_dropped tr;
    messages = Simkit.Transport.messages_sent tr;
    (* Client-facing wire cost of a join: the request and reply legs —
       reports, queries, replies and every retried attempt — divided by
       the joins that completed.  Replica fan-out is the amplification
       number, not the per-join client cost. *)
    bytes_per_join = per (dir_bytes m [ "request"; "reply" ]) s.p_completed;
    bytes_per_query = per (kind_bytes m "query" + kind_bytes m "reply") s.p_completed;
    replication_amplification = Nearby.Cluster.replication_amplification s.p_cluster;
    snapshot_bytes = kind_bytes m "snapshot";
    retry_bytes = kind_bytes m "retry";
    fd_probe_bytes = kind_bytes m "fd_probe";
    dropped_loss_bytes = Simkit.Transport.dropped_loss_bytes tr;
    dropped_unreachable_bytes = Simkit.Transport.dropped_unreachable_bytes tr;
    dropped_partition_bytes = Simkit.Transport.dropped_partition_bytes tr;
    kinds = kind_rows m;
    top_talkers = Simkit.Transport.top_talkers tr ~k:5;
    singleton_report_bytes;
    batch_joins = config.peers;
    batch_completed = b.p_completed;
    batch_report_bytes;
    batch_saving_ratio = float_of_int singleton_report_bytes /. float_of_int (max 1 batch_report_bytes);
    batch_bytes_per_join =
      per (dir_bytes b.p_metrics [ "request"; "reply" ]) b.p_completed;
    accounted = reconciled m tr && reconciled b.p_metrics b.p_transport;
  }

(* --- Rendering ---------------------------------------------------------- *)

let result_json (r : result) =
  let fl v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let kind_json (k : kind_row) =
    Printf.sprintf {|{"kind": %s, "bytes": %d, "msgs": %d}|} (Simkit.Json_str.quote k.kind)
      k.bytes k.msgs
  in
  let talker_json (t : Simkit.Transport.talker) =
    Printf.sprintf {|{"node": %d, "sent_bytes": %d, "recv_bytes": %d, "sent_msgs": %d, "recv_msgs": %d}|}
      t.node t.sent_bytes t.recv_bytes t.sent_msgs t.recv_msgs
  in
  Printf.sprintf
    {|{"joins": %d, "completed": %d, "failed": %d, "completion_rate": %.4f, "bytes_sent": %d, "bytes_dropped": %d, "messages": %d, "bytes_per_join": %s, "bytes_per_query": %s, "replication_amplification": %s, "snapshot_bytes": %d, "retry_bytes": %d, "fd_probe_bytes": %d, "dropped_loss_bytes": %d, "dropped_unreachable_bytes": %d, "dropped_partition_bytes": %d, "kinds": [%s], "top_talkers": [%s], "singleton_report_bytes": %d, "batch_joins": %d, "batch_completed": %d, "batch_report_bytes": %d, "batch_saving_ratio": %s, "batch_bytes_per_join": %s, "accounted": %b}|}
    r.joins r.completed r.failed r.completion_rate r.bytes_sent r.bytes_dropped r.messages
    (fl r.bytes_per_join) (fl r.bytes_per_query)
    (fl r.replication_amplification)
    r.snapshot_bytes r.retry_bytes r.fd_probe_bytes r.dropped_loss_bytes
    r.dropped_unreachable_bytes r.dropped_partition_bytes
    (String.concat ", " (List.map kind_json r.kinds))
    (String.concat ", " (List.map talker_json r.top_talkers))
    r.singleton_report_bytes r.batch_joins r.batch_completed r.batch_report_bytes
    (fl r.batch_saving_ratio) (fl r.batch_bytes_per_join) r.accounted

let print (r : result) =
  Printf.printf "Wire: joins=%d completed=%d accounted=%b\n" r.joins r.completed r.accounted;
  Prelude.Table.print
    ~header:[ "metric"; "value" ]
    [
      [ "bytes sent"; string_of_int r.bytes_sent ];
      [ "bytes dropped"; string_of_int r.bytes_dropped ];
      [ "messages"; string_of_int r.messages ];
      [ "bytes/join"; Prelude.Table.float_cell ~decimals:1 r.bytes_per_join ];
      [ "bytes/query"; Prelude.Table.float_cell ~decimals:1 r.bytes_per_query ];
      [
        "replication amplification";
        Prelude.Table.float_cell ~decimals:2 r.replication_amplification;
      ];
      [ "snapshot bytes"; string_of_int r.snapshot_bytes ];
      [ "retry bytes"; string_of_int r.retry_bytes ];
      [ "fd probe bytes"; string_of_int r.fd_probe_bytes ];
      [ "dropped (loss) bytes"; string_of_int r.dropped_loss_bytes ];
      [ "dropped (unreachable) bytes"; string_of_int r.dropped_unreachable_bytes ];
      [ "dropped (partition) bytes"; string_of_int r.dropped_partition_bytes ];
      [ "singleton report bytes"; string_of_int r.singleton_report_bytes ];
      [ "batch report bytes"; string_of_int r.batch_report_bytes ];
      [ "batch saving"; Prelude.Table.float_cell ~decimals:2 r.batch_saving_ratio ];
      [ "batch bytes/join"; Prelude.Table.float_cell ~decimals:1 r.batch_bytes_per_join ];
    ];
  Printf.printf "per-kind bytes (both directions):\n";
  Prelude.Table.print
    ~header:[ "kind"; "bytes"; "msgs" ]
    (List.map
       (fun (k : kind_row) -> [ k.kind; string_of_int k.bytes; string_of_int k.msgs ])
       r.kinds);
  Printf.printf "top talkers:\n";
  Prelude.Table.print
    ~header:[ "node"; "sent"; "recv" ]
    (List.map
       (fun (t : Simkit.Transport.talker) ->
         [ string_of_int t.node; string_of_int t.sent_bytes; string_of_int t.recv_bytes ])
       r.top_talkers)
