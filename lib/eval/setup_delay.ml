type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  vivaldi_rounds : int list;
  round_period_ms : float;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    peers = 400;
    landmark_count = 8;
    k = 5;
    vivaldi_rounds = [ 1; 2; 5; 10; 20; 50 ];
    round_period_ms = 250.0;
    seed = 1;
  }

let quick_config =
  { default_config with routers = 800; peers = 150; vivaldi_rounds = [ 1; 5; 20 ] }

type row = { method_name : string; setup_ms : float; ratio : float; hit_ratio : float }

let run config =
  let w =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
      ~latency:(Topology.Latency.Core_weighted { core_ms = 2.0; edge_ms = 15.0; threshold = 8 })
      ~peers:config.peers ~seed:config.seed ()
  in
  let rng = w.rng in
  let k = config.k in
  (* Proposed: quality from the server, time from the protocol model. *)
  let proposed_sets =
    Nearby.Selector.select w.ctx
      (Proposed { landmarks = w.landmarks; truncate = Traceroute.Truncate.Full })
      ~k ~rng
  in
  let engine = Simkit.Engine.create () in
  let server = Nearby.Server.create ?latency:w.ctx.latency w.ctx.oracle ~landmarks:w.landmarks in
  let server_router = w.landmarks.(0) in
  let protocol = Nearby.Protocol.create ?latency:w.ctx.latency ~engine ~server_router server in
  let proposed_delay = Prelude.Stats.create () in
  Array.iter
    (fun router ->
      Prelude.Stats.add proposed_delay (Nearby.Protocol.estimate_join_delay protocol ~attach_router:router))
    w.peer_routers;
  (* GNP: landmark pings in parallel; the host-side minimization is local. *)
  let gnp_sets =
    Nearby.Selector.select w.ctx (Gnp_landmarks { landmarks = w.landmarks; dims = 3 }) ~k ~rng
  in
  let gnp_delay = Prelude.Stats.create () in
  Array.iter
    (fun router ->
      let worst =
        Array.fold_left
          (fun acc lmk ->
            Float.max acc (Traceroute.Probe.ping ?latency:w.ctx.latency w.ctx.oracle ~src:router ~dst:lmk))
          0.0 w.landmarks
      in
      Prelude.Stats.add gnp_delay worst)
    w.peer_routers;
  (* Meridian: one ring-walk search per newcomer; ring maintenance is
     steady-state warm-up, not charged to the join. *)
  let meridian_overlay =
    Coord.Meridian.build ?latency:w.ctx.latency Coord.Meridian.default_params w.ctx.oracle
      ~peer_routers:w.peer_routers ~rng:(Prelude.Prng.split rng)
  in
  let meridian_delay = Prelude.Stats.create () in
  let n_peers = Array.length w.peer_routers in
  let meridian_sets =
    Array.init n_peers (fun i ->
        let entry =
          let e = Prelude.Prng.int rng (n_peers - 1) in
          if e >= i then e + 1 else e
        in
        let search =
          Coord.Meridian.closest_search ~exclude:(fun p -> p = i) meridian_overlay
            ~target_router:w.peer_routers.(i) ~entry
        in
        Prelude.Stats.add meridian_delay search.elapsed_ms;
        Coord.Meridian.k_nearest ~exclude:(fun p -> p = i) meridian_overlay
          ~target_router:w.peer_routers.(i) ~entry ~k
        |> Array.of_list)
  in
  (* Vivaldi at increasing round counts. *)
  let vivaldi_rows =
    List.map
      (fun rounds ->
        let sets =
          Nearby.Selector.select w.ctx
            (Vivaldi_rounds { rounds; params = Coord.Vivaldi.default_params })
            ~k ~rng
        in
        (rounds, sets))
      config.vivaldi_rounds
  in
  let named =
    ("proposed", proposed_sets) :: ("gnp", gnp_sets) :: ("meridian", meridian_sets)
    :: List.map (fun (r, sets) -> (Printf.sprintf "vivaldi-%dr" r, sets)) vivaldi_rows
  in
  let outcome = Measure.score w.ctx ~k ~named_sets:named in
  let setup_of name =
    if name = "proposed" then Prelude.Stats.mean proposed_delay
    else if name = "gnp" then Prelude.Stats.mean gnp_delay
    else if name = "meridian" then Prelude.Stats.mean meridian_delay
    else
      Scanf.sscanf name "vivaldi-%dr" (fun r ->
          Nearby.Protocol.vivaldi_setup_delay ~rounds:r ~round_period_ms:config.round_period_ms)
  in
  List.map
    (fun (s : Measure.scored) ->
      { method_name = s.name; setup_ms = setup_of s.name; ratio = s.ratio; hit_ratio = s.hit_ratio })
    outcome.scored

let print rows =
  print_endline "E5: setup delay vs neighbor quality (latency-weighted map)";
  Prelude.Table.print
    ~header:[ "method"; "setup (ms)"; "D/Dclosest"; "hit-ratio" ]
    (List.map
       (fun r ->
         [
           r.method_name;
           Prelude.Table.float_cell ~decimals:0 r.setup_ms;
           Prelude.Table.float_cell r.ratio;
           Prelude.Table.float_cell r.hit_ratio;
         ])
       rows);
  print_newline ();
  print_string
    (Prelude.Ascii_plot.render
       [
         {
           Prelude.Ascii_plot.label = "quality ratio vs setup ms (all methods)";
           points = List.map (fun r -> (r.setup_ms, r.ratio)) rows;
         };
       ])
