type config = {
  routers : int;
  initial_peers : int;
  newcomers : int;
  k : int;
  vivaldi_rounds : int;
  round_period_ms : float;
  arrival_window_ms : float * float;
  session : Streaming.Session.params;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    initial_peers = 200;
    newcomers = 60;
    k = 4;
    vivaldi_rounds = 15;
    round_period_ms = 250.0;
    arrival_window_ms = (10_000.0, 30_000.0);
    session = { Streaming.Session.default_params with duration_ms = 60_000.0 };
    seed = 1;
  }

let quick_config =
  {
    default_config with
    routers = 800;
    initial_peers = 80;
    newcomers = 25;
    session = { Streaming.Session.default_params with duration_ms = 40_000.0 };
  }

type row = {
  method_name : string;
  mean_discovery_ms : float;
  mean_buffering_ms : float;
  mean_time_to_play_ms : float;
  started_fraction : float;
  mean_neighbor_hops : float;
}

type method_spec =
  | Proposed_discovery
  | Proposed_established
      (** Same reply, filtered to peers that were already streaming —
          avoids herding newcomers onto each other's empty buffers. *)
  | Random_discovery
  | Ideal_coords  (** Perfect proximity after the convergence delay. *)

let method_name = function
  | Proposed_discovery -> "proposed"
  | Proposed_established -> "proposed (established)"
  | Random_discovery -> "random (instant)"
  | Ideal_coords -> "ideal-coords (delayed)"

let run_method config (w : Workload.t) spec =
  let latency = w.ctx.latency in
  let engine = Simkit.Engine.create () in
  let session =
    Streaming.Session.create ~params:config.session ?latency ~engine ~graph:w.ctx.graph
      ~source_router:w.landmarks.(0) ~seed:(config.seed + 7) ()
  in
  let server = Nearby.Server.create ?latency w.ctx.oracle ~landmarks:w.landmarks in
  let protocol =
    Nearby.Protocol.create ?latency ~engine ~server_router:w.landmarks.(0) server
  in
  let rng = Prelude.Prng.create (config.seed + 11) in
  let n0 = config.initial_peers in
  (* Bootstrap swarm: proposed+1rand mesh (connected and local), and the
     server already knows everyone. *)
  let boot_ctx : Nearby.Selector.context =
    {
      graph = w.ctx.graph;
      oracle = w.ctx.oracle;
      latency;
      peer_routers = Array.sub w.peer_routers 0 n0;
    }
  in
  let boot_sets =
    Nearby.Selector.select boot_ctx
      (Hybrid
         {
           primary = Proposed { landmarks = w.landmarks; truncate = Traceroute.Truncate.Full };
           random_links = 1;
         })
      ~k:config.k ~rng
  in
  for i = 0 to n0 - 1 do
    let id = Streaming.Session.add_peer session ~router:w.peer_routers.(i) ~neighbors:[] in
    assert (id = i);
    ignore (Nearby.Server.join server ~peer:i ~attach_router:w.peer_routers.(i))
  done;
  (* Install the bootstrap mesh (ids = indices). *)
  Array.iteri
    (fun i set -> Array.iter (fun q -> Streaming.Session.link session i q) set)
    boot_sets;
  let discovery = Prelude.Stats.create () in
  let hop_stats = Prelude.Stats.create () in
  let attach_times : (int, float) Hashtbl.t = Hashtbl.create 64 in
  (* Workload peer -> session id (identity for the bootstrap population;
     newcomers attach in completion order, which differs from arrival
     order), and session id -> router for proximity scoring. *)
  let sid_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let router_of_sid : (int, Topology.Graph.node) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to n0 - 1 do
    Hashtbl.replace sid_of i i;
    Hashtbl.replace router_of_sid i w.peer_routers.(i)
  done;
  let lo, hi = config.arrival_window_ms in
  let arrivals =
    Array.init config.newcomers (fun j ->
        (n0 + j, lo +. (Prelude.Prng.float rng (hi -. lo))))
  in
  Array.iter
    (fun (peer, arrival) ->
      Simkit.Engine.schedule_at engine ~time:arrival (fun () ->
          let router = w.peer_routers.(peer) in
          (* [neighbors] are SESSION ids. *)
          let attach_with neighbors =
            let now = Simkit.Engine.now engine in
            Hashtbl.replace attach_times peer now;
            Prelude.Stats.add discovery (now -. arrival);
            List.iter
              (fun q ->
                match Hashtbl.find_opt router_of_sid q with
                | Some r ->
                    let hops = Topology.Bfs.distance w.ctx.graph router r in
                    if hops <> max_int then Prelude.Stats.add hop_stats (float_of_int hops)
                | None -> ())
              neighbors;
            let sid = Streaming.Session.add_peer session ~router ~neighbors in
            Hashtbl.replace sid_of peer sid;
            Hashtbl.replace router_of_sid sid router
          in
          (* Translate server-side peer ids into session ids, dropping
             peers that have not attached yet. *)
          let to_sids server_ids = List.filter_map (Hashtbl.find_opt sid_of) server_ids in
          match spec with
          | Proposed_discovery ->
              Nearby.Protocol.join protocol ~peer ~attach_router:router ~k:config.k
                ~on_complete:(fun _info reply ->
                  let neighbors = to_sids (List.map fst reply) in
                  (* One random link for swarm connectivity, as deployments do. *)
                  let extra = Prelude.Prng.int rng (Streaming.Session.peer_count session) in
                  attach_with (extra :: neighbors))
          | Proposed_established ->
              (* Ask for extra candidates, keep the closest established
                 ones: the herd-avoidance policy a server that tracks
                 registration age would implement. *)
              Nearby.Protocol.join protocol ~peer ~attach_router:router ~k:(3 * config.k)
                ~on_complete:(fun _info reply ->
                  let established =
                    reply |> List.map fst
                    |> List.filter (fun q -> q < n0)
                    |> List.filteri (fun i _ -> i < config.k)
                  in
                  let neighbors = to_sids established in
                  let extra = Prelude.Prng.int rng (Streaming.Session.peer_count session) in
                  attach_with (extra :: neighbors))
          | Random_discovery ->
              let current = Streaming.Session.peer_count session in
              let picks =
                Prelude.Prng.sample_without_replacement rng ~k:(min (config.k + 1) current)
                  ~n:current
              in
              ignore (Nearby.Server.join server ~peer ~attach_router:router);
              attach_with (Array.to_list picks)
          | Ideal_coords ->
              let delay =
                Nearby.Protocol.vivaldi_setup_delay ~rounds:config.vivaldi_rounds
                  ~round_period_ms:config.round_period_ms
              in
              Simkit.Engine.schedule engine ~delay (fun () ->
                  ignore (Nearby.Server.join server ~peer ~attach_router:router);
                  (* Perfect proximity: the true closest current peers. *)
                  let dist = Topology.Bfs.distances w.ctx.graph router in
                  let current = Streaming.Session.peer_count session in
                  let ids = Array.init current (fun q -> q) in
                  let router_of q = Option.value ~default:router (Hashtbl.find_opt router_of_sid q) in
                  Array.sort
                    (fun a b -> compare (dist.(router_of a), a) (dist.(router_of b), b))
                    ids;
                  let neighbors = Array.to_list (Array.sub ids 0 (min config.k current)) in
                  let extra = Prelude.Prng.int rng current in
                  attach_with (extra :: neighbors))))
    arrivals;
  Streaming.Session.advance session ~until:config.session.duration_ms;
  let report = Streaming.Session.report session in
  (* Newcomer metrics only. *)
  let buffering = Prelude.Stats.create () in
  let time_to_play = Prelude.Stats.create () in
  let started = ref 0 in
  Array.iter
    (fun (peer, arrival) ->
      match Hashtbl.find_opt sid_of peer with
      | None -> ()
      | Some sid ->
      let pr = report.peers.(sid) in
      if not (Float.is_nan pr.startup_delay_ms) then begin
        incr started;
        Prelude.Stats.add buffering pr.startup_delay_ms;
        match Hashtbl.find_opt attach_times peer with
        | Some at -> Prelude.Stats.add time_to_play (at -. arrival +. pr.startup_delay_ms)
        | None -> ()
      end)
    arrivals;
  {
    method_name = method_name spec;
    mean_discovery_ms = Prelude.Stats.mean discovery;
    mean_buffering_ms = Prelude.Stats.mean buffering;
    mean_time_to_play_ms = Prelude.Stats.mean time_to_play;
    started_fraction = float_of_int !started /. float_of_int config.newcomers;
    mean_neighbor_hops = Prelude.Stats.mean hop_stats;
  }

let run config =
  let w =
    Workload.build ~routers:config.routers ~landmark_count:8
      ~latency:(Topology.Latency.Core_weighted { core_ms = 2.0; edge_ms = 15.0; threshold = 8 })
      ~peers:(config.initial_peers + config.newcomers) ~seed:config.seed ()
  in
  List.map (run_method config w)
    [ Proposed_discovery; Proposed_established; Random_discovery; Ideal_coords ]

let print rows =
  print_endline "joining: newcomer time-to-playback (discovery + buffering), mid-stream";
  Prelude.Table.print
    ~header:
      [ "method"; "discovery ms"; "buffering ms"; "time-to-play ms"; "started"; "neighbor hops" ]
    (List.map
       (fun r ->
         [
           r.method_name;
           Prelude.Table.float_cell ~decimals:0 r.mean_discovery_ms;
           Prelude.Table.float_cell ~decimals:0 r.mean_buffering_ms;
           Prelude.Table.float_cell ~decimals:0 r.mean_time_to_play_ms;
           Prelude.Table.float_cell ~decimals:2 r.started_fraction;
           Prelude.Table.float_cell ~decimals:2 r.mean_neighbor_hops;
         ])
       rows)
