(** Extension E4: decreased traceroute — quality vs probe cost.

    The paper wants a cheaper tool that records "only some routers along the
    path".  Each strategy trades probe packets for path resolution; the
    experiment reports, per strategy, the quality ratio and the mean probe
    packets a join cost. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  strategies : Traceroute.Truncate.strategy list;
  seeds : int list;
}

val default_config : config
val quick_config : config

type row = {
  strategy : Traceroute.Truncate.strategy;
  ratio : float;
  hit_ratio : float;
  mean_probes_per_join : float;
}

val run : config -> row list
val print : row list -> unit
