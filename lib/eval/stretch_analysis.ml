type config = { routers : int; landmark_counts : int list; pairs : int; seed : int }

let default_config = { routers = 4000; landmark_counts = [ 1; 2; 4; 8; 16; 32 ]; pairs = 3000; seed = 1 }
let quick_config = { routers = 1000; landmark_counts = [ 1; 4; 16 ]; pairs = 500; seed = 1 }

type row = {
  landmarks : int;
  same_landmark_fraction : float;
  exact_fraction : float;
  mean_stretch : float;
  p95_stretch : float;
}

let dtree_of_routes route1 route2 =
  let a = Array.of_list route1 and b = Array.of_list route2 in
  let la = Array.length a and lb = Array.length b in
  let max_j = min la lb in
  let rec suffix j = if j < max_j && a.(la - 1 - j) = b.(lb - 1 - j) then suffix (j + 1) else j in
  let j = suffix 0 in
  if j = 0 then None else Some (la - j + (lb - j))

let run config =
  let map =
    Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params config.routers) ~seed:config.seed
  in
  let oracle = Traceroute.Route_oracle.create map.graph in
  List.map
    (fun landmark_count ->
      let rng = Prelude.Prng.create (config.seed + (1009 * landmark_count)) in
      let landmarks =
        Nearby.Landmark.place map.graph Nearby.Landmark.Medium_degree ~count:landmark_count ~rng
      in
      let leaves = map.leaves in
      let same = ref 0 and exact = ref 0 and estimable = ref 0 and sampled = ref 0 in
      let stretches = ref [] in
      while !sampled < config.pairs do
        let p1 = Prelude.Prng.choose rng leaves in
        let p2 = Prelude.Prng.choose rng leaves in
        if p1 <> p2 then begin
          incr sampled;
          let l1, _ = Nearby.Landmark.closest oracle ~landmarks p1 in
          let l2, _ = Nearby.Landmark.closest oracle ~landmarks p2 in
          if l1 = l2 then begin
            incr same;
            let route1 = Traceroute.Route_oracle.route oracle ~src:p1 ~dst:l1 in
            let route2 = Traceroute.Route_oracle.route oracle ~src:p2 ~dst:l1 in
            match dtree_of_routes route1 route2 with
            | Some dtree ->
                let d = Topology.Bfs.distance map.graph p1 p2 in
                if d > 0 && d <> max_int then begin
                  incr estimable;
                  if dtree = d then incr exact;
                  stretches := (float_of_int dtree /. float_of_int d) :: !stretches
                end
            | None -> ()
          end
        end
      done;
      let stretch_array = Array.of_list !stretches in
      {
        landmarks = landmark_count;
        same_landmark_fraction = float_of_int !same /. float_of_int config.pairs;
        exact_fraction =
          (if !estimable = 0 then 0.0 else float_of_int !exact /. float_of_int !estimable);
        mean_stretch = Prelude.Stats.mean_of stretch_array;
        p95_stretch =
          (if Array.length stretch_array = 0 then nan else Prelude.Stats.percentile stretch_array 95.0);
      })
    config.landmark_counts

let print rows =
  print_endline "stretch analysis: inferred dtree vs true hop distance over random pairs";
  Prelude.Table.print
    ~header:[ "landmarks"; "same-lmk frac"; "exact frac"; "mean stretch"; "p95 stretch" ]
    (List.map
       (fun r ->
         [
           string_of_int r.landmarks;
           Prelude.Table.float_cell r.same_landmark_fraction;
           Prelude.Table.float_cell r.exact_fraction;
           Prelude.Table.float_cell r.mean_stretch;
           Prelude.Table.float_cell r.p95_stretch;
         ])
       rows)
