type scored = { name : string; total_d : int; ratio : float; hit_ratio : float }

type outcome = {
  total_d_closest : int;
  optimal_sets : int array array;
  scored : scored list;
}

let unreachable_cost = max_int / 4

let score (ctx : Nearby.Selector.context) ~k ~named_sets =
  let n = Array.length ctx.peer_routers in
  List.iter
    (fun (name, sets) ->
      if Array.length sets <> n then
        invalid_arg (Printf.sprintf "Measure.score: selector %S has %d sets for %d peers" name (Array.length sets) n))
    named_sets;
  let optimal_sets = Array.make n [||] in
  let d_closest = ref 0 in
  let totals = Array.make (List.length named_sets) 0 in
  let hits = Array.make (List.length named_sets) 0.0 in
  for p = 0 to n - 1 do
    let dist = Topology.Bfs.distances ctx.graph ctx.peer_routers.(p) in
    let to_peer j =
      let d = dist.(ctx.peer_routers.(j)) in
      if d = max_int then unreachable_cost else d
    in
    (* Optimal set: k other peers at smallest distance, (distance, id) order. *)
    let ids = Array.init n (fun j -> j) in
    Array.sort (fun a b -> compare (to_peer a, a) (to_peer b, b)) ids;
    let opt = Array.make (min k (n - 1)) 0 in
    let taken = ref 0 and cursor = ref 0 in
    while !taken < Array.length opt do
      let j = ids.(!cursor) in
      incr cursor;
      if j <> p then begin
        opt.(!taken) <- j;
        incr taken
      end
    done;
    optimal_sets.(p) <- opt;
    Array.iter (fun j -> d_closest := !d_closest + to_peer j) opt;
    let opt_members = Hashtbl.create (Array.length opt) in
    Array.iter (fun j -> Hashtbl.replace opt_members j ()) opt;
    List.iteri
      (fun idx (_, sets) ->
        let inter = ref 0 in
        Array.iter
          (fun j ->
            totals.(idx) <- totals.(idx) + to_peer j;
            if Hashtbl.mem opt_members j then incr inter)
          sets.(p);
        if Array.length opt > 0 then
          hits.(idx) <- hits.(idx) +. (float_of_int !inter /. float_of_int (Array.length opt)))
      named_sets
  done;
  let scored =
    List.mapi
      (fun idx (name, _) ->
        {
          name;
          total_d = totals.(idx);
          ratio =
            (if !d_closest = 0 then if totals.(idx) = 0 then 1.0 else infinity
             else float_of_int totals.(idx) /. float_of_int !d_closest);
          hit_ratio = (if n = 0 then 1.0 else hits.(idx) /. float_of_int n);
        })
      named_sets
  in
  { total_d_closest = !d_closest; optimal_sets; scored }
