type family = Magoni | Ba | Config_model | Er | Waxman | Transit_stub

let family_name = function
  | Magoni -> "magoni"
  | Ba -> "ba"
  | Config_model -> "config-2.2"
  | Er -> "er"
  | Waxman -> "waxman"
  | Transit_stub -> "transit-stub"

let all_families = [ Magoni; Ba; Config_model; Er; Waxman; Transit_stub ]

type config = {
  nodes : int;
  peers : int;
  landmark_count : int;
  k : int;
  families : family list;
  seeds : int list;
}

let default_config =
  { nodes = 2000; peers = 500; landmark_count = 8; k = 5; families = all_families; seeds = [ 1; 2; 3 ] }

let quick_config =
  { nodes = 600; peers = 150; landmark_count = 6; k = 5; families = [ Magoni; Er ]; seeds = [ 1 ] }

type row = {
  family : family;
  gini : float;
  ratio_proposed : float;
  ratio_random : float;
  hit_proposed : float;
}

let build_graph config ~seed = function
  | Magoni -> (Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params config.nodes) ~seed).graph
  | Ba -> Topology.Gen_ba.generate ~nodes:config.nodes ~edges_per_node:2 ~seed
  | Config_model ->
      let _, giant =
        Topology.Gen_config_model.generate_power_law ~n:config.nodes ~alpha:2.2 ~d_min:1 ~d_max:60
          ~seed
      in
      giant
  | Er ->
      Topology.Gen_er.generate_connected ~nodes:config.nodes ~edges:(5 * config.nodes / 2) ~seed
  | Waxman ->
      let g, _ = Topology.Gen_waxman.generate ~nodes:(min config.nodes 1200) ~alpha:0.3 ~beta:0.12 ~seed in
      g
  | Transit_stub ->
      (* Scale the stub parameters to approximate the requested size. *)
      let per_stub = 6 and stubs = 2 and per_transit = 4 in
      let transit_domains =
        max 2 (config.nodes / (per_transit * ((stubs * per_stub) + 1)))
      in
      Topology.Gen_transit_stub.generate
        {
          Topology.Gen_transit_stub.transit_domains;
          routers_per_transit = per_transit;
          stubs_per_transit_router = stubs;
          routers_per_stub = per_stub;
          intra_edge_prob = 0.35;
        }
        ~seed

let run_one config family ~seed =
      let graph = build_graph config ~seed family in
      let rng = Prelude.Prng.create (seed + 7) in
      (* Peers attach to the lowest-degree routers (degree-1 where the map
         has them, as the paper prescribes); landmarks medium-degree. *)
      let n_nodes = Topology.Graph.node_count graph in
      let by_degree = Array.init n_nodes (fun v -> v) in
      Array.sort
        (fun a b -> compare (Topology.Graph.degree graph a, a) (Topology.Graph.degree graph b, b))
        by_degree;
      let peers = min config.peers (n_nodes / 2) in
      let peer_routers = Array.sub by_degree 0 peers in
      Prelude.Prng.shuffle_in_place rng peer_routers;
      let landmarks =
        Nearby.Landmark.place graph Nearby.Landmark.Medium_degree ~count:config.landmark_count ~rng
      in
      let ctx = Nearby.Selector.make_context graph ~peer_routers in
      let proposed =
        Nearby.Selector.select ctx
          (Proposed { landmarks; truncate = Traceroute.Truncate.Full })
          ~k:config.k ~rng
      in
      let random = Nearby.Selector.select ctx Random_peers ~k:config.k ~rng in
      let outcome =
        Measure.score ctx ~k:config.k ~named_sets:[ ("p", proposed); ("r", random) ]
      in
      let rp, rr, hit =
        match outcome.scored with
        | [ p; r ] -> (p.ratio, r.ratio, p.hit_ratio)
        | _ -> assert false
      in
      {
        family;
        gini = Topology.Degree.gini graph;
        ratio_proposed = rp;
        ratio_random = rr;
        hit_proposed = hit;
      }

let run config =
  List.map
    (fun family ->
      let rows = List.map (fun seed -> run_one config family ~seed) config.seeds in
      let mean f = List.fold_left (fun a r -> a +. f r) 0.0 rows /. float_of_int (List.length rows) in
      {
        family;
        gini = mean (fun r -> r.gini);
        ratio_proposed = mean (fun r -> r.ratio_proposed);
        ratio_random = mean (fun r -> r.ratio_random);
        hit_proposed = mean (fun r -> r.hit_proposed);
      })
    config.families

let print rows =
  print_endline "topology sensitivity: proposed vs random across map families";
  print_endline "  (the mechanism's edge should track the degree heavy tail / core structure)";
  Prelude.Table.print
    ~header:[ "family"; "degree gini"; "D/Dcl proposed"; "D/Dcl random"; "hit"; "advantage" ]
    (List.map
       (fun r ->
         [
           family_name r.family;
           Prelude.Table.float_cell r.gini;
           Prelude.Table.float_cell r.ratio_proposed;
           Prelude.Table.float_cell r.ratio_random;
           Prelude.Table.float_cell r.hit_proposed;
           Prelude.Table.float_cell (r.ratio_random /. r.ratio_proposed);
         ])
       rows)
