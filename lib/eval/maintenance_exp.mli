(** Neighbor-set decay under churn, with and without client maintenance.

    Every peer freezes the neighbor set it got at join time; a
    {!Nearby.Maintenance} maintainer keeps a second copy refreshed.  At
    each checkpoint we compare the fraction of still-live neighbors in the
    frozen sets against the maintained ones — the value of the refresh
    loop, and the knob its period trades against query load. *)

type config = {
  routers : int;
  landmark_count : int;
  k : int;
  spec : Simkit.Churn.spec;
  refresh_period_ms : float;
  checkpoints : int;
  seed : int;
}

val default_config : config
val quick_config : config

type checkpoint = {
  time_ms : float;
  live_peers : int;
  frozen_live_fraction : float;  (** Live members / k in join-time sets. *)
  maintained_live_fraction : float;
  replacements : int;  (** Cumulative dead-neighbor replacements. *)
  server_queries : int;  (** Cumulative queries the server has served. *)
}

val run : config -> checkpoint list
val print : checkpoint list -> unit
