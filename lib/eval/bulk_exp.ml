type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  session : Streaming.Bulk.params;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    peers = 300;
    landmark_count = 8;
    k = 5;
    session = Streaming.Bulk.default_params;
    seed = 1;
  }

let quick_config =
  {
    routers = 800;
    peers = 100;
    landmark_count = 6;
    k = 4;
    session = { Streaming.Bulk.default_params with chunks = 48; max_time_ms = 40_000.0 };
    seed = 1;
  }

type row = {
  selector : string;
  completed_fraction : float;
  mean_completion_s : float;
  p95_completion_s : float;
  megabytes : float;
  link_megabytes : float;
}

let run config =
  let w =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
      ~latency:(Topology.Latency.Core_weighted { core_ms = 2.0; edge_ms = 15.0; threshold = 8 })
      ~peers:config.peers ~seed:config.seed ()
  in
  let rng = w.rng in
  let seed_router = w.landmarks.(0) in
  let proposed =
    Nearby.Selector.Proposed { landmarks = w.landmarks; truncate = Traceroute.Truncate.Full }
  in
  let strategies =
    [
      ("proposed+1rand", Nearby.Selector.Hybrid { primary = proposed; random_links = 1 });
      ("closest+1rand", Nearby.Selector.Hybrid { primary = Oracle_closest; random_links = 1 });
      ("random", Nearby.Selector.Random_peers);
    ]
  in
  List.map
    (fun (name, strategy) ->
      let sets = Nearby.Selector.select w.ctx strategy ~k:config.k ~rng:(Prelude.Prng.copy rng) in
      let report =
        Streaming.Bulk.run ~params:config.session ?latency:w.ctx.latency ~graph:w.ctx.graph
          ~seed_router ~peer_routers:w.peer_routers ~neighbor_sets:sets ~seed:(config.seed + 41) ()
      in
      {
        selector = name;
        completed_fraction = report.completed_fraction;
        mean_completion_s = report.mean_completion_ms /. 1000.0;
        p95_completion_s = report.p95_completion_ms /. 1000.0;
        megabytes = float_of_int report.bytes /. 1e6;
        link_megabytes = float_of_int report.link_bytes /. 1e6;
      })
    strategies

let print rows =
  print_endline "bulk: file-swarm distribution under different neighbor selectors";
  Prelude.Table.print
    ~header:[ "selector"; "completed"; "mean (s)"; "p95 (s)"; "MB sent"; "MB x hop" ]
    (List.map
       (fun r ->
         [
           r.selector;
           Prelude.Table.float_cell ~decimals:2 r.completed_fraction;
           Prelude.Table.float_cell ~decimals:1 r.mean_completion_s;
           Prelude.Table.float_cell ~decimals:1 r.p95_completion_s;
           Prelude.Table.float_cell ~decimals:1 r.megabytes;
           Prelude.Table.float_cell ~decimals:1 r.link_megabytes;
         ])
       rows)
