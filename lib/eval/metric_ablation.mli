(** Ablation 1 (DESIGN.md): hop-count dtree vs latency-weighted dtree.

    Both path trees register the same recorded routes; they differ only in
    the cost annotation (path position vs cumulative link latency).  The
    chosen neighbor sets are then scored against both ground truths — the
    hop-distance optimum (the paper's metric) and the true latency optimum
    (what a streaming application cares about). *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  seeds : int list;
}

val default_config : config
val quick_config : config

type row = {
  metric : string;  (** "hops" or "latency". *)
  ratio_hops : float;  (** D/Dclosest under hop-count ground truth. *)
  ratio_latency : float;  (** D/Dclosest under latency ground truth. *)
  hit_latency : float;  (** Overlap with the latency-optimal sets. *)
}

val run : config -> row list
val print : row list -> unit
