type config = {
  routers : int;
  landmark_count : int;
  k : int;
  spec : Simkit.Churn.spec;
  refresh_period_ms : float;
  checkpoints : int;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    landmark_count = 8;
    k = 5;
    spec =
      {
        Simkit.Churn.arrival_rate_per_s = 2.0;
        session = Simkit.Churn.Exponential { mean_ms = 120_000.0 };
        failure_fraction = 0.3;
        mobility_fraction = 0.0;
        horizon_ms = 600_000.0;
      };
    refresh_period_ms = 20_000.0;
    checkpoints = 6;
    seed = 1;
  }

let quick_config =
  {
    default_config with
    routers = 600;
    spec =
      {
        Simkit.Churn.arrival_rate_per_s = 1.0;
        session = Simkit.Churn.Exponential { mean_ms = 90_000.0 };
        failure_fraction = 0.3;
        mobility_fraction = 0.0;
        horizon_ms = 240_000.0;
      };
    checkpoints = 3;
  }

type checkpoint = {
  time_ms : float;
  live_peers : int;
  frozen_live_fraction : float;
  maintained_live_fraction : float;
  replacements : int;
  server_queries : int;
}

let run config =
  let map =
    Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params config.routers) ~seed:config.seed
  in
  let rng = Prelude.Prng.create (config.seed + 99) in
  let landmarks =
    Nearby.Landmark.place map.graph Nearby.Landmark.Medium_degree ~count:config.landmark_count ~rng
  in
  let oracle = Traceroute.Route_oracle.create map.graph in
  let server = Nearby.Server.create oracle ~landmarks in
  let engine = Simkit.Engine.create () in
  let alive : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let is_alive p = Hashtbl.mem alive p in
  let maintainer =
    Nearby.Maintenance.create ~engine ~server ~is_alive
      { k = config.k; refresh_period_ms = config.refresh_period_ms }
  in
  let frozen : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  let leaves = map.leaves in
  let sessions = Simkit.Churn.generate config.spec ~rng:(Prelude.Prng.split rng) in
  List.iteri
    (fun peer (s : Simkit.Churn.session) ->
      Simkit.Engine.schedule_at engine ~time:s.join_at (fun () ->
          let attach_router = leaves.(Prelude.Prng.int rng (Array.length leaves)) in
          ignore (Nearby.Server.join server ~peer ~attach_router);
          Hashtbl.replace alive peer ();
          Hashtbl.replace frozen peer (List.map fst (Nearby.Server.neighbors server ~peer ~k:config.k));
          Nearby.Maintenance.track maintainer ~peer);
      Simkit.Engine.schedule_at engine ~time:(Float.max s.leave_at s.join_at) (fun () ->
          if Hashtbl.mem alive peer then begin
            Hashtbl.remove alive peer;
            Nearby.Maintenance.untrack maintainer ~peer;
            match s.departure with
            | Simkit.Churn.Leave | Simkit.Churn.Handover ->
                if Nearby.Server.mem server peer then Nearby.Server.leave server ~peer
            | Simkit.Churn.Crash ->
                (* Silent: the server only notices after a detection delay. *)
                Simkit.Engine.schedule engine ~delay:30_000.0 (fun () ->
                    if Nearby.Server.mem server peer then Nearby.Server.leave server ~peer)
          end))
    sessions;
  let results = ref [] in
  let snapshot time_ms =
    let live_peers = Hashtbl.length alive in
    let frozen_fraction =
      let acc = ref 0.0 and counted = ref 0 in
      Hashtbl.iter
        (fun peer () ->
          match Hashtbl.find_opt frozen peer with
          | Some [] | None -> ()
          | Some set ->
              let live = List.length (List.filter is_alive set) in
              acc := !acc +. (float_of_int live /. float_of_int config.k);
              incr counted)
        alive;
      if !counted = 0 then 1.0 else !acc /. float_of_int !counted
    in
    results :=
      {
        time_ms;
        live_peers;
        frozen_live_fraction = frozen_fraction;
        maintained_live_fraction = Nearby.Maintenance.live_fraction maintainer;
        replacements = Nearby.Maintenance.replacements maintainer;
        server_queries = Simkit.Trace.counter (Nearby.Server.trace server) "query";
      }
      :: !results
  in
  let step = config.spec.horizon_ms /. float_of_int config.checkpoints in
  for c = 1 to config.checkpoints do
    let time = step *. float_of_int c in
    Simkit.Engine.schedule_at engine ~time (fun () -> snapshot time)
  done;
  Simkit.Engine.run engine;
  List.rev !results

let print checkpoints =
  print_endline "maintenance: neighbor-set decay under churn, frozen vs refreshed";
  Prelude.Table.print
    ~header:[ "t (s)"; "live"; "frozen live frac"; "maintained live frac"; "replacements"; "queries" ]
    (List.map
       (fun c ->
         [
           Prelude.Table.float_cell ~decimals:0 (c.time_ms /. 1000.0);
           string_of_int c.live_peers;
           Prelude.Table.float_cell c.frozen_live_fraction;
           Prelude.Table.float_cell c.maintained_live_fraction;
           string_of_int c.replacements;
           string_of_int c.server_queries;
         ])
       checkpoints)
