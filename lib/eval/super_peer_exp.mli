(** Extension E2: super-peer delegation.

    Compares the centralized management server against per-landmark
    super-peers: discovery quality (identical data structure, minus
    cross-tree top-up), and the load split across super-peers. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  seeds : int list;
}

val default_config : config
val quick_config : config

type row = {
  seed : int;
  ratio_central : float;
  ratio_super : float;
  load_imbalance : float;  (** Max region size / mean region size. *)
  max_region_members : int;
  min_region_members : int;
}

val run : config -> row list
val print : row list -> unit
