type config = { routers : int; peers : int; landmark_count : int; k : int; seeds : int list }

let default_config = { routers = 2000; peers = 400; landmark_count = 8; k = 5; seeds = [ 1; 2 ] }
let quick_config = { routers = 800; peers = 150; landmark_count = 6; k = 5; seeds = [ 1 ] }

type row = {
  metric : string;
  ratio_hops : float;
  ratio_latency : float;
  hit_latency : float;
}

(* Score a family of neighbor sets against the latency ground truth:
   one Dijkstra per peer. *)
let latency_scores ctx ~latency ~k named_sets =
  let graph = (ctx : Nearby.Selector.context).graph in
  let weight = Topology.Latency.weight_fn latency in
  let n = Array.length ctx.peer_routers in
  let totals = Array.make (List.length named_sets) 0.0 in
  let hits = Array.make (List.length named_sets) 0.0 in
  let opt_total = ref 0.0 in
  for p = 0 to n - 1 do
    let dist = Topology.Dijkstra.distances graph ~weight ctx.peer_routers.(p) in
    let to_peer j =
      let d = dist.(ctx.peer_routers.(j)) in
      if Float.is_finite d then d else 1e9
    in
    let ids = Array.init n (fun j -> j) in
    Array.sort (fun a b -> compare (to_peer a, a) (to_peer b, b)) ids;
    let opt = Array.make (min k (n - 1)) 0 in
    let taken = ref 0 and cursor = ref 0 in
    while !taken < Array.length opt do
      let j = ids.(!cursor) in
      incr cursor;
      if j <> p then begin
        opt.(!taken) <- j;
        incr taken
      end
    done;
    Array.iter (fun j -> opt_total := !opt_total +. to_peer j) opt;
    let opt_members = Hashtbl.create (Array.length opt) in
    Array.iter (fun j -> Hashtbl.replace opt_members j ()) opt;
    List.iteri
      (fun idx (_, sets) ->
        let inter = ref 0 in
        Array.iter
          (fun j ->
            totals.(idx) <- totals.(idx) +. to_peer j;
            if Hashtbl.mem opt_members j then incr inter)
          sets.(p);
        if Array.length opt > 0 then
          hits.(idx) <- hits.(idx) +. (float_of_int !inter /. float_of_int (Array.length opt)))
      named_sets
  done;
  List.mapi
    (fun idx (name, _) ->
      ( name,
        (if !opt_total = 0.0 then 1.0 else totals.(idx) /. !opt_total),
        if n = 0 then 1.0 else hits.(idx) /. float_of_int n ))
    named_sets

let run_one config ~seed =
  let w =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
      ~latency:(Topology.Latency.Core_weighted { core_ms = 2.0; edge_ms = 15.0; threshold = 8 })
      ~peers:config.peers ~seed ()
  in
  let latency = Option.get (w.ctx : Nearby.Selector.context).latency in
  let n = Array.length w.peer_routers in
  (* Register every peer's route (to its latency-closest landmark) in both
     trees.  One tree family per landmark, as in the server. *)
  let hop_trees = Hashtbl.create 8 and lat_trees = Hashtbl.create 8 in
  Array.iter
    (fun lmk ->
      Hashtbl.add hop_trees lmk (Nearby.Path_tree.create ~landmark:lmk);
      Hashtbl.add lat_trees lmk (Nearby.Latency_tree.create ~landmark:lmk))
    w.landmarks;
  let home = Array.make n (-1) in
  for peer = 0 to n - 1 do
    let attach = w.peer_routers.(peer) in
    let lmk, _ = Nearby.Landmark.closest w.ctx.oracle ~latency ~landmarks:w.landmarks attach in
    home.(peer) <- lmk;
    let route = Traceroute.Route_oracle.route w.ctx.oracle ~src:attach ~dst:lmk in
    Nearby.Path_tree.insert (Hashtbl.find hop_trees lmk) ~peer
      ~routers:(Array.of_list route);
    Nearby.Latency_tree.insert (Hashtbl.find lat_trees lmk) ~peer
      ~hops:(Nearby.Latency_tree.hops_of_route ~latency route)
  done;
  let hop_sets =
    Array.init n (fun peer ->
        Nearby.Path_tree.query_member (Hashtbl.find hop_trees home.(peer)) ~peer ~k:config.k
        |> List.map fst |> Array.of_list)
  in
  let lat_sets =
    Array.init n (fun peer ->
        Nearby.Latency_tree.query_member (Hashtbl.find lat_trees home.(peer)) ~peer ~k:config.k
        |> List.map fst |> Array.of_list)
  in
  let named = [ ("hops", hop_sets); ("latency", lat_sets) ] in
  let hop_outcome = Measure.score w.ctx ~k:config.k ~named_sets:named in
  let lat_outcome = latency_scores w.ctx ~latency ~k:config.k named in
  List.map2
    (fun (s : Measure.scored) (name, lat_ratio, lat_hit) ->
      assert (s.name = name);
      { metric = name; ratio_hops = s.ratio; ratio_latency = lat_ratio; hit_latency = lat_hit })
    hop_outcome.scored lat_outcome

let run config =
  let accumulate rows_list =
    (* Average the per-seed rows metric-wise. *)
    match rows_list with
    | [] -> []
    | first :: _ ->
        List.mapi
          (fun i (proto : row) ->
            let nth seed_rows = List.nth seed_rows i in
            let mean f =
              List.fold_left (fun acc rows -> acc +. f (nth rows)) 0.0 rows_list
              /. float_of_int (List.length rows_list)
            in
            {
              metric = proto.metric;
              ratio_hops = mean (fun r -> r.ratio_hops);
              ratio_latency = mean (fun r -> r.ratio_latency);
              hit_latency = mean (fun r -> r.hit_latency);
            })
          first
  in
  accumulate (List.map (fun seed -> run_one config ~seed) config.seeds)

let print rows =
  print_endline "ablation: hop-count dtree vs latency-weighted dtree";
  Prelude.Table.print
    ~header:[ "tree metric"; "D/Dcl (hops)"; "D/Dcl (latency)"; "hit (latency)" ]
    (List.map
       (fun r ->
         [
           r.metric;
           Prelude.Table.float_cell r.ratio_hops;
           Prelude.Table.float_cell r.ratio_latency;
           Prelude.Table.float_cell r.hit_latency;
         ])
       rows)
