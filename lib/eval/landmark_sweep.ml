type config = {
  routers : int;
  peers : int;
  k : int;
  counts : int list;
  policies : Nearby.Landmark.policy list;
  seeds : int list;
}

let default_config =
  {
    routers = 2000;
    peers = 800;
    k = 5;
    counts = [ 1; 2; 4; 8; 16; 32 ];
    policies = Nearby.Landmark.all_policies;
    seeds = [ 1; 2 ];
  }

let quick_config =
  {
    routers = 800;
    peers = 200;
    k = 5;
    counts = [ 1; 4; 16 ];
    policies = [ Nearby.Landmark.Medium_degree; Nearby.Landmark.Uniform_random ];
    seeds = [ 1 ];
  }

type row = { policy : Nearby.Landmark.policy; count : int; ratio : float; hit_ratio : float }

let score_with_server w ~k ~server =
  let n = Array.length w.Workload.peer_routers in
  let join_rng = Prelude.Prng.split w.rng in
  for peer = 0 to n - 1 do
    ignore (Nearby.Server.join ~rng:join_rng server ~peer ~attach_router:w.peer_routers.(peer))
  done;
  let sets =
    Array.init n (fun peer -> Nearby.Server.neighbors server ~peer ~k |> List.map fst |> Array.of_list)
  in
  let outcome = Measure.score w.ctx ~k ~named_sets:[ ("server", sets) ] in
  match outcome.scored with [ s ] -> (s.ratio, s.hit_ratio) | _ -> assert false

let run config =
  List.concat_map
    (fun policy ->
      List.map
        (fun count ->
          let ratio = Prelude.Stats.create () and hit = Prelude.Stats.create () in
          List.iter
            (fun seed ->
              let w =
                Workload.build ~routers:config.routers ~landmark_count:count
                  ~landmark_policy:policy ~peers:config.peers ~seed ()
              in
              let server =
                Nearby.Server.create w.ctx.oracle ~landmarks:w.landmarks
              in
              let r, h = score_with_server w ~k:config.k ~server in
              Prelude.Stats.add ratio r;
              Prelude.Stats.add hit h)
            config.seeds;
          { policy; count; ratio = Prelude.Stats.mean ratio; hit_ratio = Prelude.Stats.mean hit })
        config.counts)
    config.policies

let print rows =
  print_endline "E1: landmark count x placement policy (D/Dclosest; lower is better)";
  Prelude.Table.print
    ~header:[ "policy"; "landmarks"; "D/Dclosest"; "hit-ratio" ]
    (List.map
       (fun r ->
         [
           Nearby.Landmark.policy_name r.policy;
           string_of_int r.count;
           Prelude.Table.float_cell r.ratio;
           Prelude.Table.float_cell r.hit_ratio;
         ])
       rows)

type ablation_row = { count : int; ratio_closest : float; ratio_random_lmk : float }

let run_round1_ablation config =
  List.map
    (fun count ->
      let closest = Prelude.Stats.create () and random = Prelude.Stats.create () in
      List.iter
        (fun seed ->
          let measure choice acc =
            let w =
              Workload.build ~routers:config.routers ~landmark_count:count
                ~peers:config.peers ~seed ()
            in
            let server = Nearby.Server.create ~choice w.ctx.oracle ~landmarks:w.landmarks in
            let r, _ = score_with_server w ~k:config.k ~server in
            Prelude.Stats.add acc r
          in
          measure Nearby.Server.Closest closest;
          measure Nearby.Server.Uniform random)
        config.seeds;
      {
        count;
        ratio_closest = Prelude.Stats.mean closest;
        ratio_random_lmk = Prelude.Stats.mean random;
      })
    config.counts

let print_ablation rows =
  print_endline "E1-ablation: round 1 (closest landmark) vs random landmark choice";
  Prelude.Table.print
    ~header:[ "landmarks"; "closest (paper)"; "random landmark" ]
    (List.map
       (fun r ->
         [
           string_of_int r.count;
           Prelude.Table.float_cell r.ratio_closest;
           Prelude.Table.float_cell r.ratio_random_lmk;
         ])
       rows)
