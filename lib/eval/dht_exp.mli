(** Decentralizing the management server: central vs super-peers vs DHT.

    The same workload is registered three ways — the centralized server,
    per-landmark super-peers, and per-landmark {!Dht.Directory} shards over
    a Chord ring of storage nodes.  Discovery answers are identical by
    construction (verified), so the comparison is about {e cost}: overlay
    hops per join/query and how storage and request load spread. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  dht_nodes : int;
  virtual_nodes : int;  (** Ring positions per storage node. *)
  k : int;
  seed : int;
}

val default_config : config
val quick_config : config

type backend_row = {
  backend : string;
  identical : bool;  (** Same answers as the per-landmark path tree. *)
  backend_stats : (string * int) list;
      (** The backend's {!Nearby.Registry_intf.S.stats} merged across
          landmarks. *)
  queries : int;  (** ["registry_query"] trace counter over the sweep. *)
}

type report = {
  answers_identical : bool;  (** DHT answers == central answers for every peer. *)
  mean_lookups_per_join : float;
  mean_hops_per_lookup : float;
  mean_lookups_per_query : float;
  bucket_balance : float;  (** Max buckets on a node / mean, with virtual nodes. *)
  bucket_balance_v1 : float;  (** Same without virtual nodes (1 position each). *)
  super_peer_balance : float;  (** Same metric for the super-peer split. *)
  ring_size : int;
  mean_hops_kademlia : float;
      (** The same lookups greedy-routed over a Kademlia table of the same
          nodes — the XOR-metric comparison point. *)
  join_migration_fraction : float;
      (** Buckets moved when one storage node joins, as a fraction of all
          stored buckets (consistent hashing: ~1/(N+1)). *)
  backend_rows : backend_row list;
      (** The same workload replayed against every registry backend
          ({!Backends.all}) through the unified interface. *)
}

val run : config -> report
val print : report -> unit
