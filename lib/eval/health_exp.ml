(* The state-health experiment: does the cluster notice when its replicas
   drift apart, how fast does anti-entropy pull them back, and how stale do
   the served reports get while all that happens?

   One scenario, deterministic in the seed: peers join through the
   resilient RPC path while a loss burst over part of the arrival window
   drops replica fan-outs, so the replicas genuinely diverge.  A digest
   check polls at failure-detector-ish rate (finer than the sync period),
   which is what turns "the replicas differ" into a detection event with a
   timestamp; the periodic sync rounds repair the drift and close each
   divergence episode.  Everything reported is read back from the
   instruments a deployment would watch: the [cluster_divergent_replicas]
   gauge, the [cluster_digest_checks_total{result}] counters, the
   divergence/convergence flight-recorder edges, the
   ["cluster_antientropy_lag_ms"] stream and the report-age staleness
   quantiles. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  replicas : int;
  loss : float;
  arrival_window_ms : float;
  sync_period_ms : float;
  check_period_ms : float;  (* digest-check poll period, << sync period *)
  rpc : Simkit.Rpc.config;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    peers = 8_000;
    landmark_count = 8;
    k = 5;
    replicas = 3;
    loss = 0.4;
    arrival_window_ms = 20_000.0;
    sync_period_ms = 2_000.0;
    check_period_ms = 250.0;
    rpc = Simkit.Rpc.default_config;
    seed = 1;
  }

let quick_config =
  { default_config with routers = 800; peers = 1_200; arrival_window_ms = 8_000.0 }

type result = {
  joins : int;
  completed : int;
  failed : int;
  completion_rate : float;
  digest_checks : int;
  checks_consistent : int;
  checks_divergent : int;
  divergence_episodes : int;  (* flight-recorder "divergence" edges *)
  convergence_episodes : int;  (* flight-recorder "convergence" edges *)
  max_divergent_replicas : int;
  detection_latency_ms : float;
      (* loss-burst onset to the first divergence edge; nan if none *)
  lag_count : int;  (* closed episodes measured by the lag stream *)
  lag_p50_ms : float;
  lag_max_ms : float;
  sync_rounds : int;
  sync_restores : int;
  sync_skipped : int;
  sync_bytes : int;
  snapshot_wire_bytes : int;
  report_age_p50_ms : float;
  report_age_p90_ms : float;
  report_age_p99_ms : float;
  report_age_oldest_ms : float;
  refresh_total : int;
  refresh_rate_hz : float;
  final_divergent : int;  (* gauge reading after the last check *)
  converged : bool;  (* every episode closed and the end-state agrees *)
}

(* Labeled-registry read-back: total [wire_bytes_total] carried under one
   kind label, summed over directions. *)
let kind_bytes metrics kind =
  List.fold_left
    (fun acc (n, labels, _) ->
      if n = "wire_bytes_total" && List.assoc_opt "kind" labels = Some kind then
        acc + Simkit.Metrics.counter metrics n ~labels
      else acc)
    0
    (Simkit.Metrics.series metrics)

let worst_rpc_ms (c : Simkit.Rpc.config) =
  let backoffs = ref 0.0 in
  for a = 1 to c.max_attempts - 1 do
    backoffs :=
      !backoffs
      +. (c.backoff_base_ms *. (c.backoff_multiplier ** float_of_int (a - 1)) *. (1.0 +. c.jitter_frac))
  done;
  (float_of_int c.max_attempts *. c.timeout_ms) +. !backoffs

let run (config : config) =
  if config.replicas < 2 then invalid_arg "Health_exp: divergence needs >= 2 replicas";
  if config.loss <= 0.0 || config.loss >= 1.0 then
    invalid_arg "Health_exp: loss outside (0, 1)";
  if config.check_period_ms <= 0.0 then invalid_arg "Health_exp: check period must be positive";
  let w =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
      ~peers:config.peers ~seed:config.seed ()
  in
  let engine = Simkit.Engine.create () in
  let metrics = Simkit.Metrics.create () in
  let recorder = Simkit.Flight_recorder.create ~capacity:4096 () in
  let transport =
    Simkit.Transport.create ~rng:(Prelude.Prng.split w.rng) ~metrics engine w.ctx.oracle
  in
  let replica_routers =
    Nearby.Landmark.place (Workload.graph w) Medium_degree ~count:config.replicas
      ~rng:(Prelude.Prng.split w.rng)
  in
  let client_router = w.map.core.(0) in
  let cluster =
    Nearby.Cluster.create ~recorder ~metrics ~transport ~client_router
      ~make_server:(fun () ->
        Nearby.Server.create ?latency:w.ctx.latency w.ctx.oracle ~landmarks:w.landmarks)
      ~restore_server:(fun data ->
        Nearby.Server.restore ?latency:w.ctx.latency w.ctx.oracle data)
      ~routers:replica_routers ()
  in
  let rpc = Simkit.Rpc.create ~config:config.rpc ~rng:(Prelude.Prng.split w.rng) transport in
  let protocol = Nearby.Protocol.create_resilient ?latency:w.ctx.latency ~rpc cluster in
  let aw = config.arrival_window_ms in
  let loss_start = 0.25 *. aw in
  Simkit.Engine.schedule_at engine ~time:loss_start (fun () ->
      Simkit.Transport.set_loss_prob transport config.loss);
  Simkit.Engine.schedule_at engine ~time:(0.6 *. aw) (fun () ->
      Simkit.Transport.set_loss_prob transport 0.0);
  let horizon =
    aw +. worst_rpc_ms config.rpc +. (3.0 *. config.sync_period_ms) +. 1_000.0
  in
  Nearby.Cluster.start_sync cluster ~period_ms:config.sync_period_ms ~until:horizon;
  (* The detection poll: much finer than the sync period, so an episode's
     opening edge carries a timestamp close to when the drift happened, not
     just "sometime before the next repair". *)
  let max_divergent = ref 0 in
  let rec poll at =
    if at <= horizon then
      Simkit.Engine.schedule_at engine ~time:at (fun () ->
          let divergent = Nearby.Cluster.digest_check cluster in
          max_divergent := max !max_divergent (List.length divergent);
          poll (at +. config.check_period_ms))
  in
  poll config.check_period_ms;
  let completed = ref 0 and failed = ref 0 in
  for peer = 0 to config.peers - 1 do
    let at = Prelude.Prng.float w.rng config.arrival_window_ms in
    Simkit.Engine.schedule_at engine ~time:at (fun () ->
        Nearby.Protocol.join protocol ~peer ~attach_router:w.peer_routers.(peer) ~k:config.k
          ~on_complete:(fun _info _reply -> incr completed)
          ~on_failure:(fun () -> incr failed))
  done;
  Simkit.Engine.run engine ~until:horizon;
  Nearby.Cluster.sync_round cluster;
  let final_divergent = List.length (Nearby.Cluster.digest_check cluster) in
  Nearby.Cluster.check_invariants cluster;
  let ctrace = Nearby.Cluster.trace cluster in
  let counter = Simkit.Trace.counter ctrace in
  let check_count result =
    Simkit.Metrics.counter metrics "cluster_digest_checks_total" ~labels:[ ("result", result) ]
  in
  let edges detail =
    List.length
      (List.filter
         (fun (e : Simkit.Flight_recorder.event) -> e.kind = "cluster" && e.detail = detail)
         (Simkit.Flight_recorder.events recorder))
  in
  (* First divergence edge at or after the loss onset: fine polling also
     catches transient in-flight replication (a fan-out between send and
     delivery), so edges before the burst exist and are not what the burst
     caused. *)
  let detection_latency_ms =
    Simkit.Flight_recorder.events recorder
    |> List.find_opt (fun (e : Simkit.Flight_recorder.event) ->
           e.kind = "cluster" && e.detail = "divergence" && e.ts >= loss_start)
    |> function
    | Some e -> e.ts -. loss_start
    | None -> Float.nan
  in
  let lag = Simkit.Trace.summary ctrace "cluster_antientropy_lag_ms" in
  (* Fleet staleness at the horizon: one fresh tracker per replica (the
     servers may have been replaced by catch-up restores, so trackers are
     not kept across the run), ages merged into one sketch. *)
  let fleet_ages = Prelude.Sketch.create () in
  let oldest = ref 0.0 in
  for i = 0 to Nearby.Cluster.replica_count cluster - 1 do
    let tracker = Nearby.Staleness.create (Nearby.Cluster.server_of cluster i) in
    let report =
      Nearby.Staleness.observe ~metrics
        ~labels:[ ("replica", string_of_int i) ]
        tracker ~now:horizon
    in
    if report.oldest_ms > !oldest then oldest := report.oldest_ms;
    Prelude.Sketch.merge_into ~into:fleet_ages (Nearby.Staleness.age_sketch tracker)
  done;
  let age q =
    if Prelude.Sketch.is_empty fleet_ages then Float.nan else Prelude.Sketch.quantile fleet_ages q
  in
  let refresh_total =
    Simkit.Trace.counter (Nearby.Cluster.fleet_trace cluster) "report_refresh"
  in
  let divergence_episodes = edges "divergence" in
  let convergence_episodes = edges "convergence" in
  {
    joins = config.peers;
    completed = !completed;
    failed = !failed;
    completion_rate =
      (if config.peers = 0 then Float.nan
       else float_of_int !completed /. float_of_int config.peers);
    digest_checks = counter "cluster_digest_checks";
    checks_consistent = check_count "consistent";
    checks_divergent = check_count "divergent";
    divergence_episodes;
    convergence_episodes;
    max_divergent_replicas = !max_divergent;
    detection_latency_ms;
    lag_count = (match lag with Some s -> s.count | None -> 0);
    lag_p50_ms = (match lag with Some s -> s.p50 | None -> Float.nan);
    lag_max_ms = (match lag with Some s -> Option.value s.max ~default:Float.nan | None -> Float.nan);
    sync_rounds = counter "cluster_sync_rounds";
    sync_restores = counter "cluster_sync_restores";
    sync_skipped = counter "cluster_sync_skipped";
    sync_bytes = counter "cluster_sync_bytes";
    snapshot_wire_bytes = kind_bytes metrics "snapshot";
    report_age_p50_ms = age 0.5;
    report_age_p90_ms = age 0.9;
    report_age_p99_ms = age 0.99;
    report_age_oldest_ms = !oldest;
    refresh_total;
    refresh_rate_hz = float_of_int refresh_total /. (horizon /. 1000.0);
    final_divergent;
    converged = final_divergent = 0 && divergence_episodes = convergence_episodes;
  }

(* --- Rendering ---------------------------------------------------------- *)

let result_json (r : result) =
  let fl v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  Printf.sprintf
    {|{"joins": %d, "completed": %d, "failed": %d, "completion_rate": %.4f, "digest_checks": %d, "checks_consistent": %d, "checks_divergent": %d, "divergence_episodes": %d, "convergence_episodes": %d, "max_divergent_replicas": %d, "detection_latency_ms": %s, "lag_count": %d, "lag_p50_ms": %s, "lag_max_ms": %s, "sync_rounds": %d, "sync_restores": %d, "sync_skipped": %d, "sync_bytes": %d, "snapshot_wire_bytes": %d, "report_age_p50_ms": %s, "report_age_p90_ms": %s, "report_age_p99_ms": %s, "report_age_oldest_ms": %s, "refresh_total": %d, "refresh_rate_hz": %s, "final_divergent": %d, "converged": %b}|}
    r.joins r.completed r.failed r.completion_rate r.digest_checks r.checks_consistent
    r.checks_divergent r.divergence_episodes r.convergence_episodes r.max_divergent_replicas
    (fl r.detection_latency_ms) r.lag_count (fl r.lag_p50_ms) (fl r.lag_max_ms) r.sync_rounds
    r.sync_restores r.sync_skipped r.sync_bytes r.snapshot_wire_bytes (fl r.report_age_p50_ms)
    (fl r.report_age_p90_ms) (fl r.report_age_p99_ms) (fl r.report_age_oldest_ms)
    r.refresh_total (fl r.refresh_rate_hz) r.final_divergent r.converged

let print (r : result) =
  Printf.printf "Health: joins=%d completed=%d episodes=%d converged=%b\n" r.joins r.completed
    r.divergence_episodes r.converged;
  Prelude.Table.print
    ~header:[ "metric"; "value" ]
    [
      [ "digest checks"; string_of_int r.digest_checks ];
      [ "checks consistent"; string_of_int r.checks_consistent ];
      [ "checks divergent"; string_of_int r.checks_divergent ];
      [ "divergence episodes"; string_of_int r.divergence_episodes ];
      [ "convergence episodes"; string_of_int r.convergence_episodes ];
      [ "max divergent replicas"; string_of_int r.max_divergent_replicas ];
      [ "detection latency ms"; Prelude.Table.float_cell ~decimals:1 r.detection_latency_ms ];
      [ "anti-entropy lag p50 ms"; Prelude.Table.float_cell ~decimals:1 r.lag_p50_ms ];
      [ "anti-entropy lag max ms"; Prelude.Table.float_cell ~decimals:1 r.lag_max_ms ];
      [ "sync rounds"; string_of_int r.sync_rounds ];
      [ "sync restores"; string_of_int r.sync_restores ];
      [ "sync skipped (digest gate)"; string_of_int r.sync_skipped ];
      [ "sync bytes"; string_of_int r.sync_bytes ];
      [ "snapshot wire bytes"; string_of_int r.snapshot_wire_bytes ];
      [ "report age p50 ms"; Prelude.Table.float_cell ~decimals:1 r.report_age_p50_ms ];
      [ "report age p90 ms"; Prelude.Table.float_cell ~decimals:1 r.report_age_p90_ms ];
      [ "report age p99 ms"; Prelude.Table.float_cell ~decimals:1 r.report_age_p99_ms ];
      [ "report age oldest ms"; Prelude.Table.float_cell ~decimals:1 r.report_age_oldest_ms ];
      [ "refreshes"; string_of_int r.refresh_total ];
      [ "refresh rate hz"; Prelude.Table.float_cell ~decimals:2 r.refresh_rate_hz ];
      [ "final divergent"; string_of_int r.final_divergent ];
    ]
