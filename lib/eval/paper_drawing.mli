(** The paper's conceptual drawing (its first figure), as a concrete graph.

    The text describes core routers [ra, rb, rc] with many connections,
    small routers [r1..], peers [p1..p4] and a landmark [lmk]; the route
    from [p1] and [p2] to the landmark meets first at [rc], so the inferred
    path [dtree(p1, p2)] (6 hops, up and over the meeting point) is longer
    than the true shortest path [d(p1, p2)] (3 hops through a stub cross
    link) — the exact situation the drawing illustrates.  Tests pin these
    numbers; the quickstart example walks through them. *)

type t = {
  graph : Topology.Graph.t;
  lmk : Topology.Graph.node;
  ra : Topology.Graph.node;
  rb : Topology.Graph.node;
  rc : Topology.Graph.node;
  p1 : Topology.Graph.node;
  p2 : Topology.Graph.node;
  p3 : Topology.Graph.node;
  p4 : Topology.Graph.node;
}

val build : unit -> t

val peer_attach_routers : t -> Topology.Graph.node array
(** [p1; p2; p3; p4] as an attachment array indexed by peer id 0..3. *)

val name_of : t -> Topology.Graph.node -> string
(** Human-readable label ("ra", "p2", "r5", ...). *)
