type t = {
  map : Topology.Gen_magoni.t;
  peer_routers : Topology.Graph.node array;
  landmarks : Topology.Graph.node array;
  ctx : Nearby.Selector.context;
  rng : Prelude.Prng.t;
}

let build ?(routers = 4000) ?(landmark_count = 8)
    ?(landmark_policy = Nearby.Landmark.Medium_degree) ?latency ~peers ~seed () =
  if peers < 1 then invalid_arg "Workload.build: need at least one peer";
  let rng = Prelude.Prng.create seed in
  let map = Topology.Gen_magoni.generate (Topology.Gen_magoni.default_params routers) ~seed in
  let graph = map.graph in
  (* Attachment points: the map's degree-1 leaf routers.  Distinct routers
     while the population fits (the paper's "attaching n peers to routers
     with degree equals to one"); with replacement only when peers outnumber
     leaves. *)
  let leaves = map.leaves in
  if Array.length leaves = 0 then invalid_arg "Workload.build: map has no degree-1 routers";
  let peer_routers =
    if peers <= Array.length leaves then
      Array.map (fun i -> leaves.(i))
        (Prelude.Prng.sample_without_replacement rng ~k:peers ~n:(Array.length leaves))
    else Array.init peers (fun _ -> leaves.(Prelude.Prng.int rng (Array.length leaves)))
  in
  let landmarks = Nearby.Landmark.place graph landmark_policy ~count:landmark_count ~rng in
  let latency_table = Option.map (fun model -> Topology.Latency.assign graph model ~seed:(seed + 7919)) latency in
  let ctx = Nearby.Selector.make_context ?latency:latency_table graph ~peer_routers in
  { map; peer_routers; landmarks; ctx; rng }

let graph t = t.map.graph
let peer_count t = Array.length t.peer_routers
