(* The bench regression gate: compare freshly generated BENCH_*.json
   documents against committed baselines and fail beyond tolerance.

   CI machines differ wildly in absolute speed, so raw ops/s or ns numbers
   are useless as a gate.  Every timing metric is therefore normalized to
   the tree backend measured in the same run — relative throughput and
   relative tails cancel the machine — while the resilience numbers
   (completion rate, simulated-ms latency) are deterministic in the seed
   and compared almost exactly.  Booleans (answers_identical, consistent)
   are exact.

   A metric present in the baseline but missing from the current document
   fails the gate: silently dropping a measurement is how regressions
   hide.  New metrics in the current document pass (they will gate once
   the baseline is updated). *)

type direction = Higher_better | Lower_better | Exact

type metric = {
  name : string;
  value : float;
  direction : direction;
  tolerance : float;  (* allowed fractional drift in the bad direction *)
}

type comparison = {
  name : string;
  baseline : float;
  current : float option;  (* None: metric disappeared *)
  ok : bool;
}

(* --- Extraction -------------------------------------------------------- *)

let fail fmt = Printf.ksprintf failwith fmt

let num doc path_keys =
  match Option.bind (Simkit.Json.path path_keys doc) Simkit.Json.to_float with
  | Some v -> v
  | None -> fail "missing number at %s" (String.concat "." path_keys)

let boolean doc path_keys =
  match Option.bind (Simkit.Json.path path_keys doc) Simkit.Json.to_bool with
  | Some v -> v
  | None -> fail "missing bool at %s" (String.concat "." path_keys)

let str doc path_keys =
  match Option.bind (Simkit.Json.path path_keys doc) Simkit.Json.to_string with
  | Some v -> v
  | None -> fail "missing string at %s" (String.concat "." path_keys)

let rows doc key =
  match Option.bind (Simkit.Json.member key doc) Simkit.Json.to_list with
  | Some rows -> rows
  | None -> fail "missing array %S" key

(* The scaling sweep ("sweep" array of BENCH_registry.json): per sweep
   point, exact structural gates (member counts, cross-backend answer
   equivalence) plus machine-normalized ratios — sharded throughput
   relative to the tree of the same run, and bytes/member relative to the
   committed baseline (a pure allocation count, so it needs no
   normalization, only slack for rounding).  Points above 100k members are
   NOT gated: the CI job sweeps to 100k (`--sweep-max 100000`), and a
   metric present in the baseline but missing from the current document
   fails the gate by design. *)
let sweep_metrics doc =
  let rows =
    match Option.bind (Simkit.Json.member "sweep" doc) Simkit.Json.to_list with
    | Some rows -> rows
    | None -> []
  in
  let rows =
    List.filter (fun row -> int_of_float (num row [ "n" ]) <= 100_000) rows
  in
  let point row = int_of_float (num row [ "n" ]) in
  let backend row = str row [ "backend" ] in
  let tree_query_at n =
    match
      List.find_opt (fun row -> point row = n && backend row = "tree") rows
    with
    | Some row -> num row [ "query_ops_per_s" ]
    | None -> fail "BENCH_registry sweep: no tree row at n=%d" n
  in
  List.concat_map
    (fun row ->
      let n = point row in
      let b = backend row in
      let key metric = Printf.sprintf "registry/sweep/%d/%s/%s" n b metric in
      let structural =
        [
          {
            name = key "answers_identical";
            value = (if boolean row [ "answers_identical" ] then 1.0 else 0.0);
            direction = Exact;
            tolerance = 0.0;
          };
          {
            name = key "members";
            value = num row [ "members" ];
            direction = Exact;
            tolerance = 0.0;
          };
          {
            name = key "bytes_per_member";
            value = num row [ "approx_bytes" ] /. Float.max 1.0 (num row [ "members" ]);
            direction = Lower_better;
            tolerance = 0.5;
          };
        ]
      in
      if b = "tree" then structural
      else
        {
          name = key "query_rel_tree";
          value = num row [ "query_ops_per_s" ] /. tree_query_at n;
          direction = Higher_better;
          tolerance = 0.5;
        }
        :: structural)
    rows

(* BENCH_registry.json: throughput relative to the tree backend of the same
   run, plus the answers-identical invariant. *)
let registry_metrics doc =
  let backends = rows doc "backends" in
  let name_of row = str row [ "backend" ] in
  let tree =
    match List.find_opt (fun row -> name_of row = "tree") backends with
    | Some row -> row
    | None -> fail "BENCH_registry: no tree backend row"
  in
  let tree_insert = num tree [ "insert_ops_per_s" ] in
  let tree_query = num tree [ "query_ops_per_s" ] in
  List.concat_map
    (fun row ->
      let b = name_of row in
      let identical =
        {
          name = Printf.sprintf "registry/%s/answers_identical" b;
          value = (if boolean row [ "answers_identical" ] then 1.0 else 0.0);
          direction = Exact;
          tolerance = 0.0;
        }
      in
      if b = "tree" then [ identical ]
      else
        [
          {
            name = Printf.sprintf "registry/%s/insert_rel_tree" b;
            value = num row [ "insert_ops_per_s" ] /. tree_insert;
            direction = Higher_better;
            tolerance = 0.6;
          };
          {
            name = Printf.sprintf "registry/%s/query_rel_tree" b;
            value = num row [ "query_ops_per_s" ] /. tree_query;
            direction = Higher_better;
            tolerance = 0.6;
          };
          identical;
        ])
    backends
  @ sweep_metrics doc

(* The quantile sketch's measured fidelity on a deterministic sample set:
   the error is a pure function of the seed, so it gates tightly — a
   bucketing regression shows up as a bound violation, not noise. *)
let obs_sketch_metrics doc =
  [
    {
      name = "obs/sketch/within_bound";
      value = (if boolean doc [ "sketch"; "within_bound" ] then 1.0 else 0.0);
      direction = Exact;
      tolerance = 0.0;
    };
    {
      name = "obs/sketch/max_rel_err";
      value = num doc [ "sketch"; "max_rel_err" ];
      direction = Lower_better;
      tolerance = 0.5;
    };
  ]

(* The merged fleet view runs on the simulated clock, so completion and
   the merged tail are deterministic in the seed (resilience-style
   tolerances); the sketch-bound check is structural and gates exactly. *)
let obs_fleet_metrics doc =
  [
    {
      name = "obs/fleet/completion_rate";
      value = num doc [ "fleet"; "completion_rate" ];
      direction = Higher_better;
      tolerance = 0.02;
    };
    {
      name = "obs/fleet/merged_p99_ms";
      value = num doc [ "fleet"; "merged_p99_ms" ];
      direction = Lower_better;
      tolerance = 0.15;
    };
    {
      name = "obs/fleet/within_bound";
      value = (if boolean doc [ "fleet"; "within_bound" ] then 1.0 else 0.0);
      direction = Exact;
      tolerance = 0.0;
    };
    {
      name = "obs/fleet/shard_skew";
      value = num doc [ "fleet"; "shard_skew" ];
      direction = Lower_better;
      tolerance = 0.5;
    };
  ]

(* BENCH_obs.json: p99 latency relative to the tree backend.  Tails are the
   noisiest numbers we gate on, hence the widest tolerance.  The exemplar
   and introspection numbers, by contrast, are deterministic in the seed:
   exemplars must be present (the trace-id tagging path stays wired up) and
   the structural counts must not drift. *)
let obs_metrics doc =
  let backends = rows doc "backends" in
  let name_of row = str row [ "backend" ] in
  let tree =
    match List.find_opt (fun row -> name_of row = "tree") backends with
    | Some row -> row
    | None -> fail "BENCH_obs: no tree backend row"
  in
  let tree_insert = num tree [ "insert_ns"; "p99" ] in
  let tree_query = num tree [ "query_ns"; "p99" ] in
  List.concat_map
    (fun row ->
      let b = name_of row in
      let exact name value = { name; value; direction = Exact; tolerance = 0.0 } in
      let structural =
        [
          exact
            (Printf.sprintf "obs/%s/exemplars_present" b)
            (if num row [ "insert_exemplars" ] > 0.0 && num row [ "query_exemplars" ] > 0.0
             then 1.0
             else 0.0);
          exact
            (Printf.sprintf "obs/%s/introspect_members" b)
            (num row [ "introspect"; "members" ]);
          exact
            (Printf.sprintf "obs/%s/introspect_routers" b)
            (num row [ "introspect"; "routers" ]);
        ]
      in
      if b = "tree" then structural
      else
        [
          {
            name = Printf.sprintf "obs/%s/insert_p99_rel_tree" b;
            value = num row [ "insert_ns"; "p99" ] /. tree_insert;
            direction = Lower_better;
            tolerance = 1.5;
          };
          {
            name = Printf.sprintf "obs/%s/query_p99_rel_tree" b;
            value = num row [ "query_ns"; "p99" ] /. tree_query;
            direction = Lower_better;
            tolerance = 1.5;
          };
        ]
        @ structural)
    backends
  @ obs_sketch_metrics doc @ obs_fleet_metrics doc

(* BENCH_resilience.json: deterministic in the seed (simulated clock, no
   wall time), so the tolerances are tight. *)
let resilience_metrics doc =
  rows doc "runs"
  |> List.concat_map (fun row ->
         let key =
           Printf.sprintf "resilience/%s/r%d" (str row [ "scenario" ])
             (int_of_float (num row [ "replicas" ]))
         in
         [
           {
             name = key ^ "/completion_rate";
             value = num row [ "completion_rate" ];
             direction = Higher_better;
             tolerance = 0.02;
           };
           {
             name = key ^ "/join_p99_ms";
             value = num row [ "join_p99_ms" ];
             direction = Lower_better;
             tolerance = 0.15;
           };
           {
             name = key ^ "/consistent";
             value = (if boolean row [ "consistent" ] then 1.0 else 0.0);
             direction = Exact;
             tolerance = 0.0;
           };
         ])

let load_metrics doc =
  rows doc "runs"
  |> List.concat_map (fun row ->
         let key =
           Printf.sprintf "load/%s/%s" (str row [ "arrival" ]) (str row [ "policy" ])
         in
         [
           {
             name = key ^ "/completion_rate";
             value = num row [ "completion_rate" ];
             direction = Higher_better;
             tolerance = 0.02;
           };
           {
             name = key ^ "/join_p99_ms";
             value = num row [ "join_p99_ms" ];
             direction = Lower_better;
             tolerance = 0.15;
           };
           {
             name = key ^ "/goodput_per_s";
             value = num row [ "goodput_per_s" ];
             direction = Higher_better;
             tolerance = 0.1;
           };
           {
             name = key ^ "/shed_fraction";
             value = num row [ "shed_fraction" ];
             direction = Lower_better;
             tolerance = 0.2;
           };
           (* The headline bit: under the flash crowd the SLO shedder holds
              the admitted p99 inside the budget, drop-tail does not. *)
           {
             name = key ^ "/p99_within_budget";
             value = (if boolean row [ "p99_within_budget" ] then 1.0 else 0.0);
             direction = Exact;
             tolerance = 0.0;
           };
           {
             name = key ^ "/sheds_when_saturated";
             value =
               (if num row [ "saturation" ] > 1.0 = (num row [ "shed_fraction" ] > 0.0) then 1.0
                else 0.0);
             direction = Exact;
             tolerance = 0.0;
           };
         ])

(* BENCH_wire.json: byte counts on the simulated wire are pure functions
   of the seed — no wall clock anywhere — so everything gates tightly.
   The structural bits (accounting reconciles, amplification equals the
   replica count, batching actually saves upload bytes) are exact. *)
let wire_metrics doc =
  let w path = num doc ("wire" :: path) in
  [
    {
      name = "wire/completion_rate";
      value = w [ "completion_rate" ];
      direction = Higher_better;
      tolerance = 0.02;
    };
    {
      name = "wire/bytes_per_join";
      value = w [ "bytes_per_join" ];
      direction = Lower_better;
      tolerance = 0.1;
    };
    {
      name = "wire/bytes_per_query";
      value = w [ "bytes_per_query" ];
      direction = Lower_better;
      tolerance = 0.1;
    };
    {
      name = "wire/replication_amplification";
      value = w [ "replication_amplification" ];
      direction = Exact;
      tolerance = 0.0;
    };
    {
      name = "wire/snapshot_bytes_per_join";
      value = w [ "snapshot_bytes" ] /. Float.max 1.0 (w [ "joins" ]);
      direction = Lower_better;
      tolerance = 0.5;
    };
    {
      name = "wire/batch_saving_ratio";
      value = w [ "batch_saving_ratio" ];
      direction = Higher_better;
      tolerance = 0.05;
    };
    {
      name = "wire/batch_saves_bytes";
      value = (if w [ "batch_saving_ratio" ] > 1.0 then 1.0 else 0.0);
      direction = Exact;
      tolerance = 0.0;
    };
    {
      name = "wire/accounted";
      value = (if boolean doc [ "wire"; "accounted" ] then 1.0 else 0.0);
      direction = Exact;
      tolerance = 0.0;
    };
  ]

let health_metrics doc =
  let h path = num doc ("health" :: path) in
  [
    {
      name = "health/completion_rate";
      value = h [ "completion_rate" ];
      direction = Higher_better;
      tolerance = 0.02;
    };
    (* Structural: the loss burst must produce at least one detected
       divergence episode, and every episode must close. *)
    {
      name = "health/divergence_detected";
      value = (if h [ "divergence_episodes" ] > 0.0 then 1.0 else 0.0);
      direction = Exact;
      tolerance = 0.0;
    };
    {
      name = "health/episodes_closed";
      value =
        (if h [ "divergence_episodes" ] = h [ "convergence_episodes" ] then 1.0 else 0.0);
      direction = Exact;
      tolerance = 0.0;
    };
    {
      name = "health/converged";
      value = (if boolean doc [ "health"; "converged" ] then 1.0 else 0.0);
      direction = Exact;
      tolerance = 0.0;
    };
    {
      name = "health/detection_latency_ms";
      value = h [ "detection_latency_ms" ];
      direction = Lower_better;
      tolerance = 0.5;
    };
    {
      name = "health/lag_p50_ms";
      value = h [ "lag_p50_ms" ];
      direction = Lower_better;
      tolerance = 0.5;
    };
    {
      name = "health/report_age_p50_ms";
      value = h [ "report_age_p50_ms" ];
      direction = Lower_better;
      tolerance = 0.25;
    };
    {
      name = "health/digest_gate_saves_transfers";
      value = (if h [ "sync_skipped" ] > 0.0 then 1.0 else 0.0);
      direction = Exact;
      tolerance = 0.0;
    };
  ]

(* --- Comparison -------------------------------------------------------- *)

let within (m : metric) ~baseline ~current =
  match m.direction with
  | Exact -> current = baseline
  | Higher_better -> current >= baseline *. (1.0 -. m.tolerance)
  | Lower_better -> current <= baseline *. (1.0 +. m.tolerance)

(* [baseline]/[current] are the same extractor applied to the two
   documents; direction and tolerance are taken from the baseline side so
   a tolerance edit gates from the commit that updates the baseline. *)
let compare_metrics ~baseline ~current =
  List.map
    (fun (b : metric) ->
      match List.find_opt (fun (c : metric) -> c.name = b.name) current with
      | None -> { name = b.name; baseline = b.value; current = None; ok = false }
      | Some c ->
          {
            name = b.name;
            baseline = b.value;
            current = Some c.value;
            ok = within b ~baseline:b.value ~current:c.value;
          })
    baseline

let failures comparisons = List.filter (fun c -> not c.ok) comparisons

let print comparisons =
  Prelude.Table.print
    ~header:[ "metric"; "baseline"; "current"; "status" ]
    (List.map
       (fun c ->
         [
           c.name;
           Prelude.Table.float_cell ~decimals:4 c.baseline;
           (match c.current with
           | Some v -> Prelude.Table.float_cell ~decimals:4 v
           | None -> "MISSING");
           (if c.ok then "ok" else "FAIL");
         ])
       comparisons)
