type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  replicas : int;
  loss : float;
  scenario : string;
  arrival_window_ms : float;
  sync_period_ms : float;
  rpc : Simkit.Rpc.config;
  detector : Simkit.Failure_detector.config;
  slos : Simkit.Slo.spec list;
  slo_window_ms : float;
  audit_rate : float;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    peers = 300;
    landmark_count = 8;
    k = 5;
    replicas = 3;
    loss = 0.0;
    scenario = "crash-primary";
    arrival_window_ms = 8_000.0;
    sync_period_ms = 2_000.0;
    rpc = Simkit.Rpc.default_config;
    detector = Simkit.Failure_detector.default_config;
    slos = [];
    slo_window_ms = 500.0;
    audit_rate = 0.0;
    seed = 1;
  }

let quick_config = { default_config with routers = 800; peers = 120 }

let scenario_names = [ "none"; "crash-primary"; "loss-burst"; "partition" ]

type result = {
  scenario : string;
  replicas : int;
  loss : float;
  joins : int;
  completed : int;
  failed : int;
  completion_rate : float;
  join_p50_ms : float;
  join_p99_ms : float;
  rpc_attempts : int;
  rpc_retries : int;
  rpc_timeouts : int;
  rpc_gave_up : int;
  suspicions : int;
  sync_rounds : int;
  recovery_ms : float option;
  consistent : bool;
  live_peer_counts : int list;
  dropped_loss : int;
  dropped_unreachable : int;
  dropped_partition : int;
  slo_breaches : string list;
}

(* Everything worth keeping after a run besides the headline numbers: the
   live traces, the windowed timeseries the SLOs were judged on, the
   flight recorder, and the final SLO verdicts.  The CLI uses these for
   --metrics-out / --prom-out / --flight-out; tests poke at them
   directly. *)
type artifacts = {
  exp_trace : Simkit.Trace.t;
  rpc_trace : Simkit.Trace.t;
  cluster_trace : Simkit.Trace.t;
  transport_counters : (string * int) list;
  audit_trace : Simkit.Trace.t option;
  timeseries : Simkit.Timeseries.t;
  recorder : Simkit.Flight_recorder.t;
  slo_statuses : Simkit.Slo.status list;
}

(* Partition scenario target: the primary replica's router and its direct
   graph neighbors — a one-hop subtree cut off from the rest of the map. *)
let partition_ball graph ~center =
  center :: Array.to_list (Topology.Graph.neighbors graph center)

let scenario_of config ~graph ~primary_router : Simkit.Fault.t =
  let w = config.arrival_window_ms in
  match config.scenario with
  | "none" -> Simkit.Fault.none
  | "crash-primary" ->
      Simkit.Fault.crash_primary ~crash_at:(0.25 *. w) ~recover_at:(0.75 *. w) ()
  | "loss-burst" ->
      Simkit.Fault.loss_burst ~base:config.loss ~from_ms:(0.25 *. w) ~until_ms:(0.6 *. w)
        ~loss:0.3 ()
  | "partition" ->
      Simkit.Fault.partition_window ~from_ms:(0.25 *. w) ~until_ms:(0.6 *. w)
        ~nodes:(partition_ball graph ~center:primary_router) ()
  | other ->
      invalid_arg
        (Printf.sprintf "Resilience_exp: unknown scenario %S (expected %s)" other
           (String.concat " | " scenario_names))

let run_instrumented ?(spans = Simkit.Span.noop) (config : config) =
  if config.replicas < 1 then invalid_arg "Resilience_exp: replicas must be >= 1";
  if config.loss < 0.0 || config.loss >= 1.0 then
    invalid_arg "Resilience_exp: loss outside [0, 1)";
  let w =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
      ~peers:config.peers ~seed:config.seed ()
  in
  let graph = Workload.graph w in
  let engine = Simkit.Engine.create () in
  let transport =
    Simkit.Transport.create ~rng:(Prelude.Prng.split w.rng) ~loss_prob:config.loss engine
      w.ctx.oracle
  in
  let recorder = Simkit.Flight_recorder.create ~capacity:1024 () in
  (* Replica hosts: medium-degree routers, like landmarks but an
     independent draw (management servers are infrastructure, not peers). *)
  let replica_routers =
    Nearby.Landmark.place graph Medium_degree ~count:config.replicas
      ~rng:(Prelude.Prng.split w.rng)
  in
  let client_router = w.map.core.(0) in
  (* One shared sink for cluster, RPC layer and servers: a single span-id
     space, so cross-component parent links resolve inside one file. *)
  let cluster =
    Nearby.Cluster.create ~detector_config:config.detector ~transport ~client_router ~spans
      ~make_server:(fun () ->
        Nearby.Server.create ?latency:w.ctx.latency ~spans w.ctx.oracle ~landmarks:w.landmarks)
      ~restore_server:(fun data ->
        Nearby.Server.restore ?latency:w.ctx.latency ~spans w.ctx.oracle data)
      ~routers:replica_routers ~recorder ()
  in
  let rpc =
    Simkit.Rpc.create ~config:config.rpc ~rng:(Prelude.Prng.split w.rng) ~recorder ~spans
      transport
  in
  let protocol = Nearby.Protocol.create_resilient ?latency:w.ctx.latency ~rpc cluster in
  (* Fault script wired to the real knobs. *)
  let fault = scenario_of config ~graph ~primary_router:replica_routers.(0) in
  Simkit.Fault.install ~recorder fault ~engine
    ~hooks:
      {
        Simkit.Fault.crash_replica = (fun i -> Nearby.Cluster.crash cluster i);
        recover_replica = (fun i -> Nearby.Cluster.recover cluster i);
        set_loss = (fun p -> Simkit.Transport.set_loss_prob transport p);
        partition = (fun nodes -> Simkit.Transport.set_partition_nodes transport nodes);
        heal_partition = (fun () -> Simkit.Transport.clear_partition transport);
      };
  (* Horizon: every arrival has started, the slowest possible RPC (all
     attempts timing out, backoffs included) has resolved, and at least a
     couple of sync rounds have run past the last fault action. *)
  let worst_rpc_ms =
    let c = config.rpc in
    let backoffs = ref 0.0 in
    for a = 1 to c.max_attempts - 1 do
      backoffs :=
        !backoffs
        +. (c.backoff_base_ms *. (c.backoff_multiplier ** float_of_int (a - 1)) *. (1.0 +. c.jitter_frac))
    done;
    (float_of_int c.max_attempts *. c.timeout_ms) +. !backoffs
  in
  let horizon =
    config.arrival_window_ms +. worst_rpc_ms +. (3.0 *. config.sync_period_ms) +. 1_000.0
  in
  Nearby.Cluster.start_sync cluster ~period_ms:config.sync_period_ms ~until:horizon;
  let exp_trace = Simkit.Trace.create () in
  (* The windowed view the SLOs are judged on: size the ring so no window
     inside the horizon is ever evicted. *)
  if config.slo_window_ms <= 0.0 then invalid_arg "Resilience_exp: slo_window_ms must be positive";
  let timeseries =
    Simkit.Timeseries.create
      ~capacity:(max 64 (int_of_float (horizon /. config.slo_window_ms) + 8))
      ~window_ms:config.slo_window_ms ()
  in
  let auditor =
    if config.audit_rate > 0.0 then
      Some
        (Nearby.Audit.create ~rate:config.audit_rate ~seed:config.seed ~timeseries
           ~clock:(fun () -> Simkit.Engine.now engine)
           (Nearby.Cluster.measurement_server cluster))
    else None
  in
  let monitor = Simkit.Slo.monitor config.slos in
  let breached_ever = ref [] in
  (* Poll the SLOs once per window; the monitor fires only on transition
     edges, each of which lands in the flight recorder. *)
  if config.slos <> [] then begin
    let on_breach (st : Simkit.Slo.status) =
      if not (List.mem st.spec.name !breached_ever) then
        breached_ever := st.spec.name :: !breached_ever;
      (* Cross-link the breach to a concrete offender: the trace id behind
         the worst join-latency bucket seen so far, when joins are being
         traced.  Jumping from the breach event to the span tree is exactly
         the debugging move the exemplars exist for. *)
      let exemplar_args =
        match Simkit.Trace.top_exemplar exp_trace "join_ms" with
        | Some (e : Simkit.Trace.exemplar) ->
            [ ("exemplar_trace_id", Simkit.Span.Int e.trace_id) ]
        | None -> []
      in
      Simkit.Flight_recorder.record recorder ~ts:(Simkit.Engine.now engine) ~kind:"slo"
        ~args:
          ([
             ("burn_rate", Simkit.Span.Float st.burn_rate);
             ("worst", Simkit.Span.Float st.worst);
           ]
          @ exemplar_args)
        ("breach: " ^ st.spec.name)
    in
    let on_clear (st : Simkit.Slo.status) =
      Simkit.Flight_recorder.record recorder ~ts:(Simkit.Engine.now engine) ~kind:"slo"
        ~args:[ ("burn_rate", Simkit.Span.Float st.burn_rate) ]
        ("clear: " ^ st.spec.name)
    in
    let rec poll_at t =
      if t <= horizon then
        Simkit.Engine.schedule_at engine ~time:t (fun () ->
            ignore (Simkit.Slo.poll ~on_breach ~on_clear monitor timeseries);
            poll_at (t +. config.slo_window_ms))
    in
    poll_at config.slo_window_ms
  end;
  let completed = ref 0 and failed = ref 0 in
  for peer = 0 to config.peers - 1 do
    let at = Prelude.Prng.float w.rng config.arrival_window_ms in
    Simkit.Engine.schedule_at engine ~time:at (fun () ->
        let started = Simkit.Engine.now engine in
        Simkit.Timeseries.observe timeseries "join_started" ~now:started 1.0;
        (* Remember which trace this join opened so its latency sample can
           carry the trace id as an exemplar tag (0 when tracing is off). *)
        let join_trace = ref 0 in
        Nearby.Protocol.join protocol ~peer ~attach_router:w.peer_routers.(peer) ~k:config.k
          ~on_trace:(fun ctx -> join_trace := ctx.Simkit.Span.trace_id)
          ~on_complete:(fun _info reply ->
            incr completed;
            let now = Simkit.Engine.now engine in
            Simkit.Trace.observe ~trace_id:!join_trace exp_trace "join_ms" (now -. started);
            Simkit.Timeseries.observe timeseries "join_ms" ~now (now -. started);
            Simkit.Timeseries.observe timeseries "join_completed" ~now 1.0;
            match auditor with
            | Some a -> Nearby.Audit.sample_reply a ~peer ~reply
            | None -> ())
          ~on_failure:(fun () ->
            incr failed;
            let now = Simkit.Engine.now engine in
            Simkit.Timeseries.observe timeseries "join_failed" ~now 1.0))
  done;
  Simkit.Engine.run engine ~until:horizon;
  (* Settle: one final reconciliation so the consistency check sees the
     state anti-entropy converges to, not a mid-period cut. *)
  Nearby.Cluster.sync_round cluster;
  Nearby.Cluster.check_invariants cluster;
  let rpc_trace = Simkit.Rpc.trace rpc in
  let cluster_trace = Nearby.Cluster.trace cluster in
  let transport_stat name = List.assoc name (Simkit.Transport.stats transport) in
  let quantile q =
    match Simkit.Trace.quantile exp_trace "join_ms" q with Some v -> v | None -> nan
  in
  let live_peer_counts =
    List.init (Nearby.Cluster.replica_count cluster) (fun i -> i)
    |> List.filter (Nearby.Cluster.is_alive cluster)
    |> List.map (fun i -> Nearby.Server.peer_count (Nearby.Cluster.server_of cluster i))
  in
  {
    scenario = fault.name;
    replicas = config.replicas;
    loss = config.loss;
    joins = config.peers;
    completed = !completed;
    failed = !failed;
    completion_rate = float_of_int !completed /. float_of_int config.peers;
    join_p50_ms = quantile 0.5;
    join_p99_ms = quantile 0.99;
    rpc_attempts = Simkit.Trace.counter rpc_trace "rpc_attempts";
    rpc_retries = Simkit.Trace.counter rpc_trace "rpc_retries";
    rpc_timeouts = Simkit.Trace.counter rpc_trace "rpc_timeouts";
    rpc_gave_up = Simkit.Trace.counter rpc_trace "rpc_gave_up";
    suspicions = Simkit.Trace.counter cluster_trace "cluster_suspected";
    sync_rounds = Simkit.Trace.counter cluster_trace "cluster_sync_rounds";
    recovery_ms =
      (match Simkit.Trace.summary cluster_trace "cluster_recovery_ms" with
      | Some s when s.count > 0 -> Some s.mean
      | _ -> None);
    consistent = Nearby.Cluster.consistent cluster;
    live_peer_counts;
    dropped_loss = transport_stat "dropped_loss";
    dropped_unreachable = transport_stat "dropped_unreachable";
    dropped_partition = transport_stat "dropped_partition";
    slo_breaches = List.rev !breached_ever;
  },
  {
    exp_trace;
    rpc_trace;
    cluster_trace;
    transport_counters = Simkit.Transport.stats transport;
    audit_trace = Option.map Nearby.Audit.trace auditor;
    timeseries;
    recorder;
    slo_statuses = Simkit.Slo.check timeseries config.slos;
  }

let run config = fst (run_instrumented config)

let result_json (r : result) =
  let fl v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  Printf.sprintf
    {|{"scenario": %s, "replicas": %d, "loss": %.3f, "joins": %d, "completed": %d, "failed": %d, "completion_rate": %.4f, "join_p50_ms": %s, "join_p99_ms": %s, "rpc_attempts": %d, "rpc_retries": %d, "rpc_timeouts": %d, "rpc_gave_up": %d, "suspicions": %d, "sync_rounds": %d, "recovery_ms": %s, "consistent": %b, "live_peer_counts": [%s], "dropped_loss": %d, "dropped_unreachable": %d, "dropped_partition": %d, "slo_breaches": [%s]}|}
    (Simkit.Json_str.quote r.scenario) r.replicas r.loss r.joins r.completed r.failed
    r.completion_rate (fl r.join_p50_ms) (fl r.join_p99_ms) r.rpc_attempts r.rpc_retries
    r.rpc_timeouts r.rpc_gave_up r.suspicions r.sync_rounds
    (match r.recovery_ms with Some v -> Printf.sprintf "%.1f" v | None -> "null")
    r.consistent
    (String.concat ", " (List.map string_of_int r.live_peer_counts))
    r.dropped_loss r.dropped_unreachable r.dropped_partition
    (String.concat ", " (List.map Simkit.Json_str.quote r.slo_breaches))

let print (r : result) =
  Printf.printf "Resilience: scenario=%s replicas=%d loss=%.2f\n" r.scenario r.replicas r.loss;
  Prelude.Table.print
    ~header:[ "metric"; "value" ]
    [
      [ "joins"; string_of_int r.joins ];
      [ "completed"; string_of_int r.completed ];
      [ "failed"; string_of_int r.failed ];
      [ "completion rate"; Prelude.Table.float_cell ~decimals:4 r.completion_rate ];
      [ "join p50 (ms)"; Prelude.Table.float_cell ~decimals:1 r.join_p50_ms ];
      [ "join p99 (ms)"; Prelude.Table.float_cell ~decimals:1 r.join_p99_ms ];
      [ "rpc attempts"; string_of_int r.rpc_attempts ];
      [ "rpc retries"; string_of_int r.rpc_retries ];
      [ "rpc timeouts"; string_of_int r.rpc_timeouts ];
      [ "rpc gave up"; string_of_int r.rpc_gave_up ];
      [ "suspicions"; string_of_int r.suspicions ];
      [ "sync rounds"; string_of_int r.sync_rounds ];
      [
        "recovery (ms)";
        (match r.recovery_ms with
        | Some v -> Prelude.Table.float_cell ~decimals:1 v
        | None -> "-");
      ];
      [ "consistent"; string_of_bool r.consistent ];
      [
        "live peer counts";
        String.concat " " (List.map string_of_int r.live_peer_counts);
      ];
      [ "dropped (loss)"; string_of_int r.dropped_loss ];
      [ "dropped (unreachable)"; string_of_int r.dropped_unreachable ];
      [ "dropped (partition)"; string_of_int r.dropped_partition ];
      [ "slo breaches"; (match r.slo_breaches with [] -> "-" | l -> String.concat " " l) ];
    ]
