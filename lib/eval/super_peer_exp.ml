type config = { routers : int; peers : int; landmark_count : int; k : int; seeds : int list }

let default_config = { routers = 2000; peers = 800; landmark_count = 8; k = 5; seeds = [ 1; 2; 3 ] }
let quick_config = { routers = 800; peers = 200; landmark_count = 4; k = 5; seeds = [ 1 ] }

type row = {
  seed : int;
  ratio_central : float;
  ratio_super : float;
  load_imbalance : float;
  max_region_members : int;
  min_region_members : int;
}

let run config =
  List.map
    (fun seed ->
      let w =
        Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
          ~peers:config.peers ~seed ()
      in
      let n = Array.length w.Workload.peer_routers in
      (* Centralized server. *)
      let server = Nearby.Server.create w.ctx.oracle ~landmarks:w.landmarks in
      let join_rng = Prelude.Prng.split w.rng in
      for peer = 0 to n - 1 do
        ignore (Nearby.Server.join ~rng:join_rng server ~peer ~attach_router:w.peer_routers.(peer))
      done;
      let central_sets =
        Array.init n (fun peer ->
            Nearby.Server.neighbors server ~peer ~k:config.k |> List.map fst |> Array.of_list)
      in
      (* Super-peers: each landmark's super-peer attaches next to its
         landmark (the landmark router itself hosts it). *)
      let supers =
        Nearby.Super_peer.create w.ctx.oracle ~landmarks:w.landmarks ~super_routers:w.landmarks
      in
      let join_rng2 = Prelude.Prng.split w.rng in
      for peer = 0 to n - 1 do
        ignore (Nearby.Super_peer.join ~rng:join_rng2 supers ~peer ~attach_router:w.peer_routers.(peer))
      done;
      let super_sets =
        Array.init n (fun peer ->
            Nearby.Super_peer.neighbors supers ~peer ~k:config.k |> List.map fst |> Array.of_list)
      in
      let outcome =
        Measure.score w.ctx ~k:config.k
          ~named_sets:[ ("central", central_sets); ("super", super_sets) ]
      in
      let ratio_central, ratio_super =
        match outcome.scored with
        | [ c; s ] -> (c.ratio, s.ratio)
        | _ -> assert false
      in
      let loads = Nearby.Super_peer.loads supers in
      let members = List.map (fun (l : Nearby.Super_peer.region_load) -> l.members) loads in
      {
        seed;
        ratio_central;
        ratio_super;
        load_imbalance = Nearby.Super_peer.load_imbalance supers;
        max_region_members = List.fold_left max 0 members;
        min_region_members = List.fold_left min max_int members;
      })
    config.seeds

let print rows =
  print_endline "E2: centralized server vs per-landmark super-peers";
  Prelude.Table.print
    ~header:[ "seed"; "central D/Dcl"; "super D/Dcl"; "imbalance"; "max region"; "min region" ]
    (List.map
       (fun r ->
         [
           string_of_int r.seed;
           Prelude.Table.float_cell r.ratio_central;
           Prelude.Table.float_cell r.ratio_super;
           Prelude.Table.float_cell ~decimals:2 r.load_imbalance;
           string_of_int r.max_region_members;
           string_of_int r.min_region_members;
         ])
       rows)
