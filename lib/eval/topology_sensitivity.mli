(** How much of the mechanism's quality comes from Internet-like structure?

    The paper's argument rests on the heavy-tailed core ("statistical
    regularities observed in the large-scale structure of Internet").  This
    experiment reruns the fig2 comparison on maps with and without that
    structure: Magoni-style and Barabási–Albert (heavy-tailed), an exact
    power-law configuration model, Erdős–Rényi and Waxman (homogeneous —
    the negative controls), and a transit-stub hierarchy (structural core
    without degree heavy tail). *)

type family = Magoni | Ba | Config_model | Er | Waxman | Transit_stub

val family_name : family -> string
val all_families : family list

type config = {
  nodes : int;
  peers : int;
  landmark_count : int;
  k : int;
  families : family list;
  seeds : int list;  (** Independent repetitions, averaged per family. *)
}

val default_config : config
val quick_config : config

type row = {
  family : family;
  gini : float;  (** Degree heavy-tailedness of the map. *)
  ratio_proposed : float;
  ratio_random : float;
  hit_proposed : float;
}

val run : config -> row list
val print : row list -> unit
