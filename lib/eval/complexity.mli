(** The §2 complexity claims: O(log n) insertion, O(1) query access.

    Wall-clock medians of path-tree insertion and query at geometrically
    increasing populations; if the claims hold, [insert us / log2 n] and
    [query us] stay roughly flat while n grows 64x.  (Bechamel micro-benches
    in bench/main.exe measure the same operations with proper isolation;
    this module provides the self-contained table.) *)

type config = {
  routers : int;
  populations : int list;
  k : int;
  queries_per_size : int;
  seed : int;
}

val default_config : config
(** 4000 routers, n in {1000, 4000, 16000, 64000}, k = 5. *)

val quick_config : config

type row = {
  n : int;
  insert_us : float;  (** Mean microseconds per insertion at this size. *)
  query_us : float;
  naive_query_us : float;
      (** Same query on the {!Nearby.Naive_registry} strawman (exhaustive
          scan) — the ablation showing what the ordered buckets buy. *)
  insert_per_log : float;  (** [insert_us / log2 n] — flat under O(log n). *)
}

val run : config -> row list
val print : row list -> unit
