type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;
  inflations : float list;
  seed : int;
}

let default_config =
  {
    routers = 2000;
    peers = 500;
    landmark_count = 8;
    k = 5;
    inflations = [ 0.0; 0.25; 0.5; 1.0; 2.0; 4.0 ];
    seed = 1;
  }

let quick_config =
  { routers = 600; peers = 150; landmark_count = 6; k = 5; inflations = [ 0.0; 1.0; 4.0 ]; seed = 1 }

type row = {
  inflation : float;
  route_stretch : float;
  route_divergence : float;
  ratio_proposed : float;
  ratio_random : float;
  hit_proposed : float;
}

let run config =
  let base =
    Workload.build ~routers:config.routers ~landmark_count:config.landmark_count
      ~peers:config.peers ~seed:config.seed ()
  in
  let graph = base.Workload.map.graph in
  List.map
    (fun inflation ->
      let oracle = Traceroute.Route_oracle.create_inflated graph ~inflation ~seed:(config.seed + 17) in
      let ctx : Nearby.Selector.context =
        { graph; oracle; latency = None; peer_routers = base.peer_routers }
      in
      let rng = Prelude.Prng.create (config.seed + 23) in
      let proposed =
        Nearby.Selector.select ctx
          (Proposed { landmarks = base.landmarks; truncate = Traceroute.Truncate.Full })
          ~k:config.k ~rng
      in
      let random = Nearby.Selector.select ctx Random_peers ~k:config.k ~rng in
      let outcome =
        Measure.score ctx ~k:config.k ~named_sets:[ ("p", proposed); ("r", random) ]
      in
      let ratio_proposed, ratio_random, hit_proposed =
        match outcome.scored with
        | [ p; r ] -> (p.ratio, r.ratio, p.hit_ratio)
        | _ -> assert false
      in
      (* Route stretch and divergence vs the hop-shortest oracle, over a
         peer sample.  On access-tree maps most deviations are equal-length
         detours in the core, so divergence (did the recorded route change
         at all?) is the telling statistic. *)
      let hop_oracle = Traceroute.Route_oracle.create graph in
      let stretch = Prelude.Stats.create () in
      let diverged = ref 0 and sampled = ref 0 in
      Array.iteri
        (fun i attach ->
          if i mod 5 = 0 then begin
            let lmk, _ = Nearby.Landmark.closest oracle ~landmarks:base.landmarks attach in
            let recorded = Traceroute.Route_oracle.route oracle ~src:attach ~dst:lmk in
            let shortest = Topology.Bfs.distance graph attach lmk in
            if shortest > 0 && recorded <> [] then begin
              incr sampled;
              Prelude.Stats.add stretch
                (float_of_int (List.length recorded - 1) /. float_of_int shortest);
              if recorded <> Traceroute.Route_oracle.route hop_oracle ~src:attach ~dst:lmk then
                incr diverged
            end
          end)
        base.peer_routers;
      {
        inflation;
        route_stretch = Prelude.Stats.mean stretch;
        route_divergence =
          (if !sampled = 0 then 0.0 else float_of_int !diverged /. float_of_int !sampled);
        ratio_proposed;
        ratio_random;
        hit_proposed;
      })
    config.inflations

let print rows =
  print_endline "inflation: discovery quality under policy routing (non-shortest paths)";
  Prelude.Table.print
    ~header:
      [ "inflation"; "route stretch"; "routes diverged"; "D/Dcl proposed"; "D/Dcl random"; "hit" ]
    (List.map
       (fun r ->
         [
           Prelude.Table.float_cell ~decimals:2 r.inflation;
           Prelude.Table.float_cell r.route_stretch;
           Prelude.Table.float_cell r.route_divergence;
           Prelude.Table.float_cell r.ratio_proposed;
           Prelude.Table.float_cell r.ratio_random;
           Prelude.Table.float_cell r.hit_proposed;
         ])
       rows)
