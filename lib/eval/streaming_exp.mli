(** End-to-end application experiment: what proximity-aware neighbor
    selection buys a live-streaming mesh (the paper's §1 motivation).

    Same swarm, same stream, same scheduling — only the mesh neighbor sets
    differ (proposed discovery vs random vs brute-force closest).  Reported
    per selector: playback continuity, startup delay, playback lag and
    chunk propagation latency. *)

type config = {
  routers : int;
  peers : int;
  landmark_count : int;
  k : int;  (** Mesh partners requested per peer. *)
  session : Streaming.Session.params;
  seed : int;
}

val default_config : config
val quick_config : config

type row = {
  selector : string;
  continuity : float;
  mean_startup_ms : float;
  started_fraction : float;
  mean_lag_chunks : float;
  mean_chunk_latency_ms : float;
  megabytes : float;
  link_megabytes : float;  (** Bytes x router hops / 1e6: network stress. *)
}

val run : config -> row list
val print : row list -> unit
