type config = {
  routers : int;
  landmark_count : int;
  k : int;
  peer_counts : int list;
  seeds : int list;
}

let default_config =
  {
    routers = 4000;
    landmark_count = 8;
    k = 5;
    peer_counts = [ 600; 800; 1000; 1200; 1400 ];
    seeds = [ 1; 2; 3 ];
  }

let quick_config =
  { routers = 1500; landmark_count = 8; k = 5; peer_counts = [ 600; 1000; 1400 ]; seeds = [ 1 ] }

type row = {
  n : int;
  ratio_proposed : float;
  ratio_random : float;
  ratio_proposed_ci : float;
  ratio_random_ci : float;
  hit_proposed : float;
}

let run_one config ~n ~seed =
  let w = Workload.build ~routers:config.routers ~landmark_count:config.landmark_count ~peers:n ~seed () in
  let rng = w.rng in
  let proposed =
    Nearby.Selector.select w.ctx
      (Proposed { landmarks = w.landmarks; truncate = Traceroute.Truncate.Full })
      ~k:config.k ~rng
  in
  let random = Nearby.Selector.select w.ctx Random_peers ~k:config.k ~rng in
  let outcome =
    Measure.score w.ctx ~k:config.k ~named_sets:[ ("proposed", proposed); ("random", random) ]
  in
  match outcome.scored with
  | [ p; r ] -> (p.ratio, r.ratio, p.hit_ratio)
  | _ -> assert false

let run config =
  List.map
    (fun n ->
      let prop = Prelude.Stats.create () in
      let rand = Prelude.Stats.create () in
      let hit = Prelude.Stats.create () in
      List.iter
        (fun seed ->
          let rp, rr, h = run_one config ~n ~seed in
          Prelude.Stats.add prop rp;
          Prelude.Stats.add rand rr;
          Prelude.Stats.add hit h)
        config.seeds;
      {
        n;
        ratio_proposed = Prelude.Stats.mean prop;
        ratio_random = Prelude.Stats.mean rand;
        ratio_proposed_ci = Prelude.Stats.ci95_halfwidth prop;
        ratio_random_ci = Prelude.Stats.ci95_halfwidth rand;
        hit_proposed = Prelude.Stats.mean hit;
      })
    config.peer_counts

let print rows =
  print_endline "fig2: neighbor-set quality vs population size";
  print_endline "  (paper: D/Dclosest ~1.1-1.2 and flat; Drandom/Dclosest ~2.2-2.4 and noisy)";
  Prelude.Table.print
    ~header:[ "peers"; "D/Dclosest"; "+/-"; "Drandom/Dclosest"; "+/-"; "hit-ratio" ]
    (List.map
       (fun r ->
         [
           string_of_int r.n;
           Prelude.Table.float_cell r.ratio_proposed;
           Prelude.Table.float_cell r.ratio_proposed_ci;
           Prelude.Table.float_cell r.ratio_random;
           Prelude.Table.float_cell r.ratio_random_ci;
           Prelude.Table.float_cell r.hit_proposed;
         ])
       rows);
  let series label f =
    { Prelude.Ascii_plot.label; points = List.map (fun r -> (float_of_int r.n, f r)) rows }
  in
  print_newline ();
  print_string
    (Prelude.Ascii_plot.render ~y_min:1.0
       [ series "D / Dclosest" (fun r -> r.ratio_proposed);
         series "Drandom / Dclosest" (fun r -> r.ratio_random) ])
