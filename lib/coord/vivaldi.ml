type params = {
  dims : int;
  ce : float;
  cc : float;
  use_height : bool;
  neighbors_per_round : int;
}

let default_params = { dims = 2; ce = 0.25; cc = 0.25; use_height = true; neighbors_per_round = 4 }

type t = {
  params : params;
  coords : Vector.t array;
  heights : float array;
  errors : float array;
  rng : Prelude.Prng.t;
}

let create params ~node_count ~rng =
  if params.dims < 1 then invalid_arg "Vivaldi.create: dims must be >= 1";
  if node_count < 0 then invalid_arg "Vivaldi.create: negative node count";
  {
    params;
    coords = Array.init node_count (fun _ -> Vector.zeros params.dims);
    heights = Array.make node_count 0.0;
    errors = Array.make node_count 1.0;
    rng;
  }

let node_count t = Array.length t.coords

let estimate t i j =
  let base = Vector.distance t.coords.(i) t.coords.(j) in
  if t.params.use_height && i <> j then base +. t.heights.(i) +. t.heights.(j) else base

let local_error t i = t.errors.(i)

let observe t ~i ~j ~rtt =
  if not (Float.is_finite rtt) || rtt < 0.0 then invalid_arg "Vivaldi.observe: bad RTT";
  if i = j then invalid_arg "Vivaldi.observe: self-measurement";
  let predicted = estimate t i j in
  (* Sample weight balances local vs remote confidence. *)
  let w =
    let ei = t.errors.(i) and ej = t.errors.(j) in
    if ei +. ej = 0.0 then 0.5 else ei /. (ei +. ej)
  in
  let sample_error = if rtt > 0.0 then abs_float (predicted -. rtt) /. rtt else 0.0 in
  (* Exponentially-weighted error update. *)
  t.errors.(i) <- Float.min 1.5 ((sample_error *. t.params.cc *. w) +. (t.errors.(i) *. (1.0 -. (t.params.cc *. w))));
  (* Move along the force direction by the adaptive timestep. *)
  let delta = t.params.ce *. w in
  let direction = Vector.unit_toward t.coords.(i) t.coords.(j) ~rng:t.rng in
  let displacement = delta *. (rtt -. predicted) in
  t.coords.(i) <- Vector.add t.coords.(i) (Vector.scale displacement direction);
  if t.params.use_height then begin
    (* The height component absorbs its share of the error; keep it
       non-negative as in the original model. *)
    t.heights.(i) <- Float.max 0.0 (t.heights.(i) +. (displacement *. 0.1))
  end

let run_round t ~measure ~rng =
  let n = node_count t in
  if n > 1 then
    for i = 0 to n - 1 do
      for _ = 1 to t.params.neighbors_per_round do
        let j = Prelude.Prng.int rng (n - 1) in
        let j = if j >= i then j + 1 else j in
        observe t ~i ~j ~rtt:(measure i j)
      done
    done

let run_round_with_neighbors t ~neighbors ~measure ~rng =
  let n = node_count t in
  for i = 0 to n - 1 do
    let candidates = neighbors i in
    if Array.length candidates > 0 then
      for _ = 1 to t.params.neighbors_per_round do
        let j = candidates.(Prelude.Prng.int rng (Array.length candidates)) in
        if j <> i && j >= 0 && j < n then observe t ~i ~j ~rtt:(measure i j)
      done
  done

let relative_error t ~measure ~samples ~rng =
  let n = node_count t in
  if n < 2 || samples <= 0 then 0.0
  else begin
    let errs = Array.make samples 0.0 in
    for s = 0 to samples - 1 do
      let i = Prelude.Prng.int rng n in
      let j = Prelude.Prng.int rng (n - 1) in
      let j = if j >= i then j + 1 else j in
      let actual = measure i j in
      let predicted = estimate t i j in
      errs.(s) <- (if actual > 0.0 then abs_float (predicted -. actual) /. actual else 0.0)
    done;
    Prelude.Stats.median errs
  end
