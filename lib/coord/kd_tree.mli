(** Static k-d tree over coordinate embeddings.

    The coordinate selectors (Vivaldi, GNP) turn "who is closest?" into a
    Euclidean nearest-neighbor problem; scanning all n peers per query is
    O(n²) for the full population.  A k-d tree over the embedding answers
    k-NN in ~O(log n) per query for the low dimensions coordinates use
    (2–5).  Built once over a snapshot; queries never mutate. *)

type t

val build : Vector.t array -> t
(** [build points] — all points must share the same dimension.
    @raise Invalid_argument on an empty array or mixed dimensions. *)

val size : t -> int
val dims : t -> int

val nearest : t -> Vector.t -> int
(** Index of the closest point (ties toward the lower index).
    @raise Invalid_argument on a dimension mismatch. *)

val k_nearest : t -> Vector.t -> k:int -> ?exclude:(int -> bool) -> unit -> (int * float) list
(** At most [k] point indices with their distances, ascending distance then
    index.  [exclude] drops candidates (e.g. the query point itself when it
    is in the tree). *)
