(** Small dense float vectors for coordinate embeddings. *)

type t = float array

val zeros : int -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm : t -> float
val distance : t -> t -> float
val unit_toward : t -> t -> rng:Prelude.Prng.t -> t
(** [unit_toward a b ~rng] is the unit vector pointing from [b] toward [a];
    when the two points coincide, a uniformly random unit direction (the
    Vivaldi "push apart colocated nodes" rule). *)

val pp : Format.formatter -> t -> unit
