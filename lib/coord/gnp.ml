type t = {
  dims : int;
  ids : int array;
  coords : Vector.t array;
  residual : float;
}

(* Squared relative error, the objective GNP recommends: absolute squared
   error would let long paths dominate. *)
let pair_objective predicted actual =
  if actual <= 0.0 then 0.0
  else begin
    let e = (predicted -. actual) /. actual in
    e *. e
  end

let embed_landmarks ~dims ~landmarks ~measure ~rng =
  let k = Array.length landmarks in
  if k < dims + 1 then invalid_arg "Gnp.embed_landmarks: need at least dims + 1 landmarks";
  let rtt = Array.make_matrix k k 0.0 in
  for a = 0 to k - 1 do
    for b = a + 1 to k - 1 do
      let m = measure landmarks.(a) landmarks.(b) in
      rtt.(a).(b) <- m;
      rtt.(b).(a) <- m
    done
  done;
  let mean_rtt =
    let acc = ref 0.0 and cnt = ref 0 in
    for a = 0 to k - 1 do
      for b = a + 1 to k - 1 do
        acc := !acc +. rtt.(a).(b);
        incr cnt
      done
    done;
    if !cnt = 0 then 1.0 else !acc /. float_of_int !cnt
  in
  (* Flatten all landmark coordinates into one optimization vector. *)
  let objective x =
    let coord a = Array.sub x (a * dims) dims in
    let total = ref 0.0 in
    for a = 0 to k - 1 do
      for b = a + 1 to k - 1 do
        total := !total +. pair_objective (Vector.distance (coord a) (coord b)) rtt.(a).(b)
      done
    done;
    !total
  in
  let best = ref None in
  for _restart = 1 to 4 do
    let x0 =
      Array.init (k * dims) (fun _ -> Prelude.Prng.float rng mean_rtt -. (mean_rtt /. 2.0))
    in
    let result = Nelder_mead.minimize ~max_iter:2000 ~f:objective ~x0 ~scale:(mean_rtt /. 4.0) () in
    match !best with
    | Some (b : Nelder_mead.result) when b.f <= result.f -> ()
    | _ -> best := Some result
  done;
  let result = match !best with Some r -> r | None -> assert false in
  {
    dims;
    ids = Array.copy landmarks;
    coords = Array.init k (fun a -> Array.sub result.x (a * dims) dims);
    residual = result.f;
  }

let landmark_ids t = Array.copy t.ids

let landmark_coordinate t i =
  if i < 0 || i >= Array.length t.coords then invalid_arg "Gnp.landmark_coordinate: out of range";
  Array.copy t.coords.(i)

let estimate a b = Vector.distance a b

let place_host t ~rtts =
  if Array.length rtts <> Array.length t.ids then
    invalid_arg "Gnp.place_host: RTT vector length must match landmark count";
  let objective x =
    let total = ref 0.0 in
    Array.iteri
      (fun i lmk_coord -> total := !total +. pair_objective (Vector.distance x lmk_coord) rtts.(i))
      t.coords;
    !total
  in
  (* Start from the centroid of the landmark coordinates. *)
  let x0 = Vector.zeros t.dims in
  Array.iter (fun c -> Array.iteri (fun d v -> x0.(d) <- x0.(d) +. v) c) t.coords;
  let x0 = Vector.scale (1.0 /. float_of_int (Array.length t.coords)) x0 in
  let mean_rtt = Prelude.Stats.mean_of rtts in
  let result = Nelder_mead.minimize ~max_iter:1000 ~f:objective ~x0 ~scale:(Float.max 1.0 (mean_rtt /. 4.0)) () in
  result.x

let fit_error t = t.residual
