type params = {
  ring_base_ms : float;
  rings : int;
  members_per_ring : int;
  beta : float;
}

let default_params = { ring_base_ms = 2.0; rings = 8; members_per_ring = 4; beta = 0.5 }

type t = {
  params : params;
  oracle : Traceroute.Route_oracle.t;
  latency : Topology.Latency.t option;
  peer_routers : Topology.Graph.node array;
  rings : int list array array;  (* peer -> ring index -> member peer ids *)
}

type search_result = {
  found : int;
  rtt_ms : float;
  forwarding_hops : int;
  probes_sent : int;
  elapsed_ms : float;
}

let ping t a_router b_router =
  Traceroute.Probe.ping ?latency:t.latency t.oracle ~src:a_router ~dst:b_router

let ring_index params rtt =
  if rtt < params.ring_base_ms then 0
  else begin
    let i = int_of_float (Float.log2 (rtt /. params.ring_base_ms)) + 1 in
    min i (params.rings - 1)
  end

let build ?latency params oracle ~peer_routers ~rng =
  let n = Array.length peer_routers in
  let t = { params; oracle; latency; peer_routers; rings = Array.make 0 [||] } in
  let rings =
    Array.init n (fun i ->
        (* Bucket every other peer by RTT ring, then sample each bucket. *)
        let buckets = Array.make params.rings [] in
        for j = 0 to n - 1 do
          if j <> i then begin
            let rtt = ping t peer_routers.(i) peer_routers.(j) in
            if Float.is_finite rtt then begin
              let r = ring_index params rtt in
              buckets.(r) <- j :: buckets.(r)
            end
          end
        done;
        Array.map
          (fun candidates ->
            let candidates = Array.of_list candidates in
            if Array.length candidates <= params.members_per_ring then
              List.sort compare (Array.to_list candidates)
            else begin
              let picks =
                Prelude.Prng.sample_without_replacement rng ~k:params.members_per_ring
                  ~n:(Array.length candidates)
              in
              List.sort compare (Array.to_list (Array.map (fun ix -> candidates.(ix)) picks))
            end)
          buckets)
  in
  { t with rings }

let peer_count t = Array.length t.peer_routers

let ring_of t ~peer ~ring =
  if peer < 0 || peer >= peer_count t || ring < 0 || ring >= t.params.rings then
    invalid_arg "Meridian.ring_of: out of range";
  t.rings.(peer).(ring)

(* Ring members whose range brackets the current distance to the target:
   the original protocol contacts rings within a factor of two around it. *)
let candidates_near t ~peer ~rtt =
  let center = ring_index t.params rtt in
  let lo = max 0 (center - 1) and hi = min (t.params.rings - 1) (center + 1) in
  let acc = ref [] in
  for r = lo to hi do
    acc := t.rings.(peer).(r) @ !acc
  done;
  List.sort_uniq compare !acc

let closest_search ?(exclude = fun _ -> false) t ~target_router ~entry =
  let n = peer_count t in
  if n = 0 then invalid_arg "Meridian.closest_search: empty overlay";
  if entry < 0 || entry >= n || exclude entry then invalid_arg "Meridian.closest_search: bad entry";
  let probes = ref 0 in
  let measure peer =
    incr probes;
    ping t t.peer_routers.(peer) target_router
  in
  let rec walk current current_rtt hops elapsed =
    let candidates =
      List.filter (fun c -> not (exclude c)) (candidates_near t ~peer:current ~rtt:current_rtt)
    in
    (* Ring members probe the target in parallel: the step costs the
       slowest probe (relayed through the current holder) plus, on a
       forward, the hop to the chosen member. *)
    let best, best_rtt, slowest =
      List.fold_left
        (fun (bp, br, worst) candidate ->
          let rtt = measure candidate in
          let relay =
            ping t t.peer_routers.(current) t.peer_routers.(candidate) +. rtt
          in
          let worst = Float.max worst relay in
          if rtt < br then (candidate, rtt, worst) else (bp, br, worst))
        (current, current_rtt, 0.0) candidates
    in
    let elapsed = elapsed +. slowest in
    if best <> current && best_rtt <= t.params.beta *. current_rtt then
      walk best best_rtt (hops + 1)
        (elapsed +. ping t t.peer_routers.(current) t.peer_routers.(best))
    else if best <> current && best_rtt < current_rtt then
      (* Improvement below the beta threshold: accept the better node but
         stop forwarding, as the protocol prescribes. *)
      (best, best_rtt, hops, elapsed)
    else (current, current_rtt, hops, elapsed)
  in
  let entry_rtt = ping t t.peer_routers.(entry) target_router in
  incr probes;
  let found, rtt_ms, forwarding_hops, elapsed_ms = walk entry entry_rtt 0 entry_rtt in
  { found; rtt_ms; forwarding_hops; probes_sent = !probes; elapsed_ms }

let k_nearest ?(exclude = fun _ -> false) t ~target_router ~entry ~k =
  if k <= 0 then []
  else begin
    let result = closest_search ~exclude t ~target_router ~entry in
    let pool =
      result.found
      :: List.concat (Array.to_list t.rings.(result.found))
    in
    let pool = List.filter (fun p -> not (exclude p)) (List.sort_uniq compare pool) in
    let scored =
      List.map (fun p -> (ping t t.peer_routers.(p) target_router, p)) pool
    in
    List.sort compare scored
    |> List.filteri (fun i _ -> i < k)
    |> List.map snd
  end
