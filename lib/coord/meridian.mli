(** Meridian-style closest-node discovery (Wong, Slivkins & Sirer, SIGCOMM
    2005) — a third baseline alongside Vivaldi and GNP.

    Meridian forgoes coordinates entirely: every node keeps {e rings} of
    peers at exponentially increasing RTT ranges; to find the node closest
    to a target, the query holder asks its ring members near the target's
    estimated distance to probe the target directly and forwards the query
    to the best prober while the improvement beats the [beta] threshold.

    Simplifications kept honest for our comparison: rings are built from
    ping measurements over the simulated map (the gossip that maintains
    them is charged to the warm-up, not the query), and each search
    accounts the probes it issues so protocol cost is comparable with the
    landmark scheme's traceroute. *)

type t

type params = {
  ring_base_ms : float;  (** Inner ring boundary; ring i covers
                             [base * 2^(i-1), base * 2^i). *)
  rings : int;
  members_per_ring : int;
  beta : float;  (** Forward only if the best prober improves RTT by this
                     factor (original paper uses 0.5). *)
}

val default_params : params
(** base 2 ms, 8 rings, 4 members per ring, beta = 0.5. *)

type search_result = {
  found : int;  (** The closest discovered peer. *)
  rtt_ms : float;  (** Its measured RTT to the target. *)
  forwarding_hops : int;
  probes_sent : int;  (** Target pings issued by ring members. *)
  elapsed_ms : float;
      (** Protocol time of the search: per step, the slowest parallel probe
          relay, plus the forwarding hop — comparable with
          {!Nearby.Protocol.estimate_join_delay}. *)
}

val build :
  ?latency:Topology.Latency.t ->
  params ->
  Traceroute.Route_oracle.t ->
  peer_routers:Topology.Graph.node array ->
  rng:Prelude.Prng.t ->
  t
(** Construct every peer's rings (the steady-state a running Meridian
    overlay converges to).  Candidates per ring are sampled uniformly among
    the peers whose RTT falls in the ring's range. *)

val peer_count : t -> int
val ring_of : t -> peer:int -> ring:int -> int list
(** Members of one ring (for tests). *)

val closest_search :
  ?exclude:(int -> bool) -> t -> target_router:Topology.Graph.node -> entry:int -> search_result
(** Walk the overlay from [entry] toward the peer closest to a target
    attached at [target_router].  [exclude] removes peers from
    consideration (e.g. the target itself when it is already a member).
    @raise Invalid_argument on an empty overlay or a bad/excluded entry. *)

val k_nearest :
  ?exclude:(int -> bool) -> t -> target_router:Topology.Graph.node -> entry:int -> k:int -> int list
(** The search's final peer plus its ring members, ranked by measured RTT
    to the target — Meridian's natural k-NN answer.  At most [k],
    deduplicated, never containing a peer whose id equals [-1]. *)
