(** GNP landmark-based coordinates (Ng & Zhang, INFOCOM 2002).

    The other classic coordinate scheme the paper cites: a fixed set of
    landmarks first embeds itself by minimizing pairwise embedding error,
    then every host solves its own coordinate from RTTs to the landmarks.
    Deterministic given the measurement function — no convergence rounds —
    but each join still costs one RTT measurement {e per landmark}, versus a
    single traceroute for the paper's scheme. *)

type t

val embed_landmarks :
  dims:int -> landmarks:int array -> measure:(int -> int -> float) -> rng:Prelude.Prng.t -> t
(** [embed_landmarks ~dims ~landmarks ~measure] measures all landmark pairs
    (via [measure lmk_a lmk_b], symmetric) and solves the landmark
    coordinates by Nelder–Mead on total squared relative error, restarted
    from a few random initializations.
    @raise Invalid_argument with fewer than [dims + 1] landmarks. *)

val landmark_ids : t -> int array
val landmark_coordinate : t -> int -> Vector.t
(** By position in [landmark_ids].  @raise Invalid_argument out of range. *)

val place_host : t -> rtts:float array -> Vector.t
(** [place_host t ~rtts] solves a host coordinate from its RTT vector to the
    landmarks (same order as [landmark_ids]). *)

val estimate : Vector.t -> Vector.t -> float
(** Predicted RTT = Euclidean distance. *)

val fit_error : t -> float
(** Residual objective of the landmark embedding (0 = perfect fit). *)
