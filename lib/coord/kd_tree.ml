type node =
  | Leaf of int array  (* point indices *)
  | Split of { axis : int; threshold : float; left : node; right : node }

type t = { points : Vector.t array; root : node; dims : int }

let leaf_capacity = 8

let build points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kd_tree.build: empty point set";
  let dims = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> dims then invalid_arg "Kd_tree.build: mixed dimensions")
    points;
  (* Median split on the axis of largest spread; indices sorted in place per
     recursion via sub-arrays. *)
  let rec make indices =
    if Array.length indices <= leaf_capacity then Leaf indices
    else begin
      let axis =
        let best = ref 0 and best_spread = ref neg_infinity in
        for d = 0 to dims - 1 do
          let lo = ref infinity and hi = ref neg_infinity in
          Array.iter
            (fun i ->
              let v = points.(i).(d) in
              if v < !lo then lo := v;
              if v > !hi then hi := v)
            indices;
          if !hi -. !lo > !best_spread then begin
            best_spread := !hi -. !lo;
            best := d
          end
        done;
        !best
      in
      Array.sort (fun a b -> compare (points.(a).(axis), a) (points.(b).(axis), b)) indices;
      let mid = Array.length indices / 2 in
      let threshold = points.(indices.(mid)).(axis) in
      if threshold = points.(indices.(0)).(axis) && threshold = points.(indices.(Array.length indices - 1)).(axis)
      then (* Degenerate axis (all equal): stop splitting. *)
        Leaf indices
      else begin
        let left = make (Array.sub indices 0 mid) in
        let right = make (Array.sub indices mid (Array.length indices - mid)) in
        Split { axis; threshold; left; right }
      end
    end
  in
  { points; root = make (Array.init n (fun i -> i)); dims }

let size t = Array.length t.points
let dims t = t.dims

(* Bounded best-list shared by both queries: ascending (distance, index). *)
let k_nearest t query ~k ?(exclude = fun _ -> false) () =
  if Array.length query <> t.dims then invalid_arg "Kd_tree: dimension mismatch";
  if k <= 0 then []
  else begin
    let best = ref [] in
    let best_len = ref 0 in
    let worst_entry () =
      if !best_len < k then (infinity, max_int) else List.nth !best (k - 1)
    in
    let worst () = fst (worst_entry ()) in
    let consider i =
      if not (exclude i) then begin
        let d = Vector.distance t.points.(i) query in
        (* Pair comparison keeps the lower index on equal distance. *)
        if (d, i) < worst_entry () then begin
          let rec ins = function
            | [] -> [ (d, i) ]
            | (d', i') :: rest when (d, i) < (d', i') -> (d, i) :: (d', i') :: rest
            | x :: rest -> x :: ins rest
          in
          let merged = ins !best in
          best := (if List.length merged > k then List.filteri (fun j _ -> j < k) merged else merged);
          best_len := List.length !best
        end
      end
    in
    let rec visit = function
      | Leaf indices -> Array.iter consider indices
      | Split { axis; threshold; left; right } ->
          let delta = query.(axis) -. threshold in
          let near, far = if delta < 0.0 then (left, right) else (right, left) in
          visit near;
          (* The far side can only help if the splitting plane is closer
             than the current k-th best. *)
          if abs_float delta <= worst () then visit far
    in
    visit t.root;
    !best |> List.map (fun (d, i) -> (i, d))
  end

let nearest t query =
  match k_nearest t query ~k:1 () with
  | [ (i, _) ] -> i
  | _ -> invalid_arg "Kd_tree.nearest: empty tree"
