type result = { x : float array; f : float; iterations : int }

let minimize ?(max_iter = 500) ?(tolerance = 1e-9) ~f ~x0 ~scale () =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Nelder_mead.minimize: empty starting point";
  (* Simplex of n + 1 vertices, each paired with its value. *)
  let vertex i =
    if i = 0 then Array.copy x0
    else begin
      let v = Array.copy x0 in
      v.(i - 1) <- v.(i - 1) +. scale;
      v
    end
  in
  let simplex = Array.init (n + 1) (fun i -> vertex i) in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    idx
  in
  let centroid_excluding worst =
    let c = Array.make n 0.0 in
    for i = 0 to n do
      if i <> worst then
        for d = 0 to n - 1 do
          c.(d) <- c.(d) +. simplex.(i).(d)
        done
    done;
    Array.map (fun x -> x /. float_of_int n) c
  in
  let combine a alpha b beta = Array.init n (fun d -> (alpha *. a.(d)) +. (beta *. b.(d))) in
  let iterations = ref 0 in
  (* Converge on BOTH a flat value spread and a small simplex: a simplex
     straddling the minimum symmetrically has zero value spread while still
     being far from it. *)
  let diameter () =
    let d = ref 0.0 in
    for i = 0 to n do
      for j = i + 1 to n do
        let dist = ref 0.0 in
        for k = 0 to n - 1 do
          let delta = simplex.(i).(k) -. simplex.(j).(k) in
          dist := !dist +. (delta *. delta)
        done;
        d := Float.max !d (sqrt !dist)
      done
    done;
    !d
  in
  let converged () =
    let idx = order () in
    abs_float (values.(idx.(n)) -. values.(idx.(0))) < tolerance
    && diameter () < Float.max (sqrt tolerance) (1e-8 *. (1.0 +. Float.abs values.(idx.(0))))
  in
  while !iterations < max_iter && not (converged ()) do
    incr iterations;
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
    let c = centroid_excluding worst in
    (* Reflection. *)
    let reflected = combine c 2.0 simplex.(worst) (-1.0) in
    let f_reflected = f reflected in
    if f_reflected < values.(best) then begin
      (* Expansion. *)
      let expanded = combine c 3.0 simplex.(worst) (-2.0) in
      let f_expanded = f expanded in
      if f_expanded < f_reflected then begin
        simplex.(worst) <- expanded;
        values.(worst) <- f_expanded
      end
      else begin
        simplex.(worst) <- reflected;
        values.(worst) <- f_reflected
      end
    end
    else if f_reflected < values.(second_worst) then begin
      simplex.(worst) <- reflected;
      values.(worst) <- f_reflected
    end
    else begin
      (* Contraction toward the better of worst/reflected. *)
      let target = if f_reflected < values.(worst) then reflected else simplex.(worst) in
      let contracted = combine c 0.5 target 0.5 in
      let f_contracted = f contracted in
      if f_contracted < Float.min f_reflected values.(worst) then begin
        simplex.(worst) <- contracted;
        values.(worst) <- f_contracted
      end
      else begin
        (* Shrink everything toward the best vertex. *)
        for i = 0 to n do
          if i <> best then begin
            simplex.(i) <- combine simplex.(best) 0.5 simplex.(i) 0.5;
            values.(i) <- f simplex.(i)
          end
        done
      end
    end
  done;
  let idx = order () in
  { x = Array.copy simplex.(idx.(0)); f = values.(idx.(0)); iterations = !iterations }
