(** Derivative-free simplex minimization (Nelder–Mead).

    GNP fits coordinates by minimizing squared embedding error; the original
    paper uses the Simplex Downhill method, which is exactly this
    algorithm.  Standard coefficients (reflection 1, expansion 2,
    contraction 0.5, shrink 0.5). *)

type result = { x : float array; f : float; iterations : int }

val minimize :
  ?max_iter:int ->
  ?tolerance:float ->
  f:(float array -> float) ->
  x0:float array ->
  scale:float ->
  unit ->
  result
(** [minimize ~f ~x0 ~scale ()] starts from the simplex [x0] plus [scale]
    along each axis; stops when the simplex's function-value spread falls
    below [tolerance] (default 1e-9) or after [max_iter] (default 500)
    iterations.  @raise Invalid_argument on an empty [x0]. *)
