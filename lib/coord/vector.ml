type t = float array

let zeros n = Array.make n 0.0
let add a b = Array.mapi (fun i x -> x +. b.(i)) a
let sub a b = Array.mapi (fun i x -> x -. b.(i)) a
let scale k a = Array.map (fun x -> k *. x) a
let dot a b = Array.fold_left ( +. ) 0.0 (Array.mapi (fun i x -> x *. b.(i)) a)
let norm a = sqrt (dot a a)

let distance a b = norm (sub a b)

let unit_toward a b ~rng =
  let d = sub a b in
  let n = norm d in
  if n > 1e-12 then scale (1.0 /. n) d
  else begin
    let v = Array.init (Array.length a) (fun _ -> Prelude.Prng.normal rng ~mu:0.0 ~sigma:1.0) in
    let n = norm v in
    if n > 1e-12 then scale (1.0 /. n) v else Array.init (Array.length a) (fun i -> if i = 0 then 1.0 else 0.0)
  end

let pp ppf a =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf x -> Format.fprintf ppf "%.2f" x))
    (Array.to_list a)
