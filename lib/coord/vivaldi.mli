(** Vivaldi decentralized network coordinates (Dabek et al., SIGCOMM 2004).

    The paper's motivating comparison: coordinate systems eventually predict
    latency well but need many gossip rounds to converge, whereas the
    landmark/traceroute scheme answers after a single probe.  This is the
    full algorithm with adaptive timestep and the height model ("Euclidean +
    height" captures access-link delay).

    Time is counted in {e rounds}: in one round every node samples a handful
    of random peers, as PeerSim's cycle-driven mode would schedule it. *)

type t

type params = {
  dims : int;  (** Euclidean dimensionality (2 in the original evaluation). *)
  ce : float;  (** Adaptive timestep constant, 0.25 in the original paper. *)
  cc : float;  (** Error-adaptation constant, 0.25. *)
  use_height : bool;
  neighbors_per_round : int;
}

val default_params : params
(** 2 dimensions + height, ce = cc = 0.25, 4 samples per round. *)

val create : params -> node_count:int -> rng:Prelude.Prng.t -> t
(** All nodes start at the origin with error 1 (maximal distrust). *)

val node_count : t -> int
val observe : t -> i:int -> j:int -> rtt:float -> unit
(** Feed node [i] one RTT measurement to node [j], moving [i]'s coordinate
    (the remote's coordinate and error are read from the shared state, as if
    piggybacked on the reply).  @raise Invalid_argument on a non-finite or
    negative RTT. *)

val estimate : t -> int -> int -> float
(** Predicted RTT between two nodes under the current embedding. *)

val local_error : t -> int -> float
(** Node's current confidence weight in [\[0, 1+\]]; lower is better. *)

val run_round : t -> measure:(int -> int -> float) -> rng:Prelude.Prng.t -> unit
(** One gossip round: every node observes [neighbors_per_round] RTTs to
    uniformly random other nodes, in node order (deterministic given the
    rng). *)

val run_round_with_neighbors :
  t -> neighbors:(int -> int array) -> measure:(int -> int -> float) -> rng:Prelude.Prng.t -> unit
(** Overlay-restricted variant: each node samples its RTT targets from its
    own neighbor list only (the realistic deployment, where Vivaldi
    piggybacks on existing overlay traffic).  Nodes with an empty list skip
    the round.  Convergence is known to suffer when neighbor lists are
    small or clustered — measurable with {!relative_error}. *)

val relative_error : t -> measure:(int -> int -> float) -> samples:int -> rng:Prelude.Prng.t -> float
(** Median over random pairs of [|estimate - actual| / actual] — the standard
    Vivaldi accuracy metric. *)
