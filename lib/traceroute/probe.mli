(** Traceroute emulation.

    Walks the oracle route hop by hop the way the TTL-expiry tool does,
    subject to the imperfections of real probing: unresponsive routers
    (recorded as {!Path.Anonymous}), a TTL ceiling that can cut the record
    short, and per-probe RTT measurements with noise.  The probe {e cost}
    (number of TTL-limited packets sent) is reported so experiments can trade
    discovery quality against measurement traffic (extension E4). *)

type config = {
  max_ttl : int;  (** Give up after this many hops (default 64). *)
  drop_prob : float;  (** Per-hop probability of an anonymous reply (default 0). *)
  probes_per_hop : int;  (** Packets per TTL, as in classic traceroute (default 1). *)
}

val default_config : config

type result = { path : Path.t; probes_sent : int; rtt_ms : float option }
(** [rtt_ms] is the measured round-trip to the destination (with noise) when
    the trace completed and a latency table was supplied. *)

val run :
  ?config:config ->
  ?latency:Topology.Latency.t ->
  ?rng:Prelude.Prng.t ->
  Route_oracle.t ->
  src:Topology.Graph.node ->
  dst:Topology.Graph.node ->
  result
(** [run oracle ~src ~dst] emulates one traceroute.  Without [rng], probing
    is perfect (no drops, no noise) regardless of [drop_prob].  The endpoints
    themselves always respond ([src] knows itself; [dst] answers the final
    probe directly). *)

val ping :
  ?latency:Topology.Latency.t ->
  ?rng:Prelude.Prng.t ->
  Route_oracle.t ->
  src:Topology.Graph.node ->
  dst:Topology.Graph.node ->
  float
(** One RTT measurement along the forwarding route (2x one-way latency, plus
    5% multiplicative noise when [rng] is given); [infinity] when
    unreachable.  Hop-count routing without a latency table counts 1 ms per
    link. *)
