type strategy =
  | Full
  | Every_k of int
  | Last_k of int
  | First_k of int
  | Min_degree of int

let check_param name k = if k < 1 then invalid_arg ("Truncate: " ^ name ^ " parameter must be >= 1")

let apply ?graph strategy (path : Path.t) =
  let n = Array.length path.hops in
  if n = 0 then path
  else begin
    let keep = Array.make n false in
    keep.(0) <- true;
    keep.(n - 1) <- true;
    (match strategy with
    | Full -> Array.fill keep 0 n true
    | Every_k k ->
        check_param "Every_k" k;
        let i = ref 0 in
        while !i < n do
          keep.(!i) <- true;
          i := !i + k
        done
    | Last_k k ->
        check_param "Last_k" k;
        for i = max 0 (n - k) to n - 1 do
          keep.(i) <- true
        done
    | First_k k ->
        check_param "First_k" k;
        for i = 0 to min (k - 1) (n - 1) do
          keep.(i) <- true
        done
    | Min_degree threshold ->
        check_param "Min_degree" threshold;
        let g =
          match graph with
          | Some g -> g
          | None -> invalid_arg "Truncate.apply: Min_degree needs ~graph"
        in
        for i = 0 to n - 1 do
          match path.hops.(i) with
          | Path.Known r -> if Topology.Graph.degree g r >= threshold then keep.(i) <- true
          | Path.Anonymous -> ()
        done);
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if keep.(i) then kept := path.hops.(i) :: !kept
    done;
    { path with hops = Array.of_list !kept }
  end

let probe_cost strategy ~full_hops =
  if full_hops <= 0 then 0
  else
    match strategy with
    | Full | Min_degree _ -> full_hops
    | Every_k k ->
        check_param "Every_k" k;
        (* Positions k, 2k, ... <= full_hops, plus the final hop if it is not
           already on the stride (position 0 is the source: free). *)
        let strided = full_hops / k in
        if full_hops mod k = 0 then strided else strided + 1
    | Last_k k | First_k k ->
        check_param "probe_cost" k;
        min k full_hops

let describe = function
  | Full -> "full"
  | Every_k k -> Printf.sprintf "every-%d" k
  | Last_k k -> Printf.sprintf "last-%d" k
  | First_k k -> Printf.sprintf "first-%d" k
  | Min_degree d -> Printf.sprintf "core-deg>=%d" d
