type hop = Known of Topology.Graph.node | Anonymous
type t = { src : Topology.Graph.node; dst : Topology.Graph.node; hops : hop array }

let of_routers ~src ~dst routers =
  (match routers with
  | first :: _ when first = src -> ()
  | _ -> invalid_arg "Path.of_routers: route must start at src");
  { src; dst; hops = Array.of_list (List.map (fun r -> Known r) routers) }

let known_routers t =
  let acc = ref [] in
  for i = Array.length t.hops - 1 downto 0 do
    match t.hops.(i) with Known r -> acc := r :: !acc | Anonymous -> ()
  done;
  Array.of_list !acc

let hop_count t = max 0 (Array.length t.hops - 1)

let is_complete t =
  let n = Array.length t.hops in
  n > 0 && (match t.hops.(n - 1) with Known r -> r = t.dst | Anonymous -> false)

let anonymous_count t =
  Array.fold_left (fun acc h -> match h with Anonymous -> acc + 1 | Known _ -> acc) 0 t.hops

let pp ppf t =
  let pp_hop ppf = function
    | Known r -> Format.pp_print_int ppf r
    | Anonymous -> Format.pp_print_char ppf '*'
  in
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ") pp_hop ppf
    (Array.to_list t.hops)

let equal a b = a.src = b.src && a.dst = b.dst && a.hops = b.hops
