(** Recorded router paths, as produced by the traceroute-like tool.

    A hop either identified its router or stayed anonymous (no ICMP reply —
    common in real traceroutes and deliberately injected by {!Probe}).  The
    management server only consumes the identified routers, in order. *)

type hop = Known of Topology.Graph.node | Anonymous

type t = { src : Topology.Graph.node; dst : Topology.Graph.node; hops : hop array }
(** [hops] covers the full route from [src] to [dst] inclusive: a complete
    probe of a route [r0; r1; ...; rk] has [hops = [|Known r0; ...; Known rk|]]
    (possibly with [Anonymous] replacing unresponsive routers, and possibly
    cut short when the probe's TTL budget ran out before reaching [dst]). *)

val of_routers : src:Topology.Graph.node -> dst:Topology.Graph.node -> Topology.Graph.node list -> t
(** Build a fully-identified path.  @raise Invalid_argument when the list
    does not start with [src]. *)

val known_routers : t -> Topology.Graph.node array
(** The identified routers, in route order (anonymous hops skipped). *)

val hop_count : t -> int
(** Number of links traversed, i.e. [Array.length hops - 1]; 0 for an empty
    or single-hop record. *)

val is_complete : t -> bool
(** True when the last hop identified the destination. *)

val anonymous_count : t -> int

val pp : Format.formatter -> t -> unit
(** e.g. "7 -> 3 -> * -> 12". *)

val equal : t -> t -> bool
