(** Deterministic forwarding-path oracle over a router graph.

    IP forwarding is destination-based: all routes toward one destination
    form a sink tree.  The oracle models exactly that — for each destination
    it fixes one deterministic shortest-path tree (lowest-id tie-break for
    hop routing, or latency-optimal under a weight function) and reads every
    route out of it.  Per-destination trees are computed lazily and cached,
    so probing thousands of peers toward a handful of landmarks costs one
    BFS per landmark. *)

type t

val create : ?max_cached_trees:int -> Topology.Graph.t -> t
(** Hop-count routing (every link cost 1).  [max_cached_trees] bounds the
    per-destination sink-tree cache with LRU eviction (default: unbounded);
    evicted trees are recomputed on demand, so results never change — only
    memory and recompute cost. *)

val create_weighted : Topology.Graph.t -> weight:(int -> int -> float) -> t
(** Latency-based routing; the weight function must be symmetric and
    non-negative. *)

val create_inflated : Topology.Graph.t -> inflation:float -> seed:int -> t
(** Policy-routing model: real forwarding is not shortest-path — BGP
    policies inflate paths.  Per destination, a deterministic 25% of links
    carry a policy penalty of [inflation] extra cost, so routes detour
    around them whenever the detour is cheaper.  Routes stay
    destination-consistent (still sink trees) but deviate from hop-shortest
    more as [inflation] grows; [inflation = 0] reduces to hop routing.
    @raise Invalid_argument on negative inflation. *)

val graph : t -> Topology.Graph.t

val route : t -> src:Topology.Graph.node -> dst:Topology.Graph.node -> Topology.Graph.node list
(** The router sequence from [src] to [dst], both inclusive; [[]] when
    unreachable; [[src]] when [src = dst]. *)

val route_length : t -> src:Topology.Graph.node -> dst:Topology.Graph.node -> int
(** Links traversed by {!route}; [max_int] when unreachable.  Note this is
    the length of the deterministic forwarding route, which for weighted
    routing can exceed the hop-count shortest path. *)

val next_hop : t -> dst:Topology.Graph.node -> Topology.Graph.node -> Topology.Graph.node option
(** [next_hop t ~dst v] is the router after [v] on [v]'s route to [dst];
    [None] at the destination itself or when unreachable. *)

val cached_destinations : t -> int
(** Number of destination trees currently materialized (for memory tests). *)
