(** Decreased-traceroute strategies (paper §3, extension E4).

    "This tool could be a decreased version of the original one because we
    are only interested with some routers along the path."  Each strategy
    keeps a subset of a recorded path's hops; the management server then
    works with the reduced path.  Keeping fewer hops costs accuracy but
    saves probes — {!probe_cost} quantifies the saving. *)

type strategy =
  | Full  (** Keep every hop. *)
  | Every_k of int  (** Keep hops at positions 0, k, 2k, ... plus the last hop. *)
  | Last_k of int  (** Keep only the [k] hops nearest the landmark (where the
                       meeting points live). *)
  | First_k of int  (** Keep only the [k] hops nearest the peer (negative
                        control: meeting points are rarely here). *)
  | Min_degree of int
      (** Keep routers with degree >= threshold — "core only".  Needs the
          graph; models a tool that only records well-connected routers
          (e.g. those appearing in many cached traces). *)

val apply : ?graph:Topology.Graph.t -> strategy -> Path.t -> Path.t
(** Reduce a path.  Source and destination hops are always kept when present.
    @raise Invalid_argument when [Min_degree] is used without [graph], or a
    strategy parameter is < 1. *)

val probe_cost : strategy -> full_hops:int -> int
(** TTL packets a decreased tool would actually send for a route of
    [full_hops] links: [Every_k]/[Last_k]/[First_k] probe only the positions
    they keep; [Min_degree] still probes everything (filtering happens after
    the replies arrive). *)

val describe : strategy -> string
