type mode = Hops | Weighted of (int -> int -> float) | Inflated of { inflation : float; seed : int }

(* Deterministic per-(link, destination) perturbation in [0, 1): a splitmix
   finalizer over the canonical link key and the destination. *)
let link_noise ~seed ~dst u v =
  let a, b = if u < v then (u, v) else (v, u) in
  let open Int64 in
  let z = of_int (((a * 1_000_003) + b) lxor (dst * 97) lxor seed) in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  float_of_int (to_int (logand z 0xFFFFFFL)) /. float_of_int 0x1000000

(* dst -> parent array of the sink tree rooted at dst: parents.(v) is the
   next hop of v toward dst.  Either unbounded (hashtable) or LRU-bounded. *)
type cache = Unbounded of (int, int array) Hashtbl.t | Bounded of (int, int array) Prelude.Lru.t

type t = { graph : Topology.Graph.t; mode : mode; cache : cache }

let make_cache = function
  | None -> Unbounded (Hashtbl.create 16)
  | Some capacity -> Bounded (Prelude.Lru.create ~capacity)

let create ?max_cached_trees graph = { graph; mode = Hops; cache = make_cache max_cached_trees }
let create_weighted graph ~weight = { graph; mode = Weighted weight; cache = make_cache None }

let create_inflated graph ~inflation ~seed =
  if inflation < 0.0 then invalid_arg "Route_oracle.create_inflated: negative inflation";
  { graph; mode = Inflated { inflation; seed }; cache = make_cache None }

let graph t = t.graph

let compute_tree t dst =
  match t.mode with
  | Hops -> Topology.Bfs.parents t.graph dst
  | Weighted weight -> Topology.Dijkstra.parents t.graph ~weight dst
  | Inflated { inflation; seed } ->
      (* A quarter of the links (per destination) carry the policy penalty;
         routes detour around them when the detour is cheaper, which is what
         actually lengthens paths.  Uniform per-link noise would not: longer
         paths accumulate more of it on average, so shortest-hop routes
         would still win. *)
      let weight u v = if link_noise ~seed ~dst u v < 0.25 then 1.0 +. inflation else 1.0 in
      Topology.Dijkstra.parents t.graph ~weight dst

let tree t dst =
  match t.cache with
  | Unbounded table -> (
      match Hashtbl.find_opt table dst with
      | Some parents -> parents
      | None ->
          let parents = compute_tree t dst in
          Hashtbl.add table dst parents;
          parents)
  | Bounded lru -> (
      match Prelude.Lru.find lru dst with
      | Some parents -> parents
      | None ->
          let parents = compute_tree t dst in
          Prelude.Lru.add lru dst parents;
          parents)

let next_hop t ~dst v =
  if v = dst then None
  else begin
    let parents = tree t dst in
    match parents.(v) with -1 -> None | next -> Some next
  end

let route t ~src ~dst =
  if src = dst then [ src ]
  else begin
    let parents = tree t dst in
    if parents.(src) = -1 then []
    else begin
      (* Walk the sink tree from src down to its root dst. *)
      let rec walk v acc = if v = dst then List.rev (dst :: acc) else walk parents.(v) (v :: acc) in
      walk src []
    end
  end

let route_length t ~src ~dst =
  match route t ~src ~dst with
  | [] -> max_int
  | routers -> List.length routers - 1

let cached_destinations t =
  match t.cache with
  | Unbounded table -> Hashtbl.length table
  | Bounded lru -> Prelude.Lru.length lru
