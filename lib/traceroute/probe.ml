type config = { max_ttl : int; drop_prob : float; probes_per_hop : int }

let default_config = { max_ttl = 64; drop_prob = 0.0; probes_per_hop = 1 }

type result = { path : Path.t; probes_sent : int; rtt_ms : float option }

let one_way_latency ?latency oracle ~src ~dst =
  match Route_oracle.route oracle ~src ~dst with
  | [] -> infinity
  | routers -> (
      match latency with
      | Some table -> Topology.Latency.path_latency table routers
      | None -> float_of_int (List.length routers - 1))

let noisy rng v =
  match rng with
  | None -> v
  | Some rng -> v *. (1.0 +. (0.05 *. (Prelude.Prng.unit_float rng -. 0.5) *. 2.0))

let ping ?latency ?rng oracle ~src ~dst =
  let one_way = one_way_latency ?latency oracle ~src ~dst in
  if one_way = infinity then infinity else noisy rng (2.0 *. one_way)

let run ?(config = default_config) ?latency ?rng oracle ~src ~dst =
  if config.max_ttl < 1 then invalid_arg "Probe.run: max_ttl must be >= 1";
  if config.probes_per_hop < 1 then invalid_arg "Probe.run: probes_per_hop must be >= 1";
  if config.drop_prob < 0.0 || config.drop_prob >= 1.0 then
    invalid_arg "Probe.run: drop_prob must be in [0,1)";
  let route = Route_oracle.route oracle ~src ~dst in
  match route with
  | [] -> { path = { Path.src; dst; hops = [||] }; probes_sent = 0; rtt_ms = None }
  | routers ->
      let routers = Array.of_list routers in
      let n_hops = Array.length routers - 1 in
      let recorded = min n_hops config.max_ttl in
      let probes = ref 0 in
      let hops = Array.make (recorded + 1) Path.Anonymous in
      hops.(0) <- Path.Known src;
      for i = 1 to recorded do
        probes := !probes + config.probes_per_hop;
        let router = routers.(i) in
        let responds =
          router = dst || router = src
          ||
          match rng with
          | None -> true
          | Some rng ->
              (* Each of the probes_per_hop packets independently gets an
                 answer; the hop is anonymous only if all are dropped. *)
              let rec any k =
                k > 0 && (Prelude.Prng.unit_float rng >= config.drop_prob || any (k - 1))
              in
              any config.probes_per_hop
        in
        hops.(i) <- (if responds then Path.Known router else Path.Anonymous)
      done;
      let path = { Path.src; dst; hops } in
      let rtt_ms =
        if Path.is_complete path then begin
          let one_way =
            match latency with
            | Some table -> Topology.Latency.path_latency table (Array.to_list routers)
            | None -> float_of_int n_hops
          in
          Some (noisy rng (2.0 *. one_way))
        end
        else None
      in
      { path; probes_sent = !probes; rtt_ms }
