type t = {
  engine : Engine.t;
  oracle : Traceroute.Route_oracle.t;
  latency : Topology.Latency.t option;
  rng : Prelude.Prng.t option;
  mutable loss_prob : float;
  mutable partition : (Topology.Graph.node, unit) Hashtbl.t option;
  mutable messages : int;
  mutable bytes : int;
  mutable link_bytes : int;
  mutable dropped_loss : int;
  mutable dropped_unreachable : int;
  mutable dropped_partition : int;
}

let check_loss_prob ~who ~rng loss_prob =
  if loss_prob < 0.0 || loss_prob >= 1.0 then
    invalid_arg (who ^ ": loss_prob outside [0, 1)");
  if loss_prob > 0.0 && rng = None then invalid_arg (who ^ ": loss_prob needs ~rng")

let create ?latency ?rng ?(loss_prob = 0.0) engine oracle =
  check_loss_prob ~who:"Transport.create" ~rng loss_prob;
  {
    engine;
    oracle;
    latency;
    rng;
    loss_prob;
    partition = None;
    messages = 0;
    bytes = 0;
    link_bytes = 0;
    dropped_loss = 0;
    dropped_unreachable = 0;
    dropped_partition = 0;
  }

let engine t = t.engine

let set_loss_prob t loss_prob =
  check_loss_prob ~who:"Transport.set_loss_prob" ~rng:t.rng loss_prob;
  t.loss_prob <- loss_prob

let loss_prob t = t.loss_prob

let set_partition_nodes t nodes =
  let cut = Hashtbl.create (List.length nodes) in
  List.iter (fun node -> Hashtbl.replace cut node ()) nodes;
  t.partition <- Some cut

let clear_partition t = t.partition <- None

let partitioned t ~src ~dst =
  match t.partition with
  | None -> false
  | Some cut -> Hashtbl.mem cut src <> Hashtbl.mem cut dst

let one_way_delay t ~src ~dst =
  match Traceroute.Route_oracle.route t.oracle ~src ~dst with
  | [] -> infinity
  | routers -> (
      match t.latency with
      | Some table -> Topology.Latency.path_latency table routers
      | None -> float_of_int (List.length routers - 1))

let jitter t delay =
  match t.rng with
  | None -> delay
  | Some rng -> delay *. (1.0 +. (0.05 *. (Prelude.Prng.unit_float rng -. 0.5) *. 2.0))

let lost t =
  t.loss_prob > 0.0
  && match t.rng with Some rng -> Prelude.Prng.unit_float rng < t.loss_prob | None -> false

let send t ~src ~dst ~size_bytes handler =
  let delay = one_way_delay t ~src ~dst in
  if delay = infinity then t.dropped_unreachable <- t.dropped_unreachable + 1
  else if partitioned t ~src ~dst then t.dropped_partition <- t.dropped_partition + 1
  else if lost t then t.dropped_loss <- t.dropped_loss + 1
  else begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + size_bytes;
    let hops = Traceroute.Route_oracle.route_length t.oracle ~src ~dst in
    if hops <> max_int then t.link_bytes <- t.link_bytes + (size_bytes * hops);
    Engine.schedule t.engine ~delay:(jitter t delay) handler
  end

(* Loss is drawn independently per leg: the request's Bernoulli draw happens
   at call time, the reply's at request-delivery time.  Either leg dying
   alone kills the RTT — the failure probability of an RPC under loss p is
   1 - (1-p)^2, not p. *)
let rpc t ~src ~dst ~request_bytes ~reply_bytes handler =
  send t ~src ~dst ~size_bytes:request_bytes (fun () ->
      send t ~src:dst ~dst:src ~size_bytes:reply_bytes handler)

let messages_sent t = t.messages
let link_bytes t = t.link_bytes
let bytes_sent t = t.bytes
let dropped_loss t = t.dropped_loss
let dropped_unreachable t = t.dropped_unreachable
let dropped_partition t = t.dropped_partition
let messages_dropped t = t.dropped_loss + t.dropped_unreachable + t.dropped_partition

let stats t =
  [
    ("messages", t.messages);
    ("bytes", t.bytes);
    ("link_bytes", t.link_bytes);
    ("dropped_loss", t.dropped_loss);
    ("dropped_unreachable", t.dropped_unreachable);
    ("dropped_partition", t.dropped_partition);
  ]
