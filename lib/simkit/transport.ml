type t = {
  engine : Engine.t;
  oracle : Traceroute.Route_oracle.t;
  latency : Topology.Latency.t option;
  rng : Prelude.Prng.t option;
  loss_prob : float;
  mutable messages : int;
  mutable bytes : int;
  mutable link_bytes : int;
  mutable dropped : int;
}

let create ?latency ?rng ?(loss_prob = 0.0) engine oracle =
  if loss_prob < 0.0 || loss_prob >= 1.0 then invalid_arg "Transport.create: loss_prob outside [0, 1)";
  if loss_prob > 0.0 && rng = None then invalid_arg "Transport.create: loss_prob needs ~rng";
  { engine; oracle; latency; rng; loss_prob; messages = 0; bytes = 0; link_bytes = 0; dropped = 0 }

let engine t = t.engine

let one_way_delay t ~src ~dst =
  match Traceroute.Route_oracle.route t.oracle ~src ~dst with
  | [] -> infinity
  | routers -> (
      match t.latency with
      | Some table -> Topology.Latency.path_latency table routers
      | None -> float_of_int (List.length routers - 1))

let jitter t delay =
  match t.rng with
  | None -> delay
  | Some rng -> delay *. (1.0 +. (0.05 *. (Prelude.Prng.unit_float rng -. 0.5) *. 2.0))

let lost t =
  t.loss_prob > 0.0
  && match t.rng with Some rng -> Prelude.Prng.unit_float rng < t.loss_prob | None -> false

let send t ~src ~dst ~size_bytes handler =
  let delay = one_way_delay t ~src ~dst in
  if delay = infinity || lost t then t.dropped <- t.dropped + 1
  else begin
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + size_bytes;
    let hops = Traceroute.Route_oracle.route_length t.oracle ~src ~dst in
    if hops <> max_int then t.link_bytes <- t.link_bytes + (size_bytes * hops);
    Engine.schedule t.engine ~delay:(jitter t delay) handler
  end

let rpc t ~src ~dst ~request_bytes ~reply_bytes handler =
  send t ~src ~dst ~size_bytes:request_bytes (fun () ->
      send t ~src:dst ~dst:src ~size_bytes:reply_bytes handler)

let messages_sent t = t.messages
let link_bytes t = t.link_bytes
let bytes_sent t = t.bytes
let messages_dropped t = t.dropped
