type tally = {
  mutable t_sent_bytes : int;
  mutable t_recv_bytes : int;
  mutable t_sent_msgs : int;
  mutable t_recv_msgs : int;
}

type talker = {
  node : Topology.Graph.node;
  sent_bytes : int;
  recv_bytes : int;
  sent_msgs : int;
  recv_msgs : int;
}

type t = {
  engine : Engine.t;
  oracle : Traceroute.Route_oracle.t;
  latency : Topology.Latency.t option;
  rng : Prelude.Prng.t option;
  mutable loss_prob : float;
  mutable partition : (Topology.Graph.node, unit) Hashtbl.t option;
  mutable messages : int;
  mutable bytes : int;
  mutable link_bytes : int;
  mutable dropped_loss : int;
  mutable dropped_unreachable : int;
  mutable dropped_partition : int;
  mutable dropped_loss_bytes : int;
  mutable dropped_unreachable_bytes : int;
  mutable dropped_partition_bytes : int;
  mutable metrics : Metrics.t option;
  mutable timeseries : Timeseries.t option;
  talkers : (Topology.Graph.node, tally) Hashtbl.t;
}

let default_kind = "other"
let default_dir = "oneway"

let check_loss_prob ~who ~rng loss_prob =
  if loss_prob < 0.0 || loss_prob >= 1.0 then
    invalid_arg (who ^ ": loss_prob outside [0, 1)");
  if loss_prob > 0.0 && rng = None then invalid_arg (who ^ ": loss_prob needs ~rng")

let create ?latency ?rng ?(loss_prob = 0.0) ?metrics ?timeseries engine oracle =
  check_loss_prob ~who:"Transport.create" ~rng loss_prob;
  {
    engine;
    oracle;
    latency;
    rng;
    loss_prob;
    partition = None;
    messages = 0;
    bytes = 0;
    link_bytes = 0;
    dropped_loss = 0;
    dropped_unreachable = 0;
    dropped_partition = 0;
    dropped_loss_bytes = 0;
    dropped_unreachable_bytes = 0;
    dropped_partition_bytes = 0;
    metrics;
    timeseries;
    talkers = Hashtbl.create 64;
  }

let engine t = t.engine

let set_wire_sinks ?metrics ?timeseries t =
  (match metrics with Some _ -> t.metrics <- metrics | None -> ());
  match timeseries with Some _ -> t.timeseries <- timeseries | None -> ()

let set_loss_prob t loss_prob =
  check_loss_prob ~who:"Transport.set_loss_prob" ~rng:t.rng loss_prob;
  t.loss_prob <- loss_prob

let loss_prob t = t.loss_prob

let set_partition_nodes t nodes =
  let cut = Hashtbl.create (List.length nodes) in
  List.iter (fun node -> Hashtbl.replace cut node ()) nodes;
  t.partition <- Some cut

let clear_partition t = t.partition <- None

let partitioned t ~src ~dst =
  match t.partition with
  | None -> false
  | Some cut -> Hashtbl.mem cut src <> Hashtbl.mem cut dst

let one_way_delay t ~src ~dst =
  match Traceroute.Route_oracle.route t.oracle ~src ~dst with
  | [] -> infinity
  | routers -> (
      match t.latency with
      | Some table -> Topology.Latency.path_latency table routers
      | None -> float_of_int (List.length routers - 1))

let jitter t delay =
  match t.rng with
  | None -> delay
  | Some rng -> delay *. (1.0 +. (0.05 *. (Prelude.Prng.unit_float rng -. 0.5) *. 2.0))

let lost t =
  t.loss_prob > 0.0
  && match t.rng with Some rng -> Prelude.Prng.unit_float rng < t.loss_prob | None -> false

let parts_total parts = List.fold_left (fun acc (_, b) -> acc + b) 0 parts

let tally_of t node =
  match Hashtbl.find_opt t.talkers node with
  | Some tl -> tl
  | None ->
      let tl = { t_sent_bytes = 0; t_recv_bytes = 0; t_sent_msgs = 0; t_recv_msgs = 0 } in
      Hashtbl.replace t.talkers node tl;
      tl

let account_drop t ~reason ~total =
  (match reason with
  | `Loss ->
      t.dropped_loss <- t.dropped_loss + 1;
      t.dropped_loss_bytes <- t.dropped_loss_bytes + total
  | `Unreachable ->
      t.dropped_unreachable <- t.dropped_unreachable + 1;
      t.dropped_unreachable_bytes <- t.dropped_unreachable_bytes + total
  | `Partition ->
      t.dropped_partition <- t.dropped_partition + 1;
      t.dropped_partition_bytes <- t.dropped_partition_bytes + total);
  match t.metrics with
  | None -> ()
  | Some m ->
      let reason =
        match reason with
        | `Loss -> "loss"
        | `Unreachable -> "unreachable"
        | `Partition -> "partition"
      in
      Metrics.add_count m "wire_dropped_bytes_total" ~labels:[ ("reason", reason) ] total;
      Metrics.incr m "wire_dropped_msgs_total" ~labels:[ ("reason", reason) ]

(* One delivered message: whole-run counters, per-endpoint tallies, then the
   dimensional view — each [(kind, bytes)] part feeds its own labeled series,
   so one frame carrying a report and a query splits cleanly by kind while
   counting once in [messages_sent]. *)
let account_delivered t ~src ~dst ~dir ~parts ~total =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + total;
  let hops = Traceroute.Route_oracle.route_length t.oracle ~src ~dst in
  if hops <> max_int then t.link_bytes <- t.link_bytes + (total * hops);
  let s = tally_of t src and d = tally_of t dst in
  s.t_sent_bytes <- s.t_sent_bytes + total;
  s.t_sent_msgs <- s.t_sent_msgs + 1;
  d.t_recv_bytes <- d.t_recv_bytes + total;
  d.t_recv_msgs <- d.t_recv_msgs + 1;
  (match t.metrics with
  | None -> ()
  | Some m ->
      List.iter
        (fun (kind, bytes) ->
          let labels = [ ("kind", kind); ("dir", dir) ] in
          Metrics.add_count m "wire_bytes_total" ~labels bytes;
          Metrics.incr m "wire_msgs_total" ~labels)
        parts);
  match t.timeseries with
  | None -> ()
  | Some ts ->
      let now = Engine.now t.engine in
      Timeseries.observe ts "wire_bytes" ~now (float_of_int total);
      List.iter
        (fun (kind, bytes) ->
          Timeseries.observe ts ("wire_bytes:" ^ kind) ~now (float_of_int bytes))
        parts

let send_parts ?(dir = default_dir) t ~src ~dst ~parts handler =
  let total = parts_total parts in
  let delay = one_way_delay t ~src ~dst in
  if delay = infinity then account_drop t ~reason:`Unreachable ~total
  else if partitioned t ~src ~dst then account_drop t ~reason:`Partition ~total
  else if lost t then account_drop t ~reason:`Loss ~total
  else begin
    account_delivered t ~src ~dst ~dir ~parts ~total;
    Engine.schedule t.engine ~delay:(jitter t delay) handler
  end

let send ?(kind = default_kind) ?dir t ~src ~dst ~size_bytes handler =
  send_parts ?dir t ~src ~dst ~parts:[ (kind, size_bytes) ] handler

let charge ?(kind = default_kind) ?(dir = default_dir) t ~src ~dst ~size_bytes =
  account_delivered t ~src ~dst ~dir ~parts:[ (kind, size_bytes) ] ~total:size_bytes

(* Loss is drawn independently per leg: the request's Bernoulli draw happens
   at call time, the reply's at request-delivery time.  Either leg dying
   alone kills the RTT — the failure probability of an RPC under loss p is
   1 - (1-p)^2, not p. *)
let rpc ?kind t ~src ~dst ~request_bytes ~reply_bytes handler =
  send ?kind ~dir:"request" t ~src ~dst ~size_bytes:request_bytes (fun () ->
      send ?kind ~dir:"reply" t ~src:dst ~dst:src ~size_bytes:reply_bytes handler)

let messages_sent t = t.messages
let link_bytes t = t.link_bytes
let bytes_sent t = t.bytes
let dropped_loss t = t.dropped_loss
let dropped_unreachable t = t.dropped_unreachable
let dropped_partition t = t.dropped_partition
let messages_dropped t = t.dropped_loss + t.dropped_unreachable + t.dropped_partition
let dropped_loss_bytes t = t.dropped_loss_bytes
let dropped_unreachable_bytes t = t.dropped_unreachable_bytes
let dropped_partition_bytes t = t.dropped_partition_bytes

let bytes_dropped t =
  t.dropped_loss_bytes + t.dropped_unreachable_bytes + t.dropped_partition_bytes

let endpoint_count t = Hashtbl.length t.talkers

let top_talkers t ~k =
  if k < 0 then invalid_arg "Transport.top_talkers: negative k";
  let all =
    Hashtbl.fold
      (fun node tl acc ->
        {
          node;
          sent_bytes = tl.t_sent_bytes;
          recv_bytes = tl.t_recv_bytes;
          sent_msgs = tl.t_sent_msgs;
          recv_msgs = tl.t_recv_msgs;
        }
        :: acc)
      t.talkers []
  in
  let volume tk = tk.sent_bytes + tk.recv_bytes in
  let sorted =
    List.sort
      (fun a b ->
        match compare (volume b) (volume a) with 0 -> compare a.node b.node | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) sorted

let stats t =
  [
    ("messages", t.messages);
    ("bytes", t.bytes);
    ("link_bytes", t.link_bytes);
    ("dropped_loss", t.dropped_loss);
    ("dropped_unreachable", t.dropped_unreachable);
    ("dropped_partition", t.dropped_partition);
    ("dropped_loss_bytes", t.dropped_loss_bytes);
    ("dropped_unreachable_bytes", t.dropped_unreachable_bytes);
    ("dropped_partition_bytes", t.dropped_partition_bytes);
  ]
