type event = { seq : int; body : unit -> unit }

type t = {
  queue : event Prelude.Pqueue.t;
  mutable time : float;
  mutable next_seq : int;
  mutable processed : int;
}

(* FIFO among equal-time events: the priority is the pair (time, seq) encoded
   by storing time in the heap priority and breaking ties on seq inside the
   payload would not work with a plain float heap, so we pop all equal-time
   events and re-order by seq.  Simpler and robust: encode seq into the
   priority's low-order bits is lossy for large seq, so instead we keep a
   secondary sort at pop time. *)
type pending_batch = { mutable batch : event list; mutable batch_time : float }

let create () =
  { queue = Prelude.Pqueue.create (); time = 0.0; next_seq = 0; processed = 0 }

let now t = t.time

let schedule_at t ~time f =
  if time < t.time then invalid_arg "Engine.schedule_at: time is in the past";
  let e = { seq = t.next_seq; body = f } in
  t.next_seq <- t.next_seq + 1;
  Prelude.Pqueue.push t.queue ~priority:time e

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.time +. delay) f

(* Pop every event scheduled at exactly the earliest queued time and return
   them in schedule order. *)
let pop_batch t =
  match Prelude.Pqueue.peek t.queue with
  | None -> None
  | Some (time, _) ->
      let batch = { batch = []; batch_time = time } in
      let rec drain () =
        match Prelude.Pqueue.peek t.queue with
        | Some (time', _) when time' = batch.batch_time ->
            let _, e = Prelude.Pqueue.pop_exn t.queue in
            batch.batch <- e :: batch.batch;
            drain ()
        | _ -> ()
      in
      drain ();
      Some (time, List.sort (fun a b -> compare a.seq b.seq) batch.batch)

let step t =
  match pop_batch t with
  | None -> false
  | Some (time, events) ->
      t.time <- time;
      (* Only execute the first; re-queue the rest so newly scheduled
         same-time events interleave correctly by seq. *)
      (match events with
      | [] -> ()
      | first :: rest ->
          List.iter (fun e -> Prelude.Pqueue.push t.queue ~priority:time e) rest;
          t.processed <- t.processed + 1;
          first.body ());
      true

let run ?until t =
  let continue = ref true in
  while !continue do
    match Prelude.Pqueue.peek t.queue with
    | None -> continue := false
    | Some (time, _) -> (
        match until with
        | Some limit when time > limit -> continue := false
        | _ -> ignore (step t))
  done;
  match until with Some limit when limit > t.time -> t.time <- limit | _ -> ()

let pending t = Prelude.Pqueue.length t.queue
let processed t = t.processed
