(* Minimal JSON string building shared by the span and metrics exporters.
   The repo has no JSON library dependency; emitted documents are plain
   objects/arrays of numbers and strings, so a string escaper and a
   total float printer cover everything. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

(* JSON has no nan/infinity literals; render them as null so the document
   always parses (a never-observed quantile is nan by contract). *)
let number v =
  if Float.is_nan v then "null"
  else if v = infinity then "null"
  else if v = neg_infinity then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let number_opt = function None -> "null" | Some v -> number v

(* Object/array assembly from already-rendered member values: the one
   place the  {"k": v, ...}  punctuation lives, instead of per-exporter
   Printf templates in Span, Flight_recorder and Export. *)
let obj fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> quote k ^ ": " ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat ", " items ^ "]"
