(** Offline critical-path analysis of span JSONL files.

    Reads the Chrome trace-event lines {!Span} writes, reconstructs one
    causal tree per [trace_id] from the [span_id]/[parent_span_id] extras,
    and answers "where does the time of a join go" — per trace as a
    critical path, in aggregate as per-span-kind shares, and for the tail
    (traces at or above the p99 root duration) separately.  Backs the
    [nearby_sim trace] subcommand. *)

type span = {
  name : string;
  ts : float;  (** Start, ms (the file stores µs). *)
  dur : float;  (** ms. *)
  pid : int;
  tid : int;
  trace_id : int;
  span_id : int;
  parent_span_id : int option;
}

val load : string -> span list * int
(** Parse a JSONL file; [(spans, untraced)] where [untraced] counts events
    without causal ids (legacy emits — they cannot join a tree).
    Unparseable lines are skipped.
    @raise Sys_error on unreadable files. *)

val of_jsonl_string : string -> span list * int
(** Same, from an in-memory string. *)

type tree = { span : span; children : tree list }
(** Children in start-time order. *)

type trace = {
  trace_id : int;
  root : tree;
  span_count : int;  (** Spans reachable from [root]. *)
  orphans : int;  (** Spans whose parent id never appears in the trace. *)
}

val traces : span list -> trace list
(** Group by [trace_id] (ascending) and build each tree.  A trace with
    several parentless spans keeps the longest-running one as root and
    counts the rest under [orphans]. *)

type segment = {
  kind : string;  (** Span name the time is attributed to. *)
  span_id : int;
  from_ms : float;
  to_ms : float;
}

val critical_path : trace -> segment list
(** The chain of spans that bounded the trace end-to-end, in time order:
    walking backwards from the root's end, each step enters the child whose
    end time is latest; gaps between children are the parent's self time.
    Children outliving their parent (async completions) are clamped, so
    segment durations sum to the root's duration. *)

type breakdown = { kind : string; total_ms : float; share : float; count : int }

val by_kind : segment list -> breakdown list
(** Critical-path time grouped by span kind, largest share first.
    [share] is of the summed segment time ([0] when that is [0]). *)

type report = {
  trace_count : int;
  span_count : int;
  untraced : int;
  orphan_count : int;
  root_name : string;  (** Most common root span kind. *)
  root_p50 : float;  (** Root-span duration quantiles, ms; [nan] if empty. *)
  root_p99 : float;
  root_max : float;
  overall : breakdown list;  (** Critical-path time by kind, all traces. *)
  tail : breakdown list;  (** Same, over traces with root duration >= p99. *)
  tail_traces : (int * float) list;  (** [(trace_id, root_ms)], slowest first. *)
}

val analyze : ?untraced:int -> span list -> report
(** The whole pipeline: trees, critical paths, aggregate and tail
    breakdowns.  Pass the [untraced] count from {!load} so the report can
    state what it skipped. *)

val report_to_string : report -> string
(** Multi-line human-readable rendering (the [nearby_sim trace] output). *)
