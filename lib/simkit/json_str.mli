(** JSON string-building helpers for the exporters (no JSON dependency). *)

val escape : string -> string
(** Backslash-escape a string for inclusion between double quotes. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes. *)

val number : float -> string
(** A float as a JSON value; nan and infinities render as [null] so the
    document always parses. *)

val number_opt : float option -> string
(** [None] renders as [null]. *)

val obj : (string * string) list -> string
(** Assemble an object from (key, already-rendered JSON value) pairs; keys
    are escaped with {!quote}.  The single shared implementation of the
    [{"k": v, ...}] punctuation used by every exporter. *)

val arr : string list -> string
(** Assemble an array from already-rendered JSON values. *)
