(** JSON string-building helpers for the exporters (no JSON dependency). *)

val escape : string -> string
(** Backslash-escape a string for inclusion between double quotes. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes. *)

val number : float -> string
(** A float as a JSON value; nan and infinities render as [null] so the
    document always parses. *)

val number_opt : float option -> string
(** [None] renders as [null]. *)
