(* Declarative service-level objectives over Timeseries windows.

   An objective names a series and a bound; evaluation is burn-rate style:
   over the last [lookback] retained windows, count the windows that
   violate the bound and breach when the violating fraction reaches
   [burn_threshold].  One slow window in an hour is noise; half the recent
   windows out of bound is an incident — exactly the distinction burn
   rates exist to make.  Ratio objectives aggregate counts over the whole
   lookback instead (a per-window completion ratio is meaningless when the
   start and the completion land in different windows). *)

type objective =
  | Quantile_max of { series : string; q : float; limit : float }
  | Mean_max of { series : string; limit : float }
  | Mean_min of { series : string; floor : float }
  | Ratio_min of { num : string; den : string; floor : float }

type spec = {
  name : string;
  objective : objective;
  lookback : int;  (* windows considered; 0 = all retained *)
  burn_threshold : float;  (* violating fraction that constitutes a breach *)
}

let spec ?name ?(lookback = 0) ?(burn_threshold = 0.5) objective =
  if lookback < 0 then invalid_arg "Slo.spec: negative lookback";
  if burn_threshold <= 0.0 || burn_threshold > 1.0 then
    invalid_arg "Slo.spec: burn_threshold outside (0, 1]";
  let default_name =
    match objective with
    | Quantile_max { series; q; limit } ->
        Printf.sprintf "%s_p%d<=%g" series (int_of_float ((q *. 100.0) +. 0.5)) limit
    | Mean_max { series; limit } -> Printf.sprintf "%s<=%g" series limit
    | Mean_min { series; floor } -> Printf.sprintf "%s>=%g" series floor
    | Ratio_min { num; den; floor } -> Printf.sprintf "%s/%s>=%g" num den floor
  in
  { name = Option.value name ~default:default_name; objective; lookback; burn_threshold }

type status = {
  spec : spec;
  evaluated : int;  (* windows with data in the lookback *)
  violating : int;
  burn_rate : float;
  worst : float;  (* most out-of-bound observed value; nan when none *)
  breached : bool;
}

let last n xs =
  if n <= 0 then xs
  else begin
    let len = List.length xs in
    if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs
  end

let value_of_window objective (w : Timeseries.summary) =
  match objective with
  | Quantile_max { q; _ } ->
      if q = 0.5 then w.p50
      else if q = 0.9 then w.p90
      else if q = 0.99 then w.p99
      else invalid_arg "Slo: only quantiles 0.5, 0.9 and 0.99 are tracked"
  | Mean_max _ | Mean_min _ -> w.mean
  | Ratio_min _ -> nan

let violates objective v =
  match objective with
  | Quantile_max { limit; _ } | Mean_max { limit; _ } -> v > limit
  | Mean_min { floor; _ } -> v < floor
  | Ratio_min _ -> false

(* Comparable badness, so [worst] is the most out-of-bound value whatever
   the bound's direction. *)
let badness objective v =
  match objective with
  | Quantile_max _ | Mean_max _ -> v
  | Mean_min _ | Ratio_min _ -> -.v

let evaluate ts spec =
  match spec.objective with
  | Ratio_min { num; den; floor } ->
      let count series =
        last spec.lookback (Timeseries.windows ts series)
        |> List.fold_left
             (fun acc -> function Some (w : Timeseries.summary) -> acc + w.count | None -> acc)
             0
      in
      let n = count num and d = count den in
      if d = 0 then
        { spec; evaluated = 0; violating = 0; burn_rate = 0.0; worst = nan; breached = false }
      else begin
        let ratio = float_of_int n /. float_of_int d in
        let breached = ratio < floor in
        {
          spec;
          evaluated = 1;
          violating = (if breached then 1 else 0);
          burn_rate = (if breached then 1.0 else 0.0);
          worst = ratio;
          breached;
        }
      end
  | objective ->
      let series =
        match objective with
        | Quantile_max { series; _ } | Mean_max { series; _ } | Mean_min { series; _ } -> series
        | Ratio_min _ -> assert false
      in
      let windows = last spec.lookback (Timeseries.windows ts series) in
      let evaluated = ref 0 and violating = ref 0 and worst = ref nan in
      List.iter
        (function
          | None -> ()
          | Some (w : Timeseries.summary) ->
              incr evaluated;
              let v = value_of_window objective w in
              if violates objective v then incr violating;
              if Float.is_nan !worst || badness objective v > badness objective !worst then
                worst := v)
        windows;
      let burn_rate =
        if !evaluated = 0 then 0.0 else float_of_int !violating /. float_of_int !evaluated
      in
      {
        spec;
        evaluated = !evaluated;
        violating = !violating;
        burn_rate;
        worst = !worst;
        breached = !evaluated > 0 && burn_rate >= spec.burn_threshold;
      }

let check ts specs = List.map (evaluate ts) specs

(* --- Stateful monitor (breach-edge events) ----------------------------- *)

type monitor = { specs : spec list; mutable breached : (string, unit) Hashtbl.t }

let monitor specs = { specs; breached = Hashtbl.create 8 }

let poll ?(on_breach = fun _ -> ()) ?(on_clear = fun _ -> ()) m ts =
  List.map
    (fun spec ->
      let st = evaluate ts spec in
      let was = Hashtbl.mem m.breached spec.name in
      if st.breached && not was then begin
        Hashtbl.replace m.breached spec.name ();
        on_breach st
      end
      else if (not st.breached) && was then begin
        Hashtbl.remove m.breached spec.name;
        on_clear st
      end;
      st)
    m.specs

let breached_names m =
  Hashtbl.fold (fun name () acc -> name :: acc) m.breached [] |> List.sort compare

(* --- Parsing (the --slo mini-language) --------------------------------- *)

let parse_float s =
  match float_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "not a number: %S" s)

(* Accepted forms:
   - "join_p99_ms=500"            p99 of series join_ms must stay <= 500
     (likewise _p50_ / _p90_; the quantile tag is cut out of the name)
   - "audit_recall_at_k>=0.9"     window means must stay >= 0.9
   - "rpc_latency_ms<=40"         window means must stay <= 40
   - "join_completed/join_started>=0.99"  aggregate count ratio floor *)
let of_string input =
  let input = String.trim input in
  let split sep =
    match String.index_opt input sep.[0] with
    | Some i
      when i + String.length sep <= String.length input
           && String.sub input i (String.length sep) = sep ->
        Some (String.sub input 0 i, String.sub input (i + String.length sep) (String.length input - i - String.length sep))
    | _ -> None
  in
  let find_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1) in
    go 0
  in
  let ( let* ) = Result.bind in
  match split ">=" with
  | Some (lhs, rhs) -> (
      let* v = parse_float rhs in
      match String.index_opt lhs '/' with
      | Some i ->
          let num = String.trim (String.sub lhs 0 i) in
          let den = String.trim (String.sub lhs (i + 1) (String.length lhs - i - 1)) in
          if num = "" || den = "" then Error (Printf.sprintf "empty series in %S" input)
          else Ok (spec ~name:input (Ratio_min { num; den; floor = v }))
      | None ->
          let series = String.trim lhs in
          if series = "" then Error (Printf.sprintf "empty series in %S" input)
          else Ok (spec ~name:input (Mean_min { series; floor = v })))
  | None -> (
      match split "<=" with
      | Some (lhs, rhs) ->
          let* v = parse_float rhs in
          let series = String.trim lhs in
          if series = "" then Error (Printf.sprintf "empty series in %S" input)
          else Ok (spec ~name:input (Mean_max { series; limit = v }))
      | None -> (
          match split "=" with
          | Some (lhs, rhs) -> (
              let* v = parse_float rhs in
              let lhs = String.trim lhs in
              let quantile_form tag q =
                find_sub lhs tag
                |> Option.map (fun i ->
                       let series =
                         String.sub lhs 0 i
                         ^ String.sub lhs
                             (i + String.length tag)
                             (String.length lhs - i - String.length tag)
                       in
                       (* "_pNN_" collapses to "_": join_p99_ms -> join_ms;
                          a trailing "_pNN" is cut entirely. *)
                       let series =
                         if String.length series > 0 && series.[String.length series - 1] = '_'
                         then String.sub series 0 (String.length series - 1)
                         else series
                       in
                       (series, q))
              in
              let tagged =
                match quantile_form "_p99" 0.99 with
                | Some r -> Some r
                | None -> (
                    match quantile_form "_p90" 0.9 with
                    | Some r -> Some r
                    | None -> quantile_form "_p50" 0.5)
              in
              match tagged with
              | Some (series, q) when series <> "" ->
                  Ok (spec ~name:input (Quantile_max { series; q; limit = v }))
              | _ ->
                  Error
                    (Printf.sprintf
                       "%S: \"=\" needs a _p50/_p90/_p99 quantile tag (use <= or >= for means)"
                       input))
          | None ->
              Error
                (Printf.sprintf "%S: expected SERIES_pNN=LIMIT, SERIES<=LIMIT, SERIES>=FLOOR or NUM/DEN>=FLOOR"
                   input)))

let of_string_exn input =
  match of_string input with Ok s -> s | Error e -> invalid_arg ("Slo.of_string: " ^ e)

(* --- Rendering --------------------------------------------------------- *)

let describe_objective = function
  | Quantile_max { series; q; limit } ->
      Printf.sprintf "p%d(%s) <= %g" (int_of_float ((q *. 100.0) +. 0.5)) series limit
  | Mean_max { series; limit } -> Printf.sprintf "mean(%s) <= %g" series limit
  | Mean_min { series; floor } -> Printf.sprintf "mean(%s) >= %g" series floor
  | Ratio_min { num; den; floor } -> Printf.sprintf "count(%s)/count(%s) >= %g" num den floor

let status_line st =
  Printf.sprintf "%s: %s — %d/%d windows out of bound (burn %.2f, worst %s)%s" st.spec.name
    (describe_objective st.spec.objective)
    st.violating st.evaluated st.burn_rate
    (if Float.is_nan st.worst then "-" else Printf.sprintf "%g" st.worst)
    (if st.breached then " BREACHED" else "")

let status_json st =
  Printf.sprintf
    "{\"name\": %s, \"objective\": %s, \"evaluated\": %d, \"violating\": %d, \"burn_rate\": %s, \
     \"worst\": %s, \"breached\": %b}"
    (Json_str.quote st.spec.name)
    (Json_str.quote (describe_objective st.spec.objective))
    st.evaluated st.violating (Json_str.number st.burn_rate) (Json_str.number st.worst)
    st.breached
