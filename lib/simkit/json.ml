(* A minimal recursive-descent JSON reader.

   The bench regression gate has to read back the BENCH_*.json documents
   this very tree writes (via {!Json_str}), and the toolchain constraint is
   "no new dependencies" — so the reader lives here.  It accepts standard
   JSON (RFC 8259): all numbers become floats, objects keep field order,
   [null] is a value of its own.  Error messages carry the byte offset. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (c.pos, msg))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> c.pos <- c.pos + 1
  | Some got -> error c (Printf.sprintf "expected %c, found %c" ch got)
  | None -> error c (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  (* Called past the opening quote. *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | None -> error c "unterminated escape"
        | Some e ->
            c.pos <- c.pos + 1;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
                let hex = String.sub c.src c.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some v -> v
                  | None -> error c (Printf.sprintf "bad \\u escape %S" hex)
                in
                c.pos <- c.pos + 4;
                (* UTF-8 encode the code point; surrogates are kept verbatim
                   as their bytes would be meaningless anyway — the
                   documents this reader exists for never emit them. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> error c (Printf.sprintf "bad escape \\%c" e));
            go ())
    | Some ch ->
        c.pos <- c.pos + 1;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.src start (c.pos - start) in
  match float_of_string_opt text with
  | Some v -> Number v
  | None -> error c (Printf.sprintf "bad number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              fields ((key, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> error c "expected , or } in object"
        in
        Obj (fields [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> error c "expected , or ] in array"
        in
        List (items [])
      end
  | Some '"' ->
      c.pos <- c.pos + 1;
      String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected character %c" ch)

let parse src =
  let c = { src; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length src then error c "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "at byte %d: %s" pos msg)

let parse_exn src =
  match parse src with Ok v -> v | Error e -> invalid_arg ("Json.parse: " ^ e)

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | src -> parse src
  | exception Sys_error e -> Error e

(* --- Accessors --------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let path keys v = List.fold_left (fun acc key -> Option.bind acc (member key)) (Some v) keys
let to_float = function Number v -> Some v | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_string = function String s -> Some s | _ -> None
let to_list = function List vs -> Some vs | _ -> None
let keys = function Obj fields -> List.map fst fields | _ -> []
