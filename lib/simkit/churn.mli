(** Churn processes: arrivals, session lifetimes, failures, mobility.

    Session schedules are generated up front (deterministically from the
    rng), then installed on an engine.  Heavy-tailed (Pareto) session times
    reflect measured P2P behaviour; exponential sessions give the memoryless
    baseline. *)

type session_model =
  | Exponential of { mean_ms : float }
  | Pareto of { alpha : float; min_ms : float }

type spec = {
  arrival_rate_per_s : float;  (** Poisson arrival intensity. *)
  session : session_model;
  failure_fraction : float;  (** Fraction of departures that are crashes. *)
  mobility_fraction : float;
      (** Fraction of departures that immediately re-join at a different
          attachment point (handover, E3). *)
  horizon_ms : float;  (** Arrivals stop after this time. *)
}

type departure = Leave | Crash | Handover

type session = {
  join_at : float;
  leave_at : float;
  departure : departure;
}

val validate : spec -> unit
(** @raise Invalid_argument on non-positive rates/means or fractions outside
    [0,1] or summing above 1. *)

val generate : spec -> rng:Prelude.Prng.t -> session list
(** Sessions in increasing [join_at] order.  [leave_at] may exceed the
    horizon (sessions are not truncated). *)

val session_duration : session -> float

val expected_population : spec -> float
(** Little's-law steady-state population estimate: arrival rate x mean
    session time. *)
