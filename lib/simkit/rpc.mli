(** Resilient request/response over {!Transport}.

    {!Transport.rpc} is fire-and-forget: one lost leg and the caller's
    handler never runs.  This layer adds the client-side state machine a
    real deployment needs — per-call timeout, bounded retries with
    exponentially growing jittered backoff, and per-attempt target
    re-selection (so a retry can fail over to another server replica) —
    and counts every outcome into a {!Trace}.

    Per-call life cycle:
    + attempt [n] asks [dst ~attempt:n] for a target and sends the request;
    + if the reply arrives within [timeout_ms], the call {e settles}:
      [on_reply] fires exactly once, even if slower duplicate replies from
      earlier attempts arrive later;
    + on timeout, wait [backoff_base_ms * multiplier^(n-1)] (spread by
      [+-jitter_frac]) and retry;
    + after [max_attempts] timeouts, [on_give_up] fires — a call {e always}
      terminates, which is what fixes the silent-stall joins under loss.

    Retries re-execute the server-side [handle] when both the original
    request and its retry get through, so handlers must be idempotent. *)

type t

type config = {
  timeout_ms : float;  (** Per-attempt reply deadline. *)
  max_attempts : int;  (** Total attempts (first try included). *)
  backoff_base_ms : float;  (** Wait after the first timeout. *)
  backoff_multiplier : float;  (** Growth factor per further timeout. *)
  jitter_frac : float;
      (** Uniform spread of each backoff in [[1-j, 1+j]]; needs the [rng]
          passed to {!create} to take effect. *)
}

val default_config : config
(** 1 s timeout, 4 attempts, 200 ms base backoff doubling per retry,
    20% jitter. *)

val create :
  ?config:config -> ?rng:Prelude.Prng.t -> ?trace:Trace.t -> ?labeled:Metrics.t ->
  ?recorder:Flight_recorder.t -> ?spans:Span.sink -> Transport.t -> t
(** [recorder] receives one ["rpc"]-kind event per notable outcome
    (timeout, failed-over attempt without a target, unserved request,
    settled reply, give-up), stamped with the engine clock.  [spans]
    receives one ["rpc_attempt"] span per attempt (see {!call}); default
    {!Span.noop}.  [labeled] mirrors the outcome counters dimensionally:
    one [rpc_outcomes{outcome="ok"|"timeout"|"no_target"|"unserved"|
    "gave_up"}] series per outcome, plus an
    [rpc_latency_ms{outcome="ok"}] stream.
    @raise Invalid_argument on a non-positive timeout, [max_attempts < 1],
    negative backoff, multiplier below 1 or jitter outside [0, 1). *)

val call :
  ?parent:Span.context ->
  ?request_parts:(string * int) list ->
  ?reply_parts:('a -> (string * int) list) ->
  t ->
  src:Topology.Graph.node ->
  dst:(attempt:int -> Topology.Graph.node option) ->
  request_bytes:int ->
  reply_bytes:('a -> int) ->
  handle:(dst:Topology.Graph.node -> 'a option) ->
  on_reply:('a -> unit) ->
  on_give_up:(unit -> unit) ->
  unit
(** [dst ~attempt] picks the target for each attempt (1-based) — return a
    different replica on retries for client-side failover, or [None] when
    no target is believed live (the attempt is skipped but still consumes
    one of the [max_attempts], with the backoff doubling as a wait for a
    target to return).  [handle ~dst] runs at the target when the request
    arrives: [Some v] sends [v] back in a reply of [reply_bytes v] bytes,
    [None] means the server was down and the request died unanswered.
    Exactly one of [on_reply] / [on_give_up] fires per call.

    With a span sink attached, each attempt becomes one ["rpc_attempt"]
    span — a child of [parent] when given, so retries and failovers show
    as siblings in one causal tree — timed on the engine clock and
    annotated with the attempt index, the per-attempt target and the
    outcome (["ok"] / ["timeout"] / ["no_target"] / ["superseded"] for an
    attempt overtaken by another's late reply).

    {b Wire attribution.} [request_parts] is the first attempt's
    per-kind byte breakdown (its sum should equal [request_bytes]);
    [reply_parts v] likewise for the reply (sum = [reply_bytes v]).
    Every attempt after the first charges its request bytes to kind
    ["retry"] instead — retry overhead stays separable from protocol
    cost.  Without parts, bytes land under kind ["other"] (still
    ["retry"] on re-attempts).  Directions are ["request"] / ["reply"]. *)

val backoff_ms : t -> attempt:int -> float
(** The (jittered) backoff charged after attempt [attempt] times out —
    consumes a draw from the rng when jitter is active. *)

val trace : t -> Trace.t
(** Outcome counters: ["rpc_calls"], ["rpc_attempts"], ["rpc_retries"],
    ["rpc_timeouts"], ["rpc_ok"], ["rpc_gave_up"], ["rpc_no_target"]
    (attempts skipped for want of a live target), ["rpc_unserved"]
    (requests that reached a down server); stream ["rpc_latency_ms"]
    (call start to settled reply, simulated ms). *)

val spans : t -> Span.sink
(** The sink attempt spans go to ({!Span.noop} unless one was passed to
    {!create}); callers share it to keep one id space per trace file. *)

val config : t -> config
val engine : t -> Engine.t
