type session_model =
  | Exponential of { mean_ms : float }
  | Pareto of { alpha : float; min_ms : float }

type spec = {
  arrival_rate_per_s : float;
  session : session_model;
  failure_fraction : float;
  mobility_fraction : float;
  horizon_ms : float;
}

type departure = Leave | Crash | Handover
type session = { join_at : float; leave_at : float; departure : departure }

let validate spec =
  if spec.arrival_rate_per_s <= 0.0 then invalid_arg "Churn: arrival rate must be positive";
  if spec.horizon_ms <= 0.0 then invalid_arg "Churn: horizon must be positive";
  (match spec.session with
  | Exponential { mean_ms } ->
      if mean_ms <= 0.0 then invalid_arg "Churn: session mean must be positive"
  | Pareto { alpha; min_ms } ->
      if alpha <= 0.0 || min_ms <= 0.0 then invalid_arg "Churn: Pareto parameters must be positive");
  if spec.failure_fraction < 0.0 || spec.mobility_fraction < 0.0
     || spec.failure_fraction +. spec.mobility_fraction > 1.0
  then invalid_arg "Churn: departure fractions must be non-negative and sum to at most 1"

let draw_session_duration spec rng =
  match spec.session with
  | Exponential { mean_ms } -> Prelude.Prng.exponential rng ~mean:mean_ms
  | Pareto { alpha; min_ms } -> Prelude.Prng.pareto rng ~alpha ~x_min:min_ms

let draw_departure spec rng =
  let u = Prelude.Prng.unit_float rng in
  if u < spec.failure_fraction then Crash
  else if u < spec.failure_fraction +. spec.mobility_fraction then Handover
  else Leave

let generate spec ~rng =
  validate spec;
  let mean_interarrival_ms = 1000.0 /. spec.arrival_rate_per_s in
  let rec loop t acc =
    let t = t +. Prelude.Prng.exponential rng ~mean:mean_interarrival_ms in
    if t > spec.horizon_ms then List.rev acc
    else begin
      let duration = draw_session_duration spec rng in
      let session = { join_at = t; leave_at = t +. duration; departure = draw_departure spec rng } in
      loop t (session :: acc)
    end
  in
  loop 0.0 []

let session_duration s = s.leave_at -. s.join_at

let expected_population spec =
  let mean_session_ms =
    match spec.session with
    | Exponential { mean_ms } -> mean_ms
    | Pareto { alpha; min_ms } ->
        if alpha <= 1.0 then infinity else alpha *. min_ms /. (alpha -. 1.0)
  in
  spec.arrival_rate_per_s /. 1000.0 *. mean_session_ms
