(* Fixed-width windowed aggregation on an explicit clock.

   A series is a bounded ring of windows; window [i] covers simulated time
   [[i * width, (i+1) * width)).  Each window keeps a Welford accumulator
   and three P² sketches, so a long run holds at most [capacity] windows of
   O(1) state per series however many samples flow through.  Only windows
   that received a sample are materialized — a gap in traffic costs
   nothing and serializes as [null].

   The clock is the caller's business (engine time in the simulators, an
   operation counter in the CLI drivers); this module never reads a wall
   clock, which keeps runs deterministic. *)

type window = {
  index : int;  (* window number: floor (now / width) *)
  st : Prelude.Stats.t;
  q50 : Prelude.Quantile.t;
  q90 : Prelude.Quantile.t;
  q99 : Prelude.Quantile.t;
}

type series = {
  name : string;
  ring : window option array;  (* slot = index mod capacity *)
  mutable latest : int;  (* highest window index written; -1 when empty *)
}

type t = {
  window_ms : float;
  capacity : int;
  table : (string, series) Hashtbl.t;
}

type summary = {
  index : int;
  from_ms : float;
  count : int;
  rate_per_s : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let create ?(capacity = 64) ~window_ms () =
  if window_ms <= 0.0 then invalid_arg "Timeseries.create: window_ms must be positive";
  if capacity < 1 then invalid_arg "Timeseries.create: capacity must be at least 1";
  { window_ms; capacity; table = Hashtbl.create 8 }

let window_ms t = t.window_ms
let capacity t = t.capacity

let series t name =
  match Hashtbl.find_opt t.table name with
  | Some s -> s
  | None ->
      let s = { name; ring = Array.make t.capacity None; latest = -1 } in
      Hashtbl.add t.table name s;
      s

(* A sample at exactly a window boundary t = k * width belongs to window k
   (half-open intervals); a clock that never goes negative is assumed, but
   a stray negative time is clamped into window 0 rather than raising. *)
let window_index t now = if now <= 0.0 then 0 else int_of_float (Float.floor (now /. t.window_ms))

let fresh_window index =
  {
    index;
    st = Prelude.Stats.create ();
    q50 = Prelude.Quantile.create ~q:0.5;
    q90 = Prelude.Quantile.create ~q:0.9;
    q99 = Prelude.Quantile.create ~q:0.99;
  }

let observe_series t s ~now v =
  let index = window_index t now in
  let slot = index mod t.capacity in
  let w =
    match s.ring.(slot) with
    | Some w when w.index = index -> w
    | _ ->
        (* Evicts whatever older window occupied the slot. *)
        let w = fresh_window index in
        s.ring.(slot) <- Some w;
        w
  in
  Prelude.Stats.add w.st v;
  Prelude.Quantile.add w.q50 v;
  Prelude.Quantile.add w.q90 v;
  Prelude.Quantile.add w.q99 v;
  if index > s.latest then s.latest <- index

let observe t name ~now v = observe_series t (series t name) ~now v

let summary_of t (w : window) =
  {
    index = w.index;
    from_ms = float_of_int w.index *. t.window_ms;
    count = Prelude.Stats.count w.st;
    rate_per_s = float_of_int (Prelude.Stats.count w.st) /. (t.window_ms /. 1000.0);
    mean = Prelude.Stats.mean w.st;
    p50 = Prelude.Quantile.estimate w.q50;
    p90 = Prelude.Quantile.estimate w.q90;
    p99 = Prelude.Quantile.estimate w.q99;
  }

(* Retained range: the [capacity] window indices ending at the newest one
   written.  Windows inside the range that never saw a sample are [None]. *)
let windows_of_series t s =
  if s.latest < 0 then []
  else begin
    let first = max 0 (s.latest - t.capacity + 1) in
    List.init (s.latest - first + 1) (fun i ->
        let index = first + i in
        match s.ring.(index mod t.capacity) with
        | Some w when w.index = index -> Some (summary_of t w)
        | _ -> None)
  end

let windows t name =
  match Hashtbl.find_opt t.table name with None -> [] | Some s -> windows_of_series t s

let latest_index t name =
  match Hashtbl.find_opt t.table name with
  | Some s when s.latest >= 0 -> Some s.latest
  | _ -> None

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table [] |> List.sort compare

(* Zero in place: series handles obtained through [series] stay live across
   a reset, mirroring Trace.reset's counter_ref guarantee. *)
let reset t =
  Hashtbl.iter
    (fun _ s ->
      Array.fill s.ring 0 (Array.length s.ring) None;
      s.latest <- -1)
    t.table

(* --- JSON ------------------------------------------------------------- *)

let summary_json (s : summary) =
  Printf.sprintf
    "{\"window\": %d, \"from_ms\": %s, \"count\": %d, \"rate_per_s\": %s, \"mean\": %s, \
     \"p50\": %s, \"p90\": %s, \"p99\": %s}"
    s.index (Json_str.number s.from_ms) s.count (Json_str.number s.rate_per_s)
    (Json_str.number s.mean) (Json_str.number s.p50) (Json_str.number s.p90)
    (Json_str.number s.p99)

let series_json t s =
  let ws = windows_of_series t s in
  let from = match ws with _ :: _ -> max 0 (s.latest - List.length ws + 1) | [] -> 0 in
  Printf.sprintf "{\"from_window\": %d, \"windows\": [%s]}" from
    (String.concat ", "
       (List.map (function None -> "null" | Some w -> summary_json w) ws))

let to_json t =
  let entries =
    names t
    |> List.map (fun name ->
           Printf.sprintf "%s: %s" (Json_str.quote name)
             (series_json t (Hashtbl.find t.table name)))
  in
  Printf.sprintf "{\"window_ms\": %s, \"series\": {%s}}" (Json_str.number t.window_ms)
    (String.concat ", " entries)
