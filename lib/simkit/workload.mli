(** Open-loop load generation on the engine clock.

    Closed-loop experiments (scripted joins) can never outrun the server:
    each request waits for the previous one.  An {e open-loop} generator
    schedules arrivals from a stochastic intensity function regardless of
    how the system keeps up — which is the only way to observe queueing,
    shedding and tail blow-up under overload.

    Three intensity shapes are provided, all sampled by Lewis–Shedler
    thinning ({!Prelude.Prng.next_arrival}) so a single code path serves
    the homogeneous and inhomogeneous cases alike: constant (Poisson),
    sinusoidal (diurnal), and baseline-plus-spike (flash crowd).  Arrival
    schedules are generated eagerly and deterministically from the rng,
    then installed as one engine event per arrival; nothing here reads a
    wall clock.

    Departures compose on top: {!draw_departure} turns a {!Churn}
    session model into a per-peer dwell time ending in a graceful leave
    or a mobility handover (the regional re-join of extension E3 — the
    experiment layer decides what "re-join near another landmark"
    means). *)

type process =
  | Poisson of { rate_per_s : float }  (** Constant intensity. *)
  | Diurnal of { base_per_s : float; amplitude : float; period_s : float }
      (** [rate(t) = base * (1 + amplitude * sin (2 pi t / period))];
          [amplitude] in [0, 1], so the trough is [base * (1 - amplitude)]. *)
  | Flash of {
      base_per_s : float;
      spike_per_s : float;  (** Intensity inside the spike window. *)
      spike_at_s : float;
      spike_len_s : float;
    }

val validate : process -> unit
(** @raise Invalid_argument on non-positive rates or periods, an amplitude
    outside [0, 1], a spike below the baseline, or a negative spike start
    or length. *)

val rate_at : process -> t_ms:float -> float
(** Intensity in arrivals per second at engine time [t_ms]. *)

val peak_rate : process -> float
(** Supremum of {!rate_at} — the thinning envelope, and the rate to compare
    against service capacity for a saturation ratio. *)

val expected_arrivals : process -> until_ms:float -> float
(** The integral of the intensity over [0, until_ms] — what a sampled
    schedule's count should straddle. *)

val describe : process -> string
(** One-word family name: ["poisson"], ["diurnal"], ["flash"]. *)

val arrival_times : rng:Prelude.Prng.t -> process -> until_ms:float -> float list
(** The sampled arrival schedule, strictly increasing, all in
    (0, until_ms].  Deterministic in the rng state. *)

val install :
  engine:Engine.t ->
  rng:Prelude.Prng.t ->
  process ->
  until_ms:float ->
  on_arrival:(int -> unit) ->
  int
(** Sample {!arrival_times} and schedule one engine event per arrival;
    [on_arrival i] runs at the i-th arrival's simulated time (0-based,
    schedule order).  Returns the number of arrivals scheduled.  Call on a
    fresh engine (times are absolute).  *)

(** {1 Departures} *)

type churn = {
  session : Churn.session_model option;  (** [None]: peers never depart. *)
  mobility_fraction : float;
      (** Fraction of departures that are handovers (re-join elsewhere)
          rather than graceful leaves. *)
}

val no_churn : churn

val validate_churn : churn -> unit
(** @raise Invalid_argument on a fraction outside [0, 1]. *)

val draw_departure : churn -> rng:Prelude.Prng.t -> (float * Churn.departure) option
(** The dwell time (ms) drawn from the session model and how the session
    ends ({!Churn.Leave} or {!Churn.Handover}); [None] when sessions are
    infinite. *)
