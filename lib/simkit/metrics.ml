(* Labeled (dimensional) metrics over a flat Trace.

   Every labeled series is one stream/counter of a backing Trace, keyed by
   its canonical flattened name `name{k="v",...}` with the label set
   sorted — `{shard=3,backend=tree}` and `{backend=tree,shard=3}` are the
   same series.  A side table maps each canonical key back to its (name,
   labels) pair for the exporters.

   Cardinality is bounded per base name: once a name has [max_series]
   distinct label sets, further label sets collapse into one reserved
   `{other="true"}` overflow series instead of growing the table without
   bound (a scrape with runaway label values must degrade, not OOM). *)

type labels = (string * string) list

type t = {
  trace : Trace.t;
  series : (string, string * labels) Hashtbl.t;  (* canonical key -> identity *)
  per_name : (string, int) Hashtbl.t;  (* base name -> distinct label sets *)
  gauges : (string, float) Hashtbl.t;  (* canonical key -> last set value *)
  max_series : int;
  mutable overflow_routed : int;
}

let overflow_labels = [ ("other", "true") ]

let create ?(max_series_per_name = 64) () =
  if max_series_per_name < 1 then
    invalid_arg "Metrics.create: max_series_per_name < 1";
  {
    trace = Trace.create ();
    series = Hashtbl.create 64;
    per_name = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    max_series = max_series_per_name;
    overflow_routed = 0;
  }

let escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let sort_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then invalid_arg ("Metrics: duplicate label key " ^ a);
        check rest
    | _ -> ()
  in
  check sorted;
  sorted

let canonical_key name labels =
  match sort_labels labels with
  | [] -> name
  | sorted ->
      name ^ "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ escape v ^ "\"") sorted)
      ^ "}"

(* The canonical key for (name, labels), registering the series on first
   sight and rerouting to the overflow series once the name is at its
   cardinality cap. *)
let resolve t name labels =
  let labels = sort_labels labels in
  let key = canonical_key name labels in
  match Hashtbl.find_opt t.series key with
  | Some _ -> key
  | None ->
      let used = Option.value ~default:0 (Hashtbl.find_opt t.per_name name) in
      if used >= t.max_series && labels <> overflow_labels then begin
        t.overflow_routed <- t.overflow_routed + 1;
        let key = canonical_key name overflow_labels in
        if not (Hashtbl.mem t.series key) then begin
          Hashtbl.add t.series key (name, overflow_labels);
          Hashtbl.replace t.per_name name (used + 1)
        end;
        key
      end
      else begin
        Hashtbl.add t.series key (name, labels);
        Hashtbl.replace t.per_name name (used + 1);
        key
      end

let incr t name ~labels = Trace.incr t.trace (resolve t name labels)
let add_count t name ~labels k = Trace.add_count t.trace (resolve t name labels) k

let observe ?trace_id t name ~labels v =
  Trace.observe ?trace_id t.trace (resolve t name labels) v

let set t name ~labels v = Hashtbl.replace t.gauges (resolve t name labels) v

let counter t name ~labels = Trace.counter t.trace (canonical_key name labels)
let summary t name ~labels = Trace.summary t.trace (canonical_key name labels)

let quantile t name ~labels q =
  Trace.sketch_quantile t.trace (canonical_key name labels) q

let gauge t name ~labels = Hashtbl.find_opt t.gauges (canonical_key name labels)

let series t =
  Hashtbl.fold (fun key (name, labels) acc -> (name, labels, key) :: acc) t.series []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.per_name []
  |> List.sort compare

let series_count t name =
  Option.value ~default:0 (Hashtbl.find_opt t.per_name name)

let overflow_routed t = t.overflow_routed
let trace t = t.trace
let gauge_bindings t =
  Hashtbl.fold (fun key v acc -> (key, v) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_trace t ~labels src =
  let labels = sort_labels labels in
  Trace.merge_into ~map_name:(fun name -> resolve t name labels) ~into:t.trace src

let merge_into ~into src =
  Trace.merge_into
    ~map_name:(fun key ->
      match Hashtbl.find_opt src.series key with
      | Some (name, labels) -> resolve into name labels
      | None -> key (* unlabeled stream written straight to the trace *))
    ~into:into.trace src.trace;
  Hashtbl.iter
    (fun key v ->
      match Hashtbl.find_opt src.series key with
      | Some (name, labels) -> Hashtbl.replace into.gauges (resolve into name labels) v
      | None -> Hashtbl.replace into.gauges key v)
    src.gauges
