type process =
  | Poisson of { rate_per_s : float }
  | Diurnal of { base_per_s : float; amplitude : float; period_s : float }
  | Flash of {
      base_per_s : float;
      spike_per_s : float;
      spike_at_s : float;
      spike_len_s : float;
    }

let validate = function
  | Poisson { rate_per_s } ->
      if rate_per_s <= 0.0 then invalid_arg "Workload: Poisson rate must be positive"
  | Diurnal { base_per_s; amplitude; period_s } ->
      if base_per_s <= 0.0 then invalid_arg "Workload: Diurnal base rate must be positive";
      if amplitude < 0.0 || amplitude > 1.0 then
        invalid_arg "Workload: Diurnal amplitude outside [0, 1]";
      if period_s <= 0.0 then invalid_arg "Workload: Diurnal period must be positive"
  | Flash { base_per_s; spike_per_s; spike_at_s; spike_len_s } ->
      if base_per_s <= 0.0 then invalid_arg "Workload: Flash base rate must be positive";
      if spike_per_s < base_per_s then
        invalid_arg "Workload: Flash spike rate below the baseline";
      if spike_at_s < 0.0 || spike_len_s < 0.0 then
        invalid_arg "Workload: Flash spike window must be non-negative"

let rate_at process ~t_ms =
  match process with
  | Poisson { rate_per_s } -> rate_per_s
  | Diurnal { base_per_s; amplitude; period_s } ->
      let t_s = t_ms /. 1000.0 in
      base_per_s *. (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. t_s /. period_s)))
  | Flash { base_per_s; spike_per_s; spike_at_s; spike_len_s } ->
      let t_s = t_ms /. 1000.0 in
      if t_s >= spike_at_s && t_s < spike_at_s +. spike_len_s then spike_per_s else base_per_s

let peak_rate = function
  | Poisson { rate_per_s } -> rate_per_s
  | Diurnal { base_per_s; amplitude; _ } -> base_per_s *. (1.0 +. amplitude)
  | Flash { spike_per_s; _ } -> spike_per_s

let expected_arrivals process ~until_ms =
  let until_s = Float.max 0.0 (until_ms /. 1000.0) in
  match process with
  | Poisson { rate_per_s } -> rate_per_s *. until_s
  | Diurnal { base_per_s; amplitude; period_s } ->
      (* Integral of base * (1 + A sin (2 pi t / T)) over [0, until]. *)
      let w = 2.0 *. Float.pi /. period_s in
      (base_per_s *. until_s)
      +. (base_per_s *. amplitude /. w *. (1.0 -. cos (w *. until_s)))
  | Flash { base_per_s; spike_per_s; spike_at_s; spike_len_s } ->
      let overlap =
        Float.max 0.0 (Float.min until_s (spike_at_s +. spike_len_s) -. Float.min until_s spike_at_s)
      in
      (base_per_s *. until_s) +. ((spike_per_s -. base_per_s) *. overlap)

let describe = function
  | Poisson _ -> "poisson"
  | Diurnal _ -> "diurnal"
  | Flash _ -> "flash"

let arrival_times ~rng process ~until_ms =
  validate process;
  if until_ms < 0.0 then invalid_arg "Workload.arrival_times: negative horizon";
  (* Thinning works in per-ms intensities because the engine clock is ms. *)
  let rate_max = peak_rate process /. 1000.0 in
  let rate_at_ms t = rate_at process ~t_ms:t /. 1000.0 in
  let rec collect acc now =
    let t = Prelude.Prng.next_arrival rng ~now ~rate_max ~rate_at:rate_at_ms in
    if t > until_ms then List.rev acc else collect (t :: acc) t
  in
  collect [] 0.0

let install ~engine ~rng process ~until_ms ~on_arrival =
  let times = arrival_times ~rng process ~until_ms in
  List.iteri
    (fun i time -> Engine.schedule_at engine ~time (fun () -> on_arrival i))
    times;
  List.length times

type churn = {
  session : Churn.session_model option;
  mobility_fraction : float;
}

let no_churn = { session = None; mobility_fraction = 0.0 }

let validate_churn c =
  if c.mobility_fraction < 0.0 || c.mobility_fraction > 1.0 then
    invalid_arg "Workload: mobility_fraction outside [0, 1]"

let draw_departure c ~rng =
  validate_churn c;
  match c.session with
  | None -> None
  | Some model ->
      let dwell =
        match model with
        | Churn.Exponential { mean_ms } -> Prelude.Prng.exponential rng ~mean:mean_ms
        | Churn.Pareto { alpha; min_ms } -> Prelude.Prng.pareto rng ~alpha ~x_min:min_ms
      in
      let kind =
        if Prelude.Prng.unit_float rng < c.mobility_fraction then Churn.Handover
        else Churn.Leave
      in
      Some (dwell, kind)
