type config = {
  heartbeat_period_ms : float;
  timeout_ms : float;
  heartbeat_bytes : int;
}

let default_config = { heartbeat_period_ms = 1_000.0; timeout_ms = 3_500.0; heartbeat_bytes = 32 }

type watch_state = {
  router : Topology.Graph.node;
  mutable last_seen : float;
  mutable suspected : bool;
  mutable active : bool;  (* false after unwatch: stops both loops *)
}

type t = {
  config : config;
  transport : Transport.t;
  monitor_router : Topology.Graph.node;
  on_failure : int -> unit;
  watches : (int, watch_state) Hashtbl.t;
  mutable suspicions : int;
}

let create config ~transport ~monitor_router ~on_failure =
  if config.heartbeat_period_ms <= 0.0 || config.timeout_ms <= config.heartbeat_period_ms then
    invalid_arg "Failure_detector.create: need 0 < period < timeout";
  {
    config;
    transport;
    monitor_router;
    on_failure;
    watches = Hashtbl.create 64;
    suspicions = 0;
  }

let engine t = Transport.engine t.transport
let is_watched t ~peer = Hashtbl.mem t.watches peer

let is_suspected t ~peer =
  match Hashtbl.find_opt t.watches peer with Some w -> w.suspected | None -> false

let watched_count t = Hashtbl.length t.watches
let suspicions t = t.suspicions

let suspect t peer w =
  if w.active && not w.suspected then begin
    w.suspected <- true;
    t.suspicions <- t.suspicions + 1;
    t.on_failure peer
  end

(* Monitor side: re-check [timeout] after the latest heartbeat; a fresh
   heartbeat re-arms the next check implicitly because the check compares
   against last_seen.  The timeout test MUST use the same float expression
   as the scheduling ([last_seen +. timeout]): testing
   [now -. last_seen >= timeout] instead can disagree with it by one ulp
   and livelock on zero-delay reschedules. *)
let rec schedule_check t peer w =
  let deadline = w.last_seen +. t.config.timeout_ms in
  let delay = Float.max 0.0 (deadline -. Engine.now (engine t)) in
  Engine.schedule (engine t) ~delay (fun () ->
      if w.active && not w.suspected then begin
        if Engine.now (engine t) >= w.last_seen +. t.config.timeout_ms then suspect t peer w
        else schedule_check t peer w
      end)

let rec heartbeat_loop t peer w ~alive =
  if w.active && alive () then begin
    Transport.send ~kind:"fd_probe" t.transport ~src:w.router ~dst:t.monitor_router
      ~size_bytes:t.config.heartbeat_bytes (fun () ->
        if w.active then w.last_seen <- Engine.now (engine t));
    Engine.schedule (engine t) ~delay:t.config.heartbeat_period_ms (fun () ->
        heartbeat_loop t peer w ~alive)
  end

let watch t ~peer ~router ~alive =
  if Hashtbl.mem t.watches peer then invalid_arg "Failure_detector.watch: already watched";
  let w = { router; last_seen = Engine.now (engine t); suspected = false; active = true } in
  Hashtbl.add t.watches peer w;
  heartbeat_loop t peer w ~alive;
  schedule_check t peer w

let unwatch t ~peer =
  match Hashtbl.find_opt t.watches peer with
  | None -> ()
  | Some w ->
      w.active <- false;
      Hashtbl.remove t.watches peer
