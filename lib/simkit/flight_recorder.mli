(** A bounded ring of recent notable events, dumpable as JSONL.

    The flight recorder answers "what was happening just before this?": it
    cheaply retains the last [capacity] RPC outcomes, cluster membership
    changes, injected faults and SLO transitions, and is dumped when an
    {!Slo} breach fires (or on demand via [--flight-out]).  Recording is
    O(1) — old events are silently overwritten — so a recorder can stay
    attached to a large simulation at all times.

    Instrumented producers accept a [?recorder] at construction:
    {!Rpc.create}, [Nearby.Cluster.create] and {!Fault.install}. *)

type event = {
  ts : float;  (** Producer's clock (simulated ms). *)
  kind : string;  (** Coarse family: ["rpc"], ["cluster"], ["fault"], ["slo"], ... *)
  detail : string;
  args : (string * Span.value) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512 events.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val record : t -> ts:float -> kind:string -> ?args:(string * Span.value) list -> string -> unit
(** Append one event, overwriting the oldest once full. *)

val count : t -> int
(** Events currently retained. *)

val total_recorded : t -> int
(** Events ever recorded, including overwritten ones. *)

val events : t -> event list
(** Retained events, oldest first. *)

val clear : t -> unit

val event_json : event -> string
val to_jsonl : t -> string
(** One JSON object per line, oldest first. *)

val write : t -> string -> unit
(** Dump {!to_jsonl} to a file. *)
