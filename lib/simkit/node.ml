type state = Joining | Up | Departed | Failed

type t = {
  id : int;
  mutable attach_router : Topology.Graph.node;
  mutable state : state;
  mutable joined_at : float;
  mutable up_at : float;
}

let state_to_string = function
  | Joining -> "joining"
  | Up -> "up"
  | Departed -> "departed"
  | Failed -> "failed"

let create ~id ~attach_router ~now =
  { id; attach_router; state = Joining; joined_at = now; up_at = nan }

let transition_error t expected =
  invalid_arg
    (Printf.sprintf "Node %d: expected %s, was %s" t.id expected (state_to_string t.state))

let mark_up t ~now =
  match t.state with
  | Joining ->
      t.state <- Up;
      t.up_at <- now
  | Up | Departed | Failed -> transition_error t "joining"

let depart t =
  match t.state with
  | Up | Joining -> t.state <- Departed
  | Departed | Failed -> transition_error t "up or joining"

let fail t =
  match t.state with
  | Up | Joining -> t.state <- Failed
  | Departed | Failed -> transition_error t "a live state"

let rejoin t ~attach_router ~now =
  match t.state with
  | Departed | Failed ->
      t.attach_router <- attach_router;
      t.state <- Joining;
      t.joined_at <- now;
      t.up_at <- nan
  | Up | Joining -> transition_error t "departed or failed"

let is_live t = match t.state with Joining | Up -> true | Departed | Failed -> false
let setup_delay t = t.up_at -. t.joined_at
