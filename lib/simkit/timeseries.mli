(** Fixed-width windowed metric aggregation on an explicit clock.

    Where {!Trace} accumulates whole-run statistics, a timeseries answers
    "what did this stream look like {e per window}": each named series
    chops the caller-supplied clock (engine time, usually) into windows of
    [window_ms] and keeps count / rate / mean / p50 / p90 / p99 per
    window, in a bounded ring of the most recent [capacity] windows.  This
    is the substrate {!Slo} burn rates are evaluated over.

    Windows are half-open: a sample at exactly [k * window_ms] lands in
    window [k].  Only windows that received samples are materialized;
    absent windows read back as [None] and serialize as [null].  No wall
    clock is ever read — determinism is the caller's to keep. *)

type t

type series
(** A cached per-name handle, for hot paths; stays valid across {!reset}
    (which empties the ring in place). *)

type summary = {
  index : int;  (** Window number: [floor (now / window_ms)]. *)
  from_ms : float;  (** Window start on the caller's clock. *)
  count : int;
  rate_per_s : float;  (** [count] scaled to events per second. *)
  mean : float;
  p50 : float;  (** P² estimates; [nan] on a window with no samples (never
                    serialized — absent windows are [None]). *)
  p90 : float;
  p99 : float;
}

val create : ?capacity:int -> window_ms:float -> unit -> t
(** [capacity] bounds the ring per series (default 64 windows).
    @raise Invalid_argument on a non-positive width or capacity. *)

val window_ms : t -> float
val capacity : t -> int

val series : t -> string -> series
(** The live handle behind a named series (created empty on first use). *)

val observe : t -> string -> now:float -> float -> unit
(** [observe t name ~now v] adds [v] to [name]'s window at time [now].
    Negative [now] clamps into window 0. *)

val observe_series : t -> series -> now:float -> float -> unit
(** {!observe} through a cached handle. *)

val windows : t -> string -> summary option list
(** The retained windows oldest-first, ending at the newest written window;
    [None] marks an in-range window that saw no samples.  [[]] for an
    unknown or empty series. *)

val latest_index : t -> string -> int option
(** Highest window index written so far. *)

val names : t -> string list
(** Alphabetical. *)

val reset : t -> unit
(** Empty every series {e in place}: handles from {!series} stay live,
    mirroring {!Trace.reset}'s [counter_ref] guarantee. *)

val summary_json : summary -> string

val to_json : t -> string
(** [{"window_ms": ..., "series": {"<name>": {"from_window": i, "windows":
    [null | {...}, ...]}}}] — absent windows are [null]. *)
