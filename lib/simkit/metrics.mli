(** Labeled (dimensional) metrics.

    A registry of metric series identified by a base name plus a label
    set — [registry_query_ns{backend="sharded", shard="3"}] — in the
    Prometheus data model.  Label sets are canonicalized (sorted by key),
    so label order never splits a series.  Each labeled series is backed
    by one {!Trace} counter or stream, which gives every series the full
    Welford/histogram/sketch machinery and makes registries mergeable:
    {!merge_trace} files a whole subsystem trace under a label set, and
    {!merge_into} rolls one registry up into another — the mechanism
    behind per-shard, per-replica and per-backend streams combining into
    one fleet-wide view.

    {b Cardinality bound.} Per base name at most [max_series_per_name]
    distinct label sets are stored; further label sets collapse into the
    reserved [{other="true"}] overflow series ({!overflow_labels}).  A
    runaway label value (peer ids, raw addresses) degrades into one
    aggregate series instead of growing memory without bound. *)

type t

type labels = (string * string) list
(** Label pairs.  Keys must be unique (checked); order is irrelevant. *)

val create : ?max_series_per_name:int -> unit -> t
(** [max_series_per_name] caps distinct label sets per base name
    (default 64).  @raise Invalid_argument when below 1. *)

val overflow_labels : labels
(** [{other="true"}] — the reserved label set absorbing series beyond the
    cardinality cap. *)

val canonical_key : string -> labels -> string
(** The flattened series identity: [name{k="v",…}] with labels sorted and
    values escaped, or just [name] for an empty label set.
    @raise Invalid_argument on duplicate label keys. *)

(** {1 Writing} *)

val incr : t -> string -> labels:labels -> unit
val add_count : t -> string -> labels:labels -> int -> unit

val observe : ?trace_id:int -> t -> string -> labels:labels -> float -> unit
(** Append a sample to the labeled stream ({!Trace.observe} semantics,
    exemplar tagging included). *)

val set : t -> string -> labels:labels -> float -> unit
(** Gauge write: last value wins (shard occupancy, utilization shares). *)

(** {1 Reading} *)

val counter : t -> string -> labels:labels -> int
(** 0 when the series was never written. *)

val summary : t -> string -> labels:labels -> Trace.summary option
val quantile : t -> string -> labels:labels -> float -> float option
(** Sketch-backed: any [q] in [\[0, 1\]], relative error at most
    {!Prelude.Sketch.default_alpha}. *)

val gauge : t -> string -> labels:labels -> float option

val series : t -> (string * labels * string) list
(** Every registered series as [(name, labels, canonical key)], sorted by
    canonical key. *)

val names : t -> string list
(** Distinct base names, sorted. *)

val series_count : t -> string -> int
(** Distinct label sets stored under the base name (the overflow series
    counts as one). *)

val overflow_routed : t -> int
(** Writes that were rerouted to the overflow series because their base
    name was at the cardinality cap. *)

val trace : t -> Trace.t
(** The backing flat trace, keyed by canonical series keys — what the
    {!Export} serializers iterate. *)

val gauge_bindings : t -> (string * float) list
(** Every gauge as [(canonical key, value)], sorted. *)

(** {1 Merging} *)

val merge_trace : t -> labels:labels -> Trace.t -> unit
(** File every counter and stream of a flat trace under [labels]:
    counters add, streams merge within the sketch error bound (see
    {!Trace.merge_into}).  The per-replica scrape primitive —
    [merge_trace m ~labels:["replica", "2"] (Server.trace s)]. *)

val merge_into : into:t -> t -> unit
(** Roll one registry up into another, re-resolving every series identity
    against [into]'s cardinality caps ([src] is unchanged).  Gauges take
    [src]'s value on collision. *)
