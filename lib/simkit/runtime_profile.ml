(* Runtime (GC + domain) profiling for measured phases.

   [phase t name f] brackets [f] with Gc.quick_stat and wall-clock reads
   and accumulates the deltas under [name].  quick_stat reads no heap
   census (unlike Gc.stat), so the bracket itself is cheap — but not free,
   and a profiler that cannot see its own cost invites lying benchmarks,
   so the time spent inside the brackets is accumulated separately as
   [overhead_ns]. *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (* live top-heap words at the end of the last run *)
}

type phase = {
  name : string;
  runs : int;
  wall_ns : float;
  gc : gc_delta;
}

type t = {
  clock : unit -> float;  (* ns *)
  phases : (string, phase) Hashtbl.t;
  mutable order : string list;  (* first-start order, reversed *)
  mutable overhead_ns : float;
  mutable pool : Prelude.Domain_pool.utilization option;
}

let default_clock () = Unix.gettimeofday () *. 1e9

let create ?(clock = default_clock) () =
  {
    clock;
    phases = Hashtbl.create 8;
    order = [];
    overhead_ns = 0.0;
    pool = None;
  }

let zero_gc =
  {
    minor_words = 0.0;
    major_words = 0.0;
    promoted_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
    heap_words = 0;
  }

let record t name ~wall_ns ~(g0 : Gc.stat) ~(g1 : Gc.stat) =
  let prev =
    match Hashtbl.find_opt t.phases name with
    | Some p -> p
    | None ->
        t.order <- name :: t.order;
        { name; runs = 0; wall_ns = 0.0; gc = zero_gc }
  in
  let gc =
    {
      minor_words = prev.gc.minor_words +. (g1.minor_words -. g0.minor_words);
      major_words = prev.gc.major_words +. (g1.major_words -. g0.major_words);
      promoted_words = prev.gc.promoted_words +. (g1.promoted_words -. g0.promoted_words);
      minor_collections =
        prev.gc.minor_collections + (g1.minor_collections - g0.minor_collections);
      major_collections =
        prev.gc.major_collections + (g1.major_collections - g0.major_collections);
      compactions = prev.gc.compactions + (g1.compactions - g0.compactions);
      heap_words = g1.top_heap_words;
    }
  in
  Hashtbl.replace t.phases name
    { name; runs = prev.runs + 1; wall_ns = prev.wall_ns +. wall_ns; gc }

let phase t name f =
  let t0 = t.clock () in
  let g0 = Gc.quick_stat () in
  let t1 = t.clock () in
  let finally () =
    let t2 = t.clock () in
    let g1 = Gc.quick_stat () in
    let t3 = t.clock () in
    record t name ~wall_ns:(Float.max 0.0 (t2 -. t1)) ~g0 ~g1;
    t.overhead_ns <- t.overhead_ns +. Float.max 0.0 (t1 -. t0) +. Float.max 0.0 (t3 -. t2)
  in
  Fun.protect ~finally f

let note_pool t pool = t.pool <- Some (Prelude.Domain_pool.utilization pool)
let set_pool t u = t.pool <- Some u
let pool t = t.pool
let overhead_ns t = t.overhead_ns

let phases t =
  List.rev_map (fun name -> Hashtbl.find t.phases name) t.order

let find t name = Hashtbl.find_opt t.phases name

(* --- Serialization --------------------------------------------------- *)

let gc_json g =
  Json_str.obj
    [
      ("minor_words", Json_str.number g.minor_words);
      ("major_words", Json_str.number g.major_words);
      ("promoted_words", Json_str.number g.promoted_words);
      ("minor_collections", string_of_int g.minor_collections);
      ("major_collections", string_of_int g.major_collections);
      ("compactions", string_of_int g.compactions);
      ("heap_words", string_of_int g.heap_words);
    ]

let phase_json p =
  Json_str.obj
    [
      ("runs", string_of_int p.runs);
      ("wall_ns", Json_str.number p.wall_ns);
      ("gc", gc_json p.gc);
    ]

let pool_json (u : Prelude.Domain_pool.utilization) =
  let share =
    let capacity = u.busy_ns +. u.idle_ns in
    if capacity > 0.0 then u.busy_ns /. capacity else 0.0
  in
  Json_str.obj
    [
      ("domains", string_of_int u.domains);
      ("wall_ns", Json_str.number u.wall_ns);
      ("busy_ns", Json_str.number u.busy_ns);
      ("idle_ns", Json_str.number u.idle_ns);
      ("busy_share", Json_str.number share);
      ("jobs", string_of_int u.jobs);
      ("tasks", string_of_int u.tasks);
    ]

let to_json t =
  let fields =
    [
      ( "phases",
        Json_str.obj (List.map (fun p -> (p.name, phase_json p)) (phases t)) );
      ("overhead_ns", Json_str.number t.overhead_ns);
    ]
    @ match t.pool with None -> [] | Some u -> [ ("domain_pool", pool_json u) ]
  in
  Json_str.obj fields
