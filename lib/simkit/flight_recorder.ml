(* A bounded ring of recent notable events — RPC outcomes, cluster
   membership changes, injected faults, SLO transitions — kept cheaply at
   all times so that when something trips (an SLO breach, an operator
   request) the moments leading up to it can be dumped as JSONL.  Old
   events are overwritten, never reallocated: recording is O(1) and a
   recorder can sit on the hot path of a large simulation. *)

type event = {
  ts : float;  (* caller's clock, simulated ms *)
  kind : string;  (* coarse family: "rpc" / "cluster" / "fault" / "slo" / ... *)
  detail : string;
  args : (string * Span.value) list;
}

type t = {
  capacity : int;
  ring : event option array;
  mutable next : int;  (* slot the next event lands in *)
  mutable total : int;  (* events ever recorded, including overwritten ones *)
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Flight_recorder.create: capacity must be at least 1";
  { capacity; ring = Array.make capacity None; next = 0; total = 0 }

let capacity t = t.capacity
let total_recorded t = t.total
let count t = min t.total t.capacity

let record t ~ts ~kind ?(args = []) detail =
  t.ring.(t.next) <- Some { ts; kind; detail; args };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0

(* Oldest first: when the ring has wrapped, the oldest survivor sits at
   [next]; before wrapping, slot 0 is the oldest. *)
let events t =
  let start = if t.total >= t.capacity then t.next else 0 in
  List.filter_map
    (fun i -> t.ring.((start + i) mod t.capacity))
    (List.init (count t) Fun.id)

let event_json e =
  Json_str.obj
    [
      ("ts", Json_str.number e.ts);
      ("kind", Json_str.quote e.kind);
      ("detail", Json_str.quote e.detail);
      ("args", Json_str.obj (List.map (fun (k, v) -> (k, Span.value_json v)) e.args));
    ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (event_json e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let write t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_jsonl t))
