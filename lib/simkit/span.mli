(** Structured span events over a simulated clock.

    Protocol code emits named, timestamped, attributed events ("the join of
    peer 17 spent 12 probes; its traceroute covered 9 hops") into a sink.
    The buffered sink keeps a logical millisecond clock that callers advance
    by simulated durations; the noop sink makes every operation a constant —
    instrumentation sites guard on {!enabled} and pay nothing when tracing
    is off.

    Export is JSONL in the Chrome trace-event format (one complete ["X"]
    event per line, timestamps in microseconds), loadable in
    about://tracing / Perfetto and greppable with standard tools. *)

type value = Int of int | Float of float | Str of string | Bool of bool

val value_json : value -> string
(** One attribute value as a JSON literal (shared with {!Flight_recorder}). *)

type event = {
  name : string;
  ts : float;  (** Start, sink-clock milliseconds. *)
  dur : float;  (** Duration, milliseconds. *)
  tid : int;  (** Per-track id; the server uses the peer id. *)
  args : (string * value) list;
}

type sink

val noop : sink
(** Discards everything; {!enabled} is false, {!now} is 0. *)

val buffer : ?pid:int -> unit -> sink
(** An in-memory buffering sink.  [pid] tags every exported event (one pid
    per run when several runs share a file; default 1). *)

val enabled : sink -> bool
val now : sink -> float
(** Current logical clock (ms); 0 on the noop sink. *)

val advance : sink -> float -> unit
(** Move the logical clock forward; non-positive deltas and the noop sink
    are no-ops. *)

val emit : sink -> name:string -> ts:float -> ?dur:float -> ?tid:int -> (string * value) list -> unit
(** Record one complete event.  Constant-time no-op on the noop sink. *)

val events : sink -> event list
(** Emission order. *)

val event_count : sink -> int

val to_jsonl : sink -> string
(** One Chrome trace-event JSON object per line ("" for noop). *)

val write_jsonl : sink list -> string -> unit
(** Concatenate the sinks' JSONL into a file (one line per event). *)
