(** Structured span events over a simulated clock, with causal trace
    contexts.

    Protocol code emits named, timestamped, attributed events ("the join of
    peer 17 spent 12 probes; its traceroute covered 9 hops") into a sink.
    The buffered sink keeps a logical millisecond clock that callers advance
    by simulated durations; the noop sink makes every operation a constant —
    instrumentation sites guard on {!enabled} and pay nothing when tracing
    is off.

    Every span can carry a {!context} ([trace_id]/[span_id]/
    [parent_span_id]) linking it into one causal tree per request: the
    protocol opens a root span per join, the RPC layer opens one child per
    attempt, the cluster one per replicated write, the registry middleware
    one per store operation.  {!Trace_analysis} reconstructs the trees.

    Export is JSONL in the Chrome trace-event format (one complete ["X"]
    event per line, timestamps in microseconds), loadable in
    about://tracing / Perfetto and greppable with standard tools; the
    causal ids ride along as extra top-level fields that trace viewers
    ignore. *)

type value = Int of int | Float of float | Str of string | Bool of bool

val value_json : value -> string
(** One attribute value as a JSON literal (shared with {!Flight_recorder}). *)

type context = {
  trace_id : int;  (** One id per request tree; roots use their span id. *)
  span_id : int;
  parent_span_id : int option;  (** [None] on root spans. *)
}

val null_context : context
(** All-zero context handed out by the noop sink; emitting with it is a
    no-op anyway, so call sites thread contexts unconditionally. *)

type event = {
  name : string;
  ts : float;  (** Start, sink-clock milliseconds. *)
  dur : float;  (** Duration, milliseconds. *)
  tid : int;  (** Per-track id; the server uses the peer id. *)
  ctx : context option;  (** Causal identity; [None] on legacy emits. *)
  args : (string * value) list;
}

type sink

val noop : sink
(** Discards everything; {!enabled} is false, {!now} is 0. *)

val buffer : ?pid:int -> unit -> sink
(** An in-memory buffering sink.  [pid] tags every exported event (one pid
    per run when several runs share a file; default 1). *)

val enabled : sink -> bool
val now : sink -> float
(** Current logical clock (ms); 0 on the noop sink. *)

val advance : sink -> float -> unit
(** Move the logical clock forward; non-positive deltas and the noop sink
    are no-ops. *)

val context : sink -> ?parent:context -> unit -> context
(** A fresh context: child of [parent] (same trace) when given, root of a
    new trace otherwise.  {!null_context} on the noop sink. *)

val current : sink -> context option
(** Innermost ambient context installed by {!with_context} / {!with_span};
    [None] outside any scope and on the noop sink. *)

val with_context : sink -> context -> (unit -> 'a) -> 'a
(** Run [f] with [ctx] ambient, so nested instrumentation (e.g. the
    registry timing middleware) can parent its spans under the caller
    without signature changes.  Restores the previous scope on all exit
    paths. *)

val emit :
  sink -> name:string -> ts:float -> ?dur:float -> ?tid:int -> ?ctx:context ->
  (string * value) list -> unit
(** Record one complete event.  Constant-time no-op on the noop sink. *)

(** {1 Open-span handles}

    For spans whose duration is only known at completion time — an RPC
    attempt, a join waiting for its reply.  [start_span] captures the start
    timestamp and allocates the context; [finish] emits the complete event.
    Timestamps default to the sink clock but can be overridden for code
    running on a different clock (e.g. the engine's). *)

type span

val start_span :
  sink -> name:string -> ?ts:float -> ?parent:context -> ?tid:int ->
  (string * value) list -> span

val context_of : span -> context
(** The span's own context — pass it as [?parent] to causally-dependent
    work. *)

val add_arg : span -> string -> value -> unit
(** Attach an attribute discovered mid-flight (e.g. the attempt outcome). *)

val finish : ?ts:float -> ?args:(string * value) list -> span -> unit
(** Emit the complete event, [dur = ts - start] (clamped at 0).
    Idempotent: only the first call emits — a reply and a stale timeout may
    both try to close the same attempt span. *)

val with_span :
  sink -> name:string -> ?clock:(unit -> float) -> ?parent:context -> ?tid:int ->
  (string * value) list -> (context -> 'a) -> 'a
(** Scoped span: starts at [clock ()] (default: the sink clock), runs [f]
    with the span's context ambient ({!current}), and finishes on {e all}
    exit paths — an exception closes the span with an ["error"] attribute
    and re-raises.  This is the leak-proof form; prefer it over manual
    [start_span]/[finish] wherever the work is lexically scoped. *)

val events : sink -> event list
(** Emission order. *)

val event_count : sink -> int

val to_jsonl : sink -> string
(** One Chrome trace-event JSON object per line ("" for noop). *)

val write_jsonl : sink list -> string -> unit
(** Concatenate the sinks' JSONL into a file (one line per event). *)
