(** Heartbeat failure detection.

    The churn experiments model crash detection as a fixed delay; this is
    the mechanism that actually produces such delays.  Watched peers send
    heartbeats to a monitor over the {!Transport} (paying real network
    latency, subject to loss injection); the monitor suspects a peer when
    no heartbeat arrives for [timeout_ms] and fires [on_failure] once.

    Detection latency is therefore ~[timeout_ms] plus one-way delay, and
    message loss produces {e false} suspicions at a measurable rate — the
    classic completeness/accuracy trade of failure detectors. *)

type t

type config = {
  heartbeat_period_ms : float;
  timeout_ms : float;  (** Silence threshold; must exceed the period. *)
  heartbeat_bytes : int;
}

val default_config : config
(** 1 s heartbeats, 3.5 s timeout, 32-byte messages. *)

val create :
  config ->
  transport:Transport.t ->
  monitor_router:Topology.Graph.node ->
  on_failure:(int -> unit) ->
  t
(** [on_failure peer] fires (once per watch) when the peer is suspected.
    @raise Invalid_argument unless [0 < heartbeat_period_ms < timeout_ms]. *)

val watch : t -> peer:int -> router:Topology.Graph.node -> alive:(unit -> bool) -> unit
(** Start the peer's heartbeat loop and the monitor's silence timer.
    [alive] is sampled before each heartbeat: when it turns false (crash),
    heartbeats stop and the monitor times out.
    @raise Invalid_argument when already watched. *)

val unwatch : t -> peer:int -> unit
(** Graceful: the monitor forgets the peer without suspecting it.
    Idempotent. *)

val is_watched : t -> peer:int -> bool
val is_suspected : t -> peer:int -> bool
(** True once [on_failure] fired for the current watch. *)

val watched_count : t -> int
val suspicions : t -> int
(** Total [on_failure] firings (true and false detections). *)
