type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  name : string;
  ts : float;
  dur : float;
  tid : int;
  args : (string * value) list;
}

type buffer = {
  pid : int;
  mutable clock : float;
  mutable events : event list;  (* newest first *)
  mutable count : int;
}

(* The sink is a sum so the disabled case is one pattern match on the hot
   path — no buffer, no clock, no allocation. *)
type sink = Noop | Buffer of buffer

let noop = Noop
let buffer ?(pid = 1) () = Buffer { pid; clock = 0.0; events = []; count = 0 }
let enabled = function Noop -> false | Buffer _ -> true
let now = function Noop -> 0.0 | Buffer b -> b.clock

let advance sink dt =
  match sink with
  | Noop -> ()
  | Buffer b -> if dt > 0.0 then b.clock <- b.clock +. dt

let emit sink ~name ~ts ?(dur = 0.0) ?(tid = 0) args =
  match sink with
  | Noop -> ()
  | Buffer b ->
      b.events <- { name; ts; dur; tid; args } :: b.events;
      b.count <- b.count + 1

let events = function Noop -> [] | Buffer b -> List.rev b.events
let event_count = function Noop -> 0 | Buffer b -> b.count

let value_json = function
  | Int i -> string_of_int i
  | Float f -> Json_str.number f
  | Str s -> Json_str.quote s
  | Bool b -> string_of_bool b

(* One Chrome trace-event (about://tracing, Perfetto) complete event per
   line.  The sink clock is in simulated milliseconds; the format wants
   microseconds. *)
let event_json ~pid e =
  let args =
    e.args
    |> List.map (fun (k, v) -> Printf.sprintf "%s: %s" (Json_str.quote k) (value_json v))
    |> String.concat ", "
  in
  Printf.sprintf
    "{\"name\": %s, \"cat\": \"nearby\", \"ph\": \"X\", \"pid\": %d, \"tid\": %d, \"ts\": %s, \
     \"dur\": %s, \"args\": {%s}}"
    (Json_str.quote e.name) pid e.tid
    (Json_str.number (e.ts *. 1000.0))
    (Json_str.number (e.dur *. 1000.0))
    args

let to_jsonl = function
  | Noop -> ""
  | Buffer b ->
      let buf = Buffer.create (256 * (b.count + 1)) in
      List.iter
        (fun e ->
          Buffer.add_string buf (event_json ~pid:b.pid e);
          Buffer.add_char buf '\n')
        (List.rev b.events);
      Buffer.contents buf

let write_jsonl sinks path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun s -> output_string oc (to_jsonl s)) sinks)
