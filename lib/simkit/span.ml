type value = Int of int | Float of float | Str of string | Bool of bool

(* Causal identity of one span.  [trace_id] names the whole request tree
   (one join, end to end, across retries and replica failover); [span_id]
   names this span; [parent_span_id] links it to its causal parent.  Ids
   are allocated per sink and only need to be unique within a trace file,
   so a plain counter suffices. *)
type context = { trace_id : int; span_id : int; parent_span_id : int option }

let null_context = { trace_id = 0; span_id = 0; parent_span_id = None }

type event = {
  name : string;
  ts : float;
  dur : float;
  tid : int;
  ctx : context option;
  args : (string * value) list;
}

type buffer = {
  pid : int;
  mutable clock : float;
  mutable events : event list;  (* newest first *)
  mutable count : int;
  mutable next_id : int;  (* span/trace id allocator, 1-based *)
  mutable ambient : context list;  (* innermost first; see [with_context] *)
}

(* The sink is a sum so the disabled case is one pattern match on the hot
   path — no buffer, no clock, no allocation. *)
type sink = Noop | Buffer of buffer

let noop = Noop

let buffer ?(pid = 1) () =
  Buffer { pid; clock = 0.0; events = []; count = 0; next_id = 0; ambient = [] }

let enabled = function Noop -> false | Buffer _ -> true
let now = function Noop -> 0.0 | Buffer b -> b.clock

let advance sink dt =
  match sink with
  | Noop -> ()
  | Buffer b -> if dt > 0.0 then b.clock <- b.clock +. dt

let fresh_id b =
  b.next_id <- b.next_id + 1;
  b.next_id

(* A fresh context under [parent] (same trace, child span) or a fresh root
   (new trace).  The noop sink hands out [null_context] so call sites can
   thread contexts unconditionally — emission drops them anyway. *)
let context sink ?parent () =
  match sink with
  | Noop -> null_context
  | Buffer b -> (
      match parent with
      | Some p -> { trace_id = p.trace_id; span_id = fresh_id b; parent_span_id = Some p.span_id }
      | None ->
          let id = fresh_id b in
          { trace_id = id; span_id = id; parent_span_id = None })

let current sink =
  match sink with Noop -> None | Buffer b -> ( match b.ambient with c :: _ -> Some c | [] -> None)

let with_context sink ctx f =
  match sink with
  | Noop -> f ()
  | Buffer b ->
      b.ambient <- ctx :: b.ambient;
      Fun.protect ~finally:(fun () -> b.ambient <- List.tl b.ambient) f

let emit sink ~name ~ts ?(dur = 0.0) ?(tid = 0) ?ctx args =
  match sink with
  | Noop -> ()
  | Buffer b ->
      b.events <- { name; ts; dur; tid; ctx; args } :: b.events;
      b.count <- b.count + 1

(* --- Open-span handles ------------------------------------------------- *)

type span = {
  sink : sink;
  span_ctx : context;
  span_name : string;
  t0 : float;
  span_tid : int;
  mutable open_args : (string * value) list;
  mutable finished : bool;
}

let start_span sink ~name ?ts ?parent ?(tid = 0) args =
  let ts = match ts with Some t -> t | None -> now sink in
  {
    sink;
    span_ctx = context sink ?parent ();
    span_name = name;
    t0 = ts;
    span_tid = tid;
    open_args = args;
    finished = false;
  }

let context_of s = s.span_ctx
let add_arg s key v = if not s.finished then s.open_args <- (key, v) :: s.open_args

(* Idempotent: a span can race its own timeout path (Rpc finishes the
   attempt span from both the reply and the stale timeout callback); only
   the first close emits. *)
let finish ?ts ?(args = []) s =
  if not s.finished then begin
    s.finished <- true;
    match s.sink with
    | Noop -> ()
    | Buffer _ ->
        let t1 = match ts with Some t -> t | None -> now s.sink in
        emit s.sink ~name:s.span_name ~ts:s.t0 ~dur:(Float.max 0.0 (t1 -. s.t0)) ~tid:s.span_tid
          ~ctx:s.span_ctx
          (List.rev s.open_args @ args)
  end

(* Scoped form: the span closes on every exit path (exceptions included,
   tagged with the exception text) and is ambient while [f] runs, so nested
   instrumentation — down to the registry middleware — parents itself under
   it without any signature threading. *)
let with_span sink ~name ?clock ?parent ?tid args f =
  match sink with
  | Noop -> f null_context
  | Buffer _ ->
      let clock = match clock with Some c -> c | None -> fun () -> now sink in
      let s = start_span sink ~name ~ts:(clock ()) ?parent ?tid args in
      with_context sink s.span_ctx (fun () ->
          match f s.span_ctx with
          | v ->
              finish ~ts:(clock ()) s;
              v
          | exception e ->
              finish ~ts:(clock ()) s ~args:[ ("error", Str (Printexc.to_string e)) ];
              raise e)

let events = function Noop -> [] | Buffer b -> List.rev b.events
let event_count = function Noop -> 0 | Buffer b -> b.count

let value_json = function
  | Int i -> string_of_int i
  | Float f -> Json_str.number f
  | Str s -> Json_str.quote s
  | Bool b -> string_of_bool b

(* One Chrome trace-event (about://tracing, Perfetto) complete event per
   line.  The sink clock is in simulated milliseconds; the format wants
   microseconds.  The causal fields are top-level extras: Chrome/Perfetto
   ignore unknown keys, while {!Trace_analysis} reads them back. *)
let event_json ~pid e =
  let base =
    [
      ("name", Json_str.quote e.name);
      ("cat", {|"nearby"|});
      ("ph", {|"X"|});
      ("pid", string_of_int pid);
      ("tid", string_of_int e.tid);
      ("ts", Json_str.number (e.ts *. 1000.0));
      ("dur", Json_str.number (e.dur *. 1000.0));
    ]
  in
  let causal =
    match e.ctx with
    | None -> []
    | Some c ->
        [ ("trace_id", string_of_int c.trace_id); ("span_id", string_of_int c.span_id) ]
        @
        (match c.parent_span_id with
        | Some p -> [ ("parent_span_id", string_of_int p) ]
        | None -> [])
  in
  let args = List.map (fun (k, v) -> (k, value_json v)) e.args in
  Json_str.obj (base @ causal @ [ ("args", Json_str.obj args) ])

let to_jsonl = function
  | Noop -> ""
  | Buffer b ->
      let buf = Buffer.create (256 * (b.count + 1)) in
      List.iter
        (fun e ->
          Buffer.add_string buf (event_json ~pid:b.pid e);
          Buffer.add_char buf '\n')
        (List.rev b.events);
      Buffer.contents buf

let write_jsonl sinks path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun s -> output_string oc (to_jsonl s)) sinks)
