(** Metric serialization: JSON snapshots and Prometheus text exposition.

    A metrics document is a list of named sections, each backed by a
    {!Trace.t} — e.g. [("server", server_trace); ("registry", timing_trace)].
    Counters export as integers / Prometheus counters; observe streams
    export their full {!Trace.summary} (count, mean, stddev, ci95, min/max,
    p50/p90/p99, power-of-two histogram) / Prometheus summaries.  Empty
    streams serialize with [null] min/max/quantiles — serialization never
    raises.

    Streams whose samples were tagged with trace ids
    ({!Trace.observe}[ ~trace_id]) additionally export their tail
    exemplars: in JSON as an ["exemplars"] array per stream (bucket,
    trace_id, value), in Prometheus as a [<stream>_hist] log2 histogram
    whose bucket lines carry OpenMetrics-style
    [# {trace_id="…"} value] exemplar suffixes. *)

type meta = {
  git_rev : string;  (** ["unknown"] outside a git checkout. *)
  date_utc : string;  (** ISO-8601, e.g. ["2026-08-07T12:00:00Z"]. *)
  seed : int option;
  backends : string list;
  ocaml_version : string;  (** [Sys.ocaml_version]. *)
  word_size : int;  (** [Sys.word_size] — 63-bit ints vs 31-bit change counters. *)
  domains : int;  (** [Domain.recommended_domain_count ()] on the host. *)
  extra : (string * string) list;
}

val capture_meta : ?seed:int -> ?backends:string list -> ?extra:(string * string) list -> unit -> meta
(** Stamp a run: best-effort [git rev-parse --short HEAD], the UTC clock,
    and the toolchain/host shape (OCaml version, word size, recommended
    domain count), so artifact trajectories (BENCH_*.json) are comparable
    across commits, toolchains and machines. *)

val meta_json : meta -> string
(** The metadata as one JSON object. *)

val bench_json :
  ?seed:int -> ?backends:string list -> ?params:(string * string) list ->
  (string * string) list -> string
(** One BENCH_*.json document: [{"meta": {...}, <fields>...}], each field
    an already-rendered JSON value.  The shared stamping path for every
    bench emitter — [meta] always carries exactly the keys [git_rev],
    [date_utc], [seed], [backends], [ocaml_version], [word_size],
    [domains] and [params] (the bench-specific knobs as one object), so
    all emitted bench files have identical meta key sets. *)

val write_bench :
  path:string -> ?seed:int -> ?backends:string list -> ?params:(string * string) list ->
  (string * string) list -> unit
(** {!bench_json} straight to [path]. *)

val labeled_json : Metrics.t -> string
(** One labeled registry as nested JSON: a ["series"] array whose entries
    carry the parsed identity ([name], [labels] object, [kind] ∈
    counter/stream/gauge) next to the rendered value — no consumer ever
    re-parses canonical [name{k="v"}] keys — plus ["overflow_routed"]. *)

val metrics_json :
  ?meta:meta ->
  ?timeseries:(string * Timeseries.t) list ->
  ?labeled:(string * Metrics.t) list ->
  ?runtime:Runtime_profile.t ->
  (string * Trace.t) list ->
  string
(** A complete JSON document: optional ["meta"] plus ["sections"], one
    entry per named trace with its counters and stat summaries.  When
    [labeled] is non-empty the document gains a ["labeled"] key (one
    {!labeled_json} per named registry); [runtime] adds a ["runtime"]
    key ({!Runtime_profile.to_json}: per-phase GC deltas, domain-pool
    utilization, observe-path overhead).  When [timeseries] is non-empty
    the document gains a top-level ["timeseries"] key with each named
    {!Timeseries.to_json} (windowed quality/latency streams alongside the
    whole-run aggregates). *)

val prometheus : ?prefix:string -> (string * Trace.t) list -> string
(** Prometheus text exposition: [<prefix>_<section>_<counter>_total]
    counters and [<prefix>_<section>_<stream>] summaries with
    quantile labels.  Default prefix ["nearby"].  Every name component —
    prefix included — is sanitized to the exposition grammar
    ([[a-zA-Z0-9_]], no leading digit). *)

val prometheus_labeled : ?prefix:string -> (string * Metrics.t) list -> string
(** Labeled registries in the same exposition:
    [<prefix>_<section>_<name>{k="v",…}] lines — counters with a [_total]
    suffix (not doubled when the name already ends in [_total]), streams
    as summaries (the [quantile] label appended after the series labels),
    gauges as gauges.  Label keys are sanitized like
    metric names; values are backslash-escaped. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
