(** Metric serialization: JSON snapshots and Prometheus text exposition.

    A metrics document is a list of named sections, each backed by a
    {!Trace.t} — e.g. [("server", server_trace); ("registry", timing_trace)].
    Counters export as integers / Prometheus counters; observe streams
    export their full {!Trace.summary} (count, mean, stddev, ci95, min/max,
    p50/p90/p99, power-of-two histogram) / Prometheus summaries.  Empty
    streams serialize with [null] min/max/quantiles — serialization never
    raises.

    Streams whose samples were tagged with trace ids
    ({!Trace.observe}[ ~trace_id]) additionally export their tail
    exemplars: in JSON as an ["exemplars"] array per stream (bucket,
    trace_id, value), in Prometheus as a [<stream>_hist] log2 histogram
    whose bucket lines carry OpenMetrics-style
    [# {trace_id="…"} value] exemplar suffixes. *)

type meta = {
  git_rev : string;  (** ["unknown"] outside a git checkout. *)
  date_utc : string;  (** ISO-8601, e.g. ["2026-08-07T12:00:00Z"]. *)
  seed : int option;
  backends : string list;
  extra : (string * string) list;
}

val capture_meta : ?seed:int -> ?backends:string list -> ?extra:(string * string) list -> unit -> meta
(** Stamp a run: best-effort [git rev-parse --short HEAD] plus the UTC
    clock, so artifact trajectories (BENCH_*.json) are comparable across
    commits. *)

val meta_json : meta -> string
(** The metadata as one JSON object. *)

val metrics_json :
  ?meta:meta -> ?timeseries:(string * Timeseries.t) list -> (string * Trace.t) list -> string
(** A complete JSON document: optional ["meta"] plus ["sections"], one
    entry per named trace with its counters and stat summaries.  When
    [timeseries] is non-empty the document gains a top-level
    ["timeseries"] key with each named {!Timeseries.to_json} (windowed
    quality/latency streams alongside the whole-run aggregates). *)

val prometheus : ?prefix:string -> (string * Trace.t) list -> string
(** Prometheus text exposition: [<prefix>_<section>_<counter>_total]
    counters and [<prefix>_<section>_<stream>] summaries with
    quantile labels.  Default prefix ["nearby"].  Every name component —
    prefix included — is sanitized to the exposition grammar
    ([[a-zA-Z0-9_]], no leading digit). *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
