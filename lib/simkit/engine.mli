(** Discrete-event simulation engine (the PeerSim replacement's heart).

    Events are closures scheduled at absolute simulated times (milliseconds,
    [float]).  Equal-time events fire in schedule (FIFO) order, which makes
    whole runs deterministic given deterministic event bodies.  Events may
    schedule further events. *)

type t

val create : unit -> t
(** A fresh engine at time 0. *)

val now : t -> float
(** Current simulated time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; @raise Invalid_argument when [time] is in the
    past. *)

val run : ?until:float -> t -> unit
(** Drain the event queue in time order.  With [until], stops once the next
    event would fire strictly after that time (the clock then reads
    [until]). *)

val step : t -> bool
(** Execute exactly the next event; [false] when the queue was empty. *)

val pending : t -> int
(** Events still queued. *)

val processed : t -> int
(** Events executed so far. *)
