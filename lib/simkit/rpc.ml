type config = {
  timeout_ms : float;
  max_attempts : int;
  backoff_base_ms : float;
  backoff_multiplier : float;
  jitter_frac : float;
}

let default_config =
  {
    timeout_ms = 1_000.0;
    max_attempts = 4;
    backoff_base_ms = 200.0;
    backoff_multiplier = 2.0;
    jitter_frac = 0.2;
  }

let validate_config c =
  if c.timeout_ms <= 0.0 then invalid_arg "Rpc: timeout_ms must be positive";
  if c.max_attempts < 1 then invalid_arg "Rpc: max_attempts must be at least 1";
  if c.backoff_base_ms < 0.0 then invalid_arg "Rpc: backoff_base_ms must be non-negative";
  if c.backoff_multiplier < 1.0 then invalid_arg "Rpc: backoff_multiplier must be >= 1";
  if c.jitter_frac < 0.0 || c.jitter_frac >= 1.0 then
    invalid_arg "Rpc: jitter_frac outside [0, 1)"

type t = {
  config : config;
  transport : Transport.t;
  rng : Prelude.Prng.t option;
  trace : Trace.t;
  labeled : Metrics.t option;
  recorder : Flight_recorder.t option;
  spans : Span.sink;
}

let create ?(config = default_config) ?rng ?trace ?labeled ?recorder
    ?(spans = Span.noop) transport =
  validate_config config;
  let trace = match trace with Some t -> t | None -> Trace.create () in
  { config; transport; rng; trace; labeled; recorder; spans }

(* Dimensional mirror of the outcome counters: one `rpc_outcomes` series
   per outcome label, so a fleet dashboard reads the ok/timeout mix
   without knowing each flat counter name. *)
let labeled_outcome t outcome =
  match t.labeled with
  | None -> ()
  | Some m -> Metrics.incr m "rpc_outcomes" ~labels:[ ("outcome", outcome) ]

let labeled_latency t outcome v =
  match t.labeled with
  | None -> ()
  | Some m -> Metrics.observe m "rpc_latency_ms" ~labels:[ ("outcome", outcome) ] v

let trace t = t.trace
let spans t = t.spans
let config t = t.config
let engine t = Transport.engine t.transport

(* Backoff before attempt [n+1] after attempt [n] timed out:
   base * multiplier^(n-1), spread by +-jitter_frac so a burst of calls that
   timed out together does not retry in lockstep (the thundering-herd
   avoidance every retry loop needs). *)
let backoff_ms t ~attempt =
  let raw =
    t.config.backoff_base_ms *. (t.config.backoff_multiplier ** float_of_int (attempt - 1))
  in
  match t.rng with
  | Some rng when t.config.jitter_frac > 0.0 ->
      let spread = t.config.jitter_frac *. ((2.0 *. Prelude.Prng.unit_float rng) -. 1.0) in
      raw *. (1.0 +. spread)
  | _ -> raw

(* Flight-recorder taps: every notable outcome leaves one event, stamped
   with the engine clock, so a post-breach dump shows which calls were
   timing out, failing over or dying against a downed server. *)
let record t ~args detail =
  match t.recorder with
  | None -> ()
  | Some r -> Flight_recorder.record r ~ts:(Engine.now (engine t)) ~kind:"rpc" ~args detail

let call ?parent ?request_parts ?reply_parts t ~src ~dst ~request_bytes ~reply_bytes
    ~handle ~on_reply ~on_give_up =
  let engine = engine t in
  (* Wire attribution: attempt 1 charges the caller's kind breakdown;
     every later attempt is overhead the retry loop added, so its bytes
     are relabeled wholesale as kind "retry" — the codec/delta work can
     then separate protocol cost from resilience cost. *)
  let request_parts_of ~attempt:n =
    match request_parts with
    | Some parts when n = 1 -> parts
    | Some parts -> [ ("retry", List.fold_left (fun acc (_, b) -> acc + b) 0 parts) ]
    | None when n > 1 -> [ ("retry", request_bytes) ]
    | None -> [ ("other", request_bytes) ]
  in
  let reply_parts_of v =
    match reply_parts with Some f -> f v | None -> [ ("other", reply_bytes v) ]
  in
  Trace.incr t.trace "rpc_calls";
  let started_at = Engine.now engine in
  (* One cell per call: the first reply to arrive settles it; later replies
     from slower attempts and stale timeout events are ignored. *)
  let settled = ref false in
  let give_up () =
    settled := true;
    Trace.incr t.trace "rpc_gave_up";
    labeled_outcome t "gave_up";
    record t ~args:[ ("src", Span.Int src) ] "gave_up";
    on_give_up ()
  in
  let rec attempt n =
    if not !settled then begin
      if n > t.config.max_attempts then give_up ()
      else begin
        Trace.incr t.trace "rpc_attempts";
        if n > 1 then Trace.incr t.trace "rpc_retries";
        (* One child span per attempt: the retry index and per-attempt
           target make client-side failover visible as sibling spans of one
           trace.  Spans run on the engine clock, not the sink's. *)
        let span =
          Span.start_span t.spans ~name:"rpc_attempt" ~ts:(Engine.now engine) ?parent ~tid:src
            [ ("attempt", Span.Int n); ("src", Span.Int src) ]
        in
        let close outcome =
          Span.add_arg span "outcome" (Span.Str outcome);
          Span.finish ~ts:(Engine.now engine) span
        in
        (match dst ~attempt:n with
        | None ->
            (* No live target known right now; the backoff below doubles as
               a wait for one to come back. *)
            Trace.incr t.trace "rpc_no_target";
            labeled_outcome t "no_target";
            record t ~args:[ ("src", Span.Int src); ("attempt", Span.Int n) ] "no_target";
            close "no_target"
        | Some target ->
            Span.add_arg span "target" (Span.Int target);
            Transport.send_parts ~dir:"request" t.transport ~src ~dst:target
              ~parts:(request_parts_of ~attempt:n) (fun () ->
                (* The attempt's context is ambient while the server-side
                   handler runs, so its instrumentation parents under this
                   exact attempt without signature threading. *)
                match
                  Span.with_context t.spans (Span.context_of span) (fun () -> handle ~dst:target)
                with
                | None ->
                    (* The server was down when the request arrived: it is
                       consumed without a reply, exactly like a lost one. *)
                    Trace.incr t.trace "rpc_unserved";
                    labeled_outcome t "unserved";
                    record t
                      ~args:[ ("src", Span.Int src); ("dst", Span.Int target) ]
                      "unserved"
                | Some v ->
                    Transport.send_parts ~dir:"reply" t.transport ~src:target ~dst:src
                      ~parts:(reply_parts_of v) (fun () ->
                        if not !settled then begin
                          settled := true;
                          Trace.incr t.trace "rpc_ok";
                          labeled_outcome t "ok";
                          Trace.observe t.trace "rpc_latency_ms" (Engine.now engine -. started_at);
                          labeled_latency t "ok" (Engine.now engine -. started_at);
                          record t
                            ~args:
                              [
                                ("src", Span.Int src);
                                ("dst", Span.Int target);
                                ("attempts", Span.Int n);
                                ("latency_ms", Span.Float (Engine.now engine -. started_at));
                              ]
                            "ok";
                          close "ok";
                          on_reply v
                        end)));
        Engine.schedule engine ~delay:t.config.timeout_ms (fun () ->
            if not !settled then begin
              Trace.incr t.trace "rpc_timeouts";
              labeled_outcome t "timeout";
              record t ~args:[ ("src", Span.Int src); ("attempt", Span.Int n) ] "timeout";
              close "timeout";
              if n >= t.config.max_attempts then give_up ()
              else
                Engine.schedule engine ~delay:(backoff_ms t ~attempt:n) (fun () -> attempt (n + 1))
            end
            else
              (* The call settled through another attempt while this one was
                 in flight; [finish] is idempotent, so this only closes
                 spans that were left open (e.g. an unserved request). *)
              close "superseded")
      end
    end
  in
  attempt 1
