(** Runtime profiling: GC deltas per phase, domain-pool utilization, and
    the profiler's own overhead.

    Latency streams say {e how long} an operation took; this module says
    {e what the runtime was doing} — allocation pressure, collection
    counts, heap growth per named phase, how busy the worker domains
    were — so a tail regression can be attributed to GC or scheduling
    rather than guessed at.  Readings come from [Gc.quick_stat] (no heap
    census, cheap enough to bracket every phase) and
    {!Prelude.Domain_pool.utilization}. *)

type gc_delta = {
  minor_words : float;  (** words allocated in the minor heap *)
  major_words : float;  (** words allocated in (or promoted to) the major heap *)
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;  (** top-heap words at the end of the last run *)
}

type phase = {
  name : string;
  runs : int;  (** times the phase was entered *)
  wall_ns : float;  (** accumulated across runs *)
  gc : gc_delta;  (** accumulated across runs *)
}

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] returns nanoseconds (monotonicity is the caller's problem);
    defaults to wall time. *)

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] runs [f], accumulating its wall time and GC deltas
    under [name].  Re-entering a name accumulates (runs increments).
    Exceptions propagate; the partial run is still recorded. *)

val note_pool : t -> Prelude.Domain_pool.t -> unit
(** Snapshot the pool's {!Prelude.Domain_pool.utilization} into the
    profile (replacing any previous snapshot). *)

val set_pool : t -> Prelude.Domain_pool.utilization -> unit
(** Store an already-taken utilization snapshot. *)

val pool : t -> Prelude.Domain_pool.utilization option

val overhead_ns : t -> float
(** Time spent inside the profiling brackets themselves (clock and
    [Gc.quick_stat] reads) — the observe path's self-cost, kept separate
    so phase wall times stay honest. *)

val phases : t -> phase list
(** In first-entered order. *)

val find : t -> string -> phase option

val to_json : t -> string
(** [{"phases": {name: {runs, wall_ns, gc: {...}}, …}, "overhead_ns": …,
    "domain_pool": {…}?}] — the [runtime] section of
    {!Export.metrics_json}. *)
