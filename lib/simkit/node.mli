(** Peer lifecycle state.

    A peer is an end host attached to a (degree-1) router of the map.  Its
    lifecycle is [Joining -> Up -> (Departed | Failed)]; [Failed] peers
    vanish silently (no goodbye message), which is what the handover logic
    (extension E3) must cope with. *)

type state = Joining | Up | Departed | Failed

type t = {
  id : int;  (** Dense peer id, unique within a simulation. *)
  mutable attach_router : Topology.Graph.node;
      (** Mutable to support mobility: a handover re-attaches the peer. *)
  mutable state : state;
  mutable joined_at : float;  (** Simulated time of the last join start. *)
  mutable up_at : float;  (** Time the join completed; [nan] until then. *)
}

val create : id:int -> attach_router:Topology.Graph.node -> now:float -> t
(** A peer in [Joining] state. *)

val mark_up : t -> now:float -> unit
(** @raise Invalid_argument unless currently [Joining]. *)

val depart : t -> unit
(** Graceful leave.  @raise Invalid_argument when not [Up] or [Joining]. *)

val fail : t -> unit
(** Silent crash; allowed in any live state.
    @raise Invalid_argument when already [Departed] or [Failed]. *)

val rejoin : t -> attach_router:Topology.Graph.node -> now:float -> unit
(** Mobility handover: a departed/failed peer re-enters [Joining] at a new
    attachment router. *)

val is_live : t -> bool
(** [Joining] or [Up]. *)

val setup_delay : t -> float
(** [up_at - joined_at] for the latest join; [nan] while still joining. *)

val state_to_string : state -> string
