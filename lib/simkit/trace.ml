type t = {
  counters : (string, int ref) Hashtbl.t;
  stats : (string, Prelude.Stats.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; stats = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = incr (counter_ref t name)
let add_count t name k = counter_ref t name := !(counter_ref t name) + k
let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name v =
  let s =
    match Hashtbl.find_opt t.stats name with
    | Some s -> s
    | None ->
        let s = Prelude.Stats.create () in
        Hashtbl.add t.stats name s;
        s
  in
  Prelude.Stats.add s v

let stat t name = Hashtbl.find_opt t.stats name

let sorted_bindings table value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = sorted_bindings t.counters (fun r -> !r)
let stats t = sorted_bindings t.stats (fun s -> s)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.stats
