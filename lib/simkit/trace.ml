(* Every observe stream keeps, besides the Welford accumulator, three P²
   sketches (p50/p90/p99) and a power-of-two latency histogram, so tails are
   readable from a long run without retaining samples. *)
(* One retained sample per log2 bucket: the last trace to land there.  The
   bucket count is bounded (~64), so exemplar storage is O(1) per stream
   like everything else here. *)
type exemplar = { bucket : int; trace_id : int; value : float }

type stream = {
  st : Prelude.Stats.t;
  q50 : Prelude.Quantile.t;
  q90 : Prelude.Quantile.t;
  q99 : Prelude.Quantile.t;
  hist : Prelude.Histogram.t;  (* log2-bucketed: bucket b covers (2^(b-1), 2^b] *)
  exemplars : (int, exemplar) Hashtbl.t;  (* bucket -> latest tagged sample *)
}

type summary = {
  count : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float option;
  max : float option;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  streams : (string, stream) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; streams = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = incr (counter_ref t name)
let add_count t name k = counter_ref t name := !(counter_ref t name) + k
let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* Adapter for subsystems that keep plain integer counters (Transport):
   mirror an assoc snapshot into a Trace so the exporters can see it. *)
let of_counters bindings =
  let t = create () in
  List.iter (fun (name, v) -> add_count t name v) bindings;
  t

let stream t name =
  match Hashtbl.find_opt t.streams name with
  | Some s -> s
  | None ->
      let s =
        {
          st = Prelude.Stats.create ();
          q50 = Prelude.Quantile.create ~q:0.5;
          q90 = Prelude.Quantile.create ~q:0.9;
          q99 = Prelude.Quantile.create ~q:0.99;
          hist = Prelude.Histogram.create ();
          exemplars = Hashtbl.create 8;
        }
      in
      Hashtbl.add t.streams name s;
      s

let observe ?trace_id t name v =
  let s = stream t name in
  Prelude.Stats.add s.st v;
  Prelude.Quantile.add s.q50 v;
  Prelude.Quantile.add s.q90 v;
  Prelude.Quantile.add s.q99 v;
  Prelude.Histogram.add_log2 s.hist v;
  (* Trace id 0 is the noop span sink's null context: not a real trace. *)
  match trace_id with
  | Some id when id <> 0 ->
      let bucket = Prelude.Histogram.log2_bucket v in
      Hashtbl.replace s.exemplars bucket { bucket; trace_id = id; value = v }
  | _ -> ()

let exemplars t name =
  match Hashtbl.find_opt t.streams name with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun _ e acc -> e :: acc) s.exemplars []
      |> List.sort (fun a b -> compare a.bucket b.bucket)

(* The sample from the highest populated bucket: "the trace to open" when a
   stream's tail looks wrong. *)
let top_exemplar t name =
  match List.rev (exemplars t name) with e :: _ -> Some e | [] -> None

let stat t name = Option.map (fun s -> s.st) (Hashtbl.find_opt t.streams name)
let hist t name = Option.map (fun s -> s.hist) (Hashtbl.find_opt t.streams name)

let summary_of_stream s =
  {
    count = Prelude.Stats.count s.st;
    mean = Prelude.Stats.mean s.st;
    stddev = Prelude.Stats.stddev s.st;
    ci95 = Prelude.Stats.ci95_halfwidth s.st;
    min = Prelude.Stats.min_opt s.st;
    max = Prelude.Stats.max_opt s.st;
    p50 = Prelude.Quantile.estimate s.q50;
    p90 = Prelude.Quantile.estimate s.q90;
    p99 = Prelude.Quantile.estimate s.q99;
  }

let summary t name = Option.map summary_of_stream (Hashtbl.find_opt t.streams name)

let quantile t name q =
  Option.map
    (fun s ->
      match q with
      | 0.5 -> Prelude.Quantile.estimate s.q50
      | 0.9 -> Prelude.Quantile.estimate s.q90
      | 0.99 -> Prelude.Quantile.estimate s.q99
      | _ -> invalid_arg "Trace.quantile: only 0.5, 0.9 and 0.99 are tracked")
    (Hashtbl.find_opt t.streams name)

let sorted_bindings table value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = sorted_bindings t.counters (fun r -> !r)
let stats t = sorted_bindings t.streams (fun s -> s.st)
let summaries t = sorted_bindings t.streams summary_of_stream

(* Zero in place: callers may hold counter refs (counter_ref) or stats
   handles (stat) across a reset; dropping the cells via Hashtbl.reset would
   leave those handles silently counting into orphaned storage. *)
let reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.iter
    (fun _ s ->
      Prelude.Stats.clear s.st;
      Prelude.Quantile.clear s.q50;
      Prelude.Quantile.clear s.q90;
      Prelude.Quantile.clear s.q99;
      Prelude.Histogram.clear s.hist;
      Hashtbl.reset s.exemplars)
    t.streams
