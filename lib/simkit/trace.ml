(* Every observe stream keeps, besides the Welford accumulator, three P²
   sketches (p50/p90/p99) and a power-of-two latency histogram, so tails are
   readable from a long run without retaining samples. *)
(* One retained sample per log2 bucket: the last trace to land there.  The
   bucket count is bounded (~64), so exemplar storage is O(1) per stream
   like everything else here. *)
type exemplar = { bucket : int; trace_id : int; value : float }

type stream = {
  st : Prelude.Stats.t;
  q50 : Prelude.Quantile.t;
  q90 : Prelude.Quantile.t;
  q99 : Prelude.Quantile.t;
  hist : Prelude.Histogram.t;  (* log2-bucketed: bucket b covers (2^(b-1), 2^b] *)
  sketch : Prelude.Sketch.t;  (* mergeable; feeds rolled-up quantiles *)
  exemplars : (int, exemplar) Hashtbl.t;  (* bucket -> latest tagged sample *)
  mutable merged : bool;
      (* P² markers cannot absorb a merge, so once foreign samples land in
         a stream its quantile reads switch to the sketch (error <= alpha);
         live streams keep the exact-for-small-n P² path. *)
}

type summary = {
  count : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float option;
  max : float option;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  streams : (string, stream) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; streams = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = incr (counter_ref t name)
let add_count t name k = counter_ref t name := !(counter_ref t name) + k
let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

(* Adapter for subsystems that keep plain integer counters (Transport):
   mirror an assoc snapshot into a Trace so the exporters can see it. *)
let of_counters bindings =
  let t = create () in
  List.iter (fun (name, v) -> add_count t name v) bindings;
  t

let stream t name =
  match Hashtbl.find_opt t.streams name with
  | Some s -> s
  | None ->
      let s =
        {
          st = Prelude.Stats.create ();
          q50 = Prelude.Quantile.create ~q:0.5;
          q90 = Prelude.Quantile.create ~q:0.9;
          q99 = Prelude.Quantile.create ~q:0.99;
          hist = Prelude.Histogram.create ();
          sketch = Prelude.Sketch.create ();
          exemplars = Hashtbl.create 8;
          merged = false;
        }
      in
      Hashtbl.add t.streams name s;
      s

let observe ?trace_id t name v =
  let s = stream t name in
  Prelude.Stats.add s.st v;
  Prelude.Quantile.add s.q50 v;
  Prelude.Quantile.add s.q90 v;
  Prelude.Quantile.add s.q99 v;
  Prelude.Histogram.add_log2 s.hist v;
  Prelude.Sketch.add s.sketch v;
  (* Trace id 0 is the noop span sink's null context: not a real trace. *)
  match trace_id with
  | Some id when id <> 0 ->
      let bucket = Prelude.Histogram.log2_bucket v in
      Hashtbl.replace s.exemplars bucket { bucket; trace_id = id; value = v }
  | _ -> ()

let exemplars t name =
  match Hashtbl.find_opt t.streams name with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun _ e acc -> e :: acc) s.exemplars []
      |> List.sort (fun a b -> compare a.bucket b.bucket)

(* The sample from the highest populated bucket: "the trace to open" when a
   stream's tail looks wrong. *)
let top_exemplar t name =
  match List.rev (exemplars t name) with e :: _ -> Some e | [] -> None

let stat t name = Option.map (fun s -> s.st) (Hashtbl.find_opt t.streams name)
let hist t name = Option.map (fun s -> s.hist) (Hashtbl.find_opt t.streams name)

let stream_quantile s q =
  if s.merged then Prelude.Sketch.quantile s.sketch q
  else
    match q with
    | 0.5 -> Prelude.Quantile.estimate s.q50
    | 0.9 -> Prelude.Quantile.estimate s.q90
    | 0.99 -> Prelude.Quantile.estimate s.q99
    | _ -> invalid_arg "Trace.quantile: only 0.5, 0.9 and 0.99 are tracked"

let summary_of_stream s =
  {
    count = Prelude.Stats.count s.st;
    mean = Prelude.Stats.mean s.st;
    stddev = Prelude.Stats.stddev s.st;
    ci95 = Prelude.Stats.ci95_halfwidth s.st;
    min = Prelude.Stats.min_opt s.st;
    max = Prelude.Stats.max_opt s.st;
    p50 = stream_quantile s 0.5;
    p90 = stream_quantile s 0.9;
    p99 = stream_quantile s 0.99;
  }

let summary t name = Option.map summary_of_stream (Hashtbl.find_opt t.streams name)

let quantile t name q =
  Option.map (fun s -> stream_quantile s q) (Hashtbl.find_opt t.streams name)

let sketch t name = Option.map (fun s -> s.sketch) (Hashtbl.find_opt t.streams name)

let sketch_quantile t name q =
  Option.map
    (fun s -> Prelude.Sketch.quantile s.sketch q)
    (Hashtbl.find_opt t.streams name)

let is_merged t name =
  match Hashtbl.find_opt t.streams name with
  | Some s -> s.merged
  | None -> false

let sorted_bindings table value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = sorted_bindings t.counters (fun r -> !r)
let stats t = sorted_bindings t.streams (fun s -> s.st)
let summaries t = sorted_bindings t.streams summary_of_stream

(* Fold [src] into [into].  Counters add; Welford accumulators, log2
   histograms and sketches merge losslessly; exemplars take [src]'s latest
   per bucket (a merge is a scrape — the newest cross-link wins).  The P²
   markers of the destination are left untouched and the stream is flagged
   [merged], which flips its quantile reads over to the sketch: P² cannot
   absorb another stream, and silently reporting the pre-merge markers
   would be worse than the sketch's bounded-error answer. *)
let merge_into ?(map_name = Fun.id) ~into src =
  Hashtbl.iter
    (fun name r -> if !r <> 0 then add_count into (map_name name) !r)
    src.counters;
  Hashtbl.iter
    (fun name s ->
      let dst = stream into (map_name name) in
      Prelude.Stats.merge_into ~into:dst.st s.st;
      Prelude.Histogram.merge_into ~into:dst.hist s.hist;
      Prelude.Sketch.merge_into ~into:dst.sketch s.sketch;
      Hashtbl.iter (fun bucket e -> Hashtbl.replace dst.exemplars bucket e) s.exemplars;
      dst.merged <- true)
    src.streams

(* Zero in place: callers may hold counter refs (counter_ref) or stats
   handles (stat) across a reset; dropping the cells via Hashtbl.reset would
   leave those handles silently counting into orphaned storage. *)
let reset t =
  Hashtbl.iter (fun _ r -> r := 0) t.counters;
  Hashtbl.iter
    (fun _ s ->
      Prelude.Stats.clear s.st;
      Prelude.Quantile.clear s.q50;
      Prelude.Quantile.clear s.q90;
      Prelude.Quantile.clear s.q99;
      Prelude.Histogram.clear s.hist;
      Prelude.Sketch.clear s.sketch;
      Hashtbl.reset s.exemplars;
      s.merged <- false)
    t.streams
