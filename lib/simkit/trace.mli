(** Simulation metrics collection.

    Named counters and named streaming statistics, written by protocol code
    and read by experiment reports.  Each observe stream is backed by a
    Welford accumulator, P² quantile sketches (p50/p90/p99) and a
    power-of-two histogram, so tail latencies are available from O(1) memory
    per stream.  Purely in-memory; rendering is the caller's business (see
    {!Export} for the JSON / Prometheus serializations). *)

type t

type summary = {
  count : int;
  mean : float;
  stddev : float;
  ci95 : float;  (** Half-width of the 95% CI of the mean. *)
  min : float option;  (** [None] when the stream is empty. *)
  max : float option;
  p50 : float;  (** P² estimates; [nan] when the stream is empty. *)
  p90 : float;
  p99 : float;
}

val create : unit -> t
val incr : t -> string -> unit
val add_count : t -> string -> int -> unit
val counter : t -> string -> int
(** 0 when never written. *)

val of_counters : (string * int) list -> t
(** A fresh trace pre-loaded with the given counter values — the adapter
    for subsystems that keep plain integer counters (e.g.
    {!Transport.stats}) so the {!Export} serializers can see them. *)

val counter_ref : t -> string -> int ref
(** The live cell behind a counter, for hot paths that bump it in a loop.
    The ref stays valid across {!reset} (reset zeroes it in place). *)

val observe : ?trace_id:int -> t -> string -> float -> unit
(** Append a sample to the named statistic.  With [trace_id], also record
    the sample as the latest {!exemplar} of its log2 bucket, so the tail of
    the stream stays cross-linked to concrete traces (OpenMetrics-style).
    Trace id 0 (the noop span sink's {!Span.null_context}) is ignored. *)

type exemplar = {
  bucket : int;  (** {!Prelude.Histogram.log2_bucket} of the sample. *)
  trace_id : int;
  value : float;
}

val exemplars : t -> string -> exemplar list
(** One exemplar per populated log2 bucket (the latest to land there),
    ascending by bucket; [[]] for unknown streams or untagged samples. *)

val top_exemplar : t -> string -> exemplar option
(** The exemplar of the highest populated bucket — the trace to open when
    the stream's tail looks wrong. *)

val stat : t -> string -> Prelude.Stats.t option
val summary : t -> string -> summary option

val quantile : t -> string -> float -> float option
(** [quantile t name q] for [q] in {0.5, 0.9, 0.99}; [None] for an unknown
    stream, [nan] before the first observation.
    @raise Invalid_argument for any other [q]. *)

val hist : t -> string -> Prelude.Histogram.t option
(** Power-of-two histogram of the stream, bucketed by
    {!Prelude.Histogram.log2_bucket}: bucket 0 counts samples <= 1, bucket
    [b > 0] counts samples in (2^(b-1), 2^b].  Combine histograms across
    traces with {!Prelude.Histogram.merge_into}. *)

val counters : t -> (string * int) list
(** Alphabetical. *)

val stats : t -> (string * Prelude.Stats.t) list
(** Alphabetical. *)

val summaries : t -> (string * summary) list
(** Alphabetical. *)

val reset : t -> unit
(** Zero every counter and stream {e in place}: handles previously obtained
    through {!counter_ref} or {!stat} keep pointing at live cells. *)
