(** Simulation metrics collection.

    Named counters and named streaming statistics, written by protocol code
    and read by experiment reports.  Each observe stream is backed by a
    Welford accumulator, P² quantile sketches (p50/p90/p99) and a
    power-of-two histogram, so tail latencies are available from O(1) memory
    per stream.  Purely in-memory; rendering is the caller's business (see
    {!Export} for the JSON / Prometheus serializations). *)

type t

type summary = {
  count : int;
  mean : float;
  stddev : float;
  ci95 : float;  (** Half-width of the 95% CI of the mean. *)
  min : float option;  (** [None] when the stream is empty. *)
  max : float option;
  p50 : float;
      (** P² estimate on a live stream, sketch estimate (relative error
          {!Prelude.Sketch.default_alpha}) once the stream has absorbed a
          {!merge_into}; [nan] when the stream is empty. *)
  p90 : float;
  p99 : float;
}

val create : unit -> t
val incr : t -> string -> unit
val add_count : t -> string -> int -> unit
val counter : t -> string -> int
(** 0 when never written. *)

val of_counters : (string * int) list -> t
(** A fresh trace pre-loaded with the given counter values — the adapter
    for subsystems that keep plain integer counters (e.g.
    {!Transport.stats}) so the {!Export} serializers can see them. *)

val counter_ref : t -> string -> int ref
(** The live cell behind a counter, for hot paths that bump it in a loop.
    The ref stays valid across {!reset} (reset zeroes it in place). *)

val observe : ?trace_id:int -> t -> string -> float -> unit
(** Append a sample to the named statistic.  With [trace_id], also record
    the sample as the latest {!exemplar} of its log2 bucket, so the tail of
    the stream stays cross-linked to concrete traces (OpenMetrics-style).
    Trace id 0 (the noop span sink's {!Span.null_context}) is ignored. *)

type exemplar = {
  bucket : int;  (** {!Prelude.Histogram.log2_bucket} of the sample. *)
  trace_id : int;
  value : float;
}

val exemplars : t -> string -> exemplar list
(** One exemplar per populated log2 bucket (the latest to land there),
    ascending by bucket; [[]] for unknown streams or untagged samples. *)

val top_exemplar : t -> string -> exemplar option
(** The exemplar of the highest populated bucket — the trace to open when
    the stream's tail looks wrong. *)

val stat : t -> string -> Prelude.Stats.t option
val summary : t -> string -> summary option

val quantile : t -> string -> float -> float option
(** [quantile t name q] for [q] in {0.5, 0.9, 0.99}; [None] for an unknown
    stream, [nan] before the first observation.  On a stream that has
    absorbed a {!merge_into} the estimate comes from the mergeable sketch
    (relative error at most {!Prelude.Sketch.default_alpha}); on a live
    stream it is the P² estimate, exact while the stream is small.
    @raise Invalid_argument for any other [q] on a live stream (merged
    streams answer any [q] in [\[0, 1\]]). *)

val sketch : t -> string -> Prelude.Sketch.t option
(** The stream's mergeable quantile sketch (fed on every {!observe}). *)

val sketch_quantile : t -> string -> float -> float option
(** Any [q] in [\[0, 1\]] from the stream's sketch, live or merged:
    within relative error {!Prelude.Sketch.default_alpha} of the true
    quantile.  [None] for unknown streams, [nan] before the first
    observation. *)

val is_merged : t -> string -> bool
(** Whether the stream has absorbed foreign samples via {!merge_into}
    (and therefore reads quantiles from its sketch). *)

val hist : t -> string -> Prelude.Histogram.t option
(** Power-of-two histogram of the stream, bucketed by
    {!Prelude.Histogram.log2_bucket}: bucket 0 counts samples <= 1, bucket
    [b > 0] counts samples in (2^(b-1), 2^b].  Combine histograms across
    traces with {!Prelude.Histogram.merge_into}. *)

val counters : t -> (string * int) list
(** Alphabetical. *)

val stats : t -> (string * Prelude.Stats.t) list
(** Alphabetical. *)

val summaries : t -> (string * summary) list
(** Alphabetical. *)

val merge_into : ?map_name:(string -> string) -> into:t -> t -> unit
(** [merge_into ~into src] folds every counter and stream of [src] into
    [into], leaving [src] unchanged: counters add, Welford accumulators
    and log2 histograms combine losslessly, quantile sketches merge within
    their shared error bound, and exemplars keep [src]'s latest per
    bucket.  Streams that absorb a merge are flagged (see {!is_merged})
    and answer {!quantile}/{!summary} from the sketch from then on.
    [map_name] renames each counter/stream on the way in — the hook
    {!Metrics.merge_trace} uses to file a whole trace under a label set.
    This is the fleet roll-up primitive: scrape each replica's trace into
    one fresh trace and read merged tails off it. *)

val reset : t -> unit
(** Zero every counter and stream {e in place}: handles previously obtained
    through {!counter_ref} or {!stat} keep pointing at live cells. *)
