(** Simulation metrics collection.

    Named counters and named streaming statistics, written by protocol code
    and read by experiment reports.  Purely in-memory; rendering is the
    caller's business. *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add_count : t -> string -> int -> unit
val counter : t -> string -> int
(** 0 when never written. *)

val observe : t -> string -> float -> unit
(** Append a sample to the named statistic. *)

val stat : t -> string -> Prelude.Stats.t option
val counters : t -> (string * int) list
(** Alphabetical. *)

val stats : t -> (string * Prelude.Stats.t) list
(** Alphabetical. *)

val reset : t -> unit
