(** Scripted fault scenarios on the engine clock.

    A scenario is a named timeline of fault actions — crash or recover a
    server replica, change the transport's loss probability for a window,
    cut a router subtree off the network — that {!install} schedules as
    ordinary engine events.  The actions fire through a {!hooks} record
    supplied by the caller, so this module knows nothing about clusters or
    transports; experiments wire the hooks to {!Transport.set_loss_prob},
    {!Transport.set_partition_nodes} and the cluster's crash/recover
    operations, and can then replay a named failure timeline identically
    across runs and replica counts. *)

type action =
  | Crash_replica of int  (** Replica index within the cluster. *)
  | Recover_replica of int
  | Set_loss of float  (** Absolute loss probability from this instant on. *)
  | Partition of Topology.Graph.node list
      (** Cut the listed routers off from everything else. *)
  | Heal_partition

type step = { at : float;  (** Absolute engine time, ms. *) action : action }
type t = { name : string; steps : step list }

type hooks = {
  crash_replica : int -> unit;
  recover_replica : int -> unit;
  set_loss : float -> unit;
  partition : Topology.Graph.node list -> unit;
  heal_partition : unit -> unit;
}

val null_hooks : hooks
(** Every hook is a no-op; override the fields a harness cares about. *)

val validate : t -> (unit, string) result
(** Steps must be time-ordered with non-negative times, loss values in
    [0, 1) and replica ids non-negative. *)

val install : ?recorder:Flight_recorder.t -> t -> engine:Engine.t -> hooks:hooks -> unit
(** Schedule every step.  Each action additionally leaves a ["fault"]-kind
    event in [recorder] as it fires, so post-incident dumps line injected
    faults up against the RPC traffic around them.
    @raise Invalid_argument when {!validate} fails. *)

(** {1 Named timelines} *)

val none : t
(** The empty scenario (baseline runs). *)

val crash_primary : ?replica:int -> crash_at:float -> recover_at:float -> unit -> t
(** Crash replica [replica] (default 0, the primary) at [crash_at] and
    bring it back at [recover_at].  @raise Invalid_argument unless
    [crash_at < recover_at]. *)

val loss_burst : ?base:float -> from_ms:float -> until_ms:float -> loss:float -> unit -> t
(** Raise the loss probability to [loss] during the window, then restore
    [base] (default 0). *)

val partition_window : from_ms:float -> until_ms:float -> nodes:Topology.Graph.node list -> unit -> t
(** Cut [nodes] off from the rest of the map during the window. *)

val describe : t -> string
(** One human-readable line: name plus each step. *)
