type action =
  | Crash_replica of int
  | Recover_replica of int
  | Set_loss of float
  | Partition of Topology.Graph.node list
  | Heal_partition

type step = { at : float; action : action }
type t = { name : string; steps : step list }

type hooks = {
  crash_replica : int -> unit;
  recover_replica : int -> unit;
  set_loss : float -> unit;
  partition : Topology.Graph.node list -> unit;
  heal_partition : unit -> unit;
}

let null_hooks =
  {
    crash_replica = (fun _ -> ());
    recover_replica = (fun _ -> ());
    set_loss = (fun _ -> ());
    partition = (fun _ -> ());
    heal_partition = (fun () -> ());
  }

let validate t =
  let rec go last = function
    | [] -> Ok ()
    | { at; action } :: rest ->
        if at < 0.0 then Error (Printf.sprintf "scenario %s: negative step time %g" t.name at)
        else if at < last then
          Error (Printf.sprintf "scenario %s: steps out of order at t=%g" t.name at)
        else begin
          match action with
          | Set_loss p when p < 0.0 || p >= 1.0 ->
              Error (Printf.sprintf "scenario %s: loss %g outside [0, 1)" t.name p)
          | Crash_replica i | Recover_replica i when i < 0 ->
              Error (Printf.sprintf "scenario %s: negative replica id %d" t.name i)
          | _ -> go at rest
        end
  in
  go 0.0 t.steps

let action_to_string = function
  | Crash_replica i -> Printf.sprintf "crash replica %d" i
  | Recover_replica i -> Printf.sprintf "recover replica %d" i
  | Set_loss p -> Printf.sprintf "set loss %.2f" p
  | Partition nodes -> Printf.sprintf "partition %d routers" (List.length nodes)
  | Heal_partition -> "heal partition"

let install ?recorder t ~engine ~hooks =
  (match validate t with Ok () -> () | Error e -> invalid_arg ("Fault.install: " ^ e));
  List.iter
    (fun { at; action } ->
      Engine.schedule_at engine ~time:at (fun () ->
          (match recorder with
          | None -> ()
          | Some r ->
              Flight_recorder.record r ~ts:(Engine.now engine) ~kind:"fault"
                ~args:[ ("scenario", Span.Str t.name) ]
                (action_to_string action));
          match action with
          | Crash_replica i -> hooks.crash_replica i
          | Recover_replica i -> hooks.recover_replica i
          | Set_loss p -> hooks.set_loss p
          | Partition nodes -> hooks.partition nodes
          | Heal_partition -> hooks.heal_partition ()))
    t.steps

(* --- Named timelines --------------------------------------------------- *)

let none = { name = "none"; steps = [] }

let crash_primary ?(replica = 0) ~crash_at ~recover_at () =
  if recover_at <= crash_at then invalid_arg "Fault.crash_primary: recover_at <= crash_at";
  {
    name = "crash-primary";
    steps =
      [
        { at = crash_at; action = Crash_replica replica };
        { at = recover_at; action = Recover_replica replica };
      ];
  }

let loss_burst ?(base = 0.0) ~from_ms ~until_ms ~loss () =
  if until_ms <= from_ms then invalid_arg "Fault.loss_burst: until_ms <= from_ms";
  {
    name = "loss-burst";
    steps =
      [ { at = from_ms; action = Set_loss loss }; { at = until_ms; action = Set_loss base } ];
  }

let partition_window ~from_ms ~until_ms ~nodes () =
  if until_ms <= from_ms then invalid_arg "Fault.partition_window: until_ms <= from_ms";
  {
    name = "partition";
    steps =
      [ { at = from_ms; action = Partition nodes }; { at = until_ms; action = Heal_partition } ];
  }

let describe t =
  match t.steps with
  | [] -> Printf.sprintf "%s: no faults" t.name
  | steps ->
      Printf.sprintf "%s: %s" t.name
        (String.concat "; "
           (List.map (fun { at; action } -> Printf.sprintf "t=%.0f %s" at (action_to_string action)) steps))
