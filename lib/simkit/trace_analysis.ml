(* Offline analysis of span JSONL: reconstruct the causal tree of every
   trace from the trace_id/span_id/parent_span_id fields {!Span} writes,
   walk each tree's critical path, and aggregate where the time of the
   slowest traces goes by span kind.  Reads the same files Perfetto does —
   the causal fields are the top-level extras viewers ignore. *)

type span = {
  name : string;
  ts : float;  (* ms (the file stores µs) *)
  dur : float;  (* ms *)
  pid : int;
  tid : int;
  trace_id : int;
  span_id : int;
  parent_span_id : int option;
}

let span_end s = s.ts +. s.dur

(* --- Loading ---------------------------------------------------------- *)

let span_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string in
  let num k = Option.bind (Json.member k j) Json.to_float in
  let int k = Option.map int_of_float (num k) in
  match (str "name", num "ts", int "trace_id", int "span_id") with
  | Some name, Some ts, Some trace_id, Some span_id ->
      Some
        {
          name;
          ts = ts /. 1000.0;
          dur = (match num "dur" with Some d -> d /. 1000.0 | None -> 0.0);
          pid = Option.value (int "pid") ~default:0;
          tid = Option.value (int "tid") ~default:0;
          trace_id;
          span_id;
          parent_span_id = int "parent_span_id";
        }
  | _ -> None

(* [spans, untraced]: events without causal ids (legacy emits) parse but
   cannot join a tree, so they are only counted. *)
let of_jsonl_string contents =
  let spans = ref [] and untraced = ref 0 in
  String.split_on_char '\n' contents
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match Json.parse line with
           | Error _ -> ()
           | Ok j -> (
               match span_of_json j with
               | Some s -> spans := s :: !spans
               | None -> incr untraced));
  (List.rev !spans, !untraced)

let load path =
  let ic = open_in path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_jsonl_string contents

(* --- Tree reconstruction ---------------------------------------------- *)

type tree = { span : span; children : tree list }

type trace = {
  trace_id : int;
  root : tree;
  span_count : int;  (* spans reachable from [root] *)
  orphans : int;  (* spans whose parent id never appears in the trace *)
}

let rec tree_size t = List.fold_left (fun acc c -> acc + tree_size c) 1 t.children

let build_trace trace_id spans =
  let children = Hashtbl.create 16 in
  let ids = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace ids s.span_id s) spans;
  let roots, orphans =
    List.fold_left
      (fun (roots, orphans) s ->
        match s.parent_span_id with
        | Some p when Hashtbl.mem ids p ->
            Hashtbl.add children p s;
            (roots, orphans)
        | Some _ -> (roots, orphans + 1)
        | None -> (s :: roots, orphans))
      ([], 0) spans
  in
  let rec build s =
    let kids =
      Hashtbl.find_all children s.span_id
      |> List.sort (fun a b -> compare (a.ts, a.span_id) (b.ts, b.span_id))
    in
    { span = s; children = List.map build kids }
  in
  (* One root per trace in our instrumentation (the join); should several
     appear, keep the longest-running one and count the rest as orphans. *)
  match List.sort (fun a b -> compare b.dur a.dur) roots with
  | [] -> None
  | root :: extra_roots ->
      let root = build root in
      let span_count = tree_size root in
      Some
        {
          trace_id;
          root;
          span_count;
          orphans = orphans + List.fold_left (fun acc r -> acc + tree_size (build r)) 0 extra_roots;
        }

let traces spans =
  let by_trace = Hashtbl.create 64 in
  List.iter
    (fun (s : span) ->
      let cur = try Hashtbl.find by_trace s.trace_id with Not_found -> [] in
      Hashtbl.replace by_trace s.trace_id (s :: cur))
    spans;
  Hashtbl.fold (fun id spans acc -> (id, spans) :: acc) by_trace []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.filter_map (fun (id, spans) -> build_trace id spans)

(* --- Critical path ----------------------------------------------------- *)

type segment = {
  kind : string;  (* span name the time is attributed to *)
  span_id : int;
  from_ms : float;
  to_ms : float;
}

(* Backwards walk: starting from the root's end, repeatedly step into the
   child whose (clamped) end time is latest; the gaps between children are
   the parent's self time.  Children may outlive their parent (async
   completions, e.g. replication acks) — their overhang is clamped to the
   parent's window so segment times always sum to the root's duration. *)
let critical_path trace =
  let segs = ref [] in
  let rec walk node upto =
    let s = node.span in
    let stop = Float.min (span_end s) upto in
    if stop > s.ts then begin
      let by_end_desc =
        List.sort (fun a b -> compare (span_end b.span) (span_end a.span)) node.children
      in
      let cursor =
        List.fold_left
          (fun cursor c ->
            let c_end = Float.min (span_end c.span) cursor in
            if c_end <= s.ts || c_end <= c.span.ts then cursor
            else begin
              if cursor > c_end then
                segs := { kind = s.name; span_id = s.span_id; from_ms = c_end; to_ms = cursor } :: !segs;
              walk c c_end;
              Float.max s.ts c.span.ts
            end)
          stop by_end_desc
      in
      if cursor > s.ts then
        segs := { kind = s.name; span_id = s.span_id; from_ms = s.ts; to_ms = cursor } :: !segs
    end
  in
  walk trace.root (span_end trace.root.span);
  List.sort (fun a b -> compare a.from_ms b.from_ms) !segs

(* --- Aggregation -------------------------------------------------------- *)

type breakdown = { kind : string; total_ms : float; share : float; count : int }

let by_kind segments =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (seg : segment) ->
      let ms, n = try Hashtbl.find tbl seg.kind with Not_found -> (0.0, 0) in
      Hashtbl.replace tbl seg.kind (ms +. (seg.to_ms -. seg.from_ms), n + 1))
    segments;
  let total = Hashtbl.fold (fun _ (ms, _) acc -> acc +. ms) tbl 0.0 in
  Hashtbl.fold
    (fun kind (ms, n) acc ->
      { kind; total_ms = ms; share = (if total > 0.0 then ms /. total else 0.0); count = n } :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.total_ms a.total_ms)

(* Exact quantile over a small sorted sample (we hold every root duration
   anyway; no need for a sketch here). *)
let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (Float.round (q *. float_of_int (n - 1)))))

type report = {
  trace_count : int;
  span_count : int;
  untraced : int;
  orphan_count : int;
  root_name : string;  (* most common root span kind *)
  root_p50 : float;
  root_p99 : float;
  root_max : float;
  overall : breakdown list;  (* critical-path time by kind, all traces *)
  tail : breakdown list;  (* same, over traces with root duration >= p99 *)
  tail_traces : (int * float) list;  (* (trace_id, root_ms), slowest first *)
}

let analyze ?(untraced = 0) spans =
  let ts = traces spans in
  let durs = List.map (fun t -> t.root.span.dur) ts |> Array.of_list in
  Array.sort compare durs;
  let p99 = quantile durs 0.99 in
  let tail_ts = List.filter (fun t -> t.root.span.dur >= p99) ts in
  let root_name =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun t ->
        let n = try Hashtbl.find tbl t.root.span.name with Not_found -> 0 in
        Hashtbl.replace tbl t.root.span.name (n + 1))
      ts;
    Hashtbl.fold (fun k n acc -> (n, k) :: acc) tbl []
    |> List.sort compare |> List.rev
    |> function (_, k) :: _ -> k | [] -> "?"
  in
  {
    trace_count = List.length ts;
    span_count = List.fold_left (fun acc (t : trace) -> acc + t.span_count + t.orphans) 0 ts;
    untraced;
    orphan_count = List.fold_left (fun acc (t : trace) -> acc + t.orphans) 0 ts;
    root_name;
    root_p50 = quantile durs 0.5;
    root_p99 = p99;
    root_max = (if Array.length durs = 0 then nan else durs.(Array.length durs - 1));
    overall = by_kind (List.concat_map critical_path ts);
    tail = by_kind (List.concat_map critical_path tail_ts);
    tail_traces =
      List.map (fun t -> (t.trace_id, t.root.span.dur)) tail_ts
      |> List.sort (fun (_, a) (_, b) -> compare b a);
  }

let breakdown_lines rows =
  List.map
    (fun b ->
      Printf.sprintf "  %-24s %12.1f ms  %5.1f%%  %6d segs" b.kind b.total_ms (100.0 *. b.share)
        b.count)
    rows

let report_to_string r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "traces: %d  spans: %d  (untraced events: %d, orphan spans: %d)" r.trace_count r.span_count
    r.untraced r.orphan_count;
  line "root span %S: p50=%.1fms  p99=%.1fms  max=%.1fms" r.root_name r.root_p50 r.root_p99
    r.root_max;
  line "critical path by span kind, all traces:";
  List.iter (line "%s") (breakdown_lines r.overall);
  line "critical path by span kind, tail traces (root >= p99, %d trace%s):"
    (List.length r.tail_traces)
    (if List.length r.tail_traces = 1 then "" else "s");
  List.iter (line "%s") (breakdown_lines r.tail);
  (match r.tail_traces with
  | [] -> ()
  | ts ->
      line "slowest traces: %s"
        (String.concat ", "
           (List.map (fun (id, ms) -> Printf.sprintf "#%d (%.1fms)" id ms) ts)));
  Buffer.contents buf
