(** Declarative service-level objectives evaluated over {!Timeseries}.

    A spec names a windowed series and a bound; evaluation is burn-rate
    style: over the last [lookback] retained windows, a spec breaches when
    the fraction of data-bearing windows that violate the bound reaches
    [burn_threshold].  Ratio objectives instead aggregate window counts
    across the whole lookback (completion-rate style), since the numerator
    and denominator events of one logical operation can land in different
    windows.

    Specs are parsed from the [--slo] CLI mini-language by {!of_string};
    the stateful {!monitor} turns repeated {!poll}s into breach / clear
    edge events — the trigger {!Flight_recorder} dumps hang off. *)

type objective =
  | Quantile_max of { series : string; q : float; limit : float }
      (** Per-window quantile must stay at or under [limit].  Only
          [q] in {0.5, 0.9, 0.99} is tracked by {!Timeseries}. *)
  | Mean_max of { series : string; limit : float }
  | Mean_min of { series : string; floor : float }
  | Ratio_min of { num : string; den : string; floor : float }
      (** Aggregate [count(num) / count(den)] over the lookback must stay
          at or above [floor] (e.g. join completion rate). *)

type spec = {
  name : string;
  objective : objective;
  lookback : int;  (** Windows considered, newest-last; [0] = all retained. *)
  burn_threshold : float;  (** Violating fraction that constitutes a breach. *)
}

val spec : ?name:string -> ?lookback:int -> ?burn_threshold:float -> objective -> spec
(** Defaults: [lookback = 0] (all retained windows), [burn_threshold = 0.5],
    and a descriptive [name] derived from the objective.
    @raise Invalid_argument on a negative lookback or a threshold outside
    (0, 1]. *)

type status = {
  spec : spec;
  evaluated : int;  (** Windows with data inside the lookback (always 0 or 1
                        for [Ratio_min], which aggregates). *)
  violating : int;
  burn_rate : float;
  worst : float;  (** Most out-of-bound value seen; [nan] when none. *)
  breached : bool;  (** [evaluated > 0] and [burn_rate >= burn_threshold]. *)
}

val evaluate : Timeseries.t -> spec -> status
val check : Timeseries.t -> spec list -> status list

(** {2 Stateful monitoring} *)

type monitor

val monitor : spec list -> monitor

val poll :
  ?on_breach:(status -> unit) -> ?on_clear:(status -> unit) -> monitor -> Timeseries.t ->
  status list
(** Re-evaluate every spec; [on_breach] / [on_clear] fire only on the
    transition edges, not on every breached poll. *)

val breached_names : monitor -> string list
(** Names currently in breach, alphabetical. *)

(** {2 Parsing and rendering} *)

val of_string : string -> (spec, string) result
(** The [--slo] mini-language:
    - ["join_p99_ms=500"] — p99 of series [join_ms] capped at 500 (the
      [_p50]/[_p90]/[_p99] tag is cut out of the series name);
    - ["audit_recall_at_k>=0.9"] — window means floored;
    - ["rpc_latency_ms<=40"] — window means capped;
    - ["join_completed/join_started>=0.99"] — aggregate count ratio floor. *)

val of_string_exn : string -> spec
(** @raise Invalid_argument on a parse error. *)

val describe_objective : objective -> string
val status_line : status -> string
val status_json : status -> string
