(** A minimal JSON reader (RFC 8259), dependency-free.

    Exists so the bench regression gate can read back the BENCH_*.json
    documents the tree writes with {!Json_str}.  All numbers parse to
    floats; objects keep field order. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Errors carry the byte offset of the failure. *)

val parse_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val of_file : string -> (t, string) result
(** Read and parse a whole file; I/O errors become [Error]. *)

val member : string -> t -> t option
(** Field lookup on an object; [None] on missing field or non-object. *)

val path : string list -> t -> t option
(** Chained {!member}: [path ["a"; "b"] v] is [v.a.b]. *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_string : t -> string option
val to_list : t -> t list option

val keys : t -> string list
(** Field names of an object in document order; [[]] otherwise. *)
