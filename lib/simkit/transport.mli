(** Message delivery between hosts over the router map.

    One-way delay is the forwarding-route latency between the attachment
    routers (halved ping); delivery is an engine event.  Message and byte
    counters feed the protocol-cost reports.

    {b Wire accounting.} Every byte offered to the transport is
    attributable.  Each send carries a message-kind label (the
    [Nearby.Wire] tags: [path_report], [path_report_batch], [query],
    [reply], [snapshot], [fd_probe], [retry], …) and a direction
    ([request] / [reply] / [replica] / [oneway]).  With [~metrics]
    attached, delivered traffic feeds the labeled counters
    [wire_bytes_total{kind,dir}] / [wire_msgs_total{kind,dir}] and dropped
    traffic feeds [wire_dropped_bytes_total{reason}]; with [~timeseries],
    each delivery lands in the windowed series [wire_bytes] (all kinds)
    and [wire_bytes:<kind>], giving bytes-per-second per kind.  Invariants
    (locked by the suite): the sum of [wire_bytes_total] over all labels
    equals {!bytes_sent}, and the sum of [wire_dropped_bytes_total] equals
    {!bytes_dropped}.  Per-endpoint byte tallies back {!top_talkers}.

    Fault injection is three independent mechanisms, each counted in its
    own drop bucket (messages {e and} bytes):
    - {e loss}: every message is dropped with probability [loss_prob],
      drawn independently per message (so the two legs of an {!rpc} fail
      independently); mutable at runtime via {!set_loss_prob} for scripted
      loss windows (see {!Fault});
    - {e unreachable}: no forwarding route between the routers;
    - {e partition}: a scripted cut ({!set_partition_nodes}) dropping every
      message that crosses the partition boundary. *)

type t

val create :
  ?latency:Topology.Latency.t ->
  ?rng:Prelude.Prng.t ->
  ?loss_prob:float ->
  ?metrics:Metrics.t ->
  ?timeseries:Timeseries.t ->
  Engine.t ->
  Traceroute.Route_oracle.t ->
  t
(** Without a latency table, each hop costs 1 ms one-way.  The optional [rng]
    adds 5% jitter per message and enables [loss_prob]: each message is
    silently dropped with that probability (failure injection for protocol
    robustness tests).  [metrics] / [timeseries] enable the labeled wire
    accounting described above; without them only the whole-run counters
    are kept.  @raise Invalid_argument if [loss_prob] is outside [0, 1) or
    given without [rng]. *)

val engine : t -> Engine.t

val set_wire_sinks : ?metrics:Metrics.t -> ?timeseries:Timeseries.t -> t -> unit
(** Attach (or swap) the wire-accounting sinks after creation — for
    harnesses that build the transport before the metrics registry.
    Omitted sinks are left unchanged. *)

val set_loss_prob : t -> float -> unit
(** Change the loss probability mid-run (scripted loss windows).
    @raise Invalid_argument if outside [0, 1) or positive without the
    transport having been created with [~rng]. *)

val loss_prob : t -> float

val set_partition_nodes : t -> Topology.Graph.node list -> unit
(** Install a network partition: every message between a listed router and
    an unlisted one is dropped (counted as [dropped_partition]); traffic
    within either side flows normally.  Replaces any previous partition. *)

val clear_partition : t -> unit
(** Heal the partition. *)

val send :
  ?kind:string ->
  ?dir:string ->
  t ->
  src:Topology.Graph.node ->
  dst:Topology.Graph.node ->
  size_bytes:int ->
  (unit -> unit) ->
  unit
(** [send t ~src ~dst ~size_bytes handler] delivers [handler] after the
    one-way delay.  Messages between unreachable routers, across a
    partition, or hit by loss injection are dropped (each counted in its
    bucket, messages and bytes).  [kind] defaults to ["other"], [dir] to
    ["oneway"]. *)

val send_parts :
  ?dir:string ->
  t ->
  src:Topology.Graph.node ->
  dst:Topology.Graph.node ->
  parts:(string * int) list ->
  (unit -> unit) ->
  unit
(** One message whose payload splits into [(kind, bytes)] components — a
    join frame carrying a path report plus a neighbor query charges each
    kind its own bytes while counting one message.  The transmitted size
    is the sum of the parts. *)

val charge :
  ?kind:string ->
  ?dir:string ->
  t ->
  src:Topology.Graph.node ->
  dst:Topology.Graph.node ->
  size_bytes:int ->
  unit
(** Account a message as sent and delivered {e without} scheduling a
    delivery event — for traffic whose application the caller performs
    synchronously (anti-entropy snapshot transfer).  Feeds every counter
    {!send} feeds: [messages], [bytes], [link_bytes], labeled series,
    talker tallies. *)

val rpc :
  ?kind:string ->
  t ->
  src:Topology.Graph.node ->
  dst:Topology.Graph.node ->
  request_bytes:int ->
  reply_bytes:int ->
  (unit -> unit) ->
  unit
(** Request + reply: the handler fires after a full RTT.  Both legs carry
    [kind]; directions are [request] and [reply].  Loss injection is
    drawn independently for the request and the reply leg, so the RPC
    failure probability under loss [p] is [1 - (1-p)^2].  No timeout or
    retry — that is {!Rpc}'s job. *)

val one_way_delay : t -> src:Topology.Graph.node -> dst:Topology.Graph.node -> float
(** The delay [send] would use right now (jitter-free). *)

val messages_sent : t -> int
val bytes_sent : t -> int
val link_bytes : t -> int
(** Network stress: sum over messages of [size_bytes x router hops
    traversed] — the quantity that topology-aware overlays reduce even when
    end-to-end byte counts are equal. *)

val dropped_loss : t -> int
(** Messages killed by loss injection. *)

val dropped_unreachable : t -> int
(** Messages between routers with no forwarding route. *)

val dropped_partition : t -> int
(** Messages that crossed a scripted partition boundary. *)

val messages_dropped : t -> int
(** All drop buckets summed. *)

val dropped_loss_bytes : t -> int
val dropped_unreachable_bytes : t -> int
val dropped_partition_bytes : t -> int
(** Bytes in each drop bucket — the bandwidth wasted on traffic that never
    arrived (what a loss burst costs, not just how many frames it ate). *)

val bytes_dropped : t -> int
(** All drop buckets summed, in bytes. *)

(** {2 Top talkers} *)

type talker = {
  node : Topology.Graph.node;
  sent_bytes : int;
  recv_bytes : int;
  sent_msgs : int;
  recv_msgs : int;
}

val top_talkers : t -> k:int -> talker list
(** The [k] endpoints moving the most delivered bytes (sent + received),
    heaviest first, ties broken by node id — the transport-level mirror of
    the registry [introspect] hot-router report.  Dropped traffic is not
    attributed.  @raise Invalid_argument on negative [k]. *)

val endpoint_count : t -> int
(** Distinct endpoints that have sent or received at least one message. *)

val stats : t -> (string * int) list
(** The full counter breakdown as an assoc list: [messages], [bytes],
    [link_bytes], [dropped_loss], [dropped_unreachable],
    [dropped_partition], [dropped_loss_bytes],
    [dropped_unreachable_bytes], [dropped_partition_bytes]. *)
