(** Message delivery between hosts over the router map.

    One-way delay is the forwarding-route latency between the attachment
    routers (halved ping); delivery is an engine event.  Message and byte
    counters feed the protocol-cost reports.

    Fault injection is three independent mechanisms, each counted in its
    own drop bucket:
    - {e loss}: every message is dropped with probability [loss_prob],
      drawn independently per message (so the two legs of an {!rpc} fail
      independently); mutable at runtime via {!set_loss_prob} for scripted
      loss windows (see {!Fault});
    - {e unreachable}: no forwarding route between the routers;
    - {e partition}: a scripted cut ({!set_partition_nodes}) dropping every
      message that crosses the partition boundary. *)

type t

val create :
  ?latency:Topology.Latency.t ->
  ?rng:Prelude.Prng.t ->
  ?loss_prob:float ->
  Engine.t ->
  Traceroute.Route_oracle.t ->
  t
(** Without a latency table, each hop costs 1 ms one-way.  The optional [rng]
    adds 5% jitter per message and enables [loss_prob]: each message is
    silently dropped with that probability (failure injection for protocol
    robustness tests).  @raise Invalid_argument if [loss_prob] is outside
    [0, 1) or given without [rng]. *)

val engine : t -> Engine.t

val set_loss_prob : t -> float -> unit
(** Change the loss probability mid-run (scripted loss windows).
    @raise Invalid_argument if outside [0, 1) or positive without the
    transport having been created with [~rng]. *)

val loss_prob : t -> float

val set_partition_nodes : t -> Topology.Graph.node list -> unit
(** Install a network partition: every message between a listed router and
    an unlisted one is dropped (counted as [dropped_partition]); traffic
    within either side flows normally.  Replaces any previous partition. *)

val clear_partition : t -> unit
(** Heal the partition. *)

val send :
  t -> src:Topology.Graph.node -> dst:Topology.Graph.node -> size_bytes:int -> (unit -> unit) -> unit
(** [send t ~src ~dst ~size_bytes handler] delivers [handler] after the
    one-way delay.  Messages between unreachable routers, across a
    partition, or hit by loss injection are dropped (each counted in its
    bucket). *)

val rpc :
  t ->
  src:Topology.Graph.node ->
  dst:Topology.Graph.node ->
  request_bytes:int ->
  reply_bytes:int ->
  (unit -> unit) ->
  unit
(** Request + reply: the handler fires after a full RTT.  Loss injection is
    drawn independently for the request and the reply leg, so the RPC
    failure probability under loss [p] is [1 - (1-p)^2].  No timeout or
    retry — that is {!Rpc}'s job. *)

val one_way_delay : t -> src:Topology.Graph.node -> dst:Topology.Graph.node -> float
(** The delay [send] would use right now (jitter-free). *)

val messages_sent : t -> int
val bytes_sent : t -> int
val link_bytes : t -> int
(** Network stress: sum over messages of [size_bytes x router hops
    traversed] — the quantity that topology-aware overlays reduce even when
    end-to-end byte counts are equal. *)

val dropped_loss : t -> int
(** Messages killed by loss injection. *)

val dropped_unreachable : t -> int
(** Messages between routers with no forwarding route. *)

val dropped_partition : t -> int
(** Messages that crossed a scripted partition boundary. *)

val messages_dropped : t -> int
(** All drop buckets summed. *)

val stats : t -> (string * int) list
(** The full counter breakdown as an assoc list: [messages], [bytes],
    [link_bytes], [dropped_loss], [dropped_unreachable],
    [dropped_partition]. *)
