(** Message delivery between hosts over the router map.

    One-way delay is the forwarding-route latency between the attachment
    routers (halved ping); delivery is an engine event.  Message and byte
    counters feed the protocol-cost reports. *)

type t

val create :
  ?latency:Topology.Latency.t ->
  ?rng:Prelude.Prng.t ->
  ?loss_prob:float ->
  Engine.t ->
  Traceroute.Route_oracle.t ->
  t
(** Without a latency table, each hop costs 1 ms one-way.  The optional [rng]
    adds 5% jitter per message and enables [loss_prob]: each message is
    silently dropped with that probability (failure injection for protocol
    robustness tests).  @raise Invalid_argument if [loss_prob] is outside
    [0, 1) or given without [rng]. *)

val engine : t -> Engine.t

val send :
  t -> src:Topology.Graph.node -> dst:Topology.Graph.node -> size_bytes:int -> (unit -> unit) -> unit
(** [send t ~src ~dst ~size_bytes handler] delivers [handler] after the
    one-way delay.  Messages between unreachable routers are dropped
    (counted). *)

val rpc :
  t ->
  src:Topology.Graph.node ->
  dst:Topology.Graph.node ->
  request_bytes:int ->
  reply_bytes:int ->
  (unit -> unit) ->
  unit
(** Request + reply: the handler fires after a full RTT. *)

val one_way_delay : t -> src:Topology.Graph.node -> dst:Topology.Graph.node -> float
(** The delay [send] would use right now (jitter-free). *)

val messages_sent : t -> int
val bytes_sent : t -> int
val link_bytes : t -> int
(** Network stress: sum over messages of [size_bytes x router hops
    traversed] — the quantity that topology-aware overlays reduce even when
    end-to-end byte counts are equal. *)

val messages_dropped : t -> int
