type meta = {
  git_rev : string;
  date_utc : string;
  seed : int option;
  backends : string list;
  ocaml_version : string;
  word_size : int;
  domains : int;
  extra : (string * string) list;
}

let git_rev () =
  (* Best effort: metrics files must be writable from any checkout state. *)
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> String.trim line
    | _ -> "unknown"
  with _ -> "unknown"

let utc_now () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let capture_meta ?seed ?(backends = []) ?(extra = []) () =
  {
    git_rev = git_rev ();
    date_utc = utc_now ();
    seed;
    backends;
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    domains = Domain.recommended_domain_count ();
    extra;
  }

let meta_base_fields m =
  [
    ("git_rev", Json_str.quote m.git_rev);
    ("date_utc", Json_str.quote m.date_utc);
    ("seed", (match m.seed with Some s -> string_of_int s | None -> "null"));
    ("backends", "[" ^ String.concat ", " (List.map Json_str.quote m.backends) ^ "]");
    ("ocaml_version", Json_str.quote m.ocaml_version);
    ("word_size", string_of_int m.word_size);
    ("domains", string_of_int m.domains);
  ]

let meta_json m =
  let fields = meta_base_fields m @ List.map (fun (k, v) -> (k, Json_str.quote v)) m.extra in
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> Json_str.quote k ^ ": " ^ v) fields)
  ^ "}"

(* The one place every BENCH_*.json stamps its run metadata.  The base
   toolchain keys are fixed and bench-specific knobs live under a single
   "params" object, so every emitted bench file carries the identical
   meta key set: git_rev, date_utc, seed, backends, ocaml_version,
   word_size, domains, params (locked by the suite). *)
let bench_json ?seed ?backends ?(params = []) fields =
  let m = capture_meta ?seed ?backends () in
  let meta =
    Json_str.obj
      (meta_base_fields m
      @ [ ("params", Json_str.obj (List.map (fun (k, v) -> (k, Json_str.quote v)) params)) ])
  in
  Json_str.obj (("meta", meta) :: fields)

let exemplar_json (e : Trace.exemplar) =
  Json_str.obj
    [
      ("bucket", string_of_int e.bucket);
      ("trace_id", string_of_int e.trace_id);
      ("value", Json_str.number e.value);
    ]

let summary_json ?(exemplars = []) (s : Trace.summary) hist =
  let hist_json =
    match hist with
    | None -> "[]"
    | Some h ->
        Json_str.arr
          (List.map (fun (b, c) -> Printf.sprintf "[%d, %d]" b c) (Prelude.Histogram.to_assoc h))
  in
  let fields =
    [
      ("count", string_of_int s.Trace.count);
      ("mean", Json_str.number s.Trace.mean);
      ("stddev", Json_str.number s.Trace.stddev);
      ("ci95", Json_str.number s.Trace.ci95);
      ("min", Json_str.number_opt s.Trace.min);
      ("max", Json_str.number_opt s.Trace.max);
      ("p50", Json_str.number s.Trace.p50);
      ("p90", Json_str.number s.Trace.p90);
      ("p99", Json_str.number s.Trace.p99);
      ("log2_hist", hist_json);
    ]
    @
    match exemplars with
    | [] -> []
    | es -> [ ("exemplars", Json_str.arr (List.map exemplar_json es)) ]
  in
  Json_str.obj fields

let section_json trace =
  let counters =
    Trace.counters trace |> List.map (fun (name, v) -> (name, string_of_int v))
  in
  let stats =
    Trace.summaries trace
    |> List.map (fun (name, s) ->
           ( name,
             summary_json ~exemplars:(Trace.exemplars trace name) s (Trace.hist trace name) ))
  in
  Json_str.obj [ ("counters", Json_str.obj counters); ("stats", Json_str.obj stats) ]

(* One labeled registry as nested JSON: every series carries its parsed
   identity (base name + label object) next to its rendered value, so a
   consumer never has to re-parse canonical `name{k="v"}` keys. *)
let labeled_json m =
  let trace = Metrics.trace m in
  let counters = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace counters k v) (Trace.counters trace);
  let gauges = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace gauges k v) (Metrics.gauge_bindings m);
  let labels_json labels =
    Json_str.obj (List.map (fun (k, v) -> (k, Json_str.quote v)) labels)
  in
  let series =
    Metrics.series m
    |> List.concat_map (fun (name, labels, key) ->
           let entry kind fields =
             Json_str.obj
               ([ ("name", Json_str.quote name);
                  ("labels", labels_json labels);
                  ("kind", Json_str.quote kind) ]
               @ fields)
           in
           let counter =
             match Hashtbl.find_opt counters key with
             | Some v -> [ entry "counter" [ ("value", string_of_int v) ] ]
             | None -> []
           in
           let stream =
             match Trace.summary trace key with
             | Some s ->
                 [ entry "stream"
                     [ ("stats",
                        summary_json ~exemplars:(Trace.exemplars trace key) s
                          (Trace.hist trace key)) ] ]
             | None -> []
           in
           let gauge =
             match Hashtbl.find_opt gauges key with
             | Some v -> [ entry "gauge" [ ("value", Json_str.number v) ] ]
             | None -> []
           in
           counter @ stream @ gauge)
  in
  Json_str.obj
    [
      ("series", Json_str.arr series);
      ("overflow_routed", string_of_int (Metrics.overflow_routed m));
    ]

let metrics_json ?meta ?(timeseries = []) ?(labeled = []) ?runtime sections =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  (match meta with
  | Some m -> Buffer.add_string buf (Printf.sprintf "  \"meta\": %s,\n" (meta_json m))
  | None -> ());
  Buffer.add_string buf "  \"sections\": {\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (name, trace) -> Printf.sprintf "    %s: %s" (Json_str.quote name) (section_json trace))
          sections));
  Buffer.add_string buf "\n  }";
  (match labeled with
  | [] -> ()
  | ms ->
      Buffer.add_string buf ",\n  \"labeled\": {\n";
      Buffer.add_string buf
        (String.concat ",\n"
           (List.map
              (fun (name, m) ->
                Printf.sprintf "    %s: %s" (Json_str.quote name) (labeled_json m))
              ms));
      Buffer.add_string buf "\n  }");
  (match runtime with
  | None -> ()
  | Some rp ->
      Buffer.add_string buf
        (Printf.sprintf ",\n  \"runtime\": %s" (Runtime_profile.to_json rp)));
  (match timeseries with
  | [] -> ()
  | ts ->
      Buffer.add_string buf ",\n  \"timeseries\": {\n";
      Buffer.add_string buf
        (String.concat ",\n"
           (List.map
              (fun (name, t) ->
                Printf.sprintf "    %s: %s" (Json_str.quote name) (Timeseries.to_json t))
              ts));
      Buffer.add_string buf "\n  }");
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* --- Prometheus text exposition ------------------------------------- *)

let sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  (* A metric name may not start with a digit in the exposition format. *)
  if mapped = "" then "_"
  else match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

(* Prometheus accepts NaN sample values; use them rather than dropping the
   series so an empty stream is still visible in the scrape. *)
let prom_number v = if Float.is_nan v then "NaN" else Json_str.number v

let prometheus ?(prefix = "nearby") sections =
  let prefix = sanitize prefix in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (section, trace) ->
      let base name = Printf.sprintf "%s_%s_%s" prefix (sanitize section) (sanitize name) in
      List.iter
        (fun (name, v) ->
          let metric = base name ^ "_total" in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" metric metric v))
        (Trace.counters trace);
      List.iter
        (fun (name, (s : Trace.summary)) ->
          let metric = base name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" metric);
          List.iter
            (fun (q, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%s{quantile=\"%s\"} %s\n" metric q (prom_number v)))
            [ ("0.5", s.Trace.p50); ("0.9", s.Trace.p90); ("0.99", s.Trace.p99) ];
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" metric (prom_number (s.Trace.mean *. float_of_int s.Trace.count)));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" metric s.Trace.count);
          (* Streams with tagged samples additionally expose their log2
             histogram, each bucket line carrying its latest exemplar in the
             OpenMetrics style: `... # {trace_id="N"} value`.  Plain
             Prometheus parsers treat the suffix as a comment. *)
          match (Trace.exemplars trace name, Trace.hist trace name) with
          | [], _ | _, None -> ()
          | exemplars, Some h ->
              let hist_metric = metric ^ "_hist" in
              Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" hist_metric);
              let cumulative = ref 0 in
              List.iter
                (fun (bucket, count) ->
                  cumulative := !cumulative + count;
                  let le = Printf.sprintf "%g" (Float.pow 2.0 (float_of_int bucket)) in
                  let exemplar =
                    match
                      List.find_opt (fun (e : Trace.exemplar) -> e.bucket = bucket) exemplars
                    with
                    | Some e ->
                        Printf.sprintf " # {trace_id=\"%d\"} %s" e.trace_id
                          (prom_number e.value)
                    | None -> ""
                  in
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket{le=\"%s\"} %d%s\n" hist_metric le !cumulative
                       exemplar))
                (Prelude.Histogram.to_assoc h);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" hist_metric
                   (Prelude.Histogram.total h));
              Buffer.add_string buf (Printf.sprintf "%s_count %d\n" hist_metric (Prelude.Histogram.total h)))
        (Trace.summaries trace))
    sections;
  Buffer.contents buf

(* Label pairs rendered to the exposition grammar: sorted keys sanitized
   like metric names, values backslash-escaped.  [extra] appends
   renderer-owned labels (e.g. quantile) after the user's. *)
let prom_labels ?(extra = []) labels =
  match labels @ extra with
  | [] -> ""
  | pairs ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (Json_str.escape v))
             pairs)
      ^ "}"

let prometheus_labeled ?(prefix = "nearby") sections =
  let prefix = sanitize prefix in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (section, m) ->
      let trace = Metrics.trace m in
      let counters = Hashtbl.create 16 in
      List.iter (fun (k, v) -> Hashtbl.replace counters k v) (Trace.counters trace);
      let gauges = Hashtbl.create 16 in
      List.iter (fun (k, v) -> Hashtbl.replace gauges k v) (Metrics.gauge_bindings m);
      let typed = Hashtbl.create 16 in
      let emit_type metric kind =
        if not (Hashtbl.mem typed metric) then begin
          Hashtbl.add typed metric ();
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" metric kind)
        end
      in
      List.iter
        (fun (name, labels, key) ->
          let metric =
            Printf.sprintf "%s_%s_%s" prefix (sanitize section) (sanitize name)
          in
          (match Hashtbl.find_opt counters key with
          | Some v ->
              (* Counters get the conventional _total suffix — unless the
                 source name already carries it (wire_bytes_total etc.). *)
              let metric =
                if String.ends_with ~suffix:"_total" metric then metric
                else metric ^ "_total"
              in
              emit_type metric "counter";
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" metric (prom_labels labels) v)
          | None -> ());
          (match Trace.summary trace key with
          | Some s ->
              emit_type metric "summary";
              List.iter
                (fun (q, v) ->
                  Buffer.add_string buf
                    (Printf.sprintf "%s%s %s\n" metric
                       (prom_labels ~extra:[ ("quantile", q) ] labels)
                       (prom_number v)))
                [ ("0.5", s.Trace.p50); ("0.9", s.Trace.p90); ("0.99", s.Trace.p99) ];
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" metric (prom_labels labels)
                   (prom_number (s.Trace.mean *. float_of_int s.Trace.count)));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %d\n" metric (prom_labels labels)
                   s.Trace.count)
          | None -> ());
          match Hashtbl.find_opt gauges key with
          | Some v ->
              emit_type metric "gauge";
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" metric (prom_labels labels) (prom_number v))
          | None -> ())
        (Metrics.series m))
    sections;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_bench ~path ?seed ?backends ?params fields =
  write_file path (bench_json ?seed ?backends ?params fields)
