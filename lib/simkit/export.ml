type meta = {
  git_rev : string;
  date_utc : string;
  seed : int option;
  backends : string list;
  extra : (string * string) list;
}

let git_rev () =
  (* Best effort: metrics files must be writable from any checkout state. *)
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> String.trim line
    | _ -> "unknown"
  with _ -> "unknown"

let utc_now () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let capture_meta ?seed ?(backends = []) ?(extra = []) () =
  { git_rev = git_rev (); date_utc = utc_now (); seed; backends; extra }

let meta_json m =
  let fields =
    [
      ("git_rev", Json_str.quote m.git_rev);
      ("date_utc", Json_str.quote m.date_utc);
      ("seed", (match m.seed with Some s -> string_of_int s | None -> "null"));
      ( "backends",
        "[" ^ String.concat ", " (List.map Json_str.quote m.backends) ^ "]" );
    ]
    @ List.map (fun (k, v) -> (k, Json_str.quote v)) m.extra
  in
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> Json_str.quote k ^ ": " ^ v) fields)
  ^ "}"

let summary_json (s : Trace.summary) hist =
  let hist_json =
    match hist with
    | None -> "[]"
    | Some h ->
        "["
        ^ String.concat ", "
            (List.map (fun (b, c) -> Printf.sprintf "[%d, %d]" b c) (Prelude.Histogram.to_assoc h))
        ^ "]"
  in
  Printf.sprintf
    "{\"count\": %d, \"mean\": %s, \"stddev\": %s, \"ci95\": %s, \"min\": %s, \"max\": %s, \
     \"p50\": %s, \"p90\": %s, \"p99\": %s, \"log2_hist\": %s}"
    s.Trace.count (Json_str.number s.Trace.mean) (Json_str.number s.Trace.stddev)
    (Json_str.number s.Trace.ci95) (Json_str.number_opt s.Trace.min)
    (Json_str.number_opt s.Trace.max) (Json_str.number s.Trace.p50) (Json_str.number s.Trace.p90)
    (Json_str.number s.Trace.p99) hist_json

let section_json trace =
  let counters =
    Trace.counters trace
    |> List.map (fun (name, v) -> Printf.sprintf "%s: %d" (Json_str.quote name) v)
    |> String.concat ", "
  in
  let stats =
    Trace.summaries trace
    |> List.map (fun (name, s) ->
           Printf.sprintf "%s: %s" (Json_str.quote name) (summary_json s (Trace.hist trace name)))
    |> String.concat ", "
  in
  Printf.sprintf "{\"counters\": {%s}, \"stats\": {%s}}" counters stats

let metrics_json ?meta ?(timeseries = []) sections =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  (match meta with
  | Some m -> Buffer.add_string buf (Printf.sprintf "  \"meta\": %s,\n" (meta_json m))
  | None -> ());
  Buffer.add_string buf "  \"sections\": {\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (fun (name, trace) -> Printf.sprintf "    %s: %s" (Json_str.quote name) (section_json trace))
          sections));
  Buffer.add_string buf "\n  }";
  (match timeseries with
  | [] -> ()
  | ts ->
      Buffer.add_string buf ",\n  \"timeseries\": {\n";
      Buffer.add_string buf
        (String.concat ",\n"
           (List.map
              (fun (name, t) ->
                Printf.sprintf "    %s: %s" (Json_str.quote name) (Timeseries.to_json t))
              ts));
      Buffer.add_string buf "\n  }");
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* --- Prometheus text exposition ------------------------------------- *)

let sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  (* A metric name may not start with a digit in the exposition format. *)
  if mapped = "" then "_"
  else match mapped.[0] with '0' .. '9' -> "_" ^ mapped | _ -> mapped

(* Prometheus accepts NaN sample values; use them rather than dropping the
   series so an empty stream is still visible in the scrape. *)
let prom_number v = if Float.is_nan v then "NaN" else Json_str.number v

let prometheus ?(prefix = "nearby") sections =
  let prefix = sanitize prefix in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (section, trace) ->
      let base name = Printf.sprintf "%s_%s_%s" prefix (sanitize section) (sanitize name) in
      List.iter
        (fun (name, v) ->
          let metric = base name ^ "_total" in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" metric metric v))
        (Trace.counters trace);
      List.iter
        (fun (name, (s : Trace.summary)) ->
          let metric = base name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" metric);
          List.iter
            (fun (q, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%s{quantile=\"%s\"} %s\n" metric q (prom_number v)))
            [ ("0.5", s.Trace.p50); ("0.9", s.Trace.p90); ("0.99", s.Trace.p99) ];
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" metric (prom_number (s.Trace.mean *. float_of_int s.Trace.count)));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" metric s.Trace.count))
        (Trace.summaries trace))
    sections;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
