(** Online answer-quality auditing (sampled ground-truth checks).

    Wraps a {!Server}'s query path and, for a sampled fraction of replies,
    computes what the server cannot see — the {e true} nearest registered
    peers, by BFS over the router graph from the audited peer's attachment
    point — and streams quality measures into a {!Simkit.Trace} (whole-run)
    and optionally a {!Simkit.Timeseries} (per-window, for {!Simkit.Slo}
    objectives like ["audit_recall_at_k>=0.9"]).

    Streams (both sinks, same names):
    - ["audit_stretch"]: true distance of the returned set over the
      best-possible set of the same size; 1.0 = optimal.  The degenerate
      zero-distance optimum follows [Eval.Measure] (ratio 1.0 when the
      reply is also at distance zero, sample skipped otherwise).
    - ["audit_recall_at_k"]: fraction of the true top-k in the reply.
    - ["audit_rank_displacement"]: mean over reply positions of (rank in
      the true order − position in the reply); 0 = perfectly ordered.

    Counters: ["audit_samples"], ["audit_not_sampled"], ["audit_exact"]
    (recall 1.0), ["audit_empty"], ["audit_stretch_skipped"],
    ["audit_no_info"].

    At rate 1.0 the auditor is the offline evaluator running inline; the
    test suite pins the equivalence against [Eval.Measure.score]. *)

type t

val create :
  ?rate:float ->
  ?seed:int ->
  ?trace:Simkit.Trace.t ->
  ?timeseries:Simkit.Timeseries.t ->
  ?clock:(unit -> float) ->
  Server.t ->
  t
(** [rate] is the audited fraction of replies (default 0.01); sampling uses
    a private PRNG from [seed] so runs stay reproducible.  [clock] supplies
    the timeseries timestamp (engine clock in simulations; defaults to a
    constant 0, which drops every sample into window 0).
    @raise Invalid_argument when [rate] is outside [0, 1]. *)

val rate : t -> float
val trace : t -> Simkit.Trace.t

val neighbors : t -> peer:int -> k:int -> (int * int) list
(** Exactly [Server.neighbors], plus a sampled audit of the reply. *)

val sample_reply : t -> peer:int -> reply:(int * int) list -> unit
(** Sampled audit of a reply obtained elsewhere (e.g. through the cluster
    RPC path). *)

val audit_reply : t -> peer:int -> reply:(int * int) list -> unit
(** Unconditional audit — one BFS plus a population sort; the primitive
    behind {!sample_reply}. *)
