(** Optimized landmark placement: k-median with local search.

    The E1 sweep shows dispersion beats degree heuristics; this module goes
    one step further and optimizes placement directly.  Landmarks should
    minimize the clients' distance to their closest landmark (the k-median
    objective over hop distance): that keeps recorded paths short and
    regional trees tight.  Greedy initialization plus single-swap local
    search (Arya et al. 2001) on a sampled candidate/client sets keeps the
    cost practical on big maps. *)

type config = {
  candidate_sample : int;  (** Candidate routers considered (sampled from the
                               medium-degree band). *)
  client_sample : int;  (** Attachment routers the objective sums over. *)
  max_swaps : int;  (** Local-search budget. *)
}

val default_config : config
(** 64 candidates, 256 clients, 128 swaps. *)

val place :
  ?config:config ->
  Topology.Graph.t ->
  count:int ->
  rng:Prelude.Prng.t ->
  Topology.Graph.node array
(** [place g ~count ~rng] returns [count] distinct landmark routers
    minimizing the sampled k-median objective.  Deterministic given [rng].
    @raise Invalid_argument when [count] exceeds the candidate pool. *)

val objective :
  Topology.Graph.t -> landmarks:Topology.Graph.node array -> clients:Topology.Graph.node array -> float
(** Mean hop distance from each client to its closest landmark (the value
    {!place} minimizes), exposed for tests and reporting. *)
