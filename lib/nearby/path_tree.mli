(** The management server's per-landmark data structure (the paper's core
    contribution).

    Every peer registers the router path from its attachment point to one
    landmark.  Because forwarding toward a fixed destination follows a sink
    tree, the registered paths of all peers form a tree rooted at the
    landmark; the {e meeting point} of two peers is their deepest common
    router, and the inferred distance is
    [dtree(p1,p2) = dist(p1, meeting) + dist(p2, meeting)].

    Storage follows the paper's complexity sketch: a hash table maps each
    router to the bucket of peers whose path crosses it, every bucket kept
    ordered by the peer's distance to that router — so registering a peer is
    an O(log n) ordered insertion per router of its path, and a query walks
    the newcomer's own path, accessing each router bucket in O(1) and
    scanning it in ascending inferred-distance order with early cutoff. *)

type t

type peer = int

val create : landmark:Topology.Graph.node -> t
val landmark : t -> Topology.Graph.node
val member_count : t -> int
val mem : t -> peer -> bool
val router_count : t -> int
(** Distinct routers currently covered by at least one registered path. *)

val insert : t -> peer:peer -> routers:Topology.Graph.node array -> unit
(** [insert t ~peer ~routers] registers a peer whose path is
    [routers.(0) .. routers.(last)] with [routers.(0)] the attachment router
    and [routers.(last)] the landmark.  Truncated paths (from a decreased
    traceroute) are accepted: distances are then positions in the truncated
    path, an approximation the E4 experiment quantifies.
    @raise Invalid_argument when the path is empty, does not end at the
    landmark, or the peer is already registered. *)

val remove : t -> peer -> unit
(** @raise Not_found when the peer is not registered. *)

val path_of : t -> peer -> Topology.Graph.node array option
val depth : t -> peer -> int option
(** Links between the peer's attachment router and the landmark. *)

val meeting_point : t -> peer -> peer -> (Topology.Graph.node * int * int) option
(** [meeting_point t p1 p2] is [(router, d1, d2)]: the deepest common router
    of the two registered paths and each peer's distance to it.  [None] when
    either peer is unregistered.  The paths share at least the landmark, so
    two registered peers always have a meeting point. *)

val dtree : t -> peer -> peer -> int option
(** Inferred distance [d1 + d2] of {!meeting_point}. *)

val query : t -> routers:Topology.Graph.node array -> k:int -> ?exclude:(peer -> bool) -> unit -> (peer * int) list
(** [query t ~routers ~k ()] walks a (possibly unregistered) newcomer's path
    and returns at most [k] registered peers with the smallest inferred
    distance, ascending, ties broken toward the lower peer id.  [exclude]
    filters candidates (e.g. the newcomer itself). *)

val query_member : t -> peer:peer -> k:int -> (peer * int) list
(** {!query} with the peer's own registered path, excluding itself.
    @raise Not_found when unregistered. *)

val insert_many : t -> (peer * Topology.Graph.node array) array -> unit
(** Batch {!insert}, validated up front and merged one sorted pass per
    touched router bucket (see {!Path_tree_core.Make.insert_many}). *)

val query_many :
  t ->
  queries:Topology.Graph.node array array ->
  k:int ->
  ?exclude:(int -> peer -> bool) ->
  unit ->
  (peer * int) list array
(** One {!query} answer per path, selector and dedup state reused across
    the batch; [exclude] additionally receives the query index. *)

val query_into :
  t ->
  routers:Topology.Graph.node array ->
  best:(int * peer) Topk.t ->
  seen:(peer, unit) Hashtbl.t ->
  exclude:(peer -> bool) ->
  unit
(** Offer candidates into a caller-owned selector (ordered by (dtree,
    peer)); the seam the sharded scatter uses to carry one tightening
    bound across shards. *)

val iter_members : t -> (peer -> unit) -> unit

val check_invariants : t -> unit
(** Test hook: every registered path ends at the landmark; every path entry
    appears in exactly the right bucket with the right distance; bucket
    contents are exactly the union of registered paths.  @raise Failure on
    violation. *)

(** {1 Registry backend surface}

    The remaining values complete {!Registry_intf.S}, making the path tree
    the reference backend every alternative is compared against. *)

val backend_name : string
(** ["tree"]. *)

val stats : t -> (string * int) list
(** [("members", _); ("routers", _)]. *)

val introspect : t -> Registry_intf.introspection
(** Bucket occupancy straight off the router table: one histogram sample
    per router (value = bucket cardinality), hot routers the largest
    buckets. *)

val digest : t -> int64
(** Order-independent content digest (see {!Registry_intf.S.digest}). *)

val snapshot : t -> string
(** Registered peers and their router paths in the {!Prelude.Codec} binary
    format (sorted by peer id, so equal state yields equal bytes). *)

val restore : string -> (t, string) result
(** Inverse of {!snapshot}; corrupt input yields [Error]. *)
