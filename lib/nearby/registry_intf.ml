(* The one seam every registry backend plugs into.

   The paper's contribution is a server data structure for "store recorded
   paths, answer k-nearest"; the repo grew four divergent implementations
   of that contract (path tree, naive scan, super-peer region store, DHT
   directory) plus a sharded composite.  This module type is the shared
   surface: the server, the experiments, the CLI and the benchmarks all
   talk to a first-class [(module S)] instead of a concrete backend, so a
   new backend (batching, caching, async, ...) is one module away.

   Conventions every implementation must honour:
   - [insert] rejects empty paths, paths not ending at the landmark and
     duplicate peers with [Invalid_argument]; [remove]/[query_member]
     raise [Not_found] for unknown peers.
   - [query] returns at most [k] (peer, dtree) pairs in ascending
     (dtree, peer) order -- equal-cost ties break to the lower peer id --
     so two correct backends return byte-identical answers.
   - [snapshot]/[restore] round-trip the full registry state through the
     [Prelude.Codec] binary format; every corrupt input yields [Error]. *)

type peer = int

(* How many of the busiest routers [introspect] names.  A constant rather
   than a parameter so every backend's top-k is comparable. *)
let hot_router_k = 8

(* --- Content digests ----------------------------------------------------

   A registry's content digest is the XOR of one 64-bit hash per
   [(peer, routers)] entry.  XOR is commutative and self-inverse, so the
   digest is order-independent and every backend can maintain it
   incrementally: XOR the entry hash in on insert, XOR the same hash out
   on remove — O(1) either way, no rescans.  Two registries hold the same
   members with the same recorded paths iff (up to 64-bit collision) their
   digests match, which is what the cluster's divergence detector
   compares.

   The entry hash is FNV-1a over the peer id and the router sequence
   (costs are derived from position, so hashing the sequence covers them),
   finished with a splitmix64-style avalanche so single-bit input changes
   flip about half the output bits — without it, XOR-combining many
   near-identical FNV states would cancel structure. *)

let empty_digest = 0L

let entry_digest ~peer ~routers : int64 =
  let fnv_prime = 0x100000001b3L in
  let mix h v =
    Int64.mul (Int64.logxor h (Int64.of_int v)) fnv_prime
  in
  let h = ref (mix 0xcbf29ce484222325L peer) in
  Array.iter (fun r -> h := mix !h r) routers;
  h := mix !h (Array.length routers);
  (* splitmix64 finalizer *)
  let z = !h in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let combine_digests = Int64.logxor

(* A structural X-ray of a backend: how its storage is distributed over
   routers, which routers are hottest, and roughly how much memory it
   holds.  [occupancy] has one sample per (router, bucket) — the sample
   value is that bucket's size — so [Histogram.total occupancy] is the
   physical bucket count and the histogram's shape is the skew.
   [approx_bytes] is a words-times-8 estimate of the payload (paths,
   buckets, tables), not an exact heap measurement: good for comparing
   backends and spotting growth, not for accounting. *)
type introspection = {
  members : int;
  routers : int;  (* distinct storage buckets / routers known *)
  occupancy : Prelude.Histogram.t;
  hot_routers : (Topology.Graph.node * int) list;  (* top-k by bucket size, descending *)
  approx_bytes : int;
}

(* Build an introspection from one pass over (router, bucket-size) pairs:
   the shared tail of every backend's [introspect]. *)
let introspection_of_buckets ~members ~approx_bytes iter =
  let occupancy = Prelude.Histogram.create () in
  let routers = ref 0 in
  let hot = ref [] in
  iter (fun router size ->
      incr routers;
      Prelude.Histogram.add_log2 occupancy (float_of_int size);
      hot := (router, size) :: !hot);
  let hot_routers =
    List.sort (fun (r1, s1) (r2, s2) -> compare (s2, r1) (s1, r2)) !hot
    |> List.filteri (fun i _ -> i < hot_router_k)
  in
  { members; routers = !routers; occupancy; hot_routers; approx_bytes }

(* Combine per-shard / per-landmark introspections: occupancies merge
   bucket-wise, hot lists re-rank summed per-router sizes, counts add.
   Members add too — callers merging views of the *same* peers (rather
   than a partition) should correct that field themselves. *)
let merge_introspections = function
  | [] ->
      {
        members = 0;
        routers = 0;
        occupancy = Prelude.Histogram.create ();
        hot_routers = [];
        approx_bytes = 0;
      }
  | parts ->
      let occupancy = Prelude.Histogram.create () in
      let hot = Hashtbl.create 16 in
      List.iter
        (fun p ->
          Prelude.Histogram.merge_into ~into:occupancy p.occupancy;
          List.iter
            (fun (router, size) ->
              Hashtbl.replace hot router
                (size + Option.value ~default:0 (Hashtbl.find_opt hot router)))
            p.hot_routers)
        parts;
      let hot_routers =
        Hashtbl.fold (fun router size acc -> (router, size) :: acc) hot []
        |> List.sort (fun (r1, s1) (r2, s2) -> compare (s2, r1) (s1, r2))
        |> List.filteri (fun i _ -> i < hot_router_k)
      in
      {
        members = List.fold_left (fun acc p -> acc + p.members) 0 parts;
        routers = List.fold_left (fun acc p -> acc + p.routers) 0 parts;
        occupancy;
        hot_routers;
        approx_bytes = List.fold_left (fun acc p -> acc + p.approx_bytes) 0 parts;
      }

let introspection_json i =
  let open Simkit.Json_str in
  obj
    [
      ("members", string_of_int i.members);
      ("routers", string_of_int i.routers);
      ("approx_bytes", string_of_int i.approx_bytes);
      ( "occupancy_log2",
        arr
          (List.map
             (fun (b, c) -> Printf.sprintf "[%d, %d]" b c)
             (Prelude.Histogram.to_assoc i.occupancy)) );
      ( "hot_routers",
        arr
          (List.map
             (fun (router, size) ->
               obj [ ("router", string_of_int router); ("bucket_size", string_of_int size) ])
             i.hot_routers) );
    ]

module type S = sig
  type t

  val backend_name : string
  val create : landmark:Topology.Graph.node -> t
  val landmark : t -> Topology.Graph.node
  val insert : t -> peer:peer -> routers:Topology.Graph.node array -> unit
  val remove : t -> peer -> unit
  val mem : t -> peer -> bool
  val member_count : t -> int
  val path_of : t -> peer -> Topology.Graph.node array option
  val iter_members : t -> (peer -> unit) -> unit
  val dtree : t -> peer -> peer -> int option

  val query :
    t ->
    routers:Topology.Graph.node array ->
    k:int ->
    ?exclude:(peer -> bool) ->
    unit ->
    (peer * int) list

  val query_member : t -> peer:peer -> k:int -> (peer * int) list

  val insert_many : t -> (peer * Topology.Graph.node array) array -> unit
  (** Register a batch, equivalent to [insert] in array order (and as
      atomic as the backend can make it: the path tree validates the whole
      batch before touching state).  Backends without a native batch path
      derive this from [insert] via {!Derive_batch}. *)

  val query_many :
    t ->
    queries:Topology.Graph.node array array ->
    k:int ->
    ?exclude:(int -> peer -> bool) ->
    unit ->
    (peer * int) list array
  (** One answer per query, each identical to the corresponding [query];
      [exclude] additionally receives the query index.  Batch-aware
      backends reuse their selector and dedup state across the batch. *)

  val query_into :
    t ->
    routers:Topology.Graph.node array ->
    best:(int * peer) Topk.t ->
    seen:(peer, unit) Hashtbl.t ->
    exclude:(peer -> bool) ->
    unit
  (** Offer this backend's candidates into a caller-owned bounded selector
      ([best] must order by lexicographic (dtree, peer)).  The sharded
      scatter uses this to carry one tightening bound across disjoint
      shards instead of merging k results per shard. *)

  val stats : t -> (string * int) list
  val introspect : t -> introspection

  val digest : t -> int64
  (** Order-independent 64-bit content digest over the registry's
      [(peer, routers)] entries: XOR of {!entry_digest} per member,
      {!empty_digest} when empty.  Maintained incrementally (O(1) per
      insert/remove), equal across backends holding the same members, and
      preserved by [snapshot]/[restore]. *)

  val snapshot : t -> string
  val restore : string -> (t, string) result
  val check_invariants : t -> unit
end

(* The singleton surface a backend must already have for its batch
   operations to be derived mechanically. *)
module type SINGLETON = sig
  type t

  val insert : t -> peer:peer -> routers:Topology.Graph.node array -> unit

  val query :
    t ->
    routers:Topology.Graph.node array ->
    k:int ->
    ?exclude:(peer -> bool) ->
    unit ->
    (peer * int) list
end

(* Default batch operations, derived from the singletons: semantically the
   reference implementation every native batch path must match (the qcheck
   agreement property pins this).  Backends [include] this and override
   what they can do better. *)
module Derive_batch (B : SINGLETON) = struct
  let insert_many t entries = Array.iter (fun (peer, routers) -> B.insert t ~peer ~routers) entries

  let query_many t ~queries ~k ?(exclude = fun _ _ -> false) () =
    Array.mapi (fun qi routers -> B.query t ~routers ~k ~exclude:(fun p -> exclude qi p) ()) queries

  let query_into t ~routers ~best ~seen ~exclude =
    List.iter
      (fun (p, d) ->
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.add seen p ();
          Topk.offer best (d, p)
        end)
      (B.query t ~routers ~k:(Topk.capacity best) ~exclude ())
end

(* A backend packed with its state and a metrics sink: the dynamic form the
   server and the experiments route every call through.  The trace records
   "registry_insert" / "registry_remove" / "registry_query" identically for
   every backend; backend-specific costs (overlay hops, lookups, shard
   sizes) surface through [stats]. *)
type t =
  | Registry : {
      backend : (module S with type t = 'a);
      state : 'a;
      trace : Simkit.Trace.t;
    }
      -> t

let create ?trace (module B : S) ~landmark =
  let trace = match trace with Some t -> t | None -> Simkit.Trace.create () in
  Registry { backend = (module B); state = B.create ~landmark; trace }

let name (Registry r) =
  let module B = (val r.backend) in
  B.backend_name

let landmark (Registry r) =
  let module B = (val r.backend) in
  B.landmark r.state

let insert (Registry r) ~peer ~routers =
  let module B = (val r.backend) in
  Simkit.Trace.incr r.trace "registry_insert";
  B.insert r.state ~peer ~routers

let remove (Registry r) peer =
  let module B = (val r.backend) in
  Simkit.Trace.incr r.trace "registry_remove";
  B.remove r.state peer

let mem (Registry r) peer =
  let module B = (val r.backend) in
  B.mem r.state peer

let member_count (Registry r) =
  let module B = (val r.backend) in
  B.member_count r.state

let path_of (Registry r) peer =
  let module B = (val r.backend) in
  B.path_of r.state peer

let iter_members (Registry r) f =
  let module B = (val r.backend) in
  B.iter_members r.state f

let dtree (Registry r) p1 p2 =
  let module B = (val r.backend) in
  B.dtree r.state p1 p2

let query (Registry r) ~routers ~k ?(exclude = fun _ -> false) () =
  let module B = (val r.backend) in
  Simkit.Trace.incr r.trace "registry_query";
  B.query r.state ~routers ~k ~exclude ()

let query_member (Registry r) ~peer ~k =
  let module B = (val r.backend) in
  Simkit.Trace.incr r.trace "registry_query";
  B.query_member r.state ~peer ~k

(* Batch calls keep the per-op counter semantics: a batch of n counts as n,
   so dashboards cannot tell (and need not care) how calls were batched. *)
let insert_many (Registry r) entries =
  let module B = (val r.backend) in
  Simkit.Trace.add_count r.trace "registry_insert" (Array.length entries);
  B.insert_many r.state entries

let query_many (Registry r) ~queries ~k ?(exclude = fun _ _ -> false) () =
  let module B = (val r.backend) in
  Simkit.Trace.add_count r.trace "registry_query" (Array.length queries);
  B.query_many r.state ~queries ~k ~exclude ()

let query_member_many (Registry r) ~peers ~k =
  let module B = (val r.backend) in
  Simkit.Trace.add_count r.trace "registry_query" (Array.length peers);
  let queries =
    Array.map
      (fun peer ->
        match B.path_of r.state peer with Some routers -> routers | None -> raise Not_found)
      peers
  in
  B.query_many r.state ~queries ~k ~exclude:(fun qi p -> p = peers.(qi)) ()

let stats (Registry r) =
  let module B = (val r.backend) in
  B.stats r.state

let introspect (Registry r) =
  let module B = (val r.backend) in
  B.introspect r.state

let digest (Registry r) =
  let module B = (val r.backend) in
  B.digest r.state

let snapshot (Registry r) =
  let module B = (val r.backend) in
  B.snapshot r.state

let restore ?trace (module B : S) data =
  let trace = match trace with Some t -> t | None -> Simkit.Trace.create () in
  match B.restore data with
  | Ok state -> Ok (Registry { backend = (module B); state; trace })
  | Error e -> Error e

let check_invariants (Registry r) =
  let module B = (val r.backend) in
  B.check_invariants r.state

(* Sum assoc-list stats (as returned by [stats]) across several registries,
   e.g. the server's per-landmark instances. *)
let merge_stats lists =
  let acc = Hashtbl.create 16 in
  List.iter
    (fun kvs ->
      List.iter
        (fun (key, v) ->
          Hashtbl.replace acc key (v + Option.value ~default:0 (Hashtbl.find_opt acc key)))
        kvs)
    lists;
  Hashtbl.fold (fun key v out -> (key, v) :: out) acc [] |> List.sort compare
