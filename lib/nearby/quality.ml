type report = {
  total_d : int;
  mean_d : float;
  mean_per_peer_ratio : float;
  hit_ratio : float;
  mean_neighbor_distance : float;
}

let unreachable_cost = max_int / 4

let distance_to_peers (ctx : Selector.context) ~peer =
  let dist = Topology.Bfs.distances ctx.graph ctx.peer_routers.(peer) in
  Array.map (fun router -> dist.(router)) ctx.peer_routers

let d_of_set (ctx : Selector.context) ~peer set =
  let dist = Topology.Bfs.distances ctx.graph ctx.peer_routers.(peer) in
  Array.fold_left
    (fun acc j ->
      let d = dist.(ctx.peer_routers.(j)) in
      acc + (if d = max_int then unreachable_cost else d))
    0 set

let overlap a b =
  let in_b = Hashtbl.create (Array.length b) in
  Array.iter (fun x -> Hashtbl.replace in_b x ()) b;
  Array.fold_left (fun acc x -> if Hashtbl.mem in_b x then acc + 1 else acc) 0 a

let hit_ratio_vs ~chosen ~optimal =
  let n = Array.length chosen in
  if n = 0 || n <> Array.length optimal then
    invalid_arg "Quality.hit_ratio_vs: mismatched peer counts";
  let acc = ref 0.0 and counted = ref 0 in
  for p = 0 to n - 1 do
    let opt = optimal.(p) in
    if Array.length opt > 0 then begin
      acc := !acc +. (float_of_int (overlap chosen.(p) opt) /. float_of_int (Array.length opt));
      incr counted
    end
  done;
  if !counted = 0 then 1.0 else !acc /. float_of_int !counted

let evaluate (ctx : Selector.context) chosen =
  let n = Array.length chosen in
  if n <> Array.length ctx.peer_routers then
    invalid_arg "Quality.evaluate: one neighbor set per peer required";
  let optimal = Selector.oracle_distance_sets ctx ~k:(if n = 0 then 0 else Array.length chosen.(0)) in
  let total = ref 0 in
  let ratio_acc = ref 0.0 and ratio_count = ref 0 in
  let pair_dist = Prelude.Stats.create () in
  for p = 0 to n - 1 do
    let dist = Topology.Bfs.distances ctx.graph ctx.peer_routers.(p) in
    let d_of set =
      Array.fold_left
        (fun acc j ->
          let d = dist.(ctx.peer_routers.(j)) in
          acc + (if d = max_int then unreachable_cost else d))
        0 set
    in
    let d_chosen = d_of chosen.(p) in
    let d_opt = d_of optimal.(p) in
    total := !total + d_chosen;
    Array.iter
      (fun j ->
        let d = dist.(ctx.peer_routers.(j)) in
        if d <> max_int then Prelude.Stats.add pair_dist (float_of_int d))
      chosen.(p);
    if d_opt > 0 then begin
      ratio_acc := !ratio_acc +. (float_of_int d_chosen /. float_of_int d_opt);
      incr ratio_count
    end
    else if d_chosen = 0 then begin
      ratio_acc := !ratio_acc +. 1.0;
      incr ratio_count
    end
  done;
  {
    total_d = !total;
    mean_d = (if n = 0 then 0.0 else float_of_int !total /. float_of_int n);
    mean_per_peer_ratio = (if !ratio_count = 0 then 1.0 else !ratio_acc /. float_of_int !ratio_count);
    hit_ratio = hit_ratio_vs ~chosen ~optimal;
    mean_neighbor_distance = Prelude.Stats.mean pair_dist;
  }

let ratio_vs (ctx : Selector.context) ~chosen ~optimal =
  let n = Array.length chosen in
  if n <> Array.length optimal then invalid_arg "Quality.ratio_vs: mismatched peer counts";
  let sum sets =
    let acc = ref 0 in
    for p = 0 to n - 1 do
      acc := !acc + d_of_set ctx ~peer:p sets.(p)
    done;
    !acc
  in
  let d_chosen = sum chosen and d_opt = sum optimal in
  if d_opt = 0 then begin
    if d_chosen = 0 then 1.0 else invalid_arg "Quality.ratio_vs: zero optimal distance"
  end
  else float_of_int d_chosen /. float_of_int d_opt
