include Path_tree_core.Make (struct
  type t = float

  let zero = 0.0
  let add = ( +. )
  let compare = compare
end)

let hops_of_route ~latency route =
  let rec build prev acc_cost acc = function
    | [] -> List.rev acc
    | router :: rest ->
        let cost =
          match prev with
          | None -> 0.0
          | Some p -> acc_cost +. Topology.Latency.get latency p router
        in
        build (Some router) cost ((router, cost) :: acc) rest
  in
  Array.of_list (build None 0.0 [] route)
