type message =
  | Ping_request of { nonce : int }
  | Ping_reply of { nonce : int }
  | Path_report of { peer : int; path : Traceroute.Path.t }
  | Neighbor_request of { peer : int; k : int }
  | Neighbor_reply of { peer : int; neighbors : (int * int) list }
  | Leave of { peer : int }
  | Path_report_batch of { reports : (int * Traceroute.Path.t) list }

let protocol_version = 1

(* The wire-observability kind labels: one stable string per message
   family, the values `wire_bytes_total{kind=...}` series are keyed by.
   Requests for neighbors are the protocol's "query" and their answers
   the "reply" — named for the role, not the constructor, so the metric
   vocabulary matches the bench and dashboard headings. *)
let kind = function
  | Ping_request _ | Ping_reply _ -> "ping"
  | Path_report _ -> "path_report"
  | Neighbor_request _ -> "query"
  | Neighbor_reply _ -> "reply"
  | Leave _ -> "leave"
  | Path_report_batch _ -> "path_report_batch"

let tag = function
  | Ping_request _ -> 0
  | Ping_reply _ -> 1
  | Path_report _ -> 2
  | Neighbor_request _ -> 3
  | Neighbor_reply _ -> 4
  | Leave _ -> 5
  | Path_report_batch _ -> 6

(* The encoder is written once against [Codec.SINK] and instantiated twice:
   over [Writer] to produce bytes, over [Sizer] to measure them — so
   [byte_size] cannot drift from [encode] and allocates nothing. *)
module Emit (S : Prelude.Codec.SINK) = struct
  (* Hops are encoded as varints shifted by one so that 0 can mean an
     anonymous hop. *)
  let hop w = function
    | Traceroute.Path.Anonymous -> S.varint w 0
    | Traceroute.Path.Known r -> S.varint w (r + 1)

  let report w peer (path : Traceroute.Path.t) =
    S.varint w peer;
    S.varint w path.src;
    S.varint w path.dst;
    S.list w (hop w) (Array.to_list path.hops)

  let message w m =
    S.u8 w protocol_version;
    S.u8 w (tag m);
    match m with
    | Ping_request { nonce } | Ping_reply { nonce } -> S.varint w nonce
    | Path_report { peer; path } -> report w peer path
    | Path_report_batch { reports } -> S.list w (fun (peer, path) -> report w peer path) reports
    | Neighbor_request { peer; k } ->
        S.varint w peer;
        S.varint w k
    | Neighbor_reply { peer; neighbors } ->
        S.varint w peer;
        S.list w
          (fun (p, d) ->
            S.varint w p;
            S.varint w d)
          neighbors
    | Leave { peer } -> S.varint w peer
end

module Emit_bytes = Emit (Prelude.Codec.Writer)
module Emit_size = Emit (Prelude.Codec.Sizer)

let encode message =
  let w = Prelude.Codec.Writer.create () in
  Emit_bytes.message w message;
  Prelude.Codec.Writer.contents w

let byte_size message =
  let s = Prelude.Codec.Sizer.create () in
  Emit_size.message s message;
  Prelude.Codec.Sizer.size s

let decode_hop r =
  match Prelude.Codec.Reader.varint r with
  | Error e -> Error e
  | Ok 0 -> Ok Traceroute.Path.Anonymous
  | Ok v -> Ok (Traceroute.Path.Known (v - 1))

let decode_report r =
  let open Prelude.Codec.Reader in
  let ( let* ) = Result.bind in
  let* peer = varint r in
  let* src = varint r in
  let* dst = varint r in
  let* hops = list r decode_hop in
  Ok (peer, { Traceroute.Path.src; dst; hops = Array.of_list hops })

let decode_body r t =
  let open Prelude.Codec.Reader in
  let ( let* ) = Result.bind in
  match t with
  | 0 ->
      let* nonce = varint r in
      Ok (Ping_request { nonce })
  | 1 ->
      let* nonce = varint r in
      Ok (Ping_reply { nonce })
  | 2 ->
      let* peer, path = decode_report r in
      Ok (Path_report { peer; path })
  | 3 ->
      let* peer = varint r in
      let* k = varint r in
      Ok (Neighbor_request { peer; k })
  | 4 ->
      let* peer = varint r in
      let* neighbors =
        list r (fun r ->
            let* p = varint r in
            let* d = varint r in
            Ok (p, d))
      in
      Ok (Neighbor_reply { peer; neighbors })
  | 5 ->
      let* peer = varint r in
      Ok (Leave { peer })
  | 6 ->
      let* reports = list r decode_report in
      Ok (Path_report_batch { reports })
  | other -> Error (Malformed (Printf.sprintf "unknown tag %d" other))

let decode data =
  let open Prelude.Codec.Reader in
  let r = of_string data in
  let ( let* ) = Result.bind in
  let result =
    let* version = u8 r in
    if version <> protocol_version then
      Error (Malformed (Printf.sprintf "unsupported version %d" version))
    else
      let* t = u8 r in
      let* message = decode_body r t in
      if is_exhausted r then Ok message else Error (Malformed "trailing bytes")
  in
  Result.map_error error_to_string result

let equal a b = a = b

let pp ppf = function
  | Ping_request { nonce } -> Format.fprintf ppf "ping?%d" nonce
  | Ping_reply { nonce } -> Format.fprintf ppf "ping!%d" nonce
  | Path_report { peer; path } ->
      Format.fprintf ppf "path-report peer=%d %a" peer Traceroute.Path.pp path
  | Neighbor_request { peer; k } -> Format.fprintf ppf "neighbors? peer=%d k=%d" peer k
  | Neighbor_reply { peer; neighbors } ->
      Format.fprintf ppf "neighbors! peer=%d [%s]" peer
        (String.concat "; " (List.map (fun (p, d) -> Printf.sprintf "%d@%d" p d) neighbors))
  | Leave { peer } -> Format.fprintf ppf "leave peer=%d" peer
  | Path_report_batch { reports } ->
      Format.fprintf ppf "path-report-batch n=%d [%s]" (List.length reports)
        (String.concat "; " (List.map (fun (p, _) -> string_of_int p) reports))
