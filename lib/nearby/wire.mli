(** Wire format of the discovery protocol.

    What actually crosses the network in a deployment: the round-1 pings,
    the newcomer's recorded path upload, and the server's neighbor reply.
    Binary, versioned, and decodable from untrusted bytes (decoding never
    raises).  The simulator itself passes values in memory; this module
    exists so the byte sizes charged to {!Simkit.Transport} are honest and
    so a real implementation could interoperate. *)

type message =
  | Ping_request of { nonce : int }
  | Ping_reply of { nonce : int }
  | Path_report of { peer : int; path : Traceroute.Path.t }
      (** Round 2 upload: the traceroute output, anonymous hops included. *)
  | Neighbor_request of { peer : int; k : int }
  | Neighbor_reply of { peer : int; neighbors : (int * int) list }
      (** [(peer id, inferred distance)], ascending. *)
  | Leave of { peer : int }
  | Path_report_batch of { reports : (int * Traceroute.Path.t) list }
      (** Replication fan-out: a whole batch of registrations shipped to a
          replica as one message instead of one {!Path_report} each —
          varint-packed, it costs a fraction of n separate reports. *)

val protocol_version : int

val encode : message -> string
(** Version byte, tag byte, then the payload. *)

val decode : string -> (message, string) result
(** Total: any byte string yields [Ok] or [Error reason]; decoding consumes
    the whole buffer (trailing garbage is an error). *)

val byte_size : message -> int
(** Exactly [String.length (encode m)], computed by a counting pass over
    the same emitter ({!Prelude.Codec.Sizer}) — no buffer is allocated.
    Used by the simulator to charge realistic message sizes on hot
    paths. *)

val kind : message -> string
(** The wire-observability label for the message family — the [kind=]
    value its bytes are charged under in [wire_bytes_total]: ["ping"],
    ["path_report"], ["query"] (neighbor request), ["reply"] (neighbor
    reply), ["leave"], ["path_report_batch"]. *)

val equal : message -> message -> bool
val pp : Format.formatter -> message -> unit
