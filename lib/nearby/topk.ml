(* Bounded best-k accumulator shared by every registry backend.

   Keeps the k smallest elements seen so far in a worst-at-the-root binary
   max-heap, so offering a candidate costs O(log k) instead of the O(k)
   sorted-list insertion (O(k^2) per query) it replaces.  The element order
   is whatever [compare] says; backends pass a (cost, peer) lexicographic
   compare so equal-cost ties break to the lower peer id everywhere. *)

type 'a t = {
  k : int;
  compare : 'a -> 'a -> int;  (* ascending: smaller is better *)
  heap : 'a array;  (* slots [0, size): max-heap, worst element at the root *)
  mutable size : int;
}

let create ~k compare =
  if k < 0 then invalid_arg "Topk.create: negative k";
  { k; compare; heap = Array.make (max k 1) (Obj.magic 0); size = 0 }

let length t = t.size
let is_full t = t.size >= t.k
let capacity t = t.k

(* Forget the held elements but keep the arrays: batch loops reuse one
   selector across queries instead of allocating k slots per query. *)
let clear t = t.size <- 0

(* The current k-th best element, once k candidates are held. *)
let worst t = if t.size < t.k then None else Some t.heap.(0)

(* Would [x] enter the heap, or tie the k-th best?  The "or tie" matters to
   callers using it as a scan cutoff: an equal-cost candidate with a lower
   peer id still displaces the current worst. *)
let accepts t x =
  match worst t with None -> t.k > 0 | Some w -> t.compare x w <= 0

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let sift_up t start =
  let i = ref start in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.compare t.heap.(parent) t.heap.(!i) < 0 then begin
      swap t parent !i;
      i := parent
    end
    else continue := false
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let largest = ref !i in
    if l < t.size && t.compare t.heap.(l) t.heap.(!largest) > 0 then largest := l;
    if r < t.size && t.compare t.heap.(r) t.heap.(!largest) > 0 then largest := r;
    if !largest <> !i then begin
      swap t !largest !i;
      i := !largest
    end
    else continue := false
  done

let offer t x =
  if t.k > 0 then begin
    if t.size < t.k then begin
      t.heap.(t.size) <- x;
      t.size <- t.size + 1;
      sift_up t (t.size - 1)
    end
    else if t.compare x t.heap.(0) < 0 then begin
      (* Strictly better than the current worst: equal elements never
         displace (first-come keeps its slot, as the sorted-list code did). *)
      t.heap.(0) <- x;
      sift_down t
    end
  end

(* Ascending (best first); does not disturb the heap. *)
let to_sorted_list t =
  let out = Array.sub t.heap 0 t.size in
  Array.sort t.compare out;
  Array.to_list out

let iter t f =
  for i = 0 to t.size - 1 do
    f t.heap.(i)
  done
