(* A horizontally scaled management store: router buckets hash-partitioned
   across N independent shards, each a full registry backend of its own.

   A peer's home shard is the hash of its attachment router (the first
   router of its recorded path), so every bucket the peer occupies lives on
   one shard and an insert touches exactly one shard -- insert throughput
   scales with N.  Queries scatter to all shards and gather the k best
   through the shared bounded selector; because the shards partition the
   population, the merged answer is identical to a single-store deployment
   (the cross-backend equivalence test pins this). *)

module Make
    (Inner : Registry_intf.S) (Config : sig
      val shards : int
    end) : Registry_intf.S = struct
  type t = {
    landmark : Topology.Graph.node;
    shards : Inner.t array;
    home : (int, int) Hashtbl.t;  (* peer -> shard index *)
  }

  let shard_count = Config.shards
  let backend_name = Printf.sprintf "sharded:%d" shard_count

  let create ~landmark =
    if shard_count < 1 then invalid_arg "Sharded_registry.create: need at least one shard";
    {
      landmark;
      shards = Array.init shard_count (fun _ -> Inner.create ~landmark);
      home = Hashtbl.create 256;
    }

  let landmark t = t.landmark

  (* Multiplicative hash: router ids are near-sequential, so plain [mod]
     would stripe rather than hash.  Power-of-two shard counts (the common
     case) mask instead of dividing -- this sits on the insert hot path. *)
  let shard_mask = if shard_count land (shard_count - 1) = 0 then shard_count - 1 else -1

  let shard_of_router router =
    let h = router * 0x9E3779B1 in
    let h = (h lxor (h lsr 16)) land max_int in
    if shard_mask >= 0 then h land shard_mask else h mod shard_count

  let insert t ~peer ~routers =
    if Array.length routers = 0 then invalid_arg "Sharded_registry.insert: empty path";
    if Hashtbl.mem t.home peer then invalid_arg "Sharded_registry.insert: peer already registered";
    let s = shard_of_router routers.(0) in
    Inner.insert t.shards.(s) ~peer ~routers;
    Hashtbl.add t.home peer s

  let remove t peer =
    match Hashtbl.find_opt t.home peer with
    | None -> raise Not_found
    | Some s ->
        Inner.remove t.shards.(s) peer;
        Hashtbl.remove t.home peer

  let mem t peer = Hashtbl.mem t.home peer
  let member_count t = Hashtbl.length t.home

  let path_of t peer =
    match Hashtbl.find_opt t.home peer with
    | None -> None
    | Some s -> Inner.path_of t.shards.(s) peer

  let iter_members t f = Hashtbl.iter (fun p _ -> f p) t.home

  let dtree t p1 p2 =
    match (Hashtbl.find_opt t.home p1, Hashtbl.find_opt t.home p2) with
    | Some s1, Some s2 when s1 = s2 -> Inner.dtree t.shards.(s1) p1 p2
    | Some s1, Some s2 -> (
        (* Different shards: rank from the registered paths, exactly as any
           single-store backend would from its bucket structure. *)
        match (Inner.path_of t.shards.(s1) p1, Inner.path_of t.shards.(s2) p2) with
        | Some a, Some b ->
            let la = Array.length a and lb = Array.length b in
            let max_j = min la lb in
            let rec suffix j =
              if j < max_j && a.(la - 1 - j) = b.(lb - 1 - j) then suffix (j + 1) else j
            in
            let j = suffix 0 in
            if j = 0 then None else Some (la - j + (lb - j))
        | None, _ | _, None -> None)
    | None, _ | _, None -> None

  let query t ~routers ~k ?(exclude = fun _ -> false) () =
    if k <= 0 then []
    else begin
      let best = Topk.create ~k compare in
      Array.iter
        (fun shard ->
          List.iter (fun (p, d) -> Topk.offer best (d, p)) (Inner.query shard ~routers ~k ~exclude ()))
        t.shards;
      List.map (fun (d, p) -> (p, d)) (Topk.to_sorted_list best)
    end

  let query_member t ~peer ~k =
    match path_of t peer with
    | None -> raise Not_found
    | Some routers -> query t ~routers ~k ~exclude:(fun p -> p = peer) ()

  let stats t =
    let inner = Registry_intf.merge_stats (Array.to_list (Array.map Inner.stats t.shards)) in
    let largest = Array.fold_left (fun m s -> max m (Inner.member_count s)) 0 t.shards in
    ("largest_shard", largest) :: ("shards", shard_count) :: inner |> List.sort compare

  (* Per-shard introspections merge bucket-wise: a router whose bucket is
     split across shards counts once per physical bucket, which is the
     storage-level truth for a scatter-gather store.  The home table keeps
     the authoritative member count (shards partition peers, so the merged
     sum equals it anyway). *)
  let introspect t =
    let merged =
      Registry_intf.merge_introspections
        (Array.to_list (Array.map Inner.introspect t.shards))
    in
    {
      merged with
      Registry_intf.members = member_count t;
      approx_bytes = merged.Registry_intf.approx_bytes + (8 * 3 * Hashtbl.length t.home);
    }

  let check_invariants t =
    Array.iter Inner.check_invariants t.shards;
    Hashtbl.iter
      (fun peer s ->
        if s < 0 || s >= shard_count then
          failwith (Printf.sprintf "peer %d assigned to shard %d of %d" peer s shard_count);
        if not (Inner.mem t.shards.(s) peer) then
          failwith (Printf.sprintf "peer %d missing from its home shard %d" peer s))
      t.home;
    let members = Array.fold_left (fun acc s -> acc + Inner.member_count s) 0 t.shards in
    if members <> Hashtbl.length t.home then
      failwith
        (Printf.sprintf "shards hold %d members, home table %d" members (Hashtbl.length t.home))

  let snapshot_version = 1

  let snapshot t =
    let w = Prelude.Codec.Writer.create ~capacity:1024 () in
    let open Prelude.Codec.Writer in
    u8 w snapshot_version;
    varint w shard_count;
    varint w t.landmark;
    list w (fun shard -> bytes w (Inner.snapshot shard)) (Array.to_list t.shards);
    contents w

  let restore data =
    let open Prelude.Codec.Reader in
    let ( let* ) = Result.bind in
    let r = of_string data in
    let result =
      let* version = u8 r in
      if version <> snapshot_version then
        Error (Malformed (Printf.sprintf "unsupported registry snapshot version %d" version))
      else
        let* shards = varint r in
        let* landmark = varint r in
        let* blobs = list r bytes in
        if not (is_exhausted r) then Error (Malformed "trailing bytes")
        else Ok (shards, landmark, blobs)
    in
    match result with
    | Error e -> Error (error_to_string e)
    | Ok (shards, landmark, blobs) ->
        if shards <> shard_count || List.length blobs <> shard_count then
          Error
            (Printf.sprintf "snapshot has %d shards, this backend is configured for %d" shards
               shard_count)
        else begin
          let restored = List.map Inner.restore blobs in
          match
            List.find_map (function Error e -> Some e | Ok _ -> None) restored
          with
          | Some e -> Error e
          | None ->
              let shards =
                Array.of_list (List.map (function Ok s -> s | Error _ -> assert false) restored)
              in
              let t = { landmark; shards; home = Hashtbl.create 256 } in
              let clash = ref None in
              Array.iteri
                (fun s shard ->
                  Inner.iter_members shard (fun peer ->
                      if Hashtbl.mem t.home peer then clash := Some peer
                      else Hashtbl.add t.home peer s))
                t.shards;
              (match !clash with
              | Some peer -> Error (Printf.sprintf "peer %d appears in several shards" peer)
              | None -> Ok t)
        end
end

(* Runtime construction: [make ~shards ()] packs a sharded backend over any
   inner backend (the paper's path tree by default) as a first-class
   module, ready for [Server.create ~backend] or the CLI's --backend flag. *)
let make ?inner ~shards () : (module Registry_intf.S) =
  let inner = Option.value ~default:(module Path_tree : Registry_intf.S) inner in
  let module I = (val inner : Registry_intf.S) in
  (module Make
            (I)
            (struct
              let shards = shards
            end) : Registry_intf.S)
