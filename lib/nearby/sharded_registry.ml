(* A horizontally scaled management store: router buckets hash-partitioned
   across N independent shards, each a full registry backend of its own.

   A peer's home shard is the hash of its attachment router (the first
   router of its recorded path), so every bucket the peer occupies lives on
   one shard and an insert touches exactly one shard -- insert throughput
   scales with N.  Queries scatter to all shards and gather the k best;
   because the shards partition the population, the merged answer is
   identical to a single-store deployment (the cross-backend equivalence
   test pins this).

   Two scatter strategies:

   - Sequential (the default on one core): one bounded selector and one
     dedup table are carried across the shards via [query_into], visiting
     the query path's own home shard first.  Co-attached peers -- the
     nearest answers -- live on that home shard by construction, so the
     bound is tight after the first shard and each remaining shard usually
     stops after a bucket probe or two.
   - Domain-parallel (multi-core): the per-shard scatter runs on a small
     persistent [Prelude.Domain_pool].  Shards are disjoint data
     structures and workers write only their own slot of the results
     array, so no shared mutable state crosses domains; the caller merges
     with the same bounded selector afterwards.  [exclude] closures run on
     worker domains and must be pure.

   The [home] table maps peer -> shard index.  It is created with a small
   hint (capacity 256) on purpose: OCaml hash tables double on demand at
   amortized O(1) per insert, registries are usually long-lived enough to
   absorb the log2(n) resizes, and no population hint exists at [create]
   time.  [insert_many] groups a batch into one bulk insert per shard, so
   shard-local tables grow once per doubling instead of rehashing under
   interleaved singleton traffic. *)

module Make
    (Inner : Registry_intf.S) (Config : sig
      val shards : int

      val query_domains : int
      (** Parallelism for the query scatter: 0 sizes from the machine
          (shared pool, sequential scatter on a single core), 1 forces the
          sequential scatter, n > 1 forces a dedicated n-domain pool. *)

      val parallel_threshold : int
      (** Engage the pool only at or above this member count: job handoff
          costs microseconds, so small registries always scatter
          sequentially. *)

      val metrics : Simkit.Metrics.t option
      (** Per-shard dimensional streams: timings under
          [registry_shard_insert_ns]/[registry_shard_query_ns] labeled
          [{shard="<i>"}], and an occupancy gauge
          [registry_shard_members] labeled [{landmark="<l>",
          shard="<i>"}] — the landmark identifies the registry instance,
          so summing the gauge per shard across landmarks yields a
          server's true per-shard totals.  [None] keeps the hot paths
          untouched. *)
    end) : Registry_intf.S = struct
  type t = {
    landmark : Topology.Graph.node;
    shards : Inner.t array;
    home : (int, int) Hashtbl.t;  (* peer -> shard index *)
    occ : (string * string) list array;  (* occupancy-gauge labels, per shard *)
  }

  let shard_count = Config.shards
  let backend_name = Printf.sprintf "sharded:%d" shard_count

  (* Per-shard observability.  Label lists are preallocated per shard and
     every hook starts with a [Config.metrics] match, so the disabled path
     costs one branch.  Workers never touch the registry from inside the
     pool -- Metrics hashtables are not thread-safe -- parallel paths time
     into a caller-local array and observe after the join. *)
  let shard_insert_ns = "registry_shard_insert_ns"
  let shard_query_ns = "registry_shard_query_ns"
  let shard_members = "registry_shard_members"
  let shard_labels = Array.init shard_count (fun s -> [ ("shard", string_of_int s) ])
  let clock () = Unix.gettimeofday () *. 1e9

  (* [n] amortized samples of [elapsed] total: batch visits then weigh the
     same as the singleton visits they replaced, so per-shard quantiles
     stay comparable across scatter strategies. *)
  let observe_shard stream s ~elapsed ~n =
    match Config.metrics with
    | None -> ()
    | Some m ->
        if n > 0 then begin
          let per_op = elapsed /. float_of_int n in
          for _ = 1 to n do
            Simkit.Metrics.observe m stream ~labels:shard_labels.(s) per_op
          done
        end

  let occ_labels landmark =
    Array.init shard_count (fun s ->
        [ ("landmark", string_of_int landmark); ("shard", string_of_int s) ])

  let set_occupancy t s =
    match Config.metrics with
    | None -> ()
    | Some m ->
        Simkit.Metrics.set m shard_members ~labels:t.occ.(s)
          (float_of_int (Inner.member_count t.shards.(s)))

  let pool =
    lazy
      (if shard_count < 2 then None
       else
         match Config.query_domains with
         | 0 ->
             if Domain.recommended_domain_count () > 1 then Some (Prelude.Domain_pool.shared ())
             else None
         | 1 -> None
         | n ->
             let p = Prelude.Domain_pool.create ~domains:n () in
             at_exit (fun () -> Prelude.Domain_pool.shutdown p);
             Some p)

  let create ~landmark =
    if shard_count < 1 then invalid_arg "Sharded_registry.create: need at least one shard";
    {
      landmark;
      shards = Array.init shard_count (fun _ -> Inner.create ~landmark);
      home = Hashtbl.create 256;
      occ = occ_labels landmark;
    }

  let landmark t = t.landmark

  (* Multiplicative hash: router ids are near-sequential, so plain [mod]
     would stripe rather than hash.  Power-of-two shard counts (the common
     case) mask instead of dividing -- this sits on the insert hot path. *)
  let shard_mask = if shard_count land (shard_count - 1) = 0 then shard_count - 1 else -1

  let shard_of_router router =
    let h = router * 0x9E3779B1 in
    let h = (h lxor (h lsr 16)) land max_int in
    if shard_mask >= 0 then h land shard_mask else h mod shard_count

  let insert t ~peer ~routers =
    if Array.length routers = 0 then invalid_arg "Sharded_registry.insert: empty path";
    if Hashtbl.mem t.home peer then invalid_arg "Sharded_registry.insert: peer already registered";
    let s = shard_of_router routers.(0) in
    (match Config.metrics with
    | None -> Inner.insert t.shards.(s) ~peer ~routers
    | Some _ ->
        let t0 = clock () in
        Inner.insert t.shards.(s) ~peer ~routers;
        observe_shard shard_insert_ns s ~elapsed:(clock () -. t0) ~n:1);
    Hashtbl.add t.home peer s;
    set_occupancy t s

  let insert_many t entries =
    let n = Array.length entries in
    if n = 1 then begin
      let peer, routers = entries.(0) in
      insert t ~peer ~routers
    end
    else if n > 1 then begin
      (* Validate the whole batch (against the store and within itself)
         before touching any shard; with a well-formed batch each shard's
         own bulk insert then cannot fail halfway. *)
      let batch = Hashtbl.create (2 * n) in
      Array.iter
        (fun (peer, routers) ->
          let len = Array.length routers in
          if len = 0 then invalid_arg "Sharded_registry.insert: empty path";
          if routers.(len - 1) <> t.landmark then
            invalid_arg "Sharded_registry.insert: path must end at the landmark";
          if Hashtbl.mem t.home peer || Hashtbl.mem batch peer then
            invalid_arg "Sharded_registry.insert: peer already registered";
          Hashtbl.add batch peer ())
        entries;
      (* One bulk insert per home shard, preserving batch order within each
         shard so the result is exactly the looped-singleton state. *)
      let groups = Array.make shard_count [] in
      for i = n - 1 downto 0 do
        let _, routers = entries.(i) in
        let s = shard_of_router routers.(0) in
        groups.(s) <- entries.(i) :: groups.(s)
      done;
      Array.iteri
        (fun s group ->
          match group with
          | [] -> ()
          | group ->
              let arr = Array.of_list group in
              (match Config.metrics with
              | None -> Inner.insert_many t.shards.(s) arr
              | Some _ ->
                  let t0 = clock () in
                  Inner.insert_many t.shards.(s) arr;
                  observe_shard shard_insert_ns s ~elapsed:(clock () -. t0)
                    ~n:(Array.length arr));
              Array.iter (fun (peer, _) -> Hashtbl.add t.home peer s) arr;
              set_occupancy t s)
        groups
    end

  let remove t peer =
    match Hashtbl.find_opt t.home peer with
    | None -> raise Not_found
    | Some s ->
        Inner.remove t.shards.(s) peer;
        Hashtbl.remove t.home peer;
        set_occupancy t s

  let mem t peer = Hashtbl.mem t.home peer
  let member_count t = Hashtbl.length t.home

  let path_of t peer =
    match Hashtbl.find_opt t.home peer with
    | None -> None
    | Some s -> Inner.path_of t.shards.(s) peer

  let iter_members t f = Hashtbl.iter (fun p _ -> f p) t.home

  let dtree t p1 p2 =
    match (Hashtbl.find_opt t.home p1, Hashtbl.find_opt t.home p2) with
    | Some s1, Some s2 when s1 = s2 -> Inner.dtree t.shards.(s1) p1 p2
    | Some s1, Some s2 -> (
        (* Different shards: rank from the registered paths, exactly as any
           single-store backend would from its bucket structure. *)
        match (Inner.path_of t.shards.(s1) p1, Inner.path_of t.shards.(s2) p2) with
        | Some a, Some b ->
            let la = Array.length a and lb = Array.length b in
            let max_j = min la lb in
            let rec suffix j =
              if j < max_j && a.(la - 1 - j) = b.(lb - 1 - j) then suffix (j + 1) else j
            in
            let j = suffix 0 in
            if j = 0 then None else Some (la - j + (lb - j))
        | None, _ | _, None -> None)
    | None, _ | _, None -> None

  let candidate_compare (d1, p1) (d2, p2) =
    match Int.compare d1 d2 with 0 -> Int.compare p1 p2 | c -> c

  let drain best = List.map (fun (d, p) -> (p, d)) (Topk.to_sorted_list best)

  (* Sequential scatter, home shard of the query path first: the peers
     co-attached at [routers.(0)] all live on that shard, so [best] leaves
     it holding the tightest possible bound and the other shards' walks cut
     off almost immediately. *)
  let scatter_into t ~routers ~best ~seen ~exclude =
    if Array.length routers > 0 then begin
      let visit s =
        match Config.metrics with
        | None -> Inner.query_into t.shards.(s) ~routers ~best ~seen ~exclude
        | Some _ ->
            let t0 = clock () in
            Inner.query_into t.shards.(s) ~routers ~best ~seen ~exclude;
            observe_shard shard_query_ns s ~elapsed:(clock () -. t0) ~n:1
      in
      let first = shard_of_router routers.(0) in
      visit first;
      for s = 0 to shard_count - 1 do
        if s <> first then visit s
      done
    end

  let query_into = scatter_into

  let usable_pool t =
    if member_count t < Config.parallel_threshold then None else Lazy.force pool

  let query t ~routers ~k ?(exclude = fun _ -> false) () =
    if k <= 0 then []
    else begin
      let best = Topk.create ~k candidate_compare in
      (match usable_pool t with
      | Some pool ->
          let parts = Array.make shard_count [] in
          let elapsed = Array.make shard_count 0.0 in
          let timing = Option.is_some Config.metrics in
          Prelude.Domain_pool.run pool shard_count (fun s ->
              let t0 = if timing then clock () else 0.0 in
              parts.(s) <- Inner.query t.shards.(s) ~routers ~k ~exclude ();
              if timing then elapsed.(s) <- clock () -. t0);
          if timing then
            Array.iteri (fun s e -> observe_shard shard_query_ns s ~elapsed:e ~n:1) elapsed;
          Array.iter (fun part -> List.iter (fun (p, d) -> Topk.offer best (d, p)) part) parts
      | None ->
          let seen = Hashtbl.create 64 in
          scatter_into t ~routers ~best ~seen ~exclude);
      drain best
    end

  let query_many t ~queries ~k ?(exclude = fun _ _ -> false) () =
    let n = Array.length queries in
    if k <= 0 then Array.make n []
    else
      match usable_pool t with
      | Some pool when n > 0 ->
          (* Shard-major: each worker answers the whole batch against its
             own shard (reusing that shard's selector state), the caller
             merges per query.  Workers write disjoint slots of [parts]. *)
          let parts = Array.make shard_count [||] in
          let elapsed = Array.make shard_count 0.0 in
          let timing = Option.is_some Config.metrics in
          Prelude.Domain_pool.run pool shard_count (fun s ->
              let t0 = if timing then clock () else 0.0 in
              parts.(s) <- Inner.query_many t.shards.(s) ~queries ~k ~exclude ();
              if timing then elapsed.(s) <- clock () -. t0);
          if timing then
            Array.iteri (fun s e -> observe_shard shard_query_ns s ~elapsed:e ~n) elapsed;
          Array.init n (fun qi ->
              let best = Topk.create ~k candidate_compare in
              for s = 0 to shard_count - 1 do
                List.iter (fun (p, d) -> Topk.offer best (d, p)) parts.(s).(qi)
              done;
              drain best)
      | _ ->
          (* Query-major with shared accumulators: the bound carries from
             the home shard, and [clear] keeps capacity across the batch. *)
          let best = Topk.create ~k candidate_compare in
          let seen = Hashtbl.create 64 in
          Array.mapi
            (fun qi routers ->
              Topk.clear best;
              Hashtbl.clear seen;
              scatter_into t ~routers ~best ~seen ~exclude:(fun p -> exclude qi p);
              drain best)
            queries

  let query_member t ~peer ~k =
    match path_of t peer with
    | None -> raise Not_found
    | Some routers -> query t ~routers ~k ~exclude:(fun p -> p = peer) ()

  let stats t =
    let inner = Registry_intf.merge_stats (Array.to_list (Array.map Inner.stats t.shards)) in
    let largest = Array.fold_left (fun m s -> max m (Inner.member_count s)) 0 t.shards in
    ("largest_shard", largest) :: ("shards", shard_count) :: inner |> List.sort compare

  (* Shards partition the members, so the composite digest is the XOR-merge
     of the per-shard digests — the same combine the shards themselves use
     per entry, hence independent of both insertion order and shard
     placement. *)
  let digest t =
    Array.fold_left
      (fun acc shard -> Registry_intf.combine_digests acc (Inner.digest shard))
      Registry_intf.empty_digest t.shards

  (* Per-shard introspections merge bucket-wise: a router whose bucket is
     split across shards counts once per physical bucket, which is the
     storage-level truth for a scatter-gather store.  The home table keeps
     the authoritative member count (shards partition peers, so the merged
     sum equals it anyway). *)
  let introspect t =
    let merged =
      Registry_intf.merge_introspections
        (Array.to_list (Array.map Inner.introspect t.shards))
    in
    {
      merged with
      Registry_intf.members = member_count t;
      approx_bytes = merged.Registry_intf.approx_bytes + (8 * 3 * Hashtbl.length t.home);
    }

  let check_invariants t =
    Array.iter Inner.check_invariants t.shards;
    Hashtbl.iter
      (fun peer s ->
        if s < 0 || s >= shard_count then
          failwith (Printf.sprintf "peer %d assigned to shard %d of %d" peer s shard_count);
        if not (Inner.mem t.shards.(s) peer) then
          failwith (Printf.sprintf "peer %d missing from its home shard %d" peer s))
      t.home;
    let members = Array.fold_left (fun acc s -> acc + Inner.member_count s) 0 t.shards in
    if members <> Hashtbl.length t.home then
      failwith
        (Printf.sprintf "shards hold %d members, home table %d" members (Hashtbl.length t.home))

  let snapshot_version = 1

  let snapshot t =
    let w = Prelude.Codec.Writer.create ~capacity:1024 () in
    let open Prelude.Codec.Writer in
    u8 w snapshot_version;
    varint w shard_count;
    varint w t.landmark;
    list w (fun shard -> bytes w (Inner.snapshot shard)) (Array.to_list t.shards);
    contents w

  let restore data =
    let open Prelude.Codec.Reader in
    let ( let* ) = Result.bind in
    let r = of_string data in
    let result =
      let* version = u8 r in
      if version <> snapshot_version then
        Error (Malformed (Printf.sprintf "unsupported registry snapshot version %d" version))
      else
        let* shards = varint r in
        let* landmark = varint r in
        let* blobs = list r bytes in
        if not (is_exhausted r) then Error (Malformed "trailing bytes")
        else Ok (shards, landmark, blobs)
    in
    match result with
    | Error e -> Error (error_to_string e)
    | Ok (shards, landmark, blobs) ->
        if shards <> shard_count || List.length blobs <> shard_count then
          Error
            (Printf.sprintf "snapshot has %d shards, this backend is configured for %d" shards
               shard_count)
        else begin
          let restored = List.map Inner.restore blobs in
          match
            List.find_map (function Error e -> Some e | Ok _ -> None) restored
          with
          | Some e -> Error e
          | None ->
              let shards =
                Array.of_list (List.map (function Ok s -> s | Error _ -> assert false) restored)
              in
              let t =
                { landmark; shards; home = Hashtbl.create 256; occ = occ_labels landmark }
              in
              let clash = ref None in
              Array.iteri
                (fun s shard ->
                  Inner.iter_members shard (fun peer ->
                      if Hashtbl.mem t.home peer then clash := Some peer
                      else Hashtbl.add t.home peer s))
                t.shards;
              (match !clash with
              | Some peer -> Error (Printf.sprintf "peer %d appears in several shards" peer)
              | None -> Ok t)
        end
end

(* Runtime construction: [make ~shards ()] packs a sharded backend over any
   inner backend (the paper's path tree by default) as a first-class
   module, ready for [Server.create ~backend] or the CLI's --backend flag.
   [query_domains] and [parallel_threshold] tune the Domain-parallel
   scatter (defaults: size from the machine, engage at 4096 members). *)
let make ?inner ?(query_domains = 0) ?(parallel_threshold = 4096) ?metrics ~shards () :
    (module Registry_intf.S) =
  let inner = Option.value ~default:(module Path_tree : Registry_intf.S) inner in
  let module I = (val inner : Registry_intf.S) in
  (module Make
            (I)
            (struct
              let shards = shards
              let query_domains = query_domains
              let parallel_threshold = parallel_threshold
              let metrics = metrics
            end) : Registry_intf.S)
