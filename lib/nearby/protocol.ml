type mode = Direct | Resilient of { rpc : Simkit.Rpc.t }

type t = {
  latency : Topology.Latency.t option;
  engine : Simkit.Engine.t;
  cluster : Cluster.t;
  oracle : Traceroute.Route_oracle.t;
  mode : mode;
}

let create ?latency ~engine ~server_router server =
  {
    latency;
    engine;
    cluster = Cluster.single ~router:server_router server;
    oracle = Traceroute.Route_oracle.create (Server.graph server);
    mode = Direct;
  }

let create_resilient ?latency ~rpc cluster =
  if Cluster.replica_count cluster < 1 then invalid_arg "Protocol.create_resilient: empty cluster";
  {
    latency;
    engine = Simkit.Rpc.engine rpc;
    cluster;
    oracle = Traceroute.Route_oracle.create (Cluster.graph cluster);
    mode = Resilient { rpc };
  }

let server t = Cluster.measurement_server t.cluster
let cluster t = t.cluster

let rtt t src dst = Traceroute.Probe.ping ?latency:t.latency t.oracle ~src ~dst

(* Sequential TTL probing: hop i costs one round trip to router i, so the
   tool's completion time is the sum of prefix RTTs along the route. *)
let traceroute_delay t ~src ~dst =
  match Traceroute.Route_oracle.route t.oracle ~src ~dst with
  | [] -> infinity
  | routers ->
      let routers = Array.of_list routers in
      let acc = ref 0.0 in
      for i = 1 to Array.length routers - 1 do
        acc := !acc +. rtt t src routers.(i)
      done;
      !acc

let round1_delay t ~attach_router =
  (* Parallel pings: the newcomer waits for the slowest landmark reply. *)
  Array.fold_left
    (fun worst lmk -> Float.max worst (rtt t attach_router lmk))
    0.0
    (Server.landmarks (server t))

(* The server router the final RPC is expected to pay its RTT to: the lone
   replica in direct mode, the closest believed-live replica otherwise. *)
let expected_server_router t ~attach_router =
  match t.mode with
  | Direct -> Cluster.replica_router t.cluster 0
  | Resilient _ -> (
      match Cluster.target t.cluster ~src:attach_router ~attempt:1 with
      | Some replica -> Cluster.replica_router t.cluster replica
      | None -> Cluster.replica_router t.cluster 0)

let measurement_delay t ~attach_router =
  let lmk, _ =
    Landmark.closest t.oracle ?latency:t.latency
      ~landmarks:(Server.landmarks (server t))
      attach_router
  in
  round1_delay t ~attach_router +. traceroute_delay t ~src:attach_router ~dst:lmk

let estimate_join_delay t ~attach_router =
  measurement_delay t ~attach_router
  +. rtt t attach_router (expected_server_router t ~attach_router)

let join_direct ?rng t ~peer ~attach_router ~k ~on_complete ~on_failure =
  let delay = estimate_join_delay t ~attach_router in
  Simkit.Engine.schedule t.engine ~delay (fun () ->
      match Cluster.handle_join ?rng t.cluster ~replica:0 ~peer ~attach_router ~k with
      | Some (info, reply) -> on_complete info reply
      | None -> on_failure ())

(* Resilient join: the newcomer measures locally (same rng draws, same
   probe accounting as the direct path), then ships the recorded path to
   the cluster through the retrying RPC layer.  Retries resend the same
   measurement — the client does not re-traceroute on a lost packet.

   One root "join" span covers the whole client-observed join, on the
   engine clock; the measurement, every RPC attempt and (through the
   attempt's ambient context) the server-side registration subtree all
   hang off it, so a failed-over join is still one causal tree. *)
let join_resilient ?rng ?on_trace t ~rpc ~peer ~attach_router ~k ~on_complete ~on_failure =
  let spans = Simkit.Rpc.spans rpc in
  let now () = Simkit.Engine.now t.engine in
  let join_span =
    Simkit.Span.start_span spans ~name:"join" ~ts:(now ()) ~tid:peer
      [ ("peer", Simkit.Span.Int peer); ("attach_router", Simkit.Span.Int attach_router) ]
  in
  let join_ctx = Simkit.Span.context_of join_span in
  (match on_trace with Some f -> f join_ctx | None -> ());
  let measurement = Server.measure ?rng (server t) ~attach_router in
  Simkit.Span.emit spans ~name:"measure" ~ts:(now ())
    ~dur:(Server.measurement_duration_ms measurement)
    ~tid:peer
    ~ctx:(Simkit.Span.context spans ~parent:join_ctx ())
    [ ("probes", Simkit.Span.Int (Server.measurement_probes measurement)) ];
  let report = Wire.Path_report { peer; path = Server.measurement_path measurement } in
  let query = Wire.Neighbor_request { peer; k } in
  let request_parts =
    [ (Wire.kind report, Wire.byte_size report); (Wire.kind query, Wire.byte_size query) ]
  in
  let request_bytes = Wire.byte_size report + Wire.byte_size query in
  let reply_wire (_, reply) = Wire.Neighbor_reply { peer; neighbors = reply } in
  let reply_bytes r = Wire.byte_size (reply_wire r) in
  let reply_parts r = [ (Wire.kind (reply_wire r), Wire.byte_size (reply_wire r)) ] in
  let finish outcome =
    Simkit.Span.add_arg join_span "outcome" (Simkit.Span.Str outcome);
    Simkit.Span.finish ~ts:(now ()) join_span
  in
  Simkit.Engine.schedule t.engine ~delay:(Server.measurement_duration_ms measurement) (fun () ->
      Simkit.Rpc.call ~parent:join_ctx ~request_parts ~reply_parts rpc ~src:attach_router
        ~dst:(fun ~attempt ->
          Cluster.target t.cluster ~src:attach_router ~attempt
          |> Option.map (Cluster.replica_router t.cluster))
        ~request_bytes ~reply_bytes
        ~handle:(fun ~dst ->
          match Cluster.replica_at t.cluster ~router:dst with
          | None -> None
          | Some replica ->
              (* The RPC layer installs the attempt's context as ambient
                 around [handle], so the server-side subtree parents under
                 the exact attempt that carried the request. *)
              Cluster.handle_registration
                ?parent:(Simkit.Span.current spans)
                t.cluster ~replica ~peer ~attach_router ~measurement ~k)
        ~on_reply:(fun (info, reply) ->
          finish "ok";
          on_complete info reply)
        ~on_give_up:(fun () ->
          finish "gave_up";
          on_failure ()))

(* Batched join: every newcomer measures locally (same rng draws, same
   probe accounting as n singleton joins), then the whole batch rides to
   the server as ONE registration round — one engine event in direct mode,
   one retrying RPC in resilient mode, with the recorded paths packed into
   a single {!Wire.Path_report_batch} instead of n separate reports.  The
   batch waits for its slowest measurement (the newcomers measure
   concurrently) and the RPC originates at the first entry's attach router:
   the model is an aggregation point — the common access router of a flash
   crowd, or a gateway re-registering its tenants — shipping the batch
   upstream.  [on_complete] fires once per entry, in entry order, at the
   shared reply time. *)
let join_many ?rng ?on_trace ?(on_failure = fun () -> ()) t ~entries ~k ~on_complete =
  let n = Array.length entries in
  if n > 0 then begin
    let measured =
      Array.map
        (fun (peer, attach_router) ->
          (peer, attach_router, Server.measure ?rng (server t) ~attach_router))
        entries
    in
    let measure_ms =
      Array.fold_left
        (fun acc (_, _, m) -> Float.max acc (Server.measurement_duration_ms m))
        0.0 measured
    in
    let answer answers =
      Array.iteri
        (fun i (info, reply) ->
          let peer, _, _ = measured.(i) in
          on_complete peer info reply)
        answers
    in
    match t.mode with
    | Direct ->
        let server_router = Cluster.replica_router t.cluster 0 in
        let rpc_ms =
          Array.fold_left (fun acc (_, ar, _) -> Float.max acc (rtt t ar server_router)) 0.0 measured
        in
        Simkit.Engine.schedule t.engine ~delay:(measure_ms +. rpc_ms) (fun () ->
            match Cluster.handle_registration_batch t.cluster ~replica:0 ~entries:measured ~k with
            | Some answers -> answer answers
            | None -> on_failure ())
    | Resilient { rpc } ->
        let spans = Simkit.Rpc.spans rpc in
        let now () = Simkit.Engine.now t.engine in
        let _, src, _ = measured.(0) in
        let join_span =
          Simkit.Span.start_span spans ~name:"join_batch" ~ts:(now ())
            [ ("ops", Simkit.Span.Int n); ("src", Simkit.Span.Int src) ]
        in
        let join_ctx = Simkit.Span.context_of join_span in
        (match on_trace with Some f -> f join_ctx | None -> ());
        Simkit.Span.emit spans ~name:"measure" ~ts:(now ()) ~dur:measure_ms
          ~ctx:(Simkit.Span.context spans ~parent:join_ctx ())
          [
            ("ops", Simkit.Span.Int n);
            ( "probes",
              Simkit.Span.Int
                (Array.fold_left (fun acc (_, _, m) -> acc + Server.measurement_probes m) 0 measured)
            );
          ];
        let reports =
          Array.to_list
            (Array.map (fun (peer, _, m) -> (peer, Server.measurement_path m)) measured)
        in
        let batch = Wire.Path_report_batch { reports } in
        let query_bytes =
          Array.fold_left
            (fun acc (peer, _, _) -> acc + Wire.byte_size (Wire.Neighbor_request { peer; k }))
            0 measured
        in
        let request_parts =
          [
            (Wire.kind batch, Wire.byte_size batch);
            (Wire.kind (Wire.Neighbor_request { peer = 0; k }), query_bytes);
          ]
        in
        let request_bytes = Wire.byte_size batch + query_bytes in
        let reply_bytes answers =
          Array.to_list answers
          |> List.mapi (fun i (_, reply) ->
                 let peer, _, _ = measured.(i) in
                 Wire.byte_size (Wire.Neighbor_reply { peer; neighbors = reply }))
          |> List.fold_left ( + ) 0
        in
        let reply_parts answers =
          [ (Wire.kind (Wire.Neighbor_reply { peer = 0; neighbors = [] }), reply_bytes answers) ]
        in
        let finish outcome =
          Simkit.Span.add_arg join_span "outcome" (Simkit.Span.Str outcome);
          Simkit.Span.finish ~ts:(now ()) join_span
        in
        Simkit.Engine.schedule t.engine ~delay:measure_ms (fun () ->
            Simkit.Rpc.call ~parent:join_ctx ~request_parts ~reply_parts rpc ~src
              ~dst:(fun ~attempt ->
                Cluster.target t.cluster ~src ~attempt
                |> Option.map (Cluster.replica_router t.cluster))
              ~request_bytes ~reply_bytes
              ~handle:(fun ~dst ->
                match Cluster.replica_at t.cluster ~router:dst with
                | None -> None
                | Some replica ->
                    Cluster.handle_registration_batch
                      ?parent:(Simkit.Span.current spans)
                      t.cluster ~replica ~entries:measured ~k)
              ~on_reply:(fun answers ->
                finish "ok";
                answer answers)
              ~on_give_up:(fun () ->
                finish "gave_up";
                on_failure ()))
  end

let join ?rng ?on_trace ?(on_failure = fun () -> ()) t ~peer ~attach_router ~k ~on_complete =
  match t.mode with
  | Direct -> join_direct ?rng t ~peer ~attach_router ~k ~on_complete ~on_failure
  | Resilient { rpc } ->
      join_resilient ?rng ?on_trace t ~rpc ~peer ~attach_router ~k ~on_complete ~on_failure

let vivaldi_setup_delay ~rounds ~round_period_ms =
  if rounds < 0 || round_period_ms < 0.0 then invalid_arg "Protocol.vivaldi_setup_delay: negative input";
  float_of_int rounds *. round_period_ms
