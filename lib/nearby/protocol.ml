type t = {
  latency : Topology.Latency.t option;
  engine : Simkit.Engine.t;
  server_router : Topology.Graph.node;
  server : Server.t;
  oracle : Traceroute.Route_oracle.t;
}

let create ?latency ~engine ~server_router server =
  {
    latency;
    engine;
    server_router;
    server;
    oracle = Traceroute.Route_oracle.create (Server.graph server);
  }

let server t = t.server

let rtt t src dst = Traceroute.Probe.ping ?latency:t.latency t.oracle ~src ~dst

(* Sequential TTL probing: hop i costs one round trip to router i, so the
   tool's completion time is the sum of prefix RTTs along the route. *)
let traceroute_delay t ~src ~dst =
  match Traceroute.Route_oracle.route t.oracle ~src ~dst with
  | [] -> infinity
  | routers ->
      let routers = Array.of_list routers in
      let acc = ref 0.0 in
      for i = 1 to Array.length routers - 1 do
        acc := !acc +. rtt t src routers.(i)
      done;
      !acc

let round1_delay t ~attach_router =
  (* Parallel pings: the newcomer waits for the slowest landmark reply. *)
  Array.fold_left
    (fun worst lmk -> Float.max worst (rtt t attach_router lmk))
    0.0
    (Server.landmarks t.server)

let estimate_join_delay t ~attach_router =
  let lmk, _ = Landmark.closest t.oracle ?latency:t.latency ~landmarks:(Server.landmarks t.server) attach_router in
  round1_delay t ~attach_router
  +. traceroute_delay t ~src:attach_router ~dst:lmk
  +. rtt t attach_router t.server_router

let join ?rng t ~peer ~attach_router ~k ~on_complete =
  let delay = estimate_join_delay t ~attach_router in
  Simkit.Engine.schedule t.engine ~delay (fun () ->
      let info = Server.join ?rng t.server ~peer ~attach_router in
      let reply = Server.neighbors t.server ~peer ~k in
      on_complete info reply)

let vivaldi_setup_delay ~rounds ~round_period_ms =
  if rounds < 0 || round_period_ms < 0.0 then invalid_arg "Protocol.vivaldi_setup_delay: negative input";
  float_of_int rounds *. round_period_ms
