(** Overlay-quality metrics (the paper's evaluation quantities).

    For peer [p] with neighbor set [N(p)], the paper computes
    [D(p) = sum over N(p) of hop distance(p, neighbor)] and reports the
    population ratio [sum D / sum Dclosest] where [Dclosest] uses the
    brute-force optimal sets.  We add per-peer ratios, the hit ratio
    (fraction of truly-optimal neighbors found) and hop-distance stretch. *)

type report = {
  total_d : int;  (** Sum over all peers of D(p). *)
  mean_d : float;
  mean_per_peer_ratio : float;
      (** Mean over peers of [D(p) / Dclosest(p)] (peers with
          [Dclosest(p) = 0] contribute ratio 1 when [D(p) = 0], and are
          skipped otherwise counted with the global ratio convention below). *)
  hit_ratio : float;
      (** Fraction of each peer's optimal neighbors present in its chosen
          set, averaged over peers (set overlap, order-insensitive). *)
  mean_neighbor_distance : float;  (** Hop distance averaged over all chosen pairs. *)
}

val distance_to_peers : Selector.context -> peer:int -> int array
(** Hop distance from a peer's attachment router to every other peer's
    attachment router (index = peer id; the peer's own entry is 0). *)

val d_of_set : Selector.context -> peer:int -> int array -> int
(** [D(p)] for one neighbor set; unreachable neighbors count [max_int / 2]
    (clamped to avoid overflow) so they dominate but do not wrap. *)

val evaluate : Selector.context -> int array array -> report
(** Score every peer's neighbor set. *)

val ratio_vs : Selector.context -> chosen:int array array -> optimal:int array array -> float
(** The paper's headline quantity: [sum_p D_chosen(p) / sum_p D_optimal(p)].
    @raise Invalid_argument when the optimum sums to zero but the chosen
    sets do not. *)

val hit_ratio_vs : chosen:int array array -> optimal:int array array -> float
