(** The management server and the two-round join protocol (paper §2).

    Round 1: the newcomer pings every landmark and keeps the closest, then
    traceroutes toward it.  Round 2: the server registers the recorded path
    in that landmark's {!Path_tree} and answers the k registered peers with
    the smallest inferred distance.

    With several landmarks the server holds one path tree per landmark and
    answers a newcomer out of the tree of {e its} landmark — peers that
    chose the same closest landmark are exactly the regional candidates.
    When that tree cannot fill the request, the reply is topped up from the
    other trees (closest landmark first), which only matters for tiny
    populations. *)

type t

type landmark_choice =
  | Closest  (** The paper's round 1: ping every landmark, keep the best. *)
  | Uniform
      (** Ablation: register under a uniformly random landmark (skips the
          ping round entirely, so it is cheaper but regionally blind). *)

type peer_info = {
  attach_router : Topology.Graph.node;
  landmark : Topology.Graph.node;
  recorded_path : Traceroute.Path.t;
  probes_spent : int;  (** Total probe packets this peer's join cost. *)
}

val create :
  ?truncate:Traceroute.Truncate.strategy ->
  ?probe_config:Traceroute.Probe.config ->
  ?latency:Topology.Latency.t ->
  ?choice:landmark_choice ->
  ?backend:(module Registry_intf.S) ->
  ?spans:Simkit.Span.sink ->
  Traceroute.Route_oracle.t ->
  landmarks:Topology.Graph.node array ->
  t
(** [backend] selects the per-landmark registry implementation (default
    {!Path_tree}); any module satisfying {!Registry_intf.S} plugs in and
    answers the same protocol.  [spans] (default {!Simkit.Span.noop})
    receives structured protocol events: each join emits [ping_round],
    [traceroute] and [register] events and opens a [join] span (tid = peer
    id) that the peer's first {!neighbors} query closes — with attributes
    like [probes_spent], [full_hops], [candidates] and [dtree_best].
    @raise Invalid_argument on an empty landmark array or duplicate
    landmarks. *)

val backend_name : t -> string
(** The [backend_name] of the registry backend this server was built with. *)

val registry_stats : t -> (string * int) list
(** The backend's {!Registry_intf.S.stats} summed across the per-landmark
    registries — uniform per-backend metrics, whatever the backend. *)

val introspection : t -> Registry_intf.introspection
(** The backend's {!Registry_intf.S.introspect} merged across the
    per-landmark registries (they partition the peers, so counts add and
    occupancies merge bucket-wise). *)

val graph : t -> Topology.Graph.t
val landmarks : t -> Topology.Graph.node array
val peer_count : t -> int
val mem : t -> int -> bool
val info : t -> int -> peer_info option

val join : ?rng:Prelude.Prng.t -> t -> peer:int -> attach_router:Topology.Graph.node -> peer_info
(** Execute both protocol rounds for a newcomer.  Deterministic without
    [rng] (perfect probes); with [rng], probe drops and RTT noise apply.
    Exactly [register_measured] of [measure].
    @raise Invalid_argument when the peer id is already registered. *)

(** {1 Split join — the replication seam}

    A replicated cluster measures once at the client and registers the same
    recorded path on several replicas, so the two halves of {!join} are
    exposed separately. *)

type measurement
(** One newcomer's round-1 output: chosen landmark, recorded (possibly
    truncated) path, probe cost and the per-phase simulated durations. *)

val measure : ?rng:Prelude.Prng.t -> t -> attach_router:Topology.Graph.node -> measurement
(** Round 1 only: ping the landmarks, traceroute toward the winner,
    truncate.  Pure measurement — consumes rng draws but registers
    nothing and touches no counter. *)

val measurement_landmark : measurement -> Topology.Graph.node
val measurement_path : measurement -> Traceroute.Path.t
val measurement_probes : measurement -> int
(** Total probe packets the measurement cost. *)

val measurement_duration_ms : measurement -> float
(** Simulated ping-round + traceroute time. *)

val register_measured :
  ?parent:Simkit.Span.context ->
  t -> peer:int -> attach_router:Topology.Graph.node -> measurement -> peer_info
(** Round 2 server side: register the measured path and account the join
    (counters, spans).  With a span sink, the join span (and its
    ping_round/traceroute/register children) roots a fresh trace, or joins
    [parent]'s trace when given — that is how a cluster-routed registration
    stays causally linked to the RPC attempt that carried it.
    @raise Invalid_argument when already registered. *)

val register_measured_batch :
  ?parent:Simkit.Span.context ->
  t ->
  (int * Topology.Graph.node * measurement) array ->
  peer_info array
(** Round 2 for a whole batch of [(peer, attach_router, measurement)]
    entries in one pass.  Per-peer counters and latency streams match n
    calls to {!register_measured}, but the registry write is one
    {!Registry_intf.insert_many} per landmark, the wire accounting charges
    a single packed {!Wire.Path_report_batch}, and with a span sink the
    batch is one [register_batch] span (no per-peer phase spans, no open
    join span) whose duration — and the span clock advance — is the
    slowest measurement, the batch being one concurrent round.  Returns
    the infos in entry order.  @raise Invalid_argument when any peer is
    already registered (nothing is applied). *)

val register_replica :
  t ->
  peer:int ->
  attach_router:Topology.Graph.node ->
  landmark:Topology.Graph.node ->
  path:Traceroute.Path.t ->
  probes_spent:int ->
  unit
(** Replication apply: store a registration measured and accounted on
    another replica.  Bumps only the ["replica_register"] counter — no join
    counters, no spans.  @raise Invalid_argument when the peer is already
    registered or the landmark is unknown. *)

val register_replica_batch :
  t ->
  (int * Topology.Graph.node * Topology.Graph.node * Traceroute.Path.t * int) array ->
  int
(** Batched {!register_replica}: [(peer, attach_router, landmark, path,
    probes_spent)] entries applied with one {!Registry_intf.insert_many}
    per landmark.  Unlike the singleton, entries whose peer is already
    present are {e skipped} — a replayed fan-out must be idempotent — and
    the number actually applied is returned.  @raise Invalid_argument when
    a fresh entry names an unknown landmark. *)

val peer_ids : t -> int list
(** Registered peer ids, ascending — the anti-entropy comparison key. *)

val digest : t -> int64
(** Order-independent content digest over every registered [(peer, routers)]
    entry, XOR-folded across the per-landmark registries (they partition the
    peers).  Two replicas hold the same registrations iff their digests
    match (modulo 64-bit collisions) — the cheap anti-entropy comparison
    key; see {!Registry_intf.S.digest}. *)

(** {1 Report staleness}

    Each registration is stamped with the engine time the server learned of
    it, feeding the report-age distribution ({!Staleness}).  The stamps are
    a server-local observation (when {e this} replica learned the report),
    deliberately not part of {!snapshot}. *)

val set_clock : t -> (unit -> float) -> unit
(** Install the time source (engine milliseconds) used to stamp
    registrations.  Defaults to [fun () -> 0.0] — a standalone server
    without a simulation clock stamps everything at time zero. *)

val registration_time : t -> int -> float option
(** When this server last learned (or refreshed) the given peer's report,
    in clock units; [None] when unregistered. *)

val iter_registration_times : t -> (int -> float -> unit) -> unit
(** [f peer stamped_at] for every registered peer — the staleness feed. *)

val refresh_stamps : t -> unit
(** Re-stamp every registered peer at the current clock.  Used after a
    snapshot restore: the restoring replica learned all reports {e now},
    whatever their original registration times elsewhere. *)

val neighbors : t -> peer:int -> k:int -> (int * int) list
(** [(peer, inferred distance)] ascending, at most [k], never containing the
    peer itself.  Cross-tree top-up entries carry inferred distance
    [max_int].  @raise Not_found for an unregistered peer. *)

val reverse_introductions : t -> peer:int -> k:int -> (int * int) list
(** The push half of a join: registered peers for whom the newcomer now
    ranks among their [k] closest (so the server can notify them to
    consider the newcomer).  Computed over the newcomer's same-tree
    candidates; [(peer, inferred distance)] pairs, ascending.
    @raise Not_found for an unregistered peer. *)

val neighbors_of_path :
  t -> path:Traceroute.Path.t -> k:int -> ?exclude:(int -> bool) -> unit -> (int * int) list
(** Answer an explicit recorded path without registering it — the server-side
    primitive behind {!neighbors} and the protocol simulation. *)

val leave : t -> peer:int -> unit
(** Deregister (graceful or detected failure).  @raise Not_found when
    unregistered. *)

val handover : ?rng:Prelude.Prng.t -> t -> peer:int -> attach_router:Topology.Graph.node -> peer_info
(** Mobility: atomically deregister and re-join at a new attachment router
    (extension E3).  @raise Not_found when unregistered. *)

val trace : t -> Simkit.Trace.t
(** Protocol counters: ["join"], ["leave"], ["handover"], ["probe_packets"],
    ["query"], ["cross_tree_topup"], ["report_refresh"] (registrations
    stamped — joins, replica applies and handovers, the staleness
    refresh-rate feed), ["wire_bytes"] (bytes the join uploads
    and query exchanges would occupy on the wire, per {!Wire});
    statistics ["path_hops"] and the per-phase join costs in simulated
    milliseconds ["ping_round_ms"], ["traceroute_ms"], ["join_ms"]. *)

val flush_spans : t -> unit
(** Close any join span still open (peers that joined but never queried) at
    the current span clock.  Call before exporting the span buffer; a no-op
    without a span sink. *)

val check_invariants : t -> unit
(** Every per-landmark tree is internally consistent and every registered
    peer is in exactly the tree of its landmark. *)

(** {1 Persistence}

    A management server is a single point of failure; restarting it must
    not force every peer to re-traceroute.  The snapshot is the registered
    state (peers, landmarks, recorded paths) in the {!Prelude.Codec} binary
    format; restoring rebuilds the path trees. *)

val snapshot : t -> string
(** Serialize the registration state (not the counters, not the probe/
    truncation configuration — those belong to the process, not the
    data). *)

val restore :
  ?truncate:Traceroute.Truncate.strategy ->
  ?probe_config:Traceroute.Probe.config ->
  ?latency:Topology.Latency.t ->
  ?choice:landmark_choice ->
  ?backend:(module Registry_intf.S) ->
  ?spans:Simkit.Span.sink ->
  Traceroute.Route_oracle.t ->
  string ->
  (t, string) result
(** Rebuild a server from {!snapshot} output over the given oracle (the
    graph itself is not serialized — the map outlives server restarts).
    Total: corrupt input yields [Error]. *)
