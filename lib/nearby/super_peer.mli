(** Super-peer delegation (paper §3: "we are investigating the opportunity
    to use some super-peers" — extension E2).

    Instead of one central management server holding every path tree, each
    landmark's region is delegated to a {e super-peer}: a well-provisioned
    peer that stores only the path tree of its landmark and answers the
    queries of the newcomers whose closest landmark it serves.  A thin
    directory keeps the peer -> region map.  Discovery answers are
    identical to the centralized server's for same-region queries (it is
    the same data structure), so the experiment's interest is the {e load
    split} across super-peers and the lost cross-tree top-up. *)

module Registry : Registry_intf.S
(** A region's store: one {!Path_tree} plus the join/query load counters a
    delegated super-peer reports ([backend_name] is ["super"]; [stats]
    includes ["joins_handled"] and ["queries_handled"]).  Usable standalone
    as a registry backend through the shared seam. *)

type t

type region_load = {
  landmark : Topology.Graph.node;
  super_router : Topology.Graph.node;
  members : int;
  joins_handled : int;
  queries_handled : int;
}

val create :
  ?truncate:Traceroute.Truncate.strategy ->
  ?latency:Topology.Latency.t ->
  Traceroute.Route_oracle.t ->
  landmarks:Topology.Graph.node array ->
  super_routers:Topology.Graph.node array ->
  t
(** One super-peer per landmark, in array order.
    @raise Invalid_argument when the two arrays differ in length or are
    empty. *)

val join : ?rng:Prelude.Prng.t -> t -> peer:int -> attach_router:Topology.Graph.node -> Topology.Graph.node
(** Round 1 chooses the closest landmark; the join is then handled entirely
    by that region's super-peer.  Returns the landmark chosen.
    @raise Invalid_argument on a duplicate peer id. *)

val neighbors : t -> peer:int -> k:int -> (int * int) list
(** Answered by the peer's regional super-peer only (no cross-region
    top-up).  @raise Not_found for an unknown peer. *)

val leave : t -> peer:int -> unit
val peer_count : t -> int
val loads : t -> region_load list
(** Per-region member counts and handled-request counters, landmark order. *)

val load_imbalance : t -> float
(** Max region members / mean region members; 1.0 = perfectly balanced.
    0 when empty. *)
