type policy = Uniform_random | Medium_degree | High_degree | Spread | Optimized

let all_policies = [ Uniform_random; Medium_degree; High_degree; Spread; Optimized ]

let policy_name = function
  | Uniform_random -> "random"
  | Medium_degree -> "medium"
  | High_degree -> "high"
  | Spread -> "spread"
  | Optimized -> "optimized"

let policy_of_string = function
  | "random" -> Some Uniform_random
  | "medium" -> Some Medium_degree
  | "high" -> Some High_degree
  | "spread" -> Some Spread
  | "optimized" -> Some Optimized
  | _ -> None

let pick_distinct rng pool count =
  if count > Array.length pool then
    invalid_arg "Landmark.place: not enough candidate routers";
  let idx = Prelude.Prng.sample_without_replacement rng ~k:count ~n:(Array.length pool) in
  Array.map (fun i -> pool.(i)) idx

let degree_band g ~lo_pct ~hi_pct =
  (* Band bounds computed over routers that are not pure attachment leaves
     (degree >= 2); leaves are where peers live, not where one deploys
     infrastructure. *)
  let candidates = Topology.Graph.nodes_matching g (fun _ d -> d >= 2) in
  let degrees = Array.of_list (List.map (fun v -> float_of_int (Topology.Graph.degree g v)) candidates) in
  if Array.length degrees = 0 then [||]
  else begin
    let lo = Prelude.Stats.percentile degrees lo_pct and hi = Prelude.Stats.percentile degrees hi_pct in
    Array.of_list
      (List.filter
         (fun v ->
           let d = float_of_int (Topology.Graph.degree g v) in
           d >= lo && d <= hi)
         candidates)
  end

let place g policy ~count ~rng =
  if count < 1 then invalid_arg "Landmark.place: count must be >= 1";
  match policy with
  | Uniform_random ->
      pick_distinct rng (Array.init (Topology.Graph.node_count g) (fun v -> v)) count
  | Medium_degree ->
      let band = degree_band g ~lo_pct:50.0 ~hi_pct:85.0 in
      let band = if Array.length band >= count then band else degree_band g ~lo_pct:25.0 ~hi_pct:95.0 in
      pick_distinct rng band count
  | High_degree ->
      let scores = Array.init (Topology.Graph.node_count g) (fun v -> float_of_int (Topology.Graph.degree g v)) in
      Array.of_list (Topology.Centrality.top_by scores count)
  | Optimized -> Placement_opt.place g ~count ~rng
  | Spread ->
      let n = Topology.Graph.node_count g in
      if count > n then invalid_arg "Landmark.place: not enough routers";
      let scores = Array.init n (fun v -> float_of_int (Topology.Graph.degree g v)) in
      let first = match Topology.Centrality.top_by scores 1 with [ v ] -> v | _ -> 0 in
      let chosen = ref [ first ] in
      let min_dist = Array.map (fun d -> if d = max_int then max_int else d) (Topology.Bfs.distances g first) in
      for _ = 2 to count do
        (* Farthest-point heuristic; ties toward the lower id. *)
        let best = ref (-1) and best_d = ref (-1) in
        for v = 0 to n - 1 do
          if (not (List.mem v !chosen)) && min_dist.(v) <> max_int && min_dist.(v) > !best_d then begin
            best := v;
            best_d := min_dist.(v)
          end
        done;
        let next = if !best = -1 then Prelude.Prng.int rng n else !best in
        chosen := next :: !chosen;
        let dist_next = Topology.Bfs.distances g next in
        for v = 0 to n - 1 do
          if dist_next.(v) < min_dist.(v) then min_dist.(v) <- dist_next.(v)
        done
      done;
      Array.of_list (List.rev !chosen)

let closest oracle ?latency ?rng ~landmarks router =
  if Array.length landmarks = 0 then invalid_arg "Landmark.closest: no landmarks";
  let best = ref landmarks.(0) and best_rtt = ref infinity in
  Array.iter
    (fun lmk ->
      let rtt = Traceroute.Probe.ping ?latency ?rng oracle ~src:router ~dst:lmk in
      if rtt < !best_rtt || (rtt = !best_rtt && lmk < !best) then begin
        best := lmk;
        best_rtt := rtt
      end)
    landmarks;
  (!best, !best_rtt)
