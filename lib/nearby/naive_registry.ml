type t = {
  landmark : Topology.Graph.node;
  paths : (int, int array) Hashtbl.t;
}

let create ~landmark = { landmark; paths = Hashtbl.create 64 }
let member_count t = Hashtbl.length t.paths

let insert t ~peer ~routers =
  if Array.length routers = 0 then invalid_arg "Naive_registry.insert: empty path";
  if routers.(Array.length routers - 1) <> t.landmark then
    invalid_arg "Naive_registry.insert: path must end at the landmark";
  if Hashtbl.mem t.paths peer then invalid_arg "Naive_registry.insert: peer already registered";
  Hashtbl.add t.paths peer (Array.copy routers)

let remove t peer =
  if not (Hashtbl.mem t.paths peer) then raise Not_found;
  Hashtbl.remove t.paths peer

let dtree_paths a b =
  let la = Array.length a and lb = Array.length b in
  let max_j = min la lb in
  let rec suffix j = if j < max_j && a.(la - 1 - j) = b.(lb - 1 - j) then suffix (j + 1) else j in
  let j = suffix 0 in
  if j = 0 then None else Some (la - j + (lb - j))

let dtree t p1 p2 =
  match (Hashtbl.find_opt t.paths p1, Hashtbl.find_opt t.paths p2) with
  | Some a, Some b -> dtree_paths a b
  | None, _ | _, None -> None

let query t ~routers ~k ?(exclude = fun _ -> false) () =
  if k <= 0 then []
  else begin
    let candidates = ref [] in
    Hashtbl.iter
      (fun peer path ->
        if not (exclude peer) then
          match dtree_paths routers path with
          | Some d -> candidates := (d, peer) :: !candidates
          | None -> ())
      t.paths;
    List.sort compare !candidates
    |> List.filteri (fun i _ -> i < k)
    |> List.map (fun (d, p) -> (p, d))
  end

let query_member t ~peer ~k =
  match Hashtbl.find_opt t.paths peer with
  | None -> raise Not_found
  | Some routers -> query t ~routers ~k ~exclude:(fun p -> p = peer) ()
