type t = {
  landmark : Topology.Graph.node;
  paths : (int, int array) Hashtbl.t;
  mutable digest : int64;
}

let create ~landmark =
  { landmark; paths = Hashtbl.create 64; digest = Registry_intf.empty_digest }

let landmark t = t.landmark
let digest t = t.digest
let member_count t = Hashtbl.length t.paths
let mem t peer = Hashtbl.mem t.paths peer
let path_of t peer = Option.map Array.copy (Hashtbl.find_opt t.paths peer)
let iter_members t f = Hashtbl.iter (fun p _ -> f p) t.paths

let insert t ~peer ~routers =
  if Array.length routers = 0 then invalid_arg "Naive_registry.insert: empty path";
  if routers.(Array.length routers - 1) <> t.landmark then
    invalid_arg "Naive_registry.insert: path must end at the landmark";
  if Hashtbl.mem t.paths peer then invalid_arg "Naive_registry.insert: peer already registered";
  Hashtbl.add t.paths peer (Array.copy routers);
  t.digest <- Registry_intf.combine_digests t.digest (Registry_intf.entry_digest ~peer ~routers)

let remove t peer =
  match Hashtbl.find_opt t.paths peer with
  | None -> raise Not_found
  | Some routers ->
      Hashtbl.remove t.paths peer;
      t.digest <-
        Registry_intf.combine_digests t.digest (Registry_intf.entry_digest ~peer ~routers)

let dtree_paths a b =
  let la = Array.length a and lb = Array.length b in
  let max_j = min la lb in
  let rec suffix j = if j < max_j && a.(la - 1 - j) = b.(lb - 1 - j) then suffix (j + 1) else j in
  let j = suffix 0 in
  if j = 0 then None else Some (la - j + (lb - j))

let dtree t p1 p2 =
  match (Hashtbl.find_opt t.paths p1, Hashtbl.find_opt t.paths p2) with
  | Some a, Some b -> dtree_paths a b
  | None, _ | _, None -> None

let query t ~routers ~k ?(exclude = fun _ -> false) () =
  if k <= 0 then []
  else begin
    (* Still the exhaustive O(n) scan the ablation is about; only the
       selection of the k best is bounded. *)
    let best = Topk.create ~k compare in
    Hashtbl.iter
      (fun peer path ->
        if not (exclude peer) then
          match dtree_paths routers path with
          | Some d -> Topk.offer best (d, peer)
          | None -> ())
      t.paths;
    List.map (fun (d, p) -> (p, d)) (Topk.to_sorted_list best)
  end

let query_member t ~peer ~k =
  match Hashtbl.find_opt t.paths peer with
  | None -> raise Not_found
  | Some routers -> query t ~routers ~k ~exclude:(fun p -> p = peer) ()

(* --- Registry_intf.S ---------------------------------------------------- *)

(* The ablation baseline has no batch-shaped win to exploit: the derived
   loops are the reference semantics. *)
include Registry_intf.Derive_batch (struct
  type nonrec t = t

  let insert = insert
  let query = query
end)

let backend_name = "naive"
let stats t = [ ("members", member_count t) ]

(* The naive store keeps no per-router index, so occupancy is derived the
   naive way too: count how many stored paths cross each router.  One
   O(total path length) scan — introspection is an offline operation. *)
let introspect t =
  let per_router = Hashtbl.create 256 in
  let words = ref 0 in
  Hashtbl.iter
    (fun _ path ->
      words := !words + 4 + Array.length path;
      Array.iter
        (fun router ->
          Hashtbl.replace per_router router
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_router router)))
        path)
    t.paths;
  Registry_intf.introspection_of_buckets ~members:(member_count t) ~approx_bytes:(8 * !words)
    (fun f -> Hashtbl.iter f per_router)

let check_invariants t =
  Hashtbl.iter
    (fun peer path ->
      let len = Array.length path in
      if len = 0 then failwith (Printf.sprintf "peer %d has an empty path" peer);
      if path.(len - 1) <> t.landmark then
        failwith (Printf.sprintf "peer %d path does not end at the landmark" peer))
    t.paths;
  let recomputed =
    Hashtbl.fold
      (fun peer routers acc ->
        Registry_intf.combine_digests acc (Registry_intf.entry_digest ~peer ~routers))
      t.paths Registry_intf.empty_digest
  in
  if recomputed <> t.digest then
    failwith
      (Printf.sprintf "incremental digest %Ld disagrees with recomputed %Ld" t.digest recomputed)

let snapshot_version = 1

let snapshot t =
  let w = Prelude.Codec.Writer.create ~capacity:1024 () in
  let open Prelude.Codec.Writer in
  u8 w snapshot_version;
  varint w t.landmark;
  let entries = Hashtbl.fold (fun peer path acc -> (peer, path) :: acc) t.paths [] in
  list w
    (fun (peer, routers) ->
      varint w peer;
      list w (varint w) (Array.to_list routers))
    (List.sort compare entries);
  contents w

let restore data =
  let open Prelude.Codec.Reader in
  let ( let* ) = Result.bind in
  let r = of_string data in
  let result =
    let* version = u8 r in
    if version <> snapshot_version then
      Error (Malformed (Printf.sprintf "unsupported registry snapshot version %d" version))
    else
      let* landmark = varint r in
      let* entries =
        list r (fun r ->
            let* peer = varint r in
            let* routers = list r varint in
            Ok (peer, routers))
      in
      if not (is_exhausted r) then Error (Malformed "trailing bytes") else Ok (landmark, entries)
  in
  match result with
  | Error e -> Error (error_to_string e)
  | Ok (landmark, entries) -> (
      let t = create ~landmark in
      match
        List.iter (fun (peer, routers) -> insert t ~peer ~routers:(Array.of_list routers)) entries
      with
      | () -> Ok t
      | exception Invalid_argument msg -> Error msg)
