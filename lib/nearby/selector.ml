(* The bounded best-k accumulator every backend selects through; re-exported
   here so consumers outside the library (e.g. the DHT directory) reach it
   as [Nearby.Selector.Top_k]. *)
module Top_k = Topk

type context = {
  graph : Topology.Graph.t;
  oracle : Traceroute.Route_oracle.t;
  latency : Topology.Latency.t option;
  peer_routers : Topology.Graph.node array;
}

let make_context ?latency graph ~peer_routers =
  { graph; oracle = Traceroute.Route_oracle.create graph; latency; peer_routers }

type strategy =
  | Proposed of { landmarks : Topology.Graph.node array; truncate : Traceroute.Truncate.strategy }
  | Random_peers
  | Oracle_closest
  | Vivaldi_rounds of { rounds : int; params : Coord.Vivaldi.params }
  | Gnp_landmarks of { landmarks : Topology.Graph.node array; dims : int }
  | Meridian_rings of { params : Coord.Meridian.params }
  | Hybrid of { primary : strategy; random_links : int }

let rec strategy_name = function
  | Proposed _ -> "proposed"
  | Random_peers -> "random"
  | Oracle_closest -> "closest"
  | Vivaldi_rounds { rounds; _ } -> Printf.sprintf "vivaldi-%dr" rounds
  | Gnp_landmarks _ -> "gnp"
  | Meridian_rings _ -> "meridian"
  | Hybrid { primary; random_links } ->
      Printf.sprintf "%s+%drand" (strategy_name primary) random_links

(* Smallest-k selection by score with deterministic (score, id) tie-break. *)
let k_smallest_peers ~n ~k ~self score =
  let ids = Array.init n (fun i -> i) in
  let key i = (score i, i) in
  Array.sort (fun a b -> compare (key a) (key b)) ids;
  let out = ref [] and taken = ref 0 in
  Array.iter
    (fun i ->
      if i <> self && !taken < k then begin
        out := i :: !out;
        incr taken
      end)
    ids;
  Array.of_list (List.rev !out)

let select_oracle ctx ~k =
  let n = Array.length ctx.peer_routers in
  Array.init n (fun i ->
      let dist = Topology.Bfs.distances ctx.graph ctx.peer_routers.(i) in
      k_smallest_peers ~n ~k ~self:i (fun j -> dist.(ctx.peer_routers.(j))))

let oracle_distance_sets ctx ~k = select_oracle ctx ~k

let select_random ctx ~k ~rng =
  let n = Array.length ctx.peer_routers in
  Array.init n (fun i ->
      if n <= 1 then [||]
      else begin
        let k = min k (n - 1) in
        (* Sample from the population without peer i by index shifting. *)
        let picks = Prelude.Prng.sample_without_replacement rng ~k ~n:(n - 1) in
        Array.map (fun j -> if j >= i then j + 1 else j) picks
      end)

let select_proposed ctx ~landmarks ~truncate ~k ~rng =
  let n = Array.length ctx.peer_routers in
  let server = Server.create ~truncate ?latency:ctx.latency ctx.oracle ~landmarks in
  let join_rng = Prelude.Prng.split rng in
  for peer = 0 to n - 1 do
    ignore (Server.join ~rng:join_rng server ~peer ~attach_router:ctx.peer_routers.(peer))
  done;
  Array.init n (fun peer ->
      Server.neighbors server ~peer ~k |> List.map fst |> Array.of_list)

let rtt_between ctx i j =
  Traceroute.Probe.ping ?latency:ctx.latency ctx.oracle ~src:ctx.peer_routers.(i)
    ~dst:ctx.peer_routers.(j)

let select_vivaldi ctx ~rounds ~params ~k ~rng =
  let n = Array.length ctx.peer_routers in
  let viv = Coord.Vivaldi.create params ~node_count:n ~rng:(Prelude.Prng.split rng) in
  let measure i j = rtt_between ctx i j in
  for _ = 1 to rounds do
    Coord.Vivaldi.run_round viv ~measure ~rng
  done;
  Array.init n (fun i -> k_smallest_peers ~n ~k ~self:i (fun j -> Coord.Vivaldi.estimate viv i j))

let select_gnp ctx ~landmarks ~dims ~k ~rng =
  let n = Array.length ctx.peer_routers in
  let measure a b = Traceroute.Probe.ping ?latency:ctx.latency ctx.oracle ~src:a ~dst:b in
  let embedding = Coord.Gnp.embed_landmarks ~dims ~landmarks ~measure ~rng in
  let host_coord =
    Array.init n (fun i ->
        let rtts = Array.map (fun lmk -> measure ctx.peer_routers.(i) lmk) landmarks in
        Coord.Gnp.place_host embedding ~rtts)
  in
  (* Pure Euclidean ranking: a k-d tree answers each peer's k-NN without the
     O(n^2) scan. *)
  let tree = Coord.Kd_tree.build host_coord in
  Array.init n (fun i ->
      Coord.Kd_tree.k_nearest tree host_coord.(i) ~k ~exclude:(fun j -> j = i) ()
      |> List.map fst |> Array.of_list)

let select_meridian ctx ~params ~k ~rng =
  let n = Array.length ctx.peer_routers in
  let overlay =
    Coord.Meridian.build ?latency:ctx.latency params ctx.oracle ~peer_routers:ctx.peer_routers
      ~rng:(Prelude.Prng.split rng)
  in
  Array.init n (fun i ->
      if n <= 1 then [||]
      else begin
        let entry =
          let e = Prelude.Prng.int rng (n - 1) in
          if e >= i then e + 1 else e
        in
        Coord.Meridian.k_nearest ~exclude:(fun p -> p = i) overlay
          ~target_router:ctx.peer_routers.(i) ~entry ~k
        |> Array.of_list
      end)

let rec select ctx strategy ~k ~rng =
  if k < 0 then invalid_arg "Selector.select: negative k";
  match strategy with
  | Proposed { landmarks; truncate } -> select_proposed ctx ~landmarks ~truncate ~k ~rng
  | Random_peers -> select_random ctx ~k ~rng
  | Oracle_closest -> select_oracle ctx ~k
  | Vivaldi_rounds { rounds; params } -> select_vivaldi ctx ~rounds ~params ~k ~rng
  | Gnp_landmarks { landmarks; dims } -> select_gnp ctx ~landmarks ~dims ~k ~rng
  | Meridian_rings { params } -> select_meridian ctx ~params ~k ~rng
  | Hybrid { primary; random_links } ->
      if random_links < 0 || random_links > k then
        invalid_arg "Selector.select: random_links must be in [0, k]";
      let n = Array.length ctx.peer_routers in
      let base = select ctx primary ~k:(k - random_links) ~rng in
      Array.mapi
        (fun peer set ->
          let chosen = Hashtbl.create k in
          Array.iter (fun j -> Hashtbl.replace chosen j ()) set;
          let extra = ref [] and added = ref 0 and attempts = ref 0 in
          while !added < random_links && !attempts < 100 * (random_links + 1) && n > 1 do
            incr attempts;
            let j = Prelude.Prng.int rng n in
            if j <> peer && not (Hashtbl.mem chosen j) then begin
              Hashtbl.replace chosen j ();
              extra := j :: !extra;
              incr added
            end
          done;
          Array.append set (Array.of_list (List.rev !extra)))
        base
