(** Neighbor-selection strategies under evaluation.

    The paper's figure compares three selectors — the proposed server, the
    brute-force optimum and uniform-random choice; the motivation section
    adds the coordinate systems we include as further baselines.  A selector
    maps every peer to a set of candidate neighbors; {!Quality} then scores
    the sets against the optimum. *)

module Top_k = Topk
(** The bounded best-k accumulator shared by every registry backend,
    re-exported for consumers outside this library. *)

type context = {
  graph : Topology.Graph.t;
  oracle : Traceroute.Route_oracle.t;
  latency : Topology.Latency.t option;
  peer_routers : Topology.Graph.node array;  (** Peer id -> attachment router. *)
}

val make_context :
  ?latency:Topology.Latency.t -> Topology.Graph.t -> peer_routers:Topology.Graph.node array -> context
(** Builds the hop-count route oracle internally. *)

type strategy =
  | Proposed of { landmarks : Topology.Graph.node array; truncate : Traceroute.Truncate.strategy }
  | Random_peers
  | Oracle_closest  (** Brute force on true hop distances — [Dclosest]. *)
  | Vivaldi_rounds of { rounds : int; params : Coord.Vivaldi.params }
  | Gnp_landmarks of { landmarks : Topology.Graph.node array; dims : int }
  | Meridian_rings of { params : Coord.Meridian.params }
      (** Closest-node discovery over latency rings (Wong et al. 2005):
          each peer runs one ring-walk search from a random entry peer. *)
  | Hybrid of { primary : strategy; random_links : int }
      (** [k - random_links] neighbors from [primary] plus [random_links]
          uniform random ones — the standard locality/connectivity blend:
          pure proximity meshes can partition into regional islands, and a
          couple of random links restore expander-style connectivity. *)

val strategy_name : strategy -> string

val select : context -> strategy -> k:int -> rng:Prelude.Prng.t -> int array array
(** [select ctx strategy ~k ~rng] returns, for every peer id, its chosen
    neighbor ids (at most [k]; fewer only when the population is smaller
    than [k + 1]).  A peer never selects itself.  Deterministic given [rng]
    and the context. *)

val oracle_distance_sets : context -> k:int -> int array array
(** The per-peer optimal neighbor sets ([Oracle_closest] without the rng
    plumbing), exposed for reuse by metrics that need the optimum anyway. *)
