(** Replicated management-server tier.

    [N] replicas each own a full {!Server.t} (any {!Registry_intf.S}
    backend).  Writes fan out: the replica that processes a registration
    pushes it to every other replica over the transport.  Reads are served
    by one replica — clients pick the closest {e believed-live} replica,
    where "believed" is a {!Simkit.Failure_detector} fed by per-replica
    heartbeats, and fail over to the next-closest on retry.  Replicas that
    miss writes (crashed, partitioned, lossy links) are healed by periodic
    anti-entropy built on {!Server.snapshot}/{!Server.restore}.

    A {!single}-replica cluster degenerates to a plain server with no
    transport, detector or replication machinery, so the direct protocol
    path behaves exactly as it did before clusters existed. *)

type t

val single : router:Topology.Graph.node -> Server.t -> t
(** Wrap one server as a 1-replica cluster: no transport, no failure
    detector, no replication.  {!target} and {!start_sync} are unavailable
    ([Invalid_argument]); {!handle_join} is the whole protocol. *)

val create :
  ?detector_config:Simkit.Failure_detector.config ->
  ?recorder:Simkit.Flight_recorder.t ->
  ?spans:Simkit.Span.sink ->
  ?metrics:Simkit.Metrics.t ->
  transport:Simkit.Transport.t ->
  client_router:Topology.Graph.node ->
  make_server:(unit -> Server.t) ->
  restore_server:(string -> (Server.t, string) result) ->
  routers:Topology.Graph.node array ->
  unit ->
  t
(** One replica per entry of [routers] (each built by [make_server], which
    must produce servers over the same oracle and landmarks).  Starts a
    heartbeat watch on every replica, monitored from [client_router].
    [restore_server] rebuilds a replica from a snapshot during anti-entropy.
    [recorder] receives one ["cluster"]-kind flight-recorder event per
    membership change: crash, recover, suspicion, anti-entropy restore,
    back-in-sync (with the measured recovery time), and the
    divergence/convergence edges of {!digest_check}.  [metrics] receives
    the [wire_replication_amplification] and [cluster_divergent_replicas]
    gauges and the labeled [cluster_digest_checks_total] counters.  Every
    replica's server clock is set to the engine, so registration stamps
    (report staleness) are in engine milliseconds.
    @raise Invalid_argument on an empty or duplicate router array. *)

val replica_count : t -> int
val replica_router : t -> int -> Topology.Graph.node
val server_of : t -> int -> Server.t
val is_alive : t -> int -> bool
val live_count : t -> int

val measurement_server : t -> Server.t
(** Replica 0's server — the configuration authority clients measure
    against (landmark set, probe config).  All replicas share these, so any
    would do; fixing replica 0 keeps rng consumption deterministic. *)

val graph : t -> Topology.Graph.t
val trace : t -> Simkit.Trace.t
(** Counters: ["cluster_register"], ["cluster_duplicate_register"],
    ["cluster_replicate_send"/"_apply"/"_skip"], ["cluster_suspected"],
    ["cluster_crashes"], ["cluster_recoveries"], ["cluster_sync_rounds"],
    ["cluster_sync_union"], ["cluster_sync_restores"],
    ["cluster_sync_skipped"] (catch-up transfers the digest gate saved),
    ["cluster_sync_bytes"], ["cluster_client_report_bytes"],
    ["cluster_replica_bytes"], ["cluster_digest_checks"]; streams
    ["cluster_recovery_ms"] and ["cluster_antientropy_lag_ms"] (engine time
    from first detected divergence to detected reconvergence, one sample
    per episode). *)

(** {1 Divergence detection}

    Every registry maintains an order-independent content digest
    ({!Server.digest}), so "do the replicas hold the same state?" is one
    int64 compare per replica instead of a peer-set walk.  {!sync_round}
    runs a check at both ends of the round; experiments may call
    {!digest_check} on their own schedule (e.g. at failure-detector rate)
    for finer detection latency. *)

val digest_check : t -> int list
(** Compare every live replica's digest against the reference replica (the
    anti-entropy source rule: most registered peers, ties to the lowest
    id); returns the ids of divergent live replicas, [[]] when consistent
    (including 0/1 live).  Bumps ["cluster_digest_checks"]; with [metrics],
    updates the [cluster_divergent_replicas] gauge and the
    [cluster_digest_checks_total{result="consistent"|"divergent"}]
    counters.  Episode edges are recorded once: the first check seeing a
    mismatch emits a ["divergence"] flight-recorder event (with the
    offending replica ids) and starts the stopwatch; the first check
    seeing agreement again emits ["convergence"] and observes
    ["cluster_antientropy_lag_ms"].  Checks inside an episode record no
    events — no flapping. *)

val divergence_since : t -> float option
(** Engine time the current divergence episode was first detected, [None]
    while consistent. *)

val replication_amplification : t -> float
(** Bytes the cluster moves per byte a client uploads:
    [(client report bytes + replica fan-out bytes) / client report bytes].
    Exactly the replica count when write fan-out resends each report
    verbatim to the other replicas; anti-entropy snapshot traffic is
    excluded (repair cost, not write cost).  [nan] before the first
    report.  Mirrored as the [wire_replication_amplification] gauge when
    {!create} was given [~metrics]. *)

val fleet_trace : t -> Simkit.Trace.t
(** One merged fleet-wide trace: every replica's {!Server.trace} folded
    into a fresh trace via {!Simkit.Trace.merge_into} (counters add,
    latency quantiles come from the mergeable sketches — relative error
    at most {!Prelude.Sketch.default_alpha}), plus the cluster's own
    counters.  Dead replicas are included: their registered state
    survives a crash, and the fleet tail must not silently drop their
    samples. *)

val scrape : t -> into:Simkit.Metrics.t -> unit
(** Dimensional scrape: file each replica's {!Server.trace} into [into]
    under a [{replica="<i>"}] label, so per-replica series
    ([join_ms{replica="2"}], …) accumulate next to whatever else the
    registry holds.  Scraping twice double-counts — scrape into a fresh
    registry per export. *)

val replica_at : t -> router:Topology.Graph.node -> int option
(** The replica hosted at [router], if any. *)

val target : t -> src:Topology.Graph.node -> attempt:int -> int option
(** Failover routing for attempt [n] (1-based) of an RPC from [src]:
    believed-live replicas sorted by (one-way delay from [src], id), entry
    [(n-1) mod live].  [None] when every replica is suspected.
    @raise Invalid_argument on a {!single} cluster. *)

val handle_registration :
  ?parent:Simkit.Span.context ->
  t ->
  replica:int ->
  peer:int ->
  attach_router:Topology.Graph.node ->
  measurement:Server.measurement ->
  k:int ->
  (Server.peer_info * (int * int) list) option
(** Server side of a resilient join RPC: register the client-measured path
    on [replica], fan the write out to the other replicas, and answer the
    neighbor query.  Idempotent — a retried RPC whose first reply was lost
    re-answers without re-registering.  [None] when the replica is down
    (the RPC times out).

    [parent] (normally the RPC attempt's span context) parents both the
    server-side join subtree and one ["replicate"] span per fan-out
    target — open from send to transport delivery, tagged
    applied/skipped — so replication lag shows inside the join's causal
    tree.  The [spans] sink of {!create} should be the same one the
    servers and the RPC layer write to (one id space per trace file). *)

val handle_registration_batch :
  ?parent:Simkit.Span.context ->
  t ->
  replica:int ->
  entries:(int * Topology.Graph.node * Server.measurement) array ->
  k:int ->
  (Server.peer_info * (int * int) list) array option
(** {!handle_registration} for a whole batch of [(peer, attach_router,
    measurement)] entries: one {!Server.register_measured_batch} on
    [replica], one ["replicate_batch"] fan-out message per peer replica
    carrying the batch as a single {!Wire.Path_report_batch} (one transport
    send instead of one per entry), then every neighbor query answered.
    Already-registered entries count as duplicates and are re-answered
    idempotently; answers come back in entry order.  [None] when the
    replica is down. *)

val handle_join :
  ?rng:Prelude.Prng.t ->
  t ->
  replica:int ->
  peer:int ->
  attach_router:Topology.Graph.node ->
  k:int ->
  (Server.peer_info * (int * int) list) option
(** Direct path: run both protocol rounds on one replica —
    byte-for-byte the pre-cluster [Server.join] + [Server.neighbors]. *)

val crash : t -> int -> unit
(** Stop the replica: it answers no RPCs, applies no replication, sends no
    heartbeats.  Its registered state survives (stable storage). *)

val recover : t -> int -> unit
(** Restart a crashed replica with its on-disk state.  Re-arms its
    heartbeat watch from scratch — the fresh watch must not inherit the
    crashed incarnation's silence timer.  The replica counts as recovered
    (stream ["cluster_recovery_ms"]) when a sync round confirms its peer
    set matches the cluster's. *)

val sync_round : t -> unit
(** One anti-entropy round over the live replicas: union missing
    registrations into the most complete replica, then wholesale
    {!Server.snapshot}/[restore] any straggler whose {e content digest}
    differs from the source's — a straggler whose digest already matches
    skips the transfer (counter ["cluster_sync_skipped"]).  Runs a
    {!digest_check} at both ends of the round, so divergence is detected
    no later than the next sync tick and reconvergence is recorded the
    moment the repair lands.  A restored replica's registration stamps are
    refreshed to now (it learned every report just now).  Emits one
    ["sync_round"] span (a root of its own trace) when a sink is
    attached. *)

val start_sync : t -> period_ms:float -> until:float -> unit
(** Schedule {!sync_round} every [period_ms] up to engine time [until].
    @raise Invalid_argument on a {!single} cluster or non-positive
    period. *)

val consistent : t -> bool
(** Every live replica holds the same peer-id set. *)

val check_invariants : t -> unit
(** {!Server.check_invariants} on every replica, dead or alive. *)
