module type COST = sig
  type t

  val zero : t
  val add : t -> t -> t
  val compare : t -> t -> int
end

module Make (Cost : COST) = struct
  type peer = int

  (* --- Flat bucket storage ---------------------------------------------

     A router bucket holds its (cost-to-router, peer) entries in a short
     array of sorted chunks: parallel [costs]/[peers] arrays, ascending by
     (cost, peer).  Compared to the AVL set this replaces, entries cost two
     unboxed words instead of a five-word tree node, scans are cache-linear,
     and a sorted batch of additions merges in one pass per touched chunk.
     Insertion is a binary search to the right chunk plus a [blit]; chunks
     split at [chunk_cap] so a single insert never moves more than
     [chunk_cap] words. *)

  let chunk_cap = 512
  let seed_cap = 8
  let spare_limit = 64

  type chunk = {
    mutable costs : Cost.t array;
    mutable cpeers : int array;
    mutable clen : int;
  }

  type bucket = {
    mutable chunks : chunk array;
    mutable nchunks : int;
    mutable total : int;
  }

  (* A registered path, flattened to parallel arrays: half the words of a
     (router, cost) pair array, and unboxed for both int and float costs. *)
  type path = { routers : int array; pcosts : Cost.t array }

  type t = {
    landmark : Topology.Graph.node;
    paths : (peer, path) Hashtbl.t;
    buckets : (Topology.Graph.node, bucket) Hashtbl.t;
    (* Arena of retired full-size chunks, reused by splits and bulk merges
       so churn does not hammer the allocator. *)
    mutable spare : chunk list;
    mutable nspare : int;
    (* XOR of [Registry_intf.entry_digest] per member, kept in lockstep by
       [store_path]/[remove]. *)
    mutable digest : int64;
  }

  let create ~landmark =
    {
      landmark;
      paths = Hashtbl.create 64;
      buckets = Hashtbl.create 256;
      spare = [];
      nspare = 0;
      digest = Registry_intf.empty_digest;
    }

  let landmark t = t.landmark
  let member_count t = Hashtbl.length t.paths
  let mem t p = Hashtbl.mem t.paths p
  let router_count t = Hashtbl.length t.buckets
  let digest t = t.digest

  let entry_compare c1 p1 c2 p2 =
    match Cost.compare c1 c2 with 0 -> Int.compare p1 p2 | c -> c

  let fresh_chunk cap =
    { costs = Array.make cap Cost.zero; cpeers = Array.make cap 0; clen = 0 }

  let alloc_full t =
    match t.spare with
    | c :: rest ->
        t.spare <- rest;
        t.nspare <- t.nspare - 1;
        c.clen <- 0;
        c
    | [] -> fresh_chunk chunk_cap

  let retire_chunk t c =
    if Array.length c.costs = chunk_cap && t.nspare < spare_limit then begin
      c.clen <- 0;
      t.spare <- c :: t.spare;
      t.nspare <- t.nspare + 1
    end

  let ensure_room c =
    let cap = Array.length c.costs in
    if c.clen = cap then begin
      let ncap = min chunk_cap (2 * cap) in
      let costs = Array.make ncap Cost.zero and cpeers = Array.make ncap 0 in
      Array.blit c.costs 0 costs 0 c.clen;
      Array.blit c.cpeers 0 cpeers 0 c.clen;
      c.costs <- costs;
      c.cpeers <- cpeers
    end

  (* First index in [c] whose entry is >= (cost, p). *)
  let chunk_lower c cost p =
    let lo = ref 0 and hi = ref c.clen in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if entry_compare c.costs.(mid) c.cpeers.(mid) cost p < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Index of the chunk whose range should hold (cost, p): the first chunk
     whose last entry is >= the key, or the last chunk when the key is
     beyond every range.  Requires [b.nchunks >= 1]. *)
  let bucket_chunk_for b cost p =
    let lo = ref 0 and hi = ref (b.nchunks - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      let c = b.chunks.(mid) in
      if entry_compare c.costs.(c.clen - 1) c.cpeers.(c.clen - 1) cost p < 0 then lo := mid + 1
      else hi := mid
    done;
    !lo

  let bucket_insert_chunk b ci c =
    let n = b.nchunks in
    if n = Array.length b.chunks then begin
      let arr = Array.make (max 2 (2 * n)) c in
      Array.blit b.chunks 0 arr 0 n;
      b.chunks <- arr
    end;
    Array.blit b.chunks ci b.chunks (ci + 1) (n - ci);
    b.chunks.(ci) <- c;
    b.nchunks <- n + 1

  let split_chunk t b ci =
    let c = b.chunks.(ci) in
    let half = c.clen / 2 in
    let upper = alloc_full t in
    let ulen = c.clen - half in
    Array.blit c.costs half upper.costs 0 ulen;
    Array.blit c.cpeers half upper.cpeers 0 ulen;
    upper.clen <- ulen;
    c.clen <- half;
    bucket_insert_chunk b (ci + 1) upper

  let chunk_insert_at c pos cost p =
    ensure_room c;
    let n = c.clen in
    Array.blit c.costs pos c.costs (pos + 1) (n - pos);
    Array.blit c.cpeers pos c.cpeers (pos + 1) (n - pos);
    c.costs.(pos) <- cost;
    c.cpeers.(pos) <- p;
    c.clen <- n + 1

  let bucket_add t b cost p =
    (if b.nchunks = 0 then begin
       let c = fresh_chunk seed_cap in
       c.costs.(0) <- cost;
       c.cpeers.(0) <- p;
       c.clen <- 1;
       bucket_insert_chunk b 0 c
     end
     else begin
       let ci = ref (bucket_chunk_for b cost p) in
       let c0 = b.chunks.(!ci) in
       if c0.clen >= chunk_cap then begin
         split_chunk t b !ci;
         let lower = b.chunks.(!ci) in
         if entry_compare lower.costs.(lower.clen - 1) lower.cpeers.(lower.clen - 1) cost p < 0
         then incr ci
       end;
       let c = b.chunks.(!ci) in
       chunk_insert_at c (chunk_lower c cost p) cost p
     end);
    b.total <- b.total + 1

  (* Silent no-op when absent, matching the Set.remove this replaces; the
     structural invariants guarantee presence on every live code path. *)
  let bucket_remove t b cost p =
    if b.nchunks > 0 then begin
      let ci = bucket_chunk_for b cost p in
      let c = b.chunks.(ci) in
      let pos = chunk_lower c cost p in
      if pos < c.clen && entry_compare c.costs.(pos) c.cpeers.(pos) cost p = 0 then begin
        Array.blit c.costs (pos + 1) c.costs pos (c.clen - pos - 1);
        Array.blit c.cpeers (pos + 1) c.cpeers pos (c.clen - pos - 1);
        c.clen <- c.clen - 1;
        b.total <- b.total - 1;
        if c.clen = 0 then begin
          Array.blit b.chunks (ci + 1) b.chunks ci (b.nchunks - ci - 1);
          b.nchunks <- b.nchunks - 1;
          retire_chunk t c
        end
      end
    end

  let bucket_mem b cost p =
    b.nchunks > 0
    &&
    let ci = bucket_chunk_for b cost p in
    let c = b.chunks.(ci) in
    let pos = chunk_lower c cost p in
    pos < c.clen && entry_compare c.costs.(pos) c.cpeers.(pos) cost p = 0

  (* Merge a sorted run of additions ([acosts]/[apeers], ascending, length
     [m]) into the bucket in one pass: untouched chunks are kept as-is,
     touched chunks are rebuilt by a two-pointer merge.  This is what makes
     [insert_many] amortize — co-attached peers share every router of their
     path, so a batch lands as one merge per bucket instead of m sorted
     insertions. *)
  let bucket_add_sorted t b acosts apeers m =
    if m = 1 then bucket_add t b acosts.(0) apeers.(0)
    else if m > 1 then begin
      if b.nchunks = 0 then begin
        let pos = ref 0 in
        while !pos < m do
          let take = min chunk_cap (m - !pos) in
          let c = if take = chunk_cap then alloc_full t else fresh_chunk (max seed_cap take) in
          Array.blit acosts !pos c.costs 0 take;
          Array.blit apeers !pos c.cpeers 0 take;
          c.clen <- take;
          bucket_insert_chunk b b.nchunks c;
          pos := !pos + take
        done
      end
      else begin
        let out = ref [] in
        let push c = out := c :: !out in
        let ai = ref 0 in
        for ci = 0 to b.nchunks - 1 do
          let c = b.chunks.(ci) in
          (* Additions destined for this chunk: everything below the next
             chunk's first entry (the last chunk absorbs the rest). *)
          let hi =
            if ci = b.nchunks - 1 then m
            else begin
              let nxt = b.chunks.(ci + 1) in
              let lo = ref !ai and hi = ref m in
              while !lo < !hi do
                let mid = (!lo + !hi) / 2 in
                if entry_compare acosts.(mid) apeers.(mid) nxt.costs.(0) nxt.cpeers.(0) < 0 then
                  lo := mid + 1
                else hi := mid
              done;
              !lo
            end
          in
          if hi = !ai then push c
          else begin
            let total = c.clen + (hi - !ai) in
            let i = ref 0 and j = ref !ai in
            let cur =
              ref (if total >= chunk_cap then alloc_full t else fresh_chunk (max seed_cap total))
            in
            while !i < c.clen || !j < hi do
              (if !cur.clen = chunk_cap then begin
                 push !cur;
                 cur := alloc_full t
               end);
              let d = !cur in
              if
                !j >= hi
                || !i < c.clen
                   && entry_compare c.costs.(!i) c.cpeers.(!i) acosts.(!j) apeers.(!j) <= 0
              then begin
                d.costs.(d.clen) <- c.costs.(!i);
                d.cpeers.(d.clen) <- c.cpeers.(!i);
                d.clen <- d.clen + 1;
                incr i
              end
              else begin
                d.costs.(d.clen) <- acosts.(!j);
                d.cpeers.(d.clen) <- apeers.(!j);
                d.clen <- d.clen + 1;
                incr j
              end
            done;
            push !cur;
            ai := hi;
            retire_chunk t c
          end
        done;
        let chunks = Array.of_list (List.rev !out) in
        b.chunks <- chunks;
        b.nchunks <- Array.length chunks
      end;
      b.total <- b.total + m
    end

  let bucket_of t router =
    match Hashtbl.find_opt t.buckets router with
    | Some b -> b
    | None ->
        let b = { chunks = [||]; nchunks = 0; total = 0 } in
        Hashtbl.add t.buckets router b;
        b

  (* --- Registration ----------------------------------------------------- *)

  let validate t ~peer ~hops =
    let len = Array.length hops in
    if len = 0 then invalid_arg "Path_tree.insert: empty path";
    if fst hops.(len - 1) <> t.landmark then
      invalid_arg "Path_tree.insert: path must end at the landmark";
    for i = 1 to len - 1 do
      if Cost.compare (snd hops.(i - 1)) (snd hops.(i)) > 0 then
        invalid_arg "Path_tree.insert: costs must be non-decreasing"
    done;
    if Hashtbl.mem t.paths peer then invalid_arg "Path_tree.insert: peer already registered"

  let store_path t peer hops =
    let len = Array.length hops in
    let routers = Array.make len 0 and pcosts = Array.make len Cost.zero in
    for i = 0 to len - 1 do
      let router, cost = hops.(i) in
      routers.(i) <- router;
      pcosts.(i) <- cost
    done;
    Hashtbl.add t.paths peer { routers; pcosts };
    t.digest <-
      Registry_intf.combine_digests t.digest (Registry_intf.entry_digest ~peer ~routers)

  let insert t ~peer ~hops =
    validate t ~peer ~hops;
    store_path t peer hops;
    Array.iter (fun (router, cost) -> bucket_add t (bucket_of t router) cost peer) hops

  let insert_many t entries =
    let n = Array.length entries in
    if n = 1 then begin
      let peer, hops = entries.(0) in
      insert t ~peer ~hops
    end
    else if n > 1 then begin
      (* Validate the whole batch up front (including intra-batch duplicate
         peers) so a bad entry leaves the tree untouched. *)
      let batch = Hashtbl.create (2 * n) in
      Array.iter
        (fun (peer, hops) ->
          validate t ~peer ~hops;
          if Hashtbl.mem batch peer then invalid_arg "Path_tree.insert: peer already registered";
          Hashtbl.add batch peer ())
        entries;
      let per_router : (int, (Cost.t * peer) list ref) Hashtbl.t = Hashtbl.create 256 in
      Array.iter
        (fun (peer, hops) ->
          store_path t peer hops;
          Array.iter
            (fun (router, cost) ->
              let r =
                match Hashtbl.find_opt per_router router with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add per_router router r;
                    r
              in
              r := (cost, peer) :: !r)
            hops)
        entries;
      Hashtbl.iter
        (fun router adds ->
          let adds = Array.of_list !adds in
          Array.sort (fun (c1, p1) (c2, p2) -> entry_compare c1 p1 c2 p2) adds;
          let m = Array.length adds in
          let acosts = Array.make m Cost.zero and apeers = Array.make m 0 in
          Array.iteri
            (fun i (c, p) ->
              acosts.(i) <- c;
              apeers.(i) <- p)
            adds;
          bucket_add_sorted t (bucket_of t router) acosts apeers m)
        per_router
    end

  let remove t peer =
    match Hashtbl.find_opt t.paths peer with
    | None -> raise Not_found
    | Some path ->
        Hashtbl.remove t.paths peer;
        t.digest <-
          Registry_intf.combine_digests t.digest
            (Registry_intf.entry_digest ~peer ~routers:path.routers);
        for i = 0 to Array.length path.routers - 1 do
          match Hashtbl.find_opt t.buckets path.routers.(i) with
          | None -> ()
          | Some b ->
              bucket_remove t b path.pcosts.(i) peer;
              if b.total = 0 then Hashtbl.remove t.buckets path.routers.(i)
        done

  let hops_of t peer =
    Option.map
      (fun p -> Array.init (Array.length p.routers) (fun i -> (p.routers.(i), p.pcosts.(i))))
      (Hashtbl.find_opt t.paths peer)

  let meeting_point t p1 p2 =
    match (Hashtbl.find_opt t.paths p1, Hashtbl.find_opt t.paths p2) with
    | Some path1, Some path2 ->
        let len1 = Array.length path1.routers and len2 = Array.length path2.routers in
        (* Longest common router suffix: both paths end at the landmark. *)
        let max_j = min len1 len2 in
        let rec suffix j =
          if j < max_j && path1.routers.(len1 - 1 - j) = path2.routers.(len2 - 1 - j) then
            suffix (j + 1)
          else j
        in
        let j = suffix 0 in
        if j = 0 then None
        else Some (path1.routers.(len1 - j), path1.pcosts.(len1 - j), path2.pcosts.(len2 - j))
    | None, _ | _, None -> None

  let dtree t p1 p2 =
    match meeting_point t p1 p2 with Some (_, c1, c2) -> Some (Cost.add c1 c2) | None -> None

  (* --- Queries ----------------------------------------------------------- *)

  (* The k best (cost, peer) candidates accumulate in the shared bounded
     selector: O(log k) per offer, equal-cost ties to the lower peer id. *)
  let candidate_compare (c1, p1) (c2, p2) =
    match Cost.compare c1 c2 with 0 -> Int.compare p1 p2 | c -> c

  let beats_worst best cost =
    match Topk.worst best with None -> true | Some (w, _) -> Cost.compare cost w <= 0

  (* Offer every candidate along [hops] into the caller's accumulator.
     [best] and [seen] may be shared across calls (the sharded scatter seeds
     the bound from the home shard; [query_many] reuses one pair across the
     whole batch).

     Cutoffs: the walk stops once the walk cost alone can no longer tie the
     k-th best, and a bucket scan stops at the first entry losing the full
     lexicographic (cost, peer) comparison.  Buckets iterate ascending by
     (dist, peer), and a peer listed later in the walk appears at a
     candidate distance no smaller than its earlier one (path costs are
     non-decreasing and tree routes traverse shared routers in a consistent
     order), so nothing cut here could have been accepted later: by the time
     the same peer resurfaces the selector's worst is only tighter.  This
     turns the former O(#co-attached) tie scans into O(k) per bucket. *)
  let query_into t ~hops ~best ~seen ~exclude =
    let len = Array.length hops in
    let i = ref 0 in
    let walking = ref true in
    while !walking && !i < len do
      let router, walk_cost = hops.(!i) in
      if not (beats_worst best walk_cost) then walking := false
      else begin
        (match Hashtbl.find_opt t.buckets router with
        | None -> ()
        | Some b -> (
            try
              for ci = 0 to b.nchunks - 1 do
                let c = b.chunks.(ci) in
                for e = 0 to c.clen - 1 do
                  let p = c.cpeers.(e) in
                  let candidate = Cost.add walk_cost c.costs.(e) in
                  if not (Topk.accepts best (candidate, p)) then raise_notrace Exit;
                  if not (Hashtbl.mem seen p) then begin
                    Hashtbl.add seen p ();
                    if not (exclude p) then Topk.offer best (candidate, p)
                  end
                done
              done
            with Exit -> ()));
        incr i
      end
    done

  let drain best = List.map (fun (cost, p) -> (p, cost)) (Topk.to_sorted_list best)

  let query t ~hops ~k ?(exclude = fun _ -> false) () =
    if k <= 0 then []
    else begin
      let seen = Hashtbl.create 64 in
      let best = Topk.create ~k candidate_compare in
      query_into t ~hops ~best ~seen ~exclude;
      drain best
    end

  let query_many t ~queries ~k ?(exclude = fun _ _ -> false) () =
    let n = Array.length queries in
    if k <= 0 then Array.make n []
    else begin
      (* One selector and one dedup table for the whole batch: [clear]
         keeps their capacity, so per-query allocation drops to the result
         list itself. *)
      let seen = Hashtbl.create 64 in
      let best = Topk.create ~k candidate_compare in
      Array.mapi
        (fun qi hops ->
          Hashtbl.clear seen;
          Topk.clear best;
          query_into t ~hops ~best ~seen ~exclude:(fun p -> exclude qi p);
          drain best)
        queries
    end

  let query_member t ~peer ~k =
    match hops_of t peer with
    | None -> raise Not_found
    | Some hops -> query t ~hops ~k ~exclude:(fun p -> p = peer) ()

  let iter_members t f = Hashtbl.iter (fun p _ -> f p) t.paths
  let iter_buckets t f = Hashtbl.iter (fun router b -> f router b.total) t.buckets

  (* Rough payload estimate in machine words times 8.  Paths: hash binding
     (3) + record (3) + two unboxed arrays (1 + len each).  Buckets: hash
     binding (3) + record (4) + chunk pointer array + per chunk a record (4)
     and two arrays at their allocated capacity.  Good for cross-backend
     comparison, not accounting. *)
  let approx_bytes t =
    let words = ref 0 in
    Hashtbl.iter
      (fun _ p -> words := !words + 8 + (2 * Array.length p.routers))
      t.paths;
    Hashtbl.iter
      (fun _ b ->
        words := !words + 8 + Array.length b.chunks;
        for ci = 0 to b.nchunks - 1 do
          words := !words + 6 + (2 * Array.length b.chunks.(ci).costs)
        done)
      t.buckets;
    8 * !words

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    Hashtbl.iter
      (fun peer p ->
        let len = Array.length p.routers in
        if len = 0 then fail "peer %d has an empty path" peer;
        if Array.length p.pcosts <> len then fail "peer %d has ragged path arrays" peer;
        if p.routers.(len - 1) <> t.landmark then
          fail "peer %d path does not end at the landmark" peer;
        for i = 0 to len - 1 do
          match Hashtbl.find_opt t.buckets p.routers.(i) with
          | None -> fail "peer %d: router %d has no bucket" peer p.routers.(i)
          | Some b ->
              if not (bucket_mem b p.pcosts.(i) peer) then
                fail "peer %d missing from bucket of router %d" peer p.routers.(i)
        done)
      t.paths;
    (* Conversely, every bucket entry must be justified by a registered
       path, and the chunk structure itself must be sound. *)
    Hashtbl.iter
      (fun router b ->
        if b.total = 0 then fail "router %d has an empty bucket" router;
        if b.nchunks > Array.length b.chunks then fail "router %d: nchunks out of range" router;
        let counted = ref 0 in
        for ci = 0 to b.nchunks - 1 do
          let c = b.chunks.(ci) in
          if c.clen = 0 then fail "router %d: empty chunk %d" router ci;
          if c.clen > Array.length c.costs then fail "router %d: chunk %d overflows" router ci;
          counted := !counted + c.clen;
          for e = 0 to c.clen - 1 do
            if e > 0 && entry_compare c.costs.(e - 1) c.cpeers.(e - 1) c.costs.(e) c.cpeers.(e) > 0
            then fail "router %d: chunk %d not sorted" router ci;
            if
              ci > 0 && e = 0
              &&
              let prev = b.chunks.(ci - 1) in
              entry_compare prev.costs.(prev.clen - 1) prev.cpeers.(prev.clen - 1) c.costs.(0)
                c.cpeers.(0)
              > 0
            then fail "router %d: chunks %d and %d out of order" router (ci - 1) ci;
            let peer = c.cpeers.(e) and cost = c.costs.(e) in
            match Hashtbl.find_opt t.paths peer with
            | None -> fail "bucket of router %d references unknown peer %d" router peer
            | Some p ->
                let justified = ref false in
                for i = 0 to Array.length p.routers - 1 do
                  if p.routers.(i) = router && Cost.compare p.pcosts.(i) cost = 0 then
                    justified := true
                done;
                if not !justified then
                  fail "bucket of router %d has stale entry for peer %d" router peer
          done
        done;
        if !counted <> b.total then
          fail "router %d: bucket total %d but %d entries" router b.total !counted)
      t.buckets;
    let recomputed =
      Hashtbl.fold
        (fun peer p acc ->
          Registry_intf.combine_digests acc
            (Registry_intf.entry_digest ~peer ~routers:p.routers))
        t.paths Registry_intf.empty_digest
    in
    if recomputed <> t.digest then
      fail "incremental digest %Ld disagrees with recomputed %Ld" t.digest recomputed
end
