module type COST = sig
  type t

  val zero : t
  val add : t -> t -> t
  val compare : t -> t -> int
end

module Make (Cost : COST) = struct
  type peer = int

  (* Bucket entries are ordered by (cost to this router, peer id): the AVL
     set gives the O(log n) ordered insertion of the paper's complexity
     claim and ascending iteration for early-cutoff scans. *)
  module Bucket = Set.Make (struct
    type t = Cost.t * int

    let compare (c1, p1) (c2, p2) =
      match Cost.compare c1 c2 with 0 -> compare p1 p2 | c -> c
  end)

  type t = {
    landmark : Topology.Graph.node;
    paths : (peer, (Topology.Graph.node * Cost.t) array) Hashtbl.t;
    buckets : (Topology.Graph.node, Bucket.t ref) Hashtbl.t;
  }

  let create ~landmark = { landmark; paths = Hashtbl.create 64; buckets = Hashtbl.create 256 }
  let landmark t = t.landmark
  let member_count t = Hashtbl.length t.paths
  let mem t p = Hashtbl.mem t.paths p
  let router_count t = Hashtbl.length t.buckets

  let bucket_ref t router =
    match Hashtbl.find_opt t.buckets router with
    | Some b -> b
    | None ->
        let b = ref Bucket.empty in
        Hashtbl.add t.buckets router b;
        b

  let insert t ~peer ~hops =
    let len = Array.length hops in
    if len = 0 then invalid_arg "Path_tree.insert: empty path";
    if fst hops.(len - 1) <> t.landmark then
      invalid_arg "Path_tree.insert: path must end at the landmark";
    for i = 1 to len - 1 do
      if Cost.compare (snd hops.(i - 1)) (snd hops.(i)) > 0 then
        invalid_arg "Path_tree.insert: costs must be non-decreasing"
    done;
    if Hashtbl.mem t.paths peer then invalid_arg "Path_tree.insert: peer already registered";
    Hashtbl.add t.paths peer (Array.copy hops);
    Array.iter
      (fun (router, cost) ->
        let b = bucket_ref t router in
        b := Bucket.add (cost, peer) !b)
      hops

  let remove t peer =
    match Hashtbl.find_opt t.paths peer with
    | None -> raise Not_found
    | Some hops ->
        Hashtbl.remove t.paths peer;
        Array.iter
          (fun (router, cost) ->
            match Hashtbl.find_opt t.buckets router with
            | None -> ()
            | Some b ->
                b := Bucket.remove (cost, peer) !b;
                if Bucket.is_empty !b then Hashtbl.remove t.buckets router)
          hops

  let hops_of t peer = Option.map Array.copy (Hashtbl.find_opt t.paths peer)

  let meeting_point t p1 p2 =
    match (Hashtbl.find_opt t.paths p1, Hashtbl.find_opt t.paths p2) with
    | Some path1, Some path2 ->
        let len1 = Array.length path1 and len2 = Array.length path2 in
        (* Longest common router suffix: both paths end at the landmark. *)
        let max_j = min len1 len2 in
        let rec suffix j =
          if j < max_j && fst path1.(len1 - 1 - j) = fst path2.(len2 - 1 - j) then suffix (j + 1)
          else j
        in
        let j = suffix 0 in
        if j = 0 then None
        else begin
          let router, c1 = path1.(len1 - j) in
          let _, c2 = path2.(len2 - j) in
          Some (router, c1, c2)
        end
    | None, _ | _, None -> None

  let dtree t p1 p2 =
    match meeting_point t p1 p2 with Some (_, c1, c2) -> Some (Cost.add c1 c2) | None -> None

  (* The k best (cost, peer) candidates accumulate in the shared bounded
     selector: O(log k) per offer, equal-cost ties to the lower peer id. *)
  let candidate_compare (c1, p1) (c2, p2) =
    match Cost.compare c1 c2 with 0 -> compare p1 p2 | c -> c

  let beats_worst best cost =
    match Topk.worst best with None -> true | Some (w, _) -> Cost.compare cost w <= 0

  let query t ~hops ~k ?(exclude = fun _ -> false) () =
    if k <= 0 then []
    else begin
      let seen = Hashtbl.create 64 in
      let best = Topk.create ~k candidate_compare in
      let len = Array.length hops in
      let i = ref 0 in
      (* Walking outward from the attachment router, the walk cost alone
         lower-bounds any further candidate, so stop once even a
         zero-distance co-bucket peer could not improve or tie the k-th best
         (ties matter: equal cost with a lower peer id wins). *)
      while !i < len && beats_worst best (snd hops.(!i)) do
        let router, walk_cost = hops.(!i) in
        (match Hashtbl.find_opt t.buckets router with
        | None -> ()
        | Some bucket ->
            (try
               Bucket.iter
                 (fun (dist, p) ->
                   let candidate = Cost.add walk_cost dist in
                   if not (beats_worst best candidate) then raise Exit;
                   if not (Hashtbl.mem seen p) then begin
                     Hashtbl.add seen p ();
                     if not (exclude p) then Topk.offer best (candidate, p)
                   end)
                 !bucket
             with Exit -> ()));
        incr i
      done;
      List.map (fun (cost, p) -> (p, cost)) (Topk.to_sorted_list best)
    end

  let query_member t ~peer ~k =
    match Hashtbl.find_opt t.paths peer with
    | None -> raise Not_found
    | Some hops -> query t ~hops ~k ~exclude:(fun p -> p = peer) ()

  let iter_members t f = Hashtbl.iter (fun p _ -> f p) t.paths
  let iter_buckets t f = Hashtbl.iter (fun router b -> f router (Bucket.cardinal !b)) t.buckets

  (* Rough payload estimate in machine words times 8: each path entry is a
     (router, cost) pair in an array, each bucket entry an AVL node of a
     (cost, peer) pair.  Good for cross-backend comparison, not
     accounting. *)
  let approx_bytes t =
    let words = ref 0 in
    Hashtbl.iter (fun _ hops -> words := !words + 4 + (3 * Array.length hops)) t.paths;
    Hashtbl.iter (fun _ b -> words := !words + 2 + (5 * Bucket.cardinal !b)) t.buckets;
    8 * !words

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    Hashtbl.iter
      (fun peer hops ->
        let len = Array.length hops in
        if len = 0 then fail "peer %d has an empty path" peer;
        if fst hops.(len - 1) <> t.landmark then fail "peer %d path does not end at the landmark" peer;
        Array.iter
          (fun (router, cost) ->
            match Hashtbl.find_opt t.buckets router with
            | None -> fail "peer %d: router %d has no bucket" peer router
            | Some b ->
                if not (Bucket.mem (cost, peer) !b) then
                  fail "peer %d missing from bucket of router %d" peer router)
          hops)
      t.paths;
    (* Conversely, every bucket entry must be justified by a registered
       path. *)
    Hashtbl.iter
      (fun router b ->
        if Bucket.is_empty !b then fail "router %d has an empty bucket" router;
        Bucket.iter
          (fun (cost, peer) ->
            match Hashtbl.find_opt t.paths peer with
            | None -> fail "bucket of router %d references unknown peer %d" router peer
            | Some hops ->
                if
                  not
                    (Array.exists
                       (fun (r, c) -> r = router && Cost.compare c cost = 0)
                       hops)
                then fail "bucket of router %d has stale entry for peer %d" router peer)
          !b)
      t.buckets
end
