(** Report-age observability.

    A registered path is a claim about the network at the moment it was
    measured; its value decays while it sits unrefreshed.  This module
    turns {!Server.iter_registration_times} into the staleness signals an
    operator watches: the report-age distribution, the oldest entry still
    being served, and the per-window refresh rate derived from the
    ["report_refresh"] counter. *)

type t
(** A staleness tracker bound to one server.  Holds the lifetime age
    sketch and the previous observation's refresh counter (the rate
    baseline); individual peer stamps are re-read on every {!observe}. *)

val create : Server.t -> t
(** Bind a tracker; the refresh-rate baseline starts at the server's
    current ["report_refresh"] count, so the first {!observe} reports a
    [nan] rate (no window yet). *)

val server : t -> Server.t

type report = {
  members : int;  (** Registered peers sampled. *)
  oldest_ms : float;  (** Age of the stalest report; [0.0] when empty. *)
  mean_ms : float;  (** Mean report age; [nan] when empty. *)
  p50_ms : float;  (** Report-age quantiles over the current membership; *)
  p90_ms : float;  (** sketch-backed (relative error at most *)
  p99_ms : float;  (** {!Prelude.Sketch.default_alpha}); [nan] when empty. *)
  refresh_count : int;  (** ["report_refresh"] counter at observation. *)
  refresh_rate_hz : float;
      (** Refreshes per second since the previous {!observe}; [nan] on the
          first observation or a non-advancing clock. *)
}

val observe : ?metrics:Simkit.Metrics.t -> ?labels:Simkit.Metrics.labels -> t -> now:float -> report
(** Sample every registered peer's report age at engine time [now]
    (clamped at zero against caller clock skew).  With [metrics], also
    exports gauges [staleness_members], [staleness_oldest_ms] and
    [staleness_refresh_rate_hz] (skipped while [nan]) and feeds each age
    into the [report_age_ms] stream under [labels] — the mergeable series
    a fleet roll-up reads quantiles from. *)

val age_sketch : t -> Prelude.Sketch.t
(** The lifetime age sketch: every sample from every {!observe} since
    {!create}, mergeable across replicas with
    {!Prelude.Sketch.merge_into}. *)
