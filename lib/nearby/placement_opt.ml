type config = { candidate_sample : int; client_sample : int; max_swaps : int }

let default_config = { candidate_sample = 64; client_sample = 256; max_swaps = 128 }

let objective g ~landmarks ~clients =
  if Array.length clients = 0 || Array.length landmarks = 0 then 0.0
  else begin
    (* One BFS per landmark; landmark sets are small. *)
    let best = Array.make (Array.length clients) max_int in
    Array.iter
      (fun lmk ->
        let dist = Topology.Bfs.distances g lmk in
        Array.iteri (fun i c -> if dist.(c) < best.(i) then best.(i) <- dist.(c)) clients)
      landmarks;
    let acc = ref 0.0 in
    Array.iter (fun d -> acc := !acc +. float_of_int (if d = max_int then 1_000 else d)) best;
    !acc /. float_of_int (Array.length clients)
  end

let sample_array rng pool k =
  let k = min k (Array.length pool) in
  Array.map (fun i -> pool.(i)) (Prelude.Prng.sample_without_replacement rng ~k ~n:(Array.length pool))

let place ?(config = default_config) g ~count ~rng =
  if count < 1 then invalid_arg "Placement_opt.place: count must be >= 1";
  (* Candidates: medium-degree band (never leaves); fall back to every
     non-leaf router when the band is small. *)
  let band = Topology.Graph.nodes_matching g (fun _ d -> d >= 2) |> Array.of_list in
  if Array.length band < count then invalid_arg "Placement_opt.place: not enough candidate routers";
  let candidates = sample_array rng band (max config.candidate_sample count) in
  let leaves = Topology.Graph.nodes_with_degree g 1 |> Array.of_list in
  let client_pool = if Array.length leaves > 0 then leaves else band in
  let clients = sample_array rng client_pool config.client_sample in
  (* Distance matrix: candidate -> client distances, one BFS each. *)
  let n_cand = Array.length candidates in
  let dist = Array.make n_cand [||] in
  Array.iteri
    (fun ci cand ->
      let d = Topology.Bfs.distances g cand in
      dist.(ci) <- Array.map (fun c -> if d.(c) = max_int then 1_000 else d.(c)) clients)
    candidates;
  let n_clients = Array.length clients in
  let cost_with chosen =
    (* chosen: candidate indices *)
    let acc = ref 0 in
    for i = 0 to n_clients - 1 do
      let best = ref max_int in
      List.iter (fun ci -> if dist.(ci).(i) < !best then best := dist.(ci).(i)) chosen;
      acc := !acc + !best
    done;
    !acc
  in
  (* Greedy initialization: repeatedly add the candidate with the largest
     marginal gain. *)
  let chosen = ref [] in
  for _ = 1 to count do
    let best_ci = ref (-1) and best_cost = ref max_int in
    for ci = 0 to n_cand - 1 do
      if not (List.mem ci !chosen) then begin
        let cost = cost_with (ci :: !chosen) in
        if cost < !best_cost then begin
          best_cost := cost;
          best_ci := ci
        end
      end
    done;
    chosen := !best_ci :: !chosen
  done;
  (* Single-swap local search. *)
  let current = ref !chosen in
  let current_cost = ref (cost_with !current) in
  let improved = ref true in
  let swaps = ref 0 in
  while !improved && !swaps < config.max_swaps do
    improved := false;
    (* Try swapping each chosen member for each outside candidate; first
       improvement wins (standard first-improvement local search). *)
    (try
       List.iter
         (fun out_ci ->
           for in_ci = 0 to n_cand - 1 do
             if not (List.mem in_ci !current) then begin
               let trial = in_ci :: List.filter (fun c -> c <> out_ci) !current in
               let cost = cost_with trial in
               if cost < !current_cost then begin
                 current := trial;
                 current_cost := cost;
                 incr swaps;
                 improved := true;
                 raise Exit
               end
             end
           done)
         !current
     with Exit -> ())
  done;
  Array.of_list (List.rev_map (fun ci -> candidates.(ci)) !current)
