(** Strawman management server without the paper's data structure
    (DESIGN.md ablation 3).

    Stores each peer's recorded path as-is and answers a query by computing
    the meeting-point distance against {e every} registered peer — O(1)
    insertion but O(n · path length) per query.  Answers are identical to
    {!Path_tree} (same metric, same tie-break); only the asymptotics differ,
    which is exactly what the complexity benchmark demonstrates. *)

type t

val create : landmark:Topology.Graph.node -> t
val landmark : t -> Topology.Graph.node
val member_count : t -> int
val mem : t -> int -> bool
val path_of : t -> int -> Topology.Graph.node array option
val iter_members : t -> (int -> unit) -> unit

val insert : t -> peer:int -> routers:Topology.Graph.node array -> unit
(** Same contract as {!Path_tree.insert}. *)

val remove : t -> int -> unit
(** @raise Not_found when unregistered. *)

val dtree : t -> int -> int -> int option

val query : t -> routers:Topology.Graph.node array -> k:int -> ?exclude:(int -> bool) -> unit -> (int * int) list
(** Same semantics as {!Path_tree.query}, by exhaustive scan. *)

val query_member : t -> peer:int -> k:int -> (int * int) list
(** @raise Not_found when unregistered. *)

val insert_many : t -> (int * Topology.Graph.node array) array -> unit
val query_many :
  t ->
  queries:Topology.Graph.node array array ->
  k:int ->
  ?exclude:(int -> int -> bool) ->
  unit ->
  (int * int) list array

val query_into :
  t ->
  routers:Topology.Graph.node array ->
  best:(int * int) Topk.t ->
  seen:(int, unit) Hashtbl.t ->
  exclude:(int -> bool) ->
  unit
(** Batch operations derived from the singletons
    ({!Registry_intf.Derive_batch}): the reference semantics the
    batch-aware backends are tested against. *)

(** {1 Registry backend surface} — completes {!Registry_intf.S}. *)

val backend_name : string
(** ["naive"]. *)

val stats : t -> (string * int) list

val introspect : t -> Registry_intf.introspection
(** Derived by scanning the stored paths (no per-router index exists):
    occupancy counts how many paths cross each router. *)

val digest : t -> int64
(** Order-independent content digest (see {!Registry_intf.S.digest}). *)

val snapshot : t -> string
val restore : string -> (t, string) result
val check_invariants : t -> unit
