(** Event-driven timing of the discovery protocols (extension E5).

    The paper's motivation is {e setup delay}: a newcomer must know good
    neighbors before playback can start.  This module runs joins on the
    {!Simkit.Engine} clock so the two approaches are compared in the same
    simulated milliseconds:

    - proposed scheme: ping all landmarks in parallel (wait for the slowest
      reply), run one traceroute toward the winner (sequential TTL probes:
      the per-hop RTTs accumulate), then one RPC to the management server;
    - Vivaldi: the newcomer is only done after [rounds] gossip rounds of
      [round_period_ms] each (plus nothing else — we even grant it free
      server access to the coordinate directory).

    Two server paths share the measurement phase.  The {e direct} path
    ({!create}) schedules the whole join as one event against a single
    server — the original behavior, preserved byte-for-byte.  The
    {e resilient} path ({!create_resilient}) issues the server round
    through {!Simkit.Rpc} against a {!Cluster}: per-call timeouts, retries
    with backoff, and failover to another replica when the closest one is
    suspected.  Either way a join now always terminates — [on_complete] or
    [on_failure], never a silent stall. *)

type t

val create :
  ?latency:Topology.Latency.t ->
  engine:Simkit.Engine.t ->
  server_router:Topology.Graph.node ->
  Server.t ->
  t
(** Direct path: one server attached at [server_router]; the final RPC pays
    the RTT to it.  Equivalent to a 1-replica cluster with a loss-free
    network. *)

val create_resilient :
  ?latency:Topology.Latency.t -> rpc:Simkit.Rpc.t -> Cluster.t -> t
(** Resilient path: joins measure locally, then register through [rpc]
    against the cluster, failing over between replicas per
    {!Cluster.target}.  The engine is the RPC layer's engine. *)

val server : t -> Server.t
(** The configuration-authority server (replica 0 of the cluster). *)

val cluster : t -> Cluster.t

val join :
  ?rng:Prelude.Prng.t ->
  ?on_trace:(Simkit.Span.context -> unit) ->
  ?on_failure:(unit -> unit) ->
  t ->
  peer:int ->
  attach_router:Topology.Graph.node ->
  k:int ->
  on_complete:(Server.peer_info -> (int * int) list -> unit) ->
  unit
(** Schedule the full two-round join starting now; [on_complete] fires at
    the simulated completion time with the registration info and the
    neighbor reply.  State changes (registration) happen at reply time, not
    at call time.  When the server round cannot complete — every RPC
    attempt timed out, or the lone direct server is down — [on_failure]
    (default: do nothing) fires instead; exactly one of the two callbacks
    runs per join.

    On the resilient path with a span sink attached (the RPC layer's),
    each join opens one root ["join"] span on the engine clock; the
    ["measure"] phase, every ["rpc_attempt"] and the server-side
    registration subtree hang off it, so a join that failed over between
    replicas is still one causal tree under one trace id.  [on_trace]
    fires synchronously with that root context (the null context in
    direct mode or with tracing off) — experiments use it to tag their
    latency samples with the join's trace id. *)

val join_many :
  ?rng:Prelude.Prng.t ->
  ?on_trace:(Simkit.Span.context -> unit) ->
  ?on_failure:(unit -> unit) ->
  t ->
  entries:(int * Topology.Graph.node) array ->
  k:int ->
  on_complete:(int -> Server.peer_info -> (int * int) list -> unit) ->
  unit
(** Batched {!join}: every [(peer, attach_router)] entry measures locally
    (identical rng draws and probe accounting to n singleton joins), then
    the batch registers through ONE server round — the recorded paths
    packed into a single {!Wire.Path_report_batch}, applied server-side
    with one {!Cluster.handle_registration_batch} and replicated as one
    fan-out message per replica.  The round waits for the slowest
    measurement (newcomers measure concurrently) and originates at the
    first entry's attach router — the model is an aggregation point (a
    flash crowd's common access router, a gateway re-registering its
    tenants) shipping the batch upstream.  [on_complete peer info reply]
    fires once per entry in entry order at the shared reply time;
    [on_failure] fires once for the whole batch when the server round
    cannot complete.  With a span sink (resilient mode), the batch is one
    root ["join_batch"] span with a single ["measure"] child; [on_trace]
    sees that root context. *)

val estimate_join_delay : t -> attach_router:Topology.Graph.node -> float
(** The deterministic protocol time a loss-free [join] charges from this
    router (no jitter): max landmark RTT + sequential traceroute + RTT to
    the expected server replica (direct server, or the closest
    believed-live one). *)

val vivaldi_setup_delay : rounds:int -> round_period_ms:float -> float
(** Time before a Vivaldi newcomer has completed the given number of
    measurement rounds. *)
