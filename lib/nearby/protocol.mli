(** Event-driven timing of the discovery protocols (extension E5).

    The paper's motivation is {e setup delay}: a newcomer must know good
    neighbors before playback can start.  This module runs joins on the
    {!Simkit.Engine} clock so the two approaches are compared in the same
    simulated milliseconds:

    - proposed scheme: ping all landmarks in parallel (wait for the slowest
      reply), run one traceroute toward the winner (sequential TTL probes:
      the per-hop RTTs accumulate), then one RPC to the management server;
    - Vivaldi: the newcomer is only done after [rounds] gossip rounds of
      [round_period_ms] each (plus nothing else — we even grant it free
      server access to the coordinate directory). *)

type t

val create :
  ?latency:Topology.Latency.t ->
  engine:Simkit.Engine.t ->
  server_router:Topology.Graph.node ->
  Server.t ->
  t
(** [server_router] is where the management server is attached; the final
    RPC pays the RTT to it. *)

val server : t -> Server.t

val join :
  ?rng:Prelude.Prng.t ->
  t ->
  peer:int ->
  attach_router:Topology.Graph.node ->
  k:int ->
  on_complete:(Server.peer_info -> (int * int) list -> unit) ->
  unit
(** Schedule the full two-round join starting now; [on_complete] fires at
    the simulated completion time with the registration info and the
    neighbor reply.  State changes (registration) happen at reply time, not
    at call time. *)

val estimate_join_delay : t -> attach_router:Topology.Graph.node -> float
(** The deterministic protocol time [join] will charge from this router
    (no jitter): max landmark RTT + sequential traceroute + server RTT. *)

val vivaldi_setup_delay : rounds:int -> round_period_ms:float -> float
(** Time before a Vivaldi newcomer has completed the given number of
    measurement rounds. *)
