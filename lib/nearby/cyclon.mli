(** Cyclon gossip membership (Voulgaris, Gavidia & van Steen, 2005).

    Everything above assumed a way to reach "some random peer" — the
    Hybrid selector's random links, Meridian's entry points, the streaming
    source's fanout targets.  In a deployment that comes from a peer
    sampling service; Cyclon is the classic one: each node keeps a small
    partial view of (peer, age) entries and periodically {e shuffles} a
    slice of it with its oldest neighbor, which mixes views toward an
    almost-uniform random graph with tightly balanced in-degrees.

    This is the synchronous-round simulation form: deterministic under the
    rng, one shuffle initiated per node per round. *)

type t

type params = {
  view_size : int;  (** Entries per node (Cyclon's [c], typically 20–50). *)
  shuffle_length : int;  (** Entries exchanged per shuffle ([l] <= [c]). *)
}

val default_params : params
(** view 8, shuffle 4 — scaled for simulation populations. *)

val create : params -> n:int -> rng:Prelude.Prng.t -> t
(** Bootstrap with ring views (node i initially knows its successors) —
    the worst, most-clustered starting point, so mixing is visible.
    @raise Invalid_argument unless [0 < shuffle_length <= view_size < n]. *)

val node_count : t -> int
val view : t -> int -> int list
(** Current view members of a node, unordered (sorted for determinism). *)

val round : t -> unit
(** Every node initiates one shuffle with the oldest entry of its view, in
    a random order. *)

val sample : t -> int -> rng:Prelude.Prng.t -> int option
(** A uniformly drawn member of the node's current view ([None] on an
    empty view, which cannot happen after {!create}). *)

val indegrees : t -> int array
(** How many views each node appears in — the balance metric; Cyclon's
    selling point is that it concentrates sharply around [view_size]. *)

val check_invariants : t -> unit
(** No self-entries, no duplicate entries, views within capacity.
    @raise Failure on violation. *)
