(* Online answer-quality auditing.

   The offline evaluators (Eval.Measure, Fig2) score a whole run after the
   fact; production wants the same signal live.  An auditor wraps the
   query path and, for a sampled fraction of replies, computes the ground
   truth the server cannot see — the actual nearest registered peers by
   BFS over the router graph — and streams three quality measures:

   - stretch: sum of true distances to the peers returned, over the sum to
     the best-possible set of the same size (1.0 = optimal);
   - recall@k: fraction of the true top-k present in the reply;
   - rank displacement: how far, on average, each returned peer sits below
     the position it occupies in the reply (0 = perfectly ordered truth).

   A full audit costs one BFS (O(V+E)) plus a sort of the registered
   population, which is why it is sampled: at rate 0.01 the auditor is
   noise; at rate 1.0 it is the offline evaluator running inline (and the
   consistency test pins exactly that equivalence). *)

(* Same clamp as Eval.Measure.unreachable_cost: an unreachable peer is
   "very far" rather than poisoning sums with max_int overflow.  (Not
   shared as code — eval depends on nearby, not the reverse.) *)
let unreachable_cost = max_int / 4

type t = {
  server : Server.t;
  rate : float;
  rng : Prelude.Prng.t;
  trace : Simkit.Trace.t;
  timeseries : Simkit.Timeseries.t option;
  clock : unit -> float;
}

let create ?(rate = 0.01) ?(seed = 0x5eed) ?trace ?timeseries ?clock server =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Audit.create: rate outside [0, 1]";
  {
    server;
    rate;
    rng = Prelude.Prng.create seed;
    trace = (match trace with Some t -> t | None -> Simkit.Trace.create ());
    timeseries;
    clock = Option.value clock ~default:(fun () -> 0.0);
  }

let trace t = t.trace
let rate t = t.rate

let observe t name v =
  Simkit.Trace.observe t.trace name v;
  match t.timeseries with
  | None -> ()
  | Some ts -> Simkit.Timeseries.observe ts name ~now:(t.clock ()) v

(* Unconditional audit of one reply: ground truth from the audited peer's
   attachment router.  The reply is compared against the best set of the
   same size, so short replies (tiny populations) stay comparable. *)
let audit_reply t ~peer ~reply =
  match Server.info t.server peer with
  | None -> Simkit.Trace.incr t.trace "audit_no_info"
  | Some (info : Server.peer_info) ->
      let dist = Topology.Bfs.distances (Server.graph t.server) info.attach_router in
      let cost id =
        match Server.info t.server id with
        | None -> unreachable_cost
        | Some (i : Server.peer_info) ->
            let d = dist.(i.attach_router) in
            if d = max_int then unreachable_cost else d
      in
      let truth =
        Server.peer_ids t.server
        |> List.filter (fun id -> id <> peer)
        |> List.map (fun id -> (cost id, id))
        |> List.sort compare
      in
      let reply_ids = List.map fst reply in
      let size = min (List.length reply_ids) (List.length truth) in
      Simkit.Trace.incr t.trace "audit_samples";
      if size = 0 then Simkit.Trace.incr t.trace "audit_empty"
      else begin
        let opt = List.filteri (fun i _ -> i < size) truth in
        let d_opt = List.fold_left (fun acc (d, _) -> acc + d) 0 opt in
        let d_chosen = List.fold_left (fun acc id -> acc + cost id) 0 reply_ids in
        (* Stretch, guarding the degenerate zero-distance optimum the same
           way Measure.score does. *)
        (if d_opt = 0 then
           if d_chosen = 0 then observe t "audit_stretch" 1.0
           else Simkit.Trace.incr t.trace "audit_stretch_skipped"
         else observe t "audit_stretch" (float_of_int d_chosen /. float_of_int d_opt));
        (* Recall@k against the same-size optimal set. *)
        let opt_members = Hashtbl.create size in
        List.iter (fun (_, id) -> Hashtbl.replace opt_members id ()) opt;
        let inter = List.length (List.filter (Hashtbl.mem opt_members) reply_ids) in
        let recall = float_of_int inter /. float_of_int size in
        observe t "audit_recall_at_k" recall;
        if recall >= 1.0 then Simkit.Trace.incr t.trace "audit_exact";
        (* Rank displacement: position of each returned peer in the full
           truth order minus its position in the reply, averaged. *)
        let rank = Hashtbl.create (List.length truth) in
        List.iteri (fun i (_, id) -> Hashtbl.replace rank id i) truth;
        let displacement =
          List.mapi
            (fun i id ->
              let r = Option.value (Hashtbl.find_opt rank id) ~default:(List.length truth) in
              float_of_int (r - i))
            reply_ids
        in
        let n = List.length displacement in
        if n > 0 then
          observe t "audit_rank_displacement"
            (List.fold_left ( +. ) 0.0 displacement /. float_of_int n)
      end

let should_sample t =
  if t.rate >= 1.0 then true
  else if t.rate <= 0.0 then false
  else Prelude.Prng.unit_float t.rng < t.rate

(* Sampled entry point for callers that already hold the reply (the
   resilience harness audits inside its on-complete callback). *)
let sample_reply t ~peer ~reply =
  if should_sample t then audit_reply t ~peer ~reply
  else Simkit.Trace.incr t.trace "audit_not_sampled"

(* Drop-in query path: exactly Server.neighbors, plus a sampled audit. *)
let neighbors t ~peer ~k =
  let reply = Server.neighbors t.server ~peer ~k in
  sample_reply t ~peer ~reply;
  reply
