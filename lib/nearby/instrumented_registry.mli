(** Timing middleware over any {!Registry_intf.S} backend.

    Wraps a packed backend module so [insert], [remove], [query] and
    [query_member] are individually timed and recorded into a shared
    {!Simkit.Trace} under uniform stream names, identical for every
    backend:

    - ["registry_insert_ns"], ["registry_remove_ns"], ["registry_query_ns"]
      — per-operation wall time, nanoseconds;
    - ["registry_query_candidates"] — candidates returned per query.

    The upgraded trace gives each stream p50/p90/p99 alongside mean/CI, so
    every backend gets tail-latency metrics for free; answers, stats,
    introspection and snapshots pass through untouched.

    With a span sink, each operation additionally emits one span
    (["registry_insert"] / ["registry_remove"] / ["registry_query"])
    parented under the ambient context ({!Simkit.Span.current}), and the
    timed sample is recorded with that context's trace id — the stream's
    tail exemplars then point back at the traces that caused them. *)

val insert_ns : string
val remove_ns : string
val query_ns : string
val query_candidates : string
(** The stream names above, as values (exporters and benches reference
    them rather than retyping the literals). *)

val make :
  ?clock:(unit -> float) ->
  ?spans:Simkit.Span.sink ->
  ?labeled:Simkit.Metrics.t ->
  metrics:Simkit.Trace.t ->
  (module Registry_intf.S) ->
  (module Registry_intf.S)
(** [make ~metrics b] is [b] with timed hot paths.  [clock] (default
    [Unix.gettimeofday]-based, nanoseconds) is injectable for
    deterministic tests; [spans] (default {!Simkit.Span.noop}) receives
    one per-operation span parented on the ambient context.  [labeled]
    additionally mirrors every sample dimensionally under the same stream
    names with a [{backend="<backend_name>"}] label, so several wrapped
    backends write distinct series into one registry. *)

val wrap :
  ?clock:(unit -> float) ->
  ?metrics:Simkit.Trace.t ->
  ?labeled:Simkit.Metrics.t ->
  ?spans:Simkit.Span.sink ->
  (module Registry_intf.S) ->
  (module Registry_intf.S)
(** [wrap ?metrics ?labeled ?spans b] is [make] when a metrics trace, a
    labeled registry or a span sink is given and {e physically} [b] itself
    when none is — instrumentation compiles down to direct backend calls
    when disabled. *)
