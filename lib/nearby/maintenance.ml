type config = { k : int; refresh_period_ms : float }

type t = {
  engine : Simkit.Engine.t;
  server : Server.t;
  is_alive : int -> bool;
  config : config;
  sets : (int, int list ref) Hashtbl.t;
  mutable replaced : int;
}

let create ~engine ~server ~is_alive config =
  if config.k < 1 then invalid_arg "Maintenance.create: k must be >= 1";
  if config.refresh_period_ms <= 0.0 then invalid_arg "Maintenance.create: period must be positive";
  { engine; server; is_alive; config; sets = Hashtbl.create 256; replaced = 0 }

let is_tracked t ~peer = Hashtbl.mem t.sets peer

let current_set t ~peer =
  match Hashtbl.find_opt t.sets peer with Some set -> !set | None -> []

let tracked_count t = Hashtbl.length t.sets
let replacements t = t.replaced

let fetch t ~peer ~exclude =
  (* The server may have deregistered [peer] (e.g. crash detection raced the
     refresh); treat that as an empty answer, untracking happens upstream. *)
  match Server.neighbors t.server ~peer ~k:(t.config.k + List.length exclude) with
  | reply ->
      reply |> List.map fst
      |> List.filter (fun p -> not (List.mem p exclude))
      |> List.filteri (fun i _ -> i < t.config.k)
  | exception Not_found -> []

let refresh t ~peer set =
  let live, dead = List.partition t.is_alive !set in
  if dead <> [] || List.length live < t.config.k then begin
    t.replaced <- t.replaced + List.length dead;
    let fresh = fetch t ~peer ~exclude:dead in
    let merged = ref live in
    List.iter
      (fun candidate ->
        if List.length !merged < t.config.k && not (List.mem candidate !merged) then
          merged := !merged @ [ candidate ])
      fresh;
    set := !merged
  end

let rec schedule_refresh t ~peer =
  Simkit.Engine.schedule t.engine ~delay:t.config.refresh_period_ms (fun () ->
      match Hashtbl.find_opt t.sets peer with
      | None -> () (* untracked in the meantime; stop the loop *)
      | Some set ->
          if Server.mem t.server peer then begin
            refresh t ~peer set;
            schedule_refresh t ~peer
          end
          else Hashtbl.remove t.sets peer)

let track t ~peer =
  if Hashtbl.mem t.sets peer then invalid_arg "Maintenance.track: already tracked";
  if not (Server.mem t.server peer) then raise Not_found;
  let set = ref (fetch t ~peer ~exclude:[]) in
  Hashtbl.add t.sets peer set;
  schedule_refresh t ~peer

let untrack t ~peer = Hashtbl.remove t.sets peer

let live_fraction t =
  if Hashtbl.length t.sets = 0 then 1.0
  else begin
    let acc = ref 0.0 in
    Hashtbl.iter
      (fun _ set ->
        let live = List.length (List.filter t.is_alive !set) in
        acc := !acc +. (float_of_int live /. float_of_int t.config.k))
      t.sets;
    !acc /. float_of_int (Hashtbl.length t.sets)
  end
