let wait_series_name = "admission_wait_ms"
let depth_series_name = "admission_queue_depth"

type policy =
  | Drop_tail
  | Deadline of { max_wait_ms : float }
  | Slo_shed of { spec : Simkit.Slo.spec; poll_every_ms : float }

let slo_shed ?(lookback = 4) ?(burn_threshold = 0.5) ?(poll_every_ms = 100.0)
    ~wait_p99_limit_ms () =
  Slo_shed
    {
      spec =
        Simkit.Slo.spec ~lookback ~burn_threshold
          (Simkit.Slo.Quantile_max
             { series = wait_series_name; q = 0.99; limit = wait_p99_limit_ms });
      poll_every_ms;
    }

let policy_kind = function
  | Drop_tail -> "drop-tail"
  | Deadline _ -> "deadline"
  | Slo_shed _ -> "slo"

type config = {
  capacity : int;
  service_rate_per_s : float;
  batch : int;
  policy : policy;
}

let validate c =
  if c.capacity < 1 then invalid_arg "Admission: capacity must be >= 1";
  if c.service_rate_per_s <= 0.0 then invalid_arg "Admission: service rate must be positive";
  if c.batch < 1 then invalid_arg "Admission: batch must be >= 1";
  match c.policy with
  | Drop_tail -> ()
  | Deadline { max_wait_ms } ->
      if max_wait_ms <= 0.0 then invalid_arg "Admission: deadline must be positive"
  | Slo_shed { poll_every_ms; _ } ->
      if poll_every_ms <= 0.0 then invalid_arg "Admission: poll period must be positive"

type request = {
  submitted_at : float;
  serve : queued_ms:float -> unit;
  shed : reason:string -> unit;
}

type t = {
  engine : Simkit.Engine.t;
  config : config;
  metrics : Simkit.Metrics.t option;
  ts : Simkit.Timeseries.t;
  recorder : Simkit.Flight_recorder.t option;
  on_drain : (served:int -> unit) option;
  queue : request Queue.t;
  mutable depth : int;
  mutable max_depth : int;
  mutable submitted : int;
  mutable admitted : int;
  shed_counts : (string, int) Hashtbl.t;
  mutable drains : int;
  mutable drain_armed : bool;
  monitor : Simkit.Slo.monitor option;
  mutable shedding : bool;
  mutable poll_armed : bool;
  mutable slo_sheds_opened : int;
  tick : float;
  wait_series : Simkit.Timeseries.series;
  depth_series : Simkit.Timeseries.series;
}

let tick_ms t = t.tick
let depth t = t.depth
let shedding t = t.shedding

let create ~engine ?metrics ?timeseries ?recorder ?on_drain config =
  validate config;
  let ts =
    match timeseries with
    | Some ts -> ts
    | None -> Simkit.Timeseries.create ~window_ms:500.0 ()
  in
  let monitor =
    match config.policy with
    | Slo_shed { spec; _ } -> Some (Simkit.Slo.monitor [ spec ])
    | Drop_tail | Deadline _ -> None
  in
  {
    engine;
    config;
    metrics;
    ts;
    recorder;
    on_drain;
    queue = Queue.create ();
    depth = 0;
    max_depth = 0;
    submitted = 0;
    admitted = 0;
    shed_counts = Hashtbl.create 4;
    drains = 0;
    drain_armed = false;
    monitor;
    shedding = false;
    poll_armed = false;
    slo_sheds_opened = 0;
    tick = 1000.0 *. float_of_int config.batch /. config.service_rate_per_s;
    wait_series = Simkit.Timeseries.series ts wait_series_name;
    depth_series = Simkit.Timeseries.series ts depth_series_name;
  }

let with_metrics t f = match t.metrics with Some m -> f m | None -> ()

let observe_depth t ~now =
  Simkit.Timeseries.observe_series t.ts t.depth_series ~now (float_of_int t.depth);
  with_metrics t (fun m ->
      Simkit.Metrics.set m depth_series_name ~labels:[] (float_of_int t.depth))

let do_shed t req ~reason =
  (match Hashtbl.find_opt t.shed_counts reason with
  | Some n -> Hashtbl.replace t.shed_counts reason (n + 1)
  | None -> Hashtbl.replace t.shed_counts reason 1);
  with_metrics t (fun m ->
      Simkit.Metrics.incr m "admission_shed_total" ~labels:[ ("reason", reason) ]);
  req.shed ~reason

(* One drain tick: serve the oldest [batch] requests at the current engine
   time.  Deadline-expired entries are discarded without consuming a batch
   slot — the slot goes to the next still-fresh request, which is the point
   of expiry (never spend capacity on work nobody is waiting for). *)
let rec drain t () =
  t.drain_armed <- false;
  t.drains <- t.drains + 1;
  let now = Simkit.Engine.now t.engine in
  let served = ref 0 in
  while !served < t.config.batch && t.depth > 0 do
    let req = Queue.pop t.queue in
    t.depth <- t.depth - 1;
    let waited = now -. req.submitted_at in
    match t.config.policy with
    | Deadline { max_wait_ms } when waited > max_wait_ms -> do_shed t req ~reason:"deadline"
    | _ ->
        Simkit.Timeseries.observe_series t.ts t.wait_series ~now waited;
        with_metrics t (fun m ->
            Simkit.Metrics.incr m "admission_admitted_total" ~labels:[];
            Simkit.Metrics.observe m wait_series_name ~labels:[] waited);
        t.admitted <- t.admitted + 1;
        incr served;
        req.serve ~queued_ms:waited
  done;
  observe_depth t ~now;
  (match t.on_drain with Some f when !served > 0 -> f ~served:!served | _ -> ());
  if t.depth > 0 then arm_drain t

and arm_drain t =
  if not t.drain_armed then begin
    t.drain_armed <- true;
    Simkit.Engine.schedule t.engine ~delay:t.tick (drain t)
  end

let record_transition t ~now (st : Simkit.Slo.status) ~opening =
  match t.recorder with
  | None -> ()
  | Some r ->
      Simkit.Flight_recorder.record r ~ts:now ~kind:"admission"
        ~args:
          [
            ("burn_rate", Simkit.Span.Float st.burn_rate);
            ("depth", Simkit.Span.Int t.depth);
          ]
        ((if opening then "shed open: " else "shed close: ") ^ st.spec.name)

(* The SLO poll keeps its own heartbeat: each poll refreshes the control
   signal with the age of the queue head (0 on an idle queue), so the
   monitor keeps seeing new windows — and can clear — even while every
   arrival is being shed and nothing is dequeued. *)
let rec poll t () =
  t.poll_armed <- false;
  match t.monitor with
  | None -> ()
  | Some monitor ->
      let now = Simkit.Engine.now t.engine in
      let head_age =
        match Queue.peek_opt t.queue with
        | Some req -> now -. req.submitted_at
        | None -> 0.0
      in
      Simkit.Timeseries.observe_series t.ts t.wait_series ~now head_age;
      ignore
        (Simkit.Slo.poll
           ~on_breach:(fun st ->
             t.shedding <- true;
             t.slo_sheds_opened <- t.slo_sheds_opened + 1;
             with_metrics t (fun m ->
                 Simkit.Metrics.incr m "admission_slo_transitions_total"
                   ~labels:[ ("edge", "breach") ]);
             record_transition t ~now st ~opening:true)
           ~on_clear:(fun st ->
             t.shedding <- false;
             with_metrics t (fun m ->
                 Simkit.Metrics.incr m "admission_slo_transitions_total"
                   ~labels:[ ("edge", "clear") ]);
             record_transition t ~now st ~opening:false)
           monitor t.ts);
      if t.depth > 0 || t.shedding then arm_poll t

and arm_poll t =
  match t.config.policy with
  | Slo_shed { poll_every_ms; _ } ->
      if not t.poll_armed then begin
        t.poll_armed <- true;
        Simkit.Engine.schedule t.engine ~delay:poll_every_ms (poll t)
      end
  | Drop_tail | Deadline _ -> ()

let submit t ~serve ~shed =
  let now = Simkit.Engine.now t.engine in
  t.submitted <- t.submitted + 1;
  with_metrics t (fun m -> Simkit.Metrics.incr m "admission_submitted_total" ~labels:[]);
  let req = { submitted_at = now; serve; shed } in
  arm_poll t;
  if t.shedding then do_shed t req ~reason:"slo"
  else if t.depth >= t.config.capacity then do_shed t req ~reason:"queue_full"
  else begin
    Queue.push req t.queue;
    t.depth <- t.depth + 1;
    if t.depth > t.max_depth then t.max_depth <- t.depth;
    observe_depth t ~now;
    arm_drain t
  end

type totals = {
  submitted : int;
  admitted : int;
  shed : (string * int) list;
  shed_total : int;
  max_depth : int;
  drains : int;
  slo_sheds_opened : int;
}

let totals t =
  let shed =
    Hashtbl.fold (fun reason n acc -> (reason, n) :: acc) t.shed_counts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    submitted = t.submitted;
    admitted = t.admitted;
    shed;
    shed_total = List.fold_left (fun acc (_, n) -> acc + n) 0 shed;
    max_depth = t.max_depth;
    drains = t.drains;
    slo_sheds_opened = t.slo_sheds_opened;
  }
