(** Landmark deployment policies (paper §3, extension E1).

    The paper attaches "few landmarks to routers with medium-size degree" and
    names landmark count and placement as an open policy question.  Each
    policy selects distinct routers to host landmarks. *)

type policy =
  | Uniform_random  (** Any router, uniformly. *)
  | Medium_degree
      (** The paper's choice: routers whose degree sits in the middle band
          (50th–85th percentile among routers of degree >= 2), drawn
          uniformly within the band. *)
  | High_degree  (** The highest-degree (core) routers. *)
  | Spread
      (** Greedy k-center over hop distance: the first landmark is the
          highest-degree router, each next one maximizes distance to those
          already chosen — geographic-style dispersion. *)
  | Optimized
      (** k-median local search over sampled candidates and clients
          ({!Placement_opt}) — minimizes the clients' distance to their
          closest landmark. *)

val all_policies : policy list
val policy_name : policy -> string
val policy_of_string : string -> policy option

val place :
  Topology.Graph.t -> policy -> count:int -> rng:Prelude.Prng.t -> Topology.Graph.node array
(** [place g policy ~count ~rng] returns [count] distinct routers.
    @raise Invalid_argument when [count] exceeds the candidate pool (for
    [Medium_degree] the band is widened before giving up). *)

val closest :
  Traceroute.Route_oracle.t ->
  ?latency:Topology.Latency.t ->
  ?rng:Prelude.Prng.t ->
  landmarks:Topology.Graph.node array ->
  Topology.Graph.node ->
  Topology.Graph.node * float
(** [closest oracle ~landmarks router] pings every landmark from [router]
    (round 1 of the join protocol) and returns the lowest-RTT landmark with
    its measured RTT; ties break toward the lower landmark id.
    @raise Invalid_argument on an empty landmark set. *)
