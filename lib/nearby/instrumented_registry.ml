(* Timing middleware over any registry backend.

   [make] wraps a packed [Registry_intf.S] so every insert/remove/query is
   timed with a monotonic-enough wall clock and folded into a shared
   [Simkit.Trace] under uniform stream names — the same names for [tree],
   [naive], [dht], [super] and [sharded:N], which is what lets the metrics
   exporter and `bench obs` report identical per-backend latency quantiles.

   [wrap] is the zero-cost-when-disabled entry point: without a metrics
   trace it returns the backend module unchanged (physically the same
   first-class module), so the disabled path is a direct call into the
   backend — no closure, no clock read, no branch. *)

let insert_ns = "registry_insert_ns"
let remove_ns = "registry_remove_ns"
let query_ns = "registry_query_ns"
let query_candidates = "registry_query_candidates"

(* Unix.gettimeofday is microsecond-granular; single sub-microsecond calls
   quantize to 0 or 1000 ns, which the quantile sketches tolerate (the
   distribution is what matters, and slow outliers are exactly what
   survives quantization). *)
let default_clock () = Unix.gettimeofday () *. 1e9

let make ?(clock = default_clock) ~metrics (module B : Registry_intf.S) : (module Registry_intf.S) =
  (module struct
    type t = B.t

    let backend_name = B.backend_name
    let create = B.create
    let landmark = B.landmark

    let timed name f =
      let t0 = clock () in
      let r = f () in
      Simkit.Trace.observe metrics name (clock () -. t0);
      r

    let insert t ~peer ~routers = timed insert_ns (fun () -> B.insert t ~peer ~routers)
    let remove t peer = timed remove_ns (fun () -> B.remove t peer)
    let mem = B.mem
    let member_count = B.member_count
    let path_of = B.path_of
    let iter_members = B.iter_members
    let dtree = B.dtree

    let observe_query result =
      Simkit.Trace.observe metrics query_candidates (float_of_int (List.length result));
      result

    let query t ~routers ~k ?(exclude = fun _ -> false) () =
      observe_query (timed query_ns (fun () -> B.query t ~routers ~k ~exclude ()))

    let query_member t ~peer ~k = observe_query (timed query_ns (fun () -> B.query_member t ~peer ~k))
    let stats = B.stats
    let snapshot = B.snapshot
    let restore = B.restore
    let check_invariants = B.check_invariants
  end)

let wrap ?clock ?metrics backend =
  match metrics with None -> backend | Some metrics -> make ?clock ~metrics backend
