(* Timing middleware over any registry backend.

   [make] wraps a packed [Registry_intf.S] so every insert/remove/query is
   timed with a monotonic-enough wall clock and folded into a shared
   [Simkit.Trace] under uniform stream names — the same names for [tree],
   [naive], [dht], [super] and [sharded:N], which is what lets the metrics
   exporter and `bench obs` report identical per-backend latency quantiles.

   With a span sink attached, every operation additionally becomes one
   span, parented under whatever context is ambient ([Span.with_context] /
   [Span.with_span] in the caller) — so a store op shows up inside the join
   that caused it without any signature threading — and the recorded sample
   is tagged with that trace id, cross-linking the stream's tail exemplars
   to concrete traces.

   [wrap] is the zero-cost-when-disabled entry point: with neither a
   metrics trace nor a span sink it returns the backend module unchanged
   (physically the same first-class module), so the disabled path is a
   direct call into the backend — no closure, no clock read, no branch. *)

let insert_ns = "registry_insert_ns"
let remove_ns = "registry_remove_ns"
let query_ns = "registry_query_ns"
let query_candidates = "registry_query_candidates"

(* Unix.gettimeofday is microsecond-granular; single sub-microsecond calls
   quantize to 0 or 1000 ns, which the quantile sketches tolerate (the
   distribution is what matters, and slow outliers are exactly what
   survives quantization). *)
let default_clock () = Unix.gettimeofday () *. 1e9

let make ?(clock = default_clock) ?(spans = Simkit.Span.noop) ?labeled ~metrics
    (module B : Registry_intf.S) : (module Registry_intf.S) =
  (module struct
    type t = B.t

    let backend_name = B.backend_name
    let create = B.create
    let landmark = B.landmark

    (* The dimensional mirror: same stream names as the flat trace, filed
       under the backend's identity so per-backend series merge into one
       fleet view without name mangling. *)
    let backend_labels = [ ("backend", B.backend_name) ]

    let labeled_observe ?trace_id stream v =
      match labeled with
      | None -> ()
      | Some m -> Simkit.Metrics.observe ?trace_id m stream ~labels:backend_labels v

    (* The span runs on the sink's simulated clock (duration ~0 there: a
       store op is instantaneous in simulated time); the wall-clock cost
       goes to the metrics stream, tagged with the span's trace so the
       stream's exemplars point back at the causing trace.  [with_span]
       closes the span even when the backend raises. *)
    let timed span_name stream f =
      Simkit.Span.with_span spans ~name:span_name ?parent:(Simkit.Span.current spans) []
        (fun ctx ->
          let t0 = clock () in
          let r = f () in
          let elapsed = clock () -. t0 in
          Simkit.Trace.observe ~trace_id:ctx.Simkit.Span.trace_id metrics stream elapsed;
          labeled_observe ~trace_id:ctx.Simkit.Span.trace_id stream elapsed;
          r)

    let insert t ~peer ~routers =
      timed "registry_insert" insert_ns (fun () -> B.insert t ~peer ~routers)

    let remove t peer = timed "registry_remove" remove_ns (fun () -> B.remove t peer)
    let mem = B.mem
    let member_count = B.member_count
    let path_of = B.path_of
    let iter_members = B.iter_members
    let dtree = B.dtree

    let observe_query result =
      Simkit.Trace.observe metrics query_candidates (float_of_int (List.length result));
      labeled_observe query_candidates (float_of_int (List.length result));
      result

    let query t ~routers ~k ?(exclude = fun _ -> false) () =
      observe_query (timed "registry_query" query_ns (fun () -> B.query t ~routers ~k ~exclude ()))

    let query_member t ~peer ~k =
      observe_query (timed "registry_query" query_ns (fun () -> B.query_member t ~peer ~k))

    (* A batch is one span (tagged with its size), not n: that is the point
       of batching, and span sinks stay proportional to call volume.  The
       per-op latency streams still receive one sample per operation — the
       amortized cost, batch time / n — so quantiles over a mixed
       singleton/batch workload stay comparable and a batched deployment
       shows up as the latency drop it actually is. *)
    let timed_batch span_name stream n f =
      if n = 0 then f ()
      else
        Simkit.Span.with_span spans ~name:span_name ?parent:(Simkit.Span.current spans)
          [ ("ops", Simkit.Span.Int n) ]
          (fun ctx ->
            let t0 = clock () in
            let r = f () in
            let per_op = (clock () -. t0) /. float_of_int n in
            for _ = 1 to n do
              Simkit.Trace.observe ~trace_id:ctx.Simkit.Span.trace_id metrics stream per_op;
              labeled_observe ~trace_id:ctx.Simkit.Span.trace_id stream per_op
            done;
            r)

    let insert_many t entries =
      timed_batch "registry_insert_many" insert_ns (Array.length entries) (fun () ->
          B.insert_many t entries)

    let query_many t ~queries ~k ?(exclude = fun _ _ -> false) () =
      let results =
        timed_batch "registry_query_many" query_ns (Array.length queries) (fun () ->
            B.query_many t ~queries ~k ~exclude ())
      in
      Array.iter (fun r -> ignore (observe_query r)) results;
      results

    (* Candidate offering into a caller-owned selector has no result list of
       its own; the caller times the whole scatter.  Pass through. *)
    let query_into = B.query_into

    let stats = B.stats
    let introspect = B.introspect
    let digest = B.digest
    let snapshot = B.snapshot
    let restore = B.restore
    let check_invariants = B.check_invariants
  end)

let wrap ?clock ?metrics ?labeled ?spans backend =
  match (metrics, labeled, spans) with
  | None, None, None -> backend
  | _ ->
      let metrics = match metrics with Some m -> m | None -> Simkit.Trace.create () in
      make ?clock ?spans ?labeled ~metrics backend
