(** Latency-weighted landmark path tree (DESIGN.md ablation 1).

    Identical structure to {!Path_tree} but costs are cumulative link
    latencies (milliseconds) instead of hop counts, so
    [dtree(p1, p2) = latency(p1 -> meeting) + latency(meeting -> p2)] —
    the quantity a latency-sensitive application actually cares about.
    The {!Metric_ablation} experiment (bench target [metric]) measures what
    this refinement buys over the paper's hop counts. *)

include module type of Path_tree_core.Make (struct
  type t = float

  let zero = 0.0
  let add = ( +. )
  let compare = compare
end)

val hops_of_route :
  latency:Topology.Latency.t -> Topology.Graph.node list -> (Topology.Graph.node * float) array
(** [hops_of_route ~latency route] pairs each router of a recorded route
    with its cumulative latency from the route head.
    @raise Not_found if consecutive routers are not linked in the latency
    table's graph. *)
