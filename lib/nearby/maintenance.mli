(** Client-side neighbor-set maintenance (the peer's half of extension E3).

    The server answers queries; keeping a peer's working neighbor set alive
    between queries is the client's job.  A maintainer re-checks each
    tracked peer's set every [refresh_period_ms]: neighbors that stopped
    responding are dropped and the management server is asked for
    replacements.  Without it, a set frozen at join time decays as
    neighbors leave or crash — the decay the maintenance experiment
    quantifies. *)

type config = {
  k : int;  (** Target neighbor-set size. *)
  refresh_period_ms : float;
}

type t

val create :
  engine:Simkit.Engine.t -> server:Server.t -> is_alive:(int -> bool) -> config -> t
(** [is_alive] stands in for a ping: in the simulation the experiment knows
    ground truth; a deployment would probe.  @raise Invalid_argument on a
    non-positive [k] or period. *)

val track : t -> peer:int -> unit
(** Start maintaining a (registered) peer: fetch its initial set now and
    refresh it periodically.  @raise Invalid_argument when already tracked;
    @raise Not_found when the peer is not registered with the server. *)

val untrack : t -> peer:int -> unit
(** Stop maintaining (the peer left or crashed).  Idempotent. *)

val is_tracked : t -> peer:int -> bool
val current_set : t -> peer:int -> int list
(** The maintained set; [] when untracked. *)

val tracked_count : t -> int
val replacements : t -> int
(** Total dead neighbors dropped (and refilled from the server) so far. *)

val live_fraction : t -> float
(** Mean over tracked peers of (live members / k); 1.0 when nothing is
    tracked.  Uses [is_alive] ground truth. *)
