type params = { view_size : int; shuffle_length : int }

let default_params = { view_size = 8; shuffle_length = 4 }

type entry = { peer : int; mutable age : int }
type state = { mutable view : entry list }
type t = { p : params; nodes : state array; rng_ : Prelude.Prng.t }

let create params ~n ~rng =
  if params.shuffle_length < 1 || params.shuffle_length > params.view_size || params.view_size >= n
  then invalid_arg "Cyclon.create: need 0 < shuffle_length <= view_size < n";
  let nodes =
    Array.init n (fun i ->
        { view = List.init params.view_size (fun j -> { peer = (i + j + 1) mod n; age = 0 }) })
  in
  { p = params; nodes; rng_ = rng }

let node_count t = Array.length t.nodes
let view t i = List.map (fun e -> e.peer) t.nodes.(i).view |> List.sort compare

let sample t i ~rng =
  match t.nodes.(i).view with
  | [] -> None
  | entries ->
      let arr = Array.of_list entries in
      Some arr.(Prelude.Prng.int rng (Array.length arr)).peer

(* Merge protocol: keep own entries not sent, add received (skipping self
   and duplicates), fill back with sent entries if room remains, cap at
   view_size by dropping the entries that were sent first. *)
let merge t me ~kept ~sent ~received =
  let seen = Hashtbl.create 16 in
  let out = ref [] and count = ref 0 in
  let add e =
    if e.peer <> me && (not (Hashtbl.mem seen e.peer)) && !count < t.p.view_size then begin
      Hashtbl.add seen e.peer ();
      out := e :: !out;
      incr count
    end
  in
  List.iter add received;
  List.iter add kept;
  List.iter add sent;
  t.nodes.(me).view <- List.rev !out

let shuffle_pair t initiator =
  let state = t.nodes.(initiator) in
  match state.view with
  | [] -> ()
  | entries ->
      List.iter (fun e -> e.age <- e.age + 1) entries;
      (* Oldest entry is the shuffle target and is always handed over. *)
      let target_entry =
        List.fold_left (fun best e -> if e.age > best.age then e else best) (List.hd entries) entries
      in
      let q = target_entry.peer in
      let rest = List.filter (fun e -> e != target_entry) entries in
      let rest_arr = Array.of_list rest in
      Prelude.Prng.shuffle_in_place t.rng_ rest_arr;
      let extra = min (t.p.shuffle_length - 1) (Array.length rest_arr) in
      let sent_others = Array.to_list (Array.sub rest_arr 0 extra) in
      let kept = Array.to_list (Array.sub rest_arr extra (Array.length rest_arr - extra)) in
      (* What the initiator offers: itself (fresh) plus the extras. *)
      let offer = { peer = initiator; age = 0 } :: sent_others in
      (* Q's side: pick its reply slice (cannot include the initiator). *)
      let q_state = t.nodes.(q) in
      let q_arr = Array.of_list (List.filter (fun e -> e.peer <> initiator) q_state.view) in
      Prelude.Prng.shuffle_in_place t.rng_ q_arr;
      let reply_n = min t.p.shuffle_length (Array.length q_arr) in
      let reply = Array.to_list (Array.sub q_arr 0 reply_n) in
      let q_kept = List.filter (fun e -> not (List.memq e reply)) q_state.view in
      (* Q merges the offer (replacing what it replied with). *)
      merge t q ~kept:q_kept ~sent:reply ~received:(List.map (fun e -> { e with age = e.age }) offer);
      (* Initiator merges the reply; the handed-over target entry is gone
         unless it comes back as filler. *)
      merge t initiator ~kept ~sent:(target_entry :: sent_others)
        ~received:(List.map (fun e -> { e with age = e.age }) reply)

let round t =
  let order = Array.init (node_count t) (fun i -> i) in
  Prelude.Prng.shuffle_in_place t.rng_ order;
  Array.iter (fun i -> shuffle_pair t i) order

let indegrees t =
  let n = node_count t in
  let deg = Array.make n 0 in
  Array.iter
    (fun state -> List.iter (fun e -> deg.(e.peer) <- deg.(e.peer) + 1) state.view)
    t.nodes;
  deg

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  Array.iteri
    (fun i state ->
      if List.length state.view > t.p.view_size then fail "node %d view over capacity" i;
      let seen = Hashtbl.create 16 in
      List.iter
        (fun e ->
          if e.peer = i then fail "node %d contains itself" i;
          if e.peer < 0 || e.peer >= node_count t then fail "node %d has an invalid peer" i;
          if Hashtbl.mem seen e.peer then fail "node %d has duplicate entry %d" i e.peer;
          Hashtbl.add seen e.peer ())
        state.view)
    t.nodes
