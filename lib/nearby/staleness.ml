(* Report-age observability.

   A registered path is a claim about the network at measurement time; the
   longer it sits unrefreshed, the less the inferred distances mean.  This
   module turns the server's registration stamps into the three numbers an
   operator actually watches: the report-age distribution (how stale the
   typical report is), the oldest entry (the worst claim still being
   served), and the per-window refresh rate (whether the population is
   keeping its reports alive).

   The tracker is deliberately stateless about individual peers — every
   [observe] re-reads the stamp table, so a sample reflects the membership
   at that instant and removed peers stop contributing immediately.  The
   only retained state is the previous observation's refresh counter and
   time, which is what turns the monotone ["report_refresh"] counter into a
   rate. *)

type t = {
  server : Server.t;
  ages : Prelude.Sketch.t;  (* all report-age samples ever observed, ms *)
  mutable last_refresh_count : int;
  mutable last_observed_at : float;  (* engine ms of the previous observe *)
}

type report = {
  members : int;
  oldest_ms : float;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  refresh_count : int;
  refresh_rate_hz : float;
}

let create server =
  {
    server;
    ages = Prelude.Sketch.create ();
    last_refresh_count = Simkit.Trace.counter (Server.trace server) "report_refresh";
    last_observed_at = nan;
  }

let server t = t.server
let age_sketch t = t.ages

(* Ages are clamped at zero: a stamp can postdate [now] only through caller
   clock skew (e.g. observing mid-event before the engine advanced), and a
   negative age would poison the sketch, which only accepts >= 0 samples
   meaningfully. *)
let age ~now stamped_at = Float.max 0.0 (now -. stamped_at)

let observe ?metrics ?(labels = []) t ~now =
  let window = Prelude.Sketch.create () in
  let oldest = ref 0.0 in
  let sum = ref 0.0 in
  let members = ref 0 in
  Server.iter_registration_times t.server (fun _peer stamped_at ->
      let a = age ~now stamped_at in
      incr members;
      sum := !sum +. a;
      if a > !oldest then oldest := a;
      Prelude.Sketch.add window a;
      Prelude.Sketch.add t.ages a);
  let refresh_count = Simkit.Trace.counter (Server.trace t.server) "report_refresh" in
  let refresh_rate_hz =
    let dt_ms = now -. t.last_observed_at in
    if Float.is_nan dt_ms || dt_ms <= 0.0 then nan
    else float_of_int (refresh_count - t.last_refresh_count) /. (dt_ms /. 1000.0)
  in
  t.last_refresh_count <- refresh_count;
  t.last_observed_at <- now;
  let q p = if !members = 0 then nan else Prelude.Sketch.quantile window p in
  let report =
    {
      members = !members;
      oldest_ms = !oldest;
      mean_ms = (if !members = 0 then nan else !sum /. float_of_int !members);
      p50_ms = q 0.5;
      p90_ms = q 0.9;
      p99_ms = q 0.99;
      refresh_count;
      refresh_rate_hz;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Simkit.Metrics.set m "staleness_members" ~labels (float_of_int report.members);
      Simkit.Metrics.set m "staleness_oldest_ms" ~labels report.oldest_ms;
      if not (Float.is_nan report.refresh_rate_hz) then
        Simkit.Metrics.set m "staleness_refresh_rate_hz" ~labels report.refresh_rate_hz;
      Server.iter_registration_times t.server (fun _peer stamped_at ->
          Simkit.Metrics.observe m "report_age_ms" ~labels (age ~now stamped_at)));
  report
