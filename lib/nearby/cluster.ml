let log_src = Logs.Src.create "nearby.cluster" ~doc:"Replicated management-server cluster"

module Log = (val Logs.src_log log_src : Logs.LOG)

type replica = {
  id : int;
  router : Topology.Graph.node;
  mutable server : Server.t;
  mutable alive : bool;
  mutable recovered_at : float option;
      (* Set by [recover], cleared by the sync round that brings the replica
         back in sync; the difference is the recovery time. *)
}

type t = {
  replicas : replica array;
  transport : Simkit.Transport.t option;
  detector : Simkit.Failure_detector.t option;
  restore_server : (string -> (Server.t, string) result) option;
  trace : Simkit.Trace.t;
  recorder : Simkit.Flight_recorder.t option;
  spans : Simkit.Span.sink;
  metrics : Simkit.Metrics.t option;
  mutable divergence_started_at : float option;
      (* Engine time the current divergence episode was first detected;
         [None] while the live replicas' digests agree.  Edge state for the
         divergence/convergence flight-recorder events and the
         ["cluster_antientropy_lag_ms"] stopwatch. *)
}

let engine t = Option.map Simkit.Transport.engine t.transport
let now t = match engine t with Some e -> Simkit.Engine.now e | None -> 0.0

let record t ~args detail =
  match t.recorder with
  | None -> ()
  | Some r -> Simkit.Flight_recorder.record r ~ts:(now t) ~kind:"cluster" ~args detail

let single ~router server =
  {
    replicas = [| { id = 0; router; server; alive = true; recovered_at = None } |];
    transport = None;
    detector = None;
    restore_server = None;
    trace = Simkit.Trace.create ();
    recorder = None;
    spans = Simkit.Span.noop;
    metrics = None;
    divergence_started_at = None;
  }

let watch_replica t r =
  match t.detector with
  | None -> ()
  | Some d ->
      Simkit.Failure_detector.watch d ~peer:r.id ~router:r.router ~alive:(fun () -> r.alive)

let create ?(detector_config = Simkit.Failure_detector.default_config) ?recorder
    ?(spans = Simkit.Span.noop) ?metrics ~transport ~client_router ~make_server ~restore_server
    ~routers () =
  if Array.length routers = 0 then invalid_arg "Cluster.create: no replicas";
  let distinct = Hashtbl.create 8 in
  Array.iter
    (fun router ->
      if Hashtbl.mem distinct router then invalid_arg "Cluster.create: duplicate replica router";
      Hashtbl.add distinct router ())
    routers;
  let trace = Simkit.Trace.create () in
  let replicas =
    Array.mapi
      (fun id router -> { id; router; server = make_server (); alive = true; recovered_at = None })
      routers
  in
  let detector =
    Simkit.Failure_detector.create detector_config ~transport ~monitor_router:client_router
      ~on_failure:(fun id ->
        Simkit.Trace.incr trace "cluster_suspected";
        (match recorder with
        | None -> ()
        | Some r ->
            Simkit.Flight_recorder.record r
              ~ts:(Simkit.Engine.now (Simkit.Transport.engine transport))
              ~kind:"cluster"
              ~args:[ ("replica", Simkit.Span.Int id) ]
              "suspected");
        Log.debug (fun m -> m "replica %d suspected" id))
  in
  let t =
    {
      replicas;
      transport = Some transport;
      detector = Some detector;
      restore_server = Some restore_server;
      trace;
      recorder;
      spans;
      metrics;
      divergence_started_at = None;
    }
  in
  Array.iter (fun r -> watch_replica t r) replicas;
  (* Registration stamps read the engine clock, so report staleness is in
     engine milliseconds fleet-wide. *)
  Array.iter (fun r -> Server.set_clock r.server (fun () -> now t)) replicas;
  t

let replica_count t = Array.length t.replicas
let trace t = t.trace

(* Fleet roll-up: one fresh trace holding every replica's server streams
   merged (sketch-backed quantiles, counters added) plus the cluster's own
   counters.  Dead replicas are scraped too -- their state survives a
   crash, and a fleet p99 that silently dropped a third of its samples
   would flatter the tail. *)
let fleet_trace t =
  let into = Simkit.Trace.create () in
  Array.iter
    (fun r -> Simkit.Trace.merge_into ~into (Server.trace r.server))
    t.replicas;
  Simkit.Trace.merge_into ~into t.trace;
  into

(* Dimensional scrape: every replica's server trace filed under its
   replica index, so per-replica tails sit next to the merged fleet view
   in one labeled registry. *)
let scrape t ~into =
  Array.iteri
    (fun i r ->
      Simkit.Metrics.merge_trace into
        ~labels:[ ("replica", string_of_int i) ]
        (Server.trace r.server))
    t.replicas
let replica_router t i = t.replicas.(i).router
let server_of t i = t.replicas.(i).server
let measurement_server t = t.replicas.(0).server
let graph t = Server.graph t.replicas.(0).server
let is_alive t i = t.replicas.(i).alive

let replica_at t ~router =
  let found = ref None in
  Array.iter (fun r -> if r.router = router then found := Some r.id) t.replicas;
  !found

(* The client's failure-detector view: a replica is a candidate target
   unless the monitor currently suspects it.  Ground-truth [alive] is never
   consulted here — the client only knows what the heartbeats tell it. *)
let believed_live t (r : replica) =
  match t.detector with
  | None -> r.alive
  | Some d ->
      Simkit.Failure_detector.is_watched d ~peer:r.id
      && not (Simkit.Failure_detector.is_suspected d ~peer:r.id)

let live_count t =
  Array.fold_left (fun acc r -> if r.alive then acc + 1 else acc) 0 t.replicas

(* Candidate targets ordered primary-first: ascending (network delay from
   [src], id).  Attempt n takes the (n-1 mod live)-th entry, so a retry
   fails over to the next-closest believed-live replica immediately instead
   of burning its whole budget on a dead primary. *)
let target t ~src ~attempt =
  let transport =
    match t.transport with
    | Some tr -> tr
    | None -> invalid_arg "Cluster.target: single-server cluster has no transport"
  in
  let candidates =
    Array.to_list t.replicas
    |> List.filter (believed_live t)
    |> List.map (fun r -> ((Simkit.Transport.one_way_delay transport ~src ~dst:r.router, r.id), r))
    |> List.sort compare
    |> List.map snd
  in
  match candidates with
  | [] -> None
  | _ -> Some (List.nth candidates ((attempt - 1) mod List.length candidates)).id

(* Replication amplification: how many bytes the cluster moves per byte a
   client uploads — (client report bytes + replica fan-out bytes) / client
   report bytes.  With N replicas and write fan-out resending the client's
   report verbatim to the other N-1, the ratio is exactly N; anti-entropy
   snapshot traffic is deliberately excluded (it is repair cost, not write
   cost).  [nan] until the first client report arrives. *)
let replication_amplification t =
  let client = Simkit.Trace.counter t.trace "cluster_client_report_bytes" in
  let replica = Simkit.Trace.counter t.trace "cluster_replica_bytes" in
  if client = 0 then Float.nan
  else float_of_int (client + replica) /. float_of_int client

let update_amplification t =
  match t.metrics with
  | None -> ()
  | Some m ->
      let amp = replication_amplification t in
      if not (Float.is_nan amp) then
        Simkit.Metrics.set m "wire_replication_amplification" ~labels:[] amp

(* Write fan-out: the processing replica pushes the registration to every
   other replica.  Replication messages ride the transport (paying latency,
   loss and partitions); a replica that is down when the message lands
   simply misses the write — anti-entropy heals it later. *)
let fan_out ?parent t ~from_replica ~peer ~attach_router ~measurement =
  let landmark = Server.measurement_landmark measurement in
  let path = Server.measurement_path measurement in
  let probes_spent = Server.measurement_probes measurement in
  let src = t.replicas.(from_replica).router in
  let report = Wire.Path_report { peer; path } in
  let bytes = Wire.byte_size report in
  Simkit.Trace.add_count t.trace "cluster_client_report_bytes" bytes;
  Array.iter
    (fun (o : replica) ->
      if o.id <> from_replica then begin
        (* One replicate span per target, open from send to transport
           delivery — in a trace tree the replication lag is visible next
           to the join that caused it.  A message the transport drops
           leaves its span open (never emitted), like the write it lost. *)
        let span =
          Simkit.Span.start_span t.spans ~name:"replicate" ~ts:(now t) ?parent ~tid:peer
            [ ("peer", Simkit.Span.Int peer); ("to_replica", Simkit.Span.Int o.id) ]
        in
        let apply () =
          (if o.alive && not (Server.mem o.server peer) then begin
             Server.register_replica o.server ~peer ~attach_router ~landmark ~path ~probes_spent;
             Simkit.Trace.incr t.trace "cluster_replicate_apply";
             Simkit.Span.add_arg span "outcome" (Simkit.Span.Str "applied")
           end
           else begin
             Simkit.Trace.incr t.trace "cluster_replicate_skip";
             Simkit.Span.add_arg span "outcome" (Simkit.Span.Str "skipped")
           end);
          Simkit.Span.finish ~ts:(now t) span
        in
        Simkit.Trace.incr t.trace "cluster_replicate_send";
        Simkit.Trace.add_count t.trace "cluster_replica_bytes" bytes;
        match t.transport with
        | Some tr ->
            Simkit.Transport.send ~kind:(Wire.kind report) ~dir:"replica" tr ~src ~dst:o.router
              ~size_bytes:bytes apply
        | None -> apply ()
      end)
    t.replicas;
  update_amplification t

(* Batched write fan-out: the whole batch rides to each peer replica as one
   {!Wire.Path_report_batch} message — one transport send, one varint-packed
   payload — instead of one {!Wire.Path_report} per (peer, target).  The
   apply side is one [register_replica_batch] (skip-idempotent), so the
   replicate_apply/skip counters still add up per entry while the send
   counter counts messages, which is exactly the batching win. *)
let fan_out_batch ?parent t ~from_replica ~entries =
  let n = Array.length entries in
  if n > 0 then begin
    let src = t.replicas.(from_replica).router in
    let reports =
      Array.to_list (Array.map (fun (peer, _, m) -> (peer, Server.measurement_path m)) entries)
    in
    let batch = Wire.Path_report_batch { reports } in
    let bytes = Wire.byte_size batch in
    Simkit.Trace.add_count t.trace "cluster_client_report_bytes" bytes;
    let replica_entries =
      Array.map
        (fun (peer, attach_router, m) ->
          ( peer,
            attach_router,
            Server.measurement_landmark m,
            Server.measurement_path m,
            Server.measurement_probes m ))
        entries
    in
    Array.iter
      (fun (o : replica) ->
        if o.id <> from_replica then begin
          let span =
            Simkit.Span.start_span t.spans ~name:"replicate_batch" ~ts:(now t) ?parent
              [ ("ops", Simkit.Span.Int n); ("to_replica", Simkit.Span.Int o.id) ]
          in
          let apply () =
            (if o.alive then begin
               let applied = Server.register_replica_batch o.server replica_entries in
               Simkit.Trace.add_count t.trace "cluster_replicate_apply" applied;
               if applied < n then
                 Simkit.Trace.add_count t.trace "cluster_replicate_skip" (n - applied);
               Simkit.Span.add_arg span "applied" (Simkit.Span.Int applied)
             end
             else begin
               Simkit.Trace.add_count t.trace "cluster_replicate_skip" n;
               Simkit.Span.add_arg span "outcome" (Simkit.Span.Str "skipped")
             end);
            Simkit.Span.finish ~ts:(now t) span
          in
          Simkit.Trace.incr t.trace "cluster_replicate_send";
          Simkit.Trace.add_count t.trace "cluster_replica_bytes" bytes;
          match t.transport with
          | Some tr ->
              Simkit.Transport.send ~kind:(Wire.kind batch) ~dir:"replica" tr ~src ~dst:o.router
                ~size_bytes:bytes apply
          | None -> apply ()
        end)
      t.replicas;
    update_amplification t
  end

let handle_registration ?parent t ~replica ~peer ~attach_router ~measurement ~k =
  (* Sync the span sink's logical clock to the engine at message receipt,
     so server-side spans land at (roughly) the simulated time the request
     arrived rather than wherever the sink clock last stopped.  [advance]
     ignores negative deltas, so this only ever moves forward. *)
  Simkit.Span.advance t.spans (now t -. Simkit.Span.now t.spans);
  let r = t.replicas.(replica) in
  if not r.alive then None
  else begin
    if Server.mem r.server peer then
      (* A retry whose predecessor's reply was lost: idempotent re-answer. *)
      Simkit.Trace.incr t.trace "cluster_duplicate_register"
    else begin
      ignore (Server.register_measured ?parent r.server ~peer ~attach_router measurement);
      Simkit.Trace.incr t.trace "cluster_register";
      fan_out ?parent t ~from_replica:replica ~peer ~attach_router ~measurement
    end;
    Some (Option.get (Server.info r.server peer), Server.neighbors r.server ~peer ~k)
  end

(* Batched registration: the replica applies all fresh entries as one
   server-side batch, replicates them with one [fan_out_batch] (one message
   per peer replica instead of one per entry), and answers every query.
   Entries already registered — retries whose reply was lost — are counted
   duplicate and re-answered idempotently, exactly the singleton rule. *)
let handle_registration_batch ?parent t ~replica ~entries ~k =
  Simkit.Span.advance t.spans (now t -. Simkit.Span.now t.spans);
  let r = t.replicas.(replica) in
  if not r.alive then None
  else begin
    let fresh =
      Array.of_list
        (List.filter (fun (peer, _, _) -> not (Server.mem r.server peer)) (Array.to_list entries))
    in
    let dup = Array.length entries - Array.length fresh in
    if dup > 0 then Simkit.Trace.add_count t.trace "cluster_duplicate_register" dup;
    if Array.length fresh > 0 then begin
      ignore (Server.register_measured_batch ?parent r.server fresh);
      Simkit.Trace.add_count t.trace "cluster_register" (Array.length fresh);
      fan_out_batch ?parent t ~from_replica:replica ~entries:fresh
    end;
    Some
      (Array.map
         (fun (peer, _, _) ->
           (Option.get (Server.info r.server peer), Server.neighbors r.server ~peer ~k))
         entries)
  end

(* Direct path: both protocol rounds on one replica, exactly the pre-cluster
   [Server.join] + [Server.neighbors] sequence. *)
let handle_join ?rng t ~replica ~peer ~attach_router ~k =
  let r = t.replicas.(replica) in
  if not r.alive then None
  else begin
    let info = Server.join ?rng r.server ~peer ~attach_router in
    Some (info, Server.neighbors r.server ~peer ~k)
  end

(* --- Crash / recover --------------------------------------------------- *)

let crash t i =
  let r = t.replicas.(i) in
  if r.alive then begin
    r.alive <- false;
    Simkit.Trace.incr t.trace "cluster_crashes";
    record t ~args:[ ("replica", Simkit.Span.Int i) ] "crash";
    Log.debug (fun m -> m "replica %d crashed" i)
  end

let recover t i =
  let r = t.replicas.(i) in
  if not r.alive then begin
    r.alive <- true;
    r.recovered_at <- Some (now t);
    Simkit.Trace.incr t.trace "cluster_recoveries";
    record t ~args:[ ("replica", Simkit.Span.Int i) ] "recover";
    (* A fresh watch must not inherit the silence timer of the crashed
       incarnation: unwatch + watch restarts both loops from now. *)
    (match t.detector with
    | None -> ()
    | Some d ->
        Simkit.Failure_detector.unwatch d ~peer:r.id;
        watch_replica t r);
    Log.debug (fun m -> m "replica %d recovered" i)
  end

(* --- Divergence detection ---------------------------------------------- *)

(* The anti-entropy source rule, shared with the digest comparison so the
   divergence reference is the replica a sync round would copy from: most
   registered peers, ties to the lowest id. *)
let most_complete live =
  List.fold_left
    (fun best r ->
      let key r = (-Server.peer_count r.server, r.id) in
      if key r < key best then r else best)
    (List.hd live) (List.tl live)

(* One digest comparison across the live replicas.  O(replicas) int64
   compares — the registries maintain their digests incrementally — so this
   is cheap enough to piggyback on every sync round and on any
   failure-detector-rate poll an experiment wants.

   Episode edges are what get recorded: the first check that sees a
   mismatch emits one "divergence" event (with the offending replica ids)
   and starts the stopwatch; the first check that sees agreement again
   emits one "convergence" event and observes the elapsed engine time as
   ["cluster_antientropy_lag_ms"].  Checks inside an episode change
   nothing, so a flapping gauge cannot spam the flight recorder. *)
let digest_check t =
  let live = Array.to_list t.replicas |> List.filter (fun r -> r.alive) in
  let divergent =
    match live with
    | [] | [ _ ] -> []
    | live ->
        let reference = most_complete live in
        let reference_digest = Server.digest reference.server in
        live
        |> List.filter (fun r ->
               r.id <> reference.id && Server.digest r.server <> reference_digest)
        |> List.map (fun r -> r.id)
  in
  Simkit.Trace.incr t.trace "cluster_digest_checks";
  (match t.metrics with
  | None -> ()
  | Some m ->
      let result = if divergent = [] then "consistent" else "divergent" in
      Simkit.Metrics.incr m "cluster_digest_checks_total" ~labels:[ ("result", result) ];
      Simkit.Metrics.set m "cluster_divergent_replicas" ~labels:[]
        (float_of_int (List.length divergent)));
  (match (divergent, t.divergence_started_at) with
  | [], None -> ()
  | [], Some since ->
      let lag = now t -. since in
      Simkit.Trace.observe t.trace "cluster_antientropy_lag_ms" lag;
      record t ~args:[ ("lag_ms", Simkit.Span.Float lag) ] "convergence";
      Log.debug (fun m -> m "replicas reconverged after %.1f ms" lag);
      t.divergence_started_at <- None
  | ids, None ->
      t.divergence_started_at <- Some (now t);
      let replicas = String.concat "," (List.map string_of_int ids) in
      record t ~args:[ ("replicas", Simkit.Span.Str replicas) ] "divergence";
      Log.debug (fun m -> m "replicas diverged: %s" replicas)
  | _, Some _ -> (* still inside the episode: no new edge *) ());
  divergent

let divergence_since t = t.divergence_started_at

(* --- Anti-entropy ------------------------------------------------------ *)

(* One sync round:
   1. pick the most complete live replica as the source (max registered
      peers, ties to the lowest id);
   2. union phase: any peer a live replica holds that the source lacks is
      pushed into the source via [register_replica] (no write is ever lost
      to the wholesale restore that follows);
   3. catch-up phase: every live replica whose content digest still differs
      from the source's is rebuilt from the source's snapshot — the
      recovery path the issue names.  The digest gate is both finer and
      cheaper than the old peer-id comparison: it catches same-ids,
      different-paths divergence, and a straggler whose digest already
      matches skips the snapshot transfer entirely (counter
      ["cluster_sync_skipped"]).  A replica recovering here closes its
      [recovered_at] stopwatch into the ["cluster_recovery_ms"] stream.

   A digest comparison runs at both ends of the round, so divergence is
   detected no later than the next sync tick and reconvergence is recorded
   the moment the repair lands. *)
let sync_round t =
  Simkit.Span.with_span t.spans ~name:"sync_round"
    ~clock:(fun () -> now t)
    [ ("live", Simkit.Span.Int (live_count t)) ]
  @@ fun _ctx ->
  Simkit.Trace.incr t.trace "cluster_sync_rounds";
  ignore (digest_check t);
  (let live = Array.to_list t.replicas |> List.filter (fun r -> r.alive) in
  match live with
  | [] | [ _ ] ->
      (* Nothing to reconcile; a lone recovered replica is trivially in sync. *)
      List.iter
        (fun r ->
          match r.recovered_at with
          | Some since ->
              Simkit.Trace.observe t.trace "cluster_recovery_ms" (now t -. since);
              r.recovered_at <- None
          | None -> ())
        live
  | live -> (
      let source = most_complete live in
      (* Union: push peers the source is missing into the source. *)
      List.iter
        (fun r ->
          if r.id <> source.id then
            List.iter
              (fun peer ->
                if not (Server.mem source.server peer) then
                  match Server.info r.server peer with
                  | Some (info : Server.peer_info) ->
                      Server.register_replica source.server ~peer
                        ~attach_router:info.attach_router ~landmark:info.landmark
                        ~path:info.recorded_path ~probes_spent:info.probes_spent;
                      Simkit.Trace.incr t.trace "cluster_sync_union";
                      (* The push crosses the network in a deployment even
                         though the sim applies it synchronously: charge the
                         report's bytes to the transport as anti-entropy. *)
                      (match t.transport with
                      | Some tr ->
                          Simkit.Transport.charge ~kind:"snapshot" ~dir:"replica" tr
                            ~src:r.router ~dst:source.router
                            ~size_bytes:
                              (Wire.byte_size
                                 (Wire.Path_report { peer; path = info.recorded_path }))
                      | None -> ())
                  | None -> ())
              (Server.peer_ids r.server))
        live;
      match t.restore_server with
      | None -> ()
      | Some restore ->
          let source_digest = Server.digest source.server in
          let snapshot = lazy (Server.snapshot source.server) in
          List.iter
            (fun r ->
              (if r.id <> source.id then
                 if Server.digest r.server = source_digest then
                   (* Content already identical — the digest gate saves the
                      whole snapshot transfer. *)
                   Simkit.Trace.incr t.trace "cluster_sync_skipped"
                 else begin
                let data = Lazy.force snapshot in
                match restore data with
                | Ok server ->
                    (* State transfer replaces the registry, not the
                       replica's history: the replica stayed alive, so its
                       trace (served joins, latency sketches) must survive
                       the catch-up restore or per-replica scrapes go dark. *)
                    Simkit.Trace.merge_into ~into:(Server.trace server)
                      (Server.trace r.server);
                    (* The restored replica learned every report now,
                       whatever the original registration times elsewhere:
                       re-stamp under the engine clock. *)
                    Server.set_clock server (fun () -> now t);
                    Server.refresh_stamps server;
                    r.server <- server;
                    Simkit.Trace.incr t.trace "cluster_sync_restores";
                    Simkit.Trace.add_count t.trace "cluster_sync_bytes" (String.length data);
                    (match t.transport with
                    | Some tr ->
                        Simkit.Transport.charge ~kind:"snapshot" ~dir:"replica" tr
                          ~src:source.router ~dst:r.router ~size_bytes:(String.length data)
                    | None -> ());
                    record t
                      ~args:
                        [
                          ("replica", Simkit.Span.Int r.id);
                          ("source", Simkit.Span.Int source.id);
                          ("peers", Simkit.Span.Int (Server.peer_count server));
                        ]
                      "sync_restore";
                    Log.debug (fun m ->
                        m "replica %d restored from replica %d (%d peers)" r.id source.id
                          (Server.peer_count server))
                | Error e -> Log.err (fun m -> m "replica %d restore failed: %s" r.id e)
              end);
              match r.recovered_at with
              | Some since when Server.digest r.server = source_digest ->
                  Simkit.Trace.observe t.trace "cluster_recovery_ms" (now t -. since);
                  record t
                    ~args:
                      [
                        ("replica", Simkit.Span.Int r.id);
                        ("recovery_ms", Simkit.Span.Float (now t -. since));
                      ]
                    "back_in_sync";
                  r.recovered_at <- None
              | _ -> ())
            live));
  ignore (digest_check t)

let start_sync t ~period_ms ~until =
  if period_ms <= 0.0 then invalid_arg "Cluster.start_sync: period must be positive";
  match engine t with
  | None -> invalid_arg "Cluster.start_sync: single-server cluster has no engine"
  | Some e ->
      let rec tick at =
        if at <= until then
          Simkit.Engine.schedule_at e ~time:at (fun () ->
              sync_round t;
              tick (at +. period_ms))
      in
      tick (Simkit.Engine.now e +. period_ms)

let consistent t =
  let live = Array.to_list t.replicas |> List.filter (fun r -> r.alive) in
  match live with
  | [] -> true
  | first :: rest ->
      let reference = Server.peer_ids first.server in
      List.for_all (fun r -> Server.peer_ids r.server = reference) rest

let check_invariants t =
  Array.iter (fun r -> Server.check_invariants r.server) t.replicas
