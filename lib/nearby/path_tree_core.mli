(** Cost-generic core of the landmark path tree.

    {!Path_tree} (hop counts, the paper's metric) and {!Latency_tree}
    (milliseconds, ablation 1 in DESIGN.md) are both instances of this
    functor.  A registered path is a sequence of [(router, cost)] pairs
    where [cost] is the cumulative distance from the peer to that router;
    the structure of meeting points depends only on the router sequence,
    the metric only on the costs. *)

module type COST = sig
  type t

  val zero : t
  val add : t -> t -> t
  val compare : t -> t -> int
end

module Make (Cost : COST) : sig
  type t

  type peer = int

  val create : landmark:Topology.Graph.node -> t
  val landmark : t -> Topology.Graph.node
  val member_count : t -> int
  val mem : t -> peer -> bool
  val router_count : t -> int

  val insert : t -> peer:peer -> hops:(Topology.Graph.node * Cost.t) array -> unit
  (** [hops.(i)] is the i-th router of the peer's recorded path paired with
      the cost from the peer to it; the last entry must name the landmark.
      Costs must be non-decreasing from [hops.(0)] (normally [(attach,
      zero)]).
      @raise Invalid_argument on an empty path, a path not ending at the
      landmark, decreasing costs, or a duplicate peer. *)

  val insert_many : t -> (peer * (Topology.Graph.node * Cost.t) array) array -> unit
  (** Register a whole batch, equivalent to [insert] in array order but
      amortized: additions are grouped per router and merged into each
      bucket in one sorted pass, so co-attached peers (who share every
      router of their path) cost one merge per bucket instead of one
      descent per peer.  The batch is validated up front — including
      duplicate peers within the batch — and a failure leaves the tree
      untouched. *)

  val remove : t -> peer -> unit
  (** @raise Not_found when unregistered. *)

  val hops_of : t -> peer -> (Topology.Graph.node * Cost.t) array option

  val meeting_point : t -> peer -> peer -> (Topology.Graph.node * Cost.t * Cost.t) option
  (** Deepest common router of the two registered paths and each peer's cost
      to it; [None] when either peer is unregistered or the paths share no
      router. *)

  val dtree : t -> peer -> peer -> Cost.t option

  val query :
    t ->
    hops:(Topology.Graph.node * Cost.t) array ->
    k:int ->
    ?exclude:(peer -> bool) ->
    unit ->
    (peer * Cost.t) list
  (** At most [k] registered peers with the smallest inferred distance to
      the query path, ascending, ties toward the lower peer id. *)

  val candidate_compare : Cost.t * peer -> Cost.t * peer -> int
  (** Lexicographic (cost, peer) order used for all answers: build a
      {!Topk.t} with this compare to share an accumulator with
      {!query_into}. *)

  val query_into :
    t ->
    hops:(Topology.Graph.node * Cost.t) array ->
    best:(Cost.t * peer) Topk.t ->
    seen:(peer, unit) Hashtbl.t ->
    exclude:(peer -> bool) ->
    unit
  (** Offer this tree's candidates for the query path into a caller-owned
      accumulator.  [best] must order by {!candidate_compare}; [seen]
      dedupes peers across routers (and across trees when shared).  A
      caller scattering over several disjoint trees passes the same [best]
      and [seen] to each so the bound tightens as it goes; [query] is
      [query_into] on fresh state. *)

  val query_many :
    t ->
    queries:(Topology.Graph.node * Cost.t) array array ->
    k:int ->
    ?exclude:(int -> peer -> bool) ->
    unit ->
    (peer * Cost.t) list array
  (** One answer per query path, each equal to the corresponding [query]
      ([exclude] additionally receives the query index).  The selector and
      dedup table are reused across the batch. *)

  val query_member : t -> peer:peer -> k:int -> (peer * Cost.t) list
  (** @raise Not_found when unregistered. *)

  val iter_members : t -> (peer -> unit) -> unit

  val iter_buckets : t -> (Topology.Graph.node -> int -> unit) -> unit
  (** [f router size] per router bucket, unspecified order — the feed for
      registry introspection (occupancy histograms, hot routers). *)

  val approx_bytes : t -> int
  (** Rough payload size (paths + buckets) in bytes; an estimate for
      cross-backend comparison, not an exact heap measurement. *)

  val digest : t -> int64
  (** Order-independent content digest over the registered
      [(peer, routers)] entries (costs excluded — they are derived from
      the router sequence): XOR of {!Registry_intf.entry_digest} per
      member, maintained in O(1) on insert/remove. *)

  val check_invariants : t -> unit
  (** @raise Failure on a violated structural invariant (test hook). *)
end
