(* The paper's hop-count path tree: a thin wrapper over the cost-generic
   core, with cost = position in the recorded path. *)

module Core = Path_tree_core.Make (struct
  type t = int

  let zero = 0
  let add = ( + )
  let compare = compare
end)

type peer = int
type t = Core.t

let create = Core.create
let landmark = Core.landmark
let member_count = Core.member_count
let mem = Core.mem
let router_count = Core.router_count

let hops_of_routers routers = Array.mapi (fun i r -> (r, i)) routers

let insert t ~peer ~routers = Core.insert t ~peer ~hops:(hops_of_routers routers)
let remove = Core.remove
let path_of t peer = Option.map (Array.map fst) (Core.hops_of t peer)
let depth t peer = Option.map (fun h -> Array.length h - 1) (Core.hops_of t peer)
let meeting_point = Core.meeting_point
let dtree = Core.dtree

let query t ~routers ~k ?exclude () = Core.query t ~hops:(hops_of_routers routers) ~k ?exclude ()
let query_member t ~peer ~k = Core.query_member t ~peer ~k

let insert_many t entries =
  Core.insert_many t (Array.map (fun (peer, routers) -> (peer, hops_of_routers routers)) entries)

let query_many t ~queries ~k ?exclude () =
  Core.query_many t ~queries:(Array.map hops_of_routers queries) ~k ?exclude ()

let query_into t ~routers ~best ~seen ~exclude =
  Core.query_into t ~hops:(hops_of_routers routers) ~best ~seen ~exclude
let iter_members = Core.iter_members
let check_invariants = Core.check_invariants
let digest = Core.digest

(* --- Registry_intf.S ---------------------------------------------------- *)

let backend_name = "tree"
let stats t = [ ("members", member_count t); ("routers", router_count t) ]

let introspect t =
  Registry_intf.introspection_of_buckets ~members:(member_count t)
    ~approx_bytes:(Core.approx_bytes t) (Core.iter_buckets t)

let snapshot_version = 1

let snapshot t =
  let w = Prelude.Codec.Writer.create ~capacity:1024 () in
  let open Prelude.Codec.Writer in
  u8 w snapshot_version;
  varint w (landmark t);
  let entries = ref [] in
  iter_members t (fun peer -> entries := (peer, Option.get (path_of t peer)) :: !entries);
  list w
    (fun (peer, routers) ->
      varint w peer;
      list w (varint w) (Array.to_list routers))
    (List.sort compare !entries);
  contents w

let restore data =
  let open Prelude.Codec.Reader in
  let ( let* ) = Result.bind in
  let r = of_string data in
  let result =
    let* version = u8 r in
    if version <> snapshot_version then
      Error (Malformed (Printf.sprintf "unsupported registry snapshot version %d" version))
    else
      let* landmark = varint r in
      let* entries =
        list r (fun r ->
            let* peer = varint r in
            let* routers = list r varint in
            Ok (peer, routers))
      in
      if not (is_exhausted r) then Error (Malformed "trailing bytes") else Ok (landmark, entries)
  in
  match result with
  | Error e -> Error (error_to_string e)
  | Ok (landmark, entries) -> (
      let t = create ~landmark in
      match
        List.iter (fun (peer, routers) -> insert t ~peer ~routers:(Array.of_list routers)) entries
      with
      | () -> Ok t
      | exception Invalid_argument msg -> Error msg)
