(* The paper's hop-count path tree: a thin wrapper over the cost-generic
   core, with cost = position in the recorded path. *)

module Core = Path_tree_core.Make (struct
  type t = int

  let zero = 0
  let add = ( + )
  let compare = compare
end)

type peer = int
type t = Core.t

let create = Core.create
let landmark = Core.landmark
let member_count = Core.member_count
let mem = Core.mem
let router_count = Core.router_count

let hops_of_routers routers = Array.mapi (fun i r -> (r, i)) routers

let insert t ~peer ~routers = Core.insert t ~peer ~hops:(hops_of_routers routers)
let remove = Core.remove
let path_of t peer = Option.map (Array.map fst) (Core.hops_of t peer)
let depth t peer = Option.map (fun h -> Array.length h - 1) (Core.hops_of t peer)
let meeting_point = Core.meeting_point
let dtree = Core.dtree

let query t ~routers ~k ?exclude () = Core.query t ~hops:(hops_of_routers routers) ~k ?exclude ()
let query_member t ~peer ~k = Core.query_member t ~peer ~k
let iter_members = Core.iter_members
let check_invariants = Core.check_invariants
