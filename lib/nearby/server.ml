let log_src = Logs.Src.create "nearby.server" ~doc:"Management-server protocol events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type landmark_choice = Closest | Uniform

type peer_info = {
  attach_router : Topology.Graph.node;
  landmark : Topology.Graph.node;
  recorded_path : Traceroute.Path.t;
  probes_spent : int;
}

type t = {
  oracle : Traceroute.Route_oracle.t;
  latency : Topology.Latency.t option;
  truncate : Traceroute.Truncate.strategy;
  probe_config : Traceroute.Probe.config;
  choice : landmark_choice;
  choice_rng : Prelude.Prng.t;
  landmark_ids : Topology.Graph.node array;
  backend : (module Registry_intf.S);
  registries : (Topology.Graph.node, Registry_intf.t) Hashtbl.t;
  peers : (int, peer_info) Hashtbl.t;
  (* Engine time at which this server last learned each peer's report:
     stamped on every registration path (join, replica apply, restore,
     handover re-join), dropped on leave.  A side table, deliberately NOT
     part of [snapshot] — staleness is a property of the replica's view,
     not of the data, and serializing it would perturb every snapshot byte
     baseline.  [clock] defaults to a constant 0.0 until {!set_clock}
     wires the simulation engine in. *)
  registered_at : (int, float) Hashtbl.t;
  mutable clock : unit -> float;
  trace : Simkit.Trace.t;
  spans : Simkit.Span.sink;
  (* Peers whose join span is still open: closed by their first query (so
     the span encloses the whole two-round protocol), or by leave/flush.
     The context keeps the query and the close causally linked to the
     join's trace. *)
  open_joins : (int, float * Simkit.Span.context) Hashtbl.t;
}

let create ?(truncate = Traceroute.Truncate.Full) ?(probe_config = Traceroute.Probe.default_config)
    ?latency ?(choice = Closest) ?(backend = (module Path_tree : Registry_intf.S))
    ?(spans = Simkit.Span.noop) oracle ~landmarks =
  if Array.length landmarks = 0 then invalid_arg "Server.create: no landmarks";
  let distinct = Hashtbl.create 8 in
  Array.iter
    (fun lmk ->
      if Hashtbl.mem distinct lmk then invalid_arg "Server.create: duplicate landmark";
      Hashtbl.add distinct lmk ())
    landmarks;
  let trace = Simkit.Trace.create () in
  let registries = Hashtbl.create (Array.length landmarks) in
  Array.iter
    (fun lmk -> Hashtbl.add registries lmk (Registry_intf.create ~trace backend ~landmark:lmk))
    landmarks;
  {
    oracle;
    latency;
    truncate;
    probe_config;
    choice;
    choice_rng = Prelude.Prng.create 0x5eed;
    landmark_ids = Array.copy landmarks;
    backend;
    registries;
    peers = Hashtbl.create 256;
    registered_at = Hashtbl.create 256;
    clock = (fun () -> 0.0);
    trace;
    spans;
    open_joins = Hashtbl.create 16;
  }

let set_clock t clock = t.clock <- clock

(* Stamp (or re-stamp) a peer's report as learned now.  Counted so the
   staleness view can report a per-window refresh rate. *)
let stamp t peer =
  Hashtbl.replace t.registered_at peer (t.clock ());
  Simkit.Trace.incr t.trace "report_refresh"

let registration_time t peer = Hashtbl.find_opt t.registered_at peer
let iter_registration_times t f = Hashtbl.iter f t.registered_at

let refresh_stamps t =
  Hashtbl.iter (fun peer _ -> Hashtbl.replace t.registered_at peer (t.clock ())) t.peers

let graph t = Traceroute.Route_oracle.graph t.oracle
let landmarks t = Array.copy t.landmark_ids
let peer_count t = Hashtbl.length t.peers
let mem t peer = Hashtbl.mem t.peers peer
let info t peer = Hashtbl.find_opt t.peers peer
let trace t = t.trace
let registry_of t lmk = Hashtbl.find t.registries lmk

let backend_name t =
  let module B = (val t.backend : Registry_intf.S) in
  B.backend_name

(* Uniform per-backend metrics: the per-landmark [stats] assoc lists summed
   into one view, whatever the backend. *)
let registry_stats t =
  Registry_intf.merge_stats
    (Hashtbl.fold (fun _ reg acc -> Registry_intf.stats reg :: acc) t.registries [])

(* The per-landmark registries partition the peers, so the bucket-wise
   merge (occupancies add, hot lists re-rank) is the whole-server truth. *)
let introspection t =
  Registry_intf.merge_introspections
    (Hashtbl.fold (fun _ reg acc -> Registry_intf.introspect reg :: acc) t.registries [])

(* The per-landmark registries partition the peers, so the XOR-merge of
   their digests is the whole-server content digest — the value replicas
   compare to detect divergence. *)
let digest t =
  Hashtbl.fold
    (fun _ reg acc -> Registry_intf.combine_digests acc (Registry_intf.digest reg))
    t.registries Registry_intf.empty_digest

let peer_ids t = Hashtbl.fold (fun peer _ acc -> peer :: acc) t.peers [] |> List.sort compare

(* Everything one join measured, kept so spans and per-phase stats can
   report simulated durations alongside the recorded path. *)
type measurement = {
  lmk : Topology.Graph.node;
  reduced : Traceroute.Path.t;
  cost : int;  (* total probe packets *)
  round1_pings : int;
  ping_rtt_ms : float;  (* round-1 duration: RTT to the winning landmark *)
  traceroute_ms : float;
  full_hops : int;
}

(* Round 1 + recording: ping all landmarks, traceroute to the winner,
   truncate per the configured decreased-tool strategy. *)
let record_path ?rng t ~attach_router =
  let lmk, ping_rtt_ms =
    match t.choice with
    | Closest ->
        Landmark.closest t.oracle ?latency:t.latency ?rng ~landmarks:t.landmark_ids attach_router
    | Uniform -> (Prelude.Prng.choose t.choice_rng t.landmark_ids, 0.0)
  in
  let probe =
    Traceroute.Probe.run ~config:t.probe_config ?latency:t.latency ?rng t.oracle ~src:attach_router ~dst:lmk
  in
  let full_hops = Traceroute.Path.hop_count probe.path in
  let reduced = Traceroute.Truncate.apply ~graph:(graph t) t.truncate probe.path in
  (* Probe cost: one ping per landmark (round 1) plus the per-hop packets the
     decreased tool would really send. *)
  let round1_pings = match t.choice with Closest -> Array.length t.landmark_ids | Uniform -> 0 in
  let cost =
    round1_pings + (Traceroute.Truncate.probe_cost t.truncate ~full_hops * t.probe_config.probes_per_hop)
  in
  (* Traceroute duration: the measured RTT when a latency table produced
     one, else the hop-count convention (1 ms per link, there and back). *)
  let traceroute_ms =
    match probe.rtt_ms with Some rtt -> rtt | None -> 2.0 *. float_of_int full_hops
  in
  { lmk; reduced; cost; round1_pings; ping_rtt_ms; traceroute_ms; full_hops }

let measure = record_path
let measurement_landmark m = m.lmk
let measurement_path m = m.reduced
let measurement_probes m = m.cost
let measurement_duration_ms m = m.ping_rtt_ms +. m.traceroute_ms

let registrable_path ~landmark path =
  (* The tree stores identified routers only; an incomplete trace is repaired
     by appending the landmark itself (the newcomer knows whom it probed). *)
  let routers = Traceroute.Path.known_routers path in
  let n = Array.length routers in
  if n > 0 && routers.(n - 1) = landmark then routers
  else Array.append routers [| landmark |]

(* Emit the still-open join span of [peer], closing it at the current span
   clock; the span then encloses ping_round, traceroute, register and (when
   one happened before the close) the peer's first query. *)
let close_join_span t ~peer =
  match Hashtbl.find_opt t.open_joins peer with
  | None -> ()
  | Some (t0, ctx) ->
      Hashtbl.remove t.open_joins peer;
      let now = Simkit.Span.now t.spans in
      let args =
        match Hashtbl.find_opt t.peers peer with
        | None -> [ ("peer", Simkit.Span.Int peer) ]
        | Some info ->
            [
              ("peer", Simkit.Span.Int peer);
              ("landmark", Simkit.Span.Int info.landmark);
              ("probes_spent", Simkit.Span.Int info.probes_spent);
              ("hops", Simkit.Span.Int (Traceroute.Path.hop_count info.recorded_path));
            ]
      in
      Simkit.Span.emit t.spans ~name:"join" ~ts:t0 ~dur:(now -. t0) ~tid:peer ~ctx args

let flush_spans t =
  Hashtbl.fold (fun peer _ acc -> peer :: acc) t.open_joins []
  |> List.iter (fun peer -> close_join_span t ~peer)

(* Round 2 server side: store a client-measured path and answer the join
   counters/spans.  Split from [join] so a replicated cluster can measure
   once at the client and register the same measurement on any replica. *)
let register_measured ?parent t ~peer ~attach_router (r : measurement) =
  if Hashtbl.mem t.peers peer then
    invalid_arg "Server.register_measured: peer already registered";
  let landmark = r.lmk and recorded_path = r.reduced and probes_spent = r.cost in
  let routers = registrable_path ~landmark recorded_path in
  (* The join span's context roots the server-side subtree — under [parent]
     (the protocol/cluster span that carried the request here) when given,
     a fresh trace otherwise.  The registry write runs with the register
     span ambient, so timing middleware parents its op spans correctly. *)
  let join_ctx = Simkit.Span.context t.spans ?parent () in
  let register_ctx = Simkit.Span.context t.spans ~parent:join_ctx () in
  Simkit.Span.with_context t.spans register_ctx (fun () ->
      Registry_intf.insert (registry_of t landmark) ~peer ~routers);
  let info = { attach_router; landmark; recorded_path; probes_spent } in
  Hashtbl.add t.peers peer info;
  stamp t peer;
  Log.debug (fun m ->
      m "join peer=%d router=%d landmark=%d hops=%d probes=%d" peer attach_router landmark
        (Traceroute.Path.hop_count recorded_path)
        probes_spent);
  Simkit.Trace.incr t.trace "join";
  Simkit.Trace.add_count t.trace "probe_packets" probes_spent;
  Simkit.Trace.add_count t.trace "wire_bytes"
    (Wire.byte_size (Wire.Path_report { peer; path = recorded_path }));
  Simkit.Trace.observe t.trace "path_hops" (float_of_int (Traceroute.Path.hop_count recorded_path));
  (* Per-phase cost of the two-round protocol, in simulated milliseconds. *)
  Simkit.Trace.observe t.trace "ping_round_ms" r.ping_rtt_ms;
  Simkit.Trace.observe t.trace "traceroute_ms" r.traceroute_ms;
  Simkit.Trace.observe t.trace "join_ms" (r.ping_rtt_ms +. r.traceroute_ms);
  if Simkit.Span.enabled t.spans then begin
    let open Simkit.Span in
    let t0 = now t.spans in
    emit t.spans ~name:"ping_round" ~ts:t0 ~dur:r.ping_rtt_ms ~tid:peer
      ~ctx:(context t.spans ~parent:join_ctx ())
      [
        ("peer", Int peer);
        ("landmark", Int landmark);
        ("landmarks_pinged", Int r.round1_pings);
        ("rtt_ms", Float r.ping_rtt_ms);
        ("probes_spent", Int r.round1_pings);
      ];
    let t1 = t0 +. r.ping_rtt_ms in
    emit t.spans ~name:"traceroute" ~ts:t1 ~dur:r.traceroute_ms ~tid:peer
      ~ctx:(context t.spans ~parent:join_ctx ())
      [
        ("peer", Int peer);
        ("full_hops", Int r.full_hops);
        ("recorded_hops", Int (Traceroute.Path.hop_count recorded_path));
        ("probes_spent", Int (r.cost - r.round1_pings));
      ];
    emit t.spans ~name:"register" ~ts:(t1 +. r.traceroute_ms) ~tid:peer ~ctx:register_ctx
      [
        ("peer", Int peer);
        ("landmark", Int landmark);
        ("routers", Int (Array.length routers));
        ("probes_spent", Int probes_spent);
      ];
    advance t.spans (r.ping_rtt_ms +. r.traceroute_ms);
    Hashtbl.replace t.open_joins peer (t0, join_ctx)
  end;
  info

let join ?rng t ~peer ~attach_router =
  if Hashtbl.mem t.peers peer then invalid_arg "Server.join: peer already registered";
  register_measured t ~peer ~attach_router (measure ?rng t ~attach_router)

(* Replication apply: a peer measured and registered elsewhere lands here
   verbatim.  No join counters or spans — this is cluster traffic, not a
   protocol join — only the [replica_register] counter. *)
let register_replica t ~peer ~attach_router ~landmark ~path ~probes_spent =
  if Hashtbl.mem t.peers peer then
    invalid_arg "Server.register_replica: peer already registered";
  if not (Array.mem landmark t.landmark_ids) then
    invalid_arg "Server.register_replica: unknown landmark";
  let routers = registrable_path ~landmark path in
  Registry_intf.insert (registry_of t landmark) ~peer ~routers;
  Hashtbl.add t.peers peer { attach_router; landmark; recorded_path = path; probes_spent };
  stamp t peer;
  Simkit.Trace.incr t.trace "replica_register"

(* Batch round 2: a whole array of client-measured joins applied in one
   pass.  Per-peer effects (peers table, join/probe/path counters, the
   per-phase latency streams) are exactly [register_measured]'s, but the
   registry write is one [insert_many] per landmark, the wire accounting
   charges one packed [Path_report_batch] instead of n separate reports,
   and with spans enabled the batch emits a single "register_batch" span
   (no per-peer phase spans, no open join to close later).  The span clock
   advances by the slowest measurement — the batch is one round, its peers
   measured concurrently.  Returns the peer infos in entry order. *)
let register_measured_batch ?parent t entries =
  let n = Array.length entries in
  let batch_seen = Hashtbl.create (2 * n) in
  Array.iter
    (fun (peer, _, _) ->
      if Hashtbl.mem t.peers peer || Hashtbl.mem batch_seen peer then
        invalid_arg "Server.register_measured: peer already registered";
      Hashtbl.add batch_seen peer ())
    entries;
  (* Group per landmark, preserving entry order within each group. *)
  let by_landmark = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun (peer, _, (r : measurement)) ->
      let routers = registrable_path ~landmark:r.lmk r.reduced in
      match Hashtbl.find_opt by_landmark r.lmk with
      | Some group -> group := (peer, routers) :: !group
      | None ->
          Hashtbl.add by_landmark r.lmk (ref [ (peer, routers) ]);
          order := r.lmk :: !order)
    entries;
  let batch_ctx = Simkit.Span.context t.spans ?parent () in
  Simkit.Span.with_context t.spans batch_ctx (fun () ->
      List.iter
        (fun lmk ->
          let group = Array.of_list (List.rev !(Hashtbl.find by_landmark lmk)) in
          Registry_intf.insert_many (registry_of t lmk) group)
        (List.rev !order));
  let infos =
    Array.map
      (fun (peer, attach_router, (r : measurement)) ->
        let info =
          {
            attach_router;
            landmark = r.lmk;
            recorded_path = r.reduced;
            probes_spent = r.cost;
          }
        in
        Hashtbl.add t.peers peer info;
        stamp t peer;
        Simkit.Trace.incr t.trace "join";
        Simkit.Trace.add_count t.trace "probe_packets" r.cost;
        Simkit.Trace.observe t.trace "path_hops"
          (float_of_int (Traceroute.Path.hop_count r.reduced));
        Simkit.Trace.observe t.trace "ping_round_ms" r.ping_rtt_ms;
        Simkit.Trace.observe t.trace "traceroute_ms" r.traceroute_ms;
        Simkit.Trace.observe t.trace "join_ms" (r.ping_rtt_ms +. r.traceroute_ms);
        info)
      entries
  in
  let reports =
    Array.to_list (Array.map (fun (peer, _, (r : measurement)) -> (peer, r.reduced)) entries)
  in
  Simkit.Trace.add_count t.trace "wire_bytes"
    (Wire.byte_size (Wire.Path_report_batch { reports }));
  Log.debug (fun m -> m "join batch n=%d landmarks=%d" n (Hashtbl.length by_landmark));
  if Simkit.Span.enabled t.spans && n > 0 then begin
    let open Simkit.Span in
    let dur =
      Array.fold_left
        (fun acc (_, _, (r : measurement)) -> Float.max acc (r.ping_rtt_ms +. r.traceroute_ms))
        0.0 entries
    in
    emit t.spans ~name:"register_batch" ~ts:(now t.spans) ~dur ~ctx:batch_ctx
      [ ("ops", Int n); ("landmarks", Int (Hashtbl.length by_landmark)) ];
    advance t.spans dur
  end;
  infos

(* Batch replication apply: [register_replica] semantics with one
   [insert_many] per landmark.  Entries whose peer is already present are
   skipped — the idempotence a replayed fan-out needs — and the count of
   entries actually applied is returned. *)
let register_replica_batch t entries =
  let batch_seen = Hashtbl.create 16 in
  let fresh =
    List.filter
      (fun (peer, _, _, _, _) ->
        let keep = (not (Hashtbl.mem t.peers peer)) && not (Hashtbl.mem batch_seen peer) in
        if keep then Hashtbl.add batch_seen peer ();
        keep)
      (Array.to_list entries)
  in
  List.iter
    (fun (_, _, landmark, _, _) ->
      if not (Array.mem landmark t.landmark_ids) then
        invalid_arg "Server.register_replica: unknown landmark")
    fresh;
  let by_landmark = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (peer, _, landmark, path, _) ->
      let routers = registrable_path ~landmark path in
      match Hashtbl.find_opt by_landmark landmark with
      | Some group -> group := (peer, routers) :: !group
      | None ->
          Hashtbl.add by_landmark landmark (ref [ (peer, routers) ]);
          order := landmark :: !order)
    fresh;
  List.iter
    (fun lmk ->
      let group = Array.of_list (List.rev !(Hashtbl.find by_landmark lmk)) in
      Registry_intf.insert_many (registry_of t lmk) group)
    (List.rev !order);
  List.iter
    (fun (peer, attach_router, landmark, path, probes_spent) ->
      Hashtbl.add t.peers peer { attach_router; landmark; recorded_path = path; probes_spent };
      stamp t peer)
    fresh;
  Simkit.Trace.add_count t.trace "replica_register" (List.length fresh);
  List.length fresh

(* Landmarks ordered by hop distance from the peer's landmark: the top-up
   order when the home tree runs dry. *)
let topup_order t ~home =
  let others = Array.to_list t.landmark_ids |> List.filter (fun l -> l <> home) in
  List.sort
    (fun a b ->
      compare
        (Traceroute.Route_oracle.route_length t.oracle ~src:home ~dst:a)
        (Traceroute.Route_oracle.route_length t.oracle ~src:home ~dst:b))
    others

let neighbors_of_path t ~path ~k ?(exclude = fun _ -> false) () =
  Simkit.Trace.incr t.trace "query";
  let landmark = path.Traceroute.Path.dst in
  let routers = registrable_path ~landmark path in
  let home =
    match Hashtbl.find_opt t.registries landmark with
    | Some reg -> reg
    | None -> invalid_arg "Server.neighbors_of_path: unknown landmark"
  in
  let result = Registry_intf.query home ~routers ~k ~exclude () in
  if List.length result >= k then result
  else begin
    (* Top up from the other landmark registries, closest landmark first. *)
    let missing = ref (k - List.length result) in
    let already = Hashtbl.create 16 in
    List.iter (fun (p, _) -> Hashtbl.add already p ()) result;
    let extra = ref [] in
    List.iter
      (fun lmk ->
        if !missing > 0 then begin
          let reg = registry_of t lmk in
          (* Ascending peer id, not table order: the answer must not depend
             on the backend's internal hashing. *)
          let members = ref [] in
          Registry_intf.iter_members reg (fun p -> members := p :: !members);
          List.iter
            (fun p ->
              if !missing > 0 && (not (Hashtbl.mem already p)) && not (exclude p) then begin
                Hashtbl.add already p ();
                extra := (p, max_int) :: !extra;
                decr missing;
                Simkit.Trace.incr t.trace "cross_tree_topup"
              end)
            (List.sort compare !members)
        end)
      (topup_order t ~home:landmark);
    result @ List.rev !extra
  end

let neighbors t ~peer ~k =
  match Hashtbl.find_opt t.peers peer with
  | None -> raise Not_found
  | Some info ->
      (* The query joins the peer's still-open join trace when there is
         one; a later re-query starts a trace of its own.  Running the
         lookup with the context ambient parents any registry op spans. *)
      let parent =
        Option.map (fun (_, ctx) -> ctx) (Hashtbl.find_opt t.open_joins peer)
      in
      let query_ctx = Simkit.Span.context t.spans ?parent () in
      let reply =
        Simkit.Span.with_context t.spans query_ctx (fun () ->
            neighbors_of_path t ~path:info.recorded_path ~k ~exclude:(fun p -> p = peer) ())
      in
      Simkit.Trace.add_count t.trace "wire_bytes"
        (Wire.byte_size (Wire.Neighbor_request { peer; k })
        + Wire.byte_size
            (Wire.Neighbor_reply
               { peer; neighbors = List.map (fun (p, d) -> (p, min d 0x3FFFFFF)) reply }));
      if Simkit.Span.enabled t.spans then begin
        let open Simkit.Span in
        let tq = now t.spans in
        let dtree_best = match reply with (_, d) :: _ -> d | [] -> -1 in
        emit t.spans ~name:"query" ~ts:tq ~tid:peer ~ctx:query_ctx
          [
            ("peer", Int peer);
            ("k", Int k);
            ("candidates", Int (List.length reply));
            ("dtree_best", Int dtree_best);
            ("probes_spent", Int info.probes_spent);
          ];
        (* The first query completes the newcomer's discovery: close its
           join span here so the span covers the whole protocol. *)
        close_join_span t ~peer;
        advance t.spans 1.0
      end;
      reply

let reverse_introductions t ~peer ~k =
  match Hashtbl.find_opt t.peers peer with
  | None -> raise Not_found
  | Some info ->
      let reg = registry_of t info.landmark in
      (* Candidates: anyone near the newcomer (take extra in case of ties);
         keep those whose own k-NN now contains the newcomer. *)
      let nearby = Registry_intf.query_member reg ~peer ~k:(2 * k) in
      List.filter
        (fun (candidate, _) ->
          Registry_intf.query_member reg ~peer:candidate ~k
          |> List.exists (fun (p, _) -> p = peer))
        nearby
      |> List.filteri (fun i _ -> i < k)

let leave t ~peer =
  match Hashtbl.find_opt t.peers peer with
  | None -> raise Not_found
  | Some info ->
      close_join_span t ~peer;
      Registry_intf.remove (registry_of t info.landmark) peer;
      Hashtbl.remove t.peers peer;
      Hashtbl.remove t.registered_at peer;
      Log.debug (fun m -> m "leave peer=%d landmark=%d" peer info.landmark);
      Simkit.Trace.incr t.trace "leave"

let handover ?rng t ~peer ~attach_router =
  if not (Hashtbl.mem t.peers peer) then raise Not_found;
  leave t ~peer;
  let info = join ?rng t ~peer ~attach_router in
  Simkit.Trace.incr t.trace "handover";
  info

let check_invariants t =
  Hashtbl.iter (fun _ reg -> Registry_intf.check_invariants reg) t.registries;
  Hashtbl.iter
    (fun peer (info : peer_info) ->
      if not (Registry_intf.mem (registry_of t info.landmark) peer) then
        failwith (Printf.sprintf "peer %d missing from its landmark tree" peer);
      Array.iter
        (fun lmk ->
          if lmk <> info.landmark && Registry_intf.mem (registry_of t lmk) peer then
            failwith (Printf.sprintf "peer %d registered in a foreign tree" peer))
        t.landmark_ids)
    t.peers

(* --- Persistence ------------------------------------------------------ *)

let snapshot_version = 1

let snapshot t =
  let w = Prelude.Codec.Writer.create ~capacity:4096 () in
  let open Prelude.Codec.Writer in
  u8 w snapshot_version;
  list w (varint w) (Array.to_list t.landmark_ids);
  let entries = Hashtbl.fold (fun peer info acc -> (peer, info) :: acc) t.peers [] in
  let entries = List.sort compare entries in
  list w
    (fun (peer, info) ->
      varint w peer;
      varint w info.attach_router;
      varint w info.landmark;
      varint w info.probes_spent;
      bytes w (Wire.encode (Wire.Path_report { peer; path = info.recorded_path })))
    entries;
  contents w

let restore ?truncate ?probe_config ?latency ?choice ?backend ?spans oracle data =
  let open Prelude.Codec.Reader in
  let ( let* ) = Result.bind in
  let r = of_string data in
  let result =
    let* version = u8 r in
    if version <> snapshot_version then
      Error (Malformed (Printf.sprintf "unsupported snapshot version %d" version))
    else
      let* landmark_list = list r varint in
      let* entries =
        list r (fun r ->
            let* peer = varint r in
            let* attach_router = varint r in
            let* landmark = varint r in
            let* probes_spent = varint r in
            let* encoded_path = bytes r in
            Ok (peer, attach_router, landmark, probes_spent, encoded_path))
      in
      if not (is_exhausted r) then Error (Malformed "trailing bytes")
      else Ok (landmark_list, entries)
  in
  match result with
  | Error e -> Error (error_to_string e)
  | Ok (landmark_list, entries) -> (
      match
        create ?truncate ?probe_config ?latency ?choice ?backend ?spans oracle
          ~landmarks:(Array.of_list landmark_list)
      with
      | exception Invalid_argument msg -> Error msg
      | t -> (
          let rebuild () =
            List.iter
              (fun (peer, attach_router, landmark, probes_spent, encoded_path) ->
                match Wire.decode encoded_path with
                | Ok (Wire.Path_report { peer = p; path }) when p = peer ->
                    if not (Array.mem landmark t.landmark_ids) then
                      failwith "snapshot references an unknown landmark";
                    let routers = registrable_path ~landmark path in
                    Registry_intf.insert (registry_of t landmark) ~peer ~routers;
                    Hashtbl.add t.peers peer
                      { attach_router; landmark; recorded_path = path; probes_spent };
                    (* Stamp directly: a restore rebuild is not a client
                       refresh, so it must not count as [report_refresh]. *)
                    Hashtbl.replace t.registered_at peer (t.clock ())
                | Ok _ -> failwith "snapshot entry is not a path report"
                | Error e -> failwith e)
              entries
          in
          match rebuild () with
          | () -> Ok t
          | exception Failure msg -> Error msg
          | exception Invalid_argument msg -> Error msg))
