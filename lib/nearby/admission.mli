(** Bounded admission control in front of the management tier.

    An open-loop arrival process can outrun the registration service; an
    unbounded queue then converts overload into unbounded queueing delay.
    This module is the guard: a FIFO queue of bounded [capacity] drained in
    batches at a configured service rate on the engine clock, with a
    pluggable shedding policy deciding which requests never reach the
    server:

    - {!Drop_tail}: reject only when the queue is full (reason
      ["queue_full"]).  Admitted p99 grows to the full queue drain time.
    - {!Deadline}: additionally expire requests at dequeue whose queueing
      delay already exceeds [max_wait_ms] (reason ["deadline"]) — stale
      work is dropped rather than served late.
    - {!Slo_shed}: a {!Simkit.Slo} burn-rate monitor over the
      queueing-delay series; while in breach, incoming requests are shed
      (reason ["slo"]).  Hysteresis is the burn rate's: clearing requires
      enough clean windows inside the lookback to drop below the
      threshold, so the shedder does not flap on a single good window.

    Served requests get their queueing delay ([queued_ms], measured
    submit-to-dequeue on the engine clock) passed to their [serve]
    callback; shed requests get the reason.  Exactly one of the two fires
    per submit.

    Observability: with a [metrics] registry, the queue emits gauge
    [admission_queue_depth], counters [admission_submitted_total],
    [admission_admitted_total], [admission_shed_total{reason=...}] and
    [admission_slo_transitions_total{edge=...}], plus the pure dequeue
    wait stream [admission_wait_ms].  The timeseries carries windowed
    [admission_queue_depth] and [admission_wait_ms] series — the latter is
    the {e control signal}: dequeue waits plus, for {!Slo_shed}, a
    poll-time sample of the queue head's age (0 when idle) so the monitor
    sees fresh windows while requests wait or the queue sits empty.
    Shed-state transitions land in the flight recorder (kind
    ["admission"]). *)

type policy =
  | Drop_tail
  | Deadline of { max_wait_ms : float }
  | Slo_shed of { spec : Simkit.Slo.spec; poll_every_ms : float }

val slo_shed :
  ?lookback:int ->
  ?burn_threshold:float ->
  ?poll_every_ms:float ->
  wait_p99_limit_ms:float ->
  unit ->
  policy
(** The standard SLO shedder: p99 of {!wait_series_name} capped at
    [wait_p99_limit_ms], defaults [lookback = 4], [burn_threshold = 0.5],
    [poll_every_ms = 100.0]. *)

val policy_kind : policy -> string
(** ["drop-tail"], ["deadline"] or ["slo"]. *)

type config = {
  capacity : int;  (** Queue slots; submits beyond shed as ["queue_full"]. *)
  service_rate_per_s : float;  (** Drain throughput. *)
  batch : int;  (** Requests served per drain tick. *)
  policy : policy;
}

val validate : config -> unit
(** @raise Invalid_argument on non-positive capacity, rate, batch or
    deadline, or a non-positive poll period. *)

type t

val create :
  engine:Simkit.Engine.t ->
  ?metrics:Simkit.Metrics.t ->
  ?timeseries:Simkit.Timeseries.t ->
  ?recorder:Simkit.Flight_recorder.t ->
  ?on_drain:(served:int -> unit) ->
  config ->
  t
(** [timeseries] (default: a private 500 ms-window ring) receives the
    windowed depth/wait series and is what an {!Slo_shed} policy is judged
    on — pass the experiment's own ring to share windows with its SLOs.
    [on_drain ~served] fires after each drain tick that served at least
    one request, once all the tick's [serve] callbacks have run — the hook
    batch consumers (one [register_measured_batch] per tick) attach to. *)

val submit : t -> serve:(queued_ms:float -> unit) -> shed:(reason:string -> unit) -> unit
(** Offer one request at the current engine time. *)

val depth : t -> int
val shedding : t -> bool
(** Whether an {!Slo_shed} policy is currently rejecting arrivals. *)

val tick_ms : t -> float
(** The drain period, [1000 * batch / service_rate_per_s] — also the
    minimum latency a request spends in the queue. *)

type totals = {
  submitted : int;
  admitted : int;
  shed : (string * int) list;  (** Per reason, alphabetical. *)
  shed_total : int;
  max_depth : int;
  drains : int;
  slo_sheds_opened : int;  (** Breach edges seen by an {!Slo_shed} policy. *)
}

val totals : t -> totals

val wait_series_name : string
(** ["admission_wait_ms"]. *)

val depth_series_name : string
(** ["admission_queue_depth"]. *)
