(* Per-landmark super-peer delegation (extension E2).

   The region store is the [Registry] adapter below: one path tree plus the
   join/query load counters a delegated super-peer would report.  It
   implements [Registry_intf.S], so a "super" region store can also back
   the central server or any experiment through the shared seam. *)

module Registry = struct
  type t = {
    tree : Path_tree.t;
    mutable joins_handled : int;
    mutable queries_handled : int;
  }

  let backend_name = "super"

  let create ~landmark =
    { tree = Path_tree.create ~landmark; joins_handled = 0; queries_handled = 0 }

  let landmark t = Path_tree.landmark t.tree

  let insert t ~peer ~routers =
    Path_tree.insert t.tree ~peer ~routers;
    t.joins_handled <- t.joins_handled + 1

  let remove t peer = Path_tree.remove t.tree peer
  let mem t peer = Path_tree.mem t.tree peer
  let member_count t = Path_tree.member_count t.tree
  let path_of t peer = Path_tree.path_of t.tree peer
  let iter_members t f = Path_tree.iter_members t.tree f
  let dtree t p1 p2 = Path_tree.dtree t.tree p1 p2

  let query t ~routers ~k ?exclude () =
    t.queries_handled <- t.queries_handled + 1;
    Path_tree.query t.tree ~routers ~k ?exclude ()

  let query_member t ~peer ~k =
    t.queries_handled <- t.queries_handled + 1;
    Path_tree.query_member t.tree ~peer ~k

  (* Native batches delegate to the tree's; the load counters advance by
     the batch size so delegation accounting matches looped singletons. *)
  let insert_many t entries =
    Path_tree.insert_many t.tree entries;
    t.joins_handled <- t.joins_handled + Array.length entries

  let query_many t ~queries ~k ?exclude () =
    t.queries_handled <- t.queries_handled + Array.length queries;
    Path_tree.query_many t.tree ~queries ~k ?exclude ()

  let query_into t ~routers ~best ~seen ~exclude =
    t.queries_handled <- t.queries_handled + 1;
    Path_tree.query_into t.tree ~routers ~best ~seen ~exclude

  let stats t =
    [
      ("joins_handled", t.joins_handled);
      ("members", member_count t);
      ("queries_handled", t.queries_handled);
      ("routers", Path_tree.router_count t.tree);
    ]

  let introspect t = Path_tree.introspect t.tree
  let digest t = Path_tree.digest t.tree
  let check_invariants t = Path_tree.check_invariants t.tree

  let snapshot_version = 1

  let snapshot t =
    let w = Prelude.Codec.Writer.create ~capacity:1024 () in
    let open Prelude.Codec.Writer in
    u8 w snapshot_version;
    varint w t.joins_handled;
    varint w t.queries_handled;
    bytes w (Path_tree.snapshot t.tree);
    contents w

  let restore data =
    let open Prelude.Codec.Reader in
    let ( let* ) = Result.bind in
    let r = of_string data in
    let result =
      let* version = u8 r in
      if version <> snapshot_version then
        Error (Malformed (Printf.sprintf "unsupported registry snapshot version %d" version))
      else
        let* joins_handled = varint r in
        let* queries_handled = varint r in
        let* tree_blob = bytes r in
        if not (is_exhausted r) then Error (Malformed "trailing bytes")
        else Ok (joins_handled, queries_handled, tree_blob)
    in
    match result with
    | Error e -> Error (error_to_string e)
    | Ok (joins_handled, queries_handled, tree_blob) -> (
        match Path_tree.restore tree_blob with
        | Error e -> Error e
        | Ok tree -> Ok { tree; joins_handled; queries_handled })
end

type region = {
  landmark : Topology.Graph.node;
  super_router : Topology.Graph.node;
  store : Registry.t;
}

type region_load = {
  landmark : Topology.Graph.node;
  super_router : Topology.Graph.node;
  members : int;
  joins_handled : int;
  queries_handled : int;
}

type t = {
  oracle : Traceroute.Route_oracle.t;
  latency : Topology.Latency.t option;
  truncate : Traceroute.Truncate.strategy;
  regions : region array;
  by_landmark : (Topology.Graph.node, region) Hashtbl.t;
  directory : (int, region) Hashtbl.t;  (* peer -> home region *)
}

let create ?(truncate = Traceroute.Truncate.Full) ?latency oracle ~landmarks ~super_routers =
  let n = Array.length landmarks in
  if n = 0 then invalid_arg "Super_peer.create: no landmarks";
  if Array.length super_routers <> n then
    invalid_arg "Super_peer.create: need one super router per landmark";
  let regions : region array =
    Array.init n (fun i ->
        {
          landmark = landmarks.(i);
          super_router = super_routers.(i);
          store = Registry.create ~landmark:landmarks.(i);
        })
  in
  let by_landmark = Hashtbl.create n in
  Array.iter (fun (r : region) -> Hashtbl.add by_landmark r.landmark r) regions;
  { oracle; latency; truncate; regions; by_landmark; directory = Hashtbl.create 256 }

let landmark_ids t = Array.map (fun (r : region) -> r.landmark) t.regions

let join ?rng t ~peer ~attach_router =
  if Hashtbl.mem t.directory peer then invalid_arg "Super_peer.join: peer already registered";
  let lmk, _ =
    Landmark.closest t.oracle ?latency:t.latency ?rng ~landmarks:(landmark_ids t) attach_router
  in
  let region = Hashtbl.find t.by_landmark lmk in
  let probe = Traceroute.Probe.run ?latency:t.latency ?rng t.oracle ~src:attach_router ~dst:lmk in
  let reduced =
    Traceroute.Truncate.apply ~graph:(Traceroute.Route_oracle.graph t.oracle) t.truncate probe.path
  in
  let routers = Traceroute.Path.known_routers reduced in
  let routers =
    let n = Array.length routers in
    if n > 0 && routers.(n - 1) = lmk then routers else Array.append routers [| lmk |]
  in
  Registry.insert region.store ~peer ~routers;
  Hashtbl.add t.directory peer region;
  lmk

let neighbors t ~peer ~k =
  match Hashtbl.find_opt t.directory peer with
  | None -> raise Not_found
  | Some region -> Registry.query_member region.store ~peer ~k

let leave t ~peer =
  match Hashtbl.find_opt t.directory peer with
  | None -> raise Not_found
  | Some region ->
      Registry.remove region.store peer;
      Hashtbl.remove t.directory peer

let peer_count t = Hashtbl.length t.directory

let loads t =
  Array.to_list
    (Array.map
       (fun (r : region) ->
         {
           landmark = r.landmark;
           super_router = r.super_router;
           members = Registry.member_count r.store;
           joins_handled = r.store.Registry.joins_handled;
           queries_handled = r.store.Registry.queries_handled;
         })
       t.regions)

let load_imbalance t =
  let members =
    Array.map (fun (r : region) -> float_of_int (Registry.member_count r.store)) t.regions
  in
  let total = Array.fold_left ( +. ) 0.0 members in
  if total = 0.0 then 0.0
  else begin
    let mean = total /. float_of_int (Array.length members) in
    Array.fold_left Float.max 0.0 members /. mean
  end
