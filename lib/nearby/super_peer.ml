type region = {
  landmark : Topology.Graph.node;
  super_router : Topology.Graph.node;
  tree : Path_tree.t;
  mutable joins_handled : int;
  mutable queries_handled : int;
}

type region_load = {
  landmark : Topology.Graph.node;
  super_router : Topology.Graph.node;
  members : int;
  joins_handled : int;
  queries_handled : int;
}

type t = {
  oracle : Traceroute.Route_oracle.t;
  latency : Topology.Latency.t option;
  truncate : Traceroute.Truncate.strategy;
  regions : region array;
  by_landmark : (Topology.Graph.node, region) Hashtbl.t;
  directory : (int, region) Hashtbl.t;  (* peer -> home region *)
}

let create ?(truncate = Traceroute.Truncate.Full) ?latency oracle ~landmarks ~super_routers =
  let n = Array.length landmarks in
  if n = 0 then invalid_arg "Super_peer.create: no landmarks";
  if Array.length super_routers <> n then
    invalid_arg "Super_peer.create: need one super router per landmark";
  let regions : region array =
    Array.init n (fun i ->
        {
          landmark = landmarks.(i);
          super_router = super_routers.(i);
          tree = Path_tree.create ~landmark:landmarks.(i);
          joins_handled = 0;
          queries_handled = 0;
        })
  in
  let by_landmark = Hashtbl.create n in
  Array.iter (fun (r : region) -> Hashtbl.add by_landmark r.landmark r) regions;
  { oracle; latency; truncate; regions; by_landmark; directory = Hashtbl.create 256 }

let landmark_ids t = Array.map (fun (r : region) -> r.landmark) t.regions

let join ?rng t ~peer ~attach_router =
  if Hashtbl.mem t.directory peer then invalid_arg "Super_peer.join: peer already registered";
  let lmk, _ =
    Landmark.closest t.oracle ?latency:t.latency ?rng ~landmarks:(landmark_ids t) attach_router
  in
  let region = Hashtbl.find t.by_landmark lmk in
  let probe = Traceroute.Probe.run ?latency:t.latency ?rng t.oracle ~src:attach_router ~dst:lmk in
  let reduced =
    Traceroute.Truncate.apply ~graph:(Traceroute.Route_oracle.graph t.oracle) t.truncate probe.path
  in
  let routers = Traceroute.Path.known_routers reduced in
  let routers =
    let n = Array.length routers in
    if n > 0 && routers.(n - 1) = lmk then routers else Array.append routers [| lmk |]
  in
  Path_tree.insert region.tree ~peer ~routers;
  region.joins_handled <- region.joins_handled + 1;
  Hashtbl.add t.directory peer region;
  lmk

let neighbors t ~peer ~k =
  match Hashtbl.find_opt t.directory peer with
  | None -> raise Not_found
  | Some region ->
      region.queries_handled <- region.queries_handled + 1;
      Path_tree.query_member region.tree ~peer ~k

let leave t ~peer =
  match Hashtbl.find_opt t.directory peer with
  | None -> raise Not_found
  | Some region ->
      Path_tree.remove region.tree peer;
      Hashtbl.remove t.directory peer

let peer_count t = Hashtbl.length t.directory

let loads t =
  Array.to_list
    (Array.map
       (fun (r : region) ->
         {
           landmark = r.landmark;
           super_router = r.super_router;
           members = Path_tree.member_count r.tree;
           joins_handled = r.joins_handled;
           queries_handled = r.queries_handled;
         })
       t.regions)

let load_imbalance t =
  let members = Array.map (fun (r : region) -> float_of_int (Path_tree.member_count r.tree)) t.regions in
  let total = Array.fold_left ( +. ) 0.0 members in
  if total = 0.0 then 0.0
  else begin
    let mean = total /. float_of_int (Array.length members) in
    Array.fold_left Float.max 0.0 members /. mean
  end
