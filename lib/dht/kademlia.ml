let bits = 32
let hash_id = Chord.hash_key

type node = {
  app_id : int;
  node_id : int;
  (* buckets.(i): contacts at XOR distance in [2^i, 2^(i+1)), XOR-closest
     first, at most bucket_size. *)
  buckets : int array array;  (* contact app ids *)
}

type t = { nodes : (int, node) Hashtbl.t; sorted_members : int array; bucket_size : int }

let octave_of distance =
  (* floor log2, distance >= 1 *)
  let rec loop d acc = if d <= 1 then acc else loop (d lsr 1) (acc + 1) in
  loop distance 0

let build ?(bucket_size = 8) members =
  let n = Array.length members in
  if n = 0 then invalid_arg "Kademlia.build: no members";
  if bucket_size < 1 then invalid_arg "Kademlia.build: bucket_size must be >= 1";
  let seen = Hashtbl.create n in
  Array.iter
    (fun m ->
      if Hashtbl.mem seen m then invalid_arg "Kademlia.build: duplicate member";
      Hashtbl.add seen m ())
    members;
  let node_id_of = Hashtbl.create n in
  Array.iter (fun m -> Hashtbl.add node_id_of m (hash_id (m lxor 0x2b2b2b))) members;
  let nodes = Hashtbl.create n in
  Array.iter
    (fun m ->
      let my_id = Hashtbl.find node_id_of m in
      let candidates = Array.make bits [] in
      Array.iter
        (fun other ->
          if other <> m then begin
            let d = my_id lxor Hashtbl.find node_id_of other in
            if d > 0 then begin
              let o = octave_of d in
              candidates.(o) <- (d, other) :: candidates.(o)
            end
          end)
        members;
      let buckets =
        Array.map
          (fun entries ->
            List.sort compare entries
            |> List.filteri (fun i _ -> i < bucket_size)
            |> List.map snd |> Array.of_list)
          candidates
      in
      Hashtbl.add nodes m { app_id = m; node_id = my_id; buckets })
    members;
  let sorted_members = Array.copy members in
  Array.sort compare sorted_members;
  { nodes; sorted_members; bucket_size }

let member_count t = Array.length t.sorted_members
let members t = Array.copy t.sorted_members

let node t m =
  match Hashtbl.find_opt t.nodes m with
  | Some n -> n
  | None -> invalid_arg "Kademlia: unknown member"

let owner_of t ~key =
  let target = hash_id key in
  let best = ref None in
  Hashtbl.iter
    (fun _ n ->
      let d = n.node_id lxor target in
      match !best with
      | Some (bd, bid) when (bd, bid) <= (d, n.app_id) -> ()
      | _ -> best := Some (d, n.app_id))
    t.nodes;
  match !best with Some (_, id) -> id | None -> assert false

let lookup t ~from ~key =
  let target = hash_id key in
  let rec step current hops =
    let cn = node t current in
    let current_d = cn.node_id lxor target in
    if current_d = 0 then (current, hops)
    else begin
      (* The candidate bucket for the target's octave, then any closer
         contact anywhere in the table. *)
      let best = ref (current_d, current) in
      Array.iter
        (fun bucket ->
          Array.iter
            (fun contact ->
              let d = (node t contact).node_id lxor target in
              if (d, contact) < !best then best := (d, contact))
            bucket)
        cn.buckets;
      let _, next = !best in
      if next = current then (current, hops) else step next (hops + 1)
    end
  in
  if not (Hashtbl.mem t.nodes from) then invalid_arg "Kademlia.lookup: unknown member";
  step from 0

let bucket_of t ~member ~index =
  let n = node t member in
  if index < 0 || index >= bits then invalid_arg "Kademlia.bucket_of: bad index";
  Array.to_list n.buckets.(index)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  Hashtbl.iter
    (fun m n ->
      Array.iteri
        (fun i bucket ->
          if Array.length bucket > t.bucket_size then fail "member %d bucket %d over capacity" m i;
          Array.iter
            (fun contact ->
              if contact = m then fail "member %d contains itself" m;
              let d = n.node_id lxor (node t contact).node_id in
              if d = 0 || octave_of d <> i then fail "member %d bucket %d octave mismatch" m i)
            bucket)
        n.buckets)
    t.nodes
