(** Chord ring (Stoica et al., SIGCOMM 2001) — the overlay substrate for
    decentralizing the management server.

    The paper centralizes path storage in one server and gestures at
    super-peers; the step beyond both is a DHT: bucket ownership spread
    over the participants themselves, every lookup O(log N) overlay hops.
    This is the stabilized state of a Chord ring — successor lists and
    finger tables computed exactly for a static membership (the simulation
    joins/leaves rebuild; we are measuring lookup behaviour, not
    stabilization dynamics).

    Identifiers live in [\[0, 2^bits)]; keys and members are hashed into
    the same space with a splitmix-based hash. *)

type t

val bits : int
(** Identifier-space width (32). *)

val hash_key : int -> int
(** Deterministic hash of an integer key (e.g. a router id) into the
    identifier space. *)

val build : ?virtual_nodes:int -> int array -> t
(** [build members] constructs the stabilized ring over the given member
    ids (application-level ids, e.g. DHT-node indices; hashed internally).
    Duplicate members are rejected.  [virtual_nodes] (default 1) places
    each member at that many independent ring positions — the standard
    consistent-hashing fix for segment-size imbalance.
    @raise Invalid_argument on an empty or duplicate member array, or
    [virtual_nodes < 1]. *)

val member_count : t -> int
(** Distinct members (not virtual positions). *)

val members : t -> int array
(** Distinct member ids, ascending. *)

val owner_of : t -> key:int -> int
(** The member whose ring segment covers [hash_key key] (its successor). *)

val lookup : t -> from:int -> key:int -> int * int
(** [(owner, overlay_hops)]: iterative finger-table routing from member
    [from] to the owner of [key].  Hops = number of overlay forwardings
    (0 when [from] already owns the key).
    @raise Invalid_argument when [from] is not a member. *)

val ring_distance : t -> int -> int -> int
(** Clockwise identifier distance between two members' ring ids (for
    tests). *)

val check_invariants : t -> unit
(** Fingers point at the true successors of their targets; successor
    pointers form a single cycle.  @raise Failure on violation. *)
