let bits = 32
let space = 1 lsl bits
let mask = space - 1

(* splitmix64 finalizer, truncated to the identifier space: cheap, well
   mixed, and deterministic across runs. *)
let hash_key key =
  let open Int64 in
  let z = add (of_int key) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z (of_int mask))

type member = {
  app_id : int;
  ring_id : int;
  (* finger.(i) = index (into the sorted member array) of the successor of
     ring_id + 2^i. *)
  fingers : int array;
}

type t = { ring : member array (* ascending ring_id *) }

(* Index of the member owning [id]: the first member with ring_id >= id,
   wrapping to 0. *)
let successor_index ring id =
  let n = Array.length ring in
  (* Binary search for the first ring_id >= id. *)
  let lo = ref 0 and hi = ref (n - 1) and ans = ref n in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if ring.(mid).ring_id >= id then begin
      ans := mid;
      hi := mid - 1
    end
    else lo := mid + 1
  done;
  if !ans = n then 0 else !ans

let build ?(virtual_nodes = 1) members =
  let n0 = Array.length members in
  if n0 = 0 then invalid_arg "Chord.build: no members";
  if virtual_nodes < 1 then invalid_arg "Chord.build: virtual_nodes must be >= 1";
  let seen = Hashtbl.create n0 in
  Array.iter
    (fun m ->
      if Hashtbl.mem seen m then invalid_arg "Chord.build: duplicate member";
      Hashtbl.add seen m ())
    members;
  let with_ids =
    Array.concat
      (List.init virtual_nodes (fun replica ->
           Array.map
             (fun app_id ->
               {
                 app_id;
                 ring_id = hash_key ((app_id lxor 0x5a5a5a) + (replica * 0x9e3779));
                 fingers = [||];
               })
             members))
  in

  Array.sort (fun a b -> compare (a.ring_id, a.app_id) (b.ring_id, b.app_id)) with_ids;
  let n = Array.length with_ids in
  (* Hash collisions between positions would break ownership; perturb until
     distinct (astronomically rare at our scales). *)
  for i = 1 to n - 1 do
    if with_ids.(i).ring_id = with_ids.(i - 1).ring_id then
      with_ids.(i) <-
        { (with_ids.(i)) with ring_id = (with_ids.(i).ring_id + i) land mask }
  done;
  Array.sort (fun a b -> compare (a.ring_id, a.app_id) (b.ring_id, b.app_id)) with_ids;
  let ring =
    Array.map
      (fun m ->
        let fingers =
          Array.init bits (fun i ->
              successor_index with_ids ((m.ring_id + (1 lsl i)) land mask))
        in
        { m with fingers })
      with_ids
  in
  { ring }

let members t =
  Array.to_list t.ring
  |> List.map (fun m -> m.app_id)
  |> List.sort_uniq compare
  |> Array.of_list

let member_count t = Array.length (members t)

(* First ring position of the member: where its lookups start. *)
let index_of t app_id =
  let found = ref (-1) in
  Array.iteri (fun i m -> if !found = -1 && m.app_id = app_id then found := i) t.ring;
  !found

let owner_of t ~key = t.ring.(successor_index t.ring (hash_key key)).app_id

(* Is ring id [x] in the clockwise-open interval (a, b]? *)
let in_interval x ~after:a ~upto:b =
  if a < b then x > a && x <= b else x > a || x <= b

let lookup t ~from ~key =
  let start = index_of t from in
  if start < 0 then invalid_arg "Chord.lookup: unknown member";
  let target = hash_key key in
  let owner_index = successor_index t.ring target in
  let n = Array.length t.ring in
  let rec route current hops =
    if current = owner_index then (t.ring.(current).app_id, hops)
    else begin
      (* Successor rule: if the target lies between us and our successor,
         the successor owns it. *)
      let succ = (current + 1) mod n in
      if in_interval target ~after:t.ring.(current).ring_id ~upto:t.ring.(succ).ring_id then
        route succ (hops + 1)
      else begin
        (* Farthest finger that precedes the target. *)
        let best = ref succ in
        Array.iter
          (fun f ->
            if
              f <> current
              && in_interval t.ring.(f).ring_id ~after:t.ring.(current).ring_id ~upto:target
              && in_interval t.ring.(f).ring_id ~after:t.ring.(!best).ring_id ~upto:target
            then best := f)
          t.ring.(current).fingers;
        let next = if !best = current then succ else !best in
        route next (hops + 1)
      end
    end
  in
  route start 0

let ring_distance t a b =
  let ia = index_of t a and ib = index_of t b in
  if ia < 0 || ib < 0 then invalid_arg "Chord.ring_distance: unknown member";
  (t.ring.(ib).ring_id - t.ring.(ia).ring_id + space) land mask

let check_invariants t =
  let n = Array.length t.ring in
  let fail fmt = Printf.ksprintf failwith fmt in
  for i = 1 to n - 1 do
    if t.ring.(i).ring_id <= t.ring.(i - 1).ring_id then fail "ring ids not strictly ascending"
  done;
  Array.iteri
    (fun mi m ->
      Array.iteri
        (fun fi f ->
          let target = (m.ring_id + (1 lsl fi)) land mask in
          let expected = successor_index t.ring target in
          if f <> expected then fail "member %d finger %d wrong" mi fi)
        m.fingers)
    t.ring
