(** Kademlia routing (Maymounkov & Mazières, 2002) — the XOR-metric
    alternative to {!Chord}, in the same stabilized-state simulation form.

    Each node keeps k-buckets: up to [bucket_size] contacts per XOR-distance
    octave.  Greedy routing toward the key's closest node converges in
    O(log N) steps because every step at least halves the XOR distance.
    Included for the hop/structure comparison with Chord (the [dht]
    experiment reports both); the bucket-population rule here picks the
    XOR-closest candidates per bucket, which is Kademlia's steady state
    under its preference for long-lived contacts. *)

type t

val hash_id : int -> int
(** Same identifier space as {!Chord.hash_key}. *)

val build : ?bucket_size:int -> int array -> t
(** [build members] with [bucket_size] contacts per bucket (default 8).
    @raise Invalid_argument on empty/duplicate members or
    [bucket_size < 1]. *)

val member_count : t -> int
val members : t -> int array
(** Distinct member ids, ascending. *)

val owner_of : t -> key:int -> int
(** The member whose hashed id is XOR-closest to [hash_id key]. *)

val lookup : t -> from:int -> key:int -> int * int
(** [(owner, hops)] by greedy XOR routing.
    @raise Invalid_argument when [from] is not a member. *)

val bucket_of : t -> member:int -> index:int -> int list
(** Contacts of one k-bucket (for tests); [index] is the XOR-distance
    octave. *)

val check_invariants : t -> unit
(** Buckets hold only members from their octave, within capacity.
    @raise Failure on violation. *)
