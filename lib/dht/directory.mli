(** The management server, decentralized over a Chord ring.

    Bucket ownership is distributed: the bucket of router [r] (the ordered
    set of peers whose recorded path crosses [r]) lives on the DHT node
    owning key [r].  A join walks the recorded path and inserts one bucket
    entry per router — each insert is one DHT lookup; a query walks the
    newcomer's path outward exactly like {!Nearby.Path_tree.query},
    fetching each router's bucket through the ring.

    Answers are identical to the centralized server restricted to the same
    landmark tree (same metric, same tie-breaks — tested); what changes is
    the cost model: O(log N) overlay hops per bucket access instead of a
    central round trip, and storage/query load spread over the ring.  The
    walk's early cutoff also prunes the number of bucket fetches, which the
    stats expose. *)

type t

val create : ?virtual_nodes:int -> landmark:Topology.Graph.node -> int array -> t
(** [create ~landmark dht_nodes] builds the ring over the given storage
    node ids; [virtual_nodes] ring positions per node (default 1) smooth
    the segment-size imbalance.  @raise Invalid_argument on an empty or
    duplicate array. *)

val landmark : t -> Topology.Graph.node
val member_count : t -> int
(** Registered peers. *)

val mem : t -> int -> bool
val path_of : t -> int -> Topology.Graph.node array option
val iter_members : t -> (int -> unit) -> unit

val dtree : t -> int -> int -> int option
(** Meeting-point distance from the registered paths, as
    {!Nearby.Path_tree.dtree}. *)

val insert : t -> peer:int -> routers:Topology.Graph.node array -> unit
(** Same contract as {!Nearby.Path_tree.insert}; counts one DHT lookup per
    path router. *)

val remove : t -> peer:int -> unit
(** @raise Not_found when unregistered. *)

val query :
  t -> routers:Topology.Graph.node array -> k:int -> ?exclude:(int -> bool) -> unit -> (int * int) list
(** Same semantics as {!Nearby.Path_tree.query}. *)

val query_member : t -> peer:int -> k:int -> (int * int) list
(** @raise Not_found when unregistered. *)

type stats = {
  lookups : int;  (** DHT lookups issued (bucket reads + writes). *)
  overlay_hops : int;  (** Total Chord forwarding hops across them. *)
  buckets_per_node : (int * int) list;
      (** (dht node, buckets stored), ring order — the storage balance. *)
}

val stats : t -> stats
val reset_counters : t -> unit

val iter_buckets : t -> (Topology.Graph.node -> int -> unit) -> unit
(** [f router size] per stored router bucket across every node store,
    unspecified order.  Reads the stores directly — no lookup traffic is
    counted.  The feed for registry introspection. *)

val approx_bytes : t -> int
(** Rough payload size (paths + bucket entries) in bytes, excluding ring
    metadata; an estimate for cross-backend comparison. *)

val digest : t -> int64
(** Order-independent content digest over the registered paths (see
    {!Nearby.Registry_intf.S.digest}); independent of the ring layout. *)

val check_invariants : t -> unit
(** Every bucket entry sits on the ring node owning its router key and is
    justified by a registered path, and vice versa.  Reads ownership
    directly (no lookup traffic is counted).  @raise Failure on
    violation. *)

val snapshot : t -> string
(** Ring configuration (members, virtual nodes) and registered paths in the
    {!Prelude.Codec} binary format. *)

val restore : string -> (t, string) result
(** Rebuild the ring and re-insert every path, then zero the traffic
    counters (rebuilding is not client traffic).  Corrupt input yields
    [Error]. *)

(** {1 Membership dynamics}

    Consistent hashing's selling point: when a storage node joins or
    leaves, only the buckets whose ring segment changed owner move.  The
    ring is rebuilt at its stabilized state and affected buckets are
    migrated; answers are unaffected (same data, new homes). *)

val node_count : t -> int
val add_node : t -> node:int -> int
(** Add a storage node; returns the number of buckets migrated to it.
    @raise Invalid_argument if the node is already a member. *)

val remove_node : t -> node:int -> int
(** Retire a storage node, handing its buckets to their new owners;
    returns the number migrated.  @raise Invalid_argument when the node is
    not a member or is the last one. *)

val migrations : t -> int
(** Total buckets moved by membership changes so far. *)
