module Bucket = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type stats = {
  lookups : int;
  overlay_hops : int;
  buckets_per_node : (int * int) list;
}

type node_store = { mutable buckets : (int, Bucket.t ref) Hashtbl.t }

type t = {
  landmark : Topology.Graph.node;
  mutable ring : Chord.t;
  virtual_nodes : int option;
  stores : (int, node_store) Hashtbl.t;  (* dht node -> its shard *)
  paths : (int, int array) Hashtbl.t;  (* peer -> registered path *)
  mutable lookups : int;
  mutable overlay_hops : int;
  mutable migrated : int;
  (* The requester-side entry point rotates round robin, as a real client
     would pick a random known ring member. *)
  mutable entry_cursor : int;
}

let create ?virtual_nodes ~landmark dht_nodes =
  let ring = Chord.build ?virtual_nodes dht_nodes in
  let stores = Hashtbl.create (Array.length dht_nodes) in
  Array.iter (fun node -> Hashtbl.add stores node { buckets = Hashtbl.create 32 }) dht_nodes;
  {
    landmark;
    ring;
    virtual_nodes;
    stores;
    paths = Hashtbl.create 256;
    lookups = 0;
    overlay_hops = 0;
    migrated = 0;
    entry_cursor = 0;
  }

let landmark t = t.landmark
let member_count t = Hashtbl.length t.paths

(* One DHT lookup for the bucket of [router]: route from a rotating entry
   member and account the overlay hops. *)
let locate t router =
  let ring_members = Chord.members t.ring in
  let entry = ring_members.(t.entry_cursor mod Array.length ring_members) in
  t.entry_cursor <- t.entry_cursor + 1;
  let owner, hops = Chord.lookup t.ring ~from:entry ~key:router in
  t.lookups <- t.lookups + 1;
  t.overlay_hops <- t.overlay_hops + hops;
  Hashtbl.find t.stores owner

let bucket_ref store router =
  match Hashtbl.find_opt store.buckets router with
  | Some b -> b
  | None ->
      let b = ref Bucket.empty in
      Hashtbl.add store.buckets router b;
      b

let insert t ~peer ~routers =
  if Array.length routers = 0 then invalid_arg "Directory.insert: empty path";
  if routers.(Array.length routers - 1) <> t.landmark then
    invalid_arg "Directory.insert: path must end at the landmark";
  if Hashtbl.mem t.paths peer then invalid_arg "Directory.insert: peer already registered";
  Hashtbl.add t.paths peer (Array.copy routers);
  Array.iteri
    (fun dist router ->
      let store = locate t router in
      let b = bucket_ref store router in
      b := Bucket.add (dist, peer) !b)
    routers

let remove t ~peer =
  match Hashtbl.find_opt t.paths peer with
  | None -> raise Not_found
  | Some routers ->
      Hashtbl.remove t.paths peer;
      Array.iteri
        (fun dist router ->
          let store = locate t router in
          match Hashtbl.find_opt store.buckets router with
          | None -> ()
          | Some b ->
              b := Bucket.remove (dist, peer) !b;
              if Bucket.is_empty !b then Hashtbl.remove store.buckets router)
        routers

(* Same walk as Path_tree.query, buckets fetched through the ring. *)
let best_insert best k candidate =
  let rec ins = function
    | [] -> [ candidate ]
    | x :: rest when candidate < x -> candidate :: x :: rest
    | x :: rest -> x :: ins rest
  in
  let merged = ins best in
  if List.length merged > k then List.filteri (fun i _ -> i < k) merged else merged

let worst_of best k = if List.length best < k then max_int else fst (List.nth best (k - 1))

let query t ~routers ~k ?(exclude = fun _ -> false) () =
  if k <= 0 then []
  else begin
    let seen = Hashtbl.create 64 in
    let best = ref [] in
    let len = Array.length routers in
    let d = ref 0 in
    while !d < len && !d <= worst_of !best k do
      let router = routers.(!d) in
      let store = locate t router in
      (match Hashtbl.find_opt store.buckets router with
      | None -> ()
      | Some bucket ->
          (try
             Bucket.iter
               (fun (dist, p) ->
                 let candidate = !d + dist in
                 if candidate > worst_of !best k then raise Exit;
                 if not (Hashtbl.mem seen p) then begin
                   Hashtbl.add seen p ();
                   if not (exclude p) then best := best_insert !best k (candidate, p)
                 end)
               !bucket
           with Exit -> ()));
      incr d
    done;
    List.map (fun (c, p) -> (p, c)) !best
  end

let query_member t ~peer ~k =
  match Hashtbl.find_opt t.paths peer with
  | None -> raise Not_found
  | Some routers -> query t ~routers ~k ~exclude:(fun p -> p = peer) ()

let stats t =
  let per_node =
    Array.to_list (Chord.members t.ring)
    |> List.map (fun node -> (node, Hashtbl.length (Hashtbl.find t.stores node).buckets))
  in
  { lookups = t.lookups; overlay_hops = t.overlay_hops; buckets_per_node = per_node }

let reset_counters t =
  t.lookups <- 0;
  t.overlay_hops <- 0

(* --- Membership dynamics ---------------------------------------------- *)

let node_count t = Chord.member_count t.ring
let migrations t = t.migrated

(* Rebuild the ring over [members] and move every bucket whose owner
   changed; returns how many moved. *)
let rebuild_and_migrate t members =
  let new_ring = Chord.build ?virtual_nodes:t.virtual_nodes members in
  let moved = ref 0 in
  (* Collect all (router, bucket) pairs with their current holder. *)
  let relocations = ref [] in
  Hashtbl.iter
    (fun holder store ->
      Hashtbl.iter
        (fun router bucket ->
          let owner = Chord.owner_of new_ring ~key:router in
          if owner <> holder then relocations := (holder, router, bucket, owner) :: !relocations)
        store.buckets)
    t.stores;
  List.iter
    (fun (holder, router, bucket, owner) ->
      Hashtbl.remove (Hashtbl.find t.stores holder).buckets router;
      Hashtbl.replace (Hashtbl.find t.stores owner).buckets router bucket;
      incr moved)
    !relocations;
  t.ring <- new_ring;
  t.migrated <- t.migrated + !moved;
  !moved

let add_node t ~node =
  let members = Chord.members t.ring in
  if Array.mem node members then invalid_arg "Directory.add_node: already a member";
  Hashtbl.replace t.stores node { buckets = Hashtbl.create 32 };
  rebuild_and_migrate t (Array.append members [| node |])

let remove_node t ~node =
  let members = Chord.members t.ring in
  if not (Array.mem node members) then invalid_arg "Directory.remove_node: not a member";
  if Array.length members <= 1 then invalid_arg "Directory.remove_node: last node";
  let remaining = Array.of_list (List.filter (fun m -> m <> node) (Array.to_list members)) in
  (* Rebuild first so the departing node's buckets have somewhere to go,
     then drop its (now empty) store. *)
  let moved = rebuild_and_migrate t remaining in
  (match Hashtbl.find_opt t.stores node with
  | Some store when Hashtbl.length store.buckets > 0 ->
      (* Everything it held must have been reassigned by the rebuild. *)
      failwith "Directory.remove_node: orphaned buckets"
  | _ -> ());
  Hashtbl.remove t.stores node;
  moved
