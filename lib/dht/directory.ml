module Bucket = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type stats = {
  lookups : int;
  overlay_hops : int;
  buckets_per_node : (int * int) list;
}

type node_store = { mutable buckets : (int, Bucket.t ref) Hashtbl.t }

type t = {
  landmark : Topology.Graph.node;
  mutable ring : Chord.t;
  virtual_nodes : int option;
  stores : (int, node_store) Hashtbl.t;  (* dht node -> its shard *)
  paths : (int, int array) Hashtbl.t;  (* peer -> registered path *)
  mutable lookups : int;
  mutable overlay_hops : int;
  mutable migrated : int;
  mutable digest : int64;
  (* The requester-side entry point rotates round robin, as a real client
     would pick a random known ring member. *)
  mutable entry_cursor : int;
}

let create ?virtual_nodes ~landmark dht_nodes =
  let ring = Chord.build ?virtual_nodes dht_nodes in
  let stores = Hashtbl.create (Array.length dht_nodes) in
  Array.iter (fun node -> Hashtbl.add stores node { buckets = Hashtbl.create 32 }) dht_nodes;
  {
    landmark;
    ring;
    virtual_nodes;
    stores;
    paths = Hashtbl.create 256;
    lookups = 0;
    overlay_hops = 0;
    migrated = 0;
    digest = Nearby.Registry_intf.empty_digest;
    entry_cursor = 0;
  }

let landmark t = t.landmark
let member_count t = Hashtbl.length t.paths
let digest t = t.digest

(* One DHT lookup for the bucket of [router]: route from a rotating entry
   member and account the overlay hops. *)
let locate t router =
  let ring_members = Chord.members t.ring in
  let entry = ring_members.(t.entry_cursor mod Array.length ring_members) in
  t.entry_cursor <- t.entry_cursor + 1;
  let owner, hops = Chord.lookup t.ring ~from:entry ~key:router in
  t.lookups <- t.lookups + 1;
  t.overlay_hops <- t.overlay_hops + hops;
  Hashtbl.find t.stores owner

let bucket_ref store router =
  match Hashtbl.find_opt store.buckets router with
  | Some b -> b
  | None ->
      let b = ref Bucket.empty in
      Hashtbl.add store.buckets router b;
      b

let insert t ~peer ~routers =
  if Array.length routers = 0 then invalid_arg "Directory.insert: empty path";
  if routers.(Array.length routers - 1) <> t.landmark then
    invalid_arg "Directory.insert: path must end at the landmark";
  if Hashtbl.mem t.paths peer then invalid_arg "Directory.insert: peer already registered";
  Hashtbl.add t.paths peer (Array.copy routers);
  t.digest <-
    Nearby.Registry_intf.combine_digests t.digest
      (Nearby.Registry_intf.entry_digest ~peer ~routers);
  Array.iteri
    (fun dist router ->
      let store = locate t router in
      let b = bucket_ref store router in
      b := Bucket.add (dist, peer) !b)
    routers

let remove t ~peer =
  match Hashtbl.find_opt t.paths peer with
  | None -> raise Not_found
  | Some routers ->
      Hashtbl.remove t.paths peer;
      t.digest <-
        Nearby.Registry_intf.combine_digests t.digest
          (Nearby.Registry_intf.entry_digest ~peer ~routers);
      Array.iteri
        (fun dist router ->
          let store = locate t router in
          match Hashtbl.find_opt store.buckets router with
          | None -> ()
          | Some b ->
              b := Bucket.remove (dist, peer) !b;
              if Bucket.is_empty !b then Hashtbl.remove store.buckets router)
        routers

(* Same walk as Path_tree.query, buckets fetched through the ring; the k
   best candidates accumulate in the shared bounded selector (O(log k) per
   offer) instead of a sorted list re-scanned with List.nth per candidate
   (O(k) per offer, O(k^2) per bucket). *)
module Top_k = Nearby.Selector.Top_k

let beats_worst best cost =
  match Top_k.worst best with None -> true | Some (w, _) -> cost <= w

let query t ~routers ~k ?(exclude = fun _ -> false) () =
  if k <= 0 then []
  else begin
    let seen = Hashtbl.create 64 in
    let best = Top_k.create ~k compare in
    let len = Array.length routers in
    let d = ref 0 in
    while !d < len && beats_worst best !d do
      let router = routers.(!d) in
      let store = locate t router in
      (match Hashtbl.find_opt store.buckets router with
      | None -> ()
      | Some bucket ->
          (try
             Bucket.iter
               (fun (dist, p) ->
                 let candidate = !d + dist in
                 if not (beats_worst best candidate) then raise Exit;
                 if not (Hashtbl.mem seen p) then begin
                   Hashtbl.add seen p ();
                   if not (exclude p) then Top_k.offer best (candidate, p)
                 end)
               !bucket
           with Exit -> ()));
      incr d
    done;
    List.map (fun (c, p) -> (p, c)) (Top_k.to_sorted_list best)
  end

let query_member t ~peer ~k =
  match Hashtbl.find_opt t.paths peer with
  | None -> raise Not_found
  | Some routers -> query t ~routers ~k ~exclude:(fun p -> p = peer) ()

let stats t =
  let per_node =
    Array.to_list (Chord.members t.ring)
    |> List.map (fun node -> (node, Hashtbl.length (Hashtbl.find t.stores node).buckets))
  in
  { lookups = t.lookups; overlay_hops = t.overlay_hops; buckets_per_node = per_node }

let mem t peer = Hashtbl.mem t.paths peer
let path_of t peer = Option.map Array.copy (Hashtbl.find_opt t.paths peer)
let iter_members t f = Hashtbl.iter (fun p _ -> f p) t.paths

(* Direct walk over every node store (no lookup traffic counted): the feed
   for registry introspection. *)
let iter_buckets t f =
  Hashtbl.iter
    (fun _ store -> Hashtbl.iter (fun router b -> f router (Bucket.cardinal !b)) store.buckets)
    t.stores

(* Rough payload estimate (paths + bucket entries) in bytes; the ring
   metadata is excluded — it scales with nodes, not members. *)
let approx_bytes t =
  let words = ref 0 in
  Hashtbl.iter (fun _ path -> words := !words + 4 + Array.length path) t.paths;
  iter_buckets t (fun _ size -> words := !words + 2 + (5 * size));
  8 * !words

let dtree t p1 p2 =
  match (Hashtbl.find_opt t.paths p1, Hashtbl.find_opt t.paths p2) with
  | Some a, Some b ->
      let la = Array.length a and lb = Array.length b in
      let max_j = min la lb in
      let rec suffix j =
        if j < max_j && a.(la - 1 - j) = b.(lb - 1 - j) then suffix (j + 1) else j
      in
      let j = suffix 0 in
      if j = 0 then None else Some (la - j + (lb - j))
  | None, _ | _, None -> None

(* Ownership checks go through [Chord.owner_of] directly: invariants must
   not perturb the lookup/hop counters. *)
let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  Hashtbl.iter
    (fun peer path ->
      let len = Array.length path in
      if len = 0 then fail "peer %d has an empty path" peer;
      if path.(len - 1) <> t.landmark then fail "peer %d path does not end at the landmark" peer;
      Array.iteri
        (fun dist router ->
          let owner = Chord.owner_of t.ring ~key:router in
          match Hashtbl.find_opt t.stores owner with
          | None -> fail "router %d owned by unknown dht node %d" router owner
          | Some store -> (
              match Hashtbl.find_opt store.buckets router with
              | None -> fail "peer %d: router %d has no bucket on its owner" peer router
              | Some b ->
                  if not (Bucket.mem (dist, peer) !b) then
                    fail "peer %d missing from bucket of router %d" peer router))
        path)
    t.paths;
  Hashtbl.iter
    (fun holder store ->
      Hashtbl.iter
        (fun router b ->
          if Bucket.is_empty !b then fail "router %d has an empty bucket" router;
          let owner = Chord.owner_of t.ring ~key:router in
          if owner <> holder then
            fail "bucket of router %d held by node %d, owned by node %d" router holder owner;
          Bucket.iter
            (fun (dist, peer) ->
              match Hashtbl.find_opt t.paths peer with
              | None -> fail "bucket of router %d references unknown peer %d" router peer
              | Some path ->
                  if not (dist < Array.length path && path.(dist) = router) then
                    fail "bucket of router %d has stale entry for peer %d" router peer)
            !b)
        store.buckets)
    t.stores;
  let recomputed =
    Hashtbl.fold
      (fun peer routers acc ->
        Nearby.Registry_intf.combine_digests acc
          (Nearby.Registry_intf.entry_digest ~peer ~routers))
      t.paths Nearby.Registry_intf.empty_digest
  in
  if recomputed <> t.digest then
    fail "incremental digest %Ld disagrees with recomputed %Ld" t.digest recomputed

(* --- Persistence ------------------------------------------------------- *)

let snapshot_version = 1

let snapshot t =
  let w = Prelude.Codec.Writer.create ~capacity:1024 () in
  let open Prelude.Codec.Writer in
  u8 w snapshot_version;
  varint w t.landmark;
  (match t.virtual_nodes with
  | None -> bool w false
  | Some v ->
      bool w true;
      varint w v);
  list w (varint w) (List.sort compare (Array.to_list (Chord.members t.ring)));
  let entries = Hashtbl.fold (fun peer path acc -> (peer, path) :: acc) t.paths [] in
  list w
    (fun (peer, routers) ->
      varint w peer;
      list w (varint w) (Array.to_list routers))
    (List.sort compare entries);
  contents w

let restore data =
  let open Prelude.Codec.Reader in
  let ( let* ) = Result.bind in
  let r = of_string data in
  let result =
    let* version = u8 r in
    if version <> snapshot_version then
      Error (Malformed (Printf.sprintf "unsupported registry snapshot version %d" version))
    else
      let* landmark = varint r in
      let* has_virtual = bool r in
      let* virtual_nodes =
        if has_virtual then Result.map Option.some (varint r) else Ok None
      in
      let* members = list r varint in
      let* entries =
        list r (fun r ->
            let* peer = varint r in
            let* routers = list r varint in
            Ok (peer, routers))
      in
      if not (is_exhausted r) then Error (Malformed "trailing bytes")
      else Ok (landmark, virtual_nodes, members, entries)
  in
  match result with
  | Error e -> Error (error_to_string e)
  | Ok (landmark, virtual_nodes, members, entries) -> (
      match create ?virtual_nodes ~landmark (Array.of_list members) with
      | exception Invalid_argument msg -> Error msg
      | t -> (
          match
            List.iter
              (fun (peer, routers) -> insert t ~peer ~routers:(Array.of_list routers))
              entries
          with
          | () ->
              (* Rebuilding is not client traffic. *)
              t.lookups <- 0;
              t.overlay_hops <- 0;
              Ok t
          | exception Invalid_argument msg -> Error msg))

let reset_counters t =
  t.lookups <- 0;
  t.overlay_hops <- 0

(* --- Membership dynamics ---------------------------------------------- *)

let node_count t = Chord.member_count t.ring
let migrations t = t.migrated

(* Rebuild the ring over [members] and move every bucket whose owner
   changed; returns how many moved. *)
let rebuild_and_migrate t members =
  let new_ring = Chord.build ?virtual_nodes:t.virtual_nodes members in
  let moved = ref 0 in
  (* Collect all (router, bucket) pairs with their current holder. *)
  let relocations = ref [] in
  Hashtbl.iter
    (fun holder store ->
      Hashtbl.iter
        (fun router bucket ->
          let owner = Chord.owner_of new_ring ~key:router in
          if owner <> holder then relocations := (holder, router, bucket, owner) :: !relocations)
        store.buckets)
    t.stores;
  List.iter
    (fun (holder, router, bucket, owner) ->
      Hashtbl.remove (Hashtbl.find t.stores holder).buckets router;
      Hashtbl.replace (Hashtbl.find t.stores owner).buckets router bucket;
      incr moved)
    !relocations;
  t.ring <- new_ring;
  t.migrated <- t.migrated + !moved;
  !moved

let add_node t ~node =
  let members = Chord.members t.ring in
  if Array.mem node members then invalid_arg "Directory.add_node: already a member";
  Hashtbl.replace t.stores node { buckets = Hashtbl.create 32 };
  rebuild_and_migrate t (Array.append members [| node |])

let remove_node t ~node =
  let members = Chord.members t.ring in
  if not (Array.mem node members) then invalid_arg "Directory.remove_node: not a member";
  if Array.length members <= 1 then invalid_arg "Directory.remove_node: last node";
  let remaining = Array.of_list (List.filter (fun m -> m <> node) (Array.to_list members)) in
  (* Rebuild first so the departing node's buckets have somewhere to go,
     then drop its (now empty) store. *)
  let moved = rebuild_and_migrate t remaining in
  (match Hashtbl.find_opt t.stores node with
  | Some store when Hashtbl.length store.buckets > 0 ->
      (* Everything it held must have been reassigned by the rebuild. *)
      failwith "Directory.remove_node: orphaned buckets"
  | _ -> ());
  Hashtbl.remove t.stores node;
  moved
