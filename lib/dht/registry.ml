(* The decentralized directory as a registry backend.

   [Directory] needs a ring of storage nodes at construction time, which
   [Registry_intf.S.create] does not provide, so the backend is produced by
   [backend]: a first-class module with the ring configuration baked in.
   Storage node ids live far above any peer id to keep the two spaces
   visibly apart in traces. *)

module type CONFIG = sig
  val nodes : int
  val virtual_nodes : int
end

module Make (Config : CONFIG) : Nearby.Registry_intf.S with type t = Directory.t = struct
  type t = Directory.t

  let backend_name = "dht"

  let storage_nodes () = Array.init Config.nodes (fun i -> 1_000_000 + i)

  let create ~landmark =
    if Config.nodes < 1 then invalid_arg "Dht.Registry: need at least one storage node";
    Directory.create ~virtual_nodes:Config.virtual_nodes ~landmark (storage_nodes ())

  let landmark = Directory.landmark
  let insert = Directory.insert
  let remove t peer = Directory.remove t ~peer
  let mem = Directory.mem
  let member_count = Directory.member_count
  let path_of = Directory.path_of
  let iter_members = Directory.iter_members
  let dtree = Directory.dtree
  let query = Directory.query
  let query_member = Directory.query_member

  (* Batches would fan out per storage node anyway; the derived loops are
     the honest cost model for the overlay. *)
  include Nearby.Registry_intf.Derive_batch (struct
    type nonrec t = t

    let insert = insert
    let query = query
  end)

  let stats t =
    let s = Directory.stats t in
    [
      ("dht_nodes", Directory.node_count t);
      ("lookups", s.Directory.lookups);
      ("members", member_count t);
      ("migrations", Directory.migrations t);
      ("overlay_hops", s.Directory.overlay_hops);
      ("routers", List.fold_left (fun acc (_, b) -> acc + b) 0 s.Directory.buckets_per_node);
    ]

  let introspect t =
    Nearby.Registry_intf.introspection_of_buckets ~members:(member_count t)
      ~approx_bytes:(Directory.approx_bytes t) (Directory.iter_buckets t)

  let digest = Directory.digest
  let snapshot = Directory.snapshot
  let restore = Directory.restore
  let check_invariants = Directory.check_invariants
end

let backend ?(nodes = 32) ?(virtual_nodes = 8) () : (module Nearby.Registry_intf.S) =
  (module Make (struct
    let nodes = nodes
    let virtual_nodes = virtual_nodes
  end) : Nearby.Registry_intf.S)
