type params = {
  chunk_ms : float;
  window : int;
  startup_chunks : int;
  gossip_period_ms : float;
  requests_per_exchange : int;
  upload_slots : int;
  chunk_transfer_ms : float;
  chunk_bytes : int;
  source_fanout : int;
  policy : Scheduler.policy;
  duration_ms : float;
}

let default_params =
  {
    chunk_ms = 120.0;
    window = 64;
    startup_chunks = 8;
    gossip_period_ms = 400.0;
    requests_per_exchange = 4;
    upload_slots = 4;
    chunk_transfer_ms = 20.0;
    chunk_bytes = 15_000;
    source_fanout = 4;
    policy = Scheduler.Earliest_deadline;
    duration_ms = 60_000.0;
  }

type peer_report = {
  peer : int;
  startup_delay_ms : float;
  chunks_played : int;
  discontinuities : int;
  mean_lag_chunks : float;
}

type report = {
  peers : peer_report array;
  continuity : float;
  mean_startup_ms : float;
  started_fraction : float;
  mean_lag_chunks : float;
  messages : int;
  bytes : int;
  link_bytes : int;
  mean_chunk_latency_ms : float;
}

type peer_state = {
  id : int;
  router : Topology.Graph.node;
  joined_at : float;
  buffer : Buffer_map.t;
  mutable neighbors : int list;
  neighbor_maps : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  requested : (int, float) Hashtbl.t;
  mutable playing : bool;
  mutable play_pos : int;
  mutable started_at : float;
  mutable played : int;
  mutable skipped : int;
  lag : Prelude.Stats.t;
  mutable busy_slots : int;
  upload_queue : (int * int) Queue.t;
}

type t = {
  params : params;
  engine : Simkit.Engine.t;
  transport : Simkit.Transport.t;
  rng : Prelude.Prng.t;
  peers : (int, peer_state) Hashtbl.t;
  mutable next_id : int;
  mutable source_head : int;
  mutable source_started : bool;
  chunk_latency : Prelude.Stats.t;
}

let validate p =
  if p.chunk_ms <= 0.0 || p.gossip_period_ms <= 0.0 || p.chunk_transfer_ms < 0.0 then
    invalid_arg "Session.run: periods must be positive";
  if p.window < 1 || p.startup_chunks < 1 || p.startup_chunks > p.window then
    invalid_arg "Session.run: bad window/startup";
  if p.upload_slots < 1 || p.requests_per_exchange < 1 || p.source_fanout < 1 then
    invalid_arg "Session.run: capacities must be >= 1"

let engine t = t.engine
let peer_count t = Hashtbl.length t.peers

let emit_time t c = float_of_int c *. t.params.chunk_ms
let request_timeout t = 2.0 *. t.params.gossip_period_ms

(* --- playback -------------------------------------------------------- *)
let rec playback_tick t p () =
  let c = p.play_pos in
  if Buffer_map.has p.buffer c then p.played <- p.played + 1 else p.skipped <- p.skipped + 1;
  Prelude.Stats.add p.lag (float_of_int (max 0 (t.source_head - p.play_pos)));
  p.play_pos <- p.play_pos + 1;
  Buffer_map.advance_to p.buffer p.play_pos;
  Simkit.Engine.schedule t.engine ~delay:t.params.chunk_ms (playback_tick t p)

let maybe_start t p =
  if (not p.playing) && Buffer_map.contiguous_from_base p.buffer >= t.params.startup_chunks then begin
    p.playing <- true;
    p.started_at <- Simkit.Engine.now t.engine;
    p.play_pos <- Buffer_map.base p.buffer;
    Simkit.Engine.schedule t.engine ~delay:t.params.chunk_ms (playback_tick t p)
  end

(* --- chunk reception -------------------------------------------------- *)
let receive_chunk t p c =
  (* Keep the window anchored to the live stream even before playback. *)
  if c >= Buffer_map.base p.buffer + t.params.window then begin
    let new_base = c - t.params.window + 1 in
    if p.playing && p.play_pos < new_base then begin
      p.skipped <- p.skipped + (new_base - p.play_pos);
      p.play_pos <- new_base
    end;
    Buffer_map.advance_to p.buffer new_base
  end;
  if Buffer_map.add p.buffer c then
    Prelude.Stats.add t.chunk_latency (Simkit.Engine.now t.engine -. emit_time t c);
  Hashtbl.remove p.requested c;
  maybe_start t p

(* --- uploads ----------------------------------------------------------- *)
let rec start_upload t p (dst, c) =
  p.busy_slots <- p.busy_slots + 1;
  Simkit.Engine.schedule t.engine ~delay:t.params.chunk_transfer_ms (fun () ->
      (* Slot frees once serialization is done; propagation is pipelined. *)
      (match Hashtbl.find_opt t.peers dst with
      | Some target when Buffer_map.has p.buffer c ->
          Simkit.Transport.send ~kind:"stream_chunk" t.transport ~src:p.router
            ~dst:target.router ~size_bytes:t.params.chunk_bytes (fun () ->
              receive_chunk t target c)
      | Some _ | None -> ());
      p.busy_slots <- p.busy_slots - 1;
      service_queue t p)

and service_queue t p =
  if p.busy_slots < t.params.upload_slots && not (Queue.is_empty p.upload_queue) then
    start_upload t p (Queue.pop p.upload_queue)

let receive_request t p ~from c =
  if Buffer_map.has p.buffer c then begin
    if p.busy_slots < t.params.upload_slots then start_upload t p (from, c)
    else Queue.push (from, c) p.upload_queue
  end

(* --- buffer-map gossip -------------------------------------------------- *)
let neighbor_delay t p q =
  match Hashtbl.find_opt t.peers q with
  | Some target -> Simkit.Transport.one_way_delay t.transport ~src:p.router ~dst:target.router
  | None -> infinity

(* Cheapest neighbor (by one-way delay, then id) whose last-known map holds
   the chunk; the gossip sender is always a candidate. *)
let best_owner t p ~sender c =
  Hashtbl.fold
    (fun q m best ->
      if Hashtbl.mem m c then begin
        let cost = (neighbor_delay t p q, q) in
        match best with Some b when b <= cost -> best | _ -> Some cost
      end
      else best)
    p.neighbor_maps
    (Some (neighbor_delay t p sender, sender))
  |> Option.map snd

let receive_map t p ~from holdings =
  let set = Hashtbl.create (List.length holdings) in
  List.iter (fun c -> Hashtbl.replace set c ()) holdings;
  Hashtbl.replace p.neighbor_maps from set;
  let now = Simkit.Engine.now t.engine in
  let missing = Buffer_map.missing p.buffer ~upto:(t.source_head + 1) in
  let rarity c =
    Hashtbl.fold (fun _ m acc -> if Hashtbl.mem m c then acc + 1 else acc) p.neighbor_maps 0
  in
  let already_requested c =
    match Hashtbl.find_opt p.requested c with
    | Some ts -> now -. ts < request_timeout t
    | None -> false
  in
  let to_request =
    Scheduler.select t.params.policy ~missing ~neighbor_has:(Hashtbl.mem set) ~rarity
      ~already_requested ~limit:t.params.requests_per_exchange
  in
  List.iter
    (fun c ->
      Hashtbl.replace p.requested c now;
      let owner_id = match best_owner t p ~sender:from c with Some q -> q | None -> from in
      match Hashtbl.find_opt t.peers owner_id with
      | None -> ()
      | Some owner ->
          Simkit.Transport.send ~kind:"stream_request" t.transport ~src:p.router
            ~dst:owner.router ~size_bytes:16 (fun () -> receive_request t owner ~from:p.id c))
    to_request

let rec gossip_tick t p () =
  if Hashtbl.mem t.peers p.id then begin
    let holdings = Buffer_map.holdings p.buffer in
    List.iter
      (fun q ->
        match Hashtbl.find_opt t.peers q with
        | None -> ()
        | Some target ->
            Simkit.Transport.send ~kind:"stream_gossip" t.transport ~src:p.router
              ~dst:target.router ~size_bytes:(16 + (t.params.window / 8)) (fun () ->
                receive_map t target ~from:p.id holdings))
      p.neighbors;
    Simkit.Engine.schedule t.engine ~delay:t.params.gossip_period_ms (gossip_tick t p)
  end

(* --- source ------------------------------------------------------------- *)
let source_emit t source_router c =
  t.source_head <- c;
  let n = Hashtbl.length t.peers in
  if n > 0 then begin
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.peers [] in
    let ids = Array.of_list (List.sort compare ids) in
    let fanout = min t.params.source_fanout n in
    let picks = Prelude.Prng.sample_without_replacement t.rng ~k:fanout ~n in
    Array.iter
      (fun ix ->
        match Hashtbl.find_opt t.peers ids.(ix) with
        | None -> ()
        | Some target ->
            Simkit.Engine.schedule t.engine ~delay:t.params.chunk_transfer_ms (fun () ->
                Simkit.Transport.send ~kind:"stream_chunk" t.transport ~src:source_router
                  ~dst:target.router ~size_bytes:t.params.chunk_bytes (fun () ->
                    receive_chunk t target c)))
      picks
  end

let create ?(params = default_params) ?latency ?engine ~graph ~source_router ~seed () =
  validate params;
  let engine = match engine with Some e -> e | None -> Simkit.Engine.create () in
  let oracle = Traceroute.Route_oracle.create graph in
  let transport = Simkit.Transport.create ?latency engine oracle in
  let t =
    {
      params;
      engine;
      transport;
      rng = Prelude.Prng.create seed;
      peers = Hashtbl.create 64;
      next_id = 0;
      source_head = -1;
      source_started = false;
      chunk_latency = Prelude.Stats.create ();
    }
  in
  (* The stream runs as long as the engine is advanced. *)
  let rec emit c () =
    source_emit t source_router c;
    Simkit.Engine.schedule_at t.engine ~time:(emit_time t (c + 1)) (emit (c + 1))
  in
  let first = max 0 (int_of_float (ceil (Simkit.Engine.now engine /. params.chunk_ms))) in
  Simkit.Engine.schedule_at t.engine ~time:(emit_time t first) (emit first);
  t.source_started <- true;
  t

let add_peer t ~router ~neighbors =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  let p =
    {
      id;
      router;
      joined_at = Simkit.Engine.now t.engine;
      buffer = Buffer_map.create ~width:t.params.window;
      neighbors = [];
      neighbor_maps = Hashtbl.create 8;
      requested = Hashtbl.create 32;
      playing = false;
      play_pos = 0;
      started_at = nan;
      played = 0;
      skipped = 0;
      lag = Prelude.Stats.create ();
      busy_slots = 0;
      upload_queue = Queue.create ();
    }
  in
  (* Anchor a latecomer just behind the live edge: it buffers the startup
     run from chunks every established neighbor still holds.  Anchoring
     deeper (e.g. half a window back) would demand chunks only lagging
     peers retain - a subtle way to starve newcomers with low-lag
     (regional) neighbor sets. *)
  if t.source_head > t.params.startup_chunks then
    Buffer_map.advance_to p.buffer (t.source_head - t.params.startup_chunks);
  Hashtbl.add t.peers id p;
  (* Bidirectional mesh links to existing peers. *)
  List.iter
    (fun q ->
      match Hashtbl.find_opt t.peers q with
      | Some other when q <> id ->
          if not (List.mem q p.neighbors) then p.neighbors <- q :: p.neighbors;
          if not (List.mem id other.neighbors) then other.neighbors <- id :: other.neighbors
      | Some _ | None -> ())
    neighbors;
  Simkit.Engine.schedule t.engine
    ~delay:(Prelude.Prng.float t.rng t.params.gossip_period_ms)
    (gossip_tick t p);
  id

let link t a b =
  match (Hashtbl.find_opt t.peers a, Hashtbl.find_opt t.peers b) with
  | Some pa, Some pb when a <> b ->
      if not (List.mem b pa.neighbors) then pa.neighbors <- b :: pa.neighbors;
      if not (List.mem a pb.neighbors) then pb.neighbors <- a :: pb.neighbors
  | _ -> ()

let advance t ~until = Simkit.Engine.run ~until t.engine

let report t =
  let peer_reports =
    Hashtbl.fold
      (fun _ p acc ->
        {
          peer = p.id;
          startup_delay_ms =
            (if Float.is_nan p.started_at then nan else p.started_at -. p.joined_at);
          chunks_played = p.played;
          discontinuities = p.skipped;
          mean_lag_chunks = Prelude.Stats.mean p.lag;
        }
        :: acc)
      t.peers []
    |> List.sort (fun a b -> compare a.peer b.peer)
    |> Array.of_list
  in
  let started =
    Array.to_list peer_reports |> List.filter (fun r -> not (Float.is_nan r.startup_delay_ms))
  in
  let continuity =
    let acc = ref 0.0 and counted = ref 0 in
    Array.iter
      (fun r ->
        let total = r.chunks_played + r.discontinuities in
        if total > 0 then begin
          acc := !acc +. (float_of_int r.chunks_played /. float_of_int total);
          incr counted
        end)
      peer_reports;
    if !counted = 0 then 0.0 else !acc /. float_of_int !counted
  in
  let mean_of f rows =
    if rows = [] then nan
    else List.fold_left (fun a r -> a +. f r) 0.0 rows /. float_of_int (List.length rows)
  in
  {
    peers = peer_reports;
    continuity;
    mean_startup_ms = mean_of (fun r -> r.startup_delay_ms) started;
    started_fraction =
      (if Array.length peer_reports = 0 then 0.0
       else float_of_int (List.length started) /. float_of_int (Array.length peer_reports));
    mean_lag_chunks =
      (let s = Prelude.Stats.create () in
       Hashtbl.iter
         (fun _ p -> if Prelude.Stats.count p.lag > 0 then Prelude.Stats.add s (Prelude.Stats.mean p.lag))
         t.peers;
       Prelude.Stats.mean s);
    messages = Simkit.Transport.messages_sent t.transport;
    bytes = Simkit.Transport.bytes_sent t.transport;
    link_bytes = Simkit.Transport.link_bytes t.transport;
    mean_chunk_latency_ms = Prelude.Stats.mean t.chunk_latency;
  }

(* --- closed-session wrapper -------------------------------------------- *)

let symmetrize neighbor_sets =
  let n = Array.length neighbor_sets in
  let sets = Array.init n (fun _ -> Hashtbl.create 8) in
  Array.iteri
    (fun p partners ->
      Array.iter
        (fun q ->
          if q <> p && q >= 0 && q < n then begin
            Hashtbl.replace sets.(p) q ();
            Hashtbl.replace sets.(q) p ()
          end)
        partners)
    neighbor_sets;
  Array.map
    (fun h -> List.sort compare (Hashtbl.fold (fun q () acc -> q :: acc) h []))
    sets

let run ?(params = default_params) ?latency ~graph ~source_router ~peer_routers ~neighbor_sets
    ~seed () =
  validate params;
  let n = Array.length peer_routers in
  if Array.length neighbor_sets <> n then invalid_arg "Session.run: one neighbor set per peer";
  let t = create ~params ?latency ~graph ~source_router ~seed () in
  let symmetric = symmetrize neighbor_sets in
  (* Peers are added before any event runs, so ids match array indices and
     the symmetric links can be installed directly. *)
  Array.iteri
    (fun i router ->
      let id = add_peer t ~router ~neighbors:[] in
      assert (id = i))
    peer_routers;
  Array.iteri (fun i neighbors -> List.iter (fun q -> link t i q) neighbors) symmetric;
  advance t ~until:(params.duration_ms +. (10.0 *. params.chunk_ms));
  report t
