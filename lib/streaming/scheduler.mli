(** Chunk-request scheduling policies.

    When a buffer map arrives from a neighbor, the peer must decide which of
    the chunks it misses (and the neighbor holds) to request.  Pure
    decision logic, separated from the event-driven session for testing. *)

type policy =
  | Earliest_deadline
      (** Request in stream order — the chunk needed soonest first.  Good
          for continuity, the default in deadline-driven mesh systems. *)
  | Rarest_first
      (** Request the chunk held by the fewest known neighbors first (ties
          to stream order) — BitTorrent-style, better for swarm diversity. *)

val policy_name : policy -> string

val select :
  policy ->
  missing:int list ->
  neighbor_has:(int -> bool) ->
  rarity:(int -> int) ->
  already_requested:(int -> bool) ->
  limit:int ->
  int list
(** [select policy ~missing ~neighbor_has ~rarity ~already_requested ~limit]
    picks at most [limit] chunk ids to request, in request order.
    [missing] must be ascending (as {!Buffer_map.missing} returns);
    [rarity c] is the number of known copies of chunk [c] (lower = rarer). *)
