type params = {
  chunks : int;
  gossip_period_ms : float;
  requests_per_exchange : int;
  upload_slots : int;
  chunk_transfer_ms : float;
  chunk_bytes : int;
  seed_fanout : int;
  max_time_ms : float;
}

let default_params =
  {
    chunks = 64;
    gossip_period_ms = 400.0;
    requests_per_exchange = 4;
    upload_slots = 4;
    chunk_transfer_ms = 20.0;
    chunk_bytes = 15_000;
    seed_fanout = 4;
    max_time_ms = 60_000.0;
  }

type report = {
  completed_fraction : float;
  mean_completion_ms : float;
  p95_completion_ms : float;
  messages : int;
  bytes : int;
  link_bytes : int;
}

type peer_state = {
  id : int;
  router : Topology.Graph.node;
  bitfield : Buffer_map.t;  (* base stays 0; width = chunks *)
  mutable neighbors : int array;
  neighbor_fields : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  requested : (int, float) Hashtbl.t;
  mutable completed_at : float;
  mutable busy_slots : int;
  upload_queue : (int * int) Queue.t;
}

let validate p =
  if p.chunks < 1 || p.gossip_period_ms <= 0.0 || p.max_time_ms <= 0.0 then
    invalid_arg "Bulk.run: bad parameters";
  if p.upload_slots < 1 || p.requests_per_exchange < 1 || p.seed_fanout < 1 then
    invalid_arg "Bulk.run: capacities must be >= 1"

let run ?(params = default_params) ?latency ~graph ~seed_router ~peer_routers ~neighbor_sets ~seed
    () =
  validate params;
  let n = Array.length peer_routers in
  if Array.length neighbor_sets <> n then invalid_arg "Bulk.run: one neighbor set per peer";
  let rng = Prelude.Prng.create seed in
  let engine = Simkit.Engine.create () in
  let oracle = Traceroute.Route_oracle.create graph in
  let transport = Simkit.Transport.create ?latency engine oracle in
  (* Symmetrize the mesh, as in Session. *)
  let sym = Array.init n (fun _ -> Hashtbl.create 8) in
  Array.iteri
    (fun p partners ->
      Array.iter
        (fun q ->
          if q <> p && q >= 0 && q < n then begin
            Hashtbl.replace sym.(p) q ();
            Hashtbl.replace sym.(q) p ()
          end)
        partners)
    neighbor_sets;
  let peers =
    Array.init n (fun id ->
        {
          id;
          router = peer_routers.(id);
          bitfield = Buffer_map.create ~width:params.chunks;
          neighbors =
            Array.of_list (List.sort compare (Hashtbl.fold (fun q () acc -> q :: acc) sym.(id) []));
          neighbor_fields = Hashtbl.create 8;
          requested = Hashtbl.create 32;
          completed_at = nan;
          busy_slots = 0;
          upload_queue = Queue.create ();
        })
  in
  let request_timeout = 2.0 *. params.gossip_period_ms in

  let receive_chunk p c =
    if Buffer_map.add p.bitfield c then begin
      Hashtbl.remove p.requested c;
      if Float.is_nan p.completed_at && Buffer_map.count p.bitfield = params.chunks then
        p.completed_at <- Simkit.Engine.now engine
    end
  in
  let rec start_upload p (dst, c) =
    p.busy_slots <- p.busy_slots + 1;
    Simkit.Engine.schedule engine ~delay:params.chunk_transfer_ms (fun () ->
        let target = peers.(dst) in
        if Buffer_map.has p.bitfield c then
          Simkit.Transport.send ~kind:"bulk_chunk" transport ~src:p.router ~dst:target.router
            ~size_bytes:params.chunk_bytes (fun () -> receive_chunk target c);
        p.busy_slots <- p.busy_slots - 1;
        service_queue p)
  and service_queue p =
    if p.busy_slots < params.upload_slots && not (Queue.is_empty p.upload_queue) then
      start_upload p (Queue.pop p.upload_queue)
  in
  let receive_request p ~from c =
    if Buffer_map.has p.bitfield c then begin
      if p.busy_slots < params.upload_slots then start_upload p (from, c)
      else Queue.push (from, c) p.upload_queue
    end
  in
  let receive_field p ~from holdings =
    let set = Hashtbl.create (List.length holdings) in
    List.iter (fun c -> Hashtbl.replace set c ()) holdings;
    Hashtbl.replace p.neighbor_fields from set;
    let now = Simkit.Engine.now engine in
    let missing = Buffer_map.missing p.bitfield ~upto:params.chunks in
    let rarity c =
      Hashtbl.fold (fun _ m acc -> if Hashtbl.mem m c then acc + 1 else acc) p.neighbor_fields 0
    in
    let already_requested c =
      match Hashtbl.find_opt p.requested c with
      | Some t -> now -. t < request_timeout
      | None -> false
    in
    let to_request =
      Scheduler.select Scheduler.Rarest_first ~missing ~neighbor_has:(Hashtbl.mem set) ~rarity
        ~already_requested ~limit:params.requests_per_exchange
    in
    List.iter
      (fun c ->
        Hashtbl.replace p.requested c now;
        let owner = peers.(from) in
        Simkit.Transport.send ~kind:"bulk_request" transport ~src:p.router ~dst:owner.router
          ~size_bytes:16 (fun () -> receive_request owner ~from:p.id c))
      to_request
  in
  let rec gossip_tick p () =
    if Simkit.Engine.now engine < params.max_time_ms then begin
      let holdings = Buffer_map.holdings p.bitfield in
      Array.iter
        (fun q ->
          let target = peers.(q) in
          Simkit.Transport.send ~kind:"bulk_gossip" transport ~src:p.router ~dst:target.router
            ~size_bytes:(16 + (params.chunks / 8)) (fun () ->
              receive_field target ~from:p.id holdings))
        p.neighbors;
      Simkit.Engine.schedule engine ~delay:params.gossip_period_ms (gossip_tick p)
    end
  in
  (* The seed pushes every piece to a few random peers at t=0 (staggered by
     serialization time), then peers pull from each other. *)
  for c = 0 to params.chunks - 1 do
    let fanout = min params.seed_fanout n in
    let targets = Prelude.Prng.sample_without_replacement rng ~k:fanout ~n in
    Array.iter
      (fun pid ->
        let target = peers.(pid) in
        Simkit.Engine.schedule engine
          ~delay:(float_of_int c *. params.chunk_transfer_ms)
          (fun () ->
            Simkit.Transport.send ~kind:"bulk_chunk" transport ~src:seed_router
              ~dst:target.router ~size_bytes:params.chunk_bytes (fun () ->
                receive_chunk target c)))
      targets
  done;
  Array.iter
    (fun p ->
      Simkit.Engine.schedule engine ~delay:(Prelude.Prng.float rng params.gossip_period_ms)
        (gossip_tick p))
    peers;
  Simkit.Engine.run ~until:params.max_time_ms engine;
  let completions =
    Array.to_list peers
    |> List.filter_map (fun p -> if Float.is_nan p.completed_at then None else Some p.completed_at)
  in
  let completion_array = Array.of_list completions in
  {
    completed_fraction = float_of_int (List.length completions) /. float_of_int (max 1 n);
    mean_completion_ms = Prelude.Stats.mean_of completion_array;
    p95_completion_ms =
      (if Array.length completion_array = 0 then nan
       else Prelude.Stats.percentile completion_array 95.0);
    messages = Simkit.Transport.messages_sent transport;
    bytes = Simkit.Transport.bytes_sent transport;
    link_bytes = Simkit.Transport.link_bytes transport;
  }
