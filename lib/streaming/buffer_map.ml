(* Ring buffer of presence bits: slot for chunk c is c mod width, valid only
   while base <= c < base + width. *)
type t = { mutable base_id : int; slots : bool array }

let create ~width =
  if width < 1 then invalid_arg "Buffer_map.create: width must be >= 1";
  { base_id = 0; slots = Array.make width false }

let width t = Array.length t.slots
let base t = t.base_id

let in_window t chunk = chunk >= t.base_id && chunk < t.base_id + width t
let has t chunk = in_window t chunk && t.slots.(chunk mod width t)

let add t chunk =
  if (not (in_window t chunk)) || t.slots.(chunk mod width t) then false
  else begin
    t.slots.(chunk mod width t) <- true;
    true
  end

let advance_to t new_base =
  if new_base > t.base_id then begin
    let w = width t in
    let drop = min (new_base - t.base_id) w in
    for i = 0 to drop - 1 do
      t.slots.((t.base_id + i) mod w) <- false
    done;
    t.base_id <- new_base
  end

let holdings t =
  let acc = ref [] in
  for c = t.base_id + width t - 1 downto t.base_id do
    if t.slots.(c mod width t) then acc := c :: !acc
  done;
  !acc

let missing t ~upto =
  let acc = ref [] in
  let stop = min (t.base_id + width t) upto in
  for c = stop - 1 downto t.base_id do
    if not t.slots.(c mod width t) then acc := c :: !acc
  done;
  !acc

let count t =
  let n = ref 0 in
  Array.iter (fun b -> if b then incr n) t.slots;
  !n

let contiguous_from_base t =
  let w = width t in
  let rec run i = if i < w && t.slots.((t.base_id + i) mod w) then run (i + 1) else i in
  run 0
