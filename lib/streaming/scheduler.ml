type policy = Earliest_deadline | Rarest_first

let policy_name = function
  | Earliest_deadline -> "earliest-deadline"
  | Rarest_first -> "rarest-first"

let select policy ~missing ~neighbor_has ~rarity ~already_requested ~limit =
  if limit <= 0 then []
  else begin
    let candidates =
      List.filter (fun c -> neighbor_has c && not (already_requested c)) missing
    in
    let ordered =
      match policy with
      | Earliest_deadline -> candidates
      | Rarest_first ->
          List.stable_sort (fun a b -> compare (rarity a, a) (rarity b, b)) candidates
    in
    List.filteri (fun i _ -> i < limit) ordered
  end
