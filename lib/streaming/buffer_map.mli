(** Sliding-window chunk buffer map.

    Mesh-based live streaming exchanges buffer maps: which chunks of the
    live window a peer holds.  The window slides forward with the stream;
    chunks behind the base are forgotten (played or expired). *)

type t

val create : width:int -> t
(** [create ~width] is an empty map whose window covers chunk ids
    [\[base, base + width)], starting at base 0.
    @raise Invalid_argument if [width < 1]. *)

val width : t -> int
val base : t -> int
val has : t -> int -> bool
(** False outside the window. *)

val add : t -> int -> bool
(** [add t chunk] marks a chunk as held; returns [false] (no-op) when the
    chunk is outside the current window or already held. *)

val advance_to : t -> int -> unit
(** [advance_to t new_base] slides the window forward, dropping chunks below
    [new_base].  Never moves backward (a smaller base is a no-op). *)

val holdings : t -> int list
(** Held chunk ids, ascending. *)

val missing : t -> upto:int -> int list
(** Chunks in [\[base, min (base+width) upto)] not held, ascending. *)

val count : t -> int
(** Number of held chunks in the window. *)

val contiguous_from_base : t -> int
(** Length of the run of consecutive held chunks starting at the base —
    the startup-buffering criterion. *)
