(** Bulk file distribution over the same mesh machinery (BitTorrent-style
    swarm, minus live deadlines).

    Where {!Session} models live streaming (sliding window, playback
    deadlines, skips), this distributes a fixed file of [chunks] pieces
    from one seed to every peer: bitfield gossip, rarest-first requests,
    bounded upload slots.  The quality axis becomes {e completion time}
    and network stress — the second workload family the overlay-vs-
    infrastructure argument applies to. *)

type params = {
  chunks : int;  (** File size in pieces. *)
  gossip_period_ms : float;
  requests_per_exchange : int;
  upload_slots : int;
  chunk_transfer_ms : float;
  chunk_bytes : int;
  seed_fanout : int;  (** Peers the seed pushes each piece to initially. *)
  max_time_ms : float;  (** Give-up horizon. *)
}

val default_params : params
(** 64 pieces, 400 ms gossip, 4 requests/exchange, 4 slots, 20 ms
    serialization, 60 s horizon. *)

type report = {
  completed_fraction : float;  (** Peers holding the full file at the horizon. *)
  mean_completion_ms : float;  (** Over completed peers; [nan] if none. *)
  p95_completion_ms : float;
  messages : int;
  bytes : int;
  link_bytes : int;
}

val run :
  ?params:params ->
  ?latency:Topology.Latency.t ->
  graph:Topology.Graph.t ->
  seed_router:Topology.Graph.node ->
  peer_routers:Topology.Graph.node array ->
  neighbor_sets:int array array ->
  seed:int ->
  unit ->
  report
(** Deterministic in [seed]; neighbor sets are symmetrized as in
    {!Session.run}. *)
