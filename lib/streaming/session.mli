(** Event-driven mesh live-streaming session (the paper's motivating
    application, modeled after PULSE-style systems).

    A source emits one chunk per [chunk_ms] and pushes each fresh chunk to a
    few peers; peers gossip buffer maps to their mesh neighbors every
    [gossip_period_ms], request missing chunks (scheduler policy, bounded
    per exchange), and serve requests through a bounded number of upload
    slots.  A peer starts playback once [startup_chunks] consecutive chunks
    are buffered and then consumes one chunk per [chunk_ms], skipping (and
    counting a discontinuity) when the deadline passes without the chunk.

    The mesh neighbor sets come from outside — that is the whole point: the
    experiment feeds sets chosen by the proposed discovery service, by
    random selection, or by the oracle, and measures what neighbor
    proximity does to continuity, lag and traffic. *)

type params = {
  chunk_ms : float;
  window : int;  (** Buffer-map width, in chunks. *)
  startup_chunks : int;
  gossip_period_ms : float;
  requests_per_exchange : int;
  upload_slots : int;  (** Concurrent uploads a peer can serve. *)
  chunk_transfer_ms : float;  (** Serialization time per chunk upload. *)
  chunk_bytes : int;
  source_fanout : int;
  policy : Scheduler.policy;
  duration_ms : float;
}

val default_params : params
(** 120 ms chunks, 64-chunk window, 8-chunk startup, 400 ms gossip,
    4 requests/exchange, 4 upload slots, 20 ms transfer, earliest-deadline,
    60 s run. *)

type peer_report = {
  peer : int;
  startup_delay_ms : float;  (** [nan] if playback never started. *)
  chunks_played : int;
  discontinuities : int;
  mean_lag_chunks : float;  (** Mean (source head - playback position). *)
}

type report = {
  peers : peer_report array;
  continuity : float;
      (** Population mean of played / (played + skipped); 1.0 = perfect. *)
  mean_startup_ms : float;  (** Over peers that started. *)
  started_fraction : float;
  mean_lag_chunks : float;
  messages : int;
  bytes : int;
  link_bytes : int;
      (** Network stress: bytes x router hops traversed (see
          {!Simkit.Transport.link_bytes}) — where topology-aware neighbor
          selection pays off even at equal end-to-end traffic. *)
  mean_chunk_latency_ms : float;
      (** Mean (first-receipt time - emission time) over all deliveries. *)
}

val run :
  ?params:params ->
  ?latency:Topology.Latency.t ->
  graph:Topology.Graph.t ->
  source_router:Topology.Graph.node ->
  peer_routers:Topology.Graph.node array ->
  neighbor_sets:int array array ->
  seed:int ->
  unit ->
  report
(** Simulate one closed session: all peers present from t = 0.
    [neighbor_sets.(p)] are the mesh partners of peer [p] (the union with
    the reverse direction is used, as mesh links are bidirectional).
    Deterministic in [seed]. *)

(** {1 Open sessions (dynamic membership)}

    The paper's actual scenario: the swarm is already streaming and
    newcomers join mid-stream once their discovery protocol answers.
    [create] starts the source; [add_peer] attaches a peer (at the current
    simulated time) with the mesh partners its discovery produced; [run]
    advances the clock.  The closed [run] above is a convenience wrapper
    over these. *)

type t

val create :
  ?params:params ->
  ?latency:Topology.Latency.t ->
  ?engine:Simkit.Engine.t ->
  graph:Topology.Graph.t ->
  source_router:Topology.Graph.node ->
  seed:int ->
  unit ->
  t
(** Passing [engine] lets the session share a clock with other protocol
    machinery (e.g. {!Nearby.Protocol} joins). *)

val engine : t -> Simkit.Engine.t

val add_peer : t -> router:Topology.Graph.node -> neighbors:int list -> int
(** Attach a new peer now; mesh links to the named existing peers are
    created bidirectionally (unknown ids are ignored).  Returns the peer's
    id.  Its gossip loop starts within one gossip period. *)

val peer_count : t -> int

val link : t -> int -> int -> unit
(** Create a bidirectional mesh link between two existing peers; no-op on
    unknown ids, self-links or duplicates. *)

val advance : t -> until:float -> unit
(** Drive the shared engine to the given simulated time. *)

val report : t -> report
(** Snapshot of the metrics at the current time. *)
