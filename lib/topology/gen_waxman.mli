(** Waxman random geometric graphs.

    Nodes are placed uniformly in the unit square and each pair is linked
    with probability [alpha * exp (-d / (beta * L))] where [d] is Euclidean
    distance and [L = sqrt 2].  A classic router-level model with geographic
    locality but no heavy tail — the second negative control next to
    {!Gen_er}. *)

type placement = { x : float array; y : float array }

val generate : nodes:int -> alpha:float -> beta:float -> seed:int -> Graph.t * placement
(** The returned placement gives each node's coordinates, which the Vivaldi
    tests use as geometric ground truth.  The graph is made connected by
    linking each isolated fragment through its geometrically closest pair. *)
