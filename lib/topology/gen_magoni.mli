(** Synthetic router-level Internet map in the style of Magoni & Hoerdt's
    [nem] measurements (Computer Communications 2005) — the map family the
    paper plugs into PeerSim.

    The measured IR-level Internet decomposes into a small, densely meshed
    heavy-tailed {e core} and a large periphery of {e trees} hanging off it,
    terminated by degree-1 routers where end hosts attach.  This generator
    reproduces that decomposition directly:

    - the core is grown by preferential attachment (power-law degrees, high
      betweenness concentration),
    - tree routers attach under the core, forming the access hierarchy,
    - leaf routers of degree 1 are the host attachment points; the paper
      attaches peers exactly there ("attaching n peers to routers with degree
      equals to one").

    The construction guarantees connectivity and at least
    [leaf_fraction * routers] degree-1 routers. *)

type params = {
  routers : int;
  core_fraction : float;  (** Fraction of routers in the meshed core. *)
  leaf_fraction : float;  (** Fraction that are degree-1 host attachment points. *)
  core_edges_per_node : int;  (** BA attachment parameter inside the core. *)
  tree_cross_link_prob : float;
      (** Probability that a tree router gets one extra redundancy link,
          matching the partial meshing nem observes outside the strict core. *)
}

type t = {
  graph : Graph.t;
  core : Graph.node array;  (** Nodes of the meshed core. *)
  tree : Graph.node array;  (** Access-tree routers. *)
  leaves : Graph.node array;  (** Degree-1 routers (host attachment points). *)
}

val default_params : int -> params
(** [default_params routers] uses core 15%, leaves 40%, m = 3, cross links
    10% — matching the qualitative nem statistics (heavy tail, mean distance
    growing slowly with size). *)

val generate : params -> seed:int -> t
(** @raise Invalid_argument when fractions are outside (0,1), their sum
    reaches 1, or the core would be smaller than [core_edges_per_node + 1]. *)

type fit_result = {
  fitted : params;
  alpha : float;  (** Achieved power-law exponent (MLE, x_min = 3). *)
  mean_distance : float;  (** Achieved mean pairwise hop distance (sampled). *)
  error : float;  (** Weighted relative error against the targets. *)
}

val fit :
  routers:int ->
  target_alpha:float ->
  target_mean_distance:float ->
  seed:int ->
  fit_result
(** Coarse grid search over the generator's shape parameters (core
    fraction, attachment density, cross-link probability) minimizing the
    relative error against a measured map's statistics — e.g. nem's
    alpha ~2.1-2.3 and mean distance for the chosen size.  Deterministic;
    cost is one generation + analysis per grid point (a few dozen). *)
