(* Attachment weight of node v is (degree v - beta); beta < 1 keeps weights
   positive for any node with at least one edge.  We sample by linear scan
   over cumulative weights — generator construction is not on the hot path of
   any experiment, and the scan keeps the implementation obviously correct. *)

let pick_weighted b rng ~beta ~upper =
  let total = ref 0.0 in
  for v = 0 to upper - 1 do
    let d = Builder.degree b v in
    if d > 0 then total := !total +. (float_of_int d -. beta)
  done;
  let target = Prelude.Prng.float rng !total in
  let acc = ref 0.0 and chosen = ref (upper - 1) in
  (try
     for v = 0 to upper - 1 do
       let d = Builder.degree b v in
       if d > 0 then begin
         acc := !acc +. (float_of_int d -. beta);
         if !acc >= target then begin
           chosen := v;
           raise Exit
         end
       end
     done
   with Exit -> ());
  !chosen

let generate ~nodes ~m ~p ~beta ~seed =
  if m < 1 then invalid_arg "Gen_glp.generate: m must be >= 1";
  if p < 0.0 || p >= 1.0 then invalid_arg "Gen_glp.generate: p must be in [0,1)";
  if beta >= 1.0 then invalid_arg "Gen_glp.generate: beta must be < 1";
  if nodes <= m + 1 then invalid_arg "Gen_glp.generate: need nodes > m + 1";
  let rng = Prelude.Prng.create seed in
  let b = Builder.create nodes in
  (* Seed: small clique. *)
  for u = 0 to m do
    for v = u + 1 to m do
      ignore (Builder.add_edge b u v)
    done
  done;
  let grown = ref (m + 1) in
  while !grown < nodes do
    if Prelude.Prng.unit_float rng < p then begin
      (* Internal links between existing nodes. *)
      for _ = 1 to m do
        let u = pick_weighted b rng ~beta ~upper:!grown in
        let v = pick_weighted b rng ~beta ~upper:!grown in
        ignore (Builder.add_edge b u v)
      done
    end
    else begin
      let node = !grown in
      let added = ref 0 and attempts = ref 0 in
      while !added < m && !attempts < 50 * m do
        incr attempts;
        let target = pick_weighted b rng ~beta ~upper:node in
        if Builder.add_edge b node target then incr added
      done;
      incr grown
    end
  done;
  Builder.to_graph b
