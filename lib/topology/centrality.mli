(** Centrality and core-extraction analytics.

    The paper's key assumption (§2) is that Internet routes funnel through a
    high-betweenness core.  Brandes' algorithm lets tests verify that our
    synthetic maps concentrate betweenness in the designated core, and k-core
    decomposition gives an alternative, structure-only core definition used
    by the [core-only] traceroute truncation strategy (E4). *)

val betweenness : Graph.t -> float array
(** Exact unweighted betweenness centrality of every node (Brandes 2001);
    endpoints excluded, each unordered pair counted once.  O(n * m). *)

val betweenness_sampled : Graph.t -> sources:int -> rng:Prelude.Prng.t -> float array
(** Unbiased estimate from a random subset of source pivots, scaled to the
    exact normalization; use on maps where O(n * m) is too slow. *)

val closeness : Graph.t -> Graph.node -> float
(** [1 / mean hop distance] to every reachable node; 0 for an isolated
    node. *)

val k_core_numbers : Graph.t -> int array
(** Core number of each node: the largest k such that the node survives in
    the k-core (Batagelj–Zaversnik peeling, O(m)). *)

val k_core_members : Graph.t -> int -> Graph.node list
(** Nodes whose core number is >= k, increasing id order. *)

val top_by : float array -> int -> Graph.node list
(** [top_by scores k] is the ids of the [k] highest-scoring nodes,
    best first; ties broken toward the lower id. *)
