(** Per-link latency assignment.

    The paper works in hop counts, but its baselines (Vivaldi, GNP) and the
    setup-delay experiment need continuous link latencies.  Latencies are
    assigned once per graph, symmetric, deterministic under a seed. *)

type t

type model =
  | Uniform of { lo : float; hi : float }
      (** i.i.d. uniform per link, in milliseconds. *)
  | Core_weighted of { core_ms : float; edge_ms : float; threshold : int }
      (** Links whose both endpoints have degree >= [threshold] are fast core
          links ([core_ms] mean), others slower access links ([edge_ms] mean);
          each link's value is exponentially distributed around its mean.
          This mirrors the common observation that access links dominate
          end-to-end latency. *)
  | Hop_count  (** Every link costs exactly 1.0: weighted = hop distance. *)

val assign : Graph.t -> model -> seed:int -> t
val get : t -> Graph.node -> Graph.node -> float
(** Latency of an existing link.  @raise Not_found if the graph has no such
    edge. *)

val weight_fn : t -> Graph.node -> Graph.node -> float
(** [get] packaged for {!Dijkstra}. *)

val path_latency : t -> Graph.node list -> float
(** Sum over consecutive pairs of a router path. *)
