(* Preferential attachment via the endpoint-multiset trick: every edge pushes
   both endpoints into a pool, and sampling the pool uniformly selects nodes
   with probability proportional to degree. *)

let seed_pool_from_builder b =
  let pool = Prelude.Vec.create ~capacity:(4 * Builder.edge_count b) () in
  for u = 0 to Builder.node_count b - 1 do
    Builder.iter_neighbors b u (fun v ->
        if u < v then begin
          Prelude.Vec.push pool u;
          Prelude.Vec.push pool v
        end)
  done;
  pool

let attach b pool rng node m =
  (* Draw m distinct targets; rejection over the pool, falling back on a
     uniform node if the pool is pathologically concentrated. *)
  let chosen = ref [] in
  let attempts = ref 0 in
  while List.length !chosen < m do
    incr attempts;
    let target =
      if !attempts > 50 * m then Prelude.Prng.int rng node
      else Prelude.Vec.get pool (Prelude.Prng.int rng (Prelude.Vec.length pool))
    in
    if target <> node && not (List.mem target !chosen) then chosen := target :: !chosen
  done;
  List.iter
    (fun target ->
      if Builder.add_edge b node target then begin
        Prelude.Vec.push pool node;
        Prelude.Vec.push pool target
      end)
    !chosen

let into_builder b ~first_node ~count ~edges_per_node ~rng =
  if edges_per_node < 1 then invalid_arg "Gen_ba.into_builder: edges_per_node must be >= 1";
  if Builder.edge_count b = 0 then invalid_arg "Gen_ba.into_builder: builder has no seed edges";
  let pool = seed_pool_from_builder b in
  for node = first_node to first_node + count - 1 do
    attach b pool rng node edges_per_node
  done

let generate ~nodes ~edges_per_node:m ~seed =
  if m < 1 then invalid_arg "Gen_ba.generate: edges_per_node must be >= 1";
  if nodes <= m then invalid_arg "Gen_ba.generate: need nodes > edges_per_node";
  let rng = Prelude.Prng.create seed in
  let b = Builder.create nodes in
  (* Seed clique on m + 1 nodes. *)
  for u = 0 to m do
    for v = u + 1 to m do
      ignore (Builder.add_edge b u v)
    done
  done;
  into_builder b ~first_node:(m + 1) ~count:(nodes - m - 1) ~edges_per_node:m ~rng;
  Builder.to_graph b
