let write_edge_list g oc =
  Printf.fprintf oc "# nodes %d edges %d\n" (Graph.node_count g) (Graph.edge_count g);
  List.iter (fun (u, v) -> Printf.fprintf oc "%d %d\n" u v) (Graph.edges g)

let save_edge_list g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_edge_list g oc)

let parse_line ~line_number line =
  let line = String.trim (String.map (fun c -> if c = '\t' then ' ' else c) line) in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some u, Some v when u >= 0 && v >= 0 -> Some (u, v)
        | _ -> failwith (Printf.sprintf "Io.read_edge_list: bad ids on line %d" line_number))
    | _ -> failwith (Printf.sprintf "Io.read_edge_list: expected 'u v' on line %d" line_number)

let read_edge_list ?(compact = true) ic =
  let raw_edges = ref [] in
  let line_number = ref 0 in
  (try
     while true do
       incr line_number;
       let line = input_line ic in
       match parse_line ~line_number:!line_number line with
       | Some edge -> raw_edges := edge :: !raw_edges
       | None -> ()
     done
   with End_of_file -> ());
  let raw_edges = List.rev !raw_edges in
  if compact then begin
    let ids = Hashtbl.create 256 in
    let next = ref 0 in
    let intern v =
      match Hashtbl.find_opt ids v with
      | Some i -> i
      | None ->
          let i = !next in
          Hashtbl.add ids v i;
          incr next;
          i
    in
    let edges =
      (* First-appearance numbering requires left-to-right interning; a bare
         tuple would evaluate right-to-left. *)
      List.map
        (fun (u, v) ->
          let iu = intern u in
          let iv = intern v in
          (iu, iv))
        raw_edges
    in
    Graph.of_edges ~node_count:!next edges
  end
  else begin
    let max_id = List.fold_left (fun acc (u, v) -> max acc (max u v)) (-1) raw_edges in
    Graph.of_edges ~node_count:(max_id + 1) raw_edges
  end

let load_edge_list ?compact path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_edge_list ?compact ic)

let to_dot ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph topology {\n  node [shape=circle];\n";
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  %d [style=filled, fillcolor=lightblue];\n" v))
    highlight;
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
