(* Brandes' accumulation from one source: BFS records, for every node, its
   shortest-path count and predecessor list; a reverse sweep in
   order-of-decreasing-distance accumulates pair dependencies. *)
let accumulate_from g source score =
  let n = Graph.node_count g in
  let dist = Array.make n (-1) in
  let sigma = Array.make n 0.0 in
  let preds = Array.make n [] in
  let order = ref [] in
  dist.(source) <- 0;
  sigma.(source) <- 1.0;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    order := u :: !order;
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end;
        if dist.(v) = dist.(u) + 1 then begin
          sigma.(v) <- sigma.(v) +. sigma.(u);
          preds.(v) <- u :: preds.(v)
        end)
  done;
  let delta = Array.make n 0.0 in
  List.iter
    (fun w ->
      List.iter
        (fun v -> delta.(v) <- delta.(v) +. (sigma.(v) /. sigma.(w) *. (1.0 +. delta.(w))))
        preds.(w);
      if w <> source then score.(w) <- score.(w) +. delta.(w))
    !order

let betweenness g =
  let n = Graph.node_count g in
  let score = Array.make n 0.0 in
  for source = 0 to n - 1 do
    accumulate_from g source score
  done;
  (* Each unordered pair was counted from both endpoints. *)
  Array.map (fun s -> s /. 2.0) score

let betweenness_sampled g ~sources ~rng =
  let n = Graph.node_count g in
  let score = Array.make n 0.0 in
  let sources = min sources n in
  if sources = 0 then score
  else begin
    let pivots = Prelude.Prng.sample_without_replacement rng ~k:sources ~n in
    Array.iter (fun source -> accumulate_from g source score) pivots;
    let scale = float_of_int n /. float_of_int sources /. 2.0 in
    Array.map (fun s -> s *. scale) score
  end

let closeness g v =
  let dist = Bfs.distances g v in
  let total = ref 0 and reached = ref 0 in
  Array.iteri
    (fun u d ->
      if u <> v && d <> max_int then begin
        total := !total + d;
        incr reached
      end)
    dist;
  if !reached = 0 || !total = 0 then 0.0
  else float_of_int !reached /. float_of_int !total

let k_core_numbers g =
  let n = Graph.node_count g in
  let degree = Array.init n (fun v -> Graph.degree g v) in
  let core = Array.make n 0 in
  let max_deg = Graph.max_degree g in
  (* Bucket the nodes by current degree and peel in increasing order. *)
  let buckets = Array.make (max_deg + 1) [] in
  Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) degree;
  let removed = Prelude.Bitset.create n in
  let processed = ref 0 in
  let k = ref 0 in
  while !processed < n do
    (* Find the lowest non-empty bucket at or below which nodes remain. *)
    let rec pop_bucket d =
      if d > max_deg then None
      else
        match buckets.(d) with
        | [] -> pop_bucket (d + 1)
        | v :: rest ->
            buckets.(d) <- rest;
            if Prelude.Bitset.mem removed v || degree.(v) <> d then pop_bucket d else Some (d, v)
    in
    match pop_bucket 0 with
    | None -> processed := n
    | Some (d, v) ->
        k := max !k d;
        core.(v) <- !k;
        Prelude.Bitset.add removed v;
        incr processed;
        Graph.iter_neighbors g v (fun u ->
            if not (Prelude.Bitset.mem removed u) && degree.(u) > d then begin
              degree.(u) <- degree.(u) - 1;
              buckets.(degree.(u)) <- u :: buckets.(degree.(u))
            end)
  done;
  core

let k_core_members g k =
  let numbers = k_core_numbers g in
  let acc = ref [] in
  for v = Array.length numbers - 1 downto 0 do
    if numbers.(v) >= k then acc := v :: !acc
  done;
  !acc

let top_by scores k =
  let ids = Array.init (Array.length scores) (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare scores.(b) scores.(a) with
      | 0 -> compare a b
      | c -> c)
    ids;
  Array.to_list (Array.sub ids 0 (min k (Array.length ids)))
