type placement = { x : float array; y : float array }

let euclid p i j =
  let dx = p.x.(i) -. p.x.(j) and dy = p.y.(i) -. p.y.(j) in
  sqrt ((dx *. dx) +. (dy *. dy))

let generate ~nodes ~alpha ~beta ~seed =
  if nodes < 1 then invalid_arg "Gen_waxman.generate: need at least one node";
  if alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 then
    invalid_arg "Gen_waxman.generate: need alpha in (0,1] and beta > 0";
  let rng = Prelude.Prng.create seed in
  let p = { x = Array.init nodes (fun _ -> Prelude.Prng.unit_float rng);
            y = Array.init nodes (fun _ -> Prelude.Prng.unit_float rng) } in
  let b = Builder.create nodes in
  let scale = beta *. sqrt 2.0 in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      let prob = alpha *. exp (-.euclid p i j /. scale) in
      if Prelude.Prng.unit_float rng < prob then ignore (Builder.add_edge b i j)
    done
  done;
  (* Stitch components: repeatedly link the geometrically closest pair of
     nodes lying in different components. *)
  let uf = Prelude.Union_find.create nodes in
  for u = 0 to nodes - 1 do
    Builder.iter_neighbors b u (fun v -> ignore (Prelude.Union_find.union uf u v))
  done;
  while Prelude.Union_find.count_sets uf > 1 do
    let best = ref (-1, -1) and best_d = ref infinity in
    for i = 0 to nodes - 1 do
      for j = i + 1 to nodes - 1 do
        if not (Prelude.Union_find.same uf i j) then begin
          let d = euclid p i j in
          if d < !best_d then begin
            best_d := d;
            best := (i, j)
          end
        end
      done
    done;
    let i, j = !best in
    ignore (Builder.add_edge b i j);
    ignore (Prelude.Union_find.union uf i j)
  done;
  (Builder.to_graph b, p)
