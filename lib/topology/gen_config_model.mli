(** Configuration-model graphs with prescribed degree sequences.

    Where {!Gen_ba}'s exponent is emergent, the configuration model takes
    the degree sequence as input — random stub matching, with self-loops
    and duplicate edges dropped (the standard "erased" variant).  Used to
    generate maps whose power-law exponent is set {e exactly} to the
    2.1–2.3 that Magoni & Hoerdt measure, and as a degree-preserving null
    model: rewiring a real map through the configuration model keeps the
    degree sequence but destroys all other structure. *)

val generate : degrees:int array -> seed:int -> Graph.t
(** [generate ~degrees ~seed] matches stubs uniformly at random.  The
    erased variant can lose edges (self-loops/duplicates), so node [v]'s
    realized degree is at most [degrees.(v)].  An odd stub total loses one
    stub.  @raise Invalid_argument on a negative degree. *)

val power_law_degrees :
  n:int -> alpha:float -> d_min:int -> d_max:int -> rng:Prelude.Prng.t -> int array
(** Draw [n] i.i.d. degrees with [P(d) ~ d^-alpha] on [\[d_min, d_max\]]
    (Zipf over the shifted range).
    @raise Invalid_argument unless [1 <= d_min <= d_max]. *)

val generate_power_law :
  n:int -> alpha:float -> d_min:int -> d_max:int -> seed:int -> Graph.t * Graph.t
(** Convenience: draw a power-law sequence and build the graph; returns
    [(graph, giant)] where [giant] is the largest connected component
    relabelled densely (the configuration model is usually disconnected). *)

val largest_component : Graph.t -> Graph.t
(** The largest connected component, nodes relabelled densely in increasing
    original-id order. *)
