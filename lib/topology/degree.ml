let histogram g =
  let h = Prelude.Histogram.create () in
  for v = 0 to Graph.node_count g - 1 do
    Prelude.Histogram.add h (Graph.degree g v)
  done;
  h

let power_law_alpha g ~x_min =
  if x_min < 1 then invalid_arg "Degree.power_law_alpha: x_min must be >= 1";
  let n = ref 0 and log_sum = ref 0.0 in
  let shift = float_of_int x_min -. 0.5 in
  for v = 0 to Graph.node_count g - 1 do
    let d = Graph.degree g v in
    if d >= x_min then begin
      incr n;
      log_sum := !log_sum +. log (float_of_int d /. shift)
    end
  done;
  if !n = 0 then invalid_arg "Degree.power_law_alpha: no node reaches x_min";
  1.0 +. (float_of_int !n /. !log_sum)

let fraction_with_degree g d =
  if Graph.node_count g = 0 then 0.0
  else begin
    let count = ref 0 in
    for v = 0 to Graph.node_count g - 1 do
      if Graph.degree g v = d then incr count
    done;
    float_of_int !count /. float_of_int (Graph.node_count g)
  end

let sorted_degrees g =
  let ds = Array.init (Graph.node_count g) (fun v -> Graph.degree g v) in
  Array.sort compare ds;
  ds

let gini g =
  let ds = sorted_degrees g in
  let n = Array.length ds in
  if n = 0 then 0.0
  else begin
    let total = Array.fold_left ( + ) 0 ds in
    if total = 0 then 0.0
    else begin
      (* G = (2 * sum_i i * d_i) / (n * sum d) - (n + 1) / n over the sorted
         sequence with 1-based ranks. *)
      let weighted = ref 0.0 in
      Array.iteri (fun i d -> weighted := !weighted +. (float_of_int (i + 1) *. float_of_int d)) ds;
      (2.0 *. !weighted /. (float_of_int n *. float_of_int total))
      -. (float_of_int (n + 1) /. float_of_int n)
    end
  end

let percentile_degree g p =
  let ds = Array.map float_of_int (sorted_degrees g) in
  int_of_float (Prelude.Stats.percentile ds p)

let median_degree g = percentile_degree g 50.0
