(** Breadth-first traversals: hop distances and shortest-path trees.

    Hop distance is the paper's ground-truth metric (the quality sums [D],
    [Dclosest], [Drandom] are sums of hop distances), so these routines are
    the reference against which the landmark inference is judged. *)

val distances : Graph.t -> Graph.node -> int array
(** [distances g src] maps every node to its hop distance from [src];
    unreachable nodes get [max_int]. *)

val distance : Graph.t -> Graph.node -> Graph.node -> int
(** Single-pair hop distance with early exit; [max_int] when unreachable. *)

val distances_within : Graph.t -> Graph.node -> int -> (Graph.node * int) list
(** [distances_within g src radius] is every node at hop distance <= radius,
    paired with its distance, in increasing distance order. *)

val parents : Graph.t -> Graph.node -> int array
(** BFS tree: [parents.(v)] is the predecessor of [v] on a deterministic
    (lowest-id-first) shortest path from the source; the source and
    unreachable nodes map to [-1]. *)

val path_to : parents:int array -> src:Graph.node -> Graph.node -> Graph.node list
(** [path_to ~parents ~src v] reconstructs the node sequence [src .. v] from a
    parent array rooted at [src], inclusive of both endpoints.  Empty when [v]
    was unreachable. *)

val eccentricity : Graph.t -> Graph.node -> int
(** Largest finite hop distance from the node. *)

val mean_pairwise_distance : Graph.t -> samples:int -> rng:Prelude.Prng.t -> float
(** Monte-Carlo estimate of the mean hop distance between distinct reachable
    random pairs; exact iteration is quadratic and unnecessary for the
    summary statistics we report. *)
