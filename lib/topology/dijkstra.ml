let check_weight w = if w < 0.0 then invalid_arg "Dijkstra: negative edge weight"

let relax_all g ~weight src ~on_settle =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let settled = Prelude.Bitset.create n in
  let heap = Prelude.Pqueue.create () in
  dist.(src) <- 0.0;
  Prelude.Pqueue.push heap ~priority:0.0 src;
  let continue = ref true in
  while !continue do
    match Prelude.Pqueue.pop heap with
    | None -> continue := false
    | Some (d, u) ->
        if not (Prelude.Bitset.mem settled u) then begin
          Prelude.Bitset.add settled u;
          if on_settle u d then
            Graph.iter_neighbors g u (fun v ->
                let w = weight u v in
                check_weight w;
                let alt = d +. w in
                if alt < dist.(v) then begin
                  dist.(v) <- alt;
                  Prelude.Pqueue.push heap ~priority:alt v
                end)
          else continue := false
        end
  done;
  dist

let distances g ~weight src = relax_all g ~weight src ~on_settle:(fun _ _ -> true)

let distance g ~weight src dst =
  if src = dst then 0.0
  else begin
    let result = ref infinity in
    let (_ : float array) =
      relax_all g ~weight src ~on_settle:(fun u d ->
          if u = dst then begin
            result := d;
            false
          end
          else true)
    in
    !result
  end

let parents g ~weight src =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Prelude.Bitset.create n in
  let heap = Prelude.Pqueue.create () in
  dist.(src) <- 0.0;
  Prelude.Pqueue.push heap ~priority:0.0 src;
  let continue = ref true in
  while !continue do
    match Prelude.Pqueue.pop heap with
    | None -> continue := false
    | Some (d, u) ->
        if not (Prelude.Bitset.mem settled u) then begin
          Prelude.Bitset.add settled u;
          Graph.iter_neighbors g u (fun v ->
              let w = weight u v in
              check_weight w;
              let alt = d +. w in
              if alt < dist.(v) || (alt = dist.(v) && parent.(v) > u) then begin
                dist.(v) <- alt;
                parent.(v) <- u;
                Prelude.Pqueue.push heap ~priority:alt v
              end)
        end
  done;
  parent
